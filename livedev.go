// Package livedev is a Go reproduction of "Supporting Live Development of
// SOAP and CORBA Servers" (Pallemulle, Goldman, Morgan; WUCSE-2004-75 /
// ICDCS 2005). It provides:
//
//   - a dynamic-class runtime (JPie's dynamic classes): classes whose
//     method signatures and implementations change at run time, effective
//     immediately on existing instances;
//   - the SDE (Server Development Environment) middleware: automated
//     deployment of SOAP and CORBA servers from dynamic classes, automated
//     publication of WSDL / CORBA-IDL / IOR via an Interface Server, the
//     stable-timeout publication algorithm, and reactive forced publication
//     on stale client calls;
//   - the CDE (Client Development Environment): live clients whose stubs
//     are compiled from the published interface descriptions and refreshed
//     reactively, with a debugger supporting 'try again';
//   - complete SOAP 1.1 + WSDL 1.1 and CORBA (CDR, GIOP/IIOP, IOR, IDL,
//     DII/DSI ORBs) protocol stacks, built on the standard library only.
//
// The facade below re-exports the types a downstream user needs, so the
// whole system is usable through this single import:
//
//	class := livedev.NewClass("Calc")
//	class.AddMethod(livedev.MethodSpec{ ... Distributed: true ... })
//	mgr, _ := livedev.NewManager(livedev.Config{})
//	srv, _ := mgr.Register(class, livedev.TechSOAP)
//	srv.CreateInstance()
//	client, _ := livedev.ConnectSOAP(srv.InterfaceURL())
//	sum, _ := client.Call("add", livedev.Int32(2), livedev.Int32(3))
package livedev

import (
	"net/http"

	"livedev/internal/cde"
	"livedev/internal/core"
	"livedev/internal/dyn"
)

// Dynamic-class runtime types (the JPie substrate).
type (
	// Class is a dynamic class: a mutable set of methods and fields whose
	// edits take effect immediately on live instances.
	Class = dyn.Class
	// Instance is a live object of a dynamic class.
	Instance = dyn.Instance
	// MethodSpec describes a method to add to a class.
	MethodSpec = dyn.MethodSpec
	// Param is a formal method parameter.
	Param = dyn.Param
	// Body is a method implementation.
	Body = dyn.Body
	// MemberID identifies a method or field across renames.
	MemberID = dyn.MemberID
	// Value is a dynamically typed value.
	Value = dyn.Value
	// Type describes a value type.
	Type = dyn.Type
	// StructField is a field of a struct type.
	StructField = dyn.StructField
	// MethodSig is an externally visible method signature.
	MethodSig = dyn.MethodSig
	// InterfaceDescriptor is a snapshot of a class's distributed interface.
	InterfaceDescriptor = dyn.InterfaceDescriptor
)

// SDE middleware types.
type (
	// Manager is the SDE Manager owning the Interface Server and the
	// managed server classes.
	Manager = core.Manager
	// Config configures a Manager.
	Config = core.Config
	// Server is a managed SOAP or CORBA server.
	Server = core.Server
	// Technology selects an RMI technology.
	Technology = core.Technology
	// DLPublisher runs the stable-timeout publication algorithm.
	DLPublisher = core.DLPublisher
	// PublisherStats counts publisher activity.
	PublisherStats = core.PublisherStats
)

// CDE types.
type (
	// Client is a live CDE client.
	Client = cde.Client
	// Debugger records failed calls and supports TryAgain.
	Debugger = cde.Debugger
	// StaleMethodError reports a call to a method no longer on the server
	// interface; the client's view has been refreshed by delivery time.
	StaleMethodError = cde.StaleMethodError
)

// Technologies supported by the SDE.
const (
	TechSOAP  = core.TechSOAP
	TechCORBA = core.TechCORBA
)

// Sentinel errors re-exported from the CDE.
var (
	// ErrStaleMethod matches StaleMethodError via errors.Is.
	ErrStaleMethod = cde.ErrStaleMethod
	// ErrNoSuchStub reports a call to a method absent from the client's
	// interface view even after a refresh.
	ErrNoSuchStub = cde.ErrNoSuchStub
)

// Predeclared primitive types.
var (
	VoidType    = dyn.Void
	BooleanType = dyn.Boolean
	CharType    = dyn.Char
	Int32Type   = dyn.Int32T
	Int64Type   = dyn.Int64T
	Float32Type = dyn.Float32T
	Float64Type = dyn.Float64T
	StringType  = dyn.StringT
)

// NewClass creates an empty dynamic class.
func NewClass(name string) *Class { return dyn.NewClass(name) }

// NewManager creates and starts an SDE Manager.
func NewManager(cfg Config) (*Manager, error) { return core.NewManager(cfg) }

// ConnectSOAP builds a live client from a published WSDL document URL.
func ConnectSOAP(wsdlURL string) (*Client, error) {
	return cde.NewSOAPClient(wsdlURL, nil)
}

// ConnectSOAPWithHTTP is ConnectSOAP with a custom HTTP client.
func ConnectSOAPWithHTTP(wsdlURL string, hc *http.Client) (*Client, error) {
	return cde.NewSOAPClient(wsdlURL, hc)
}

// ConnectCORBA builds a live client from published CORBA-IDL and IOR URLs.
func ConnectCORBA(idlURL, iorURL string) (*Client, error) {
	return cde.NewCORBAClient(idlURL, iorURL, nil)
}

// Value constructors.

// Bool returns a boolean value.
func Bool(v bool) Value { return dyn.BoolValue(v) }

// Char returns a char value.
func Char(v rune) Value { return dyn.CharValue(v) }

// Int32 returns an int32 value.
func Int32(v int32) Value { return dyn.Int32Value(v) }

// Int64 returns an int64 value.
func Int64(v int64) Value { return dyn.Int64Value(v) }

// Float32 returns a float32 value.
func Float32(v float32) Value { return dyn.Float32Value(v) }

// Float64 returns a float64 value.
func Float64(v float64) Value { return dyn.Float64Value(v) }

// Str returns a string value.
func Str(v string) Value { return dyn.StringValue(v) }

// Void returns the void value.
func Void() Value { return dyn.VoidValue() }

// StructOf declares a named struct type.
func StructOf(name string, fields ...StructField) (*Type, error) {
	return dyn.StructOf(name, fields...)
}

// MustStructOf is StructOf but panics on error.
func MustStructOf(name string, fields ...StructField) *Type {
	return dyn.MustStructOf(name, fields...)
}

// SequenceOf returns a sequence type.
func SequenceOf(elem *Type) *Type { return dyn.SequenceOf(elem) }

// Struct builds a struct value.
func Struct(t *Type, fieldVals ...Value) (Value, error) {
	return dyn.StructValue(t, fieldVals...)
}

// Sequence builds a sequence value.
func Sequence(elem *Type, elems ...Value) (Value, error) {
	return dyn.SequenceValue(elem, elems...)
}
