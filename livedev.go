// Package livedev is a Go reproduction of "Supporting Live Development of
// SOAP and CORBA Servers" (Pallemulle, Goldman, Morgan; WUCSE-2004-75 /
// ICDCS 2005). It provides:
//
//   - a dynamic-class runtime (JPie's dynamic classes): classes whose
//     method signatures and implementations change at run time, effective
//     immediately on existing instances;
//   - the SDE (Server Development Environment) middleware: automated
//     deployment of servers from dynamic classes over any registered RMI
//     technology, automated publication of interface descriptions (WSDL /
//     CORBA-IDL / IOR / JSON / h2b descriptor) via an Interface Server,
//     the stable-timeout publication algorithm, and reactive forced
//     publication on stale client calls;
//   - the CDE (Client Development Environment): live clients whose stubs
//     are compiled from the published interface descriptions and refreshed
//     reactively — or pushed via the watch protocol (WithWatch), which
//     turns the client's interface view into a push-invalidated cache —
//     with a debugger supporting 'try again';
//   - an event-driven publication core: every binding publishes through a
//     versioned, epoch-numbered document store with subscriber fan-out,
//     edit-storm coalescing (Config.FlushWindow, per-path overrides via
//     WithPathFlushWindow), a bounded replay journal (Config.HistoryLen),
//     and optional durability (Config.DataDir: path-sharded snapshot+WAL
//     persistence with parallel replay on open — a restarted server
//     resumes its epoch sequence, so reconnecting watchers ride journal
//     replay instead of refetching; Config.Sync picks the ack's
//     durability, from buffered through group-commit fsync), read by the
//     Interface Server and watchable over two HTTP transports — streaming
//     (SSE, one held connection per watcher, journal-replay catch-up on
//     reconnect) and long-poll; plus ReExport, the live binding-agnostic
//     bridge (serve any registered binding's class over any other);
//   - complete SOAP 1.1 + WSDL 1.1 and CORBA (CDR, GIOP/IIOP, IOR, IDL,
//     DII/DSI ORBs) protocol stacks, built on the standard library only,
//     plus two bindings implemented purely against the public binding
//     seam: JSON/HTTP, and h2b — CDR-encoded call bodies multiplexed as
//     cleartext HTTP/2 streams, one TCP connection per endpoint no matter
//     how many calls are in flight (docs/h2b-protocol.md).
//
// # The v2 API: Dial, options, bindings
//
// The facade re-exports the types a downstream user needs, so the whole
// system is usable through this single import. Calls are context-first —
// deadlines and cancellation propagate through the client, the wire
// protocol, and into server dispatch:
//
//	class := livedev.NewClass("Calc")
//	class.AddMethod(livedev.MethodSpec{ ... Distributed: true ... })
//	mgr, _ := livedev.NewManager(livedev.Config{})
//	// Production servers set Config.DataDir (sde-server: -data-dir) so the
//	// publication store survives restarts, and pick the ack's durability
//	// with Config.Sync (sde-server: -sync none|group|always; group = the
//	// publish returns once its record is fsynced, concurrent commits
//	// sharing each fsync).
//	srv, _ := mgr.Register(class, livedev.TechSOAP)
//	srv.CreateInstance()
//
//	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
//	defer cancel()
//	client, _ := livedev.Dial(ctx, srv.InterfaceURL(),
//	    livedev.WithTimeout(500*time.Millisecond))
//	sum, _ := client.CallContext(ctx, "add", livedev.Int32(2), livedev.Int32(3))
//
// Dial fetches the interface document once and sniffs which registered
// binding it belongs to (WSDL -> SOAP, IDL/IOR -> CORBA, JSON document ->
// JSON, h2b descriptor -> H2B), or obeys an explicit WithBinding option.
// The context-free wrappers of the v1 API (ConnectSOAP, ConnectCORBA,
// Client.Call) remain as thin deprecated shims.
//
// Concurrent callers should consider the h2b binding (H2BBinding): its
// CDR-over-HTTP/2 wire format multiplexes any number of in-flight calls
// as streams on one TCP connection per endpoint, where the text bindings
// pay per-call encode cost and HTTP/1.1 connection churn:
//
//	livedev.RegisterBinding(livedev.H2BBinding())
//	srv, _ := mgr.Register(class, livedev.Technology("H2B"))
//	client, _ := livedev.Dial(ctx, srv.InterfaceURL())
//	// N goroutines calling client share one connection; a cancelled
//	// context resets only that call's stream.
//
// # Replication
//
// The watch plane scales out horizontally: a manager started with
// Config.FollowURL (sde-server: -follow <leader-url>) is a read-only
// replica that tails the leader's write-ahead log and serves the
// replicated documents — GETs, long-polls, and SSE watch streams — under
// the leader's restart generation, while answering publications with 421
// Misdirected Request naming the leader. Clients spread across replicas
// with WithEndpoints(leader, replicaA, replicaB) — failover between them
// is the watcher's ordinary reconnect, never a visible restart — or ask a
// fronting sde-director for the current replica set via WithDirector:
//
//	client, _ := livedev.Dial(ctx, docURL,
//	    livedev.WithWatch(), livedev.WithDirector("http://director:8080"))
//
// See docs/replication.md for the WAL-shipping protocol.
//
// # Adding an RMI technology
//
// An RMI technology is a Binding: a named pair of a server half (Serve
// deploys a dynamic class under a Manager) and a client half (Describe
// says what its interface documents look like, Connect builds a live
// client from one). RegisterBinding makes it available process-wide —
// Manager.Register resolves it by name and Dial by document sniffing —
// with no edits to this package or to core dispatch. See the Binding
// contract below; internal/jsonb is a complete worked example.
package livedev

import (
	"context"
	"net/http"
	"time"

	"livedev/internal/bridge"
	"livedev/internal/cde"
	"livedev/internal/core"
	"livedev/internal/dyn"
	"livedev/internal/h2b"
	"livedev/internal/jsonb"
)

// Dynamic-class runtime types (the JPie substrate).
type (
	// Class is a dynamic class: a mutable set of methods and fields whose
	// edits take effect immediately on live instances.
	Class = dyn.Class
	// Instance is a live object of a dynamic class.
	Instance = dyn.Instance
	// MethodSpec describes a method to add to a class.
	MethodSpec = dyn.MethodSpec
	// Param is a formal method parameter.
	Param = dyn.Param
	// Body is a method implementation.
	Body = dyn.Body
	// MemberID identifies a method or field across renames.
	MemberID = dyn.MemberID
	// Value is a dynamically typed value.
	Value = dyn.Value
	// Type describes a value type.
	Type = dyn.Type
	// StructField is a field of a struct type.
	StructField = dyn.StructField
	// MethodSig is an externally visible method signature.
	MethodSig = dyn.MethodSig
	// InterfaceDescriptor is a snapshot of a class's distributed interface.
	InterfaceDescriptor = dyn.InterfaceDescriptor
)

// SDE middleware types.
type (
	// Manager is the SDE Manager owning the Interface Server and the
	// managed server classes.
	Manager = core.Manager
	// Config configures a Manager.
	Config = core.Config
	// Server is a managed live server of any registered technology.
	Server = core.Server
	// Technology names an RMI technology: the registered binding's name.
	Technology = core.Technology
	// DLPublisher runs the stable-timeout publication algorithm.
	DLPublisher = core.DLPublisher
	// PublisherStats counts publisher activity.
	PublisherStats = core.PublisherStats
	// PublishOption configures one Manager.PublishInterface call.
	PublishOption = core.PublishOption
	// SyncPolicy picks when a durable store's publish ack is on disk
	// (Config.Sync; meaningful only with Config.DataDir).
	SyncPolicy = core.SyncPolicy
)

// Durability policies for Config.Sync, ordered by cost: acked once the OS
// has the bytes (buffered), acked after a shared group-commit fsync, acked
// after the commit's own inline fsync.
const (
	SyncNone        = core.SyncNone
	SyncGroupCommit = core.SyncGroupCommit
	SyncAlways      = core.SyncAlways
)

// WithPathFlushWindow overrides the store-wide coalescing window for one
// published document: hot classes can coalesce harder than cold ones. Pass
// it to Manager.PublishInterface / StartPublication.
func WithPathFlushWindow(d time.Duration) PublishOption {
	return core.WithPathFlushWindow(d)
}

// CDE types.
type (
	// Client is a live CDE client.
	Client = cde.Client
	// Debugger records failed calls and supports TryAgain.
	Debugger = cde.Debugger
	// Exception is a failed call recorded by the debugger.
	Exception = cde.Exception
	// StaleMethodError reports a call to a method no longer on the server
	// interface; the client's view has been refreshed by delivery time.
	StaleMethodError = cde.StaleMethodError
	// DocMatch describes how a binding's interface documents are
	// recognized by Dial.
	DocMatch = cde.DocMatch
	// DialOptions is the resolved form of Dial's functional options,
	// passed through to a Binding's Connect.
	DialOptions = cde.DialOptions
)

// Binding is one RMI technology, pluggable process-wide via
// RegisterBinding. The SDE/CDE treat SOAP, CORBA, JSON, and any third-party
// technology through this one interface — a technology is a registry
// entry, not a cross-cutting edit.
//
// The contract for implementers:
//
//   - Name is the technology's registry key, used by Manager.Register
//     (as the Technology argument) and WithBinding. It must be non-empty
//     and stable.
//   - Serve deploys a dynamic class as a live server under a Manager,
//     returning a core.Server. It must publish an initial interface
//     description before returning (use Manager.NewPublisher +
//     Manager.InterfaceServer), refuse calls until CreateInstance is
//     called, resolve every incoming call against the class's *live*
//     interface, run the forced-publication protocol (DLPublisher
//     .EnsureCurrent, gated on Manager.ReactivePublication) before
//     replying "non-existent method" to a stale call, and call
//     Manager.Unregister from Close. HTTP-based transports should mount
//     on Manager.MountHTTP; others own their listeners.
//   - Describe reports how the binding's published interface documents
//     are recognized, so Dial can route to it without an explicit option.
//   - Connect builds a live Client from an interface-document URL. It
//     must honor ctx for all I/O and pass opts through to
//     cde.NewClientContext so WithTimeout and WithDebugger work. Its
//     "non-existent method" transport error must be reported by the
//     backend's IsStale, which is what triggers the client's reactive
//     interface refresh.
//
// Watch capability (optional): a binding whose client backend also
// implements cde.WatchableBackend — one extra method, WatchInterface(ctx,
// after), blocking until the published document is newer than `after` and
// returning the compiled view — becomes usable with WithWatch: clients get
// push-invalidated interface caches instead of per-call refetches. Adding
// cde.StreamingBackend (StreamInterface, usually one call to
// DocSource.Stream plus the binding's document compiler) upgrades the
// watcher to the streaming transport. Server halves that publish through
// Manager.PublishInterface get both watch endpoints ("?watch=1&after=N"
// long-poll and "?watch=stream&after=N" SSE on the document URL) for free,
// because the Interface Server is a read view over the manager's journaled
// publication store (see internal/jsonb for the few-line version of both
// client methods). Bindings without the capability still work everywhere
// except WithWatch, which fails loudly at Dial time.
//
// internal/jsonb implements the full contract in ~400 lines and is wired
// up purely through RegisterBinding.
//
// internal/h2b is the binary worked example: the same contract carrying
// CDR-encoded bodies over HTTP/2 streams. It shows the two degrees of
// freedom HTTP-based bindings have beyond jsonb — a binding may own a
// dedicated listener next to its MountHTTP mount (h2b's multiplexed fast
// path, the way CORBA owns its IIOP port) as long as Close releases it,
// and its interface document may carry extra transport keys (h2b's
// "mux_endpoint") provided Describe still recognizes documents without
// them. Neither needs core or cde edits: both halves arrive through
// RegisterBinding like any other technology. See docs/h2b-protocol.md
// for its wire format.
type Binding interface {
	// Name is the technology name ("SOAP", "CORBA", "JSON", ...).
	Name() string
	// Serve deploys class as a live server under m.
	Serve(m *Manager, class *Class) (Server, error)
	// Describe reports how the binding's interface documents look.
	Describe() DocMatch
	// Connect builds a live client from an interface-document URL.
	Connect(ctx context.Context, url string, opts *DialOptions) (*Client, error)
}

// RegisterBinding adds (or replaces, by name) an RMI technology in the
// process-wide registry: its server half becomes available to
// Manager.Register and its client half to Dial.
func RegisterBinding(b Binding) {
	core.RegisterBinding(serverHalf{b})
	cde.RegisterConnector(cde.Connector{Name: b.Name(), Match: b.Describe(), Connect: b.Connect})
}

// Bindings returns the names of all registered server bindings, sorted.
func Bindings() []string { return core.BindingNames() }

// serverHalf adapts a Binding to the core registry's narrower interface.
type serverHalf struct{ b Binding }

func (s serverHalf) Name() string { return s.b.Name() }
func (s serverHalf) Serve(m *core.Manager, class *dyn.Class) (core.Server, error) {
	return s.b.Serve(m, class)
}

// Bridge is a live, binding-agnostic re-export: the class behind a CDE
// client served over another registered RMI technology. See ReExport.
type Bridge = bridge.Front

// ReExport deploys a re-export of the class behind backend as a live
// server of technology tech under m — SOAP served over CORBA, CORBA over
// JSON, or any other direction the binding registry supports. The bridge
// mirrors the backend's live interface into a proxy class whose methods
// forward over the backend; backend-side edits propagate through the
// bridge's own publication (event-driven when backend was dialed with
// WithWatch), and stale bridged calls keep the Section 5.7 recency
// guarantee end to end. The caller owns backend and must close it after
// the bridge.
func ReExport(m *Manager, name string, backend *Client, tech Technology) (*Bridge, error) {
	return bridge.New(m, name, backend, tech)
}

// JSONBinding returns the built-in JSON/HTTP binding — dynamic classes
// served over JSON-POST with a machine-readable interface document. It is
// not registered by default; pass it to RegisterBinding to enable it:
//
//	livedev.RegisterBinding(livedev.JSONBinding())
//	srv, _ := mgr.Register(class, livedev.Technology("JSON"))
//	client, _ := livedev.Dial(ctx, srv.InterfaceURL())
func JSONBinding() Binding { return jsonb.New() }

// H2BBinding returns the built-in multiplexed binary binding — dynamic
// classes called with CDR-encoded bodies over cleartext HTTP/2 (one TCP
// connection per endpoint, concurrent calls as concurrent streams; see
// docs/h2b-protocol.md). It is not registered by default; pass it to
// RegisterBinding to enable it:
//
//	livedev.RegisterBinding(livedev.H2BBinding())
//	srv, _ := mgr.Register(class, livedev.Technology("H2B"))
//	client, _ := livedev.Dial(ctx, srv.InterfaceURL())
func H2BBinding() Binding { return h2b.New() }

// Option configures a Dial.
type Option func(*DialOptions)

// WithHTTPClient sets the HTTP client used for interface-document fetches
// and, by HTTP-based bindings, for calls.
func WithHTTPClient(hc *http.Client) Option {
	return func(o *DialOptions) { o.HTTPClient = hc }
}

// WithTimeout sets a default per-call timeout: every call made through the
// client whose context carries no deadline of its own is bounded by d, as
// is the Dial itself (document sniffing, connect, initial interface fetch)
// when ctx has no deadline.
func WithTimeout(d time.Duration) Option {
	return func(o *DialOptions) { o.Timeout = d }
}

// WithBinding forces the named binding instead of sniffing the interface
// document.
func WithBinding(name string) Option {
	return func(o *DialOptions) { o.Binding = name }
}

// WithWatch subscribes the client to push-based interface updates: a
// watcher follows the published interface document and installs each new
// version into the client's view as it is committed. A stale call is then
// resolved from this push-invalidated cache — the reactive refresh of
// Section 6 without a per-call document refetch.
//
// The watcher picks its transport automatically: it prefers the Interface
// Server's streaming watch ("?watch=stream&after=N", one held SSE
// connection per client; a broken connection reconnects with the last seen
// store epoch and is caught up from the server's journal replay instead of
// refetching) and degrades to the long-poll protocol ("?watch=1&after=N")
// against servers without the streaming endpoint. ClientStats
// (StreamEvents, Reconnects, Replays vs Refreshes) makes the chosen path
// observable. Dial fails if the chosen binding's backend does not implement
// the optional watch capability (cde.WatchableBackend); all three built-in
// bindings implement the streaming flavor (cde.StreamingBackend).
func WithWatch() Option {
	return func(o *DialOptions) { o.Watch = true }
}

// WithDebugger installs prompt as the client debugger's hook: it is
// invoked synchronously for every recorded stale-call exception (the
// paper's Figure 9 dialog).
func WithDebugger(prompt func(Exception)) Option {
	return func(o *DialOptions) { o.Prompt = prompt }
}

// WithAuxURL supplies a binding-specific secondary document URL — for the
// CORBA binding, the stringified-IOR URL when it cannot be derived from
// the IDL URL by path convention (or vice versa).
func WithAuxURL(url string) Option {
	return func(o *DialOptions) { o.AuxURL = url }
}

// WithEndpoints supplies equivalent Interface Server base URLs — a leader
// and its read-only replicas (Config.FollowURL / sde-server -follow).
// Document fetches and watch streams rotate to the next endpoint when the
// current one fails, so a replica dying mid-session is ridden out by the
// watcher's ordinary reconnect: the replicas serve the leader's restart
// generation, so the switch is journal catch-up, never a state-loss
// restart. The dialed URL's path is kept; only scheme and host rotate.
func WithEndpoints(urls ...string) Option {
	return func(o *DialOptions) { o.Endpoints = append(o.Endpoints, urls...) }
}

// WithDirector points the client at a fronting director (sde-director):
// Dial asks it for the current replica set once and dials with those
// endpoints, as if they had been passed to WithEndpoints.
func WithDirector(url string) Option {
	return func(o *DialOptions) { o.DirectorURL = url }
}

// Dial builds a live CDE client from a published interface-document URL.
// The document is fetched once and each registered binding's Describe is
// scored against it (content type, then URL suffix, then content sniff);
// the winning binding connects. Use WithBinding to skip sniffing, and
// CallContext on the returned client to carry deadlines per call.
func Dial(ctx context.Context, url string, opts ...Option) (*Client, error) {
	var o DialOptions
	for _, opt := range opts {
		opt(&o)
	}
	return cde.Dial(ctx, url, &o)
}

// Technologies supported by the initial SDE implementation. Any registered
// binding's name converts to a Technology the same way.
const (
	TechSOAP  = core.TechSOAP
	TechCORBA = core.TechCORBA
)

// Sentinel errors re-exported from the CDE.
var (
	// ErrStaleMethod matches StaleMethodError via errors.Is.
	ErrStaleMethod = cde.ErrStaleMethod
	// ErrNoSuchStub reports a call to a method absent from the client's
	// interface view even after a refresh.
	ErrNoSuchStub = cde.ErrNoSuchStub
)

// Predeclared primitive types.
var (
	VoidType    = dyn.Void
	BooleanType = dyn.Boolean
	CharType    = dyn.Char
	Int32Type   = dyn.Int32T
	Int64Type   = dyn.Int64T
	Float32Type = dyn.Float32T
	Float64Type = dyn.Float64T
	StringType  = dyn.StringT
)

// NewClass creates an empty dynamic class.
func NewClass(name string) *Class { return dyn.NewClass(name) }

// NewManager creates and starts an SDE Manager.
func NewManager(cfg Config) (*Manager, error) { return core.NewManager(cfg) }

// ConnectSOAP builds a live client from a published WSDL document URL.
//
// Deprecated: use Dial, which adds context, sniffing, and options.
func ConnectSOAP(wsdlURL string) (*Client, error) {
	return cde.NewSOAPClient(wsdlURL, nil)
}

// ConnectSOAPWithHTTP is ConnectSOAP with a custom HTTP client.
//
// Deprecated: use Dial with WithHTTPClient.
func ConnectSOAPWithHTTP(wsdlURL string, hc *http.Client) (*Client, error) {
	return cde.NewSOAPClient(wsdlURL, hc)
}

// ConnectCORBA builds a live client from published CORBA-IDL and IOR URLs.
//
// Deprecated: use Dial with WithAuxURL (or the /idl/ <-> /ior/ path
// convention).
func ConnectCORBA(idlURL, iorURL string) (*Client, error) {
	return cde.NewCORBAClient(idlURL, iorURL, nil)
}

// Value constructors.

// Bool returns a boolean value.
func Bool(v bool) Value { return dyn.BoolValue(v) }

// Char returns a char value.
func Char(v rune) Value { return dyn.CharValue(v) }

// Int32 returns an int32 value.
func Int32(v int32) Value { return dyn.Int32Value(v) }

// Int64 returns an int64 value.
func Int64(v int64) Value { return dyn.Int64Value(v) }

// Float32 returns a float32 value.
func Float32(v float32) Value { return dyn.Float32Value(v) }

// Float64 returns a float64 value.
func Float64(v float64) Value { return dyn.Float64Value(v) }

// Str returns a string value.
func Str(v string) Value { return dyn.StringValue(v) }

// Void returns the void value.
func Void() Value { return dyn.VoidValue() }

// StructOf declares a named struct type.
func StructOf(name string, fields ...StructField) (*Type, error) {
	return dyn.StructOf(name, fields...)
}

// MustStructOf is StructOf but panics on error.
func MustStructOf(name string, fields ...StructField) *Type {
	return dyn.MustStructOf(name, fields...)
}

// SequenceOf returns a sequence type.
func SequenceOf(elem *Type) *Type { return dyn.SequenceOf(elem) }

// Struct builds a struct value.
func Struct(t *Type, fieldVals ...Value) (Value, error) {
	return dyn.StructValue(t, fieldVals...)
}

// Sequence builds a sequence value.
func Sequence(elem *Type, elems ...Value) (Value, error) {
	return dyn.SequenceValue(elem, elems...)
}
