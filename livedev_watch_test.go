package livedev_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"livedev"
	"livedev/internal/cde"
)

// startEchoServer deploys a one-method class under a fresh manager and
// returns the server plus the class. The long stability timeout keeps the
// timer-driven publication path out of the way, so the tests below observe
// exactly the forced-publication + watch interplay they target.
func startEchoServer(t *testing.T, tech livedev.Technology, cfg livedev.Config) (livedev.Server, *livedev.Class) {
	t.Helper()
	mgr, err := livedev.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mgr.Close() })
	class := livedev.NewClass("WatchEcho")
	if _, err := class.AddMethod(livedev.MethodSpec{
		Name:        "echo",
		Params:      []livedev.Param{{Name: "s", Type: livedev.StringType}},
		Result:      livedev.StringType,
		Distributed: true,
		Body: func(_ *livedev.Instance, args []livedev.Value) (livedev.Value, error) {
			return args[0], nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	srv, err := mgr.Register(class, tech)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	return srv, class
}

// TestWatchStaleCallServedFromCache is the acceptance scenario: a
// watch-subscribed client resolves a stale call from its push-invalidated
// cache — the reactive refresh happens with zero per-call document
// refetches, on every binding.
func TestWatchStaleCallServedFromCache(t *testing.T) {
	for _, tech := range []livedev.Technology{livedev.TechSOAP, livedev.TechCORBA} {
		t.Run(string(tech), func(t *testing.T) {
			srv, class := startEchoServer(t, tech, livedev.Config{Timeout: 10 * time.Second})
			ctx := context.Background()
			client, err := livedev.Dial(ctx, srv.InterfaceURL(), livedev.WithWatch())
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = client.Close() }()
			baseRefreshes := client.Stats().Refreshes

			// Live edit; the 10s stability timeout means nothing publishes
			// until the stale call forces it.
			id, _ := class.MethodIDByName("echo")
			if err := class.RenameMethod(id, "echo2"); err != nil {
				t.Fatal(err)
			}

			_, err = client.CallContext(ctx, "echo", livedev.Str("x"))
			if !errors.Is(err, livedev.ErrStaleMethod) {
				t.Fatalf("stale call: %v", err)
			}
			if _, ok := client.Interface().Lookup("echo2"); !ok {
				t.Fatal("view must show the rename after the stale call")
			}
			st := client.Stats()
			if st.Refreshes != baseRefreshes {
				t.Errorf("stale call refetched the document %d times; the watch cache should have served it",
					st.Refreshes-baseRefreshes)
			}
			if st.WatchUpdates == 0 {
				t.Error("no watch updates recorded")
			}
			got, err := client.CallContext(ctx, "echo2", livedev.Str("y"))
			if err != nil || got.Str() != "y" {
				t.Errorf("post-refresh call = %v, %v", got, err)
			}
		})
	}
}

// TestWatchTimerPublicationPushes: the regular (stable-timeout) publication
// path also reaches watch-subscribed clients, with no client polling.
func TestWatchTimerPublicationPushes(t *testing.T) {
	srv, class := startEchoServer(t, livedev.TechSOAP, livedev.Config{Timeout: 20 * time.Millisecond})
	ctx := context.Background()
	client, err := livedev.Dial(ctx, srv.InterfaceURL(), livedev.WithWatch())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	id, _ := class.MethodIDByName("echo")
	if err := class.RenameMethod(id, "renamed"); err != nil {
		t.Fatal(err)
	}
	srv.Publisher().PublishNow()
	srv.Publisher().WaitIdle()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := client.Interface().Lookup("renamed"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("push did not reach the watch-subscribed client")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if client.Stats().WatchUpdates == 0 {
		t.Error("update should have arrived via watch")
	}
}

// TestWatchConcurrentSubscribeUnsubscribe races watch-subscribed clients
// connecting, receiving pushes, and closing against a stream of live edits
// — run under -race. The surviving clients must converge on the final
// interface.
func TestWatchConcurrentSubscribeUnsubscribe(t *testing.T) {
	srv, class := startEchoServer(t, livedev.TechSOAP, livedev.Config{Timeout: 5 * time.Millisecond})
	ctx := context.Background()

	const clients = 6
	var wg sync.WaitGroup
	survivors := make([]*livedev.Client, clients/2)

	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := livedev.Dial(ctx, srv.InterfaceURL(), livedev.WithWatch())
			if err != nil {
				t.Error(err)
				return
			}
			if i%2 == 0 {
				// Half the clients churn: subscribe, let a few pushes land,
				// unsubscribe mid-storm.
				time.Sleep(time.Duration(5+i) * time.Millisecond)
				_ = c.Close()
				return
			}
			survivors[i/2] = c
		}(i)
	}

	// The edit storm runs while clients churn.
	id, _ := class.MethodIDByName("echo")
	name := "echo"
	for i := 0; i < 30; i++ {
		next := fmt.Sprintf("m%02d", i)
		if err := class.RenameMethod(id, next); err != nil {
			t.Fatal(err)
		}
		name = next
		time.Sleep(2 * time.Millisecond)
	}
	srv.Publisher().PublishNow()
	srv.Publisher().WaitIdle()
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for _, c := range survivors {
		if c == nil {
			continue
		}
		for {
			if _, ok := c.Interface().Lookup(name); ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("a surviving client never converged on %s", name)
			}
			time.Sleep(5 * time.Millisecond)
		}
		_ = c.Close()
	}
}

// TestIIOPConnectionPoolSharing: two CORBA Dials against the same published
// IOR multiplex one pooled IIOP connection; the connection survives the
// first Close and is torn down by the last.
func TestIIOPConnectionPoolSharing(t *testing.T) {
	srv, _ := startEchoServer(t, livedev.TechCORBA, livedev.Config{Timeout: time.Second})
	ctx := context.Background()

	conns0, refs0 := cde.IIOPPoolStats()
	c1, err := livedev.Dial(ctx, srv.InterfaceURL())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := livedev.Dial(ctx, srv.InterfaceURL())
	if err != nil {
		t.Fatal(err)
	}
	conns, refs := cde.IIOPPoolStats()
	if conns != conns0+1 || refs != refs0+2 {
		t.Errorf("pool after two dials: %d conns (+%d), %d refs (+%d); want +1/+2",
			conns, conns-conns0, refs, refs-refs0)
	}

	// Both clients call over the shared connection.
	for _, c := range []*livedev.Client{c1, c2} {
		if got, err := c.CallContext(ctx, "echo", livedev.Str("hi")); err != nil || got.Str() != "hi" {
			t.Fatalf("pooled call = %v, %v", got, err)
		}
	}

	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	if got, err := c2.CallContext(ctx, "echo", livedev.Str("still up")); err != nil || got.Str() != "still up" {
		t.Fatalf("call after sibling close = %v, %v", got, err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	conns, refs = cde.IIOPPoolStats()
	if conns != conns0 || refs != refs0 {
		t.Errorf("pool after both closes: %d conns, %d refs; want %d/%d", conns, refs, conns0, refs0)
	}
}

// TestIIOPPoolEvictsBrokenConnection: when the server behind a pooled
// connection goes away, the next Dial must not inherit the dead socket —
// the pool evicts it and reconnects.
func TestIIOPPoolEvictsBrokenConnection(t *testing.T) {
	mgr, err := livedev.NewManager(livedev.Config{Timeout: time.Second, CORBAAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mgr.Close() }()
	class := livedev.NewClass("Evict")
	if _, err := class.AddMethod(livedev.MethodSpec{
		Name: "ping", Result: livedev.StringType, Distributed: true,
		Body: func(*livedev.Instance, []livedev.Value) (livedev.Value, error) {
			return livedev.Str("pong"), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	srv, err := mgr.Register(class, livedev.TechCORBA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	iorURL := srv.InterfaceURL() // IDL; IOR derived by convention

	c1, err := livedev.Dial(ctx, iorURL)
	if err != nil {
		t.Fatal(err)
	}
	// Hold c1 open while the manager (and its ORB) shuts down, killing the
	// pooled connection under it.
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.CallContext(ctx, "ping"); err == nil {
		t.Fatal("call over a dead pooled connection should fail")
	}

	// A fresh server on a new manager; c1 still holds the broken entry.
	mgr2, err := livedev.NewManager(livedev.Config{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mgr2.Close() }()
	class2 := livedev.NewClass("Evict")
	if _, err := class2.AddMethod(livedev.MethodSpec{
		Name: "ping", Result: livedev.StringType, Distributed: true,
		Body: func(*livedev.Instance, []livedev.Value) (livedev.Value, error) {
			return livedev.Str("pong2"), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	srv2, err := mgr2.Register(class2, livedev.TechCORBA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	c2, err := livedev.Dial(ctx, srv2.InterfaceURL())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c2.Close() }()
	got, err := c2.CallContext(ctx, "ping")
	if err != nil || got.Str() != "pong2" {
		t.Fatalf("dial after server restart = %v, %v", got, err)
	}
	_ = c1.Close()
}

// TestWatchRidesStreamTransportAllBindings pins the transport choice: a
// WithWatch client against our own servers holds one SSE stream (per-commit
// events, zero refetches) on every registered binding — the long-poll path
// remains only a fallback for servers without the streaming endpoint.
func TestWatchRidesStreamTransportAllBindings(t *testing.T) {
	livedev.RegisterBinding(livedev.JSONBinding())
	for _, tech := range []livedev.Technology{livedev.TechSOAP, livedev.TechCORBA, livedev.Technology("JSON")} {
		t.Run(string(tech), func(t *testing.T) {
			srv, class := startEchoServer(t, tech, livedev.Config{Timeout: time.Millisecond})
			ctx := context.Background()
			client, err := livedev.Dial(ctx, srv.InterfaceURL(), livedev.WithWatch())
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = client.Close() }()

			id, _ := class.MethodIDByName("echo")
			if err := class.RenameMethod(id, "echoed"); err != nil {
				t.Fatal(err)
			}
			srv.Publisher().PublishNow()
			srv.Publisher().WaitIdle()

			deadline := time.Now().Add(5 * time.Second)
			for {
				if _, ok := client.Interface().Lookup("echoed"); ok {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("watch client did not converge on the edit")
				}
				time.Sleep(2 * time.Millisecond)
			}
			st := client.Stats()
			if st.StreamEvents == 0 {
				t.Errorf("stats = %+v: the update should have arrived over the streaming transport", st)
			}
			if st.Refreshes != 1 {
				t.Errorf("stats = %+v: only the initial fetch should have hit the document endpoint", st)
			}
		})
	}
}
