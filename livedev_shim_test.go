//lint:file-ignore SA1019 this file is the compile-time proof that the deprecated v1 shims keep their signatures; it uses them on purpose.

package livedev_test

import (
	"net/http"
	"testing"
	"time"

	"livedev"
	"livedev/internal/core"
	"livedev/internal/dyn"
)

// TestV1ShimsKeepTheirSignatures pins the deprecated v1 surface at compile
// time (first-party code has migrated to Dial + CallContext; these shims
// stay for external users). The assignments fail to compile if a shim's
// signature drifts.
func TestV1ShimsKeepTheirSignatures(t *testing.T) {
	var _ func(string) (*livedev.Client, error) = livedev.ConnectSOAP
	var _ func(string, *http.Client) (*livedev.Client, error) = livedev.ConnectSOAPWithHTTP
	var _ func(string, string) (*livedev.Client, error) = livedev.ConnectCORBA
	var _ func(*livedev.Client, string, ...livedev.Value) (livedev.Value, error) = (*livedev.Client).Call
	var _ func(*livedev.Debugger) (livedev.Value, error) = (*livedev.Debugger).TryAgain

	// Config.SOAPAddr and Manager.SOAPBaseURL keep working as aliases.
	cfg := livedev.Config{SOAPAddr: "127.0.0.1:0", Timeout: 50 * time.Millisecond}
	mgr, err := livedev.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mgr.Close() }()
	if mgr.SOAPBaseURL() != mgr.HTTPBaseURL() {
		t.Error("SOAPBaseURL must alias HTTPBaseURL")
	}

	// The context-free call path still runs end to end.
	class := livedev.NewClass("ShimEcho")
	if _, err := class.AddMethod(livedev.MethodSpec{
		Name:        "echo",
		Params:      []livedev.Param{{Name: "s", Type: livedev.StringType}},
		Result:      livedev.StringType,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return args[0], nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	srv, err := mgr.Register(class, core.TechSOAP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	client, err := livedev.ConnectSOAP(srv.InterfaceURL())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	got, err := client.Call("echo", livedev.Str("shim"))
	if err != nil || got.Str() != "shim" {
		t.Fatalf("v1 Call = %v, %v", got, err)
	}
}
