package orb

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"livedev/internal/dyn"
	"livedev/internal/giop"
	"livedev/internal/ior"
)

// classTarget adapts a dyn class instance to DSITarget for tests; it is the
// shape the SDE's CORBA Call Handler takes.
type classTarget struct {
	in      *dyn.Instance
	missing atomic.Int64
}

func (t *classTarget) LookupOperation(op string) (dyn.MethodSig, bool) {
	return t.in.Class().Interface().Lookup(op)
}

func (t *classTarget) InvokeOperation(_ context.Context, op string, args []dyn.Value) (dyn.Value, error) {
	return t.in.InvokeDistributed(op, args...)
}

func (t *classTarget) OperationMissing(string) { t.missing.Add(1) }

var _ DSITarget = (*classTarget)(nil)

func newCalcTarget(t *testing.T) (*classTarget, *dyn.Class, dyn.MemberID) {
	t.Helper()
	c := dyn.NewClass("Calc")
	id, err := c.AddMethod(dyn.MethodSpec{
		Name:        "add",
		Params:      []dyn.Param{{Name: "a", Type: dyn.Int32T}, {Name: "b", Type: dyn.Int32T}},
		Result:      dyn.Int32T,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return dyn.Int32Value(args[0].Int32() + args[1].Int32()), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddMethod(dyn.MethodSpec{
		Name:        "fail",
		Result:      dyn.StringT,
		Distributed: true,
		Body: func(_ *dyn.Instance, _ []dyn.Value) (dyn.Value, error) {
			return dyn.Value{}, errors.New("mailbox unavailable")
		},
	}); err != nil {
		t.Fatal(err)
	}
	return &classTarget{in: c.NewInstance()}, c, id
}

func startORB(t *testing.T, target DSITarget) (*ClientORB, func()) {
	t.Helper()
	s := NewServerORB("IDL:CalcModule/Calc:1.0", []byte("calc"), target)
	ref, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() == nil {
		t.Fatal("Addr should be set after Listen")
	}
	cl, err := DialIOR(ref)
	if err != nil {
		_ = s.Close()
		t.Fatal(err)
	}
	return cl, func() {
		_ = cl.Close()
		_ = s.Close()
	}
}

func addSig() dyn.MethodSig {
	return dyn.MethodSig{
		Name:   "add",
		Params: []dyn.Param{{Name: "a", Type: dyn.Int32T}, {Name: "b", Type: dyn.Int32T}},
		Result: dyn.Int32T,
	}
}

func TestInvokeSuccess(t *testing.T) {
	target, _, _ := newCalcTarget(t)
	cl, stop := startORB(t, target)
	defer stop()

	if cl.TypeID() != "IDL:CalcModule/Calc:1.0" {
		t.Errorf("TypeID = %q", cl.TypeID())
	}
	got, err := cl.Invoke(addSig(), []dyn.Value{dyn.Int32Value(20), dyn.Int32Value(22)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Int32() != 42 {
		t.Errorf("add = %v", got)
	}
}

func TestInvokeNonExistentMethod(t *testing.T) {
	target, _, _ := newCalcTarget(t)
	cl, stop := startORB(t, target)
	defer stop()

	sig := dyn.MethodSig{Name: "ghost", Result: dyn.Int32T}
	_, err := cl.Invoke(sig, nil)
	if !errors.Is(err, ErrNonExistentMethod) {
		t.Fatalf("ghost: %v", err)
	}
	// The missing-operation hook (forced publication point) fired first.
	if target.missing.Load() != 1 {
		t.Errorf("OperationMissing calls = %d", target.missing.Load())
	}
	// The underlying system exception is preserved in the chain.
	if !giop.IsBadOperation(err) {
		t.Error("BAD_OPERATION should be in the error chain")
	}
}

func TestInvokeAfterLiveRemoval(t *testing.T) {
	target, c, id := newCalcTarget(t)
	cl, stop := startORB(t, target)
	defer stop()

	if _, err := cl.Invoke(addSig(), []dyn.Value{dyn.Int32Value(1), dyn.Int32Value(2)}); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveMethod(id); err != nil {
		t.Fatal(err)
	}
	_, err := cl.Invoke(addSig(), []dyn.Value{dyn.Int32Value(1), dyn.Int32Value(2)})
	if !errors.Is(err, ErrNonExistentMethod) {
		t.Fatalf("after removal: %v", err)
	}
}

func TestInvokeApplicationError(t *testing.T) {
	target, _, _ := newCalcTarget(t)
	cl, stop := startORB(t, target)
	defer stop()

	_, err := cl.Invoke(dyn.MethodSig{Name: "fail", Result: dyn.StringT}, nil)
	var appErr *AppError
	if !errors.As(err, &appErr) {
		t.Fatalf("fail: %v", err)
	}
	if appErr.Message != "mailbox unavailable" {
		t.Errorf("message = %q", appErr.Message)
	}
	if appErr.Error() == "" {
		t.Error("Error() empty")
	}
}

func TestInvokeClientSideTypeChecks(t *testing.T) {
	target, _, _ := newCalcTarget(t)
	cl, stop := startORB(t, target)
	defer stop()

	if _, err := cl.Invoke(addSig(), []dyn.Value{dyn.Int32Value(1)}); err == nil {
		t.Error("wrong arity should fail client-side")
	}
	if _, err := cl.Invoke(addSig(), []dyn.Value{dyn.Int32Value(1), dyn.StringValue("x")}); err == nil {
		t.Error("wrong type should fail client-side")
	}
}

func TestWrongObjectKey(t *testing.T) {
	target, _, _ := newCalcTarget(t)
	s := NewServerORB("IDL:CalcModule/Calc:1.0", []byte("calc"), target)
	ref, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Corrupt the object key.
	ref.Profiles[0].ObjectKey = []byte("wrong")
	cl, err := DialIOR(ref)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	_, err = cl.Invoke(addSig(), []dyn.Value{dyn.Int32Value(1), dyn.Int32Value(2)})
	se, ok := giop.AsSystemException(err)
	if !ok || se.RepoID != giop.RepoObjectNotExist {
		t.Errorf("wrong key: %v", err)
	}
}

// Stale client signature: the client believes add takes one string while
// the server's live signature is (int32, int32). Per Section 5.6 ("Client
// calls for stale method signatures may also trigger updates"), the server
// must treat undecodable or leftover arguments as a stale call: run the
// forced-publication hook and reply Non Existent Method.
func TestStaleSignatureTreatedAsStaleCall(t *testing.T) {
	target, _, _ := newCalcTarget(t)
	cl, stop := startORB(t, target)
	defer stop()

	staleSig := dyn.MethodSig{
		Name:   "add",
		Params: []dyn.Param{{Name: "s", Type: dyn.StringT}},
		Result: dyn.Int32T,
	}
	_, err := cl.Invoke(staleSig, []dyn.Value{dyn.StringValue("xy")})
	if !errors.Is(err, ErrNonExistentMethod) {
		t.Fatalf("stale signature: %v", err)
	}
	if target.missing.Load() != 1 {
		t.Errorf("OperationMissing calls = %d, want 1", target.missing.Load())
	}

	// The reverse direction: the stale signature has MORE arguments than
	// the live one (extra octets remain after decoding).
	staleWide := dyn.MethodSig{
		Name: "add",
		Params: []dyn.Param{
			{Name: "a", Type: dyn.Int32T}, {Name: "b", Type: dyn.Int32T}, {Name: "c", Type: dyn.Int32T},
		},
		Result: dyn.Int32T,
	}
	_, err = cl.Invoke(staleWide, []dyn.Value{dyn.Int32Value(1), dyn.Int32Value(2), dyn.Int32Value(3)})
	if !errors.Is(err, ErrNonExistentMethod) {
		t.Fatalf("extra-args stale signature: %v", err)
	}
	if target.missing.Load() != 2 {
		t.Errorf("OperationMissing calls = %d, want 2", target.missing.Load())
	}
}

func TestConcurrentInvocations(t *testing.T) {
	target, _, _ := newCalcTarget(t)
	cl, stop := startORB(t, target)
	defer stop()

	var wg sync.WaitGroup
	for i := int32(0); i < 16; i++ {
		wg.Add(1)
		go func(n int32) {
			defer wg.Done()
			got, err := cl.Invoke(addSig(), []dyn.Value{dyn.Int32Value(n), dyn.Int32Value(n)})
			if err != nil {
				t.Errorf("invoke %d: %v", n, err)
				return
			}
			if got.Int32() != 2*n {
				t.Errorf("add(%d,%d) = %v", n, n, got)
			}
		}(i)
	}
	wg.Wait()
}

func TestVoidResult(t *testing.T) {
	c := dyn.NewClass("Svc")
	pinged := make(chan struct{}, 1)
	if _, err := c.AddMethod(dyn.MethodSpec{
		Name:        "ping",
		Distributed: true,
		Body: func(_ *dyn.Instance, _ []dyn.Value) (dyn.Value, error) {
			pinged <- struct{}{}
			return dyn.VoidValue(), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	target := &classTarget{in: c.NewInstance()}
	cl, stop := startORB(t, target)
	defer stop()

	got, err := cl.Invoke(dyn.MethodSig{Name: "ping", Result: dyn.Void}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsVoid() {
		t.Errorf("result = %v", got)
	}
	<-pinged
}

func TestDialIORErrors(t *testing.T) {
	// No IIOP profile.
	if _, err := DialIOR(ior.IOR{}); err == nil {
		t.Error("IOR without profiles should fail")
	}
	// Unreachable endpoint.
	if _, err := DialIOR(ior.New("IDL:X:1.0", "127.0.0.1", 1, nil)); err == nil {
		t.Error("unreachable endpoint should fail")
	}
}
