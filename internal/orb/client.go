package orb

import (
	"context"
	"errors"
	"fmt"

	"livedev/internal/cdr"
	"livedev/internal/dyn"
	"livedev/internal/giop"
	"livedev/internal/iiop"
	"livedev/internal/ior"
)

// ErrNonExistentMethod is the client-visible form of the paper's "Non
// Existent Method" exception on the CORBA path: the server's live interface
// no longer (or does not yet) contain the invoked operation. Receiving it
// guarantees the server has already published an up-to-date interface
// description (Section 5.7), so the CDE reacts by re-fetching the IDL.
var ErrNonExistentMethod = errors.New("orb: non-existent method")

// ClientORB is a DII client endpoint bound to one remote object.
type ClientORB struct {
	conn      *iiop.Conn
	objectKey []byte
	typeID    string
	order     cdr.ByteOrder
}

// DialIOR is DialIORContext with a background context.
func DialIOR(r ior.IOR) (*ClientORB, error) {
	return DialIORContext(context.Background(), r)
}

// DialIORContext connects to the object an IOR designates (paper Figure 2:
// the IOR initializes the client ORB). The TCP connect is bounded by ctx.
func DialIORContext(ctx context.Context, r ior.IOR) (*ClientORB, error) {
	p, err := r.FirstIIOP()
	if err != nil {
		return nil, err
	}
	conn, err := iiop.DialContext(ctx, p.Addr())
	if err != nil {
		return nil, err
	}
	return &ClientORB{
		conn:      conn,
		objectKey: append([]byte(nil), p.ObjectKey...),
		typeID:    r.TypeID,
		order:     cdr.BigEndian,
	}, nil
}

// TypeID returns the repository id from the IOR.
func (o *ClientORB) TypeID() string { return o.typeID }

// Close tears down the connection.
func (o *ClientORB) Close() error { return o.conn.Close() }

// Broken reports whether the underlying IIOP connection is no longer
// usable (closed or failed); the CDE's connection pool evicts broken
// entries so new Dials reconnect instead of inheriting a dead socket.
func (o *ClientORB) Broken() bool { return o.conn.Broken() }

// Invoke is InvokeContext with a background context.
//
// Deprecated: use InvokeContext so the call can be cancelled.
func (o *ClientORB) Invoke(sig dyn.MethodSig, args []dyn.Value) (dyn.Value, error) {
	return o.InvokeContext(context.Background(), sig, args)
}

// InvokeContext performs a dynamic invocation: arguments are type-checked
// against sig, encoded in CDR, and the result is decoded per sig.Result.
// Cancelling ctx aborts the in-flight IIOP invocation (a GIOP CancelRequest
// is sent, the eventual reply is dropped) and returns an error wrapping
// ctx.Err().
//
// Error space: ErrNonExistentMethod (wrapping the BAD_OPERATION system
// exception) when the operation is gone from the live interface; *AppError
// for server application exceptions; *giop.SystemException for other
// system exceptions; context and transport errors otherwise.
func (o *ClientORB) InvokeContext(ctx context.Context, sig dyn.MethodSig, args []dyn.Value) (dyn.Value, error) {
	if len(args) != len(sig.Params) {
		return dyn.Value{}, fmt.Errorf("orb: %s takes %d arguments, got %d", sig.Name, len(sig.Params), len(args))
	}
	for i, p := range sig.Params {
		if !args[i].Type().Equal(p.Type) {
			return dyn.Value{}, fmt.Errorf("orb: %s parameter %s wants %s, got %s", sig.Name, p.Name, p.Type, args[i].Type())
		}
	}
	// InvokeInto scopes the reply body to the closure so the transport can
	// recycle its buffer; everything extracted below (values, exception
	// strings) is copied by the plain cdr read paths.
	var result dyn.Value
	err := o.conn.InvokeInto(ctx, o.objectKey, sig.Name, o.order, func(e *cdr.Encoder) error {
		for _, a := range args {
			if err := cdr.EncodeValue(e, a); err != nil {
				return err
			}
		}
		return nil
	}, func(hdr giop.ReplyHeader, body *cdr.Decoder) error {
		switch hdr.Status {
		case giop.ReplyNoException:
			v, err := cdr.DecodeValue(body, sig.Result)
			if err != nil {
				return fmt.Errorf("orb: decoding %s result: %w", sig.Name, err)
			}
			result = v
			return nil
		case giop.ReplyUserException:
			repoID, err := body.ReadString()
			if err != nil {
				return fmt.Errorf("orb: decoding user exception: %w", err)
			}
			if repoID != AppErrorRepoID {
				return fmt.Errorf("orb: unexpected user exception %s", repoID)
			}
			msg, err := body.ReadString()
			if err != nil {
				return fmt.Errorf("orb: decoding user exception message: %w", err)
			}
			return &AppError{Message: msg}
		case giop.ReplySystemException:
			se, err := giop.DecodeSystemException(body)
			if err != nil {
				return fmt.Errorf("orb: decoding system exception: %w", err)
			}
			if se.RepoID == giop.RepoBadOperation {
				return fmt.Errorf("%w: %s: %w", ErrNonExistentMethod, sig.Name, se)
			}
			return se
		default:
			return fmt.Errorf("orb: unsupported reply status %s", hdr.Status)
		}
	})
	if err != nil {
		return dyn.Value{}, err
	}
	return result, nil
}
