package orb

import (
	"context"
	"errors"
	"testing"

	"livedev/internal/cdr"
	"livedev/internal/dyn"
	"livedev/internal/giop"
	"livedev/internal/iiop"
)

// TestClientEncodeErrorFailsLocally: an argument the CDR mapping rejects
// (a wide char) fails before anything is sent.
func TestClientEncodeErrorFailsLocally(t *testing.T) {
	target, _, _ := newCalcTarget(t)
	cl, stop := startORB(t, target)
	defer stop()

	sig := dyn.MethodSig{
		Name:   "add",
		Params: []dyn.Param{{Name: "c", Type: dyn.Char}, {Name: "b", Type: dyn.Int32T}},
		Result: dyn.Int32T,
	}
	_, err := cl.Invoke(sig, []dyn.Value{dyn.CharValue('λ'), dyn.Int32Value(1)})
	if err == nil {
		t.Fatal("wide char should fail to encode")
	}
	// Nothing reached the server's missing-operation hook.
	if target.missing.Load() != 0 {
		t.Error("encode failure must not reach the server")
	}
}

// TestClientRejectsUnknownUserException: a user exception with an
// unexpected repository id is surfaced as an error, not silently decoded.
func TestClientRejectsUnknownUserException(t *testing.T) {
	h := iiop.HandlerFunc(func(_ context.Context, rh giop.RequestHeader, _ *cdr.Decoder, order cdr.ByteOrder) giop.Message {
		msg, _ := giop.EncodeReply(order, giop.ReplyHeader{RequestID: rh.RequestID, Status: giop.ReplyUserException},
			func(e *cdr.Encoder) error {
				e.WriteString("IDL:Custom/Weird:1.0")
				return nil
			})
		return msg
	})
	srv := iiop.NewServer(h)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := &ClientORB{}
	conn, err := iiop.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	cl.conn = conn
	cl.order = cdr.BigEndian
	defer cl.Close()

	_, err = cl.Invoke(dyn.MethodSig{Name: "x", Result: dyn.Int32T}, nil)
	if err == nil {
		t.Fatal("unknown user exception should error")
	}
	var appErr *AppError
	if errors.As(err, &appErr) {
		t.Error("unknown repo id must not decode as AppError")
	}
}

// TestClientRejectsUnsupportedReplyStatus: LOCATION_FORWARD is not
// implemented; the client reports it instead of misinterpreting the body.
func TestClientRejectsUnsupportedReplyStatus(t *testing.T) {
	h := iiop.HandlerFunc(func(_ context.Context, rh giop.RequestHeader, _ *cdr.Decoder, order cdr.ByteOrder) giop.Message {
		msg, _ := giop.EncodeReply(order, giop.ReplyHeader{RequestID: rh.RequestID, Status: giop.ReplyLocationForward}, nil)
		return msg
	})
	srv := iiop.NewServer(h)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := iiop.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	cl := &ClientORB{conn: conn, order: cdr.BigEndian}
	defer cl.Close()

	if _, err := cl.Invoke(dyn.MethodSig{Name: "x", Result: dyn.Int32T}, nil); err == nil {
		t.Fatal("LOCATION_FORWARD should be reported as unsupported")
	}
}

// TestClientRejectsTruncatedResult: a NO_EXCEPTION reply whose body does
// not decode to the declared result type fails cleanly.
func TestClientRejectsTruncatedResult(t *testing.T) {
	h := iiop.HandlerFunc(func(_ context.Context, rh giop.RequestHeader, _ *cdr.Decoder, order cdr.ByteOrder) giop.Message {
		msg, _ := giop.EncodeReply(order, giop.ReplyHeader{RequestID: rh.RequestID, Status: giop.ReplyNoException},
			func(e *cdr.Encoder) error {
				e.WriteOctet(1) // not a valid int64
				return nil
			})
		return msg
	})
	srv := iiop.NewServer(h)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := iiop.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	cl := &ClientORB{conn: conn, order: cdr.BigEndian}
	defer cl.Close()

	if _, err := cl.Invoke(dyn.MethodSig{Name: "x", Result: dyn.Int64T}, nil); err == nil {
		t.Fatal("truncated result should fail")
	}
}

// TestServerEncodesResultFailure: a body returning a value the CDR mapping
// rejects (wide char) is reported as MARSHAL, not dropped.
func TestServerEncodesResultFailure(t *testing.T) {
	c := dyn.NewClass("Wide")
	if _, err := c.AddMethod(dyn.MethodSpec{
		Name:        "wide",
		Result:      dyn.Char,
		Distributed: true,
		Body: func(*dyn.Instance, []dyn.Value) (dyn.Value, error) {
			return dyn.CharValue('λ'), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	target := &classTarget{in: c.NewInstance()}
	cl, stop := startORB(t, target)
	defer stop()

	_, err := cl.Invoke(dyn.MethodSig{Name: "wide", Result: dyn.Char}, nil)
	se, ok := giop.AsSystemException(err)
	if !ok || se.RepoID != giop.RepoMarshal {
		t.Errorf("wide result: %v", err)
	}
}
