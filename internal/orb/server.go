// Package orb implements the CORBA Object Request Broker endpoints the
// paper's CORBA subsystem builds on (Figure 5). The ServerORB uses the
// Dynamic Skeleton Interface idea: it serves operations without static
// knowledge of the object's interface, resolving each incoming operation
// name against the *live* dynamic interface at dispatch time — which is
// what lets the SDE change server methods and types without reinitializing
// the ORB (Section 5.2.2). The ClientORB is a Dynamic Invocation Interface:
// it invokes operations by name with signatures obtained from parsed IDL,
// so the CDE can rebuild stubs live.
package orb

import (
	"context"
	"errors"
	"fmt"
	"net"

	"livedev/internal/cdr"
	"livedev/internal/dyn"
	"livedev/internal/giop"
	"livedev/internal/iiop"
	"livedev/internal/ior"
)

// AppErrorRepoID is the repository id of the generic user exception the SDE
// wraps server-side application errors in ("any exceptions thrown during
// the invocation of the method call is wrapped in a generic exception
// type", Section 5.2.3).
const AppErrorRepoID = "IDL:SDE/ApplicationError:1.0"

// AppError is a server-side application exception delivered to the client.
type AppError struct {
	Message string
}

// Error implements error.
func (e *AppError) Error() string { return "server application error: " + e.Message }

// DSITarget is what a ServerORB dispatches to: the SDE's CORBA Call
// Handler wraps the dynamic server instance in one. Implementations must be
// safe for concurrent use.
type DSITarget interface {
	// LookupOperation reports the signature op has on the current live
	// interface, or false if the operation does not exist (any more).
	LookupOperation(op string) (dyn.MethodSig, bool)

	// InvokeOperation invokes op with already-decoded arguments. ctx is
	// the request context: it is cancelled when the client abandons the
	// call (GIOP CancelRequest), the connection drops, or the ORB shuts
	// down; implementations may use it to skip work nobody will observe.
	InvokeOperation(ctx context.Context, op string, args []dyn.Value) (dyn.Value, error)

	// OperationMissing is called before a BAD_OPERATION ("Non Existent
	// Method") reply is sent, so the SDE can force the published IDL
	// current first (Section 5.7). It must block until the published
	// interface is guaranteed current.
	OperationMissing(op string)
}

// ServerORB is an IIOP server endpoint dispatching via DSI.
type ServerORB struct {
	typeID    string
	objectKey []byte
	target    DSITarget
	srv       *iiop.Server
	addr      net.Addr
}

// NewServerORB creates a server ORB for one object (the SDE keeps a single
// instance per server class). typeID is the repository id placed in the
// IOR; objectKey identifies the object on this endpoint.
func NewServerORB(typeID string, objectKey []byte, target DSITarget) *ServerORB {
	o := &ServerORB{
		typeID:    typeID,
		objectKey: append([]byte(nil), objectKey...),
		target:    target,
	}
	o.srv = iiop.NewServer(iiop.HandlerFunc(o.handle))
	return o
}

// Listen binds the ORB to addr ("host:port", port 0 for ephemeral) and
// returns the IOR clients use to reach the object.
func (o *ServerORB) Listen(addr string) (ior.IOR, error) {
	a, err := o.srv.Listen(addr)
	if err != nil {
		return ior.IOR{}, err
	}
	o.addr = a
	tcp, ok := a.(*net.TCPAddr)
	if !ok {
		_ = o.srv.Close()
		return ior.IOR{}, fmt.Errorf("orb: unexpected address type %T", a)
	}
	host := tcp.IP.String()
	return ior.New(o.typeID, host, uint16(tcp.Port), o.objectKey), nil
}

// Addr returns the bound address (nil before Listen).
func (o *ServerORB) Addr() net.Addr { return o.addr }

// Close shuts the ORB down and joins its goroutines.
func (o *ServerORB) Close() error { return o.srv.Close() }

func (o *ServerORB) handle(ctx context.Context, h giop.RequestHeader, args *cdr.Decoder, order cdr.ByteOrder) giop.Message {
	sysEx := func(repoID string, minor uint32, completed giop.CompletionStatus) giop.Message {
		se := &giop.SystemException{RepoID: repoID, Minor: minor, Completed: completed}
		msg, err := giop.EncodeReply(order, giop.ReplyHeader{RequestID: h.RequestID, Status: giop.ReplySystemException}, se.Encode)
		if err != nil {
			return giop.Message{Type: giop.MsgMessageError, Order: order}
		}
		return msg
	}

	if string(h.ObjectKey) != string(o.objectKey) {
		return sysEx(giop.RepoObjectNotExist, 1, giop.CompletedNo)
	}

	sig, ok := o.target.LookupOperation(h.Operation)
	if !ok {
		// The paper's reactive-publication step: make the published
		// interface current, then report "Non Existent Method".
		o.target.OperationMissing(h.Operation)
		return sysEx(giop.RepoBadOperation, 1, giop.CompletedNo)
	}

	vals := make([]dyn.Value, len(sig.Params))
	for i, p := range sig.Params {
		v, err := cdr.DecodeValue(args, p.Type)
		if err != nil {
			// The arguments do not decode under the operation's *current*
			// signature: the client encoded against a stale one. Section
			// 5.6: "Client calls for stale method signatures may also
			// trigger updates" — run the same forced-publication protocol
			// as for a missing method, then report Non Existent Method.
			o.target.OperationMissing(h.Operation)
			return sysEx(giop.RepoBadOperation, 3, giop.CompletedNo)
		}
		vals[i] = v
	}
	if args.Remaining() > 0 {
		// Leftover argument octets: the client's stale signature had more
		// parameters than the current one. Same treatment.
		o.target.OperationMissing(h.Operation)
		return sysEx(giop.RepoBadOperation, 4, giop.CompletedNo)
	}

	result, err := o.target.InvokeOperation(ctx, h.Operation, vals)
	switch {
	case err == nil:
		msg, encErr := giop.EncodeReply(order, giop.ReplyHeader{RequestID: h.RequestID, Status: giop.ReplyNoException},
			func(e *cdr.Encoder) error { return cdr.EncodeValue(e, result) })
		if encErr != nil {
			return sysEx(giop.RepoMarshal, 2, giop.CompletedYes)
		}
		return msg
	case errors.Is(err, dyn.ErrNoSuchMethod), errors.Is(err, dyn.ErrSignatureMismatch):
		// The interface changed between lookup and invoke: same treatment
		// as an unknown operation.
		o.target.OperationMissing(h.Operation)
		return sysEx(giop.RepoBadOperation, 2, giop.CompletedNo)
	default:
		// Application error → generic user exception with the message.
		msg, encErr := giop.EncodeReply(order, giop.ReplyHeader{RequestID: h.RequestID, Status: giop.ReplyUserException},
			func(e *cdr.Encoder) error {
				e.WriteString(AppErrorRepoID)
				e.WriteString(err.Error())
				return nil
			})
		if encErr != nil {
			return sysEx(giop.RepoUnknown, 1, giop.CompletedMaybe)
		}
		return msg
	}
}
