package cdr

import (
	"errors"
	"fmt"
	"math"
	"unsafe"
)

// ErrTruncated reports a read past the end of the CDR stream.
var ErrTruncated = errors.New("cdr: truncated stream")

// ErrBadString reports a malformed CDR string (zero length or missing NUL).
var ErrBadString = errors.New("cdr: malformed string")

// Decoder reads values from a CDR stream produced by an Encoder (or by any
// compliant ORB). Alignment is relative to the start of the stream.
//
// Copy discipline: the plain Read* methods return values that do not alias
// the stream (strings and octet sequences are copied), so they stay valid
// after the message buffer is recycled. The *Ref variants and zero-copy
// mode (SetZeroCopy) return sub-slices of — or string views over — the
// message buffer; they are valid only while the caller keeps that buffer
// alive and unmodified, and must never be used together with pooled
// message bodies that outlive the returned values.
type Decoder struct {
	buf      []byte
	pos      int
	order    ByteOrder
	zeroCopy bool
}

// NewDecoder returns a decoder over buf using the given byte order.
func NewDecoder(buf []byte, order ByteOrder) *Decoder {
	return &Decoder{buf: buf, order: order}
}

// Reset re-points the decoder at a new stream, so a stack- or
// struct-embedded Decoder value can be reused without allocating. Zero-copy
// mode is cleared.
func (d *Decoder) Reset(buf []byte, order ByteOrder) {
	d.buf = buf
	d.pos = 0
	d.order = order
	d.zeroCopy = false
}

// SetZeroCopy switches the string/octet-sequence reads to return views of
// the underlying buffer instead of copies. Enable only when the caller owns
// the message buffer for at least as long as the decoded values live.
func (d *Decoder) SetZeroCopy(on bool) { d.zeroCopy = on }

// NewEncapsulationDecoder interprets buf as an encapsulation: the first
// octet is the byte-order flag, and alignment restarts after... at position
// zero of the encapsulation, with the flag octet occupying it.
func NewEncapsulationDecoder(buf []byte) (*Decoder, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("%w: empty encapsulation", ErrTruncated)
	}
	var order ByteOrder
	switch buf[0] {
	case 0:
		order = BigEndian
	case 1:
		order = LittleEndian
	default:
		return nil, fmt.Errorf("cdr: invalid byte-order flag %d", buf[0])
	}
	d := NewDecoder(buf, order)
	d.pos = 1 // consume the flag; alignment counts it
	return d, nil
}

// Order returns the decoder's byte order.
func (d *Decoder) Order() ByteOrder { return d.order }

// Remaining returns the number of unread octets.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

// Pos returns the current read offset.
func (d *Decoder) Pos() int { return d.pos }

func (d *Decoder) align(n int) {
	for d.pos%n != 0 {
		d.pos++
	}
}

func (d *Decoder) need(n int) error {
	if d.pos+n > len(d.buf) {
		return fmt.Errorf("%w: need %d octets at %d, have %d", ErrTruncated, n, d.pos, len(d.buf)-d.pos)
	}
	return nil
}

// ReadOctet reads one raw octet.
func (d *Decoder) ReadOctet() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

// ReadOctets reads n raw octets (copied, unless zero-copy mode is on).
func (d *Decoder) ReadOctets(n int) ([]byte, error) {
	if d.zeroCopy {
		return d.ReadOctetsRef(n)
	}
	if n < 0 {
		return nil, fmt.Errorf("cdr: negative octet count %d", n)
	}
	if err := d.need(n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, d.buf[d.pos:])
	d.pos += n
	return out, nil
}

// ReadOctetsRef reads n raw octets as a sub-slice of the message buffer —
// no copy. The slice is valid only while the buffer is alive and unmodified.
func (d *Decoder) ReadOctetsRef(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("cdr: negative octet count %d", n)
	}
	if err := d.need(n); err != nil {
		return nil, err
	}
	out := d.buf[d.pos : d.pos+n : d.pos+n]
	d.pos += n
	return out, nil
}

// ReadBool reads a boolean octet.
func (d *Decoder) ReadBool() (bool, error) {
	b, err := d.ReadOctet()
	if err != nil {
		return false, err
	}
	return b != 0, nil
}

// ReadChar reads a CORBA char octet.
func (d *Decoder) ReadChar() (byte, error) { return d.ReadOctet() }

// ReadUShort reads an unsigned short.
func (d *Decoder) ReadUShort() (uint16, error) {
	d.align(2)
	if err := d.need(2); err != nil {
		return 0, err
	}
	v := d.order.order().Uint16(d.buf[d.pos:])
	d.pos += 2
	return v, nil
}

// ReadShort reads a signed short.
func (d *Decoder) ReadShort() (int16, error) {
	v, err := d.ReadUShort()
	return int16(v), err
}

// ReadULong reads an unsigned long (32 bits).
func (d *Decoder) ReadULong() (uint32, error) {
	d.align(4)
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := d.order.order().Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

// ReadLong reads a signed long (32 bits).
func (d *Decoder) ReadLong() (int32, error) {
	v, err := d.ReadULong()
	return int32(v), err
}

// ReadULongLong reads an unsigned long long (64 bits).
func (d *Decoder) ReadULongLong() (uint64, error) {
	d.align(8)
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := d.order.order().Uint64(d.buf[d.pos:])
	d.pos += 8
	return v, nil
}

// ReadLongLong reads a signed long long (64 bits).
func (d *Decoder) ReadLongLong() (int64, error) {
	v, err := d.ReadULongLong()
	return int64(v), err
}

// ReadFloat reads an IEEE-754 single-precision float.
func (d *Decoder) ReadFloat() (float32, error) {
	v, err := d.ReadULong()
	return math.Float32frombits(v), err
}

// ReadDouble reads an IEEE-754 double-precision float.
func (d *Decoder) ReadDouble() (float64, error) {
	v, err := d.ReadULongLong()
	return math.Float64frombits(v), err
}

// ReadString reads a CDR string (length includes the trailing NUL). The
// returned string is a copy unless zero-copy mode is on, in which case it
// is a view over the message buffer (see SetZeroCopy).
func (d *Decoder) ReadString() (string, error) {
	n, err := d.ReadULong()
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", fmt.Errorf("%w: zero-length string encoding", ErrBadString)
	}
	if err := d.need(int(n)); err != nil {
		return "", err
	}
	raw := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	if raw[len(raw)-1] != 0 {
		return "", fmt.Errorf("%w: missing terminating NUL", ErrBadString)
	}
	raw = raw[:len(raw)-1]
	if d.zeroCopy {
		if len(raw) == 0 {
			return "", nil
		}
		return unsafe.String(&raw[0], len(raw)), nil
	}
	return string(raw), nil
}

// ReadOctetSeq reads sequence<octet> (copied, unless zero-copy mode is on).
func (d *Decoder) ReadOctetSeq() ([]byte, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	return d.ReadOctets(int(n))
}

// ReadOctetSeqRef reads sequence<octet> as a sub-slice of the message
// buffer — no copy, same validity rules as ReadOctetsRef.
func (d *Decoder) ReadOctetSeqRef() ([]byte, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	return d.ReadOctetsRef(int(n))
}
