package cdr

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestAlignmentPadding(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteOctet(1)  // pos 0
	e.WriteULong(2)  // pads to 4
	e.WriteOctet(3)  // pos 8
	e.WriteDouble(4) // pads to 16
	e.WriteOctet(5)  // pos 24
	e.WriteUShort(6) // pads to 26
	if e.Len() != 28 {
		t.Fatalf("encoded length = %d, want 28", e.Len())
	}
	want := []byte{
		1, 0, 0, 0, // octet + pad
		0, 0, 0, 2, // ulong
		3, 0, 0, 0, 0, 0, 0, 0, // octet + pad to 16
		0x40, 0x10, 0, 0, 0, 0, 0, 0, // double 4.0
		5, 0, // octet + pad
		0, 6, // ushort
	}
	if !bytes.Equal(e.Bytes(), want) {
		t.Errorf("stream = % x\nwant     % x", e.Bytes(), want)
	}

	d := NewDecoder(e.Bytes(), BigEndian)
	if b, _ := d.ReadOctet(); b != 1 {
		t.Error("octet 1")
	}
	if v, _ := d.ReadULong(); v != 2 {
		t.Error("ulong 2")
	}
	if b, _ := d.ReadOctet(); b != 3 {
		t.Error("octet 3")
	}
	if v, _ := d.ReadDouble(); v != 4 {
		t.Error("double 4")
	}
	if b, _ := d.ReadOctet(); b != 5 {
		t.Error("octet 5")
	}
	if v, _ := d.ReadUShort(); v != 6 {
		t.Error("ushort 6")
	}
	if d.Remaining() != 0 {
		t.Errorf("remaining = %d", d.Remaining())
	}
}

func TestLittleEndian(t *testing.T) {
	e := NewEncoder(LittleEndian)
	e.WriteULong(0x01020304)
	want := []byte{4, 3, 2, 1}
	if !bytes.Equal(e.Bytes(), want) {
		t.Errorf("LE ulong = % x", e.Bytes())
	}
	d := NewDecoder(e.Bytes(), LittleEndian)
	if v, err := d.ReadULong(); err != nil || v != 0x01020304 {
		t.Errorf("ReadULong = %x, %v", v, err)
	}
}

func TestByteOrderString(t *testing.T) {
	if BigEndian.String() != "big-endian" || LittleEndian.String() != "little-endian" {
		t.Error("ByteOrder.String")
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "x", "hello world", "embedded\ttab", "ünïcödé"} {
		e := NewEncoder(BigEndian)
		e.WriteString(s)
		d := NewDecoder(e.Bytes(), BigEndian)
		got, err := d.ReadString()
		if err != nil {
			t.Fatalf("ReadString(%q): %v", s, err)
		}
		if got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestStringErrors(t *testing.T) {
	// Zero-length string encoding is illegal (length includes NUL).
	e := NewEncoder(BigEndian)
	e.WriteULong(0)
	d := NewDecoder(e.Bytes(), BigEndian)
	if _, err := d.ReadString(); !errors.Is(err, ErrBadString) {
		t.Errorf("zero-length: %v", err)
	}
	// Missing NUL.
	e = NewEncoder(BigEndian)
	e.WriteULong(2)
	e.WriteOctets([]byte{'a', 'b'})
	d = NewDecoder(e.Bytes(), BigEndian)
	if _, err := d.ReadString(); !errors.Is(err, ErrBadString) {
		t.Errorf("missing NUL: %v", err)
	}
	// Truncated payload.
	e = NewEncoder(BigEndian)
	e.WriteULong(10)
	d = NewDecoder(e.Bytes(), BigEndian)
	if _, err := d.ReadString(); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}
}

func TestTruncatedReads(t *testing.T) {
	d := NewDecoder(nil, BigEndian)
	if _, err := d.ReadOctet(); !errors.Is(err, ErrTruncated) {
		t.Error("octet")
	}
	if _, err := d.ReadUShort(); !errors.Is(err, ErrTruncated) {
		t.Error("ushort")
	}
	if _, err := d.ReadULong(); !errors.Is(err, ErrTruncated) {
		t.Error("ulong")
	}
	if _, err := d.ReadULongLong(); !errors.Is(err, ErrTruncated) {
		t.Error("ulonglong")
	}
	if _, err := d.ReadOctets(4); !errors.Is(err, ErrTruncated) {
		t.Error("octets")
	}
	if _, err := d.ReadOctets(-1); err == nil {
		t.Error("negative count should fail")
	}
}

func TestSignedRoundTrip(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteShort(-2)
	e.WriteLong(-3)
	e.WriteLongLong(-4)
	e.WriteFloat(-1.5)
	e.WriteDouble(math.Pi)
	e.WriteBool(true)
	e.WriteBool(false)
	e.WriteChar('z')

	d := NewDecoder(e.Bytes(), BigEndian)
	if v, _ := d.ReadShort(); v != -2 {
		t.Error("short")
	}
	if v, _ := d.ReadLong(); v != -3 {
		t.Error("long")
	}
	if v, _ := d.ReadLongLong(); v != -4 {
		t.Error("longlong")
	}
	if v, _ := d.ReadFloat(); v != -1.5 {
		t.Error("float")
	}
	if v, _ := d.ReadDouble(); v != math.Pi {
		t.Error("double")
	}
	if v, _ := d.ReadBool(); !v {
		t.Error("bool true")
	}
	if v, _ := d.ReadBool(); v {
		t.Error("bool false")
	}
	if v, _ := d.ReadChar(); v != 'z' {
		t.Error("char")
	}
}

func TestOctetSeqRoundTrip(t *testing.T) {
	payload := []byte{9, 8, 7}
	e := NewEncoder(LittleEndian)
	e.WriteOctetSeq(payload)
	d := NewDecoder(e.Bytes(), LittleEndian)
	got, err := d.ReadOctetSeq()
	if err != nil || !bytes.Equal(got, payload) {
		t.Errorf("octet seq = % x, %v", got, err)
	}
}

func TestEncapsulationRoundTrip(t *testing.T) {
	// Outer stream in BE containing a LE encapsulation.
	e := NewEncoder(BigEndian)
	e.WriteOctet(0xAA) // desync outer alignment on purpose
	err := e.WriteEncapsulation(LittleEndian, func(ie *Encoder) error {
		ie.WriteULong(0xDEADBEEF) // aligns relative to encapsulation start
		ie.WriteString("inner")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	d := NewDecoder(e.Bytes(), BigEndian)
	if _, err := d.ReadOctet(); err != nil {
		t.Fatal(err)
	}
	blob, err := d.ReadOctetSeq()
	if err != nil {
		t.Fatal(err)
	}
	id, err := NewEncapsulationDecoder(blob)
	if err != nil {
		t.Fatal(err)
	}
	if id.Order() != LittleEndian {
		t.Errorf("inner order = %v", id.Order())
	}
	if v, err := id.ReadULong(); err != nil || v != 0xDEADBEEF {
		t.Errorf("inner ulong = %x, %v", v, err)
	}
	if s, err := id.ReadString(); err != nil || s != "inner" {
		t.Errorf("inner string = %q, %v", s, err)
	}
}

func TestEncapsulationErrors(t *testing.T) {
	if _, err := NewEncapsulationDecoder(nil); !errors.Is(err, ErrTruncated) {
		t.Error("empty encapsulation")
	}
	if _, err := NewEncapsulationDecoder([]byte{7}); err == nil {
		t.Error("bad flag should fail")
	}
	bad := errors.New("builder failed")
	e := NewEncoder(BigEndian)
	if err := e.WriteEncapsulation(BigEndian, func(*Encoder) error { return bad }); !errors.Is(err, bad) {
		t.Error("builder error should propagate")
	}
	if _, err := EncodeEncapsulation(BigEndian, func(*Encoder) error { return bad }); !errors.Is(err, bad) {
		t.Error("EncodeEncapsulation builder error should propagate")
	}
}

// Property: for random primitive payloads in both byte orders, what goes in
// comes out.
func TestPrimitiveRoundTripProperty(t *testing.T) {
	f := func(a uint16, b uint32, c uint64, fl float32, db float64, s string, le bool) bool {
		order := BigEndian
		if le {
			order = LittleEndian
		}
		e := NewEncoder(order)
		e.WriteUShort(a)
		e.WriteULong(b)
		e.WriteULongLong(c)
		e.WriteFloat(fl)
		e.WriteDouble(db)
		e.WriteString(s)

		d := NewDecoder(e.Bytes(), order)
		ga, _ := d.ReadUShort()
		gb, _ := d.ReadULong()
		gc, _ := d.ReadULongLong()
		gf, _ := d.ReadFloat()
		gd, _ := d.ReadDouble()
		gs, err := d.ReadString()
		if err != nil {
			return false
		}
		floatOK := (math.Float32bits(gf) == math.Float32bits(fl)) &&
			(math.Float64bits(gd) == math.Float64bits(db))
		return ga == a && gb == b && gc == c && floatOK && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
