package cdr

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"livedev/internal/dyn"
)

func roundTrip(t *testing.T, v dyn.Value, order ByteOrder) dyn.Value {
	t.Helper()
	e := NewEncoder(order)
	if err := EncodeValue(e, v); err != nil {
		t.Fatalf("EncodeValue(%v): %v", v, err)
	}
	d := NewDecoder(e.Bytes(), order)
	got, err := DecodeValue(d, v.Type())
	if err != nil {
		t.Fatalf("DecodeValue(%v): %v", v, err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("decode left %d octets", d.Remaining())
	}
	return got
}

func TestValueRoundTripScalars(t *testing.T) {
	vals := []dyn.Value{
		dyn.VoidValue(),
		dyn.BoolValue(true),
		dyn.BoolValue(false),
		dyn.CharValue('Q'),
		dyn.Int32Value(-123456),
		dyn.Int64Value(1 << 61),
		dyn.Float32Value(3.25),
		dyn.Float64Value(-2.5e300),
		dyn.StringValue("CORBA says hi"),
	}
	for _, order := range []ByteOrder{BigEndian, LittleEndian} {
		for _, v := range vals {
			got := roundTrip(t, v, order)
			if !got.Equal(v) {
				t.Errorf("%v round trip (%v) -> %v", v, order, got)
			}
		}
	}
}

func TestValueRoundTripComposites(t *testing.T) {
	msg := dyn.MustStructOf("Message",
		dyn.StructField{Name: "from", Type: dyn.StringT},
		dyn.StructField{Name: "id", Type: dyn.Int64T},
		dyn.StructField{Name: "urgent", Type: dyn.Boolean},
	)
	box := dyn.MustStructOf("Box",
		dyn.StructField{Name: "msgs", Type: dyn.SequenceOf(msg)},
		dyn.StructField{Name: "count", Type: dyn.Int32T},
	)
	m1 := dyn.MustStructValue(msg, dyn.StringValue("alice"), dyn.Int64Value(7), dyn.BoolValue(true))
	m2 := dyn.MustStructValue(msg, dyn.StringValue("bob"), dyn.Int64Value(8), dyn.BoolValue(false))
	b := dyn.MustStructValue(box,
		dyn.MustSequenceValue(msg, m1, m2),
		dyn.Int32Value(2),
	)
	for _, order := range []ByteOrder{BigEndian, LittleEndian} {
		if got := roundTrip(t, b, order); !got.Equal(b) {
			t.Errorf("composite round trip (%v) failed:\n got %v\nwant %v", order, got, b)
		}
	}
	empty := dyn.MustSequenceValue(dyn.Int32T)
	if got := roundTrip(t, empty, BigEndian); got.Len() != 0 {
		t.Error("empty sequence round trip")
	}
}

func TestEncodeWideCharRejected(t *testing.T) {
	e := NewEncoder(BigEndian)
	if err := EncodeValue(e, dyn.CharValue('λ')); err == nil {
		t.Error("chars beyond one octet must be rejected")
	}
	// Inside a struct the error is wrapped with field context.
	s := dyn.MustStructOf("S", dyn.StructField{Name: "c", Type: dyn.Char})
	if err := EncodeValue(e, dyn.MustStructValue(s, dyn.CharValue('λ'))); err == nil {
		t.Error("nested wide char must be rejected")
	}
}

func TestDecodeHostileSequenceLength(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteULong(0xFFFFFFF0) // absurd element count
	d := NewDecoder(e.Bytes(), BigEndian)
	if _, err := DecodeValue(d, dyn.SequenceOf(dyn.Int32T)); !errors.Is(err, ErrTruncated) {
		t.Errorf("hostile length: %v", err)
	}
}

func TestDecodeTruncatedStruct(t *testing.T) {
	s := dyn.MustStructOf("S",
		dyn.StructField{Name: "a", Type: dyn.Int32T},
		dyn.StructField{Name: "b", Type: dyn.StringT})
	e := NewEncoder(BigEndian)
	e.WriteLong(1) // only field a
	d := NewDecoder(e.Bytes(), BigEndian)
	if _, err := DecodeValue(d, s); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated struct: %v", err)
	}
}

// randomCDRValue builds values whose types the CDR mapping supports
// (chars restricted to one octet).
func randomCDRValue(r *rand.Rand, depth int) dyn.Value {
	k := r.Intn(9)
	if depth <= 0 && k >= 7 {
		k = r.Intn(7)
	}
	switch k {
	case 0:
		return dyn.BoolValue(r.Intn(2) == 0)
	case 1:
		return dyn.CharValue(rune(r.Intn(256)))
	case 2:
		return dyn.Int32Value(int32(r.Uint32()))
	case 3:
		return dyn.Int64Value(int64(r.Uint64()))
	case 4:
		return dyn.Float32Value(float32(r.NormFloat64()))
	case 5:
		return dyn.Float64Value(r.NormFloat64())
	case 6:
		n := r.Intn(20)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(' ' + r.Intn(94))
		}
		return dyn.StringValue(string(b))
	case 7:
		elem := randomCDRValue(r, depth-1)
		n := r.Intn(4)
		vals := make([]dyn.Value, 0, n)
		for i := 0; i < n; i++ {
			vals = append(vals, cloneShape(r, elem))
		}
		return dyn.MustSequenceValue(elem.Type(), vals...)
	default:
		nf := 1 + r.Intn(3)
		fields := make([]dyn.StructField, nf)
		vals := make([]dyn.Value, nf)
		for i := 0; i < nf; i++ {
			fv := randomCDRValue(r, depth-1)
			fields[i] = dyn.StructField{Name: string(rune('a' + i)), Type: fv.Type()}
			vals[i] = fv
		}
		st := dyn.MustStructOf("R", fields...)
		return dyn.MustStructValue(st, vals...)
	}
}

// cloneShape makes another random value with exactly the same type as v.
func cloneShape(r *rand.Rand, v dyn.Value) dyn.Value {
	t := v.Type()
	switch t.Kind() {
	case dyn.KindBoolean:
		return dyn.BoolValue(r.Intn(2) == 0)
	case dyn.KindChar:
		return dyn.CharValue(rune(r.Intn(256)))
	case dyn.KindInt32:
		return dyn.Int32Value(int32(r.Uint32()))
	case dyn.KindInt64:
		return dyn.Int64Value(int64(r.Uint64()))
	case dyn.KindFloat32:
		return dyn.Float32Value(float32(r.NormFloat64()))
	case dyn.KindFloat64:
		return dyn.Float64Value(r.NormFloat64())
	case dyn.KindString:
		return dyn.StringValue("clone")
	case dyn.KindSequence:
		n := r.Intn(3)
		vals := make([]dyn.Value, 0, n)
		for i := 0; i < n; i++ {
			vals = append(vals, dyn.Zero(t.Elem()))
		}
		return dyn.MustSequenceValue(t.Elem(), vals...)
	case dyn.KindStruct:
		fields := t.Fields()
		vals := make([]dyn.Value, len(fields))
		for i, f := range fields {
			vals[i] = dyn.Zero(f.Type)
		}
		return dyn.MustStructValue(t, vals...)
	default:
		return dyn.VoidValue()
	}
}

// Property: EncodeValue then DecodeValue is the identity for every
// CDR-encodable value, in both byte orders, even when the stream starts at
// an awkward alignment.
func TestValueRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(randomCDRValue(r, 3))
			vs[1] = reflect.ValueOf(r.Intn(2) == 0)
			vs[2] = reflect.ValueOf(r.Intn(4)) // leading junk octets
		},
	}
	f := func(v dyn.Value, le bool, lead int) bool {
		order := BigEndian
		if le {
			order = LittleEndian
		}
		e := NewEncoder(order)
		for i := 0; i < lead; i++ {
			e.WriteOctet(0xEE)
		}
		if err := EncodeValue(e, v); err != nil {
			return false
		}
		d := NewDecoder(e.Bytes(), order)
		if _, err := d.ReadOctets(lead); err != nil {
			return false
		}
		got, err := DecodeValue(d, v.Type())
		if err != nil {
			return false
		}
		return got.Equal(v) && d.Remaining() == 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
