// Package cdr implements the OMG Common Data Representation, the binary
// encoding CORBA's GIOP messages carry. It supports both byte orders,
// CDR's natural alignment rules (primitives align to their size relative to
// the start of the stream), strings with trailing NUL, sequences, structs,
// and nested encapsulations (used by IORs and tagged profiles). Value-level
// marshalling for the dyn type system lives in value.go.
//
// # Pooling and buffer-ownership invariants
//
// The invocation hot path reuses encoders through GetEncoder/PutEncoder.
// The rules are:
//
//   - A pooled Encoder is owned exclusively by the goroutine that called
//     GetEncoder until it is handed back with PutEncoder.
//   - Bytes() aliases the encoder's internal buffer. Once PutEncoder is
//     called, every slice previously obtained from Bytes() is invalid: the
//     buffer will be overwritten by an unrelated message. Callers must
//     either finish writing/copying the bytes before PutEncoder, or skip
//     PutEncoder and let the encoder be garbage-collected.
//   - PutEncoder must be called at most once per GetEncoder.
//
// Decoder sub-slice ("Ref") reads return views into the message buffer the
// decoder was constructed over; they are valid only for as long as the
// caller keeps that buffer alive and unmodified (see decoder.go).
package cdr

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// ByteOrder selects the encoding endianness. CDR tags messages and
// encapsulations with a flag octet: 0 = big-endian, 1 = little-endian.
type ByteOrder byte

// Byte-order flag values as they appear on the wire.
const (
	BigEndian    ByteOrder = 0
	LittleEndian ByteOrder = 1
)

func (o ByteOrder) order() binary.ByteOrder {
	if o == LittleEndian {
		return binary.LittleEndian
	}
	return binary.BigEndian
}

// Binary returns the encoding/binary byte order corresponding to the flag,
// for callers (like the GIOP framer) that marshal fields directly.
func (o ByteOrder) Binary() binary.ByteOrder { return o.order() }

func (o ByteOrder) appendOrder() binary.AppendByteOrder {
	if o == LittleEndian {
		return binary.LittleEndian
	}
	return binary.BigEndian
}

// String returns "big-endian" or "little-endian".
func (o ByteOrder) String() string {
	if o == LittleEndian {
		return "little-endian"
	}
	return "big-endian"
}

// Encoder serializes values into a CDR stream. Alignment is computed
// relative to the start of the stream, so an Encoder corresponds to one
// GIOP message body or one encapsulation. The zero Encoder encodes
// big-endian from offset 0; use NewEncoder to pick the byte order.
type Encoder struct {
	buf   []byte
	order ByteOrder
}

// NewEncoder returns an encoder using the given byte order.
func NewEncoder(order ByteOrder) *Encoder {
	return &Encoder{order: order}
}

// NewEncoderSize returns an encoder whose buffer is pre-grown to hold
// sizeHint octets without reallocating.
func NewEncoderSize(order ByteOrder, sizeHint int) *Encoder {
	e := &Encoder{order: order}
	e.Grow(sizeHint)
	return e
}

// encoderPool recycles encoders (and, transitively, their grown buffers)
// across messages. See the package comment for the ownership rules.
var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns a pooled encoder reset to the given byte order. The
// buffer retains the capacity it grew to in previous uses, so steady-state
// message encoding does not allocate.
func GetEncoder(order ByteOrder) *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.order = order
	e.buf = e.buf[:0]
	return e
}

// PutEncoder returns an encoder obtained from GetEncoder to the pool.
// All slices obtained from e.Bytes() become invalid.
func PutEncoder(e *Encoder) {
	if e == nil {
		return
	}
	if cap(e.buf) > maxPooledBuf {
		e.buf = nil // don't let one huge message pin memory in the pool
	}
	encoderPool.Put(e)
}

// maxPooledBuf bounds the buffer capacity kept alive by pooled encoders
// and message-body pools.
const maxPooledBuf = 1 << 20

// Reset truncates the stream to empty, keeping the buffer capacity and
// byte order, so the encoder can be reused for another message.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Grow ensures the buffer can hold n more octets without reallocating.
func (e *Encoder) Grow(n int) {
	if n <= cap(e.buf)-len(e.buf) {
		return
	}
	grown := make([]byte, len(e.buf), len(e.buf)+n)
	copy(grown, e.buf)
	e.buf = grown
}

// Order returns the encoder's byte order.
func (e *Encoder) Order() ByteOrder { return e.order }

// Bytes returns the encoded stream. The returned slice aliases the
// encoder's buffer; it is valid until the next Write call.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current stream length in octets.
func (e *Encoder) Len() int { return len(e.buf) }

// zeroPad provides alignment padding octets (CDR aligns to at most 8).
var zeroPad [8]byte

// align pads the stream with zero octets so the next write lands on a
// multiple of n (n in {1,2,4,8}).
func (e *Encoder) align(n int) {
	if pad := len(e.buf) % n; pad != 0 {
		e.buf = append(e.buf, zeroPad[:n-pad]...)
	}
}

// WriteOctet appends a raw octet.
func (e *Encoder) WriteOctet(b byte) { e.buf = append(e.buf, b) }

// WriteOctets appends raw octets with no alignment or count prefix.
func (e *Encoder) WriteOctets(b []byte) { e.buf = append(e.buf, b...) }

// WriteBool encodes a boolean as one octet (0 or 1).
func (e *Encoder) WriteBool(v bool) {
	if v {
		e.WriteOctet(1)
	} else {
		e.WriteOctet(0)
	}
}

// WriteChar encodes a CORBA char. CDR chars are single octets; runes
// outside Latin-1 are rejected by the caller (see value.go).
func (e *Encoder) WriteChar(c byte) { e.WriteOctet(c) }

// WriteUShort encodes an unsigned short with 2-octet alignment.
func (e *Encoder) WriteUShort(v uint16) {
	e.align(2)
	e.buf = e.order.appendOrder().AppendUint16(e.buf, v)
}

// WriteShort encodes a signed short.
func (e *Encoder) WriteShort(v int16) { e.WriteUShort(uint16(v)) }

// WriteULong encodes an unsigned long (32 bits) with 4-octet alignment.
func (e *Encoder) WriteULong(v uint32) {
	e.align(4)
	e.buf = e.order.appendOrder().AppendUint32(e.buf, v)
}

// WriteLong encodes a signed long (32 bits).
func (e *Encoder) WriteLong(v int32) { e.WriteULong(uint32(v)) }

// WriteULongLong encodes an unsigned long long (64 bits) with 8-octet
// alignment.
func (e *Encoder) WriteULongLong(v uint64) {
	e.align(8)
	e.buf = e.order.appendOrder().AppendUint64(e.buf, v)
}

// WriteLongLong encodes a signed long long (64 bits).
func (e *Encoder) WriteLongLong(v int64) { e.WriteULongLong(uint64(v)) }

// WriteFloat encodes an IEEE-754 single-precision float.
func (e *Encoder) WriteFloat(v float32) { e.WriteULong(math.Float32bits(v)) }

// WriteDouble encodes an IEEE-754 double-precision float.
func (e *Encoder) WriteDouble(v float64) { e.WriteULongLong(math.Float64bits(v)) }

// WriteString encodes a CDR string: ulong length including the trailing
// NUL, then the octets, then NUL.
func (e *Encoder) WriteString(s string) {
	e.WriteULong(uint32(len(s) + 1))
	e.buf = append(e.buf, s...)
	e.buf = append(e.buf, 0)
}

// WriteOctetSeq encodes sequence<octet>: ulong count then raw octets.
func (e *Encoder) WriteOctetSeq(b []byte) {
	e.WriteULong(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// WriteEncapsulation writes a nested encapsulation: an octet sequence whose
// first octet is the byte-order flag of the inner stream. build receives a
// fresh encoder whose alignment starts at zero, per the CDR rules for
// encapsulated data.
func (e *Encoder) WriteEncapsulation(inner ByteOrder, build func(*Encoder) error) error {
	ie := NewEncoder(inner)
	ie.WriteOctet(byte(inner))
	if err := build(ie); err != nil {
		return fmt.Errorf("cdr: building encapsulation: %w", err)
	}
	e.WriteOctetSeq(ie.Bytes())
	return nil
}

// EncodeEncapsulation returns a stand-alone encapsulation (flag octet +
// body) such as the one inside a stringified IOR.
func EncodeEncapsulation(order ByteOrder, build func(*Encoder) error) ([]byte, error) {
	e := NewEncoder(order)
	e.WriteOctet(byte(order))
	if err := build(e); err != nil {
		return nil, fmt.Errorf("cdr: building encapsulation: %w", err)
	}
	return e.Bytes(), nil
}
