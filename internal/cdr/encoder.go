// Package cdr implements the OMG Common Data Representation, the binary
// encoding CORBA's GIOP messages carry. It supports both byte orders,
// CDR's natural alignment rules (primitives align to their size relative to
// the start of the stream), strings with trailing NUL, sequences, structs,
// and nested encapsulations (used by IORs and tagged profiles). Value-level
// marshalling for the dyn type system lives in value.go.
package cdr

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ByteOrder selects the encoding endianness. CDR tags messages and
// encapsulations with a flag octet: 0 = big-endian, 1 = little-endian.
type ByteOrder byte

// Byte-order flag values as they appear on the wire.
const (
	BigEndian    ByteOrder = 0
	LittleEndian ByteOrder = 1
)

func (o ByteOrder) order() binary.ByteOrder {
	if o == LittleEndian {
		return binary.LittleEndian
	}
	return binary.BigEndian
}

func (o ByteOrder) appendOrder() binary.AppendByteOrder {
	if o == LittleEndian {
		return binary.LittleEndian
	}
	return binary.BigEndian
}

// String returns "big-endian" or "little-endian".
func (o ByteOrder) String() string {
	if o == LittleEndian {
		return "little-endian"
	}
	return "big-endian"
}

// Encoder serializes values into a CDR stream. Alignment is computed
// relative to the start of the stream, so an Encoder corresponds to one
// GIOP message body or one encapsulation. The zero Encoder encodes
// big-endian from offset 0; use NewEncoder to pick the byte order.
type Encoder struct {
	buf   []byte
	order ByteOrder
}

// NewEncoder returns an encoder using the given byte order.
func NewEncoder(order ByteOrder) *Encoder {
	return &Encoder{order: order}
}

// Order returns the encoder's byte order.
func (e *Encoder) Order() ByteOrder { return e.order }

// Bytes returns the encoded stream. The returned slice aliases the
// encoder's buffer; it is valid until the next Write call.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current stream length in octets.
func (e *Encoder) Len() int { return len(e.buf) }

// align pads the stream with zero octets so the next write lands on a
// multiple of n (n in {1,2,4,8}).
func (e *Encoder) align(n int) {
	for len(e.buf)%n != 0 {
		e.buf = append(e.buf, 0)
	}
}

// WriteOctet appends a raw octet.
func (e *Encoder) WriteOctet(b byte) { e.buf = append(e.buf, b) }

// WriteOctets appends raw octets with no alignment or count prefix.
func (e *Encoder) WriteOctets(b []byte) { e.buf = append(e.buf, b...) }

// WriteBool encodes a boolean as one octet (0 or 1).
func (e *Encoder) WriteBool(v bool) {
	if v {
		e.WriteOctet(1)
	} else {
		e.WriteOctet(0)
	}
}

// WriteChar encodes a CORBA char. CDR chars are single octets; runes
// outside Latin-1 are rejected by the caller (see value.go).
func (e *Encoder) WriteChar(c byte) { e.WriteOctet(c) }

// WriteUShort encodes an unsigned short with 2-octet alignment.
func (e *Encoder) WriteUShort(v uint16) {
	e.align(2)
	e.buf = e.order.appendOrder().AppendUint16(e.buf, v)
}

// WriteShort encodes a signed short.
func (e *Encoder) WriteShort(v int16) { e.WriteUShort(uint16(v)) }

// WriteULong encodes an unsigned long (32 bits) with 4-octet alignment.
func (e *Encoder) WriteULong(v uint32) {
	e.align(4)
	e.buf = e.order.appendOrder().AppendUint32(e.buf, v)
}

// WriteLong encodes a signed long (32 bits).
func (e *Encoder) WriteLong(v int32) { e.WriteULong(uint32(v)) }

// WriteULongLong encodes an unsigned long long (64 bits) with 8-octet
// alignment.
func (e *Encoder) WriteULongLong(v uint64) {
	e.align(8)
	e.buf = e.order.appendOrder().AppendUint64(e.buf, v)
}

// WriteLongLong encodes a signed long long (64 bits).
func (e *Encoder) WriteLongLong(v int64) { e.WriteULongLong(uint64(v)) }

// WriteFloat encodes an IEEE-754 single-precision float.
func (e *Encoder) WriteFloat(v float32) { e.WriteULong(math.Float32bits(v)) }

// WriteDouble encodes an IEEE-754 double-precision float.
func (e *Encoder) WriteDouble(v float64) { e.WriteULongLong(math.Float64bits(v)) }

// WriteString encodes a CDR string: ulong length including the trailing
// NUL, then the octets, then NUL.
func (e *Encoder) WriteString(s string) {
	e.WriteULong(uint32(len(s) + 1))
	e.buf = append(e.buf, s...)
	e.buf = append(e.buf, 0)
}

// WriteOctetSeq encodes sequence<octet>: ulong count then raw octets.
func (e *Encoder) WriteOctetSeq(b []byte) {
	e.WriteULong(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// WriteEncapsulation writes a nested encapsulation: an octet sequence whose
// first octet is the byte-order flag of the inner stream. build receives a
// fresh encoder whose alignment starts at zero, per the CDR rules for
// encapsulated data.
func (e *Encoder) WriteEncapsulation(inner ByteOrder, build func(*Encoder) error) error {
	ie := NewEncoder(inner)
	ie.WriteOctet(byte(inner))
	if err := build(ie); err != nil {
		return fmt.Errorf("cdr: building encapsulation: %w", err)
	}
	e.WriteOctetSeq(ie.Bytes())
	return nil
}

// EncodeEncapsulation returns a stand-alone encapsulation (flag octet +
// body) such as the one inside a stringified IOR.
func EncodeEncapsulation(order ByteOrder, build func(*Encoder) error) ([]byte, error) {
	e := NewEncoder(order)
	e.WriteOctet(byte(order))
	if err := build(e); err != nil {
		return nil, fmt.Errorf("cdr: building encapsulation: %w", err)
	}
	return e.Bytes(), nil
}
