package cdr

import (
	"testing"

	"livedev/internal/dyn"
)

// The hot-path allocation budgets pinned here are what the pooled
// encoder/decoder lifecycle buys; a regression that reintroduces per-call
// allocations fails these tests rather than silently eroding Table 1.

func TestAllocs_EncodeDecodeRoundTrip(t *testing.T) {
	v := dyn.StringValue("allocation-budget-payload-0123456789")

	// Pooled encode: zero allocations once the pool is warm.
	warm := GetEncoder(BigEndian)
	if err := EncodeValue(warm, v); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), warm.Bytes()...)
	PutEncoder(warm)

	encAllocs := testing.AllocsPerRun(200, func() {
		e := GetEncoder(BigEndian)
		if err := EncodeValue(e, v); err != nil {
			t.Fatal(err)
		}
		PutEncoder(e)
	})
	if encAllocs > 0 {
		t.Errorf("pooled CDR encode allocates %.1f objects/op, budget is 0", encAllocs)
	}

	// Reused decoder, zero-copy reads over a caller-owned buffer: zero
	// allocations.
	var d Decoder
	decAllocs := testing.AllocsPerRun(200, func() {
		d.Reset(raw, BigEndian)
		d.SetZeroCopy(true)
		if _, err := DecodeValue(&d, dyn.StringT); err != nil {
			t.Fatal(err)
		}
	})
	if decAllocs > 0 {
		t.Errorf("zero-copy CDR decode allocates %.1f objects/op, budget is 0", decAllocs)
	}

	// Copying decode (the default used when values outlive the message
	// buffer): exactly the one string copy.
	copyAllocs := testing.AllocsPerRun(200, func() {
		d.Reset(raw, BigEndian)
		if _, err := DecodeValue(&d, dyn.StringT); err != nil {
			t.Fatal(err)
		}
	})
	if copyAllocs > 1 {
		t.Errorf("copying CDR decode allocates %.1f objects/op, budget is 1", copyAllocs)
	}
}

// TestZeroCopyReadsAliasBuffer pins the documented sub-slice semantics: Ref
// reads return views of the message buffer, plain reads return copies.
func TestZeroCopyReadsAliasBuffer(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteOctetSeq([]byte{1, 2, 3})
	e.WriteString("view")
	buf := e.Bytes()

	d := NewDecoder(buf, BigEndian)
	seq, err := d.ReadOctetSeqRef()
	if err != nil {
		t.Fatal(err)
	}
	seq[0] = 9
	d2 := NewDecoder(buf, BigEndian)
	copied, err := d2.ReadOctetSeq()
	if err != nil {
		t.Fatal(err)
	}
	if copied[0] != 9 {
		t.Error("ReadOctetSeqRef should alias the buffer")
	}
	copied[0] = 7
	d3 := NewDecoder(buf, BigEndian)
	again, err := d3.ReadOctetSeq()
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != 9 {
		t.Error("ReadOctetSeq should copy, not alias")
	}

	d3.SetZeroCopy(true)
	s, err := d3.ReadString()
	if err != nil || s != "view" {
		t.Fatalf("zero-copy string = %q, %v", s, err)
	}
}
