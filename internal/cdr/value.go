package cdr

import (
	"fmt"

	"livedev/internal/dyn"
)

// This file maps the dyn type system onto CDR, following the standard
// IDL-to-CDR rules: boolean→boolean, char→char, int32→long,
// int64→long long, float32→float, float64→double, string→string,
// sequence<T>→sequence, struct→fields in declaration order with no
// padding beyond each field's own alignment.

// EncodeValue appends v to the stream according to its dyn type.
func EncodeValue(e *Encoder, v dyn.Value) error {
	t := v.Type()
	switch t.Kind() {
	case dyn.KindVoid:
		return nil // void occupies no octets
	case dyn.KindBoolean:
		e.WriteBool(v.Bool())
	case dyn.KindChar:
		c := v.Char()
		if c > 0xFF {
			return fmt.Errorf("cdr: char %q exceeds one octet (CORBA char is ISO 8859-1)", c)
		}
		e.WriteChar(byte(c))
	case dyn.KindInt32:
		e.WriteLong(v.Int32())
	case dyn.KindInt64:
		e.WriteLongLong(v.Int64())
	case dyn.KindFloat32:
		e.WriteFloat(v.Float32())
	case dyn.KindFloat64:
		e.WriteDouble(v.Float64())
	case dyn.KindString:
		e.WriteString(v.Str())
	case dyn.KindSequence:
		e.WriteULong(uint32(v.Len()))
		for i := 0; i < v.Len(); i++ {
			if err := EncodeValue(e, v.Index(i)); err != nil {
				return err
			}
		}
	case dyn.KindStruct:
		for i := 0; i < v.Len(); i++ {
			if err := EncodeValue(e, v.Index(i)); err != nil {
				return fmt.Errorf("struct %s field %s: %w", t.Name(), t.Field(i).Name, err)
			}
		}
	default:
		return fmt.Errorf("cdr: cannot encode kind %s", t.Kind())
	}
	return nil
}

// DecodeValue reads a value of type t from the stream.
func DecodeValue(d *Decoder, t *dyn.Type) (dyn.Value, error) {
	switch t.Kind() {
	case dyn.KindVoid:
		return dyn.VoidValue(), nil
	case dyn.KindBoolean:
		b, err := d.ReadBool()
		if err != nil {
			return dyn.Value{}, err
		}
		return dyn.BoolValue(b), nil
	case dyn.KindChar:
		c, err := d.ReadChar()
		if err != nil {
			return dyn.Value{}, err
		}
		return dyn.CharValue(rune(c)), nil
	case dyn.KindInt32:
		v, err := d.ReadLong()
		if err != nil {
			return dyn.Value{}, err
		}
		return dyn.Int32Value(v), nil
	case dyn.KindInt64:
		v, err := d.ReadLongLong()
		if err != nil {
			return dyn.Value{}, err
		}
		return dyn.Int64Value(v), nil
	case dyn.KindFloat32:
		v, err := d.ReadFloat()
		if err != nil {
			return dyn.Value{}, err
		}
		return dyn.Float32Value(v), nil
	case dyn.KindFloat64:
		v, err := d.ReadDouble()
		if err != nil {
			return dyn.Value{}, err
		}
		return dyn.Float64Value(v), nil
	case dyn.KindString:
		s, err := d.ReadString()
		if err != nil {
			return dyn.Value{}, err
		}
		return dyn.StringValue(s), nil
	case dyn.KindSequence:
		n, err := d.ReadULong()
		if err != nil {
			return dyn.Value{}, err
		}
		// Guard against hostile lengths: each element needs at least one
		// octet on the wire.
		if int(n) > d.Remaining() {
			return dyn.Value{}, fmt.Errorf("%w: sequence claims %d elements with %d octets left",
				ErrTruncated, n, d.Remaining())
		}
		elems := make([]dyn.Value, int(n))
		for i := range elems {
			ev, err := DecodeValue(d, t.Elem())
			if err != nil {
				return dyn.Value{}, fmt.Errorf("sequence element %d: %w", i, err)
			}
			elems[i] = ev
		}
		return dyn.SequenceValue(t.Elem(), elems...)
	case dyn.KindStruct:
		fields := t.Fields()
		vals := make([]dyn.Value, len(fields))
		for i, f := range fields {
			fv, err := DecodeValue(d, f.Type)
			if err != nil {
				return dyn.Value{}, fmt.Errorf("struct %s field %s: %w", t.Name(), f.Name, err)
			}
			vals[i] = fv
		}
		return dyn.StructValue(t, vals...)
	default:
		return dyn.Value{}, fmt.Errorf("cdr: cannot decode kind %s", t.Kind())
	}
}
