package ior

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"livedev/internal/cdr"
)

func TestStringifyParseRoundTrip(t *testing.T) {
	r := New("IDL:Calc:1.0", "127.0.0.1", 9876, []byte("calc-object-key"))
	s := r.String()
	if !strings.HasPrefix(s, "IOR:") {
		t.Fatalf("stringified = %q", s)
	}
	got, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.TypeID != "IDL:Calc:1.0" {
		t.Errorf("TypeID = %q", got.TypeID)
	}
	p, err := got.FirstIIOP()
	if err != nil {
		t.Fatal(err)
	}
	if p.Host != "127.0.0.1" || p.Port != 9876 || string(p.ObjectKey) != "calc-object-key" {
		t.Errorf("profile = %+v", p)
	}
	if p.Major != 1 || p.Minor != 0 {
		t.Errorf("IIOP version = %d.%d", p.Major, p.Minor)
	}
	if p.Addr() != "127.0.0.1:9876" {
		t.Errorf("Addr() = %q", p.Addr())
	}
}

func TestParseStringErrors(t *testing.T) {
	if _, err := ParseString("not-an-ior"); !errors.Is(err, ErrNotStringifiedIOR) {
		t.Errorf("prefix: %v", err)
	}
	if _, err := ParseString("IOR:zz"); !errors.Is(err, ErrBadHex) {
		t.Errorf("hex: %v", err)
	}
	if _, err := ParseString("IOR:"); err == nil {
		t.Error("empty body should fail")
	}
	// Whitespace tolerance (IORs are often pasted from files).
	r := New("IDL:X:1.0", "h", 1, nil)
	if _, err := ParseString("  " + r.String() + "\n"); err != nil {
		t.Errorf("trimmed parse: %v", err)
	}
}

func TestFirstIIOPMissing(t *testing.T) {
	var r IOR
	if _, err := r.FirstIIOP(); !errors.Is(err, ErrNoIIOPProfile) {
		t.Errorf("FirstIIOP on empty: %v", err)
	}
}

func TestOpaqueProfilesPreserved(t *testing.T) {
	// Hand-build an IOR with one IIOP profile and one unknown profile.
	blob, err := cdr.EncodeEncapsulation(cdr.BigEndian, func(e *cdr.Encoder) error {
		e.WriteString("IDL:X:1.0")
		e.WriteULong(2) // two profiles
		e.WriteULong(TagInternetIOP)
		if err := e.WriteEncapsulation(cdr.BigEndian, func(ie *cdr.Encoder) error {
			ie.WriteOctet(1)
			ie.WriteOctet(0)
			ie.WriteString("host")
			ie.WriteUShort(7)
			ie.WriteOctetSeq([]byte("k"))
			return nil
		}); err != nil {
			return err
		}
		e.WriteULong(99) // unknown tag
		e.WriteOctetSeq([]byte{0xDE, 0xAD})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := cdr.NewEncapsulationDecoder(blob)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Decode(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Profiles) != 1 || len(r.Opaque) != 1 {
		t.Fatalf("profiles=%d opaque=%d", len(r.Profiles), len(r.Opaque))
	}
	if r.Opaque[0].Tag != 99 || !bytes.Equal(r.Opaque[0].Data, []byte{0xDE, 0xAD}) {
		t.Errorf("opaque = %+v", r.Opaque[0])
	}
	// Re-encode keeps both profiles.
	got, err := ParseString(r.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Profiles) != 1 || len(got.Opaque) != 1 {
		t.Error("re-encoded IOR lost profiles")
	}
}

func TestDecodeTruncated(t *testing.T) {
	r := New("IDL:X:1.0", "host", 1, []byte("key"))
	blob, err := cdr.EncodeEncapsulation(cdr.BigEndian, r.Encode)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(blob); cut += 3 {
		d, err := cdr.NewEncapsulationDecoder(blob[:cut])
		if err != nil {
			continue
		}
		if _, err := Decode(d); err == nil {
			t.Errorf("truncation at %d should fail", cut)
		}
	}
}

// Property: IOR round-trips through stringification for arbitrary hosts,
// ports and keys.
func TestIORRoundTripProperty(t *testing.T) {
	f := func(host string, port uint16, key []byte) bool {
		host = strings.ReplaceAll(host, "\x00", "")
		r := New("IDL:Svc:1.0", host, port, key)
		got, err := ParseString(r.String())
		if err != nil {
			return false
		}
		p, err := got.FirstIIOP()
		if err != nil {
			return false
		}
		return got.TypeID == "IDL:Svc:1.0" && p.Host == host && p.Port == port && bytes.Equal(p.ObjectKey, key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
