// Package ior implements CORBA Interoperable Object References: the
// bootstrap datum a CORBA client needs (paper Figure 2 step 1). An IOR
// carries a repository type id and tagged profiles; we implement the
// TAG_INTERNET_IOP profile (IIOP version, host, port, object key) and the
// standard "IOR:<hex of CDR encapsulation>" stringified form that the
// paper's Interface Server publishes next to the CORBA-IDL document.
package ior

import (
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"

	"livedev/internal/cdr"
)

// TagInternetIOP is the profile tag for IIOP profiles.
const TagInternetIOP uint32 = 0

// Prefix is the stringified-IOR prefix.
const Prefix = "IOR:"

// Parse errors.
var (
	ErrNotStringifiedIOR = errors.New("ior: missing IOR: prefix")
	ErrBadHex            = errors.New("ior: invalid hex encoding")
	ErrNoIIOPProfile     = errors.New("ior: no TAG_INTERNET_IOP profile")
)

// IIOPProfile locates an object on an IIOP endpoint.
type IIOPProfile struct {
	// Major.Minor IIOP version; we emit 1.0.
	Major, Minor byte
	Host         string
	Port         uint16
	ObjectKey    []byte
}

// Addr returns the host:port endpoint string.
func (p IIOPProfile) Addr() string {
	return net.JoinHostPort(p.Host, strconv.Itoa(int(p.Port)))
}

// IOR is an interoperable object reference: a type id plus at least one
// IIOP profile. (Other tagged profiles are preserved opaquely on parse.)
type IOR struct {
	TypeID   string
	Profiles []IIOPProfile
	// Opaque holds non-IIOP profiles encountered during parsing, as
	// (tag, raw octets) pairs, so re-encoding does not lose them.
	Opaque []OpaqueProfile
}

// OpaqueProfile is a tagged profile this package does not interpret.
type OpaqueProfile struct {
	Tag  uint32
	Data []byte
}

// New builds an IOR with a single IIOP 1.0 profile.
func New(typeID, host string, port uint16, objectKey []byte) IOR {
	return IOR{
		TypeID: typeID,
		Profiles: []IIOPProfile{{
			Major: 1, Minor: 0,
			Host: host, Port: port,
			ObjectKey: append([]byte(nil), objectKey...),
		}},
	}
}

// Encode serializes the IOR body (type id + profile sequence) into e.
func (r IOR) Encode(e *cdr.Encoder) error {
	e.WriteString(r.TypeID)
	e.WriteULong(uint32(len(r.Profiles) + len(r.Opaque)))
	for _, p := range r.Profiles {
		e.WriteULong(TagInternetIOP)
		err := e.WriteEncapsulation(e.Order(), func(ie *cdr.Encoder) error {
			ie.WriteOctet(p.Major)
			ie.WriteOctet(p.Minor)
			ie.WriteString(p.Host)
			ie.WriteUShort(p.Port)
			ie.WriteOctetSeq(p.ObjectKey)
			return nil
		})
		if err != nil {
			return fmt.Errorf("ior: encoding IIOP profile: %w", err)
		}
	}
	for _, op := range r.Opaque {
		e.WriteULong(op.Tag)
		e.WriteOctetSeq(op.Data)
	}
	return nil
}

// Decode reads an IOR body from d.
func Decode(d *cdr.Decoder) (IOR, error) {
	var r IOR
	typeID, err := d.ReadString()
	if err != nil {
		return IOR{}, fmt.Errorf("ior: type id: %w", err)
	}
	r.TypeID = typeID
	n, err := d.ReadULong()
	if err != nil {
		return IOR{}, fmt.Errorf("ior: profile count: %w", err)
	}
	for i := uint32(0); i < n; i++ {
		tag, err := d.ReadULong()
		if err != nil {
			return IOR{}, fmt.Errorf("ior: profile %d tag: %w", i, err)
		}
		blob, err := d.ReadOctetSeq()
		if err != nil {
			return IOR{}, fmt.Errorf("ior: profile %d data: %w", i, err)
		}
		if tag != TagInternetIOP {
			r.Opaque = append(r.Opaque, OpaqueProfile{Tag: tag, Data: blob})
			continue
		}
		pd, err := cdr.NewEncapsulationDecoder(blob)
		if err != nil {
			return IOR{}, fmt.Errorf("ior: profile %d encapsulation: %w", i, err)
		}
		var p IIOPProfile
		if p.Major, err = pd.ReadOctet(); err != nil {
			return IOR{}, fmt.Errorf("ior: profile %d version: %w", i, err)
		}
		if p.Minor, err = pd.ReadOctet(); err != nil {
			return IOR{}, fmt.Errorf("ior: profile %d version: %w", i, err)
		}
		if p.Host, err = pd.ReadString(); err != nil {
			return IOR{}, fmt.Errorf("ior: profile %d host: %w", i, err)
		}
		if p.Port, err = pd.ReadUShort(); err != nil {
			return IOR{}, fmt.Errorf("ior: profile %d port: %w", i, err)
		}
		if p.ObjectKey, err = pd.ReadOctetSeq(); err != nil {
			return IOR{}, fmt.Errorf("ior: profile %d object key: %w", i, err)
		}
		r.Profiles = append(r.Profiles, p)
	}
	return r, nil
}

// String returns the stringified form: "IOR:" + hex of a big-endian CDR
// encapsulation of the IOR body.
func (r IOR) String() string {
	blob, err := cdr.EncodeEncapsulation(cdr.BigEndian, r.Encode)
	if err != nil {
		// Encode only fails on a failing builder; ours cannot fail.
		return Prefix
	}
	return Prefix + hex.EncodeToString(blob)
}

// ParseString parses a stringified IOR.
func ParseString(s string) (IOR, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, Prefix) {
		return IOR{}, ErrNotStringifiedIOR
	}
	blob, err := hex.DecodeString(s[len(Prefix):])
	if err != nil {
		return IOR{}, fmt.Errorf("%w: %v", ErrBadHex, err)
	}
	d, err := cdr.NewEncapsulationDecoder(blob)
	if err != nil {
		return IOR{}, fmt.Errorf("ior: %w", err)
	}
	return Decode(d)
}

// FirstIIOP returns the first IIOP profile, the one clients connect to.
func (r IOR) FirstIIOP() (IIOPProfile, error) {
	if len(r.Profiles) == 0 {
		return IIOPProfile{}, ErrNoIIOPProfile
	}
	return r.Profiles[0], nil
}
