// Package benchfmt is the one definition of the BENCH_rtt.json artifact
// schema, shared by the writer (cmd/rtt-bench) and the CI regression gate
// (cmd/benchdiff) so a tag rename cannot silently desynchronize them and
// neutralize the gate.
package benchfmt

// Schema identifies the artifact format version.
const Schema = "livedev/rtt-bench/v2"

// BenchRow is one Table 1 row, in go-bench units. These rows measure the
// invocation hot path and are gated hard by benchdiff.
type BenchRow struct {
	Config      string  `json:"config"`
	PaperRTTMs  float64 `json:"paper_rtt_ms"`
	NsPerOp     float64 `json:"ns_op"`
	P50Ns       float64 `json:"p50_ns"`
	BytesPerOp  float64 `json:"b_op"`
	AllocsPerOp float64 `json:"allocs_op"`
	N           int     `json:"n"`
}

// ParallelRow is one parallel-call throughput row: the Table 1 echo
// workload driven by `workers` concurrent callers, ns/op as wall-clock
// over total calls. These rows measure call multiplexing on the hot path
// and are gated hard by benchdiff, keyed by config only — workers tracks
// GOMAXPROCS and may differ between machines.
type ParallelRow struct {
	Config  string  `json:"config"`
	Workers int     `json:"workers"`
	Calls   int     `json:"calls"`
	NsPerOp float64 `json:"ns_op"`
}

// RefreshRow is one refresh-after-edit latency row (wall-clock experiment;
// diffed warn-only).
type RefreshRow struct {
	Mode   string  `json:"mode"`
	Rounds int     `json:"rounds"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
}

// FanoutRow is one watcher fan-out latency row (wall-clock experiment;
// diffed warn-only).
type FanoutRow struct {
	Transport string  `json:"transport"`
	Watchers  int     `json:"watchers"`
	Edits     int     `json:"edits"`
	MeanNs    float64 `json:"mean_ns"`
	P50Ns     float64 `json:"p50_ns"`
	P99Ns     float64 `json:"p99_ns,omitempty"`
	MaxNs     float64 `json:"max_ns"`
}

// DurabilityRow is one durable-store measurement (wall-clock experiment;
// diffed warn-only): a "throughput" row reports the closed-loop commit
// rate under one WAL sync policy, a "recovery" row the cold-cache replay
// time for one shard count.
type DurabilityRow struct {
	Kind       string  `json:"kind"`
	Policy     string  `json:"policy,omitempty"`
	Shards     int     `json:"shards"`
	Publishers int     `json:"publishers,omitempty"`
	Commits    int     `json:"commits"`
	OpsPerSec  float64 `json:"ops_per_sec,omitempty"`
	RecoveryMs float64 `json:"recovery_ms,omitempty"`
}

// ReplicationRow is one replication fan-out measurement (wall-clock
// experiment; diffed warn-only): N SSE watchers spread round-robin across
// a leader and its read-only replicas, timing edit→all-notified across
// the whole plane plus the per-follower WAL-apply lag.
type ReplicationRow struct {
	Replicas int     `json:"replicas"`
	Watchers int     `json:"watchers"`
	Edits    int     `json:"edits"`
	MeanNs   float64 `json:"mean_ns"`
	P50Ns    float64 `json:"p50_ns"`
	MaxNs    float64 `json:"max_ns"`
	LagP50Ns float64 `json:"lag_p50_ns"`
	LagP99Ns float64 `json:"lag_p99_ns"`
}

// LoadgenRow is one mixed-traffic soak summary from cmd/loadgen (wall-clock
// experiment; diffed warn-only): per-binding call latency histograms under
// concurrent edit storms, watcher churn, and — when the soak exercises the
// lifecycle — a drain cycle, with the dropped-call count that the soak
// asserts to be zero.
type LoadgenRow struct {
	Binding  string  `json:"binding"`
	Calls    int     `json:"calls"`
	Errors   int     `json:"errors"`
	Dropped  int     `json:"dropped"`
	MeanNs   float64 `json:"mean_ns"`
	P50Ns    float64 `json:"p50_ns"`
	P99Ns    float64 `json:"p99_ns"`
	P999Ns   float64 `json:"p999_ns"`
	MaxNs    float64 `json:"max_ns"`
	Drains   int     `json:"drains,omitempty"`
	Watchers int     `json:"watchers,omitempty"`
}

// File is the artifact layout. Unknown extra fields (the hand-annotated
// go_bench before/after notes) survive a read-modify cycle only if callers
// preserve them; benchdiff is read-only.
type File struct {
	Schema          string           `json:"schema"`
	Command         string           `json:"command"`
	Calls           int              `json:"calls"`
	Payload         int              `json:"payload_bytes"`
	Rows            []BenchRow       `json:"rows"`
	ParallelRows    []ParallelRow    `json:"parallel_rows,omitempty"`
	RefreshRows     []RefreshRow     `json:"refresh_rows,omitempty"`
	FanoutRows      []FanoutRow      `json:"fanout_rows,omitempty"`
	DurabilityRows  []DurabilityRow  `json:"durability_rows,omitempty"`
	ReplicationRows []ReplicationRow `json:"replication_rows,omitempty"`
	LoadgenRows     []LoadgenRow     `json:"loadgen_rows,omitempty"`
}
