// Package backoff implements capped, jittered exponential backoff for
// retry loops. A Backoff tracks a failure streak; each Fail doubles the
// base delay up to a cap, Reset clears the streak after a success, and
// Delay draws a uniformly jittered duration in [d/2, d] so that a fleet
// of clients retrying against the same dead endpoint spreads out instead
// of dialing in lockstep.
//
// The zero value is ready to use with DefaultBase and DefaultCap.
package backoff

import (
	"math/rand/v2"
	"sync"
	"time"
)

// Default parameters used when a Backoff's Base or Cap is zero.
const (
	DefaultBase = 100 * time.Millisecond
	DefaultCap  = 5 * time.Second
)

// Backoff is a capped exponential backoff with uniform jitter. It is
// safe for concurrent use.
type Backoff struct {
	// Base is the delay after the first failure. Zero means DefaultBase.
	Base time.Duration
	// Cap bounds the exponential growth. Zero means DefaultCap.
	Cap time.Duration

	mu    sync.Mutex
	fails int
}

// Fail records a failure, lengthening subsequent delays.
func (b *Backoff) Fail() {
	b.mu.Lock()
	if b.fails < 62 { // avoid shift overflow; cap dominates long before this
		b.fails++
	}
	b.mu.Unlock()
}

// Reset clears the failure streak. Call it after a successful attempt so
// the next failure starts over at the base delay.
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.fails = 0
	b.mu.Unlock()
}

// Streak reports the current number of consecutive failures.
func (b *Backoff) Streak() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails
}

// Delay returns the jittered delay for the current streak: zero when no
// failure has been recorded, otherwise uniform in [d/2, d] where
// d = min(Base << (streak-1), Cap).
func (b *Backoff) Delay() time.Duration {
	b.mu.Lock()
	fails := b.fails
	b.mu.Unlock()
	if fails == 0 {
		return 0
	}
	base, cap := b.Base, b.Cap
	if base <= 0 {
		base = DefaultBase
	}
	if cap <= 0 {
		cap = DefaultCap
	}
	d := base
	for i := 1; i < fails; i++ {
		d *= 2
		if d >= cap {
			d = cap
			break
		}
	}
	if d > cap {
		d = cap
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + rand.N(d-half+1)
}

// Next records a failure and returns the delay to sleep before the next
// attempt. Equivalent to Fail followed by Delay.
func (b *Backoff) Next() time.Duration {
	b.Fail()
	return b.Delay()
}
