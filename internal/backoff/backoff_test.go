package backoff

import (
	"testing"
	"time"
)

func TestDelayZeroBeforeFirstFailure(t *testing.T) {
	var b Backoff
	if d := b.Delay(); d != 0 {
		t.Fatalf("Delay before any failure = %v, want 0", d)
	}
}

func TestExponentialGrowthWithJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: 5 * time.Second}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		3200 * time.Millisecond,
		5 * time.Second,
		5 * time.Second, // stays at cap
	}
	for i, max := range want {
		b.Fail()
		// Jitter is uniform in [max/2, max]; sample a few times.
		for j := 0; j < 20; j++ {
			d := b.Delay()
			if d < max/2 || d > max {
				t.Fatalf("streak %d sample %d: Delay = %v, want in [%v, %v]", i+1, j, d, max/2, max)
			}
		}
	}
}

func TestResetClearsStreak(t *testing.T) {
	b := Backoff{Base: time.Second, Cap: time.Minute}
	for i := 0; i < 10; i++ {
		b.Fail()
	}
	if b.Streak() != 10 {
		t.Fatalf("Streak = %d, want 10", b.Streak())
	}
	b.Reset()
	if b.Streak() != 0 {
		t.Fatalf("Streak after Reset = %d, want 0", b.Streak())
	}
	if d := b.Delay(); d != 0 {
		t.Fatalf("Delay after Reset = %v, want 0", d)
	}
	// First failure after reset starts back at base.
	if d := b.Next(); d < 500*time.Millisecond || d > time.Second {
		t.Fatalf("Next after Reset = %v, want in [500ms, 1s]", d)
	}
}

func TestZeroValueUsesDefaults(t *testing.T) {
	var b Backoff
	if d := b.Next(); d < DefaultBase/2 || d > DefaultBase {
		t.Fatalf("zero-value first Next = %v, want in [%v, %v]", d, DefaultBase/2, DefaultBase)
	}
	// Drive far past the cap threshold.
	for i := 0; i < 30; i++ {
		b.Fail()
	}
	if d := b.Delay(); d < DefaultCap/2 || d > DefaultCap {
		t.Fatalf("capped Delay = %v, want in [%v, %v]", d, DefaultCap/2, DefaultCap)
	}
}

func TestConcurrentUse(t *testing.T) {
	var b Backoff
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				b.Fail()
				_ = b.Delay()
				b.Reset()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
