// Package clock abstracts timer creation so the SDE publisher's
// stable-timeout algorithm (paper Section 5.6) can be driven
// deterministically in tests and experiments. The real implementation wraps
// time.AfterFunc; the fake implementation fires timers only when the test
// advances virtual time.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Timer is a cancellable pending timer.
type Timer interface {
	// Stop cancels the timer; it reports whether the timer was stopped
	// before firing.
	Stop() bool
}

// Clock creates timers.
type Clock interface {
	// AfterFunc runs f on its own goroutine after d elapses.
	AfterFunc(d time.Duration, f func()) Timer
	// Now returns the current (possibly virtual) time.
	Now() time.Time
}

// Real is the wall-clock implementation.
type Real struct{}

var _ Clock = Real{}

// AfterFunc wraps time.AfterFunc.
func (Real) AfterFunc(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }

// Now wraps time.Now.
func (Real) Now() time.Time { return time.Now() }

// Fake is a virtual clock for tests: timers fire, synchronously, when
// Advance moves virtual time past their deadline. The zero value is ready
// to use and starts at the zero time.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
	seq    int
}

var _ Clock = (*Fake)(nil)

type fakeTimer struct {
	clk      *Fake
	deadline time.Time
	seq      int // tie-break for deterministic firing order
	f        func()
	stopped  bool
	fired    bool
}

// Stop implements Timer.
func (t *fakeTimer) Stop() bool {
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// NewFake returns a fake clock starting at a fixed epoch.
func NewFake() *Fake {
	return &Fake{now: time.Date(2004, 12, 1, 0, 0, 0, 0, time.UTC)}
}

// AfterFunc implements Clock.
func (c *Fake) AfterFunc(d time.Duration, f func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{clk: c, deadline: c.now.Add(d), seq: c.seq, f: f}
	c.seq++
	c.timers = append(c.timers, t)
	return t
}

// Now implements Clock.
func (c *Fake) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves virtual time forward, firing due timers in deadline order.
// Timer callbacks run synchronously on the calling goroutine, without the
// clock lock held, so they may create new timers (which fire too if due).
func (c *Fake) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for {
		var next *fakeTimer
		for _, t := range c.timers {
			if t.stopped || t.fired || t.deadline.After(target) {
				continue
			}
			if next == nil || t.deadline.Before(next.deadline) ||
				(t.deadline.Equal(next.deadline) && t.seq < next.seq) {
				next = t
			}
		}
		if next == nil {
			break
		}
		next.fired = true
		if next.deadline.After(c.now) {
			c.now = next.deadline
		}
		f := next.f
		c.mu.Unlock()
		f()
		c.mu.Lock()
	}
	c.now = target
	// Compact fired/stopped timers.
	live := c.timers[:0]
	for _, t := range c.timers {
		if !t.fired && !t.stopped {
			live = append(live, t)
		}
	}
	c.timers = live
	c.mu.Unlock()
}

// PendingCount returns the number of armed timers (for assertions).
func (c *Fake) PendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.timers {
		if !t.fired && !t.stopped {
			n++
		}
	}
	return n
}

// Deadlines returns the pending timer deadlines, soonest first.
func (c *Fake) Deadlines() []time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ds []time.Time
	for _, t := range c.timers {
		if !t.fired && !t.stopped {
			ds = append(ds, t.deadline)
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Before(ds[j]) })
	return ds
}
