package clock

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestFakeAdvanceFiresInOrder(t *testing.T) {
	c := NewFake()
	var order []int
	c.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	c.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	c.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	c.Advance(5 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("firing order = %v", order)
	}
	if c.PendingCount() != 0 {
		t.Errorf("pending = %d", c.PendingCount())
	}
}

func TestFakeAdvancePartial(t *testing.T) {
	c := NewFake()
	var fired atomic.Int32
	c.AfterFunc(10*time.Second, func() { fired.Add(1) })
	c.Advance(9 * time.Second)
	if fired.Load() != 0 {
		t.Error("timer fired early")
	}
	if c.PendingCount() != 1 {
		t.Error("timer should still be pending")
	}
	c.Advance(time.Second)
	if fired.Load() != 1 {
		t.Error("timer should have fired")
	}
}

func TestFakeStop(t *testing.T) {
	c := NewFake()
	var fired atomic.Int32
	tm := c.AfterFunc(time.Second, func() { fired.Add(1) })
	if !tm.Stop() {
		t.Error("Stop should report true before firing")
	}
	if tm.Stop() {
		t.Error("second Stop should report false")
	}
	c.Advance(2 * time.Second)
	if fired.Load() != 0 {
		t.Error("stopped timer fired")
	}
}

func TestFakeStopAfterFire(t *testing.T) {
	c := NewFake()
	tm := c.AfterFunc(time.Second, func() {})
	c.Advance(time.Second)
	if tm.Stop() {
		t.Error("Stop after firing should report false")
	}
}

func TestFakeCallbackCreatesTimer(t *testing.T) {
	c := NewFake()
	var second atomic.Int32
	c.AfterFunc(time.Second, func() {
		c.AfterFunc(time.Second, func() { second.Add(1) })
	})
	c.Advance(3 * time.Second)
	if second.Load() != 1 {
		t.Error("chained timer should fire within the same Advance window")
	}
}

func TestFakeNowAdvances(t *testing.T) {
	c := NewFake()
	t0 := c.Now()
	var seen time.Time
	c.AfterFunc(time.Second, func() { seen = c.Now() })
	c.Advance(5 * time.Second)
	if got := c.Now().Sub(t0); got != 5*time.Second {
		t.Errorf("Now advanced by %v", got)
	}
	if seen.Sub(t0) != time.Second {
		t.Errorf("callback observed time %v after start", seen.Sub(t0))
	}
}

func TestFakeDeadlines(t *testing.T) {
	c := NewFake()
	c.AfterFunc(2*time.Second, func() {})
	c.AfterFunc(1*time.Second, func() {})
	ds := c.Deadlines()
	if len(ds) != 2 || !ds[0].Before(ds[1]) {
		t.Errorf("deadlines = %v", ds)
	}
}

func TestRealClock(t *testing.T) {
	var r Real
	if r.Now().IsZero() {
		t.Error("real Now is zero")
	}
	done := make(chan struct{})
	tm := r.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("real timer did not fire")
	}
	if tm.Stop() {
		t.Error("Stop after fire should be false")
	}
}

func TestFakeSameDeadlineFiresInCreationOrder(t *testing.T) {
	c := NewFake()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	c.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}
