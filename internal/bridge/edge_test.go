package bridge

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"livedev/internal/core"
	"livedev/internal/dyn"
	"livedev/internal/soap"
)

func TestBridgeUnknownTechnology(t *testing.T) {
	backend, _, _ := startBackend(t, core.TechCORBA, nil)
	mgr, err := core.NewManager(core.Config{Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mgr.Close() }()
	if _, err := New(mgr, "X", backend, core.Technology("Nope")); err == nil {
		t.Error("unknown front technology should fail")
	}
}

func TestBridgeCloseIsIdempotent(t *testing.T) {
	backend, _, _ := startBackend(t, core.TechSOAP, nil)
	front, _ := startFront(t, backend, core.TechCORBA)
	if err := front.Close(); err != nil {
		t.Fatal(err)
	}
	if err := front.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

// TestBridgeTransportEdges pins the front's transport-level behaviour: the
// re-export is an ordinary managed server, so malformed and unknown-method
// requests get the standard protocol treatment.
func TestBridgeTransportEdges(t *testing.T) {
	backend, _, _ := startBackend(t, core.TechCORBA, nil)
	front, _ := startFront(t, backend, core.TechSOAP)
	endpoint := front.Server().(*core.SOAPServer).Endpoint()

	// GET is rejected.
	resp, err := http.Get(endpoint)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}

	// Malformed body.
	resp, err = http.Post(endpoint, "text/xml", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	parsed, err := soap.ParseResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Fault == nil || parsed.Fault.String != soap.FaultMalformedRequest {
		t.Errorf("fault = %+v", parsed.Fault)
	}

	// Unknown bridged method runs the forced-publication protocol and
	// reports Non Existent Method.
	client := &soap.Client{Endpoint: endpoint, ServiceNS: "urn:InvBridge"}
	_, err = client.CallContext(t.Context(), "ghost", nil, dyn.Int32T)
	if !soap.IsNonExistentMethod(err) {
		t.Errorf("unknown bridged method: %v", err)
	}
	// Wrong arity is treated as stale-signature per the protocol.
	_, err = client.CallContext(t.Context(), "lookup", []soap.NamedValue{
		{Name: "a", Value: dyn.Int32Value(1)}, {Name: "b", Value: dyn.Int32Value(2)},
	}, dyn.Int32T)
	if !soap.IsNonExistentMethod(err) {
		t.Errorf("wrong arity through bridge: %v", err)
	}

	// Refresh is callable directly (the bridge operator's manual resync).
	if err := front.Refresh(); err != nil {
		t.Errorf("refresh: %v", err)
	}
}

// TestBridgeForwardsAppErrors: an application error thrown behind the
// bridge surfaces as the front technology's application fault.
func TestBridgeForwardsAppErrors(t *testing.T) {
	backend, class, srv := startBackend(t, core.TechCORBA, nil)
	front, _ := startFront(t, backend, core.TechSOAP)

	// Add a failing method to the backend, publish, and resync the bridge.
	if _, err := class.AddMethod(newFailingSpec()); err != nil {
		t.Fatal(err)
	}
	srv.Publisher().PublishNow()
	srv.Publisher().WaitIdle()
	if err := front.Refresh(); err != nil {
		t.Fatal(err)
	}

	endpoint := front.Server().(*core.SOAPServer).Endpoint()
	client := &soap.Client{Endpoint: endpoint, ServiceNS: "urn:InvBridge"}
	_, err := client.CallContext(t.Context(), "explode", nil, dyn.StringT)
	if err == nil || !strings.Contains(err.Error(), "backend detonated") {
		t.Errorf("bridged app error = %v", err)
	}
}
