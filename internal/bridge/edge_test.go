package bridge

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"livedev/internal/soap"
)

func TestSOAPFrontStartErrors(t *testing.T) {
	backend, _, _ := startCORBABackend(t)
	front := NewSOAPFront("X", backend)
	if err := front.Start("127.0.0.1:0", "999.999.999.999:0"); err == nil {
		t.Error("bad interface address should fail")
	}
	front2 := NewSOAPFront("X", backend)
	if err := front2.Start("999.999.999.999:0", "127.0.0.1:0"); err == nil {
		t.Error("bad endpoint address should fail")
	}
	// Close before start is a no-op.
	front3 := NewSOAPFront("X", backend)
	if err := front3.Close(); err != nil {
		t.Errorf("close before start: %v", err)
	}
}

func TestCORBAFrontStartErrors(t *testing.T) {
	backend, _, _ := startSOAPBackend(t)
	front := NewCORBAFront("X", backend)
	if err := front.Start("127.0.0.1:0", "999.999.999.999:0"); err == nil {
		t.Error("bad interface address should fail")
	}
	front2 := NewCORBAFront("X", backend)
	if err := front2.Start("999.999.999.999:0", "127.0.0.1:0"); err == nil {
		t.Error("bad ORB address should fail")
	}
	front3 := NewCORBAFront("X", backend)
	if err := front3.Close(); err != nil {
		t.Errorf("close before start: %v", err)
	}
	if _, err := front3.IOR(); err == nil {
		t.Error("IOR before start should fail")
	}
}

func TestSOAPFrontTransportEdges(t *testing.T) {
	backend, _, _ := startCORBABackend(t)
	front := NewSOAPFront("Edge", backend)
	if err := front.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	// GET is rejected.
	resp, err := http.Get(front.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}

	// Malformed body.
	resp, err = http.Post(front.Endpoint(), "text/xml", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	parsed, err := soap.ParseResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Fault == nil || parsed.Fault.String != soap.FaultMalformedRequest {
		t.Errorf("fault = %+v", parsed.Fault)
	}

	// Refresh is callable directly (the bridge operator's manual resync).
	if err := front.Refresh(); err != nil {
		t.Errorf("refresh: %v", err)
	}
}

func TestSOAPFrontForwardsAppErrors(t *testing.T) {
	backend, class, srv := startCORBABackend(t)
	front := NewSOAPFront("Err", backend)
	if err := front.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	// Add a failing method to the backend and publish.
	if _, err := class.AddMethod(newFailingSpec()); err != nil {
		t.Fatal(err)
	}
	srv.Publisher().PublishNow()
	srv.Publisher().WaitIdle()
	if err := front.Refresh(); err != nil {
		t.Fatal(err)
	}

	client := &soap.Client{Endpoint: front.Endpoint(), ServiceNS: "urn:Err"}
	_, err := client.Call("explode", nil, soapStringType())
	if err == nil || !strings.Contains(err.Error(), "backend detonated") {
		t.Errorf("bridged app error = %v", err)
	}
}
