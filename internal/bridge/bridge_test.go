package bridge

import (
	"errors"
	"testing"
	"time"

	"livedev/internal/cde"
	"livedev/internal/core"
	"livedev/internal/dyn"
	"livedev/internal/soap"
)

// newFailingSpec is a distributed method whose body always errors.
func newFailingSpec() dyn.MethodSpec {
	return dyn.MethodSpec{
		Name:        "explode",
		Result:      dyn.StringT,
		Distributed: true,
		Body: func(*dyn.Instance, []dyn.Value) (dyn.Value, error) {
			return dyn.Value{}, errors.New("backend detonated")
		},
	}
}

// soapStringType avoids importing dyn in edge_test for one constant.
func soapStringType() *dyn.Type { return dyn.StringT }

// startCORBABackend runs a live SDE CORBA server and returns a CDE client
// bound to it (the bridge's backend) plus the class for live edits.
func startCORBABackend(t *testing.T) (*cde.Client, *dyn.Class, core.Server) {
	t.Helper()
	mgr, err := core.NewManager(core.Config{Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mgr.Close() })

	class := dyn.NewClass("Inv")
	if _, err := class.AddMethod(dyn.MethodSpec{
		Name:        "lookup",
		Params:      []dyn.Param{{Name: "skuCode", Type: dyn.StringT}},
		Result:      dyn.Int32T,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return dyn.Int32Value(int32(len(args[0].Str()))), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	srv, err := mgr.Register(class, core.TechCORBA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	cs := srv.(*core.CORBAServer)
	backend, err := cde.NewCORBAClient(cs.InterfaceURL(), cs.IORURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = backend.Close() })
	return backend, class, srv
}

// startSOAPBackend runs a live SDE SOAP server and returns a CDE client
// bound to it.
func startSOAPBackend(t *testing.T) (*cde.Client, *dyn.Class, core.Server) {
	t.Helper()
	mgr, err := core.NewManager(core.Config{Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mgr.Close() })

	class := dyn.NewClass("Inv")
	if _, err := class.AddMethod(dyn.MethodSpec{
		Name:        "lookup",
		Params:      []dyn.Param{{Name: "skuCode", Type: dyn.StringT}},
		Result:      dyn.Int32T,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return dyn.Int32Value(int32(len(args[0].Str()))), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	srv, err := mgr.Register(class, core.TechSOAP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	backend, err := cde.NewSOAPClient(srv.InterfaceURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = backend.Close() })
	return backend, class, srv
}

// TestSOAPFrontBridgesCORBA: a SOAP client talks, through the bridge, to a
// live CORBA server.
func TestSOAPFrontBridgesCORBA(t *testing.T) {
	backend, _, _ := startCORBABackend(t)
	front := NewSOAPFront("InvBridge", backend)
	if err := front.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	// A plain CDE SOAP client consumes the bridge like any Web Service.
	soapClient, err := cde.NewSOAPClient(front.WSDLURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer soapClient.Close()

	got, err := soapClient.Call("lookup", dyn.StringValue("ABC-123"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int32() != 7 {
		t.Errorf("lookup = %v", got)
	}
	if soapClient.Technology() != "SOAP" || backend.Technology() != "CORBA" {
		t.Error("bridge should span technologies")
	}
}

// TestSOAPFrontLiveEditPropagates: a server-side rename crosses the bridge
// with the recency guarantee intact.
func TestSOAPFrontLiveEditPropagates(t *testing.T) {
	backend, class, srv := startCORBABackend(t)
	front := NewSOAPFront("InvBridge", backend)
	if err := front.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	soapClient, err := cde.NewSOAPClient(front.WSDLURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer soapClient.Close()

	// Rename on the CORBA server while the SOAP client is connected
	// through the bridge.
	id, _ := class.MethodIDByName("lookup")
	if err := class.RenameMethod(id, "find"); err != nil {
		t.Fatal(err)
	}
	srv.Publisher().PublishNow()
	srv.Publisher().WaitIdle()

	// The SOAP client's stale call crosses two protocol layers and still
	// arrives as the standard stale-method experience, with the bridge's
	// WSDL already refreshed by delivery time.
	_, err = soapClient.Call("lookup", dyn.StringValue("x"))
	if !errors.Is(err, cde.ErrStaleMethod) {
		t.Fatalf("bridged stale call: %v", err)
	}
	if _, ok := soapClient.Interface().Lookup("find"); !ok {
		t.Error("rename must be visible through the bridge after the stale call")
	}
	got, err := soapClient.Call("find", dyn.StringValue("AB"))
	if err != nil || got.Int32() != 2 {
		t.Errorf("find = %v, %v", got, err)
	}
}

// TestCORBAFrontBridgesSOAP: a CORBA client talks, through the bridge, to
// a live SOAP server.
func TestCORBAFrontBridgesSOAP(t *testing.T) {
	backend, _, _ := startSOAPBackend(t)
	front := NewCORBAFront("InvBridge", backend)
	if err := front.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	corbaClient, err := cde.NewCORBAClient(front.IDLURL(), front.IORURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer corbaClient.Close()

	got, err := corbaClient.Call("lookup", dyn.StringValue("WXYZ"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int32() != 4 {
		t.Errorf("lookup = %v", got)
	}
	if _, err := front.IOR(); err != nil {
		t.Errorf("IOR(): %v", err)
	}
}

// TestCORBAFrontLiveEditPropagates: the reverse direction of the live
// propagation test.
func TestCORBAFrontLiveEditPropagates(t *testing.T) {
	backend, class, srv := startSOAPBackend(t)
	front := NewCORBAFront("InvBridge", backend)
	if err := front.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	corbaClient, err := cde.NewCORBAClient(front.IDLURL(), front.IORURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer corbaClient.Close()

	id, _ := class.MethodIDByName("lookup")
	if err := class.RenameMethod(id, "find"); err != nil {
		t.Fatal(err)
	}
	srv.Publisher().PublishNow()
	srv.Publisher().WaitIdle()

	_, err = corbaClient.Call("lookup", dyn.StringValue("x"))
	if !errors.Is(err, cde.ErrStaleMethod) {
		t.Fatalf("bridged stale call: %v", err)
	}
	if _, ok := corbaClient.Interface().Lookup("find"); !ok {
		t.Error("rename must be visible through the bridge after the stale call")
	}
	got, err := corbaClient.Call("find", dyn.StringValue("ABCDE"))
	if err != nil || got.Int32() != 5 {
		t.Errorf("find = %v, %v", got, err)
	}
}

// TestSOAPFrontMalformedAndUnknown: transport-level edge cases.
func TestSOAPFrontMalformedAndUnknown(t *testing.T) {
	backend, _, _ := startCORBABackend(t)
	front := NewSOAPFront("InvBridge", backend)
	if err := front.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	client := &soap.Client{Endpoint: front.Endpoint(), ServiceNS: "urn:InvBridge"}
	_, err := client.Call("ghost", nil, dyn.Int32T)
	if !soap.IsNonExistentMethod(err) {
		t.Errorf("unknown bridged method: %v", err)
	}
	// Wrong arity is treated as stale-signature per the protocol.
	_, err = client.Call("lookup", []soap.NamedValue{
		{Name: "a", Value: dyn.Int32Value(1)}, {Name: "b", Value: dyn.Int32Value(2)},
	}, dyn.Int32T)
	if !soap.IsNonExistentMethod(err) {
		t.Errorf("wrong arity through bridge: %v", err)
	}
	if err := front.Close(); err != nil {
		t.Fatal(err)
	}
	if err := front.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}
