package bridge

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"livedev/internal/cde"
	"livedev/internal/core"
	"livedev/internal/dyn"
	"livedev/internal/h2b"
	"livedev/internal/jsonb"
)

// The bridge is binding-agnostic: the matrix tests below need all four
// technologies registered on both halves of the registry.
func init() {
	core.RegisterBinding(jsonb.New())
	cde.RegisterConnector(jsonb.Connector())
	core.RegisterBinding(h2b.New())
	cde.RegisterConnector(h2b.Connector())
}

// allTechs are the four registered bindings the matrix tests span.
var allTechs = []core.Technology{core.TechSOAP, core.TechCORBA, core.Technology(jsonb.Name), core.Technology(h2b.Name)}

// newFailingSpec is a distributed method whose body always errors.
func newFailingSpec() dyn.MethodSpec {
	return dyn.MethodSpec{
		Name:        "explode",
		Result:      dyn.StringT,
		Distributed: true,
		Body: func(*dyn.Instance, []dyn.Value) (dyn.Value, error) {
			return dyn.Value{}, errors.New("backend detonated")
		},
	}
}

// startBackend runs a live SDE server of the given technology and returns a
// CDE client dialed against its published interface document (the bridge's
// backend), the class for live edits, and the managed server.
func startBackend(t *testing.T, tech core.Technology, opts *cde.DialOptions) (*cde.Client, *dyn.Class, core.Server) {
	t.Helper()
	mgr, err := core.NewManager(core.Config{Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mgr.Close() })

	class := dyn.NewClass("Inv")
	if _, err := class.AddMethod(dyn.MethodSpec{
		Name:        "lookup",
		Params:      []dyn.Param{{Name: "skuCode", Type: dyn.StringT}},
		Result:      dyn.Int32T,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return dyn.Int32Value(int32(len(args[0].Str()))), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	srv, err := mgr.Register(class, tech)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	backend, err := cde.Dial(context.Background(), srv.InterfaceURL(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = backend.Close() })
	return backend, class, srv
}

// startFront deploys a re-export of backend over tech under a fresh manager
// and returns the front plus a CDE client dialed against it.
func startFront(t *testing.T, backend *cde.Client, tech core.Technology) (*Front, *cde.Client) {
	t.Helper()
	mgr, err := core.NewManager(core.Config{Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mgr.Close() })
	front, err := New(mgr, "InvBridge", backend, tech)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = front.Close() })
	client, err := cde.Dial(context.Background(), front.InterfaceURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return front, client
}

// TestBridgeAllDirections round-trips the class across every ordered pair
// of registered bindings — SOAP, CORBA, and JSON served over each other in
// all directions (the generalized re-export the registry makes possible).
func TestBridgeAllDirections(t *testing.T) {
	for _, src := range allTechs {
		for _, dst := range allTechs {
			t.Run(fmt.Sprintf("%s_over_%s", src, dst), func(t *testing.T) {
				backend, _, _ := startBackend(t, src, nil)
				front, client := startFront(t, backend, dst)
				got, err := client.CallContext(context.Background(), "lookup", dyn.StringValue("ABC-123"))
				if err != nil {
					t.Fatal(err)
				}
				if got.Int32() != 7 {
					t.Errorf("lookup = %v", got)
				}
				if front.Technology() != dst || backend.Technology() != string(src) {
					t.Errorf("bridge spans %s -> %s, reported %s -> %s",
						dst, src, front.Technology(), backend.Technology())
				}
			})
		}
	}
}

// TestBridgeLiveEditPropagates: a server-side rename crosses the bridge in
// both classic directions with the recency guarantee intact.
func TestBridgeLiveEditPropagates(t *testing.T) {
	cases := []struct{ src, dst core.Technology }{
		{core.TechCORBA, core.TechSOAP},
		{core.TechSOAP, core.TechCORBA},
		{core.Technology(jsonb.Name), core.TechSOAP},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s_over_%s", tc.src, tc.dst), func(t *testing.T) {
			backend, class, srv := startBackend(t, tc.src, nil)
			_, client := startFront(t, backend, tc.dst)

			// Rename on the backend server while the front client is
			// connected through the bridge.
			id, _ := class.MethodIDByName("lookup")
			if err := class.RenameMethod(id, "find"); err != nil {
				t.Fatal(err)
			}
			srv.Publisher().PublishNow()
			srv.Publisher().WaitIdle()

			// The front client's stale call crosses two protocol layers and
			// still arrives as the standard stale-method experience, with
			// the bridge's derived document already refreshed by delivery.
			_, err := client.CallContext(context.Background(), "lookup", dyn.StringValue("x"))
			if !errors.Is(err, cde.ErrStaleMethod) {
				t.Fatalf("bridged stale call: %v", err)
			}
			if _, ok := client.Interface().Lookup("find"); !ok {
				t.Error("rename must be visible through the bridge after the stale call")
			}
			got, err := client.CallContext(context.Background(), "find", dyn.StringValue("AB"))
			if err != nil || got.Int32() != 2 {
				t.Errorf("find = %v, %v", got, err)
			}
		})
	}
}

// TestBridgeWatchDrivenResync: with a watch-dialed backend client, a
// backend edit propagates through the bridge with no front-side call at
// all — the push invalidates the backend view, the view-change hook resyncs
// the proxy class, and the bridge's publisher republishes.
func TestBridgeWatchDrivenResync(t *testing.T) {
	backend, class, srv := startBackend(t, core.TechCORBA, &cde.DialOptions{Watch: true})
	front, _ := startFront(t, backend, core.TechSOAP)

	id, _ := class.MethodIDByName("lookup")
	if err := class.RenameMethod(id, "find"); err != nil {
		t.Fatal(err)
	}
	srv.Publisher().PublishNow()
	srv.Publisher().WaitIdle()

	// No call is made through the bridge; the proxy class must converge on
	// its own via the watch push.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := front.class.Interface().Lookup("find"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watch-driven resync did not reach the proxy class")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := backend.Stats()
	if st.WatchUpdates == 0 {
		t.Error("backend client should have received watch updates")
	}
	// The resync must have ridden the streaming transport: the push arrives
	// as an SSE event, not a long-poll response or a refetch.
	if st.StreamEvents == 0 {
		t.Errorf("stats = %+v: the bridge's backend watcher should ride the streaming transport", st)
	}
	if st.Refreshes != 1 {
		t.Errorf("stats = %+v: propagation must not refetch the document", st)
	}
}

// TestBridgeChainedFronts: a re-export of a re-export (SOAP over JSON over
// CORBA) still serves calls — the front is an ordinary managed server, so
// it composes.
func TestBridgeChainedFronts(t *testing.T) {
	backend, _, _ := startBackend(t, core.TechCORBA, nil)
	frontJSON, jsonClient := startFront(t, backend, core.Technology(jsonb.Name))
	defer func() { _ = frontJSON.Close() }()
	front2, soapClient := startFront(t, jsonClient, core.TechSOAP)
	defer func() { _ = front2.Close() }()

	got, err := soapClient.CallContext(context.Background(), "lookup", dyn.StringValue("WXYZ"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int32() != 4 {
		t.Errorf("chained lookup = %v", got)
	}

	// One more link: the binary binding fronting the whole chain (H2B over
	// SOAP over JSON over CORBA).
	front3, h2bClient := startFront(t, soapClient, core.Technology(h2b.Name))
	defer func() { _ = front3.Close() }()
	got, err = h2bClient.CallContext(context.Background(), "lookup", dyn.StringValue("WXYZAB"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int32() != 6 {
		t.Errorf("h2b-fronted chained lookup = %v", got)
	}
}

// TestBridgeTwoFrontsShareBackend: two fronts over one backend client both
// stay live — view listeners compose, and closing one front must not
// detach the other's propagation.
func TestBridgeTwoFrontsShareBackend(t *testing.T) {
	backend, class, srv := startBackend(t, core.TechCORBA, nil)
	frontA, clientA := startFront(t, backend, core.TechSOAP)
	frontB, clientB := startFront(t, backend, core.Technology(jsonb.Name))

	if err := frontA.Close(); err != nil {
		t.Fatal(err)
	}
	_ = clientA

	// Edit after frontA closed: frontB's listener must still fire.
	id, _ := class.MethodIDByName("lookup")
	if err := class.RenameMethod(id, "find"); err != nil {
		t.Fatal(err)
	}
	srv.Publisher().PublishNow()
	srv.Publisher().WaitIdle()

	_, err := clientB.CallContext(context.Background(), "lookup", dyn.StringValue("x"))
	if !errors.Is(err, cde.ErrStaleMethod) {
		t.Fatalf("stale call through surviving front: %v", err)
	}
	got, err := clientB.CallContext(context.Background(), "find", dyn.StringValue("ABC"))
	if err != nil || got.Int32() != 3 {
		t.Errorf("find through surviving front = %v, %v", got, err)
	}
	_ = frontB
}
