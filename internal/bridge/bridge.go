// Package bridge implements the paper's future-work feature (Section 8):
// "the ability to interchange the technology being used to communicate
// between the client and the server while live development and information
// exchange is taking place. Although some SOAP to CORBA bridging
// technologies offer static bridging capabilities, we feel that live
// modification will result in a more fluid development experience."
//
// A Front re-exports the class behind any CDE client over any registered
// RMI technology: the backend's live interface view is mirrored into a
// proxy dynamic class whose method bodies forward calls over the backend,
// and the proxy class is deployed through the ordinary binding registry
// under an SDE Manager. That one construction replaces the old hardcoded
// SOAP↔CORBA pairing with every direction the registry supports
// (SOAP↔CORBA↔JSON and any third-party binding), and it inherits the whole
// publication core for free: the bridge's derived interface document is
// published through the manager's coalescing store, stale calls from front
// clients run the Section 5.7 forced-publication protocol, and — because
// the proxy class is an ordinary dynamic class — server-side edits
// propagate through the bridge live.
//
// Unlike the static bridges the paper cites (Orbix/Artix), propagation is
// event-driven end to end: the backend client's view-change hook (fed by a
// reactive refresh, or by a push watcher when the backend was dialed with
// the watch option) resynchronizes the proxy class, whose own DL Publisher
// then republishes the derived document, whose committed version wakes the
// front clients' watchers. The "Non Existent Method" recency guarantee
// crosses the bridge intact: a stale bridged call reactively refreshes the
// backend view, resyncs the proxy class, and forces the bridge's own
// publication current before the fault reaches the front client.
package bridge

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"livedev/internal/cde"
	"livedev/internal/core"
	"livedev/internal/dyn"
)

// Front re-exports the class behind a CDE client over another registered
// binding. Create one with New; the front appears to its clients as an
// ordinary managed SDE server (srv.InterfaceURL() is dialable).
type Front struct {
	name    string
	backend *cde.Client
	mgr     *core.Manager
	class   *dyn.Class
	srv     core.Server

	// syncMu serializes proxy-class resynchronization (view-change hook,
	// stale bridged calls, manual Refresh).
	syncMu  sync.Mutex
	methods map[string]dyn.MemberID // proxy method name → member id

	removeHook func() // unregisters the backend view listener

	mu     sync.Mutex
	closed bool
}

// New deploys a re-export of backend's class under m as a live server of
// technology tech (any name registered with the binding registry). name is
// the re-exported class name. The front does not own the backend client;
// the caller closes it after the front.
func New(m *core.Manager, name string, backend *cde.Client, tech core.Technology) (*Front, error) {
	f := &Front{
		name:    name,
		backend: backend,
		mgr:     m,
		class:   dyn.NewClass(name),
		methods: make(map[string]dyn.MemberID),
	}
	if err := f.syncClass(); err != nil {
		return nil, fmt.Errorf("bridge: mirroring backend interface: %w", err)
	}
	// Event-driven re-export: every installed backend view (reactive
	// refresh, watch push, manual refresh) resynchronizes the proxy class,
	// which arms the bridge server's own DL Publisher.
	f.removeHook = backend.AddViewListener(func() { _ = f.syncClass() })
	srv, err := m.Register(f.class, tech)
	if err != nil {
		f.removeHook()
		return nil, err
	}
	f.srv = srv
	if _, err := srv.CreateInstance(); err != nil {
		f.removeHook()
		_ = srv.Close()
		return nil, err
	}
	return f, nil
}

// Name returns the re-exported class name.
func (f *Front) Name() string { return f.name }

// Server returns the managed server fronting the bridge — the handle front
// clients are given (InterfaceURL, Publisher, technology-specific accessors
// via type assertion).
func (f *Front) Server() core.Server { return f.srv }

// InterfaceURL returns the URL of the bridge's derived interface document.
func (f *Front) InterfaceURL() string { return f.srv.InterfaceURL() }

// Technology reports the front-side technology.
func (f *Front) Technology() core.Technology { return f.srv.Technology() }

// Backend returns the backend client the bridge forwards over.
func (f *Front) Backend() *cde.Client { return f.backend }

// Refresh re-fetches the backend interface and resynchronizes the proxy
// class (the view-change hook does this automatically; Refresh is the
// manual trigger).
func (f *Front) Refresh() error {
	if err := f.backend.Refresh(); err != nil {
		return err
	}
	return f.syncClass()
}

// syncClass mirrors the backend client's current interface view onto the
// proxy class: methods gone from the backend are removed, new or re-signed
// methods are (re)added with forwarding bodies. Edits go through the
// ordinary dyn.Class commit path, so the bridge server's publisher sees
// them like any developer edit.
func (f *Front) syncClass() error {
	f.syncMu.Lock()
	defer f.syncMu.Unlock()
	desc := f.backend.Interface()
	desired := make(map[string]dyn.MethodSig, len(desc.Methods))
	for _, sig := range desc.Methods {
		desired[sig.Name] = sig
	}
	cur := f.class.Interface()
	// Drop proxies whose backend method is gone or re-signed.
	for name, id := range f.methods {
		sig, ok := desired[name]
		if ok {
			if have, live := cur.Lookup(name); live && have.Equal(sig) {
				continue
			}
		}
		if err := f.class.RemoveMethod(id); err != nil {
			return err
		}
		delete(f.methods, name)
	}
	// Add the missing ones.
	for name, sig := range desired {
		if _, have := f.methods[name]; have {
			continue
		}
		id, err := f.class.AddMethod(dyn.MethodSpec{
			Name:        sig.Name,
			Params:      sig.Params,
			Result:      sig.Result,
			Distributed: true,
			Body:        f.forwardBody(name),
		})
		if err != nil {
			return err
		}
		f.methods[name] = id
	}
	return nil
}

// forwardBody returns the proxy method body for op: forward the call over
// the backend client; map bridged staleness onto the front technology's
// "Non Existent Method" protocol.
//
// The dyn Body ABI is context-free (bodies are developer-edited application
// code), so the front-side request context cannot reach the backend
// round-trip: a cancelled front caller does not abort the bridged call.
// Dial the backend with a timeout (livedev.WithTimeout) so a hung backend
// cannot park the front's handler goroutines indefinitely; threading the
// front context end to end is a ROADMAP item (context-aware Body ABI).
func (f *Front) forwardBody(op string) dyn.Body {
	return func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
		v, err := f.backend.CallContext(context.Background(), op, args...)
		if err == nil {
			return v, nil
		}
		if errors.Is(err, cde.ErrStaleMethod) || errors.Is(err, cde.ErrNoSuchStub) {
			// The backend already refreshed its view reactively; mirror it
			// into the proxy class now so the front binding's forced
			// publication (run before its "Non Existent Method" reply)
			// publishes the post-edit interface — the recency guarantee
			// crosses the bridge.
			_ = f.syncClass()
			return dyn.Value{}, fmt.Errorf("%w: bridged backend: %v", dyn.ErrNoSuchMethod, err)
		}
		return dyn.Value{}, err
	}
}

// Close shuts the front down (the backend client stays open; the caller
// owns it).
func (f *Front) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	f.removeHook()
	if f.srv != nil {
		return f.srv.Close()
	}
	return nil
}
