// Package bridge implements the paper's future-work feature (Section 8):
// "the ability to interchange the technology being used to communicate
// between the client and the server while live development and information
// exchange is taking place. Although some SOAP to CORBA bridging
// technologies offer static bridging capabilities, we feel that live
// modification will result in a more fluid development experience."
//
// A bridge fronts a live server of one technology with an endpoint of the
// other: a SOAPFront exposes a CORBA server as a Web Service (publishing a
// WSDL derived from the backend's live interface); a CORBAFront exposes a
// SOAP server as a CORBA object (publishing IDL + IOR). Unlike the static
// bridges the paper cites (Orbix/Artix), the bridge is *live*: its view of
// the backend interface refreshes through the same reactive protocol the
// CDE uses, so server-side edits propagate through the bridge to clients
// of the other technology, including the "Non Existent Method" recency
// guarantee.
package bridge

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"livedev/internal/cde"
	"livedev/internal/dyn"
	"livedev/internal/idl"
	"livedev/internal/ifsvr"
	"livedev/internal/ior"
	"livedev/internal/orb"
	"livedev/internal/soap"
	"livedev/internal/wsdl"
)

// SOAPFront exposes a backend (normally a CORBA CDE client) as a SOAP
// endpoint with a live WSDL document.
type SOAPFront struct {
	backend *cde.Client
	name    string

	iface    *ifsvr.Server
	wsdlPath string

	srv      *http.Server
	ln       net.Listener
	endpoint string
	done     chan struct{}

	mu     sync.Mutex
	closed bool
}

// NewSOAPFront bridges the backend client under the given service name.
// The front owns its own Interface Server instance for the derived WSDL.
func NewSOAPFront(name string, backend *cde.Client) *SOAPFront {
	return &SOAPFront{
		backend:  backend,
		name:     name,
		iface:    ifsvr.New(),
		wsdlPath: "/wsdl/" + name + ".wsdl",
	}
}

// Start listens on the two addresses (endpoint and interface server) and
// publishes the initial WSDL derived from the backend's current interface.
func (f *SOAPFront) Start(endpointAddr, ifaceAddr string) error {
	if _, err := f.iface.Start(ifaceAddr); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", endpointAddr)
	if err != nil {
		_ = f.iface.Close()
		return fmt.Errorf("bridge: listen %s: %w", endpointAddr, err)
	}
	f.ln = ln
	f.endpoint = "http://" + ln.Addr().String() + "/"
	f.srv = &http.Server{Handler: f, ReadHeaderTimeout: 10 * time.Second}
	f.done = make(chan struct{})
	go func() {
		defer close(f.done)
		_ = f.srv.Serve(ln)
	}()
	f.republish()
	return nil
}

// Endpoint returns the bridged SOAP endpoint URL.
func (f *SOAPFront) Endpoint() string { return f.endpoint }

// WSDLURL returns the URL of the bridge's derived WSDL document.
func (f *SOAPFront) WSDLURL() string { return f.iface.BaseURL() + f.wsdlPath }

// republish regenerates the bridge's WSDL from the backend's current
// interface view — the live half of live bridging.
func (f *SOAPFront) republish() {
	desc := f.backend.Interface()
	desc.ClassName = f.name
	doc := wsdl.Generate(desc, f.endpoint)
	text, err := doc.XML()
	if err != nil {
		return
	}
	f.iface.PublishVersioned(f.wsdlPath, "text/xml", text, f.backend.Versions().Descriptor)
}

// Refresh re-fetches the backend interface and republishes the WSDL.
func (f *SOAPFront) Refresh() error {
	if err := f.backend.Refresh(); err != nil {
		return err
	}
	f.republish()
	return nil
}

// ServeHTTP translates SOAP requests into backend calls.
func (f *SOAPFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "SOAP endpoint: POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		f.fault(w, &soap.Fault{Code: "soap:Client", String: soap.FaultMalformedRequest})
		return
	}
	req, err := soap.ParseRequest(body)
	if err != nil {
		f.fault(w, &soap.Fault{Code: "soap:Client", String: soap.FaultMalformedRequest})
		return
	}
	sig, ok := f.backend.Interface().Lookup(req.Method)
	if !ok || len(req.Params) != len(sig.Params) {
		f.staleFault(w, req.Method)
		return
	}
	args := make([]dyn.Value, len(sig.Params))
	for i, p := range sig.Params {
		v, err := soap.DecodeValue(req.Params[i], p.Type)
		if err != nil {
			f.staleFault(w, req.Method)
			return
		}
		args[i] = v
	}
	result, err := f.backend.Call(req.Method, args...)
	switch {
	case err == nil:
		env, encErr := soap.BuildResponse("urn:"+f.name, req.Method, result)
		if encErr != nil {
			f.fault(w, &soap.Fault{Code: "soap:Server", String: "encoding error"})
			return
		}
		w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
		_, _ = io.WriteString(w, env)
	case errors.Is(err, cde.ErrStaleMethod), errors.Is(err, cde.ErrNoSuchStub):
		// The backend already refreshed the client view; mirror the
		// change into our published WSDL before faulting, preserving the
		// recency guarantee across the bridge.
		f.republish()
		f.fault(w, &soap.Fault{Code: "soap:Server", String: soap.FaultNonExistentMethod,
			Detail: "bridged method " + req.Method + " is not on the current backend interface"})
	default:
		f.fault(w, &soap.Fault{Code: "soap:Server", String: err.Error()})
	}
}

// staleFault handles calls the bridge's own view cannot resolve: refresh
// the view (and WSDL), then report Non Existent Method.
func (f *SOAPFront) staleFault(w http.ResponseWriter, method string) {
	_ = f.Refresh()
	f.fault(w, &soap.Fault{Code: "soap:Server", String: soap.FaultNonExistentMethod,
		Detail: "bridged method " + method + " is not on the current backend interface"})
}

func (f *SOAPFront) fault(w http.ResponseWriter, flt *soap.Fault) {
	w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = io.WriteString(w, soap.BuildFault(flt))
}

// Close shuts the bridge down (the backend client is not closed; the
// caller owns it).
func (f *SOAPFront) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	var err error
	if f.srv != nil {
		err = f.srv.Close()
		<-f.done
	}
	if e := f.iface.Close(); err == nil {
		err = e
	}
	return err
}

// CORBAFront exposes a backend (normally a SOAP CDE client) as a CORBA
// object with live IDL + IOR documents.
type CORBAFront struct {
	backend *cde.Client
	name    string

	iface   *ifsvr.Server
	idlPath string
	iorPath string

	orbSrv *orb.ServerORB

	mu     sync.Mutex
	closed bool
}

// NewCORBAFront bridges the backend client under the given interface name.
func NewCORBAFront(name string, backend *cde.Client) *CORBAFront {
	return &CORBAFront{
		backend: backend,
		name:    name,
		iface:   ifsvr.New(),
		idlPath: "/idl/" + name + ".idl",
		iorPath: "/ior/" + name + ".ior",
	}
}

// Start listens on the two addresses and publishes the initial IDL and IOR.
func (f *CORBAFront) Start(orbAddr, ifaceAddr string) error {
	if _, err := f.iface.Start(ifaceAddr); err != nil {
		return err
	}
	typeID := fmt.Sprintf("IDL:%sModule/%s:1.0", f.name, f.name)
	f.orbSrv = orb.NewServerORB(typeID, []byte(f.name), &bridgeTarget{front: f})
	ref, err := f.orbSrv.Listen(orbAddr)
	if err != nil {
		_ = f.iface.Close()
		return err
	}
	f.iface.Publish(f.iorPath, "text/plain", ref.String())
	f.republish()
	return nil
}

// IDLURL returns the URL of the bridge's derived IDL document.
func (f *CORBAFront) IDLURL() string { return f.iface.BaseURL() + f.idlPath }

// IORURL returns the URL of the bridge object's IOR.
func (f *CORBAFront) IORURL() string { return f.iface.BaseURL() + f.iorPath }

// IOR returns the bridge object's reference (valid after Start).
func (f *CORBAFront) IOR() (ior.IOR, error) {
	doc, err := f.iface.Get(f.iorPath)
	if err != nil {
		return ior.IOR{}, err
	}
	return ior.ParseString(doc.Content)
}

func (f *CORBAFront) republish() {
	desc := f.backend.Interface()
	desc.ClassName = f.name
	doc, err := idl.Generate(desc)
	if err != nil {
		return
	}
	f.iface.PublishVersioned(f.idlPath, "text/plain", idl.Print(doc), f.backend.Versions().Descriptor)
}

// Refresh re-fetches the backend interface and republishes the IDL.
func (f *CORBAFront) Refresh() error {
	if err := f.backend.Refresh(); err != nil {
		return err
	}
	f.republish()
	return nil
}

// Close shuts the bridge down.
func (f *CORBAFront) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	var err error
	if f.orbSrv != nil {
		err = f.orbSrv.Close()
	}
	if e := f.iface.Close(); err == nil {
		err = e
	}
	return err
}

// bridgeTarget adapts the backend client to the server ORB's DSI surface.
type bridgeTarget struct {
	front *CORBAFront
}

var _ orb.DSITarget = (*bridgeTarget)(nil)

// LookupOperation implements orb.DSITarget against the backend view.
func (t *bridgeTarget) LookupOperation(op string) (dyn.MethodSig, bool) {
	return t.front.backend.Interface().Lookup(op)
}

// InvokeOperation implements orb.DSITarget by forwarding over the backend;
// the CORBA-side request context governs the bridged call, so a cancelled
// front-side caller aborts the backend round-trip too.
func (t *bridgeTarget) InvokeOperation(ctx context.Context, op string, args []dyn.Value) (dyn.Value, error) {
	v, err := t.front.backend.CallContext(ctx, op, args...)
	if err == nil {
		return v, nil
	}
	if errors.Is(err, cde.ErrStaleMethod) || errors.Is(err, cde.ErrNoSuchStub) {
		// Map the bridged staleness onto the CORBA-side protocol: the ORB
		// will call OperationMissing and reply BAD_OPERATION.
		return dyn.Value{}, fmt.Errorf("%w: bridged backend: %v", dyn.ErrNoSuchMethod, err)
	}
	return dyn.Value{}, err
}

// OperationMissing implements orb.DSITarget: refresh the backend view and
// republish the IDL before the BAD_OPERATION reply goes out.
func (t *bridgeTarget) OperationMissing(string) {
	_ = t.front.Refresh()
}
