package soap

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"livedev/internal/dyn"
)

func TestXMLTreeRoundTrip(t *testing.T) {
	root := NewNode("a")
	root.Attrs["x"] = `quote " amp & lt <`
	b := root.Append(NewNode("b"))
	b.Text = "text with <angle> & amp"
	root.Append(NewNode("empty"))

	parsed, err := ParseXML([]byte(root.Render()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Name != "a" || parsed.Attr("x") != `quote " amp & lt <` {
		t.Errorf("root = %+v", parsed)
	}
	pb, ok := parsed.Child("b")
	if !ok || pb.Text != "text with <angle> & amp" {
		t.Errorf("child b = %+v", pb)
	}
	if _, ok := parsed.Child("empty"); !ok {
		t.Error("child empty missing")
	}
	if _, ok := parsed.Child("nope"); ok {
		t.Error("unexpected child found")
	}
}

func TestParseXMLErrors(t *testing.T) {
	for _, bad := range []string{"", "<a>", "<a></b>", "text only", "<a/><b/>"} {
		if _, err := ParseXML([]byte(bad)); !errors.Is(err, ErrMalformedXML) {
			t.Errorf("ParseXML(%q) = %v, want ErrMalformedXML", bad, err)
		}
	}
}

func TestEncodeDecodeScalars(t *testing.T) {
	msg := dyn.MustStructOf("Message",
		dyn.StructField{Name: "from", Type: dyn.StringT},
		dyn.StructField{Name: "id", Type: dyn.Int64T})
	vals := []dyn.Value{
		dyn.BoolValue(true),
		dyn.BoolValue(false),
		dyn.CharValue('Z'),
		dyn.CharValue(' '), // whitespace char must survive
		dyn.Int32Value(-5),
		dyn.Int64Value(1 << 60),
		dyn.Float32Value(1.25),
		dyn.Float64Value(-math.Pi),
		dyn.StringValue("hello & <world>"),
		dyn.StringValue(""),
		dyn.StringValue("  leading/trailing  "),
		dyn.MustSequenceValue(dyn.Int32T, dyn.Int32Value(1), dyn.Int32Value(2)),
		dyn.MustSequenceValue(dyn.Int32T),
		dyn.MustStructValue(msg, dyn.StringValue("alice"), dyn.Int64Value(7)),
	}
	for _, v := range vals {
		n, err := EncodeValue("p", v)
		if err != nil {
			t.Fatalf("EncodeValue(%v): %v", v, err)
		}
		// Round-trip through actual XML text.
		parsed, err := ParseXML([]byte(n.Render()))
		if err != nil {
			t.Fatalf("reparse %v: %v", v, err)
		}
		got, err := DecodeValue(parsed, v.Type())
		if err != nil {
			t.Fatalf("DecodeValue(%v): %v", v, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestSpecialFloats(t *testing.T) {
	for _, v := range []dyn.Value{
		dyn.Float64Value(math.Inf(1)),
		dyn.Float64Value(math.Inf(-1)),
		dyn.Float32Value(float32(math.Inf(1))),
	} {
		n, err := EncodeValue("f", v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeValue(n, v.Type())
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(v) {
			t.Errorf("special float %v -> %v", v, got)
		}
	}
	// NaN: equality is identity-based here, check via IsNaN.
	n, err := EncodeValue("f", dyn.Float64Value(math.NaN()))
	if err != nil {
		t.Fatal(err)
	}
	if n.Text != "NaN" {
		t.Errorf("NaN text = %q", n.Text)
	}
	got, err := DecodeValue(n, dyn.Float64T)
	if err != nil || !math.IsNaN(got.Float64()) {
		t.Errorf("NaN decode = %v, %v", got, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := func(text string, typ *dyn.Type) {
		t.Helper()
		n := NewNode("p")
		n.Text = text
		if _, err := DecodeValue(n, typ); err == nil {
			t.Errorf("DecodeValue(%q as %v) should fail", text, typ)
		}
	}
	bad("maybe", dyn.Boolean)
	bad("", dyn.Char)
	bad("ab", dyn.Char)
	bad("12.5", dyn.Int32T)
	bad("99999999999999999999", dyn.Int64T)
	bad("abc", dyn.Float64T)
	bad("9e999", dyn.Float32T) // overflow

	// Struct missing a field.
	st := dyn.MustStructOf("S", dyn.StructField{Name: "a", Type: dyn.Int32T})
	n := NewNode("p")
	if _, err := DecodeValue(n, st); err == nil {
		t.Error("missing struct field should fail")
	}
	// Sequence with a bad element.
	seq := NewNode("p")
	child := seq.Append(NewNode("item"))
	child.Text = "notanint"
	if _, err := DecodeValue(seq, dyn.SequenceOf(dyn.Int32T)); err == nil {
		t.Error("bad sequence element should fail")
	}
}

func TestEncodeWideCharOK(t *testing.T) {
	// Unlike CDR, the XML encoding handles any rune.
	v := dyn.CharValue('λ')
	n, err := EncodeValue("c", v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeValue(n, dyn.Char)
	if err != nil || got.Char() != 'λ' {
		t.Errorf("wide char: %v, %v", got, err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	xmlText, err := BuildRequest("urn:Calc", "add", []NamedValue{
		{Name: "a", Value: dyn.Int32Value(2)},
		{Name: "b", Value: dyn.Int32Value(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := ParseRequest([]byte(xmlText))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "add" || len(req.Params) != 2 {
		t.Fatalf("request = %+v", req)
	}
	a, err := DecodeValue(req.Params[0], dyn.Int32T)
	if err != nil || a.Int32() != 2 {
		t.Errorf("param a = %v, %v", a, err)
	}
}

func TestParseRequestErrors(t *testing.T) {
	cases := []string{
		`<notenvelope/>`,
		`<Envelope xmlns="x"/>`,
		`<Envelope xmlns="x"><Body/></Envelope>`,
		`<Envelope xmlns="x"><Body><a/><b/></Body></Envelope>`,
		`garbage`,
	}
	for _, c := range cases {
		if _, err := ParseRequest([]byte(c)); err == nil {
			t.Errorf("ParseRequest(%q) should fail", c)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	xmlText, err := BuildResponse("urn:Calc", "add", dyn.Int32Value(5))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseResponse([]byte(xmlText))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fault != nil || resp.Method != "add" || resp.Return == nil {
		t.Fatalf("response = %+v", resp)
	}
	v, err := DecodeValue(resp.Return, dyn.Int32T)
	if err != nil || v.Int32() != 5 {
		t.Errorf("return = %v, %v", v, err)
	}
}

func TestVoidResponse(t *testing.T) {
	xmlText, err := BuildResponse("urn:Calc", "reset", dyn.VoidValue())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseResponse([]byte(xmlText))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Return != nil || resp.Method != "reset" {
		t.Errorf("void response = %+v", resp)
	}
}

func TestFaultRoundTrip(t *testing.T) {
	f := &Fault{Code: "soap:Server", String: FaultNonExistentMethod, Detail: "method add is gone"}
	resp, err := ParseResponse([]byte(BuildFault(f)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fault == nil {
		t.Fatal("fault not parsed")
	}
	if resp.Fault.Code != f.Code || resp.Fault.String != f.String || resp.Fault.Detail != f.Detail {
		t.Errorf("fault = %+v", resp.Fault)
	}
	if !IsNonExistentMethod(resp.Fault) {
		t.Error("IsNonExistentMethod should be true")
	}
	if IsNonExistentMethod(&Fault{String: FaultServerNotInitialized}) {
		t.Error("other faults should not match")
	}
	if IsNonExistentMethod(errors.New("x")) {
		t.Error("non-fault errors should not match")
	}
	if resp.Fault.Error() == "" {
		t.Error("Error() empty")
	}
}

func TestParseResponseErrors(t *testing.T) {
	cases := []string{
		`<Envelope xmlns="x"><Body><notareply/></Body></Envelope>`,
		`<Envelope xmlns="x"><Body/></Envelope>`,
		`<wrong/>`,
		`junk`,
	}
	for _, c := range cases {
		if _, err := ParseResponse([]byte(c)); err == nil {
			t.Errorf("ParseResponse(%q) should fail", c)
		}
	}
}

// randomSOAPValue builds a random value; chars beyond Latin-1 are fine for
// the XML encoding, but XML cannot carry most control characters, so
// strings and chars are drawn from printable runes.
func randomSOAPValue(r *rand.Rand, depth int) dyn.Value {
	k := r.Intn(9)
	if depth <= 0 && k >= 7 {
		k = r.Intn(7)
	}
	switch k {
	case 0:
		return dyn.BoolValue(r.Intn(2) == 0)
	case 1:
		return dyn.CharValue(rune(' ' + r.Intn(94)))
	case 2:
		return dyn.Int32Value(int32(r.Uint32()))
	case 3:
		return dyn.Int64Value(int64(r.Uint64()))
	case 4:
		return dyn.Float32Value(float32(r.NormFloat64()))
	case 5:
		return dyn.Float64Value(r.NormFloat64())
	case 6:
		n := r.Intn(16)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteRune(rune(' ' + r.Intn(94)))
		}
		return dyn.StringValue(sb.String())
	case 7:
		elem := randomSOAPValue(r, depth-1)
		n := r.Intn(3)
		vals := make([]dyn.Value, 0, n)
		for i := 0; i < n; i++ {
			vals = append(vals, xmlSafeZero(elem.Type()))
		}
		return dyn.MustSequenceValue(elem.Type(), vals...)
	default:
		nf := 1 + r.Intn(3)
		fields := make([]dyn.StructField, nf)
		vals := make([]dyn.Value, nf)
		for i := 0; i < nf; i++ {
			fv := randomSOAPValue(r, depth-1)
			fields[i] = dyn.StructField{Name: string(rune('a' + i)), Type: fv.Type()}
			vals[i] = fv
		}
		st := dyn.MustStructOf("R", fields...)
		return dyn.MustStructValue(st, vals...)
	}
}

// xmlSafeZero is like dyn.Zero but avoids the NUL char, which XML cannot
// carry.
func xmlSafeZero(t *dyn.Type) dyn.Value {
	switch t.Kind() {
	case dyn.KindChar:
		return dyn.CharValue('0')
	case dyn.KindSequence:
		return dyn.Zero(t)
	case dyn.KindStruct:
		fields := t.Fields()
		vals := make([]dyn.Value, len(fields))
		for i, f := range fields {
			vals[i] = xmlSafeZero(f.Type)
		}
		return dyn.MustStructValue(t, vals...)
	default:
		return dyn.Zero(t)
	}
}

// Property: encode → render → parse → decode is identity.
func TestValueXMLRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(randomSOAPValue(r, 2))
		},
	}
	f := func(v dyn.Value) bool {
		n, err := EncodeValue("p", v)
		if err != nil {
			return false
		}
		parsed, err := ParseXML([]byte(n.Render()))
		if err != nil {
			return false
		}
		got, err := DecodeValue(parsed, v.Type())
		if err != nil {
			return false
		}
		return got.Equal(v)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
