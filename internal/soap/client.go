package soap

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"livedev/internal/dyn"
)

// Client posts SOAP requests to one endpoint URL — the transport half of a
// SOAP client stub (paper Figure 1, steps 2 and 3).
type Client struct {
	// Endpoint is the SOAP endpoint URL.
	Endpoint string
	// ServiceNS is the XML namespace RPC calls are made in.
	ServiceNS string
	// HTTPClient is used for transport; a default client with a timeout
	// is used when nil.
	HTTPClient *http.Client
}

// defaultTransport is shared by every Client without an explicit
// HTTPClient: a clone of http.DefaultTransport (keeping its proxy
// environment support and dial/TLS timeouts) with a deep idle pool, so
// repeated RPCs to the same endpoint reuse TCP connections instead of
// re-dialling — the transport half of the invocation hot path.
var defaultTransport = func() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 32
	return t
}()

var defaultHTTPClient = &http.Client{Timeout: 30 * time.Second, Transport: defaultTransport}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

// bodyPool holds reusable buffers for HTTP bodies (responses here, requests
// on the server side): reading a body per call was the largest remaining
// per-call allocation after the envelope work moved to pooled buffers.
var bodyPool = sync.Pool{
	New: func() any { return bytes.NewBuffer(make([]byte, 0, 4<<10)) },
}

// GetBodyBuffer returns a pooled buffer for reading an HTTP body into.
func GetBodyBuffer() *bytes.Buffer {
	b := bodyPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// PutBodyBuffer recycles a buffer obtained from GetBodyBuffer. The caller
// must be done with every sub-slice of its contents: decoded dyn values are
// copies and safe, parsed xmltree nodes are not.
func PutBodyBuffer(b *bytes.Buffer) {
	// Oversized one-off bodies would pin their memory in the pool forever.
	if b.Cap() > 1<<20 {
		return
	}
	bodyPool.Put(b)
}

// Call is CallContext with a background context.
//
// Deprecated: use CallContext so the round-trip can be cancelled.
func (c *Client) Call(method string, params []NamedValue, resultType *dyn.Type) (dyn.Value, error) {
	return c.CallContext(context.Background(), method, params, resultType)
}

// CallContext performs one RPC: it builds the request envelope, POSTs it,
// parses the response, and decodes the result against resultType. SOAP
// faults are returned as *Fault errors. Cancelling ctx aborts the in-flight
// HTTP round-trip and returns an error wrapping ctx.Err().
func (c *Client) CallContext(ctx context.Context, method string, params []NamedValue, resultType *dyn.Type) (dyn.Value, error) {
	reqXML, err := BuildRequest(c.ServiceNS, method, params)
	if err != nil {
		return dyn.Value{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Endpoint, strings.NewReader(reqXML))
	if err != nil {
		return dyn.Value{}, fmt.Errorf("soap: building HTTP request: %w", err)
	}
	req.Header.Set("Content-Type", `text/xml; charset="utf-8"`)
	req.Header.Set("SOAPAction", fmt.Sprintf("%q", c.ServiceNS+"#"+method))

	resp, err := c.httpClient().Do(req)
	if err != nil {
		return dyn.Value{}, fmt.Errorf("soap: posting to %s: %w", c.Endpoint, err)
	}
	defer func() { _ = resp.Body.Close() }()
	buf := GetBodyBuffer()
	defer PutBodyBuffer(buf)
	if _, err := buf.ReadFrom(io.LimitReader(resp.Body, 16<<20)); err != nil {
		return dyn.Value{}, fmt.Errorf("soap: reading response: %w", err)
	}
	// SOAP 1.1 faults come back with HTTP 500; parse the envelope either way.
	// Everything extracted below (the decoded result value, fault strings)
	// is copied out of the pooled buffer before it is recycled.
	parsed, err := ParseResponse(buf.Bytes())
	if err != nil {
		if resp.StatusCode != http.StatusOK {
			return dyn.Value{}, fmt.Errorf("soap: HTTP %d from %s", resp.StatusCode, c.Endpoint)
		}
		return dyn.Value{}, err
	}
	if parsed.Fault != nil {
		return dyn.Value{}, parsed.Fault
	}
	if resultType == nil || resultType.Kind() == dyn.KindVoid {
		return dyn.VoidValue(), nil
	}
	if parsed.Return == nil {
		return dyn.Value{}, fmt.Errorf("soap: response for %s carries no return element", method)
	}
	return DecodeValue(parsed.Return, resultType)
}
