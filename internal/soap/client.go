package soap

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"livedev/internal/dyn"
)

// Client posts SOAP requests to one endpoint URL — the transport half of a
// SOAP client stub (paper Figure 1, steps 2 and 3).
type Client struct {
	// Endpoint is the SOAP endpoint URL.
	Endpoint string
	// ServiceNS is the XML namespace RPC calls are made in.
	ServiceNS string
	// HTTPClient is used for transport; a default client with a timeout
	// is used when nil.
	HTTPClient *http.Client
}

// defaultTransport is shared by every Client without an explicit
// HTTPClient: a clone of http.DefaultTransport (keeping its proxy
// environment support and dial/TLS timeouts) with a deep idle pool, so
// repeated RPCs to the same endpoint reuse TCP connections instead of
// re-dialling — the transport half of the invocation hot path.
var defaultTransport = func() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 32
	return t
}()

var defaultHTTPClient = &http.Client{Timeout: 30 * time.Second, Transport: defaultTransport}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

// Call performs one RPC: it builds the request envelope, POSTs it, parses
// the response, and decodes the result against resultType. SOAP faults are
// returned as *Fault errors.
func (c *Client) Call(method string, params []NamedValue, resultType *dyn.Type) (dyn.Value, error) {
	reqXML, err := BuildRequest(c.ServiceNS, method, params)
	if err != nil {
		return dyn.Value{}, err
	}
	req, err := http.NewRequest(http.MethodPost, c.Endpoint, strings.NewReader(reqXML))
	if err != nil {
		return dyn.Value{}, fmt.Errorf("soap: building HTTP request: %w", err)
	}
	req.Header.Set("Content-Type", `text/xml; charset="utf-8"`)
	req.Header.Set("SOAPAction", fmt.Sprintf("%q", c.ServiceNS+"#"+method))

	resp, err := c.httpClient().Do(req)
	if err != nil {
		return dyn.Value{}, fmt.Errorf("soap: posting to %s: %w", c.Endpoint, err)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return dyn.Value{}, fmt.Errorf("soap: reading response: %w", err)
	}
	// SOAP 1.1 faults come back with HTTP 500; parse the envelope either way.
	parsed, err := ParseResponse(data)
	if err != nil {
		if resp.StatusCode != http.StatusOK {
			return dyn.Value{}, fmt.Errorf("soap: HTTP %d from %s", resp.StatusCode, c.Endpoint)
		}
		return dyn.Value{}, err
	}
	if parsed.Fault != nil {
		return dyn.Value{}, parsed.Fault
	}
	if resultType == nil || resultType.Kind() == dyn.KindVoid {
		return dyn.VoidValue(), nil
	}
	if parsed.Return == nil {
		return dyn.Value{}, fmt.Errorf("soap: response for %s carries no return element", method)
	}
	return DecodeValue(parsed.Return, resultType)
}
