package soap

import (
	"testing"

	"livedev/internal/dyn"
)

// Allocation budgets for the SOAP envelope hot path. The skeleton cache
// plus pooled render buffers put BuildRequest at one allocation (the
// returned string); the purpose-built parser holds a full
// request-parse/response-parse to a small, pinned number of objects
// (nodes, name/text strings). Budgets have a little headroom so unrelated
// runtime changes don't flake, but a reintroduced per-call tree build or a
// return to encoding/xml token streaming fails loudly.

func TestAllocs_BuildRequest(t *testing.T) {
	params := []NamedValue{{Name: "s", Value: dyn.StringValue("allocation-budget-payload-0123456789")}}
	// Warm the skeleton cache and render pool.
	if _, err := BuildRequest("urn:Alloc", "echo", params); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := BuildRequest("urn:Alloc", "echo", params); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("BuildRequest allocates %.1f objects/op, budget is 2", allocs)
	}
}

func TestAllocs_ParseResponseRoundTrip(t *testing.T) {
	env, err := BuildResponse("urn:Alloc", "echo", dyn.StringValue("allocation-budget-payload-0123456789"))
	if err != nil {
		t.Fatal(err)
	}
	raw := []byte(env)
	allocs := testing.AllocsPerRun(200, func() {
		resp, err := ParseResponse(raw)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeValue(resp.Return, dyn.StringT); err != nil {
			t.Fatal(err)
		}
	})
	// Parsed: 4 nodes + children slices + attr maps + uninterned
	// name/attr/text strings. 25 is roughly half the encoding/xml cost.
	if allocs > 25 {
		t.Errorf("ParseResponse+DecodeValue allocates %.1f objects/op, budget is 25", allocs)
	}
}

func TestAllocs_BuildResponse(t *testing.T) {
	v := dyn.StringValue("allocation-budget-payload-0123456789")
	if _, err := BuildResponse("urn:Alloc", "echo", v); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := BuildResponse("urn:Alloc", "echo", v); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("BuildResponse allocates %.1f objects/op, budget is 2", allocs)
	}
}
