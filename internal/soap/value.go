package soap

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode/utf8"

	"livedev/internal/dyn"
)

// xsdType returns the xsi:type attribute value for a dyn type, for
// interoperability with type-annotating SOAP stacks.
func xsdType(t *dyn.Type) string {
	switch t.Kind() {
	case dyn.KindBoolean:
		return "xsd:boolean"
	case dyn.KindChar:
		return "xsd:string"
	case dyn.KindInt32:
		return "xsd:int"
	case dyn.KindInt64:
		return "xsd:long"
	case dyn.KindFloat32:
		return "xsd:float"
	case dyn.KindFloat64:
		return "xsd:double"
	case dyn.KindString:
		return "xsd:string"
	case dyn.KindSequence:
		return "soapenc:Array"
	case dyn.KindStruct:
		return "tns:" + t.Name()
	default:
		return "xsd:anyType"
	}
}

// EncodeValue builds the element <name> carrying v.
func EncodeValue(name string, v dyn.Value) (*Node, error) {
	n := NewNode(name)
	t := v.Type()
	if t.Kind() != dyn.KindVoid {
		n.Attrs["xsi:type"] = xsdType(t)
	}
	switch t.Kind() {
	case dyn.KindVoid:
		// empty element
	case dyn.KindBoolean:
		n.Text = strconv.FormatBool(v.Bool())
	case dyn.KindChar:
		n.Text = string(v.Char())
	case dyn.KindInt32:
		n.Text = strconv.FormatInt(int64(v.Int32()), 10)
	case dyn.KindInt64:
		n.Text = strconv.FormatInt(v.Int64(), 10)
	case dyn.KindFloat32:
		n.Text = formatXSDFloat(float64(v.Float32()), 32)
	case dyn.KindFloat64:
		n.Text = formatXSDFloat(v.Float64(), 64)
	case dyn.KindString:
		n.Text = v.Str()
	case dyn.KindSequence:
		for i := 0; i < v.Len(); i++ {
			item, err := EncodeValue("item", v.Index(i))
			if err != nil {
				return nil, err
			}
			n.Append(item)
		}
	case dyn.KindStruct:
		for i := 0; i < v.Len(); i++ {
			f := t.Field(i)
			fn, err := EncodeValue(f.Name, v.Index(i))
			if err != nil {
				return nil, fmt.Errorf("struct %s field %s: %w", t.Name(), f.Name, err)
			}
			n.Append(fn)
		}
	default:
		return nil, fmt.Errorf("soap: cannot encode kind %s", t.Kind())
	}
	return n, nil
}

// appendValue renders the element <name> carrying v directly into buf —
// the streaming twin of EncodeValue + Render used on the envelope hot path.
// Its output is byte-identical to rendering the EncodeValue node tree.
func appendValue(buf []byte, name string, v dyn.Value) ([]byte, error) {
	t := v.Type()
	if t.Kind() == dyn.KindVoid {
		buf = append(buf, '<')
		buf = append(buf, name...)
		return append(buf, '/', '>'), nil
	}
	buf = append(buf, '<')
	buf = append(buf, name...)
	buf = append(buf, ` xsi:type="`...)
	buf = append(buf, xsdType(t)...)
	buf = append(buf, '"')

	closeElem := func(buf []byte) []byte {
		buf = append(buf, '<', '/')
		buf = append(buf, name...)
		return append(buf, '>')
	}
	text := func(buf []byte, s string) []byte {
		if s == "" {
			return append(buf, '/', '>')
		}
		buf = append(buf, '>')
		buf = appendEscaped(buf, s)
		return closeElem(buf)
	}

	switch t.Kind() {
	case dyn.KindBoolean:
		buf = append(buf, '>')
		buf = strconv.AppendBool(buf, v.Bool())
		return closeElem(buf), nil
	case dyn.KindChar:
		var tmp [utf8.UTFMax]byte
		n := utf8.EncodeRune(tmp[:], v.Char())
		buf = append(buf, '>')
		buf = appendEscaped(buf, string(tmp[:n]))
		return closeElem(buf), nil
	case dyn.KindInt32:
		buf = append(buf, '>')
		buf = strconv.AppendInt(buf, int64(v.Int32()), 10)
		return closeElem(buf), nil
	case dyn.KindInt64:
		buf = append(buf, '>')
		buf = strconv.AppendInt(buf, v.Int64(), 10)
		return closeElem(buf), nil
	case dyn.KindFloat32:
		return text(buf, formatXSDFloat(float64(v.Float32()), 32)), nil
	case dyn.KindFloat64:
		return text(buf, formatXSDFloat(v.Float64(), 64)), nil
	case dyn.KindString:
		return text(buf, v.Str()), nil
	case dyn.KindSequence:
		if v.Len() == 0 {
			return append(buf, '/', '>'), nil
		}
		buf = append(buf, '>')
		var err error
		for i := 0; i < v.Len(); i++ {
			if buf, err = appendValue(buf, "item", v.Index(i)); err != nil {
				return buf, err
			}
		}
		return closeElem(buf), nil
	case dyn.KindStruct:
		if v.Len() == 0 {
			return append(buf, '/', '>'), nil
		}
		buf = append(buf, '>')
		var err error
		for i := 0; i < v.Len(); i++ {
			f := t.Field(i)
			if buf, err = appendValue(buf, f.Name, v.Index(i)); err != nil {
				return buf, fmt.Errorf("struct %s field %s: %w", t.Name(), f.Name, err)
			}
		}
		return closeElem(buf), nil
	default:
		return buf, fmt.Errorf("soap: cannot encode kind %s", t.Kind())
	}
}

// DecodeValue reads a value of the expected type from an element produced
// by EncodeValue (or an interoperable peer). The expected type comes from
// the interface signature, per SOAP RPC/encoded practice.
func DecodeValue(n *Node, t *dyn.Type) (dyn.Value, error) {
	switch t.Kind() {
	case dyn.KindVoid:
		return dyn.VoidValue(), nil
	case dyn.KindBoolean:
		switch strings.TrimSpace(n.Text) {
		case "true", "1":
			return dyn.BoolValue(true), nil
		case "false", "0":
			return dyn.BoolValue(false), nil
		default:
			return dyn.Value{}, fmt.Errorf("soap: invalid boolean %q", n.Text)
		}
	case dyn.KindChar:
		runes := []rune(n.Text)
		if len(runes) != 1 {
			return dyn.Value{}, fmt.Errorf("soap: char element must hold exactly one character, got %q", n.Text)
		}
		return dyn.CharValue(runes[0]), nil
	case dyn.KindInt32:
		i, err := strconv.ParseInt(strings.TrimSpace(n.Text), 10, 32)
		if err != nil {
			return dyn.Value{}, fmt.Errorf("soap: invalid int %q", n.Text)
		}
		return dyn.Int32Value(int32(i)), nil
	case dyn.KindInt64:
		i, err := strconv.ParseInt(strings.TrimSpace(n.Text), 10, 64)
		if err != nil {
			return dyn.Value{}, fmt.Errorf("soap: invalid long %q", n.Text)
		}
		return dyn.Int64Value(i), nil
	case dyn.KindFloat32:
		f, err := parseXSDFloat(strings.TrimSpace(n.Text), 32)
		if err != nil {
			return dyn.Value{}, err
		}
		return dyn.Float32Value(float32(f)), nil
	case dyn.KindFloat64:
		f, err := parseXSDFloat(strings.TrimSpace(n.Text), 64)
		if err != nil {
			return dyn.Value{}, err
		}
		return dyn.Float64Value(f), nil
	case dyn.KindString:
		return dyn.StringValue(n.Text), nil
	case dyn.KindSequence:
		elems := make([]dyn.Value, 0, len(n.Children))
		for i, c := range n.Children {
			ev, err := DecodeValue(c, t.Elem())
			if err != nil {
				return dyn.Value{}, fmt.Errorf("soap: sequence element %d: %w", i, err)
			}
			elems = append(elems, ev)
		}
		return dyn.SequenceValue(t.Elem(), elems...)
	case dyn.KindStruct:
		fields := t.Fields()
		vals := make([]dyn.Value, len(fields))
		for i, f := range fields {
			c, ok := n.Child(f.Name)
			if !ok {
				return dyn.Value{}, fmt.Errorf("soap: struct %s missing field %s", t.Name(), f.Name)
			}
			fv, err := DecodeValue(c, f.Type)
			if err != nil {
				return dyn.Value{}, fmt.Errorf("soap: struct %s field %s: %w", t.Name(), f.Name, err)
			}
			vals[i] = fv
		}
		return dyn.StructValue(t, vals...)
	default:
		return dyn.Value{}, fmt.Errorf("soap: cannot decode kind %s", t.Kind())
	}
}

// formatXSDFloat renders a float using XSD lexical forms for the special
// values (INF, -INF, NaN).
func formatXSDFloat(f float64, bits int) string {
	switch {
	case math.IsInf(f, 1):
		return "INF"
	case math.IsInf(f, -1):
		return "-INF"
	case math.IsNaN(f):
		return "NaN"
	default:
		return strconv.FormatFloat(f, 'g', -1, bits)
	}
}

func parseXSDFloat(s string, bits int) (float64, error) {
	switch s {
	case "INF", "+INF":
		return math.Inf(1), nil
	case "-INF":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	f, err := strconv.ParseFloat(s, bits)
	if err != nil {
		return 0, fmt.Errorf("soap: invalid float %q", s)
	}
	return f, nil
}
