package soap

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"livedev/internal/dyn"
)

// echoServer answers SOAP requests per the handler function.
func soapTestServer(t *testing.T, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return srv
}

func TestClientCallSuccess(t *testing.T) {
	srv := soapTestServer(t, func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		req, err := ParseRequest(body)
		if err != nil {
			t.Errorf("server got unparseable request: %v", err)
		}
		if req.Method != "greet" {
			t.Errorf("method = %q", req.Method)
		}
		if got := r.Header.Get("SOAPAction"); !strings.Contains(got, "greet") {
			t.Errorf("SOAPAction = %q", got)
		}
		env, _ := BuildResponse("urn:S", "greet", dyn.StringValue("hello"))
		_, _ = io.WriteString(w, env)
	})
	c := &Client{Endpoint: srv.URL, ServiceNS: "urn:S"}
	got, err := c.Call("greet", nil, dyn.StringT)
	if err != nil || got.Str() != "hello" {
		t.Errorf("Call = %v, %v", got, err)
	}
}

func TestClientCallVoidResult(t *testing.T) {
	srv := soapTestServer(t, func(w http.ResponseWriter, _ *http.Request) {
		env, _ := BuildResponse("urn:S", "reset", dyn.VoidValue())
		_, _ = io.WriteString(w, env)
	})
	c := &Client{Endpoint: srv.URL, ServiceNS: "urn:S"}
	got, err := c.Call("reset", nil, dyn.Void)
	if err != nil || !got.IsVoid() {
		t.Errorf("void call = %v, %v", got, err)
	}
	// nil result type behaves like void.
	if _, err := c.Call("reset", nil, nil); err != nil {
		t.Errorf("nil result type: %v", err)
	}
}

func TestClientCallFaultWithHTTP500(t *testing.T) {
	srv := soapTestServer(t, func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = io.WriteString(w, BuildFault(&Fault{Code: "soap:Server", String: FaultNonExistentMethod}))
	})
	c := &Client{Endpoint: srv.URL, ServiceNS: "urn:S"}
	_, err := c.Call("x", nil, dyn.Int32T)
	if !IsNonExistentMethod(err) {
		t.Errorf("fault = %v", err)
	}
}

func TestClientCallHTTPErrorWithoutEnvelope(t *testing.T) {
	srv := soapTestServer(t, func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "gateway exploded", http.StatusBadGateway)
	})
	c := &Client{Endpoint: srv.URL, ServiceNS: "urn:S"}
	_, err := c.Call("x", nil, dyn.Int32T)
	if err == nil || !strings.Contains(err.Error(), "HTTP 502") {
		t.Errorf("HTTP error = %v", err)
	}
}

func TestClientCallGarbage200(t *testing.T) {
	srv := soapTestServer(t, func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "this is not xml")
	})
	c := &Client{Endpoint: srv.URL, ServiceNS: "urn:S"}
	if _, err := c.Call("x", nil, dyn.Int32T); err == nil {
		t.Error("garbage 200 should fail")
	}
}

func TestClientCallMissingReturn(t *testing.T) {
	srv := soapTestServer(t, func(w http.ResponseWriter, _ *http.Request) {
		// A response claiming success but with no return element, for a
		// non-void result type.
		env, _ := BuildResponse("urn:S", "x", dyn.VoidValue())
		_, _ = io.WriteString(w, env)
	})
	c := &Client{Endpoint: srv.URL, ServiceNS: "urn:S"}
	if _, err := c.Call("x", nil, dyn.Int32T); err == nil {
		t.Error("missing return element should fail")
	}
}

func TestClientUnreachable(t *testing.T) {
	c := &Client{Endpoint: "http://127.0.0.1:1/", ServiceNS: "urn:S"}
	if _, err := c.Call("x", nil, dyn.Int32T); err == nil {
		t.Error("unreachable endpoint should fail")
	}
}

func TestClientBadEndpointURL(t *testing.T) {
	c := &Client{Endpoint: "://not-a-url", ServiceNS: "urn:S"}
	if _, err := c.Call("x", nil, dyn.Int32T); err == nil {
		t.Error("invalid URL should fail")
	}
}

func TestXSDTypeNames(t *testing.T) {
	msg := dyn.MustStructOf("M", dyn.StructField{Name: "a", Type: dyn.Int32T})
	cases := map[*dyn.Type]string{
		dyn.Boolean:         "xsd:boolean",
		dyn.Char:            "xsd:string",
		dyn.Int32T:          "xsd:int",
		dyn.Int64T:          "xsd:long",
		dyn.Float32T:        "xsd:float",
		dyn.Float64T:        "xsd:double",
		dyn.StringT:         "xsd:string",
		dyn.SequenceOf(msg): "soapenc:Array",
		msg:                 "tns:M",
		dyn.Void:            "xsd:anyType",
	}
	for typ, want := range cases {
		if got := xsdType(typ); got != want {
			t.Errorf("xsdType(%v) = %q, want %q", typ, got, want)
		}
	}
}
