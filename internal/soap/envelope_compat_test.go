package soap

import (
	"testing"

	"livedev/internal/dyn"
)

// nodeEnvelope reconstructs the pre-skeleton envelope rendering: an
// explicit Node tree around the body content. The cached-skeleton fast path
// must stay byte-identical to it.
func nodeEnvelope(body ...*Node) *Node {
	env := NewNode("soapenv:Envelope")
	env.Attrs["xmlns:soapenv"] = NSEnvelope
	env.Attrs["xmlns:xsi"] = NSXSI
	env.Attrs["xmlns:xsd"] = NSXSD
	env.Attrs["xmlns:soapenc"] = NSEncoding
	b := env.Append(NewNode("soapenv:Body"))
	for _, n := range body {
		b.Append(n)
	}
	return env
}

func TestBuildRequestMatchesNodeRender(t *testing.T) {
	seq := dyn.MustSequenceValue(dyn.Int32T, dyn.Int32Value(1), dyn.Int32Value(2))
	st := dyn.MustStructOf("Msg",
		dyn.StructField{Name: "from", Type: dyn.StringT},
		dyn.StructField{Name: "id", Type: dyn.Int64T})
	cases := []struct {
		ns, method string
		params     []NamedValue
	}{
		{"urn:Calc", "add", []NamedValue{
			{Name: "a", Value: dyn.Int32Value(2)},
			{Name: "b", Value: dyn.Int32Value(-3)},
		}},
		{"urn:Calc", "noArgs", nil},
		{"urn:Esc&aped", "tricky", []NamedValue{
			{Name: "s", Value: dyn.StringValue(`needs <escaping> & "quotes" 'too'`)},
			{Name: "empty", Value: dyn.StringValue("")},
			{Name: "c", Value: dyn.CharValue('λ')},
			{Name: "f", Value: dyn.Float64Value(1.25)},
			{Name: "t", Value: dyn.BoolValue(true)},
			{Name: "seq", Value: seq},
			{Name: "emptySeq", Value: dyn.MustSequenceValue(dyn.Int32T)},
			{Name: "st", Value: dyn.MustStructValue(st, dyn.StringValue("alice"), dyn.Int64Value(7))},
		}},
	}
	for _, c := range cases {
		got, err := BuildRequest(c.ns, c.method, c.params)
		if err != nil {
			t.Fatalf("BuildRequest(%s.%s): %v", c.ns, c.method, err)
		}
		call := NewNode("m:" + c.method)
		call.Attrs["xmlns:m"] = c.ns
		for _, p := range c.params {
			pn, err := EncodeValue(p.Name, p.Value)
			if err != nil {
				t.Fatal(err)
			}
			call.Append(pn)
		}
		want := nodeEnvelope(call).Render()
		if got != want {
			t.Errorf("BuildRequest(%s.%s) diverged from node render:\n got: %s\nwant: %s", c.ns, c.method, got, want)
		}
	}
}

func TestBuildResponseMatchesNodeRender(t *testing.T) {
	for _, c := range []struct {
		method string
		result dyn.Value
	}{
		{"add", dyn.Int32Value(5)},
		{"name", dyn.StringValue("")},
		{"reset", dyn.VoidValue()},
	} {
		got, err := BuildResponse("urn:Calc", c.method, c.result)
		if err != nil {
			t.Fatal(err)
		}
		resp := NewNode("m:" + c.method + "Response")
		resp.Attrs["xmlns:m"] = "urn:Calc"
		if c.result.Type().Kind() != dyn.KindVoid {
			rn, err := EncodeValue("return", c.result)
			if err != nil {
				t.Fatal(err)
			}
			resp.Append(rn)
		}
		want := nodeEnvelope(resp).Render()
		if got != want {
			t.Errorf("BuildResponse(%s) diverged:\n got: %s\nwant: %s", c.method, got, want)
		}
	}
}

func TestBuildFaultMatchesNodeRender(t *testing.T) {
	f := &Fault{Code: "soap:Server", String: FaultNonExistentMethod, Detail: "method x & <y>"}
	got := BuildFault(f)
	fn := NewNode("soapenv:Fault")
	fn.Append(NewNode("faultcode")).Text = f.Code
	fn.Append(NewNode("faultstring")).Text = f.String
	fn.Append(NewNode("detail")).Text = f.Detail
	want := nodeEnvelope(fn).Render()
	if got != want {
		t.Errorf("BuildFault diverged:\n got: %s\nwant: %s", got, want)
	}
}
