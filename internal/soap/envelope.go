package soap

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"livedev/internal/dyn"
)

// SOAP 1.1 namespace URIs, emitted on envelopes for interoperability.
const (
	NSEnvelope = "http://schemas.xmlsoap.org/soap/envelope/"
	NSXSI      = "http://www.w3.org/2001/XMLSchema-instance"
	NSXSD      = "http://www.w3.org/2001/XMLSchema"
	NSEncoding = "http://schemas.xmlsoap.org/soap/encoding/"
)

// The fault strings the paper's SOAP Call Handler sends (Section 5.1.3).
const (
	FaultServerNotInitialized = "Server not initialized"
	FaultMalformedRequest     = "Malformed SOAP Request"
	FaultNonExistentMethod    = "Non existent Method"
)

// Fault is a SOAP fault, used as the error type for all SOAP-level
// failures a client observes.
type Fault struct {
	Code   string // "soap:Client" or "soap:Server"
	String string // human-readable fault string
	Detail string // optional detail text
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("SOAP fault %s: %s", f.Code, f.String)
}

// IsNonExistentMethod reports whether err is the "Non existent Method"
// fault — the SOAP-side signal of the paper's stale-method condition.
// Receiving it guarantees the server already republished a current WSDL.
func IsNonExistentMethod(err error) bool {
	var f *Fault
	return errors.As(err, &f) && f.String == FaultNonExistentMethod
}

// NamedValue pairs a parameter name with its value for request encoding.
type NamedValue struct {
	Name  string
	Value dyn.Value
}

// envPrefix/envSuffix are the constant SOAP 1.1 envelope framing around the
// body's single call element. The attribute order matches Render's sorted
// attribute output, so cached-skeleton envelopes are byte-identical to
// node-rendered ones.
const (
	envPrefix = `<soapenv:Envelope xmlns:soapenc="` + NSEncoding +
		`" xmlns:soapenv="` + NSEnvelope +
		`" xmlns:xsd="` + NSXSD +
		`" xmlns:xsi="` + NSXSI +
		`"><soapenv:Body>`
	envSuffix = `</soapenv:Body></soapenv:Envelope>`
)

// callSkeleton is the cached constant text around a call (or response)
// element's parameters: everything except the argument nodes themselves.
type callSkeleton struct {
	open      string // `<m:method xmlns:m="NS">`
	selfClose string // `<m:method xmlns:m="NS"/>`
	close     string // `</m:method>`
}

func newCallSkeleton(serviceNS, elem string) *callSkeleton {
	var ns []byte
	ns = appendEscaped(ns, serviceNS)
	head := "<m:" + elem + ` xmlns:m="` + string(ns) + `"`
	return &callSkeleton{
		open:      head + ">",
		selfClose: head + "/>",
		close:     "</m:" + elem + ">",
	}
}

// Skeletons are cached per service namespace, then per method, so the hot
// path reaches its skeleton with two lock-free map loads and no key
// allocation. reqSkeletons caches request call elements, respSkeletons the
// "<method>Response" elements. Each cache is bounded: once the process has
// seen maxCachedSkeletons distinct (namespace, method) pairs, further pairs
// get a freshly built skeleton per call instead of a cache slot, so a
// long-lived server whose classes are renamed indefinitely (or a client
// spraying distinct method names) cannot grow the cache without bound —
// the hot, stable names it keeps are exactly the ones worth caching.
type skeletonCache struct {
	byNS sync.Map // serviceNS → *sync.Map (method → *callSkeleton)
	size atomic.Int64
}

// maxCachedSkeletons bounds the total entries per skeleton cache.
const maxCachedSkeletons = 1024

var (
	reqSkeletons  skeletonCache
	respSkeletons skeletonCache
)

func (c *skeletonCache) get(serviceNS, method, suffix string) *callSkeleton {
	perNSAny, ok := c.byNS.Load(serviceNS)
	if !ok {
		if c.size.Load() >= maxCachedSkeletons {
			return newCallSkeleton(serviceNS, method+suffix)
		}
		perNSAny, _ = c.byNS.LoadOrStore(serviceNS, &sync.Map{})
	}
	perNS := perNSAny.(*sync.Map)
	if sk, ok := perNS.Load(method); ok {
		return sk.(*callSkeleton)
	}
	if c.size.Load() >= maxCachedSkeletons {
		return newCallSkeleton(serviceNS, method+suffix)
	}
	sk, loaded := perNS.LoadOrStore(method, newCallSkeleton(serviceNS, method+suffix))
	if !loaded {
		c.size.Add(1)
	}
	return sk.(*callSkeleton)
}

// BuildRequest renders the SOAP request envelope for an RPC call: the body
// holds one element named after the method, in the service namespace, with
// one child element per parameter. The envelope skeleton is cached per
// (serviceNS, method); only the parameter elements are rendered per call.
func BuildRequest(serviceNS, method string, params []NamedValue) (string, error) {
	sk := reqSkeletons.get(serviceNS, method, "")
	bp := getRenderBuf()
	buf := append((*bp)[:0], envPrefix...)
	var err error
	if len(params) == 0 {
		buf = append(buf, sk.selfClose...)
	} else {
		buf = append(buf, sk.open...)
		for _, p := range params {
			if buf, err = appendValue(buf, p.Name, p.Value); err != nil {
				putRenderBuf(bp, buf)
				return "", fmt.Errorf("soap: encoding parameter %s: %w", p.Name, err)
			}
		}
		buf = append(buf, sk.close...)
	}
	buf = append(buf, envSuffix...)
	s := string(buf)
	putRenderBuf(bp, buf)
	return s, nil
}

// Request is a parsed SOAP request: the method name and the raw parameter
// elements, which the call handler decodes against the live signature.
type Request struct {
	Method string
	Params []*Node
}

// ParseRequest extracts the RPC call from a request envelope.
func ParseRequest(data []byte) (Request, error) {
	root, err := ParseXML(data)
	if err != nil {
		return Request{}, err
	}
	if root.Name != "Envelope" {
		return Request{}, fmt.Errorf("%w: root element is %s, want Envelope", ErrMalformedXML, root.Name)
	}
	body, ok := root.Child("Body")
	if !ok {
		return Request{}, fmt.Errorf("%w: no Body element", ErrMalformedXML)
	}
	if len(body.Children) != 1 {
		return Request{}, fmt.Errorf("%w: Body must contain exactly one call element", ErrMalformedXML)
	}
	call := body.Children[0]
	return Request{Method: call.Name, Params: call.Children}, nil
}

// BuildResponse renders the SOAP response envelope: <methodResponse> with a
// single <return> element (omitted for void results). Like BuildRequest, it
// reuses a cached skeleton and renders only the result element per call.
func BuildResponse(serviceNS, method string, result dyn.Value) (string, error) {
	sk := respSkeletons.get(serviceNS, method, "Response")
	bp := getRenderBuf()
	buf := append((*bp)[:0], envPrefix...)
	if result.Type().Kind() == dyn.KindVoid {
		buf = append(buf, sk.selfClose...)
	} else {
		buf = append(buf, sk.open...)
		var err error
		if buf, err = appendValue(buf, "return", result); err != nil {
			putRenderBuf(bp, buf)
			return "", fmt.Errorf("soap: encoding result: %w", err)
		}
		buf = append(buf, sk.close...)
	}
	buf = append(buf, envSuffix...)
	s := string(buf)
	putRenderBuf(bp, buf)
	return s, nil
}

// BuildFault renders a fault envelope.
func BuildFault(f *Fault) string {
	fn := NewNode("soapenv:Fault")
	code := fn.Append(NewNode("faultcode"))
	code.Text = f.Code
	fs := fn.Append(NewNode("faultstring"))
	fs.Text = f.String
	if f.Detail != "" {
		det := fn.Append(NewNode("detail"))
		det.Text = f.Detail
	}
	bp := getRenderBuf()
	buf := append((*bp)[:0], envPrefix...)
	buf = fn.appendXML(buf)
	buf = append(buf, envSuffix...)
	s := string(buf)
	putRenderBuf(bp, buf)
	return s
}

// Response is a parsed SOAP response: either a result element or a fault.
type Response struct {
	// Method is the responding method name (without the "Response"
	// suffix); empty for faults.
	Method string
	// Return is the result element; nil for void results and faults.
	Return *Node
	// Fault is non-nil if the envelope carried a fault.
	Fault *Fault
}

// ParseResponse extracts the result or fault from a response envelope.
func ParseResponse(data []byte) (Response, error) {
	root, err := ParseXML(data)
	if err != nil {
		return Response{}, err
	}
	if root.Name != "Envelope" {
		return Response{}, fmt.Errorf("%w: root element is %s, want Envelope", ErrMalformedXML, root.Name)
	}
	body, ok := root.Child("Body")
	if !ok {
		return Response{}, fmt.Errorf("%w: no Body element", ErrMalformedXML)
	}
	if len(body.Children) != 1 {
		return Response{}, fmt.Errorf("%w: Body must contain exactly one element", ErrMalformedXML)
	}
	el := body.Children[0]
	if el.Name == "Fault" {
		f := &Fault{}
		if c, ok := el.Child("faultcode"); ok {
			f.Code = c.Text
		}
		if c, ok := el.Child("faultstring"); ok {
			f.String = c.Text
		}
		if c, ok := el.Child("detail"); ok {
			f.Detail = c.Text
		}
		return Response{Fault: f}, nil
	}
	const suffix = "Response"
	if len(el.Name) <= len(suffix) || el.Name[len(el.Name)-len(suffix):] != suffix {
		return Response{}, fmt.Errorf("%w: element %s is not a Response", ErrMalformedXML, el.Name)
	}
	resp := Response{Method: el.Name[:len(el.Name)-len(suffix)]}
	if rn, ok := el.Child("return"); ok {
		resp.Return = rn
	}
	return resp, nil
}
