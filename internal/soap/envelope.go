package soap

import (
	"errors"
	"fmt"

	"livedev/internal/dyn"
)

// SOAP 1.1 namespace URIs, emitted on envelopes for interoperability.
const (
	NSEnvelope = "http://schemas.xmlsoap.org/soap/envelope/"
	NSXSI      = "http://www.w3.org/2001/XMLSchema-instance"
	NSXSD      = "http://www.w3.org/2001/XMLSchema"
	NSEncoding = "http://schemas.xmlsoap.org/soap/encoding/"
)

// The fault strings the paper's SOAP Call Handler sends (Section 5.1.3).
const (
	FaultServerNotInitialized = "Server not initialized"
	FaultMalformedRequest     = "Malformed SOAP Request"
	FaultNonExistentMethod    = "Non existent Method"
)

// Fault is a SOAP fault, used as the error type for all SOAP-level
// failures a client observes.
type Fault struct {
	Code   string // "soap:Client" or "soap:Server"
	String string // human-readable fault string
	Detail string // optional detail text
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("SOAP fault %s: %s", f.Code, f.String)
}

// IsNonExistentMethod reports whether err is the "Non existent Method"
// fault — the SOAP-side signal of the paper's stale-method condition.
// Receiving it guarantees the server already republished a current WSDL.
func IsNonExistentMethod(err error) bool {
	var f *Fault
	return errors.As(err, &f) && f.String == FaultNonExistentMethod
}

// NamedValue pairs a parameter name with its value for request encoding.
type NamedValue struct {
	Name  string
	Value dyn.Value
}

// envelope wraps body content in a SOAP 1.1 envelope.
func envelope(body ...*Node) *Node {
	env := NewNode("soapenv:Envelope")
	env.Attrs["xmlns:soapenv"] = NSEnvelope
	env.Attrs["xmlns:xsi"] = NSXSI
	env.Attrs["xmlns:xsd"] = NSXSD
	env.Attrs["xmlns:soapenc"] = NSEncoding
	b := env.Append(NewNode("soapenv:Body"))
	for _, n := range body {
		b.Append(n)
	}
	return env
}

// BuildRequest renders the SOAP request envelope for an RPC call: the body
// holds one element named after the method, in the service namespace, with
// one child element per parameter.
func BuildRequest(serviceNS, method string, params []NamedValue) (string, error) {
	call := NewNode("m:" + method)
	call.Attrs["xmlns:m"] = serviceNS
	for _, p := range params {
		pn, err := EncodeValue(p.Name, p.Value)
		if err != nil {
			return "", fmt.Errorf("soap: encoding parameter %s: %w", p.Name, err)
		}
		call.Append(pn)
	}
	return envelope(call).Render(), nil
}

// Request is a parsed SOAP request: the method name and the raw parameter
// elements, which the call handler decodes against the live signature.
type Request struct {
	Method string
	Params []*Node
}

// ParseRequest extracts the RPC call from a request envelope.
func ParseRequest(data []byte) (Request, error) {
	root, err := ParseXML(data)
	if err != nil {
		return Request{}, err
	}
	if root.Name != "Envelope" {
		return Request{}, fmt.Errorf("%w: root element is %s, want Envelope", ErrMalformedXML, root.Name)
	}
	body, ok := root.Child("Body")
	if !ok {
		return Request{}, fmt.Errorf("%w: no Body element", ErrMalformedXML)
	}
	if len(body.Children) != 1 {
		return Request{}, fmt.Errorf("%w: Body must contain exactly one call element", ErrMalformedXML)
	}
	call := body.Children[0]
	return Request{Method: call.Name, Params: call.Children}, nil
}

// BuildResponse renders the SOAP response envelope: <methodResponse> with a
// single <return> element (omitted for void results).
func BuildResponse(serviceNS, method string, result dyn.Value) (string, error) {
	resp := NewNode("m:" + method + "Response")
	resp.Attrs["xmlns:m"] = serviceNS
	if result.Type().Kind() != dyn.KindVoid {
		rn, err := EncodeValue("return", result)
		if err != nil {
			return "", fmt.Errorf("soap: encoding result: %w", err)
		}
		resp.Append(rn)
	}
	return envelope(resp).Render(), nil
}

// BuildFault renders a fault envelope.
func BuildFault(f *Fault) string {
	fn := NewNode("soapenv:Fault")
	code := fn.Append(NewNode("faultcode"))
	code.Text = f.Code
	fs := fn.Append(NewNode("faultstring"))
	fs.Text = f.String
	if f.Detail != "" {
		det := fn.Append(NewNode("detail"))
		det.Text = f.Detail
	}
	return envelope(fn).Render()
}

// Response is a parsed SOAP response: either a result element or a fault.
type Response struct {
	// Method is the responding method name (without the "Response"
	// suffix); empty for faults.
	Method string
	// Return is the result element; nil for void results and faults.
	Return *Node
	// Fault is non-nil if the envelope carried a fault.
	Fault *Fault
}

// ParseResponse extracts the result or fault from a response envelope.
func ParseResponse(data []byte) (Response, error) {
	root, err := ParseXML(data)
	if err != nil {
		return Response{}, err
	}
	if root.Name != "Envelope" {
		return Response{}, fmt.Errorf("%w: root element is %s, want Envelope", ErrMalformedXML, root.Name)
	}
	body, ok := root.Child("Body")
	if !ok {
		return Response{}, fmt.Errorf("%w: no Body element", ErrMalformedXML)
	}
	if len(body.Children) != 1 {
		return Response{}, fmt.Errorf("%w: Body must contain exactly one element", ErrMalformedXML)
	}
	el := body.Children[0]
	if el.Name == "Fault" {
		f := &Fault{}
		if c, ok := el.Child("faultcode"); ok {
			f.Code = c.Text
		}
		if c, ok := el.Child("faultstring"); ok {
			f.String = c.Text
		}
		if c, ok := el.Child("detail"); ok {
			f.Detail = c.Text
		}
		return Response{Fault: f}, nil
	}
	const suffix = "Response"
	if len(el.Name) <= len(suffix) || el.Name[len(el.Name)-len(suffix):] != suffix {
		return Response{}, fmt.Errorf("%w: element %s is not a Response", ErrMalformedXML, el.Name)
	}
	resp := Response{Method: el.Name[:len(el.Name)-len(suffix)]}
	if rn, ok := el.Child("return"); ok {
		resp.Return = rn
	}
	return resp, nil
}
