// Package soap implements the SOAP 1.1 subset Web Services built on Apache
// Axis used in 2004: RPC/encoded envelopes over HTTP POST, faults with the
// paper's exact fault strings ("Server not initialized", "Malformed SOAP
// Request", "Non existent Method"), and an XML encoding of the dyn value
// system (xsd primitive types, structs as element children, sequences as
// <item> lists). Decoding is signature-driven: the expected dyn.Type comes
// from the WSDL-described interface, so xsi:type attributes are emitted for
// interoperability but not trusted on input.
//
// # Pooling and buffer-ownership invariants
//
// Envelope construction is the SOAP half of the invocation hot path, so
// rendering goes through a pool of byte buffers: Render, BuildRequest,
// BuildResponse and BuildFault assemble output in a pooled buffer and
// return an independent string, so callers never observe pooled storage.
// Envelope skeletons (the constant prefix/suffix text around the method
// element) are cached per (service namespace, method) and reused verbatim.
// Parsed Node trees own all their strings — nothing retains the input
// buffer — so callers may recycle the bytes passed to ParseXML freely.
// Nodes produced by the parser may carry a nil Attrs map when the element
// had no attributes; reading a nil map is safe (Attr handles it), but
// writers must use SetAttr or NewNode-created nodes.
package soap

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"unicode/utf8"
)

// Node is a generic XML element: dynamic documents (SOAP bodies whose shape
// depends on live method signatures) are built and inspected as Node trees.
type Node struct {
	// Name is the local element name (namespace prefixes are stripped on
	// parse; SOAP 1.1 RPC dispatch is by local name + declared namespace).
	Name string
	// Attrs holds attributes as local-name → value. May be nil on parsed
	// elements without attributes.
	Attrs map[string]string
	// Children are child elements, in document order.
	Children []*Node
	// Text is the concatenated character data directly under this element.
	Text string
}

// NewNode returns an element with the given local name.
func NewNode(name string) *Node {
	return &Node{Name: name, Attrs: make(map[string]string)}
}

// Append adds a child element and returns it for chaining.
func (n *Node) Append(child *Node) *Node {
	n.Children = append(n.Children, child)
	return child
}

// Child returns the first child with the given local name.
func (n *Node) Child(name string) (*Node, bool) {
	for _, c := range n.Children {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

// Attr returns the attribute value for a local attribute name.
func (n *Node) Attr(name string) string { return n.Attrs[name] }

// SetAttr sets an attribute, allocating the map if needed (parser-created
// nodes start with a nil map).
func (n *Node) SetAttr(name, value string) {
	if n.Attrs == nil {
		n.Attrs = make(map[string]string, 4)
	}
	n.Attrs[name] = value
}

// ErrMalformedXML reports unparseable XML input.
var ErrMalformedXML = errors.New("soap: malformed XML")

// ---- Parsing ----
//
// A purpose-built scanner instead of encoding/xml token streaming: SOAP
// envelopes are parsed on every request and reply, and the generic decoder
// costs dozens of allocations per document. This parser handles the XML
// subset SOAP 1.1 stacks exchange: elements, attributes (either quote),
// character data, the five predefined entities plus numeric references,
// CDATA, comments, processing instructions, and a prolog/DOCTYPE it skips.

type xmlParser struct {
	data []byte
	pos  int
}

// ParseXML parses a document into a Node tree, rooted at the single
// top-level element. The tree copies what it keeps: the input buffer may be
// reused as soon as ParseXML returns.
func ParseXML(data []byte) (*Node, error) {
	p := xmlParser{data: data}
	var root *Node
	var stack []*Node
	var rawNames [][]byte // raw (prefixed) tag names for match checking
	for {
		rest := p.data[p.pos:]
		i := bytes.IndexByte(rest, '<')
		if i < 0 {
			// Trailing character data. Inside an element it belongs to the
			// element, but then the element is unclosed and the final stack
			// check reports it; outside the root it is ignored, matching
			// the tolerant behaviour of the previous parser.
			break
		}
		if i > 0 {
			if len(stack) > 0 {
				if err := stack[len(stack)-1].addText(rest[:i]); err != nil {
					return nil, err
				}
			}
			p.pos += i
		}
		// p.data[p.pos] == '<'
		switch {
		case p.lookingAt("</"):
			name, err := p.readEndTag()
			if err != nil {
				return nil, err
			}
			if len(stack) == 0 {
				return nil, fmt.Errorf("%w: unbalanced end element", ErrMalformedXML)
			}
			if !bytes.Equal(name, rawNames[len(rawNames)-1]) {
				return nil, fmt.Errorf("%w: element <%s> closed by </%s>", ErrMalformedXML, rawNames[len(rawNames)-1], name)
			}
			stack = stack[:len(stack)-1]
			rawNames = rawNames[:len(rawNames)-1]
		case p.lookingAt("<!--"):
			if err := p.skipPast("-->"); err != nil {
				return nil, err
			}
		case p.lookingAt("<![CDATA["):
			raw, err := p.readCDATA()
			if err != nil {
				return nil, err
			}
			if len(stack) > 0 {
				stack[len(stack)-1].appendRawText(raw)
			}
		case p.lookingAt("<!"):
			if err := p.skipPast(">"); err != nil { // DOCTYPE etc.
				return nil, err
			}
		case p.lookingAt("<?"):
			if err := p.skipPast("?>"); err != nil { // prolog, PIs
				return nil, err
			}
		default:
			n, rawName, selfClosed, err := p.readStartTag()
			if err != nil {
				return nil, err
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("%w: multiple root elements", ErrMalformedXML)
				}
				root = n
			} else {
				stack[len(stack)-1].Append(n)
			}
			if !selfClosed {
				stack = append(stack, n)
				rawNames = append(rawNames, rawName)
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("%w: no root element", ErrMalformedXML)
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("%w: unclosed elements", ErrMalformedXML)
	}
	return root, nil
}

func (p *xmlParser) lookingAt(s string) bool {
	return len(p.data)-p.pos >= len(s) && string(p.data[p.pos:p.pos+len(s)]) == s
}

func (p *xmlParser) skipPast(close string) error {
	i := bytes.Index(p.data[p.pos:], []byte(close))
	if i < 0 {
		return fmt.Errorf("%w: unterminated markup", ErrMalformedXML)
	}
	p.pos += i + len(close)
	return nil
}

func (p *xmlParser) readCDATA() ([]byte, error) {
	start := p.pos + len("<![CDATA[")
	i := bytes.Index(p.data[start:], []byte("]]>"))
	if i < 0 {
		return nil, fmt.Errorf("%w: unterminated CDATA", ErrMalformedXML)
	}
	raw := p.data[start : start+i]
	p.pos = start + i + len("]]>")
	return raw, nil
}

func (p *xmlParser) readEndTag() ([]byte, error) {
	start := p.pos + 2
	i := bytes.IndexByte(p.data[start:], '>')
	if i < 0 {
		return nil, fmt.Errorf("%w: unterminated end tag", ErrMalformedXML)
	}
	name := bytes.TrimSpace(p.data[start : start+i])
	if len(name) == 0 {
		return nil, fmt.Errorf("%w: empty end tag", ErrMalformedXML)
	}
	p.pos = start + i + 1
	return name, nil
}

func isNameByte(c byte) bool {
	return c != ' ' && c != '\t' && c != '\n' && c != '\r' && c != '>' && c != '/' && c != '=' && c != '"' && c != '\''
}

func (p *xmlParser) skipSpace() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// readStartTag parses "<name attr=...>" or "<name .../>" with p.pos at '<'.
func (p *xmlParser) readStartTag() (*Node, []byte, bool, error) {
	p.pos++ // consume '<'
	nameStart := p.pos
	for p.pos < len(p.data) && isNameByte(p.data[p.pos]) {
		p.pos++
	}
	rawName := p.data[nameStart:p.pos]
	if len(rawName) == 0 {
		return nil, nil, false, fmt.Errorf("%w: empty element name", ErrMalformedXML)
	}
	n := &Node{Name: internName(localName(rawName))}
	for {
		p.skipSpace()
		if p.pos >= len(p.data) {
			return nil, nil, false, fmt.Errorf("%w: unterminated start tag", ErrMalformedXML)
		}
		switch p.data[p.pos] {
		case '>':
			p.pos++
			return n, rawName, false, nil
		case '/':
			if p.pos+1 >= len(p.data) || p.data[p.pos+1] != '>' {
				return nil, nil, false, fmt.Errorf("%w: stray '/' in start tag", ErrMalformedXML)
			}
			p.pos += 2
			return n, rawName, true, nil
		}
		// Attribute.
		attrStart := p.pos
		for p.pos < len(p.data) && isNameByte(p.data[p.pos]) {
			p.pos++
		}
		attrName := p.data[attrStart:p.pos]
		if len(attrName) == 0 {
			return nil, nil, false, fmt.Errorf("%w: malformed attribute", ErrMalformedXML)
		}
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != '=' {
			return nil, nil, false, fmt.Errorf("%w: attribute %s missing value", ErrMalformedXML, attrName)
		}
		p.pos++
		p.skipSpace()
		if p.pos >= len(p.data) || (p.data[p.pos] != '"' && p.data[p.pos] != '\'') {
			return nil, nil, false, fmt.Errorf("%w: attribute %s missing quoted value", ErrMalformedXML, attrName)
		}
		quote := p.data[p.pos]
		p.pos++
		valStart := p.pos
		i := bytes.IndexByte(p.data[p.pos:], quote)
		if i < 0 {
			return nil, nil, false, fmt.Errorf("%w: unterminated attribute value", ErrMalformedXML)
		}
		rawVal := p.data[valStart : valStart+i]
		p.pos = valStart + i + 1
		val, err := internAttrValue(rawVal)
		if err != nil {
			return nil, nil, false, err
		}
		n.SetAttr(internName(localName(attrName)), val)
	}
}

// localName strips any namespace prefix ("m:echo" → "echo").
func localName(raw []byte) []byte {
	if i := bytes.LastIndexByte(raw, ':'); i >= 0 {
		return raw[i+1:]
	}
	return raw
}

// internName returns a shared string for the element and attribute names
// every SOAP envelope repeats, avoiding one allocation per occurrence.
// (A switch on string(b) does not allocate.)
func internName(b []byte) string {
	switch string(b) {
	case "Envelope":
		return "Envelope"
	case "Body":
		return "Body"
	case "Fault":
		return "Fault"
	case "faultcode":
		return "faultcode"
	case "faultstring":
		return "faultstring"
	case "detail":
		return "detail"
	case "item":
		return "item"
	case "return":
		return "return"
	case "type":
		return "type"
	case "xmlns":
		return "xmlns"
	case "soapenv":
		return "soapenv"
	case "soapenc":
		return "soapenc"
	case "xsd":
		return "xsd"
	case "xsi":
		return "xsi"
	case "m":
		return "m"
	}
	return string(b)
}

// internAttrValue decodes an attribute value, returning shared strings for
// the namespace URIs and xsi:type values every envelope carries.
func internAttrValue(raw []byte) (string, error) {
	switch string(raw) {
	case NSEnvelope:
		return NSEnvelope, nil
	case NSXSI:
		return NSXSI, nil
	case NSXSD:
		return NSXSD, nil
	case NSEncoding:
		return NSEncoding, nil
	case "xsd:string":
		return "xsd:string", nil
	case "xsd:int":
		return "xsd:int", nil
	case "xsd:long":
		return "xsd:long", nil
	case "xsd:boolean":
		return "xsd:boolean", nil
	case "xsd:float":
		return "xsd:float", nil
	case "xsd:double":
		return "xsd:double", nil
	case "soapenc:Array":
		return "soapenc:Array", nil
	}
	return decodeEntities(raw)
}

// addText appends entity-decoded character data to the element.
func (n *Node) addText(raw []byte) error {
	s, err := decodeEntities(raw)
	if err != nil {
		return err
	}
	if n.Text == "" {
		n.Text = s
	} else {
		n.Text += s
	}
	return nil
}

// appendRawText appends already-literal text (CDATA content).
func (n *Node) appendRawText(raw []byte) {
	if len(raw) == 0 {
		return
	}
	if n.Text == "" {
		n.Text = string(raw)
	} else {
		n.Text += string(raw)
	}
}

// decodeEntities resolves the predefined and numeric character references.
func decodeEntities(raw []byte) (string, error) {
	amp := bytes.IndexByte(raw, '&')
	if amp < 0 {
		return string(raw), nil
	}
	var b []byte
	b = append(b, raw[:amp]...)
	for i := amp; i < len(raw); {
		c := raw[i]
		if c != '&' {
			b = append(b, c)
			i++
			continue
		}
		semi := bytes.IndexByte(raw[i:], ';')
		if semi < 0 {
			return "", fmt.Errorf("%w: unterminated entity", ErrMalformedXML)
		}
		ent := string(raw[i+1 : i+semi])
		switch ent {
		case "amp":
			b = append(b, '&')
		case "lt":
			b = append(b, '<')
		case "gt":
			b = append(b, '>')
		case "quot":
			b = append(b, '"')
		case "apos":
			b = append(b, '\'')
		default:
			if len(ent) > 1 && ent[0] == '#' {
				r, err := parseCharRef(ent[1:])
				if err != nil {
					return "", err
				}
				b = utf8.AppendRune(b, r)
			} else {
				return "", fmt.Errorf("%w: unknown entity &%s;", ErrMalformedXML, ent)
			}
		}
		i += semi + 1
	}
	return string(b), nil
}

func parseCharRef(s string) (rune, error) {
	base := 10
	if len(s) > 0 && (s[0] == 'x' || s[0] == 'X') {
		base = 16
		s = s[1:]
	}
	var r rune
	if len(s) == 0 {
		return 0, fmt.Errorf("%w: empty character reference", ErrMalformedXML)
	}
	for i := 0; i < len(s); i++ {
		var d rune
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			d = rune(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = rune(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = rune(c-'A') + 10
		default:
			return 0, fmt.Errorf("%w: bad character reference", ErrMalformedXML)
		}
		r = r*rune(base) + d
		if r > utf8.MaxRune {
			return 0, fmt.Errorf("%w: character reference out of range", ErrMalformedXML)
		}
	}
	// Reject references outside the XML Char production (NUL, most control
	// characters, surrogates), as encoding/xml does — accepting them would
	// smuggle values that cannot round-trip through Render.
	if !isInCharacterRange(r) {
		return 0, fmt.Errorf("%w: character reference &#%d; outside XML character range", ErrMalformedXML, r)
	}
	return r, nil
}

// ---- Rendering ----

// renderPool recycles envelope/document render buffers.
var renderPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// maxPooledRender bounds the buffer capacity the render pool retains.
const maxPooledRender = 1 << 20

func getRenderBuf() *[]byte { return renderPool.Get().(*[]byte) }

func putRenderBuf(bp *[]byte, buf []byte) {
	if cap(buf) <= maxPooledRender {
		*bp = buf[:0]
		renderPool.Put(bp)
	}
}

// Render serializes the tree. Attributes are emitted in sorted order for
// deterministic output; character data is escaped. The returned string is
// independent of any internal buffer.
func (n *Node) Render() string {
	bp := getRenderBuf()
	buf := n.appendXML((*bp)[:0])
	s := string(buf)
	putRenderBuf(bp, buf)
	return s
}

// appendXML renders the element into buf and returns the extended slice.
func (n *Node) appendXML(buf []byte) []byte {
	buf = append(buf, '<')
	buf = append(buf, n.Name...)
	switch len(n.Attrs) {
	case 0:
	case 1:
		for k, v := range n.Attrs {
			buf = appendAttr(buf, k, v)
		}
	default:
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		// insertion sort; attribute counts are tiny
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		for _, k := range keys {
			buf = appendAttr(buf, k, n.Attrs[k])
		}
	}
	if len(n.Children) == 0 && n.Text == "" {
		return append(buf, '/', '>')
	}
	buf = append(buf, '>')
	if n.Text != "" {
		buf = appendEscaped(buf, n.Text)
	}
	for _, c := range n.Children {
		buf = c.appendXML(buf)
	}
	buf = append(buf, '<', '/')
	buf = append(buf, n.Name...)
	return append(buf, '>')
}

func appendAttr(buf []byte, k, v string) []byte {
	buf = append(buf, ' ')
	buf = append(buf, k...)
	buf = append(buf, '=', '"')
	buf = appendEscaped(buf, v)
	return append(buf, '"')
}

// appendEscaped appends s with XML escaping, mirroring xml.EscapeText's
// behaviour (same escape table, invalid runes replaced with U+FFFD) without
// requiring an io.Writer or a byte-slice conversion of s.
func appendEscaped(buf []byte, s string) []byte {
	last := 0
	for i := 0; i < len(s); {
		r, width := utf8.DecodeRuneInString(s[i:])
		var esc string
		switch r {
		case '"':
			esc = "&#34;"
		case '\'':
			esc = "&#39;"
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '\t':
			esc = "&#x9;"
		case '\n':
			esc = "&#xA;"
		case '\r':
			esc = "&#xD;"
		default:
			if !isInCharacterRange(r) || (r == utf8.RuneError && width == 1) {
				esc = "�"
				break
			}
			i += width
			continue
		}
		buf = append(buf, s[last:i]...)
		buf = append(buf, esc...)
		i += width
		last = i
	}
	return append(buf, s[last:]...)
}

// isInCharacterRange reports whether r is in the XML Char production, per
// the same rule encoding/xml applies.
func isInCharacterRange(r rune) bool {
	return r == 0x09 ||
		r == 0x0A ||
		r == 0x0D ||
		r >= 0x20 && r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}
