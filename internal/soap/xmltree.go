// Package soap implements the SOAP 1.1 subset Web Services built on Apache
// Axis used in 2004: RPC/encoded envelopes over HTTP POST, faults with the
// paper's exact fault strings ("Server not initialized", "Malformed SOAP
// Request", "Non existent Method"), and an XML encoding of the dyn value
// system (xsd primitive types, structs as element children, sequences as
// <item> lists). Decoding is signature-driven: the expected dyn.Type comes
// from the WSDL-described interface, so xsi:type attributes are emitted for
// interoperability but not trusted on input.
package soap

import (
	"encoding/xml"
	"errors"
	"fmt"
	"strings"
)

// Node is a generic XML element: dynamic documents (SOAP bodies whose shape
// depends on live method signatures) are built and inspected as Node trees.
type Node struct {
	// Name is the local element name (namespace prefixes are stripped on
	// parse; SOAP 1.1 RPC dispatch is by local name + declared namespace).
	Name string
	// Attrs holds attributes as local-name → value.
	Attrs map[string]string
	// Children are child elements, in document order.
	Children []*Node
	// Text is the concatenated character data directly under this element.
	Text string
}

// NewNode returns an element with the given local name.
func NewNode(name string) *Node {
	return &Node{Name: name, Attrs: make(map[string]string)}
}

// Append adds a child element and returns it for chaining.
func (n *Node) Append(child *Node) *Node {
	n.Children = append(n.Children, child)
	return child
}

// Child returns the first child with the given local name.
func (n *Node) Child(name string) (*Node, bool) {
	for _, c := range n.Children {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

// Attr returns the attribute value for a local attribute name.
func (n *Node) Attr(name string) string { return n.Attrs[name] }

// ErrMalformedXML reports unparseable XML input.
var ErrMalformedXML = errors.New("soap: malformed XML")

// ParseXML parses a document into a Node tree, rooted at the single
// top-level element.
func ParseXML(data []byte) (*Node, error) {
	dec := xml.NewDecoder(strings.NewReader(string(data)))
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			return nil, fmt.Errorf("%w: %v", ErrMalformedXML, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := NewNode(t.Name.Local)
			for _, a := range t.Attr {
				n.Attrs[a.Name.Local] = a.Value
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("%w: multiple root elements", ErrMalformedXML)
				}
				root = n
			} else {
				stack[len(stack)-1].Append(n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("%w: unbalanced end element", ErrMalformedXML)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].Text += string(t)
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("%w: no root element", ErrMalformedXML)
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("%w: unclosed elements", ErrMalformedXML)
	}
	return root, nil
}

// Render serializes the tree. Attributes are emitted in sorted order for
// deterministic output; character data is escaped.
func (n *Node) Render() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	b.WriteByte('<')
	b.WriteString(n.Name)
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	// insertion sort; attribute counts are tiny
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		b.WriteByte(' ')
		b.WriteString(k)
		b.WriteString(`="`)
		_ = xml.EscapeText(b, []byte(n.Attrs[k]))
		b.WriteByte('"')
	}
	if len(n.Children) == 0 && n.Text == "" {
		b.WriteString("/>")
		return
	}
	b.WriteByte('>')
	if n.Text != "" {
		_ = xml.EscapeText(b, []byte(n.Text))
	}
	for _, c := range n.Children {
		c.render(b)
	}
	b.WriteString("</")
	b.WriteString(n.Name)
	b.WriteByte('>')
}
