package static

import (
	"errors"
	"testing"

	"livedev/internal/dyn"
	"livedev/internal/orb"
	"livedev/internal/soap"
)

func newLiveCalc(t *testing.T) (*dyn.Instance, dyn.MemberID) {
	t.Helper()
	c := dyn.NewClass("Calc")
	id, err := c.AddMethod(dyn.MethodSpec{
		Name:        "add",
		Params:      []dyn.Param{{Name: "a", Type: dyn.Int32T}, {Name: "b", Type: dyn.Int32T}},
		Result:      dyn.Int32T,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return dyn.Int32Value(args[0].Int32() + args[1].Int32()), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A non-distributed helper must not be exported.
	if _, err := c.AddMethod(dyn.MethodSpec{Name: "helper", Result: dyn.Int32T}); err != nil {
		t.Fatal(err)
	}
	return c.NewInstance(), id
}

func TestExportFreezesInterface(t *testing.T) {
	in, id := newLiveCalc(t)
	ops, err := Export(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0].Name != "add" {
		t.Fatalf("ops = %+v", ops)
	}

	// Exported dispatch works.
	got, err := ops[0].Fn([]dyn.Value{dyn.Int32Value(2), dyn.Int32Value(3)})
	if err != nil || got.Int32() != 5 {
		t.Errorf("exported add = %v, %v", got, err)
	}

	// Renaming the dynamic method after export breaks the frozen stub —
	// by design: the exported server is static.
	if err := in.Class().RenameMethod(id, "plus"); err != nil {
		t.Fatal(err)
	}
	if _, err := ops[0].Fn([]dyn.Value{dyn.Int32Value(2), dyn.Int32Value(3)}); !errors.Is(err, dyn.ErrNoSuchMethod) {
		t.Errorf("frozen stub after rename: %v", err)
	}
}

func TestExportNil(t *testing.T) {
	if _, err := Export(nil); err == nil {
		t.Error("Export(nil) should fail")
	}
	if _, err := ExportSOAP(nil); err == nil {
		t.Error("ExportSOAP(nil) should fail")
	}
	if _, err := ExportCORBA(nil); err == nil {
		t.Error("ExportCORBA(nil) should fail")
	}
}

func TestExportSOAPServesCalls(t *testing.T) {
	in, _ := newLiveCalc(t)
	srv, err := ExportSOAP(in)
	if err != nil {
		t.Fatal(err)
	}
	endpoint, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &soap.Client{Endpoint: endpoint, ServiceNS: "urn:Calc"}
	got, err := client.Call("add", []soap.NamedValue{
		{Name: "a", Value: dyn.Int32Value(40)},
		{Name: "b", Value: dyn.Int32Value(2)},
	}, dyn.Int32T)
	if err != nil || got.Int32() != 42 {
		t.Errorf("exported SOAP add = %v, %v", got, err)
	}
	// The helper was not exported.
	if _, err := client.Call("helper", nil, dyn.Int32T); !soap.IsNonExistentMethod(err) {
		t.Errorf("helper should not be exported: %v", err)
	}
}

func TestExportCORBAServesCalls(t *testing.T) {
	in, _ := newLiveCalc(t)
	srv, err := ExportCORBA(in)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if ref.TypeID != "IDL:CalcModule/Calc:1.0" {
		t.Errorf("exported type id = %q", ref.TypeID)
	}

	conn, err := orb.DialIOR(ref)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sig := dyn.MethodSig{
		Name:   "add",
		Params: []dyn.Param{{Name: "a", Type: dyn.Int32T}, {Name: "b", Type: dyn.Int32T}},
		Result: dyn.Int32T,
	}
	got, err := conn.Invoke(sig, []dyn.Value{dyn.Int32Value(20), dyn.Int32Value(22)})
	if err != nil || got.Int32() != 42 {
		t.Errorf("exported CORBA add = %v, %v", got, err)
	}
}
