// Package static implements fixed-interface SOAP and CORBA servers: the
// baselines of the paper's Table 1 (a static Axis service in Tomcat, and a
// static OpenORB server). They share the wire stacks (soap, giop, iiop,
// cdr) with the SDE servers but dispatch through precompiled operation
// tables — no dynamic class, no publication machinery, no stale-call
// gates — so the difference between them and the SDE servers is exactly
// the overhead the paper's Section 7 measures.
package static

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"livedev/internal/cdr"
	"livedev/internal/dyn"
	"livedev/internal/giop"
	"livedev/internal/iiop"
	"livedev/internal/ior"
	"livedev/internal/orb"
	"livedev/internal/soap"
)

// Op is one precompiled server operation: a fixed signature and a handler
// function. It corresponds to a statically generated server stub.
type Op struct {
	Name   string
	Params []dyn.Param
	Result *dyn.Type // nil means void
	Fn     func(args []dyn.Value) (dyn.Value, error)
}

func (o Op) normalized() Op {
	if o.Result == nil {
		o.Result = dyn.Void
	}
	return o
}

// Sig returns the operation's method signature.
func (o Op) Sig() dyn.MethodSig {
	n := o.normalized()
	return dyn.MethodSig{Name: n.Name, Params: n.Params, Result: n.Result}
}

// SOAPServer is a static Web Service on a fixed operation table.
type SOAPServer struct {
	serviceNS string
	ops       map[string]Op

	srv      *http.Server
	ln       net.Listener
	endpoint string
	done     chan struct{}
	once     sync.Once
}

// NewSOAPServer builds a static SOAP server for the given operations.
func NewSOAPServer(serviceNS string, ops []Op) (*SOAPServer, error) {
	table := make(map[string]Op, len(ops))
	for _, op := range ops {
		if op.Name == "" || op.Fn == nil {
			return nil, fmt.Errorf("static: operation needs a name and a function")
		}
		if _, dup := table[op.Name]; dup {
			return nil, fmt.Errorf("static: duplicate operation %s", op.Name)
		}
		table[op.Name] = op.normalized()
	}
	return &SOAPServer{serviceNS: serviceNS, ops: table}, nil
}

// Start listens on addr and returns the endpoint URL.
func (s *SOAPServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("static: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.endpoint = "http://" + ln.Addr().String() + "/"
	s.srv = &http.Server{Handler: s, ReadHeaderTimeout: 10 * time.Second}
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s.endpoint, nil
}

// Endpoint returns the endpoint URL ("" before Start).
func (s *SOAPServer) Endpoint() string { return s.endpoint }

// ServeHTTP implements the static request path: parse, table lookup,
// dispatch, encode.
func (s *SOAPServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "SOAP endpoint: POST only", http.StatusMethodNotAllowed)
		return
	}
	buf := soap.GetBodyBuffer()
	defer soap.PutBodyBuffer(buf)
	if _, err := buf.ReadFrom(io.LimitReader(r.Body, 16<<20)); err != nil {
		s.fault(w, &soap.Fault{Code: "soap:Client", String: soap.FaultMalformedRequest})
		return
	}
	req, err := soap.ParseRequest(buf.Bytes())
	if err != nil {
		s.fault(w, &soap.Fault{Code: "soap:Client", String: soap.FaultMalformedRequest})
		return
	}
	op, ok := s.ops[req.Method]
	if !ok || len(req.Params) != len(op.Params) {
		s.fault(w, &soap.Fault{Code: "soap:Server", String: soap.FaultNonExistentMethod})
		return
	}
	args := make([]dyn.Value, len(op.Params))
	for i, p := range op.Params {
		v, err := soap.DecodeValue(req.Params[i], p.Type)
		if err != nil {
			s.fault(w, &soap.Fault{Code: "soap:Client", String: soap.FaultMalformedRequest, Detail: err.Error()})
			return
		}
		args[i] = v
	}
	result, err := op.Fn(args)
	if err != nil {
		s.fault(w, &soap.Fault{Code: "soap:Server", String: err.Error()})
		return
	}
	env, err := soap.BuildResponse(s.serviceNS, req.Method, result)
	if err != nil {
		s.fault(w, &soap.Fault{Code: "soap:Server", String: "encoding error", Detail: err.Error()})
		return
	}
	w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
	_, _ = io.WriteString(w, env)
}

func (s *SOAPServer) fault(w http.ResponseWriter, f *soap.Fault) {
	w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = io.WriteString(w, soap.BuildFault(f))
}

// Close shuts the server down.
func (s *SOAPServer) Close() error {
	if s.srv == nil {
		return nil
	}
	var err error
	s.once.Do(func() {
		err = s.srv.Close()
		<-s.done
	})
	return err
}

// CORBAServer is a static CORBA servant on a fixed operation table — the
// equivalent of a precompiled skeleton in a static OpenORB server.
type CORBAServer struct {
	typeID    string
	objectKey []byte
	ops       map[string]Op
	srv       *iiop.Server
}

// NewCORBAServer builds a static CORBA server.
func NewCORBAServer(typeID string, objectKey []byte, ops []Op) (*CORBAServer, error) {
	table := make(map[string]Op, len(ops))
	for _, op := range ops {
		if op.Name == "" || op.Fn == nil {
			return nil, fmt.Errorf("static: operation needs a name and a function")
		}
		if _, dup := table[op.Name]; dup {
			return nil, fmt.Errorf("static: duplicate operation %s", op.Name)
		}
		table[op.Name] = op.normalized()
	}
	s := &CORBAServer{typeID: typeID, objectKey: append([]byte(nil), objectKey...), ops: table}
	s.srv = iiop.NewServer(iiop.HandlerFunc(s.handle))
	return s, nil
}

// Start listens on addr and returns the object's IOR.
func (s *CORBAServer) Start(addr string) (ior.IOR, error) {
	a, err := s.srv.Listen(addr)
	if err != nil {
		return ior.IOR{}, err
	}
	tcp, ok := a.(*net.TCPAddr)
	if !ok {
		_ = s.srv.Close()
		return ior.IOR{}, errors.New("static: unexpected listener address type")
	}
	return ior.New(s.typeID, tcp.IP.String(), uint16(tcp.Port), s.objectKey), nil
}

func (s *CORBAServer) handle(_ context.Context, h giop.RequestHeader, args *cdr.Decoder, order cdr.ByteOrder) giop.Message {
	sysEx := func(repoID string) giop.Message {
		se := &giop.SystemException{RepoID: repoID, Minor: 1, Completed: giop.CompletedNo}
		msg, err := giop.EncodeReply(order, giop.ReplyHeader{RequestID: h.RequestID, Status: giop.ReplySystemException}, se.Encode)
		if err != nil {
			return giop.Message{Type: giop.MsgMessageError, Order: order}
		}
		return msg
	}
	if string(h.ObjectKey) != string(s.objectKey) {
		return sysEx(giop.RepoObjectNotExist)
	}
	op, ok := s.ops[h.Operation]
	if !ok {
		return sysEx(giop.RepoBadOperation)
	}
	vals := make([]dyn.Value, len(op.Params))
	for i, p := range op.Params {
		v, err := cdr.DecodeValue(args, p.Type)
		if err != nil {
			return sysEx(giop.RepoMarshal)
		}
		vals[i] = v
	}
	result, err := op.Fn(vals)
	if err != nil {
		msg, encErr := giop.EncodeReply(order, giop.ReplyHeader{RequestID: h.RequestID, Status: giop.ReplyUserException},
			func(e *cdr.Encoder) error {
				e.WriteString(orb.AppErrorRepoID)
				e.WriteString(err.Error())
				return nil
			})
		if encErr != nil {
			return sysEx(giop.RepoUnknown)
		}
		return msg
	}
	msg, encErr := giop.EncodeReply(order, giop.ReplyHeader{RequestID: h.RequestID, Status: giop.ReplyNoException},
		func(e *cdr.Encoder) error { return cdr.EncodeValue(e, result) })
	if encErr != nil {
		return sysEx(giop.RepoMarshal)
	}
	return msg
}

// Close shuts the server down.
func (s *CORBAServer) Close() error { return s.srv.Close() }
