package static

import (
	"fmt"

	"livedev/internal/dyn"
)

// Export freezes a dynamic class instance's distributed interface into a
// static operation table — the paper's Section 7 note: "At the end of the
// development phase, the dynamic SDE server can be converted into a static
// SOAP or CORBA server through JPie's built-in application export
// mechanism." The exported operations dispatch to the instance through its
// then-current method set; later edits to the dynamic class do NOT affect
// the exported server (that is the point of exporting).
func Export(in *dyn.Instance) ([]Op, error) {
	if in == nil {
		return nil, fmt.Errorf("static: cannot export a nil instance")
	}
	desc := in.Class().Interface()
	ops := make([]Op, 0, len(desc.Methods))
	for _, sig := range desc.Methods {
		sig := sig
		ops = append(ops, Op{
			Name:   sig.Name,
			Params: sig.Params,
			Result: sig.Result,
			Fn: func(args []dyn.Value) (dyn.Value, error) {
				// Frozen dispatch: the exported operation keeps its
				// export-time name even if the class renames it later.
				return in.Invoke(sig.Name, args...)
			},
		})
	}
	return ops, nil
}

// ExportSOAP builds a static SOAP server from a dynamic instance's current
// distributed interface.
func ExportSOAP(in *dyn.Instance) (*SOAPServer, error) {
	ops, err := Export(in)
	if err != nil {
		return nil, err
	}
	return NewSOAPServer("urn:"+in.Class().Name(), ops)
}

// ExportCORBA builds a static CORBA server from a dynamic instance's
// current distributed interface.
func ExportCORBA(in *dyn.Instance) (*CORBAServer, error) {
	ops, err := Export(in)
	if err != nil {
		return nil, err
	}
	name := in.Class().Name()
	typeID := fmt.Sprintf("IDL:%sModule/%s:1.0", name, name)
	return NewCORBAServer(typeID, []byte(name), ops)
}
