package static

import (
	"errors"
	"strings"
	"testing"

	"livedev/internal/dyn"
	"livedev/internal/orb"
	"livedev/internal/soap"
)

func calcOps() []Op {
	return []Op{
		{
			Name:   "add",
			Params: []dyn.Param{{Name: "a", Type: dyn.Int32T}, {Name: "b", Type: dyn.Int32T}},
			Result: dyn.Int32T,
			Fn: func(args []dyn.Value) (dyn.Value, error) {
				return dyn.Int32Value(args[0].Int32() + args[1].Int32()), nil
			},
		},
		{
			Name:   "echo",
			Params: []dyn.Param{{Name: "s", Type: dyn.StringT}},
			Result: dyn.StringT,
			Fn: func(args []dyn.Value) (dyn.Value, error) {
				return args[0], nil
			},
		},
		{
			Name: "boom",
			Fn: func([]dyn.Value) (dyn.Value, error) {
				return dyn.Value{}, errors.New("static kaboom")
			},
			Result: dyn.StringT,
		},
		{
			Name: "ping",
			Fn: func([]dyn.Value) (dyn.Value, error) {
				return dyn.VoidValue(), nil
			},
		},
	}
}

func TestStaticSOAPServer(t *testing.T) {
	s, err := NewSOAPServer("urn:Calc", calcOps())
	if err != nil {
		t.Fatal(err)
	}
	endpoint, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Endpoint() != endpoint {
		t.Error("Endpoint()")
	}

	client := &soap.Client{Endpoint: endpoint, ServiceNS: "urn:Calc"}
	got, err := client.Call("add", []soap.NamedValue{
		{Name: "a", Value: dyn.Int32Value(20)},
		{Name: "b", Value: dyn.Int32Value(22)},
	}, dyn.Int32T)
	if err != nil || got.Int32() != 42 {
		t.Errorf("add = %v, %v", got, err)
	}

	// Void result.
	if _, err := client.Call("ping", nil, dyn.Void); err != nil {
		t.Errorf("ping: %v", err)
	}

	// Unknown method → Non existent Method fault (static servers do not
	// run the forced-publication protocol, they just fault).
	_, err = client.Call("ghost", nil, dyn.Int32T)
	if !soap.IsNonExistentMethod(err) {
		t.Errorf("ghost: %v", err)
	}

	// Application error.
	_, err = client.Call("boom", nil, dyn.StringT)
	var fault *soap.Fault
	if !errors.As(err, &fault) || !strings.Contains(fault.String, "static kaboom") {
		t.Errorf("boom: %v", err)
	}

	// Arity mismatch is a fault, not a hang.
	_, err = client.Call("add", []soap.NamedValue{{Name: "a", Value: dyn.Int32Value(1)}}, dyn.Int32T)
	if err == nil {
		t.Error("arity mismatch should fault")
	}
}

func TestStaticCORBAServer(t *testing.T) {
	s, err := NewCORBAServer("IDL:CalcModule/Calc:1.0", []byte("calc"), calcOps())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	client, err := orb.DialIOR(ref)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	addSig := dyn.MethodSig{
		Name:   "add",
		Params: []dyn.Param{{Name: "a", Type: dyn.Int32T}, {Name: "b", Type: dyn.Int32T}},
		Result: dyn.Int32T,
	}
	got, err := client.Invoke(addSig, []dyn.Value{dyn.Int32Value(40), dyn.Int32Value(2)})
	if err != nil || got.Int32() != 42 {
		t.Errorf("add = %v, %v", got, err)
	}

	// Unknown op → BAD_OPERATION.
	_, err = client.Invoke(dyn.MethodSig{Name: "ghost", Result: dyn.Int32T}, nil)
	if !errors.Is(err, orb.ErrNonExistentMethod) {
		t.Errorf("ghost: %v", err)
	}

	// Application error → AppError.
	_, err = client.Invoke(dyn.MethodSig{Name: "boom", Result: dyn.StringT}, nil)
	var appErr *orb.AppError
	if !errors.As(err, &appErr) || !strings.Contains(appErr.Message, "static kaboom") {
		t.Errorf("boom: %v", err)
	}
}

func TestOpValidation(t *testing.T) {
	if _, err := NewSOAPServer("urn:X", []Op{{Name: ""}}); err == nil {
		t.Error("unnamed op should fail")
	}
	if _, err := NewSOAPServer("urn:X", []Op{{Name: "f"}}); err == nil {
		t.Error("op without fn should fail")
	}
	dup := []Op{
		{Name: "f", Fn: func([]dyn.Value) (dyn.Value, error) { return dyn.VoidValue(), nil }},
		{Name: "f", Fn: func([]dyn.Value) (dyn.Value, error) { return dyn.VoidValue(), nil }},
	}
	if _, err := NewSOAPServer("urn:X", dup); err == nil {
		t.Error("duplicate op should fail")
	}
	if _, err := NewCORBAServer("IDL:X:1.0", nil, dup); err == nil {
		t.Error("duplicate CORBA op should fail")
	}
	if _, err := NewCORBAServer("IDL:X:1.0", nil, []Op{{Name: "f"}}); err == nil {
		t.Error("CORBA op without fn should fail")
	}

	op := Op{Name: "f", Fn: func([]dyn.Value) (dyn.Value, error) { return dyn.VoidValue(), nil }}
	if op.Sig().Result.Kind() != dyn.KindVoid {
		t.Error("nil result should normalize to void")
	}
}

func TestStaticServerCloseIdempotent(t *testing.T) {
	s, err := NewSOAPServer("urn:X", calcOps())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // close before start is a no-op
		t.Errorf("close before start: %v", err)
	}
	if _, err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}
