// Package iiop implements the Internet Inter-ORB Protocol transport: GIOP
// messages over TCP. The Server side accepts connections and dispatches
// each Request to a Handler on its own goroutine (the paper's call handlers
// are "completely multithreaded", Section 5.4); the Conn side is a client
// connection that multiplexes concurrent requests by request ID.
package iiop

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"livedev/internal/cdr"
	"livedev/internal/giop"
)

// Handler processes one GIOP request and returns the reply message. args is
// positioned at the first argument octet. Implementations must be safe for
// concurrent use.
//
// ctx is the request's context: it is cancelled when the peer sends a GIOP
// CancelRequest for this request ID (the client's invoking context was
// cancelled), when the connection drops, or when the server shuts down.
// Handlers may consult it to abandon work whose reply nobody will read.
//
// Buffer lifetime: the request header's ObjectKey/Principal slices and the
// args decoder alias a pooled message buffer that is recycled after
// HandleRequest returns and the reply is written. Handlers must not retain
// them; decoded values (cdr.DecodeValue, Read* copies) are safe to keep.
// ctx is pooled the same way: it must not be retained (or handed to
// goroutines that outlive the call) after HandleRequest returns.
type Handler interface {
	HandleRequest(ctx context.Context, h giop.RequestHeader, args *cdr.Decoder, order cdr.ByteOrder) giop.Message
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ctx context.Context, h giop.RequestHeader, args *cdr.Decoder, order cdr.ByteOrder) giop.Message

// HandleRequest implements Handler.
func (f HandlerFunc) HandleRequest(ctx context.Context, h giop.RequestHeader, args *cdr.Decoder, order cdr.ByteOrder) giop.Message {
	return f(ctx, h, args, order)
}

var _ Handler = (HandlerFunc)(nil)

// Server accepts IIOP connections and dispatches requests to a Handler.
type Server struct {
	handler Handler

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a server that will dispatch to handler.
func NewServer(handler Handler) *Server {
	return &Server{handler: handler, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting on addr ("host:port"; port 0 picks a free port)
// and returns the bound address. Serving happens on background goroutines
// owned by the server; Close joins them.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("iiop: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return nil, errors.New("iiop: server already closed")
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var writeMu sync.Mutex
	var reqWG sync.WaitGroup
	// inflight maps request IDs to their pooled request contexts so a
	// CancelRequest from the peer aborts exactly the request it names.
	// Cancels run while holding inflightMu; a request is unregistered under
	// the same mutex before its context is recycled, which is what makes
	// the pooled contexts safe (no cancel can land on a reused context).
	var inflightMu sync.Mutex
	inflight := make(map[uint32]*reqCtx)
	defer func() {
		// Connection teardown (including server shutdown, which closes the
		// conn): cancel whatever is still running, then join. The read loop
		// has exited, so no new registrations can race this sweep.
		inflightMu.Lock()
		for _, rc := range inflight {
			rc.cancel(context.Canceled)
		}
		inflightMu.Unlock()
		reqWG.Wait()
	}()
	for {
		msg, err := giop.ReadMessagePooled(conn)
		if err != nil {
			return // EOF, protocol error, or connection closed
		}
		switch msg.Type {
		case giop.MsgRequest:
			hdr, args, err := giop.DecodeRequest(msg)
			if err != nil {
				// Unparseable request header: signal and drop the conn.
				msg.Recycle()
				writeMu.Lock()
				_ = giop.WriteMessage(conn, giop.Message{Type: giop.MsgMessageError, Order: msg.Order})
				writeMu.Unlock()
				return
			}
			rc := newReqCtx()
			inflightMu.Lock()
			inflight[hdr.RequestID] = rc
			inflightMu.Unlock()
			reqWG.Add(1)
			go func() {
				defer reqWG.Done()
				reply := s.handler.HandleRequest(rc, hdr, args, msg.Order)
				id := hdr.RequestID
				responseExpected := hdr.ResponseExpected
				// The handler is done with the request body (hdr and args
				// alias it; decoded values are copies).
				msg.Recycle()
				inflightMu.Lock()
				delete(inflight, id)
				inflightMu.Unlock()
				// Unregistered under the mutex: no cancel holds a reference
				// any more, so the context can be pooled for the next
				// request.
				rc.recycle()
				if !responseExpected {
					reply.Recycle()
					return
				}
				writeMu.Lock()
				_ = giop.WriteMessage(conn, reply)
				writeMu.Unlock()
				reply.Recycle()
			}()
		case giop.MsgCancelRequest:
			id, err := giop.DecodeCancelRequest(msg)
			msg.Recycle()
			if err != nil {
				continue // malformed cancel: ignore, it is advisory
			}
			inflightMu.Lock()
			if rc := inflight[id]; rc != nil {
				rc.cancel(context.Canceled)
			}
			inflightMu.Unlock()
		case giop.MsgCloseConnection:
			msg.Recycle()
			return
		default:
			// LocateRequest etc. are not needed by the SDE; reply with
			// MessageError per GIOP for unexpected types.
			msg.Recycle()
			writeMu.Lock()
			_ = giop.WriteMessage(conn, giop.Message{Type: giop.MsgMessageError, Order: msg.Order})
			writeMu.Unlock()
		}
	}
}

// Close stops accepting, closes all connections, and joins every serving
// goroutine.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}
