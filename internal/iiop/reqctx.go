package iiop

import (
	"context"
	"sync"
	"time"
)

// reqCtx is a pooled, lazily-channelled context.Context for one server-side
// request — the cheap replacement for the context.WithCancel pair the
// server used to allocate per request (~2 allocs/op on the CORBA Table 1
// rows). It is parentless: the connection's read loop cancels every
// in-flight reqCtx explicitly on teardown, and cancel/recycle are
// serialized by the connection's inflight mutex, so no goroutine or parent
// registration is needed. The done channel is only allocated if a handler
// actually selects on Done(); Err-polling handlers (the common case) pay
// zero allocations.
type reqCtx struct {
	mu   sync.Mutex
	done chan struct{} // lazily allocated by Done
	err  error
}

var _ context.Context = (*reqCtx)(nil)

var reqCtxPool = sync.Pool{New: func() any { return new(reqCtx) }}

// newReqCtx draws a reset request context from the pool.
func newReqCtx() *reqCtx { return reqCtxPool.Get().(*reqCtx) }

// recycle returns the context to the pool. The caller must guarantee no
// cancel can be in flight (the server holds the inflight mutex across both
// cancel and unregistration) and that the handler has returned — handlers
// must not retain ctx beyond HandleRequest.
func (c *reqCtx) recycle() {
	c.mu.Lock()
	c.done = nil
	c.err = nil
	c.mu.Unlock()
	reqCtxPool.Put(c)
}

// cancel makes Err return err and closes the done channel if one exists.
// Idempotent; later cancels keep the first error.
func (c *reqCtx) cancel(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		if c.done != nil {
			close(c.done)
		}
	}
	c.mu.Unlock()
}

// Deadline implements context.Context (request contexts carry none).
func (c *reqCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

// Done implements context.Context, allocating the channel on first use.
func (c *reqCtx) Done() <-chan struct{} {
	c.mu.Lock()
	if c.done == nil {
		c.done = make(chan struct{})
		if c.err != nil {
			close(c.done)
		}
	}
	d := c.done
	c.mu.Unlock()
	return d
}

// Err implements context.Context.
func (c *reqCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Value implements context.Context.
func (c *reqCtx) Value(any) any { return nil }
