package iiop

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"livedev/internal/cdr"
	"livedev/internal/giop"
)

// TestServerSurvivesGarbage writes assorted garbage to the server's port;
// the server must drop those connections cleanly and keep serving valid
// clients.
func TestServerSurvivesGarbage(t *testing.T) {
	addr, stop := startServer(t, echoHandler())
	defer stop()

	payloads := [][]byte{
		[]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"), // wrong protocol entirely
		[]byte("GIOP"), // truncated header
		{'G', 'I', 'O', 'P', 9, 9, 0, 0, 0, 0, 0, 0},             // absurd version
		{'G', 'I', 'O', 'P', 1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}, // hostile size
		make([]byte, 64), // zeros
	}
	r := rand.New(rand.NewSource(5))
	junk := make([]byte, 512)
	r.Read(junk)
	payloads = append(payloads, junk)

	for i, p := range payloads {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("payload %d: dial: %v", i, err)
		}
		_, _ = conn.Write(p)
		// Read whatever comes back (MessageError or close) with a bound.
		_ = conn.SetReadDeadline(time.Now().Add(time.Second))
		buf := make([]byte, 64)
		_, _ = conn.Read(buf)
		_ = conn.Close()
	}

	// A valid client still works.
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	h, body, err := conn.Invoke(context.Background(), nil, "echo", cdr.BigEndian, func(e *cdr.Encoder) error {
		e.WriteString("ok")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != giop.ReplyNoException {
		t.Fatalf("status = %v", h.Status)
	}
	if s, _ := body.ReadString(); s != "okok" {
		t.Errorf("echo = %q", s)
	}
}

// TestServerRejectsUnparseableRequestHeader sends a well-framed GIOP
// Request whose body is not a valid request header: the server answers
// MessageError and drops the connection.
func TestServerRejectsUnparseableRequestHeader(t *testing.T) {
	addr, stop := startServer(t, echoHandler())
	defer stop()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	msg := giop.Message{Type: giop.MsgRequest, Order: cdr.BigEndian, Body: []byte{0xFF}}
	if err := giop.WriteMessage(raw, msg); err != nil {
		t.Fatal(err)
	}
	reply, err := giop.ReadMessage(raw)
	if err != nil {
		t.Fatalf("expected a MessageError reply, got read error %v", err)
	}
	if reply.Type != giop.MsgMessageError {
		t.Errorf("reply type = %v", reply.Type)
	}
}

// TestServerAnswersUnexpectedMessageTypes: LocateRequest and friends get
// MessageError, not silence.
func TestServerAnswersUnexpectedMessageTypes(t *testing.T) {
	addr, stop := startServer(t, echoHandler())
	defer stop()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	msg := giop.Message{Type: giop.MsgLocateRequest, Order: cdr.BigEndian}
	if err := giop.WriteMessage(raw, msg); err != nil {
		t.Fatal(err)
	}
	reply, err := giop.ReadMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != giop.MsgMessageError {
		t.Errorf("reply type = %v", reply.Type)
	}
}

// TestClientHandlesCloseConnection: a server-initiated CloseConnection
// fails pending invocations with ErrConnClosed.
func TestClientHandlesCloseConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		// Read the request, then slam the door GIOP-style.
		_, _ = giop.ReadMessage(c)
		_ = giop.WriteMessage(c, giop.Message{Type: giop.MsgCloseConnection, Order: cdr.BigEndian})
		_ = c.Close()
	}()

	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, _, err = conn.Invoke(context.Background(), nil, "anything", cdr.BigEndian, nil)
	if err == nil {
		t.Fatal("invocation against closing server should fail")
	}
}

// TestClientHandlesGarbageReply: a server that answers with garbage fails
// the client cleanly (no hang, no panic).
func TestClientHandlesGarbageReply(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		_, _ = giop.ReadMessage(c)
		_, _ = c.Write([]byte("not a giop message at all, sorry"))
		_ = c.Close()
	}()

	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	done := make(chan error, 1)
	go func() {
		_, _, err := conn.Invoke(context.Background(), nil, "anything", cdr.BigEndian, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("garbage reply should fail the invocation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("invocation hung on garbage reply")
	}
}
