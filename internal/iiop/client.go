package iiop

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"livedev/internal/cdr"
	"livedev/internal/giop"
)

// ErrConnClosed reports an invocation attempted on (or interrupted by) a
// closed connection.
var ErrConnClosed = errors.New("iiop: connection closed")

// callSlot is a pooled per-request rendezvous between Invoke and the read
// loop. The channel carries exactly one message per registration: the
// matching Reply, or a non-Reply sentinel meaning "connection failed, read
// cn.readErr". Slots go back to the pool once that message is consumed, so
// steady-state invocation allocates neither a channel nor a map of channels.
type callSlot struct {
	ch chan giop.Message
}

var slotPool = sync.Pool{
	New: func() any { return &callSlot{ch: make(chan giop.Message, 1)} },
}

// The pending-reply table is sharded by request ID so concurrent invokers
// multiplexed over one connection do not serialize on a single map mutex:
// register, reply routing, and abandon each lock only the shard the ID
// hashes to. 16 shards comfortably exceeds the point where the shared-map
// mutex stopped being the bottleneck (see BenchmarkConnInvokeParallel).
const (
	numShards = 16
	shardMask = numShards - 1
)

// pendingShard is one slice of the pending-reply table. A nil map marks the
// connection as failed: registrations that arrive after failAll swept the
// shard observe the nil and report the recorded error instead of parking a
// slot nothing will ever wake.
type pendingShard struct {
	mu sync.Mutex
	m  map[uint32]*callSlot
	_  [48]byte // pad to a cache line so shards don't false-share
}

// Conn is a client-side IIOP connection. Concurrent Invoke calls are
// multiplexed over the single TCP stream by GIOP request ID.
type Conn struct {
	c net.Conn

	writeMu sync.Mutex

	nextID atomic.Uint32
	shards [numShards]pendingShard

	stateMu sync.Mutex
	closed  bool
	readErr error

	readerDone chan struct{}
}

// Broken reports whether the connection is no longer usable: closed, or
// its read loop died (peer went away, protocol error). Invokes on a broken
// connection fail fast; pools use this to evict dead connections.
func (cn *Conn) Broken() bool {
	cn.stateMu.Lock()
	defer cn.stateMu.Unlock()
	return cn.closed || cn.readErr != nil
}

// Dial is DialContext with a background context.
func Dial(addr string) (*Conn, error) {
	return DialContext(context.Background(), addr)
}

// DialContext opens an IIOP connection to addr ("host:port"). The TCP
// connect is bounded by ctx: cancellation or deadline expiry aborts it.
func DialContext(ctx context.Context, addr string) (*Conn, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("iiop: dial %s: %w", addr, err)
	}
	conn := &Conn{
		c:          c,
		readerDone: make(chan struct{}),
	}
	for i := range conn.shards {
		conn.shards[i].m = make(map[uint32]*callSlot)
	}
	go conn.readLoop()
	return conn, nil
}

func (cn *Conn) shard(id uint32) *pendingShard { return &cn.shards[id&shardMask] }

func (cn *Conn) readLoop() {
	defer close(cn.readerDone)
	for {
		msg, err := giop.ReadMessagePooled(cn.c)
		if err != nil {
			cn.failAll(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		switch msg.Type {
		case giop.MsgReply:
			hdr, _, err := giop.DecodeReply(msg)
			if err != nil {
				msg.Recycle()
				cn.failAll(fmt.Errorf("iiop: undecodable reply: %w", err))
				return
			}
			sh := cn.shard(hdr.RequestID)
			sh.mu.Lock()
			slot, ok := sh.m[hdr.RequestID]
			if ok {
				delete(sh.m, hdr.RequestID)
			}
			sh.mu.Unlock()
			if ok {
				slot.ch <- msg
			} else {
				// Abandoned (cancelled context) or unknown: drop it.
				msg.Recycle()
			}
		case giop.MsgCloseConnection:
			msg.Recycle()
			cn.failAll(ErrConnClosed)
			return
		case giop.MsgMessageError:
			msg.Recycle()
			cn.failAll(errors.New("iiop: peer reported message error"))
			return
		default:
			// Ignore unexpected message types from the server.
			msg.Recycle()
		}
	}
}

// failSentinel is the non-Reply message failAll delivers to wake pending
// invokers; on receiving it they consult cn.readErr.
var failSentinel = giop.Message{Type: giop.MsgMessageError}

// failAll wakes every pending invoker with an error by delivering the fail
// sentinel after recording the error, and marks each shard dead (nil map) so
// late registrations fail fast. Each slot's channel has space: a slot
// receives at most one message per registration (reply routing removes it
// from the map first).
func (cn *Conn) failAll(err error) {
	cn.stateMu.Lock()
	if cn.readErr == nil {
		cn.readErr = err
	}
	cn.stateMu.Unlock()
	for i := range cn.shards {
		sh := &cn.shards[i]
		sh.mu.Lock()
		pending := sh.m
		sh.m = nil
		sh.mu.Unlock()
		for _, slot := range pending {
			slot.ch <- failSentinel
		}
	}
}

// deadErr reports why the connection is unusable.
func (cn *Conn) deadErr() error {
	cn.stateMu.Lock()
	defer cn.stateMu.Unlock()
	if cn.readErr != nil {
		return cn.readErr
	}
	return ErrConnClosed
}

// register allocates a request ID and parks a pooled slot for its reply.
func (cn *Conn) register() (uint32, *callSlot, error) {
	slot := slotPool.Get().(*callSlot)
	id := cn.nextID.Add(1)
	sh := cn.shard(id)
	sh.mu.Lock()
	if sh.m == nil {
		sh.mu.Unlock()
		slotPool.Put(slot)
		return 0, nil, cn.deadErr()
	}
	sh.m[id] = slot
	sh.mu.Unlock()
	return id, slot, nil
}

// send encodes and writes the request message for an already-registered ID.
func (cn *Conn) send(id uint32, objectKey []byte, operation string, order cdr.ByteOrder, args func(*cdr.Encoder) error) error {
	// objectKey is encoded into the body before EncodeRequest returns, so
	// no defensive copy is needed.
	req, err := giop.EncodeRequest(order, giop.RequestHeader{
		RequestID:        id,
		ResponseExpected: true,
		ObjectKey:        objectKey,
		Operation:        operation,
	}, args)
	if err != nil {
		return err
	}
	cn.writeMu.Lock()
	err = giop.WriteMessage(cn.c, req)
	cn.writeMu.Unlock()
	req.Recycle()
	if err != nil {
		return fmt.Errorf("iiop: sending request: %w", err)
	}
	return nil
}

// await blocks until the slot delivers the reply (or the fail sentinel), or
// ctx is cancelled. On cancellation the request is abandoned — a GIOP
// CancelRequest is sent so the server can stop working on it, the eventual
// reply (if any) is drained off-thread, and the returned error wraps
// ctx.Err().
func (cn *Conn) await(ctx context.Context, id uint32, order cdr.ByteOrder, slot *callSlot) (giop.Message, error) {
	select {
	case msg := <-slot.ch:
		slotPool.Put(slot)
		if msg.Type != giop.MsgReply {
			return giop.Message{}, cn.deadErr()
		}
		return msg, nil
	case <-ctx.Done():
		cn.cancelRequest(id, order)
		cn.abandon(id, slot)
		return giop.Message{}, fmt.Errorf("iiop: invocation aborted: %w", ctx.Err())
	}
}

// cancelRequest best-effort notifies the server that the reply for id is no
// longer wanted. The write happens on a detached goroutine: the caller is
// on the cancellation path and must return promptly even if the peer has
// stopped draining its socket (a blocking write here would also wedge
// writeMu for every other invoker). If the connection dies first the write
// simply fails.
func (cn *Conn) cancelRequest(id uint32, order cdr.ByteOrder) {
	go func() {
		msg := giop.EncodeCancelRequest(order, id)
		cn.writeMu.Lock()
		_ = giop.WriteMessage(cn.c, msg)
		cn.writeMu.Unlock()
		msg.Recycle()
	}()
}

// Invoke sends a GIOP request for operation on objectKey, with arguments
// encoded by args (may be nil), and waits for the matching reply. ctx
// cancellation or deadline expiry aborts the wait (the connection stays
// usable; the late reply is dropped when it arrives). It returns the reply
// header and a decoder positioned at the reply body. The reply body is
// caller-owned (never recycled), so the decoder stays valid indefinitely;
// latency-sensitive callers should prefer InvokeInto, which recycles the
// body buffer.
func (cn *Conn) Invoke(ctx context.Context, objectKey []byte, operation string, order cdr.ByteOrder, args func(*cdr.Encoder) error) (giop.ReplyHeader, *cdr.Decoder, error) {
	if err := ctx.Err(); err != nil {
		return giop.ReplyHeader{}, nil, fmt.Errorf("iiop: invocation aborted: %w", err)
	}
	id, slot, err := cn.register()
	if err != nil {
		return giop.ReplyHeader{}, nil, err
	}
	if err := cn.send(id, objectKey, operation, order, args); err != nil {
		cn.abandon(id, slot)
		return giop.ReplyHeader{}, nil, err
	}
	msg, err := cn.await(ctx, id, order, slot)
	if err != nil {
		return giop.ReplyHeader{}, nil, err
	}
	// Detach the body from the pool: the returned decoder outlives this
	// call, so the buffer must not be reused under it.
	msg.Disown()
	return giop.DecodeReply(msg)
}

// InvokeInto is Invoke with scoped reply ownership: reply is called with
// the reply header and body decoder, and the pooled body buffer is recycled
// as soon as reply returns. Values that must outlive the call have to be
// copied inside reply (the plain cdr Read*/DecodeValue paths already copy).
func (cn *Conn) InvokeInto(ctx context.Context, objectKey []byte, operation string, order cdr.ByteOrder, args func(*cdr.Encoder) error, reply func(giop.ReplyHeader, *cdr.Decoder) error) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("iiop: invocation aborted: %w", err)
	}
	id, slot, err := cn.register()
	if err != nil {
		return err
	}
	if err := cn.send(id, objectKey, operation, order, args); err != nil {
		cn.abandon(id, slot)
		return err
	}
	msg, err := cn.await(ctx, id, order, slot)
	if err != nil {
		return err
	}
	hdr, body, err := giop.DecodeReply(msg)
	if err != nil {
		msg.Recycle()
		return err
	}
	err = reply(hdr, body)
	msg.Recycle()
	return err
}

// abandon unregisters a request that failed before (or instead of) waiting
// for its reply. If the read loop (or failAll) already claimed the slot for
// delivery, the message is guaranteed to arrive; drain it off-thread — an
// abandoning caller, e.g. one whose context was cancelled mid-call against a
// slow server, must not block on the server's schedule — and pool the slot
// once consumed.
func (cn *Conn) abandon(id uint32, slot *callSlot) {
	sh := cn.shard(id)
	sh.mu.Lock()
	var present bool
	if sh.m != nil {
		if _, present = sh.m[id]; present {
			delete(sh.m, id)
		}
	}
	sh.mu.Unlock()
	if !present {
		go func() {
			msg := <-slot.ch
			msg.Recycle()
			slotPool.Put(slot)
		}()
		return
	}
	slotPool.Put(slot)
}

// Close tears down the connection and joins the read loop. In-flight
// invocations fail with ErrConnClosed.
func (cn *Conn) Close() error {
	cn.stateMu.Lock()
	if cn.closed {
		cn.stateMu.Unlock()
		return nil
	}
	cn.closed = true
	cn.stateMu.Unlock()
	err := cn.c.Close()
	<-cn.readerDone
	return err
}
