package iiop

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"livedev/internal/cdr"
	"livedev/internal/giop"
)

// ErrConnClosed reports an invocation attempted on (or interrupted by) a
// closed connection.
var ErrConnClosed = errors.New("iiop: connection closed")

// callSlot is a pooled per-request rendezvous between Invoke and the read
// loop. The channel carries exactly one message per registration: the
// matching Reply, or a non-Reply sentinel meaning "connection failed, read
// cn.readErr". Slots go back to the pool once that message is consumed, so
// steady-state invocation allocates neither a channel nor a map of channels.
type callSlot struct {
	ch chan giop.Message
}

var slotPool = sync.Pool{
	New: func() any { return &callSlot{ch: make(chan giop.Message, 1)} },
}

// Conn is a client-side IIOP connection. Concurrent Invoke calls are
// multiplexed over the single TCP stream by GIOP request ID.
type Conn struct {
	c net.Conn

	writeMu sync.Mutex

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]*callSlot
	closed  bool
	readErr error

	readerDone chan struct{}
}

// Dial opens an IIOP connection to addr ("host:port").
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("iiop: dial %s: %w", addr, err)
	}
	conn := &Conn{
		c:          c,
		nextID:     1,
		pending:    make(map[uint32]*callSlot),
		readerDone: make(chan struct{}),
	}
	go conn.readLoop()
	return conn, nil
}

func (cn *Conn) readLoop() {
	defer close(cn.readerDone)
	for {
		msg, err := giop.ReadMessagePooled(cn.c)
		if err != nil {
			cn.failAll(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		switch msg.Type {
		case giop.MsgReply:
			hdr, _, err := giop.DecodeReply(msg)
			if err != nil {
				msg.Recycle()
				cn.failAll(fmt.Errorf("iiop: undecodable reply: %w", err))
				return
			}
			cn.mu.Lock()
			slot, ok := cn.pending[hdr.RequestID]
			if ok {
				delete(cn.pending, hdr.RequestID)
			}
			cn.mu.Unlock()
			if ok {
				slot.ch <- msg
			} else {
				msg.Recycle()
			}
		case giop.MsgCloseConnection:
			msg.Recycle()
			cn.failAll(ErrConnClosed)
			return
		case giop.MsgMessageError:
			msg.Recycle()
			cn.failAll(errors.New("iiop: peer reported message error"))
			return
		default:
			// Ignore unexpected message types from the server.
			msg.Recycle()
		}
	}
}

// failSentinel is the non-Reply message failAll delivers to wake pending
// invokers; on receiving it they consult cn.readErr.
var failSentinel = giop.Message{Type: giop.MsgMessageError}

// failAll wakes every pending invoker with an error by delivering the fail
// sentinel after recording the error. Each slot's channel has space: a slot
// receives at most one message per registration (reply routing removes it
// from the map first).
func (cn *Conn) failAll(err error) {
	cn.mu.Lock()
	if cn.readErr == nil {
		cn.readErr = err
	}
	pending := cn.pending
	cn.pending = make(map[uint32]*callSlot)
	cn.mu.Unlock()
	for _, slot := range pending {
		slot.ch <- failSentinel
	}
}

// register allocates a request ID and parks a pooled slot for its reply.
func (cn *Conn) register() (uint32, *callSlot, error) {
	slot := slotPool.Get().(*callSlot)
	cn.mu.Lock()
	if cn.closed {
		cn.mu.Unlock()
		slotPool.Put(slot)
		return 0, nil, ErrConnClosed
	}
	if cn.readErr != nil {
		err := cn.readErr
		cn.mu.Unlock()
		slotPool.Put(slot)
		return 0, nil, err
	}
	id := cn.nextID
	cn.nextID++
	cn.pending[id] = slot
	cn.mu.Unlock()
	return id, slot, nil
}

// send encodes and writes the request message for an already-registered ID.
func (cn *Conn) send(id uint32, objectKey []byte, operation string, order cdr.ByteOrder, args func(*cdr.Encoder) error) error {
	// objectKey is encoded into the body before EncodeRequest returns, so
	// no defensive copy is needed.
	req, err := giop.EncodeRequest(order, giop.RequestHeader{
		RequestID:        id,
		ResponseExpected: true,
		ObjectKey:        objectKey,
		Operation:        operation,
	}, args)
	if err != nil {
		return err
	}
	cn.writeMu.Lock()
	err = giop.WriteMessage(cn.c, req)
	cn.writeMu.Unlock()
	req.Recycle()
	if err != nil {
		return fmt.Errorf("iiop: sending request: %w", err)
	}
	return nil
}

// await blocks until the slot delivers the reply (or the fail sentinel),
// returning the slot to the pool when the message has been consumed is the
// caller's job via recycleSlot.
func (cn *Conn) await(slot *callSlot) (giop.Message, error) {
	msg := <-slot.ch
	if msg.Type != giop.MsgReply {
		slotPool.Put(slot)
		cn.mu.Lock()
		err := cn.readErr
		cn.mu.Unlock()
		if err == nil {
			err = ErrConnClosed
		}
		return giop.Message{}, err
	}
	slotPool.Put(slot)
	return msg, nil
}

// Invoke sends a GIOP request for operation on objectKey, with arguments
// encoded by args (may be nil), and waits for the matching reply. It
// returns the reply header and a decoder positioned at the reply body. The
// reply body is caller-owned (never recycled), so the decoder stays valid
// indefinitely; latency-sensitive callers should prefer InvokeInto, which
// recycles the body buffer.
func (cn *Conn) Invoke(objectKey []byte, operation string, order cdr.ByteOrder, args func(*cdr.Encoder) error) (giop.ReplyHeader, *cdr.Decoder, error) {
	id, slot, err := cn.register()
	if err != nil {
		return giop.ReplyHeader{}, nil, err
	}
	if err := cn.send(id, objectKey, operation, order, args); err != nil {
		cn.abandon(id, slot)
		return giop.ReplyHeader{}, nil, err
	}
	msg, err := cn.await(slot)
	if err != nil {
		return giop.ReplyHeader{}, nil, err
	}
	// Detach the body from the pool: the returned decoder outlives this
	// call, so the buffer must not be reused under it.
	msg.Disown()
	return giop.DecodeReply(msg)
}

// InvokeInto is Invoke with scoped reply ownership: reply is called with
// the reply header and body decoder, and the pooled body buffer is recycled
// as soon as reply returns. Values that must outlive the call have to be
// copied inside reply (the plain cdr Read*/DecodeValue paths already copy).
func (cn *Conn) InvokeInto(objectKey []byte, operation string, order cdr.ByteOrder, args func(*cdr.Encoder) error, reply func(giop.ReplyHeader, *cdr.Decoder) error) error {
	id, slot, err := cn.register()
	if err != nil {
		return err
	}
	if err := cn.send(id, objectKey, operation, order, args); err != nil {
		cn.abandon(id, slot)
		return err
	}
	msg, err := cn.await(slot)
	if err != nil {
		return err
	}
	hdr, body, err := giop.DecodeReply(msg)
	if err != nil {
		msg.Recycle()
		return err
	}
	err = reply(hdr, body)
	msg.Recycle()
	return err
}

// abandon unregisters a request that failed before (or instead of) waiting
// for its reply. If the read loop already claimed the slot for delivery,
// the message is guaranteed to arrive; consume it so the slot can be
// pooled again.
func (cn *Conn) abandon(id uint32, slot *callSlot) {
	cn.mu.Lock()
	_, present := cn.pending[id]
	if present {
		delete(cn.pending, id)
	}
	cn.mu.Unlock()
	if !present {
		// Reply or fail sentinel is in flight: drain it.
		msg := <-slot.ch
		msg.Recycle()
	}
	slotPool.Put(slot)
}

// Close tears down the connection and joins the read loop. In-flight
// invocations fail with ErrConnClosed.
func (cn *Conn) Close() error {
	cn.mu.Lock()
	if cn.closed {
		cn.mu.Unlock()
		return nil
	}
	cn.closed = true
	cn.mu.Unlock()
	err := cn.c.Close()
	<-cn.readerDone
	return err
}
