package iiop

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"livedev/internal/cdr"
	"livedev/internal/giop"
)

// ErrConnClosed reports an invocation attempted on (or interrupted by) a
// closed connection.
var ErrConnClosed = errors.New("iiop: connection closed")

// Conn is a client-side IIOP connection. Concurrent Invoke calls are
// multiplexed over the single TCP stream by GIOP request ID.
type Conn struct {
	c net.Conn

	writeMu sync.Mutex

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan giop.Message
	closed  bool
	readErr error

	readerDone chan struct{}
}

// Dial opens an IIOP connection to addr ("host:port").
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("iiop: dial %s: %w", addr, err)
	}
	conn := &Conn{
		c:          c,
		nextID:     1,
		pending:    make(map[uint32]chan giop.Message),
		readerDone: make(chan struct{}),
	}
	go conn.readLoop()
	return conn, nil
}

func (cn *Conn) readLoop() {
	defer close(cn.readerDone)
	for {
		msg, err := giop.ReadMessage(cn.c)
		if err != nil {
			cn.failAll(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		switch msg.Type {
		case giop.MsgReply:
			hdr, _, err := giop.DecodeReply(msg)
			if err != nil {
				cn.failAll(fmt.Errorf("iiop: undecodable reply: %w", err))
				return
			}
			cn.mu.Lock()
			ch, ok := cn.pending[hdr.RequestID]
			if ok {
				delete(cn.pending, hdr.RequestID)
			}
			cn.mu.Unlock()
			if ok {
				ch <- msg
			}
		case giop.MsgCloseConnection:
			cn.failAll(ErrConnClosed)
			return
		case giop.MsgMessageError:
			cn.failAll(errors.New("iiop: peer reported message error"))
			return
		default:
			// Ignore unexpected message types from the server.
		}
	}
}

// failAll wakes every pending invoker with an error by closing their
// channels after recording the error.
func (cn *Conn) failAll(err error) {
	cn.mu.Lock()
	if cn.readErr == nil {
		cn.readErr = err
	}
	pending := cn.pending
	cn.pending = make(map[uint32]chan giop.Message)
	cn.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// Invoke sends a GIOP request for operation on objectKey, with arguments
// encoded by args (may be nil), and waits for the matching reply. It
// returns the reply header and a decoder positioned at the reply body.
func (cn *Conn) Invoke(objectKey []byte, operation string, order cdr.ByteOrder, args func(*cdr.Encoder) error) (giop.ReplyHeader, *cdr.Decoder, error) {
	cn.mu.Lock()
	if cn.closed {
		cn.mu.Unlock()
		return giop.ReplyHeader{}, nil, ErrConnClosed
	}
	if cn.readErr != nil {
		err := cn.readErr
		cn.mu.Unlock()
		return giop.ReplyHeader{}, nil, err
	}
	id := cn.nextID
	cn.nextID++
	ch := make(chan giop.Message, 1)
	cn.pending[id] = ch
	cn.mu.Unlock()

	req, err := giop.EncodeRequest(order, giop.RequestHeader{
		RequestID:        id,
		ResponseExpected: true,
		ObjectKey:        append([]byte(nil), objectKey...),
		Operation:        operation,
	}, args)
	if err != nil {
		cn.abandon(id)
		return giop.ReplyHeader{}, nil, err
	}

	cn.writeMu.Lock()
	err = giop.WriteMessage(cn.c, req)
	cn.writeMu.Unlock()
	if err != nil {
		cn.abandon(id)
		return giop.ReplyHeader{}, nil, fmt.Errorf("iiop: sending request: %w", err)
	}

	msg, ok := <-ch
	if !ok {
		cn.mu.Lock()
		err := cn.readErr
		cn.mu.Unlock()
		if err == nil {
			err = ErrConnClosed
		}
		return giop.ReplyHeader{}, nil, err
	}
	return giop.DecodeReply(msg)
}

func (cn *Conn) abandon(id uint32) {
	cn.mu.Lock()
	delete(cn.pending, id)
	cn.mu.Unlock()
}

// Close tears down the connection and joins the read loop. In-flight
// invocations fail with ErrConnClosed.
func (cn *Conn) Close() error {
	cn.mu.Lock()
	if cn.closed {
		cn.mu.Unlock()
		return nil
	}
	cn.closed = true
	cn.mu.Unlock()
	err := cn.c.Close()
	<-cn.readerDone
	return err
}
