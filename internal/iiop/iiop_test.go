package iiop

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"livedev/internal/cdr"
	"livedev/internal/giop"
)

// echoHandler replies with the request's string argument, doubled, and
// status NO_EXCEPTION; unknown operations get BAD_OPERATION.
func echoHandler() Handler {
	return HandlerFunc(func(_ context.Context, h giop.RequestHeader, args *cdr.Decoder, order cdr.ByteOrder) giop.Message {
		if h.Operation != "echo" {
			se := &giop.SystemException{RepoID: giop.RepoBadOperation, Minor: 1, Completed: giop.CompletedNo}
			msg, _ := giop.EncodeReply(order, giop.ReplyHeader{RequestID: h.RequestID, Status: giop.ReplySystemException}, se.Encode)
			return msg
		}
		s, err := args.ReadString()
		if err != nil {
			se := &giop.SystemException{RepoID: giop.RepoMarshal, Minor: 1, Completed: giop.CompletedNo}
			msg, _ := giop.EncodeReply(order, giop.ReplyHeader{RequestID: h.RequestID, Status: giop.ReplySystemException}, se.Encode)
			return msg
		}
		msg, _ := giop.EncodeReply(order, giop.ReplyHeader{RequestID: h.RequestID, Status: giop.ReplyNoException},
			func(e *cdr.Encoder) error {
				e.WriteString(s + s)
				return nil
			})
		return msg
	})
}

func startServer(t *testing.T, h Handler) (addr string, stop func()) {
	t.Helper()
	srv := NewServer(h)
	a, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return a.String(), func() { _ = srv.Close() }
}

func TestInvokeRoundTrip(t *testing.T) {
	addr, stop := startServer(t, echoHandler())
	defer stop()

	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	h, body, err := conn.Invoke(context.Background(), []byte("obj"), "echo", cdr.BigEndian, func(e *cdr.Encoder) error {
		e.WriteString("ab")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != giop.ReplyNoException {
		t.Fatalf("status = %v", h.Status)
	}
	if s, _ := body.ReadString(); s != "abab" {
		t.Errorf("result = %q", s)
	}
}

func TestInvokeSystemException(t *testing.T) {
	addr, stop := startServer(t, echoHandler())
	defer stop()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	h, body, err := conn.Invoke(context.Background(), nil, "nonexistent", cdr.BigEndian, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != giop.ReplySystemException {
		t.Fatalf("status = %v", h.Status)
	}
	se, err := giop.DecodeSystemException(body)
	if err != nil {
		t.Fatal(err)
	}
	if !giop.IsBadOperation(se) {
		t.Errorf("exception = %+v", se)
	}
}

func TestConcurrentInvocationsMultiplex(t *testing.T) {
	// A slow handler forces replies to arrive out of order relative to
	// request submission, exercising request-ID demultiplexing.
	h := HandlerFunc(func(_ context.Context, rh giop.RequestHeader, args *cdr.Decoder, order cdr.ByteOrder) giop.Message {
		n, _ := args.ReadLong()
		if n%2 == 0 {
			time.Sleep(10 * time.Millisecond)
		}
		msg, _ := giop.EncodeReply(order, giop.ReplyHeader{RequestID: rh.RequestID, Status: giop.ReplyNoException},
			func(e *cdr.Encoder) error {
				e.WriteLong(n * 10)
				return nil
			})
		return msg
	})
	addr, stop := startServer(t, h)
	defer stop()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := int32(0); i < 32; i++ {
		wg.Add(1)
		go func(n int32) {
			defer wg.Done()
			hdr, body, err := conn.Invoke(context.Background(), nil, "mul", cdr.LittleEndian, func(e *cdr.Encoder) error {
				e.WriteLong(n)
				return nil
			})
			if err != nil {
				errs <- err
				return
			}
			if hdr.Status != giop.ReplyNoException {
				errs <- fmt.Errorf("status %v", hdr.Status)
				return
			}
			got, _ := body.ReadLong()
			if got != n*10 {
				errs <- fmt.Errorf("reply for %d was %d", n, got)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestInvokeAfterClose(t *testing.T) {
	addr, stop := startServer(t, echoHandler())
	defer stop()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := conn.Invoke(context.Background(), nil, "echo", cdr.BigEndian, nil); !errors.Is(err, ErrConnClosed) {
		t.Errorf("invoke after close: %v", err)
	}
	// Idempotent close.
	if err := conn.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	block := make(chan struct{})
	h := HandlerFunc(func(_ context.Context, rh giop.RequestHeader, _ *cdr.Decoder, order cdr.ByteOrder) giop.Message {
		<-block
		msg, _ := giop.EncodeReply(order, giop.ReplyHeader{RequestID: rh.RequestID, Status: giop.ReplyNoException}, nil)
		return msg
	})
	srv := NewServer(h)
	a, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Dial(a.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	done := make(chan error, 1)
	go func() {
		_, _, err := conn.Invoke(context.Background(), nil, "hang", cdr.BigEndian, nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the handler
	close(block)                      // let the handler finish so Close can join
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		// Either a successful reply (if it raced ahead of close) or a
		// closed-connection error is acceptable; hanging is not.
		_ = err
	case <-time.After(2 * time.Second):
		t.Fatal("client invocation hung after server close")
	}
}

func TestDialError(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port should fail")
	}
}

func TestListenTwiceAfterClose(t *testing.T) {
	srv := NewServer(echoHandler())
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Error("listen after close should fail")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestOnewayRequestGetsNoReply(t *testing.T) {
	called := make(chan struct{}, 1)
	h := HandlerFunc(func(_ context.Context, rh giop.RequestHeader, _ *cdr.Decoder, order cdr.ByteOrder) giop.Message {
		called <- struct{}{}
		msg, _ := giop.EncodeReply(order, giop.ReplyHeader{RequestID: rh.RequestID, Status: giop.ReplyNoException}, nil)
		return msg
	})
	addr, stop := startServer(t, h)
	defer stop()

	// Send a raw oneway request (ResponseExpected=false) then a normal
	// request; the reply we get back must be for the second request.
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	req, err := giop.EncodeRequest(cdr.BigEndian, giop.RequestHeader{
		RequestID: 999, ResponseExpected: false, Operation: "oneway",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	conn.writeMu.Lock()
	err = giop.WriteMessage(conn.c, req)
	conn.writeMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	<-called

	hdr, _, err := conn.Invoke(context.Background(), nil, "normal", cdr.BigEndian, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-called
	if hdr.Status != giop.ReplyNoException {
		t.Errorf("status = %v", hdr.Status)
	}
}
