package iiop

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"livedev/internal/cdr"
	"livedev/internal/giop"
)

// blockingHandler parks every request on a channel until released, and
// counts how many request contexts it saw cancelled.
type blockingHandler struct {
	release   chan struct{}
	cancelled atomic.Int32
	entered   chan struct{}
}

func newBlockingHandler() *blockingHandler {
	return &blockingHandler{release: make(chan struct{}), entered: make(chan struct{}, 64)}
}

func (b *blockingHandler) HandleRequest(ctx context.Context, h giop.RequestHeader, _ *cdr.Decoder, order cdr.ByteOrder) giop.Message {
	b.entered <- struct{}{}
	select {
	case <-ctx.Done():
		b.cancelled.Add(1)
	case <-b.release:
	}
	msg, _ := giop.EncodeReply(order, giop.ReplyHeader{RequestID: h.RequestID, Status: giop.ReplyNoException}, nil)
	return msg
}

// TestContextCancelAbortsInvoke proves the tentpole cancellation semantics
// at the transport layer: a cancelled context aborts the in-flight wait
// promptly, the error wraps context.Canceled, the CancelRequest reaches the
// server's request context, and the connection stays usable for the next
// call.
func TestContextCancelAbortsInvoke(t *testing.T) {
	h := newBlockingHandler()
	addr, stop := startServer(t, h)
	defer stop()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := conn.Invoke(ctx, nil, "hang", cdr.BigEndian, nil)
		done <- err
	}()
	<-h.entered // the request is parked in the handler
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled invoke did not return")
	}

	// The GIOP CancelRequest must cancel the server-side request context.
	deadline := time.After(2 * time.Second)
	for h.cancelled.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("server never observed the request cancellation")
		case <-time.After(5 * time.Millisecond):
		}
	}

	// The connection survives: release the handler and make a fresh call.
	close(h.release)
	hdr, _, err := conn.Invoke(context.Background(), nil, "after", cdr.BigEndian, nil)
	if err != nil {
		t.Fatalf("invoke after cancellation: %v", err)
	}
	if hdr.Status != giop.ReplyNoException {
		t.Errorf("status = %v", hdr.Status)
	}
}

// TestDeadlineExceededUnderConcurrency races many deadline-bounded calls
// against normal ones on a single connection — the sharded pending table's
// register/abandon/route paths under contention (run with -race).
func TestDeadlineExceededUnderConcurrency(t *testing.T) {
	slow := HandlerFunc(func(_ context.Context, rh giop.RequestHeader, args *cdr.Decoder, order cdr.ByteOrder) giop.Message {
		n, _ := args.ReadLong()
		if n%2 == 0 {
			time.Sleep(30 * time.Millisecond)
		}
		msg, _ := giop.EncodeReply(order, giop.ReplyHeader{RequestID: rh.RequestID, Status: giop.ReplyNoException},
			func(e *cdr.Encoder) error { e.WriteLong(n); return nil })
		return msg
	})
	addr, stop := startServer(t, slow)
	defer stop()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := int32(0); i < 64; i++ {
		wg.Add(1)
		go func(n int32) {
			defer wg.Done()
			ctx := context.Background()
			if n%2 == 0 {
				// Deadline far shorter than the slow path's sleep.
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, 5*time.Millisecond)
				defer cancel()
			}
			hdr, body, err := conn.Invoke(ctx, nil, "op", cdr.BigEndian, func(e *cdr.Encoder) error {
				e.WriteLong(n)
				return nil
			})
			switch {
			case n%2 == 0:
				if !errors.Is(err, context.DeadlineExceeded) {
					errs <- errors.New("even call should have exceeded its deadline")
				}
			case err != nil:
				errs <- err
			case hdr.Status != giop.ReplyNoException:
				errs <- errors.New("bad status")
			default:
				if got, _ := body.ReadLong(); got != n {
					errs <- errors.New("wrong reply routed")
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// echoBenchHandler echoes one long back, no sleeping — measures transport
// and pending-table overhead only.
var echoBenchHandler = HandlerFunc(func(_ context.Context, rh giop.RequestHeader, args *cdr.Decoder, order cdr.ByteOrder) giop.Message {
	n, _ := args.ReadLong()
	msg, _ := giop.EncodeReply(order, giop.ReplyHeader{RequestID: rh.RequestID, Status: giop.ReplyNoException},
		func(e *cdr.Encoder) error { e.WriteLong(n); return nil })
	return msg
})

// BenchmarkConnInvokeParallel drives one connection from GOMAXPROCS
// goroutines — the workload the sharded pending-reply table exists for
// (compare with -cpu 1,4,16; the old single-mutex map serialized here).
func BenchmarkConnInvokeParallel(b *testing.B) {
	srv := NewServer(echoBenchHandler)
	a, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	conn, err := Dial(a.String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			err := conn.InvokeInto(ctx, nil, "echo", cdr.BigEndian,
				func(e *cdr.Encoder) error { e.WriteLong(7); return nil },
				func(h giop.ReplyHeader, body *cdr.Decoder) error {
					if h.Status != giop.ReplyNoException {
						return errors.New("bad status")
					}
					_, err := body.ReadLong()
					return err
				})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkConnInvokeSerial is the single-caller baseline for the parallel
// benchmark above.
func BenchmarkConnInvokeSerial(b *testing.B) {
	srv := NewServer(echoBenchHandler)
	a, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	conn, err := Dial(a.String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := conn.InvokeInto(ctx, nil, "echo", cdr.BigEndian,
			func(e *cdr.Encoder) error { e.WriteLong(7); return nil },
			func(h giop.ReplyHeader, body *cdr.Decoder) error {
				_, err := body.ReadLong()
				return err
			})
		if err != nil {
			b.Fatal(err)
		}
	}
}
