package raceplan

import (
	"strings"
	"testing"
)

// TestFigure7Matrix pins the paper's Figure 7 result exactly: "Only
// combinations (1,i), (1,ii), and (2,ii) ensure that the client developer
// is clearly able to see changes in the server interface."
func TestFigure7Matrix(t *testing.T) {
	good := map[[2]int]bool{
		{1, 1}: true, // (1, i)
		{1, 2}: true, // (1, ii)
		{2, 2}: true, // (2, ii)
	}
	for p := 1; p <= 3; p++ {
		for u := 1; u <= 3; u++ {
			o := Simulate(ActivePublishing, PublishPoint(p), UpdatePoint(u))
			want := good[[2]int{p, u}]
			if o.Consistent != want {
				t.Errorf("active (%d,%s): consistent = %v, want %v", p, UpdatePoint(u), o.Consistent, want)
			}
		}
	}
	c, total := ConsistentCount(ActivePublishing)
	if c != 3 || total != 9 {
		t.Errorf("active publishing: %d/%d consistent, want 3/9", c, total)
	}
}

// TestFigure8Matrix pins Figure 8: "for any combinations of (1-4, i-iv)
// the recency guarantees will be met."
func TestFigure8Matrix(t *testing.T) {
	for p := 1; p <= 4; p++ {
		for u := 1; u <= 4; u++ {
			o := Simulate(ReactivePublishing, PublishPoint(p), UpdatePoint(u))
			if !o.Consistent {
				t.Errorf("reactive (%d,%s): inconsistent", p, UpdatePoint(u))
			}
			if o.ViewAtDisplay != 1 {
				t.Errorf("reactive (%d,%s): view at display = %d", p, UpdatePoint(u), o.ViewAtDisplay)
			}
		}
	}
	c, total := ConsistentCount(ReactivePublishing)
	if c != 16 || total != 16 {
		t.Errorf("reactive publishing: %d/%d consistent, want 16/16", c, total)
	}
}

func TestMatrixShape(t *testing.T) {
	m7 := Matrix(ActivePublishing)
	if len(m7) != 3 || len(m7[0]) != 3 {
		t.Errorf("Figure 7 matrix is %dx%d", len(m7), len(m7[0]))
	}
	m8 := Matrix(ReactivePublishing)
	if len(m8) != 4 || len(m8[0]) != 4 {
		t.Errorf("Figure 8 matrix is %dx%d", len(m8), len(m8[0]))
	}
	for p, row := range m8 {
		for u, o := range row {
			if int(o.Publish) != p+1 || int(o.Update) != u+1 {
				t.Errorf("matrix cell (%d,%d) mislabeled: %+v", p, u, o)
			}
		}
	}
}

func TestRender(t *testing.T) {
	out := Render(ActivePublishing)
	if !strings.Contains(out, "consistent: 3/9") {
		t.Errorf("Figure 7 render:\n%s", out)
	}
	out = Render(ReactivePublishing)
	if !strings.Contains(out, "consistent: 16/16") {
		t.Errorf("Figure 8 render:\n%s", out)
	}
}

func TestStringers(t *testing.T) {
	if ActivePublishing.String() == "" || ReactivePublishing.String() == "" || Mode(99).String() == "" {
		t.Error("Mode.String")
	}
	if UpdatePoint(1).String() != "(i)" || UpdatePoint(4).String() != "(iv)" {
		t.Error("UpdatePoint.String")
	}
	if UpdatePoint(9).String() == "" {
		t.Error("out-of-range UpdatePoint.String")
	}
	if PublishPoint(2).String() != "(2)" {
		t.Error("PublishPoint.String")
	}
}

// TestConsistencyIsMonotoneInSynchronization: adding the reactive
// synchronization points never turns a consistent interleaving
// inconsistent — the protocol strictly improves on active publishing.
func TestConsistencyIsMonotoneInSynchronization(t *testing.T) {
	for p := 1; p <= 3; p++ {
		for u := 1; u <= 3; u++ {
			a := Simulate(ActivePublishing, PublishPoint(p), UpdatePoint(u))
			r := Simulate(ReactivePublishing, PublishPoint(p), UpdatePoint(u))
			if a.Consistent && !r.Consistent {
				t.Errorf("(%d,%d): reactive protocol regressed consistency", p, u)
			}
		}
	}
}
