// Package raceplan reproduces Figures 7 and 8 of the paper: the
// interleaving analysis of the server-interface update path against the
// RMI call path during live, simultaneous client-server development.
//
// The scenario (common to both figures): the client sends a call to a
// method whose signature the server developer has just changed; the server
// processes the call against the new interface and sends a "Non Existent
// Method" exception; the client displays the error to its developer. The
// server's publication of the new interface description and the client's
// stub update each race against this exchange.
//
// Figure 7 (active publishing) places the publication at one of three
// independent points (1: before the call is processed, 2: between
// processing and sending the exception, 3: after sending) and the client's
// stub update at one of three points (i: while the call is in flight,
// ii: between receiving and displaying the exception, iii: after
// displaying). The combination is *consistent* — the developer can see the
// interface change that explains the error — only if the update fetched a
// post-change interface before the error was displayed. Only (1,i), (1,ii)
// and (2,ii) qualify.
//
// Figure 8 (reactive publishing) adds the paper's two synchronization
// points: the server forces publication before sending the exception
// (Section 5.7), and the client forces an update after receiving it and
// before displaying (Section 6). Then every combination of regular
// publication points (1-4) and regular update points (i-iv) is consistent.
package raceplan

import (
	"fmt"
	"strings"
)

// Mode selects the publication protocol under analysis.
type Mode int

// The two protocols the figures compare.
const (
	// ActivePublishing is Figure 7: publication and stub update happen at
	// independent, unsynchronized points.
	ActivePublishing Mode = iota + 1
	// ReactivePublishing is Figure 8: the Section 5.7 + Section 6 forced
	// publication/update points are added.
	ReactivePublishing
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ActivePublishing:
		return "active publishing (Figure 7)"
	case ReactivePublishing:
		return "reactive publishing (Figure 8)"
	}
	return "unknown mode"
}

// Fixed event times on the scenario timeline. The values only encode
// ordering; they are abstract ticks, not wall-clock durations.
const (
	tSendCall      = 0  // client sends the RMI call
	tChange        = 1  // server interface changes (old → new)
	tPublish1      = 2  // publication point (1): before processing
	tProcess       = 3  // server processes the call against the new interface
	tPublish2      = 4  // publication point (2): before sending the exception
	tForcedPublish = 5  // Section 5.7 forced publication (reactive mode)
	tSendExc       = 6  // server sends "Non Existent Method"
	tReceive       = 7  // client receives the exception
	tForcedUpdate  = 8  // Section 6 reactive stub update (reactive mode)
	tUpdateII      = 9  // update point (ii): after receipt, before display
	tDisplay       = 10 // client displays the error to the developer
	tUpdateIII     = 11 // update point (iii): after display
	tPublish3      = 12 // publication point (3): after sending (arrives late)
	tPublish4      = 13 // publication point (4): later still (Figure 8 adds a 4th)
	tUpdateIV      = 14 // update point (iv): later still (Figure 8 adds a 4th)
)

// tUpdateI is update point (i): the call is in flight, the server has not
// yet published at point 2. It lands between processing and publication
// point 2, which is what makes (2,i) inconsistent in the paper's matrix.
const tUpdateI = 3

// PublishPoint is a regular publication point. Figure 7 uses 1-3;
// Figure 8 shows 1-4.
type PublishPoint int

// UpdatePoint is a regular client stub update point. Figure 7 uses i-iii;
// Figure 8 shows i-iv.
type UpdatePoint int

// String renders the publish point the way the figures label it.
func (p PublishPoint) String() string { return fmt.Sprintf("(%d)", int(p)) }

// String renders the update point the way the figures label it (roman).
func (u UpdatePoint) String() string {
	romans := []string{"", "i", "ii", "iii", "iv"}
	if int(u) > 0 && int(u) < len(romans) {
		return "(" + romans[u] + ")"
	}
	return fmt.Sprintf("(u%d)", int(u))
}

func publishTime(p PublishPoint) int {
	switch p {
	case 1:
		return tPublish1
	case 2:
		return tPublish2
	case 3:
		return tPublish3
	case 4:
		return tPublish4
	default:
		return tPublish4
	}
}

func updateTime(u UpdatePoint) int {
	switch u {
	case 1:
		return tUpdateI
	case 2:
		return tUpdateII
	case 3:
		return tUpdateIII
	case 4:
		return tUpdateIV
	default:
		return tUpdateIV
	}
}

// Outcome is the result of simulating one interleaving.
type Outcome struct {
	Publish PublishPoint
	Update  UpdatePoint
	// Consistent reports whether, at the moment the error was displayed,
	// the client's stub view already reflected the interface change.
	Consistent bool
	// ViewAtDisplay is the interface version (0 = old, 1 = new) the client
	// held when the error was displayed.
	ViewAtDisplay int
}

// Simulate runs one interleaving of the scenario under the given mode.
//
// The simulation tracks the published document version over time and the
// client's fetched view. A fetch at time t obtains the newest version
// published strictly before t. The displayed error is "consistent" when
// the client's view at display time includes the change (version 1).
func Simulate(mode Mode, p PublishPoint, u UpdatePoint) Outcome {
	// Publication events: (time, version). Version 0 is published before
	// the scenario starts.
	type pubEvent struct{ t, version int }
	pubs := []pubEvent{{t: -1, version: 0}, {t: publishTime(p), version: 1}}
	if mode == ReactivePublishing {
		// Section 5.7: before sending the exception the server guarantees
		// the published description is current.
		pubs = append(pubs, pubEvent{t: tForcedPublish, version: 1})
	}

	publishedAt := func(t int) int {
		v := 0
		for _, pe := range pubs {
			if pe.t < t && pe.version > v {
				v = pe.version
			}
		}
		return v
	}

	// Update events: fetch times.
	fetches := []int{updateTime(u)}
	if mode == ReactivePublishing {
		// Section 6: on receiving "Non Existent Method" the client updates
		// its view before the exception reaches the developer.
		fetches = append(fetches, tForcedUpdate)
	}

	view := 0
	for _, ft := range fetches {
		if ft <= tDisplay {
			if v := publishedAt(ft); v > view {
				view = v
			}
		}
	}
	return Outcome{
		Publish:       p,
		Update:        u,
		Consistent:    view >= 1,
		ViewAtDisplay: view,
	}
}

// MatrixSize returns the number of publish and update points the figure
// for the mode enumerates (3×3 for Figure 7, 4×4 for Figure 8).
func MatrixSize(mode Mode) (publishes, updates int) {
	if mode == ReactivePublishing {
		return 4, 4
	}
	return 3, 3
}

// Matrix simulates every combination for the mode, row-major by publish
// point.
func Matrix(mode Mode) [][]Outcome {
	np, nu := MatrixSize(mode)
	rows := make([][]Outcome, np)
	for p := 1; p <= np; p++ {
		row := make([]Outcome, nu)
		for u := 1; u <= nu; u++ {
			row[u-1] = Simulate(mode, PublishPoint(p), UpdatePoint(u))
		}
		rows[p-1] = row
	}
	return rows
}

// ConsistentCount returns how many combinations of the mode's matrix are
// consistent, and the total number of combinations.
func ConsistentCount(mode Mode) (consistent, total int) {
	for _, row := range Matrix(mode) {
		for _, o := range row {
			total++
			if o.Consistent {
				consistent++
			}
		}
	}
	return consistent, total
}

// Render formats the matrix the way the paper narrates it, with ✓ for
// consistent combinations.
func Render(mode Mode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", mode)
	m := Matrix(mode)
	_, nu := MatrixSize(mode)
	b.WriteString("           ")
	for u := 1; u <= nu; u++ {
		fmt.Fprintf(&b, "%8s", UpdatePoint(u))
	}
	b.WriteByte('\n')
	for _, row := range m {
		fmt.Fprintf(&b, "publish %s", row[0].Publish)
		for _, o := range row {
			mark := "✗"
			if o.Consistent {
				mark = "✓"
			}
			fmt.Fprintf(&b, "%8s", mark)
		}
		b.WriteByte('\n')
	}
	c, tot := ConsistentCount(mode)
	fmt.Fprintf(&b, "consistent: %d/%d\n", c, tot)
	return b.String()
}
