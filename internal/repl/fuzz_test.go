package repl

import (
	"bytes"
	"io"
	"testing"

	"livedev/internal/ifsvr"
)

// tailSeedCorpus builds representative tail streams: every frame kind,
// concatenations, a truncated tail, and a bit-flipped record.
func tailSeedCorpus() [][]byte {
	doc := ifsvr.Document{Content: "<x/>", ContentType: "text/xml", Version: 3, DescriptorVersion: 2, Epoch: 9}
	ev := ifsvr.StoreEvent{Path: "/wsdl/Calc.wsdl", Doc: doc, Payload: ifsvr.EventPayload("/wsdl/Calc.wsdl", doc)}
	commit := ifsvr.EncodeCommitFrame(7, []ifsvr.StoreEvent{ev, ev})
	remove := ifsvr.EncodeRemoveFrame(8, "/wsdl/Calc.wsdl", 3)
	boot := encodeBootstrapFrame(12, 42, 9, []ifsvr.StoreEvent{ev}, map[string]uint64{"/gone": 5})
	hb := encodeHeartbeatFrame(12)

	stream := append(append(append(append([]byte(nil), commit...), remove...), boot...), hb...)
	truncated := append([]byte(nil), stream[:len(stream)-5]...)
	flipped := append([]byte(nil), stream...)
	flipped[len(commit)+10] ^= 0x40

	return [][]byte{
		commit, remove, boot, hb, stream, truncated, flipped,
		{}, {0}, {1, 0, 0, 0},
		append([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}, bytes.Repeat([]byte{'a'}, 32)...),
	}
}

// FuzzWALTailDecode drives the shipping frame decoder with arbitrary
// streams: it must never panic, must consume only CRC-valid frames, and
// every accepted frame must re-encode to exactly the bytes it was
// decoded from (so nothing corrupt can masquerade as a record).
func FuzzWALTailDecode(f *testing.F) {
	for _, seed := range tailSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := newFrameReader(bytes.NewReader(data))
		var reframed []byte
		for i := 0; i < 10000; i++ {
			kind, payload, err := fr.next()
			if err != nil {
				if err != errCorruptFrame && err != io.EOF && err != io.ErrUnexpectedEOF {
					t.Fatalf("unexpected decode error: %v", err)
				}
				break
			}
			reframed = ifsvr.AppendFrame(reframed, kind, payload)
		}
		if int64(len(reframed)) != fr.n {
			t.Fatalf("consumed %d bytes but re-encoded %d", fr.n, len(reframed))
		}
		if !bytes.Equal(reframed, data[:fr.n]) {
			t.Fatalf("accepted frames do not round-trip:\n in  %x\n out %x", data[:fr.n], reframed)
		}
	})
}

// TestFrameReaderSeeds runs the fuzz property over the seed corpus in
// ordinary test runs (the fuzz target itself only runs under -fuzz).
func TestFrameReaderSeeds(t *testing.T) {
	for i, seed := range tailSeedCorpus() {
		fr := newFrameReader(bytes.NewReader(seed))
		var reframed []byte
		for {
			kind, payload, err := fr.next()
			if err != nil {
				break
			}
			reframed = ifsvr.AppendFrame(reframed, kind, payload)
		}
		if !bytes.Equal(reframed, seed[:fr.n]) {
			t.Fatalf("seed %d: accepted frames do not round-trip", i)
		}
	}
}
