package repl

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"livedev/internal/ifsvr"
)

// DefaultTailShards is the replication shard count: how many independent
// record streams a follower tails concurrently. It is a transport-level
// partition (by the same path hash as the durable WAL layout) and need
// not match the store's on-disk shard count.
const DefaultTailShards = 4

// DefaultTailHistory bounds each shard's in-memory record ring: how far
// behind a follower may fall and still resume by tailing. A follower
// below the ring's floor is bootstrapped from a snapshot instead.
const DefaultTailHistory = 256

// DefaultTailHeartbeat paces liveness records on idle tail streams.
const DefaultTailHeartbeat = 15 * time.Second

// DefaultTailWriteTimeout bounds each tail-response write when
// TailConfig.WriteTimeout is zero: a follower (or any tail client) that
// cannot absorb a record within this budget is evicted rather than
// allowed to pin its serving goroutine — it reconnects from its durable
// cursor like any broken tail.
const DefaultTailWriteTimeout = 5 * time.Second

// TailConfig configures a leader's TailServer. The zero value uses the
// defaults above.
type TailConfig struct {
	// Shards is the replication stream count (0 means DefaultTailShards).
	Shards int
	// History bounds each shard's record ring (0 means
	// DefaultTailHistory; negative keeps nothing — every resume
	// bootstraps). The ring is also the tail plane's lag budget: a client
	// that falls more than History records behind loses its cursor to
	// eviction from the ring and is snapshot-bootstrapped on its next
	// collect instead of tailing the gap.
	History int
	// Heartbeat paces idle-stream liveness records (0 means
	// DefaultTailHeartbeat).
	Heartbeat time.Duration
	// WriteTimeout bounds each tail-response write via
	// http.ResponseController.SetWriteDeadline (0 means
	// DefaultTailWriteTimeout; negative disables the deadline). A write
	// missing it with the client still connected counts as an eviction in
	// ReplicationStats.
	WriteTimeout time.Duration
}

// TailServer is the leader half of replication: it taps the store's
// logged operations (SubscribeOps), frames them into per-shard record
// rings, and serves the WAL-tail endpoint — handshake, record streaming
// from a given lsn, snapshot bootstrap when the cursor has been compacted
// away, and heartbeats. Mount it on the Interface Server at TailPath
// (Attach does both steps).
type TailServer struct {
	store        *ifsvr.Store
	gen          uint64
	shards       int
	history      int
	heartbeat    time.Duration
	writeTimeout time.Duration
	// sweep is the shared heartbeat ticker over every held tail's pump —
	// one goroutine total, not one timer per tail connection.
	sweep  *ifsvr.PumpSweep
	cancel func()
	// primed marks a store that already held state when this tail server
	// was created (a durable leader after restart): that state predates
	// every ring, so a fresh follower's after=0 cursor must be answered
	// with a snapshot bootstrap, not an empty stream.
	primed bool

	// drain is closed when the leader begins a graceful shutdown; held
	// tail streams end so the HTTP server's Shutdown is not stalled by
	// parked followers (they reconnect through their ordinary retry path).
	drain     chan struct{}
	drainOnce sync.Once

	mu   sync.Mutex
	logs []*shardLog

	statsMu sync.Mutex
	stats   struct {
		records, batches, removes, bootstraps, heartbeats uint64
		evictions                                         uint64
		tails                                             int
	}
}

// shardLog is one shard's bounded ring of framed records, lsns
// contiguous and ascending.
type shardLog struct {
	mu      sync.Mutex
	lsn     uint64 // last assigned lsn (0 before the first record)
	frames  []tailFrame
	changed chan struct{} // closed and replaced on every append
}

type tailFrame struct {
	lsn  uint64
	data []byte
}

// NewTailServer builds a tail server over st and starts tapping its
// operations. Call Close to stop the tap.
func NewTailServer(st *ifsvr.Store, cfg TailConfig) *TailServer {
	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultTailShards
	}
	history := cfg.History
	switch {
	case history == 0:
		history = DefaultTailHistory
	case history < 0:
		history = 0
	}
	hb := cfg.Heartbeat
	if hb <= 0 {
		hb = DefaultTailHeartbeat
	}
	wt := cfg.WriteTimeout
	switch {
	case wt == 0:
		wt = DefaultTailWriteTimeout
	case wt < 0:
		wt = 0
	}
	t := &TailServer{
		store:        st,
		gen:          st.Generation(),
		shards:       shards,
		history:      history,
		heartbeat:    hb,
		writeTimeout: wt,
		sweep:        ifsvr.NewPumpSweep(hb / 2),
		primed:       st.Epoch() > 0,
		drain:        make(chan struct{}),
		logs:         make([]*shardLog, shards),
	}
	for i := range t.logs {
		t.logs[i] = &shardLog{changed: make(chan struct{})}
	}
	t.cancel = st.SubscribeOps(t.append)
	st.SetReplicationStats(t.replicationStats)
	return t
}

// Attach builds a tail server over st and mounts it on srv at TailPath —
// the one-call way to make an Interface Server a replication leader.
func Attach(st *ifsvr.Store, srv *ifsvr.Server, cfg TailConfig) *TailServer {
	t := NewTailServer(st, cfg)
	srv.Handle(TailPath, t)
	return t
}

// Drain ends every held tail stream so a graceful HTTP Shutdown of the
// hosting server is not stalled by parked followers — each reconnects
// from its durable cursor through its ordinary retry path (and finds the
// leader gone, backing off until a new one appears). Idempotent; Drain
// does not stop the store tap, so a leader can keep committing while its
// HTTP plane drains.
func (t *TailServer) Drain() {
	t.drainOnce.Do(func() { close(t.drain) })
}

// Close stops tapping the store. Held tail streams drain when their
// clients go away (or the HTTP server closes).
func (t *TailServer) Close() {
	if t.cancel != nil {
		t.cancel()
		t.cancel = nil
	}
}

// append frames one logged operation into its shard ring. It runs on the
// committing goroutine, under the store's delivery lock — keep it cheap.
func (t *TailServer) append(op ifsvr.StoreOp) {
	if op.RemovePath != "" {
		i := ifsvr.ShardOf(op.RemovePath, t.shards)
		sl := t.logs[i]
		sl.mu.Lock()
		sl.lsn++
		sl.push(tailFrame{lsn: sl.lsn, data: ifsvr.EncodeRemoveFrame(sl.lsn, op.RemovePath, op.RemoveVersion)}, t.history)
		sl.mu.Unlock()
		t.statsMu.Lock()
		t.stats.removes++
		t.stats.records++
		t.statsMu.Unlock()
		return
	}
	// One commit batch may span shards; each shard gets one commit record
	// holding its slice of the batch, in batch order.
	var groups [][]ifsvr.StoreEvent
	var touched []int
	for _, ev := range op.Events {
		i := ifsvr.ShardOf(ev.Path, t.shards)
		if groups == nil {
			groups = make([][]ifsvr.StoreEvent, t.shards)
		}
		if groups[i] == nil {
			touched = append(touched, i)
		}
		groups[i] = append(groups[i], ev)
	}
	for _, i := range touched {
		sl := t.logs[i]
		sl.mu.Lock()
		sl.lsn++
		sl.push(tailFrame{lsn: sl.lsn, data: ifsvr.EncodeCommitFrame(sl.lsn, groups[i])}, t.history)
		sl.mu.Unlock()
	}
	if len(touched) > 0 {
		t.statsMu.Lock()
		t.stats.batches++
		t.stats.records += uint64(len(touched))
		t.statsMu.Unlock()
	}
}

// push appends fr and evicts past the capacity, waking parked tails.
// Caller holds sl.mu.
func (sl *shardLog) push(fr tailFrame, history int) {
	if history > 0 {
		sl.frames = append(sl.frames, fr)
		if over := len(sl.frames) - history; over > 0 {
			copy(sl.frames, sl.frames[over:])
			sl.frames = sl.frames[:history]
		}
	}
	close(sl.changed)
	sl.changed = make(chan struct{})
}

// floorLocked is the oldest serveable "after" cursor: one below the
// oldest retained frame, or the head when the ring is empty. Caller
// holds sl.mu.
func (sl *shardLog) floorLocked() uint64 {
	if len(sl.frames) == 0 {
		return sl.lsn
	}
	return sl.frames[0].lsn - 1
}

// ServeHTTP implements the WAL-tail endpoint.
func (t *TailServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set(GenerationHeader, strconv.FormatUint(t.gen, 10))
	w.Header().Set(ShardsHeader, strconv.Itoa(t.shards))
	w.Header().Set("Cache-Control", "no-store")
	q := r.URL.Query()
	shardParam := q.Get("shard")
	if shardParam == "" {
		t.serveHello(w)
		return
	}
	shard, err := strconv.Atoi(shardParam)
	if err != nil || shard < 0 || shard >= t.shards {
		http.Error(w, "shard out of range", http.StatusBadRequest)
		return
	}
	after, _ := strconv.ParseUint(q.Get("after"), 10, 64)
	t.serveTail(w, r, shard, after)
}

func (t *TailServer) serveHello(w http.ResponseWriter) {
	h := Hello{
		Schema:     Schema,
		Generation: t.gen,
		Shards:     t.shards,
		Epoch:      t.store.Epoch(),
		LSNs:       make([]uint64, t.shards),
		Floors:     make([]uint64, t.shards),
	}
	for i, sl := range t.logs {
		sl.mu.Lock()
		h.LSNs[i] = sl.lsn
		h.Floors[i] = sl.floorLocked()
		sl.mu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(h)
}

// serveTail streams shard records past `after` until the client goes
// away: pending records (batched — one flush per collect, not per
// record), then live pushes as they commit, heartbeats when idle. An
// unserveable cursor — compacted away, past the head (the follower
// outlived a leader restart, or sent the forced-bootstrap sentinel), or
// zero against a primed store whose state predates the rings — is
// answered inline with one bootstrap record, after which tailing resumes
// from the bootstrap's lsn.
//
// Backpressure mirrors the watch streams: every write runs under the
// configured write deadline, a peer that misses it while still connected
// is evicted (counted in ReplicationStats.Evictions), and a peer that
// falls below the ring floor is bootstrapped rather than buffered for.
// Idle heartbeats ride the shared PumpSweep, not a per-tail timer.
func (t *TailServer) serveTail(w http.ResponseWriter, r *http.Request, shard int, after uint64) {
	if _, ok := w.(http.Flusher); !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", TailContentType)
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	_ = rc.Flush()

	t.statsMu.Lock()
	t.stats.tails++
	t.statsMu.Unlock()
	defer func() {
		t.statsMu.Lock()
		t.stats.tails--
		t.statsMu.Unlock()
	}()

	p := ifsvr.NewPump()
	t.sweep.Add(p)
	defer t.sweep.Remove(p)
	arm := func() {
		if t.writeTimeout > 0 {
			_ = rc.SetWriteDeadline(time.Now().Add(t.writeTimeout))
		}
	}
	// evicted classifies a failed write. A missed write deadline is ALWAYS
	// an eviction — the error check matters because the http server
	// cancels the request context on any connection write error, so by the
	// time this runs a deadline miss is indistinguishable from a hangup by
	// the context alone. A dead context without a deadline error is the
	// client hanging up (not backpressure).
	evicted := func(err error) {
		if errors.Is(err, os.ErrDeadlineExceeded) || r.Context().Err() == nil {
			t.statsMu.Lock()
			t.stats.evictions++
			t.statsMu.Unlock()
		}
	}

	sl := t.logs[shard]
	cursor := after
	// booted guards the primed-store rule: a fresh follower (after=0)
	// against a store that predates the rings gets one state transfer,
	// after which a zero cursor (an empty shard's head) is ordinary.
	booted := false
	for {
		frames, wake, needBootstrap := sl.collect(cursor)
		if t.primed && cursor == 0 && !booted {
			needBootstrap = true
		}
		if needBootstrap {
			booted = true
			frame, lsn := t.bootstrap(shard)
			arm()
			if _, err := w.Write(frame); err != nil {
				evicted(err)
				return
			}
			if err := rc.Flush(); err != nil {
				evicted(err)
				return
			}
			p.Touch()
			cursor = lsn
			t.statsMu.Lock()
			t.stats.bootstraps++
			t.statsMu.Unlock()
			continue
		}
		if len(frames) > 0 {
			arm()
			for _, fr := range frames {
				if _, err := w.Write(fr.data); err != nil {
					evicted(err)
					return
				}
				cursor = fr.lsn
			}
			if err := rc.Flush(); err != nil {
				evicted(err)
				return
			}
			p.Touch()
			continue
		}
		select {
		case <-r.Context().Done():
			return
		case <-t.drain:
			// Graceful shutdown: end the held tail; the follower
			// reconnects from its durable cursor.
			return
		case <-wake:
		case <-p.WakeChan():
			// Sweep nudge: write the liveness record when due.
			if p.Idle() < t.heartbeat {
				continue
			}
			arm()
			if _, err := w.Write(encodeHeartbeatFrame(cursor)); err != nil {
				evicted(err)
				return
			}
			if err := rc.Flush(); err != nil {
				evicted(err)
				return
			}
			p.Touch()
			t.statsMu.Lock()
			t.stats.heartbeats++
			t.statsMu.Unlock()
		}
	}
}

// collect snapshots the frames past cursor (nil when caught up, with the
// ring's wake channel), or reports that the cursor is unserveable and
// the tail must bootstrap.
func (sl *shardLog) collect(cursor uint64) (frames []tailFrame, wake chan struct{}, needBootstrap bool) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if cursor > sl.lsn || cursor < sl.floorLocked() {
		return nil, nil, true
	}
	if cursor == sl.lsn {
		return nil, sl.changed, false
	}
	idx := sort.Search(len(sl.frames), func(i int) bool { return sl.frames[i].lsn > cursor })
	return append([]tailFrame(nil), sl.frames[idx:]...), nil, false
}

// bootstrap packs one shard's current state into a bootstrap frame. The
// shard position L is captured BEFORE the state clone: the state then
// covers at least every record ≤ L, streaming resumes after L, and any
// overlap (a record committed between the two reads) is deduplicated by
// the follower's version filter.
func (t *TailServer) bootstrap(shard int) ([]byte, uint64) {
	sl := t.logs[shard]
	sl.mu.Lock()
	lsn := sl.lsn
	sl.mu.Unlock()
	state := t.store.CloneState()
	var evs []ifsvr.StoreEvent
	for path, d := range state.Docs {
		if ifsvr.ShardOf(path, t.shards) != shard {
			continue
		}
		evs = append(evs, ifsvr.StoreEvent{Path: path, Doc: d, Payload: ifsvr.EventPayload(path, d)})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Doc.Epoch < evs[j].Doc.Epoch })
	var retired map[string]uint64
	for path, v := range state.Retired {
		if ifsvr.ShardOf(path, t.shards) != shard {
			continue
		}
		if retired == nil {
			retired = make(map[string]uint64)
		}
		retired[path] = v
	}
	return encodeBootstrapFrame(lsn, t.gen, state.Epoch, evs, retired), lsn
}

// replicationStats is the leader's StoreStats.Replication block.
func (t *TailServer) replicationStats() *ifsvr.ReplicationStats {
	rs := &ifsvr.ReplicationStats{
		Role:       "leader",
		Generation: t.gen,
		Shards:     t.shards,
		LSN:        make([]uint64, t.shards),
		FloorLSN:   make([]uint64, t.shards),
	}
	for i, sl := range t.logs {
		sl.mu.Lock()
		rs.LSN[i] = sl.lsn
		rs.FloorLSN[i] = sl.floorLocked()
		sl.mu.Unlock()
	}
	t.statsMu.Lock()
	rs.Records = t.stats.records
	rs.Batches = t.stats.batches
	rs.Removes = t.stats.removes
	rs.Bootstraps = t.stats.bootstraps
	rs.Heartbeats = t.stats.heartbeats
	rs.Evictions = t.stats.evictions
	rs.Tails = t.stats.tails
	t.statsMu.Unlock()
	return rs
}
