package repl

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"livedev/internal/ifsvr"
)

// cursorFile is the follower's sidecar next to its store data: the
// leader generation and per-shard applied lsns a restart resumes from.
// It is written without fsync — the apply path is idempotent, so a
// cursor that lags (or tears and parses as nothing) only widens the
// re-fetch overlap, never loses or duplicates a commit.
const cursorFile = "repl-state.json"

// DefaultRetryDelay paces follower reconnects after a broken, torn, or
// corrupt tail stream.
const DefaultRetryDelay = 200 * time.Millisecond

// FollowerConfig configures OpenFollower.
type FollowerConfig struct {
	// Leader is the leader Interface Server's base URL (the TailPath
	// endpoint must be mounted there).
	Leader string
	// Store configures the follower's own store — in-memory by default,
	// durable when Dir is set (the replication cursor persists next to
	// the shards, so a restarted follower resumes tailing from its
	// durable position instead of re-bootstrapping).
	Store ifsvr.StoreConfig
	// HTTPClient overrides the tailing client (nil means a private one).
	HTTPClient *http.Client
	// RetryDelay overrides reconnect pacing (0 means DefaultRetryDelay).
	RetryDelay time.Duration
}

// Follower tails every shard of a leader's WAL concurrently and applies
// the records through the store's commit path into its own (optionally
// durable) store. The store serves doc GETs, long-polls, and SSE watch
// streams read-only under the leader's generation and epochs; Serve
// starts an Interface Server view that additionally answers writes with
// 421 Misdirected Request naming the leader.
type Follower struct {
	leader string
	hc     *http.Client
	store  *ifsvr.Store
	iface  *ifsvr.Server
	dir    string
	gen    uint64
	shards int
	retry  time.Duration

	cancel context.CancelFunc
	wg     sync.WaitGroup

	curMu     sync.Mutex // serializes cursor-sidecar writes
	mu        sync.Mutex
	applied   []uint64 // per-shard last applied lsn
	leaderLSN []uint64 // per-shard leader head, from records and heartbeats
	counters  struct {
		records, batches, removes, bootstraps, heartbeats uint64
		reconnects, frameErrors                           uint64
	}
}

// cursorState is the cursorFile layout.
type cursorState struct {
	Generation uint64   `json:"generation"`
	Shards     int      `json:"shards"`
	Applied    []uint64 `json:"applied"`
}

// OpenFollower handshakes with the leader, opens (or recovers) the local
// store, and starts tailing every shard. The returned follower's store
// is read-only and already adopting the leader's generation.
func OpenFollower(cfg FollowerConfig) (*Follower, error) {
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	retry := cfg.RetryDelay
	if retry <= 0 {
		retry = DefaultRetryDelay
	}
	hello, err := handshake(context.Background(), hc, cfg.Leader)
	if err != nil {
		return nil, err
	}
	st, err := ifsvr.OpenStore(cfg.Store)
	if err != nil {
		return nil, err
	}
	f := &Follower{
		leader:    cfg.Leader,
		hc:        hc,
		store:     st,
		dir:       cfg.Store.Dir,
		gen:       hello.Generation,
		shards:    hello.Shards,
		retry:     retry,
		applied:   make([]uint64, hello.Shards),
		leaderLSN: append([]uint64(nil), hello.LSNs...),
	}
	// Serve the LEADER's restart generation, not our own incarnation
	// count: a watcher failing over between replicas must not misread
	// the replica switch as a state-loss restart.
	st.AdoptGeneration(hello.Generation)
	st.SetReadOnly(true)
	st.SetReplicationStats(f.replicationStats)
	if cur, ok := f.loadCursor(); ok && cur.Generation == hello.Generation && cur.Shards == hello.Shards {
		copy(f.applied, cur.Applied)
	}
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	for i := 0; i < f.shards; i++ {
		f.wg.Add(1)
		go f.tailShard(ctx, i)
	}
	return f, nil
}

// handshake fetches the leader's Hello.
func handshake(ctx context.Context, hc *http.Client, leader string) (Hello, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, leader+TailPath, nil)
	if err != nil {
		return Hello{}, fmt.Errorf("repl: building handshake request: %w", err)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return Hello{}, fmt.Errorf("repl: handshaking with leader %s: %w", leader, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return Hello{}, fmt.Errorf("repl: handshaking with leader %s: HTTP %d", leader, resp.StatusCode)
	}
	var h Hello
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Hello{}, fmt.Errorf("repl: decoding handshake: %w", err)
	}
	if h.Schema != Schema {
		return Hello{}, fmt.Errorf("repl: leader speaks %q, want %q", h.Schema, Schema)
	}
	if h.Shards <= 0 || h.Generation == 0 {
		return Hello{}, fmt.Errorf("repl: malformed handshake (shards=%d generation=%d)", h.Shards, h.Generation)
	}
	return h, nil
}

// Serve starts the follower's read-only Interface Server on addr and
// returns its base URL.
func (f *Follower) Serve(addr string) (string, error) {
	f.iface = ifsvr.NewView(f.store)
	f.iface.LeaderURL = f.leader
	return f.iface.Start(addr)
}

// Iface returns the follower's Interface Server (nil before Serve).
func (f *Follower) Iface() *ifsvr.Server { return f.iface }

// Store returns the follower's local store.
func (f *Follower) Store() *ifsvr.Store { return f.store }

// Generation returns the adopted leader generation.
func (f *Follower) Generation() uint64 { return f.gen }

// Leader returns the leader base URL.
func (f *Follower) Leader() string { return f.leader }

// Close stops tailing, persists the final cursor, and closes the local
// store (and the Serve HTTP server, if started).
func (f *Follower) Close() {
	if f.cancel != nil {
		f.cancel()
	}
	f.wg.Wait()
	f.saveCursor()
	if f.iface != nil {
		_ = f.iface.Close()
	}
	f.store.Close()
}

// Crash is Close the hard way — no final cursor write, no store
// snapshot — for restart-torture tests.
func (f *Follower) Crash() error {
	if f.cancel != nil {
		f.cancel()
	}
	f.wg.Wait()
	if f.iface != nil {
		_ = f.iface.Close()
	}
	return f.store.Crash()
}

// tailShard is one shard's tail loop: stream records from the last
// applied lsn, apply, and on ANY break — connection loss, torn frame,
// CRC mismatch — reconnect and re-fetch from the last applied lsn. The
// apply path skips versions it already has, so overlap is harmless.
func (f *Follower) tailShard(ctx context.Context, shard int) {
	defer f.wg.Done()
	first := true
	for ctx.Err() == nil {
		if !first {
			f.mu.Lock()
			f.counters.reconnects++
			f.mu.Unlock()
			select {
			case <-ctx.Done():
				return
			case <-time.After(f.retry):
			}
		}
		first = false
		f.tailOnce(ctx, shard)
	}
}

// tailOnce holds one tail stream until it breaks or ctx ends.
func (f *Follower) tailOnce(ctx context.Context, shard int) {
	after := f.appliedLSN(shard)
	url := fmt.Sprintf("%s%s?shard=%d&after=%d", f.leader, TailPath, shard, after)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != TailContentType {
		return
	}
	fr := newFrameReader(resp.Body)
	for {
		kind, payload, err := fr.next()
		if err != nil {
			if err == errCorruptFrame {
				f.mu.Lock()
				f.counters.frameErrors++
				f.mu.Unlock()
			}
			return
		}
		if err := f.applyFrame(shard, kind, payload); err != nil {
			f.mu.Lock()
			f.counters.frameErrors++
			f.mu.Unlock()
			return
		}
	}
}

// applyFrame applies one decoded record and advances the shard cursor.
func (f *Follower) applyFrame(shard int, kind byte, payload []byte) error {
	switch kind {
	case FrameCommit:
		lsn, evs, err := ifsvr.DecodeCommitFrame(payload)
		if err != nil {
			return err
		}
		f.store.ApplyReplicated(evs)
		f.advance(shard, lsn, func(c *Follower) { c.counters.batches++; c.counters.records++ })
	case FrameRemove:
		lsn, path, version, err := ifsvr.DecodeRemoveFrame(payload)
		if err != nil {
			return err
		}
		f.store.ApplyReplicatedRemove(path, version)
		f.advance(shard, lsn, func(c *Follower) { c.counters.removes++; c.counters.records++ })
	case FrameBootstrap:
		lsn, evs, err := ifsvr.DecodeCommitFrame(payload)
		if err != nil {
			return err
		}
		var meta bootstrapMeta
		if err := json.Unmarshal(payload, &meta); err != nil {
			return err
		}
		f.store.ApplyReplicated(evs)
		for path, v := range meta.Retired {
			f.store.ApplyReplicatedRemove(path, v)
		}
		f.advance(shard, lsn, func(c *Follower) { c.counters.bootstraps++ })
	case FrameHeartbeat:
		var hb heartbeatWire
		if err := json.Unmarshal(payload, &hb); err != nil {
			return err
		}
		f.mu.Lock()
		if hb.Lsn > f.leaderLSN[shard] {
			f.leaderLSN[shard] = hb.Lsn
		}
		f.counters.heartbeats++
		f.mu.Unlock()
	default:
		return fmt.Errorf("repl: unknown frame kind %q", kind)
	}
	return nil
}

// advance records a shard's applied lsn (and the implied leader head)
// and persists the cursor sidecar.
func (f *Follower) advance(shard int, lsn uint64, count func(*Follower)) {
	f.mu.Lock()
	if lsn > f.applied[shard] {
		f.applied[shard] = lsn
	}
	if lsn > f.leaderLSN[shard] {
		f.leaderLSN[shard] = lsn
	}
	count(f)
	f.mu.Unlock()
	f.saveCursor()
}

func (f *Follower) appliedLSN(shard int) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied[shard]
}

// loadCursor reads the cursor sidecar ("" dir, a missing file, or a torn
// write all read as no cursor — the follower just bootstraps).
func (f *Follower) loadCursor() (cursorState, bool) {
	if f.dir == "" {
		return cursorState{}, false
	}
	data, err := os.ReadFile(filepath.Join(f.dir, cursorFile))
	if err != nil {
		return cursorState{}, false
	}
	var cur cursorState
	if json.Unmarshal(data, &cur) != nil || len(cur.Applied) != cur.Shards {
		return cursorState{}, false
	}
	return cur, true
}

// saveCursor writes the cursor sidecar (best-effort, unsynced; see
// cursorFile).
func (f *Follower) saveCursor() {
	if f.dir == "" {
		return
	}
	f.mu.Lock()
	cur := cursorState{Generation: f.gen, Shards: f.shards, Applied: append([]uint64(nil), f.applied...)}
	f.mu.Unlock()
	data, err := json.Marshal(cur)
	if err != nil {
		return
	}
	f.curMu.Lock()
	defer f.curMu.Unlock()
	tmp := filepath.Join(f.dir, cursorFile+".tmp")
	if os.WriteFile(tmp, data, 0o644) != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(f.dir, cursorFile))
}

// Lag is the follower's total backlog: sum over shards of the leader
// head minus the applied lsn, as last observed.
func (f *Follower) Lag() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lagLocked()
}

func (f *Follower) lagLocked() uint64 {
	var lag uint64
	for i := range f.applied {
		if f.leaderLSN[i] > f.applied[i] {
			lag += f.leaderLSN[i] - f.applied[i]
		}
	}
	return lag
}

// replicationStats is the follower's StoreStats.Replication block.
func (f *Follower) replicationStats() *ifsvr.ReplicationStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return &ifsvr.ReplicationStats{
		Role:        "follower",
		LeaderURL:   f.leader,
		Generation:  f.gen,
		Shards:      f.shards,
		LSN:         append([]uint64(nil), f.applied...),
		LeaderLSN:   append([]uint64(nil), f.leaderLSN...),
		Lag:         f.lagLocked(),
		Records:     f.counters.records,
		Batches:     f.counters.batches,
		Removes:     f.counters.removes,
		Bootstraps:  f.counters.bootstraps,
		Heartbeats:  f.counters.heartbeats,
		Reconnects:  f.counters.reconnects,
		FrameErrors: f.counters.frameErrors,
	}
}
