package repl

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"livedev/internal/backoff"
	"livedev/internal/ifsvr"
)

// cursorFile is the follower's sidecar next to its store data: the
// leader generation and per-shard applied lsns a restart resumes from.
// It is written without fsync — the apply path is idempotent, so a
// cursor that lags (or tears and parses as nothing) only widens the
// re-fetch overlap, never loses or duplicates a commit.
const cursorFile = "repl-state.json"

// DefaultRetryDelay is the base reconnect pacing after a broken, torn,
// or corrupt tail stream (and for re-handshake retries while the leader
// is unreachable). Consecutive failures back off exponentially from this
// base — capped and jittered, reset by the next successful record — so a
// follower fleet facing a dead leader does not dial in lockstep forever.
const DefaultRetryDelay = 200 * time.Millisecond

// cursorSaveEvery debounces cursor-sidecar writes on the apply path: the
// sidecar is rewritten at most once per this many applied records (plus
// on bootstrap, on heartbeat while dirty, and on Close), so an edit
// storm does not pay a marshal+WriteFile+Rename per replicated record.
// A cursor that lags by up to a debounce window only widens the restart
// re-fetch overlap, which the version filter deduplicates.
const cursorSaveEvery = 64

// bootstrapCursor is the sentinel applied-lsn meaning "this shard has no
// usable position — force a snapshot bootstrap". It is installed when a
// re-handshake reveals a new leader incarnation (the old lsns mean
// nothing there) and persists in the cursor sidecar, so a follower that
// crashes mid-rebuild still bootstraps on restart. Any cursor past the
// leader's head triggers a bootstrap, so the sentinel needs no
// protocol support.
const bootstrapCursor = ^uint64(0)

// tailVerdict classifies how a tail stream ended.
type tailVerdict int

const (
	// tailRetry is a transient break — connection loss, torn frame, CRC
	// reject: reconnect to the same topology after the retry delay.
	tailRetry tailVerdict = iota
	// tailReset is a topology change — the response headers or a
	// bootstrap frame named a different generation, or the shard no
	// longer exists (HTTP 400): stop tailing and re-handshake.
	tailReset
)

// FollowerConfig configures OpenFollower.
type FollowerConfig struct {
	// Leader is the leader Interface Server's base URL (the TailPath
	// endpoint must be mounted there).
	Leader string
	// Store configures the follower's own store — in-memory by default,
	// durable when Dir is set (the replication cursor persists next to
	// the shards, so a restarted follower resumes tailing from its
	// durable position instead of re-bootstrapping).
	Store ifsvr.StoreConfig
	// HTTPClient overrides the tailing client (nil means a private one).
	HTTPClient *http.Client
	// RetryDelay overrides reconnect pacing (0 means DefaultRetryDelay).
	RetryDelay time.Duration
}

// Follower tails every shard of a leader's WAL concurrently and applies
// the records through the store's commit path into its own (optionally
// durable) store. The store serves doc GETs, long-polls, and SSE watch
// streams read-only under the leader's generation and epochs; Serve
// starts an Interface Server view that additionally answers writes with
// 421 Misdirected Request naming the leader.
//
// A supervisor loop watches for the leader changing underneath the
// tailers: a generation or shard-count mismatch on a tail response's
// headers, a bootstrap frame carrying a foreign generation, or a
// shard-out-of-range rejection all signal a new leader incarnation. The
// supervisor then stops every tailer, re-handshakes, wipes the local
// state (the old incarnation's versions would otherwise shadow the new
// leader's lower-numbered commits), adopts the new generation and shard
// count, and rebuilds the tailers with forced-bootstrap cursors — so
// the replica converges on the new incarnation instead of silently
// serving the dead one.
type Follower struct {
	leader string
	hc     *http.Client
	store  *ifsvr.Store
	iface  *ifsvr.Server
	dir    string
	retry  time.Duration

	cancel  context.CancelFunc
	wg      sync.WaitGroup
	resetCh chan struct{} // tailers signal a topology change (capacity 1)

	curMu     sync.Mutex // serializes cursor-sidecar writes
	mu        sync.Mutex
	gen       uint64
	shards    int
	applied   []uint64 // per-shard last applied lsn (or bootstrapCursor)
	leaderLSN []uint64 // per-shard leader head, from records and heartbeats
	dirty     int      // applied records since the last cursor save
	counters  struct {
		records, batches, removes, bootstraps, heartbeats uint64
		reconnects, resets, frameErrors                   uint64
	}
}

// cursorState is the cursorFile layout.
type cursorState struct {
	Generation uint64   `json:"generation"`
	Shards     int      `json:"shards"`
	Applied    []uint64 `json:"applied"`
}

// OpenFollower handshakes with the leader, opens (or recovers) the local
// store, and starts tailing every shard. The returned follower's store
// is read-only and already adopting the leader's generation.
func OpenFollower(cfg FollowerConfig) (*Follower, error) {
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	retry := cfg.RetryDelay
	if retry <= 0 {
		retry = DefaultRetryDelay
	}
	hello, err := handshake(context.Background(), hc, cfg.Leader)
	if err != nil {
		return nil, err
	}
	st, err := ifsvr.OpenStore(cfg.Store)
	if err != nil {
		return nil, err
	}
	f := &Follower{
		leader:    cfg.Leader,
		hc:        hc,
		store:     st,
		dir:       cfg.Store.Dir,
		retry:     retry,
		resetCh:   make(chan struct{}, 1),
		gen:       hello.Generation,
		shards:    hello.Shards,
		applied:   make([]uint64, hello.Shards),
		leaderLSN: append([]uint64(nil), hello.LSNs...),
	}
	// Serve the LEADER's restart generation, not our own incarnation
	// count: a watcher failing over between replicas must not misread
	// the replica switch as a state-loss restart.
	st.AdoptGeneration(hello.Generation)
	st.SetReadOnly(true)
	st.SetReplicationStats(f.replicationStats)
	cur, curOK := f.loadCursor()
	switch {
	case curOK && cur.Generation == hello.Generation && cur.Shards == hello.Shards:
		copy(f.applied, cur.Applied)
	case curOK || st.Epoch() > 0:
		// The durable cursor (or the recovered store state, when the
		// cursor tore) belongs to a dead leader incarnation: its
		// versions would shadow the new leader's. Wipe and rebuild.
		f.resetLocked(hello)
	}
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	f.wg.Add(1)
	go f.run(ctx)
	return f, nil
}

// handshake fetches the leader's Hello.
func handshake(ctx context.Context, hc *http.Client, leader string) (Hello, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, leader+TailPath, nil)
	if err != nil {
		return Hello{}, fmt.Errorf("repl: building handshake request: %w", err)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return Hello{}, fmt.Errorf("repl: handshaking with leader %s: %w", leader, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return Hello{}, fmt.Errorf("repl: handshaking with leader %s: HTTP %d", leader, resp.StatusCode)
	}
	var h Hello
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Hello{}, fmt.Errorf("repl: decoding handshake: %w", err)
	}
	if h.Schema != Schema {
		return Hello{}, fmt.Errorf("repl: leader speaks %q, want %q", h.Schema, Schema)
	}
	if h.Shards <= 0 || h.Generation == 0 {
		return Hello{}, fmt.Errorf("repl: malformed handshake (shards=%d generation=%d)", h.Shards, h.Generation)
	}
	return h, nil
}

// Serve starts the follower's read-only Interface Server on addr and
// returns its base URL.
func (f *Follower) Serve(addr string) (string, error) {
	f.iface = ifsvr.NewView(f.store)
	f.iface.LeaderURL = f.leader
	return f.iface.Start(addr)
}

// Iface returns the follower's Interface Server (nil before Serve).
func (f *Follower) Iface() *ifsvr.Server { return f.iface }

// Store returns the follower's local store.
func (f *Follower) Store() *ifsvr.Store { return f.store }

// Generation returns the currently adopted leader generation.
func (f *Follower) Generation() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen
}

// Leader returns the leader base URL.
func (f *Follower) Leader() string { return f.leader }

// Close stops tailing, persists the final cursor, and closes the local
// store (and the Serve HTTP server, if started).
func (f *Follower) Close() {
	if f.cancel != nil {
		f.cancel()
	}
	f.wg.Wait()
	f.saveCursor()
	if f.iface != nil {
		_ = f.iface.Close()
	}
	f.store.Close()
}

// Crash is Close the hard way — no final cursor write, no store
// snapshot — for restart-torture tests.
func (f *Follower) Crash() error {
	if f.cancel != nil {
		f.cancel()
	}
	f.wg.Wait()
	if f.iface != nil {
		_ = f.iface.Close()
	}
	return f.store.Crash()
}

// run is the supervisor: it spawns one tailer per shard of the current
// topology and, whenever a tailer reports a topology change, tears the
// incarnation down, re-handshakes, and rebuilds — looping until Close.
func (f *Follower) run(ctx context.Context) {
	defer f.wg.Done()
	for ctx.Err() == nil {
		ictx, icancel := context.WithCancel(ctx)
		var tails sync.WaitGroup
		f.mu.Lock()
		shards := f.shards
		f.mu.Unlock()
		for i := 0; i < shards; i++ {
			tails.Add(1)
			go func(shard int) {
				defer tails.Done()
				f.tailShard(ictx, shard)
			}(i)
		}
		select {
		case <-ctx.Done():
		case <-f.resetCh:
		}
		icancel()
		tails.Wait()
		// Drain a duplicate signal raised by a second tailer before the
		// teardown — it describes the same topology change.
		select {
		case <-f.resetCh:
		default:
		}
		if ctx.Err() != nil {
			return
		}
		f.rehandshake(ctx)
	}
}

// signalReset notifies the supervisor of a topology change (idempotent —
// a second signal for the same change coalesces).
func (f *Follower) signalReset() {
	select {
	case f.resetCh <- struct{}{}:
	default:
	}
}

// rehandshake re-fetches the leader's Hello (retrying with capped
// exponential backoff while it is unreachable) and adopts whatever
// topology it names.
func (f *Follower) rehandshake(ctx context.Context) {
	bo := f.newBackoff()
	for ctx.Err() == nil {
		hello, err := handshake(ctx, f.hc, f.leader)
		if err == nil {
			f.adopt(hello)
			return
		}
		select {
		case <-ctx.Done():
		case <-time.After(bo.Next()):
		}
	}
}

// newBackoff builds the retry pacer used by the tail and re-handshake
// loops: base RetryDelay, capped at 50× the base (bounded by the global
// default cap) so tests with tiny retry delays stay fast while production
// followers settle near seconds, not milliseconds.
func (f *Follower) newBackoff() *backoff.Backoff {
	cap := 50 * f.retry
	if cap > backoff.DefaultCap {
		cap = backoff.DefaultCap
	}
	return &backoff.Backoff{Base: f.retry, Cap: cap}
}

// adopt reconciles a re-handshake's Hello: an unchanged topology was a
// false alarm (keep the cursors), a changed one is a new leader
// incarnation — wipe local state, adopt the new generation and shard
// count, and mark every shard for snapshot bootstrap.
func (f *Follower) adopt(h Hello) {
	f.mu.Lock()
	if h.Generation == f.gen && h.Shards == f.shards {
		for i, l := range h.LSNs {
			if i < len(f.leaderLSN) && l > f.leaderLSN[i] {
				f.leaderLSN[i] = l
			}
		}
		f.mu.Unlock()
		return
	}
	f.resetLocked(h)
	f.mu.Unlock()
	f.saveCursor()
}

// resetLocked wipes the follower for a new leader incarnation h: local
// store state (documents, journal, epochs), per-shard cursors (to the
// forced-bootstrap sentinel), and the adopted generation. Caller holds
// f.mu on the adopt path; OpenFollower calls it before the tailers
// exist.
func (f *Follower) resetLocked(h Hello) {
	f.gen = h.Generation
	f.shards = h.Shards
	f.applied = make([]uint64, h.Shards)
	for i := range f.applied {
		f.applied[i] = bootstrapCursor
	}
	f.leaderLSN = append([]uint64(nil), h.LSNs...)
	f.counters.resets++
	f.dirty = 0
	f.store.ResetReplicated(h.Generation)
}

// tailShard is one shard's tail loop: stream records from the last
// applied lsn, apply, and on a transient break — connection loss, torn
// frame, CRC mismatch — reconnect and re-fetch from the last applied
// lsn (the apply path skips versions it already has, so overlap is
// harmless). A topology change ends the loop and wakes the supervisor
// instead: the shard may not exist on the new leader, and retrying the
// old stream would spin hot against 400s forever.
func (f *Follower) tailShard(ctx context.Context, shard int) {
	bo := f.newBackoff()
	first := true
	for ctx.Err() == nil {
		if !first {
			f.mu.Lock()
			f.counters.reconnects++
			f.mu.Unlock()
			select {
			case <-ctx.Done():
				return
			case <-time.After(bo.Next()):
			}
		}
		first = false
		verdict, progressed := f.tailOnce(ctx, shard)
		if progressed {
			// The stream carried at least one good record: the next break
			// is a fresh failure, not a continuation of this streak.
			bo.Reset()
		}
		if verdict == tailReset {
			f.signalReset()
			return
		}
	}
}

// tailOnce holds one tail stream until it breaks, reports a topology
// change, or ctx ends. progressed reports whether at least one record was
// applied cleanly — the signal that resets the caller's reconnect
// backoff (a connection that dies before carrying anything does not).
func (f *Follower) tailOnce(ctx context.Context, shard int) (verdict tailVerdict, progressed bool) {
	after := f.appliedLSN(shard)
	url := fmt.Sprintf("%s%s?shard=%d&after=%d", f.leader, TailPath, shard, after)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return tailRetry, false
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return tailRetry, false
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode == http.StatusBadRequest {
		// Shard out of range: the leader restarted with fewer shards.
		return tailReset, false
	}
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != TailContentType {
		return tailRetry, false
	}
	gen, shards := f.topology()
	if g, perr := strconv.ParseUint(resp.Header.Get(GenerationHeader), 10, 64); perr == nil && g != 0 && g != gen {
		return tailReset, false
	}
	if n, perr := strconv.Atoi(resp.Header.Get(ShardsHeader)); perr == nil && n > 0 && n != shards {
		return tailReset, false
	}
	fr := newFrameReader(resp.Body)
	for {
		kind, payload, err := fr.next()
		if err != nil {
			if err == errCorruptFrame {
				f.mu.Lock()
				f.counters.frameErrors++
				f.mu.Unlock()
			}
			return tailRetry, progressed
		}
		v, err := f.applyFrame(shard, kind, payload)
		if err != nil {
			f.mu.Lock()
			f.counters.frameErrors++
			f.mu.Unlock()
			return tailRetry, progressed
		}
		if v == tailReset {
			return tailReset, progressed
		}
		progressed = true
	}
}

// applyFrame applies one decoded record and advances the shard cursor.
func (f *Follower) applyFrame(shard int, kind byte, payload []byte) (tailVerdict, error) {
	switch kind {
	case FrameCommit:
		lsn, evs, err := ifsvr.DecodeCommitFrame(payload)
		if err != nil {
			return tailRetry, err
		}
		f.store.ApplyReplicated(evs)
		f.advance(shard, lsn, func(c *Follower) { c.counters.batches++; c.counters.records++ })
	case FrameRemove:
		lsn, path, version, err := ifsvr.DecodeRemoveFrame(payload)
		if err != nil {
			return tailRetry, err
		}
		f.store.ApplyReplicatedRemove(path, version)
		f.advance(shard, lsn, func(c *Follower) { c.counters.removes++; c.counters.records++ })
	case FrameBootstrap:
		lsn, evs, err := ifsvr.DecodeCommitFrame(payload)
		if err != nil {
			return tailRetry, err
		}
		var meta bootstrapMeta
		if err := json.Unmarshal(payload, &meta); err != nil {
			return tailRetry, err
		}
		if gen, _ := f.topology(); meta.Generation != 0 && meta.Generation != gen {
			// The state transfer belongs to a leader incarnation we have
			// not adopted: applying it would interleave two incarnations'
			// versions. Re-handshake first.
			return tailReset, nil
		}
		f.store.ApplyReplicated(evs)
		for path, v := range meta.Retired {
			f.store.ApplyReplicatedRemove(path, v)
		}
		f.setBootstrapCursor(shard, lsn)
	case FrameHeartbeat:
		var hb heartbeatWire
		if err := json.Unmarshal(payload, &hb); err != nil {
			return tailRetry, err
		}
		f.mu.Lock()
		if hb.Lsn > f.leaderLSN[shard] {
			f.leaderLSN[shard] = hb.Lsn
		}
		f.counters.heartbeats++
		dirty := f.dirty > 0
		f.mu.Unlock()
		if dirty {
			// Idle moment: flush the debounced cursor so a quiet period
			// after an edit storm leaves the sidecar current.
			f.saveCursor()
		}
	default:
		return tailRetry, fmt.Errorf("repl: unknown frame kind %q", kind)
	}
	return tailRetry, nil
}

// advance records a shard's applied lsn (and the implied leader head)
// and debounces the cursor-sidecar write. A shard awaiting bootstrap
// keeps its sentinel — a stray data record cannot masquerade as a full
// state transfer.
func (f *Follower) advance(shard int, lsn uint64, count func(*Follower)) {
	f.mu.Lock()
	if f.applied[shard] != bootstrapCursor && lsn > f.applied[shard] {
		f.applied[shard] = lsn
	}
	if lsn > f.leaderLSN[shard] {
		f.leaderLSN[shard] = lsn
	}
	count(f)
	f.dirty++
	save := f.dirty >= cursorSaveEvery
	f.mu.Unlock()
	if save {
		f.saveCursor()
	}
}

// setBootstrapCursor installs a snapshot bootstrap's shard position —
// unconditionally, even downward: the bootstrap's state defines the
// cursor, and after a leader restart the new head is below the old one.
// Bootstraps are rare and load-bearing, so the cursor persists
// immediately rather than debounced.
func (f *Follower) setBootstrapCursor(shard int, lsn uint64) {
	f.mu.Lock()
	f.applied[shard] = lsn
	if lsn > f.leaderLSN[shard] {
		f.leaderLSN[shard] = lsn
	}
	f.counters.bootstraps++
	f.mu.Unlock()
	f.saveCursor()
}

func (f *Follower) appliedLSN(shard int) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied[shard]
}

// topology returns the currently adopted generation and shard count.
func (f *Follower) topology() (uint64, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen, f.shards
}

// loadCursor reads the cursor sidecar ("" dir, a missing file, or a torn
// write all read as no cursor — the follower just bootstraps).
func (f *Follower) loadCursor() (cursorState, bool) {
	if f.dir == "" {
		return cursorState{}, false
	}
	data, err := os.ReadFile(filepath.Join(f.dir, cursorFile))
	if err != nil {
		return cursorState{}, false
	}
	var cur cursorState
	if json.Unmarshal(data, &cur) != nil || len(cur.Applied) != cur.Shards {
		return cursorState{}, false
	}
	return cur, true
}

// saveCursor writes the cursor sidecar (best-effort, unsynced; see
// cursorFile) and resets the debounce counter.
func (f *Follower) saveCursor() {
	if f.dir == "" {
		f.mu.Lock()
		f.dirty = 0
		f.mu.Unlock()
		return
	}
	f.mu.Lock()
	cur := cursorState{Generation: f.gen, Shards: f.shards, Applied: append([]uint64(nil), f.applied...)}
	f.dirty = 0
	f.mu.Unlock()
	data, err := json.Marshal(cur)
	if err != nil {
		return
	}
	f.curMu.Lock()
	defer f.curMu.Unlock()
	tmp := filepath.Join(f.dir, cursorFile+".tmp")
	if os.WriteFile(tmp, data, 0o644) != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(f.dir, cursorFile))
}

// Lag is the follower's total backlog: sum over shards of the leader
// head minus the applied lsn, as last observed. A shard awaiting
// bootstrap counts its whole leader head as backlog.
func (f *Follower) Lag() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lagLocked()
}

func (f *Follower) lagLocked() uint64 {
	var lag uint64
	for i := range f.applied {
		switch {
		case f.applied[i] == bootstrapCursor:
			lag += f.leaderLSN[i]
		case f.leaderLSN[i] > f.applied[i]:
			lag += f.leaderLSN[i] - f.applied[i]
		}
	}
	return lag
}

// replicationStats is the follower's StoreStats.Replication block.
func (f *Follower) replicationStats() *ifsvr.ReplicationStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	applied := make([]uint64, len(f.applied))
	for i, l := range f.applied {
		if l != bootstrapCursor {
			applied[i] = l // sentinel reads as 0: no usable position yet
		}
	}
	return &ifsvr.ReplicationStats{
		Role:        "follower",
		LeaderURL:   f.leader,
		Generation:  f.gen,
		Shards:      f.shards,
		LSN:         applied,
		LeaderLSN:   append([]uint64(nil), f.leaderLSN...),
		Lag:         f.lagLocked(),
		Records:     f.counters.records,
		Batches:     f.counters.batches,
		Removes:     f.counters.removes,
		Bootstraps:  f.counters.bootstraps,
		Heartbeats:  f.counters.heartbeats,
		Reconnects:  f.counters.reconnects,
		Resets:      f.counters.resets,
		FrameErrors: f.counters.frameErrors,
	}
}
