// Package repl replicates the Interface Server's publication store:
// leader→follower WAL shipping over HTTP, read-only follower replicas,
// and a fronting director that spreads watchers across them.
//
// The design adds no new invariants — only a new transport for existing
// ones. The leader tails its own commit log (the lsn-numbered, CRC-framed
// records PR 5 put on disk) over a streaming HTTP endpoint; a follower
// applies those records through the ordinary commit machinery into its
// own store, installing the leader's versions, epochs, and restart
// generation verbatim. A watcher on a follower therefore sees the exact
// bytes, at the exact epochs, it would see on the leader, and failing
// over between replicas is the watch protocol's ordinary
// reconnect-with-replay — not a restart.
//
// See docs/replication.md for the wire protocol.
package repl

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"livedev/internal/ifsvr"
)

const (
	// TailPath is the leader's WAL-tail endpoint. A request without a
	// "shard" parameter answers the JSON handshake (Hello); with
	// "?shard=K&after=N" it streams shard K's records past lsn N.
	TailPath = "/.wal"

	// ReplicasPath is the director's endpoint-list resource.
	ReplicasPath = "/.replicas"

	// TailContentType marks a record stream (the handshake is plain JSON).
	TailContentType = "application/x-livedev-waltail"

	// GenerationHeader and ShardsHeader ride on every tail response. A
	// follower compares them to its adopted topology on each (re)connect
	// — a leader swap breaks the old stream, so the next connect's
	// headers reveal it — and treats a mismatch as a topology change:
	// re-handshake, reset local state, re-bootstrap. (Mid-stream, the
	// same check rides on every bootstrap frame's generation field.)
	GenerationHeader = "X-Repl-Generation"
	ShardsHeader     = "X-Repl-Shards"

	// Schema identifies the protocol revision in the handshake.
	Schema = "livedev/repl-tail/v1"
)

// Record kinds on the tail stream. Commit and remove records are the WAL
// records byte-for-byte; bootstrap and heartbeat exist only on the wire.
const (
	// FrameCommit is a committed batch: {"lsn":N,"events":[...]}.
	FrameCommit = ifsvr.FrameCommit
	// FrameRemove is a retirement: {"lsn":N,"path":...,"version":...}.
	FrameRemove = ifsvr.FrameRemove
	// FrameBootstrap is a snapshot state transfer, sent when the
	// follower's cursor is no longer serveable:
	// {"lsn":L,"generation":G,"epoch":E,"events":[...],"retired":{...}}.
	// The events array is the shard's current documents in epoch order;
	// lsn L is the shard position the state covers — tailing resumes
	// after L.
	FrameBootstrap = 'B'
	// FrameHeartbeat is liveness padding on an idle stream: {"lsn":N}
	// with the shard's current head, so a quiet follower still tracks
	// leader progress (and lag stays honest).
	FrameHeartbeat = 'H'
)

// Hello is the handshake body: GET TailPath with no shard parameter.
type Hello struct {
	Schema     string `json:"schema"`
	Generation uint64 `json:"generation"`
	Shards     int    `json:"shards"`
	Epoch      uint64 `json:"epoch"`
	// LSNs is each shard's head (last assigned lsn).
	LSNs []uint64 `json:"lsns"`
	// Floors is each shard's oldest still-serveable "after" cursor; a
	// follower below its shard's floor is answered with a bootstrap.
	Floors []uint64 `json:"floors"`
}

// bootstrapMeta is the part of a FrameBootstrap payload beyond what
// ifsvr.DecodeCommitFrame (lsn + events) already parses.
type bootstrapMeta struct {
	Generation uint64            `json:"generation"`
	Epoch      uint64            `json:"epoch"`
	Retired    map[string]uint64 `json:"retired,omitempty"`
}

// heartbeatWire is a FrameHeartbeat payload.
type heartbeatWire struct {
	Lsn uint64 `json:"lsn"`
}

// encodeHeartbeatFrame renders a liveness record at head lsn.
func encodeHeartbeatFrame(lsn uint64) []byte {
	body := make([]byte, 0, 24)
	body = append(body, `{"lsn":`...)
	body = strconv.AppendUint(body, lsn, 10)
	body = append(body, '}')
	return ifsvr.AppendFrame(nil, FrameHeartbeat, body)
}

// encodeBootstrapFrame packs a shard snapshot: state as of shard position
// lsn, documents spliced via their shared wire payloads, retirement
// floors alongside.
func encodeBootstrapFrame(lsn, generation, epoch uint64, evs []ifsvr.StoreEvent, retired map[string]uint64) []byte {
	n := 96
	for _, ev := range evs {
		n += len(ev.Payload) + 1
	}
	body := make([]byte, 0, n)
	body = append(body, `{"lsn":`...)
	body = strconv.AppendUint(body, lsn, 10)
	body = append(body, `,"generation":`...)
	body = strconv.AppendUint(body, generation, 10)
	body = append(body, `,"epoch":`...)
	body = strconv.AppendUint(body, epoch, 10)
	if len(retired) > 0 {
		rj, err := json.Marshal(retired)
		if err != nil {
			panic("repl: marshaling retired map: " + err.Error())
		}
		body = append(body, `,"retired":`...)
		body = append(body, rj...)
	}
	body = append(body, `,"events":[`...)
	for i, ev := range evs {
		if i > 0 {
			body = append(body, ',')
		}
		body = append(body, ev.Payload...)
	}
	body = append(body, "]}"...)
	return ifsvr.AppendFrame(nil, FrameBootstrap, body)
}

// errCorruptFrame reports a frame whose CRC (or framing) did not check
// out — the stream is poisoned past this point; the follower reconnects
// and re-fetches from its last applied lsn.
var errCorruptFrame = fmt.Errorf("repl: torn or corrupt tail frame")

// frameReader incrementally decodes CRC-framed records off a tail stream.
// A short read at a frame boundary is a clean EOF (io.EOF); inside a
// frame it is an io.ErrUnexpectedEOF; a CRC or framing violation is
// errCorruptFrame. Either way the reader is dead after the first error.
type frameReader struct {
	br *bufio.Reader
	// n counts bytes consumed by successfully decoded frames.
	n int64
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{br: bufio.NewReaderSize(r, 32<<10)}
}

// next returns the next record's kind and payload. The payload is only
// valid until the following call.
func (fr *frameReader) next() (kind byte, payload []byte, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(fr.br, hdr[:1]); err != nil {
		return 0, nil, err // EOF at a boundary is a clean end
	}
	if _, err := io.ReadFull(fr.br, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	length := uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24
	if length < 1 || length > ifsvr.MaxFrame {
		return 0, nil, errCorruptFrame
	}
	frame := make([]byte, 8+int(length))
	copy(frame, hdr[:])
	if _, err := io.ReadFull(fr.br, frame[8:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	kind, payload, n, ok := ifsvr.DecodeFrame(frame)
	if !ok {
		return 0, nil, errCorruptFrame
	}
	fr.n += int64(n)
	return kind, payload, nil
}
