package repl_test

import (
	"fmt"
	"net"
	"net/url"
	"strings"
	"testing"
	"time"

	"livedev/internal/ifsvr"
	"livedev/internal/repl"
)

// dialStalledTail opens a raw WAL-tail request for one shard and never
// reads the response — a frozen replication peer. The shrunken receive
// buffer keeps the kernel from absorbing the whole storm client-side.
func dialStalledTail(t *testing.T, base string, shard int) net.Conn {
	t.Helper()
	u, err := url.Parse(base)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4096)
	}
	req := fmt.Sprintf("GET %s?shard=%d&after=0 HTTP/1.1\r\nHost: %s\r\n\r\n", repl.TailPath, shard, u.Host)
	if _, err := conn.Write([]byte(req)); err != nil {
		_ = conn.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

// TestTailStalledClientEvictedFollowerUnaffected mirrors the watch-plane
// stall torture on the replication plane: a real follower and a stalled
// raw tail client share the leader. The publish storm must evict the
// stalled tail via the write deadline — counted in the leader's
// ReplicationStats.Evictions — while the follower rides the same storm
// out and converges on every byte.
func TestTailStalledClientEvictedFollowerUnaffected(t *testing.T) {
	st, _, base := startLeader(t, repl.TailConfig{
		Heartbeat:    100 * time.Millisecond,
		WriteTimeout: 300 * time.Millisecond,
		// The ring must outlast the storm so the follower tails it without
		// ever needing a bootstrap.
		History: 8192,
	})

	f := openFollower(t, base, ifsvr.StoreConfig{})
	defer f.Close()

	// A path pinned to shard 0, so the storm's records land on the shard
	// the stalled tail holds.
	var path string
	for i := 0; ; i++ {
		p := fmt.Sprintf("/doc/stall-%d", i)
		if ifsvr.ShardOf(p, repl.DefaultTailShards) == 0 {
			path = p
			break
		}
	}
	pad := strings.Repeat("x", 8<<10)
	st.Publish(path, "text/plain", "seed-"+pad)
	waitConverged(t, st, f.Store())

	_ = dialStalledTail(t, base, 0)
	// Let the leader accept the stalled tail before the storm.
	time.Sleep(100 * time.Millisecond)

	// The storm: publish until the write deadline evicts the stalled
	// tail. The cap exists because the kernel absorbs the first few MB in
	// socket buffers before the tail's write ever blocks.
	const maxEdits = 3000
	edits := 0
	deadline := time.Now().Add(90 * time.Second)
	for {
		if rs := st.Stats().Replication; rs != nil && rs.Evictions > 0 {
			break
		}
		if edits >= maxEdits || time.Now().After(deadline) {
			t.Fatalf("stalled tail never evicted (%d edits)", edits)
		}
		edits++
		st.Publish(path, "text/plain", fmt.Sprintf("content-%d-%s", edits, pad))
		time.Sleep(time.Millisecond)
	}

	// The follower was never the evicted party: it converges on the
	// post-storm state and its tail kept applying records throughout.
	st.Publish(path, "text/plain", "final-"+pad)
	waitConverged(t, st, f.Store())
	rs := f.Store().Stats().Replication
	if rs == nil || rs.Role != "follower" || rs.Records == 0 {
		t.Fatalf("follower Replication block = %+v", rs)
	}
}
