package repl_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"livedev/internal/ifsvr"
	"livedev/internal/repl"
)

// startLeader builds a leader: store, Interface Server view, tail server
// mounted at repl.TailPath.
func startLeader(t *testing.T, cfg repl.TailConfig) (*ifsvr.Store, *repl.TailServer, string) {
	t.Helper()
	st := ifsvr.NewStore(0, nil)
	srv := ifsvr.NewView(st)
	ts := repl.Attach(st, srv, cfg)
	base, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("starting leader: %v", err)
	}
	t.Cleanup(func() {
		_ = srv.Close()
		ts.Close()
		st.Close()
	})
	return st, ts, base
}

// waitConverged blocks until every follower store holds every leader
// path at (at least) the leader's version, then asserts content, epoch,
// and descriptor version match exactly.
func waitConverged(t *testing.T, leader *ifsvr.Store, followers ...*ifsvr.Store) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for _, path := range leader.Paths() {
		want, err := leader.Get(path)
		if err != nil {
			t.Fatalf("leader lost %s: %v", path, err)
		}
		for i, f := range followers {
			for {
				got, err := f.Get(path)
				if err == nil && got.Version >= want.Version {
					if got != want {
						t.Fatalf("follower %d diverged on %s:\n got %+v\nwant %+v", i, path, got, want)
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("follower %d never converged on %s (leader v%d)", i, path, want.Version)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
}

func openFollower(t *testing.T, leader string, storeCfg ifsvr.StoreConfig) *repl.Follower {
	t.Helper()
	f, err := repl.OpenFollower(repl.FollowerConfig{Leader: leader, Store: storeCfg, RetryDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("opening follower: %v", err)
	}
	return f
}

// TestReplicationSmoke is the CI convergence smoke: a leader plus two
// followers, a few publishes and a retirement, everyone converges, the
// followers serve the leader's generation over HTTP, and a write to a
// follower is misdirected (421) to the leader.
func TestReplicationSmoke(t *testing.T) {
	st, _, base := startLeader(t, repl.TailConfig{})

	f1 := openFollower(t, base, ifsvr.StoreConfig{})
	defer f1.Close()
	f2 := openFollower(t, base, ifsvr.StoreConfig{})
	defer f2.Close()
	f1URL, err := f1.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serving follower: %v", err)
	}

	for i := 0; i < 20; i++ {
		st.Publish(fmt.Sprintf("/doc/%d", i%5), "text/plain", fmt.Sprintf("content-%d", i))
	}
	st.Remove("/doc/4")
	waitConverged(t, st, f1.Store(), f2.Store())

	// The retirement replicated too.
	awaitRemoved(t, "/doc/4", f1.Store(), f2.Store())

	// Satellite fix: followers serve X-Store-Generation derived from the
	// LEADER's generation, not their own restart counter.
	doc, err := ifsvr.FetchContext(context.Background(), nil, f1URL+"/doc/1")
	if err != nil {
		t.Fatalf("fetching from follower: %v", err)
	}
	if doc.Generation != st.Generation() {
		t.Fatalf("follower served generation %d, want the leader's %d", doc.Generation, st.Generation())
	}

	// Publications to a follower are misdirected to the leader.
	resp, err := http.Post(f1URL+"/doc/1", "text/plain", strings.NewReader("nope"))
	if err != nil {
		t.Fatalf("posting to follower: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("publish to follower: HTTP %d, want %d", resp.StatusCode, http.StatusMisdirectedRequest)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, base) {
		t.Fatalf("misdirect Location = %q, want leader %q", loc, base)
	}
	// And the follower's own store drops local publishes.
	if v := f1.Store().Publish("/doc/1", "text/plain", "local write"); v != 0 {
		t.Fatalf("read-only follower store accepted a publish (v%d)", v)
	}

	// Replication stats blocks carry the roles.
	if rs := st.Stats().Replication; rs == nil || rs.Role != "leader" {
		t.Fatalf("leader Replication block = %+v", rs)
	}
	rs := f1.Store().Stats().Replication
	if rs == nil || rs.Role != "follower" || rs.Generation != st.Generation() {
		t.Fatalf("follower Replication block = %+v", rs)
	}
	if rs.Records == 0 {
		t.Fatalf("follower applied no records: %+v", rs)
	}
}

func awaitRemoved(t *testing.T, path string, stores ...*ifsvr.Store) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for _, st := range stores {
		for {
			if _, err := st.Get(path); err != nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never retired on follower", path)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestFollowerRestartResumes kills a durable follower mid-stream and
// restarts it over the same data dir: it must resume from its durable
// lsn with zero missed and zero duplicated versions across the two
// incarnations.
func TestFollowerRestartResumes(t *testing.T) {
	st, _, base := startLeader(t, repl.TailConfig{History: 100000})
	dir := t.TempDir()

	const paths = 4
	const versionsPerPath = 120
	pathOf := func(i int) string { return fmt.Sprintf("/storm/%d", i) }

	type seenEvent struct {
		path    string
		version uint64
	}
	var seenMu sync.Mutex
	var seen []seenEvent
	record := func(ev ifsvr.StoreEvent) {
		seenMu.Lock()
		seen = append(seen, seenEvent{ev.Path, ev.Doc.Version})
		seenMu.Unlock()
	}

	f := openFollower(t, base, ifsvr.StoreConfig{Dir: dir})
	f.Store().Subscribe(record)

	// Storm while the follower tails.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := 0; v < versionsPerPath; v++ {
			for p := 0; p < paths; p++ {
				st.Publish(pathOf(p), "text/plain", fmt.Sprintf("v%d", v))
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Let some of the storm replicate, then kill the follower mid-stream.
	// The subscription rides until Close: everything applied is recorded.
	time.Sleep(15 * time.Millisecond)
	f.Close()

	<-done // leader finishes the storm while the follower is down

	// Restart over the same dir: tailing resumes from the durable cursor.
	f2 := openFollower(t, base, ifsvr.StoreConfig{Dir: dir})
	defer f2.Close()
	f2.Store().Subscribe(record)
	waitConverged(t, st, f2.Store())

	// Zero miss, zero dup: per path, the two incarnations together fanned
	// out every version exactly once, in order.
	seenMu.Lock()
	defer seenMu.Unlock()
	next := make(map[string]uint64)
	for p := 0; p < paths; p++ {
		next[pathOf(p)] = 1
	}
	for _, ev := range seen {
		if ev.version != next[ev.path] {
			t.Fatalf("%s: fanned out v%d, want v%d (dup or miss across restart)", ev.path, ev.version, next[ev.path])
		}
		next[ev.path]++
	}
	for p := 0; p < paths; p++ {
		if got := next[pathOf(p)] - 1; got != versionsPerPath {
			t.Fatalf("%s: fanned out %d versions, want %d", pathOf(p), got, versionsPerPath)
		}
	}
	if rs := f2.Store().Stats().Replication; rs == nil || rs.Bootstraps != 0 {
		t.Fatalf("restart should resume by tailing, not bootstrap: %+v", rs)
	}
}

// TestLeaderCompactionBootstrap forces the snapshot-bootstrap path: the
// leader's tail ring is tiny, the follower connects after far more
// commits than the ring holds, so its cursor is below the floor and the
// leader answers with a state transfer before live records.
func TestLeaderCompactionBootstrap(t *testing.T) {
	st, _, base := startLeader(t, repl.TailConfig{Shards: 2, History: 4})

	for i := 0; i < 200; i++ {
		st.Publish(fmt.Sprintf("/doc/%d", i%8), "text/plain", fmt.Sprintf("content-%d", i))
	}
	st.Remove("/doc/7")

	f := openFollower(t, base, ifsvr.StoreConfig{})
	defer f.Close()
	waitConverged(t, st, f.Store())
	awaitRemoved(t, "/doc/7", f.Store())

	rs := f.Store().Stats().Replication
	if rs == nil || rs.Bootstraps == 0 {
		t.Fatalf("follower should have bootstrapped: %+v", rs)
	}
	// Live records flow after the bootstrap.
	st.Publish("/doc/0", "text/plain", "after-bootstrap")
	waitConverged(t, st, f.Store())
}

// corruptingProxy proxies the leader's tail endpoint, flipping one byte
// of the record stream after `after` bytes — once. The follower must
// reject the frame by CRC, reconnect (through the now-clean proxy), and
// re-fetch from its last applied lsn.
func corruptingProxy(t *testing.T, leader string, after int) *httptest.Server {
	t.Helper()
	var corrupted atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, leader+r.URL.RequestURI(), nil)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer func() { _ = resp.Body.Close() }()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		fl := w.(http.Flusher)
		fl.Flush()
		streaming := r.URL.Query().Get("shard") != ""
		buf := make([]byte, 4096)
		total := 0
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				chunk := buf[:n]
				if streaming && total+n > after && corrupted.CompareAndSwap(false, true) {
					i := after - total
					if i < 0 || i >= n {
						i = n - 1
					}
					chunk[i] ^= 0xFF
				}
				total += n
				if _, werr := w.Write(chunk); werr != nil {
					return
				}
				fl.Flush()
			}
			if err != nil {
				return
			}
		}
	}))
	t.Cleanup(proxy.Close)
	return proxy
}

// TestCorruptTailFrameRefetched injects a bit-flipped record on the wire
// and asserts the follower rejects it by CRC, reconnects, re-fetches,
// and still converges byte-exactly.
func TestCorruptTailFrameRefetched(t *testing.T) {
	st, _, base := startLeader(t, repl.TailConfig{Shards: 1, History: 100000})
	for i := 0; i < 40; i++ {
		st.Publish("/doc/a", "text/plain", fmt.Sprintf("content-%d", i))
	}

	proxy := corruptingProxy(t, base, 700)
	f := openFollower(t, proxy.URL, ifsvr.StoreConfig{})
	defer f.Close()

	waitConverged(t, st, f.Store())
	rs := f.Store().Stats().Replication
	if rs == nil || rs.FrameErrors == 0 {
		t.Fatalf("expected a CRC-rejected frame: %+v", rs)
	}
	if rs.Reconnects == 0 {
		t.Fatalf("expected a reconnect after the rejected frame: %+v", rs)
	}
}

// TestEditStormByteIdentical runs a concurrent edit storm on the leader
// (race-enabled in CI) and asserts every epoch's fanned-out event bytes
// are identical on leader and follower.
func TestEditStormByteIdentical(t *testing.T) {
	st, _, base := startLeader(t, repl.TailConfig{History: 100000})

	collect := func(st *ifsvr.Store) (*sync.Mutex, map[uint64][]string) {
		mu := &sync.Mutex{}
		m := make(map[uint64][]string)
		st.Subscribe(func(ev ifsvr.StoreEvent) {
			mu.Lock()
			m[ev.Doc.Epoch] = append(m[ev.Doc.Epoch], string(ev.Payload))
			mu.Unlock()
		})
		return mu, m
	}
	lmu, leaderEvents := collect(st)

	f := openFollower(t, base, ifsvr.StoreConfig{})
	defer f.Close()
	fmu, followerEvents := collect(f.Store())

	const writers = 4
	const editsPerWriter = 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < editsPerWriter; i++ {
				st.Publish(fmt.Sprintf("/storm/%d", w), "text/plain", fmt.Sprintf("w%d-i%d", w, i))
			}
		}(w)
	}
	wg.Wait()
	waitConverged(t, st, f.Store())

	lmu.Lock()
	defer lmu.Unlock()
	fmu.Lock()
	defer fmu.Unlock()
	if len(leaderEvents) != writers*editsPerWriter {
		t.Fatalf("leader fanned out %d epochs, want %d", len(leaderEvents), writers*editsPerWriter)
	}
	for epoch, levs := range leaderEvents {
		fevs := followerEvents[epoch]
		if len(fevs) != len(levs) {
			t.Fatalf("epoch %d: follower fanned out %d events, leader %d", epoch, len(fevs), len(levs))
		}
		for i := range levs {
			if fevs[i] != levs[i] {
				t.Fatalf("epoch %d event %d: follower bytes differ:\n  leader   %s\n  follower %s",
					epoch, i, levs[i], fevs[i])
			}
		}
	}
}

// TestDirector pins the fronting tier: /.replicas lists the fleet with
// roles, GETs are spread (307) across healthy replicas, and writes are
// misdirected (421) to the leader.
func TestDirector(t *testing.T) {
	st, _, base := startLeader(t, repl.TailConfig{})
	st.Publish("/doc/a", "text/plain", "hello")

	f1 := openFollower(t, base, ifsvr.StoreConfig{})
	defer f1.Close()
	f2 := openFollower(t, base, ifsvr.StoreConfig{})
	defer f2.Close()
	f1URL, err := f1.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serving follower 1: %v", err)
	}
	f2URL, err := f2.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serving follower 2: %v", err)
	}
	waitConverged(t, st, f1.Store(), f2.Store())

	d := repl.NewDirector(repl.DirectorConfig{
		Endpoints: []string{base, f1URL, f2URL},
		Interval:  20 * time.Millisecond,
	})
	dURL, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("starting director: %v", err)
	}
	defer func() { _ = d.Close() }()

	// The endpoint list names every replica; roles settle after a check.
	deadline := time.Now().Add(5 * time.Second)
	for {
		set := d.Replicas()
		roles := make(map[string]string)
		for _, r := range set.Endpoints {
			if r.Healthy {
				roles[r.URL] = r.Role
			}
		}
		if roles[base] == "leader" && roles[f1URL] == "follower" && roles[f2URL] == "follower" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("director never settled roles: %+v", set)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// GETs through the director spread across replicas: the 307 target
	// host changes across consecutive requests.
	targets := make(map[string]bool)
	noFollow := &http.Client{CheckRedirect: func(req *http.Request, via []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	for i := 0; i < 9; i++ {
		resp, err := noFollow.Get(dURL + "/doc/a")
		if err != nil {
			t.Fatalf("GET via director: %v", err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusTemporaryRedirect {
			t.Fatalf("director GET: HTTP %d, want 307", resp.StatusCode)
		}
		targets[resp.Header.Get("Location")] = true
	}
	if len(targets) < 3 {
		t.Fatalf("director only spread across %d replicas: %v", len(targets), targets)
	}

	// A default client follows the redirect to a real document.
	resp, err := http.Get(dURL + "/doc/a")
	if err != nil {
		t.Fatalf("GET via director: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if string(body) != "hello" {
		t.Fatalf("GET via director served %q", body)
	}

	// Writes are misdirected to the leader.
	resp, err = http.Post(dURL+"/doc/a", "text/plain", strings.NewReader("nope"))
	if err != nil {
		t.Fatalf("POST via director: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("POST via director: HTTP %d, want 421", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, base) {
		t.Fatalf("POST misdirect Location = %q, want leader %q", loc, base)
	}
}

// TestFollowerWatchStream pins that a held SSE watch on a FOLLOWER sees
// live leader commits — the whole point of the read plane.
func TestFollowerWatchStream(t *testing.T) {
	st, _, base := startLeader(t, repl.TailConfig{})
	st.Publish("/doc/w", "text/plain", "v1")

	f := openFollower(t, base, ifsvr.StoreConfig{})
	defer f.Close()
	fURL, err := f.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serving follower: %v", err)
	}
	waitConverged(t, st, f.Store())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got := make(chan ifsvr.StreamEvent, 16)
	go func() {
		_ = ifsvr.WatchStream(ctx, nil, fURL+"/doc/w", 0, func(ev ifsvr.StreamEvent) {
			got <- ev
		})
	}()

	// First the replayed/current v1, then a live v2 published on the
	// LEADER must arrive over the follower's stream.
	ev := <-got
	if ev.Doc.Version != 1 {
		t.Fatalf("first stream event v%d, want v1", ev.Doc.Version)
	}
	st.Publish("/doc/w", "text/plain", "v2")
	select {
	case ev = <-got:
		if ev.Doc.Version != 2 || ev.Doc.Content != "v2" {
			t.Fatalf("live event = %+v, want v2", ev.Doc)
		}
	case <-ctx.Done():
		t.Fatal("live leader commit never reached the follower's SSE stream")
	}
}

// swappableFront fronts a replaceable leader handler behind one stable
// URL — a stand-in for a leader process restarting behind its address.
// Swapping the handler does NOT break held connections (neither does a
// reverse proxy); callers use CloseClientConnections on the fronting
// httptest server to simulate the TCP teardown of a real process death.
type swappableFront struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swappableFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "leader down", http.StatusBadGateway)
		return
	}
	h.ServeHTTP(w, r)
}

func (s *swappableFront) swap(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// leaderBehind builds a leader (store + view + tail server) mounted on
// a swappable front instead of its own listener.
func leaderBehind(t *testing.T, sw *swappableFront, st *ifsvr.Store, cfg repl.TailConfig) *repl.TailServer {
	t.Helper()
	srv := ifsvr.NewView(st)
	ts := repl.Attach(st, srv, cfg)
	sw.swap(srv)
	t.Cleanup(ts.Close)
	return ts
}

func awaitResets(t *testing.T, f *repl.Follower, want uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		rs := f.Store().Stats().Replication
		if rs != nil && rs.Resets >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never reset (want >= %d): %+v", want, rs)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLeaderStateLossReset is the review's headline scenario: the leader
// dies losing all state, and a new one (new generation, fresh low
// versions) comes up at the same address. The follower must detect the
// generation change, re-handshake, wipe its stale state, re-bootstrap,
// and converge on the new incarnation — not silently keep serving the
// dead one while its version filter swallows every new commit.
func TestLeaderStateLossReset(t *testing.T) {
	sw := &swappableFront{}
	front := httptest.NewServer(sw)
	t.Cleanup(front.Close)

	st1 := ifsvr.NewStore(0, nil)
	t.Cleanup(st1.Close)
	leaderBehind(t, sw, st1, repl.TailConfig{})
	for i := 0; i < 5; i++ {
		st1.Publish("/doc/a", "text/plain", fmt.Sprintf("old-%d", i))
	}
	st1.Publish("/old/only", "text/plain", "stale")

	f := openFollower(t, front.URL, ifsvr.StoreConfig{})
	defer f.Close()
	fURL, err := f.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serving follower: %v", err)
	}
	f.Iface().HeartbeatInterval = 20 * time.Millisecond
	waitConverged(t, st1, f.Store())

	// A held SSE watch on the follower, to be cut loose by the reset.
	watchCtx, watchCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer watchCancel()
	watchErr := make(chan error, 1)
	go func() {
		watchErr <- ifsvr.WatchStream(watchCtx, nil, fURL+"/doc/a", 0, func(ifsvr.StreamEvent) {})
	}()

	// The leader dies with total state loss; its replacement has one low
	// version of /doc/a and a brand-new path.
	st2 := ifsvr.NewStore(0, nil)
	t.Cleanup(st2.Close)
	st2.Publish("/doc/a", "text/plain", "fresh")
	st2.Publish("/new/only", "text/plain", "born")
	leaderBehind(t, sw, st2, repl.TailConfig{})
	front.CloseClientConnections()

	awaitResets(t, f, 1)
	waitConverged(t, st2, f.Store())
	awaitRemoved(t, "/old/only", f.Store())

	// The new leader's LOW version won, not the dead incarnation's high one.
	got, err := f.Store().Get("/doc/a")
	if err != nil || got.Version != 1 || got.Content != "fresh" {
		t.Fatalf("follower /doc/a = %+v, %v; want v1 %q", got, err, "fresh")
	}
	if g := f.Store().Generation(); g != st2.Generation() {
		t.Fatalf("follower generation %d, want the new leader's %d", g, st2.Generation())
	}
	rs := f.Store().Stats().Replication
	if rs == nil || rs.Generation != st2.Generation() || rs.Resets == 0 {
		t.Fatalf("follower Replication block after reset = %+v", rs)
	}

	// The held stream ended (the follower's restart signal to watchers):
	// the client reconnects and reads the new generation.
	select {
	case err := <-watchErr:
		if err == nil {
			t.Fatal("watch stream returned nil, want a broken-stream error")
		}
	case <-watchCtx.Done():
		t.Fatal("held SSE stream survived the generation reset")
	}
	doc, err := ifsvr.FetchContext(context.Background(), nil, fURL+"/doc/a")
	if err != nil || doc.Generation != st2.Generation() {
		t.Fatalf("post-reset fetch = %+v, %v; want generation %d", doc, err, st2.Generation())
	}
}

// TestLeaderRestartDurableRehandshake restarts a DURABLE leader over its
// data dir: the generation bumps (every open does), the in-memory tail
// rings restart at lsn 0, and the follower must re-handshake and
// re-bootstrap — converging on the preserved state with its original
// versions intact.
func TestLeaderRestartDurableRehandshake(t *testing.T) {
	sw := &swappableFront{}
	front := httptest.NewServer(sw)
	t.Cleanup(front.Close)
	dir := t.TempDir()

	st1, err := ifsvr.OpenStore(ifsvr.StoreConfig{Dir: dir})
	if err != nil {
		t.Fatalf("opening leader store: %v", err)
	}
	ts1 := leaderBehind(t, sw, st1, repl.TailConfig{})
	for i := 0; i < 3; i++ {
		st1.Publish("/doc/d", "text/plain", fmt.Sprintf("v%d", i+1))
	}
	st1.Publish("/doc/e", "text/plain", "only")

	f := openFollower(t, front.URL, ifsvr.StoreConfig{})
	defer f.Close()
	waitConverged(t, st1, f.Store())

	// Clean restart of the leader process over the same dir.
	sw.swap(nil)
	ts1.Close()
	st1.Close()
	front.CloseClientConnections()
	st2, err := ifsvr.OpenStore(ifsvr.StoreConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopening leader store: %v", err)
	}
	t.Cleanup(st2.Close)
	if st2.Generation() == st1.Generation() {
		t.Fatalf("reopen did not bump the generation (%d)", st2.Generation())
	}
	leaderBehind(t, sw, st2, repl.TailConfig{})

	awaitResets(t, f, 1)
	waitConverged(t, st2, f.Store())
	got, err := f.Store().Get("/doc/d")
	if err != nil || got.Version != 3 {
		t.Fatalf("follower /doc/d = %+v, %v; want the durable v3", got, err)
	}
	rs := f.Store().Stats().Replication
	if rs == nil || rs.Generation != st2.Generation() || rs.Bootstraps == 0 {
		t.Fatalf("durable restart should re-bootstrap under the new generation: %+v", rs)
	}

	// Post-restart commits keep flowing.
	st2.Publish("/doc/d", "text/plain", "v4")
	waitConverged(t, st2, f.Store())
}

// TestLeaderReshardRebuild restarts the leader with FEWER replication
// shards: the follower's extra tailers are answered 400 (shard out of
// range) and must treat that as a topology change — re-handshake and
// rebuild the tailer set — instead of hot-spinning on the dead shard
// forever while the survivors cover only part of the keyspace.
func TestLeaderReshardRebuild(t *testing.T) {
	sw := &swappableFront{}
	front := httptest.NewServer(sw)
	t.Cleanup(front.Close)

	st1 := ifsvr.NewStore(0, nil)
	t.Cleanup(st1.Close)
	leaderBehind(t, sw, st1, repl.TailConfig{Shards: 4})
	for i := 0; i < 16; i++ {
		st1.Publish(fmt.Sprintf("/doc/%d", i), "text/plain", "four-shards")
	}

	f := openFollower(t, front.URL, ifsvr.StoreConfig{})
	defer f.Close()
	waitConverged(t, st1, f.Store())

	st2 := ifsvr.NewStore(0, nil)
	t.Cleanup(st2.Close)
	for i := 0; i < 16; i++ {
		st2.Publish(fmt.Sprintf("/doc/%d", i), "text/plain", "two-shards")
	}
	leaderBehind(t, sw, st2, repl.TailConfig{Shards: 2})
	front.CloseClientConnections()

	awaitResets(t, f, 1)
	waitConverged(t, st2, f.Store())
	rs := f.Store().Stats().Replication
	if rs == nil || rs.Shards != 2 || len(rs.LSN) != 2 {
		t.Fatalf("follower did not adopt the new shard count: %+v", rs)
	}
	// Live commits reach every path — both surviving shards are tailed.
	for i := 0; i < 16; i++ {
		st2.Publish(fmt.Sprintf("/doc/%d", i), "text/plain", "two-shards-live")
	}
	waitConverged(t, st2, f.Store())
}

// TestPrimedLeaderFirstConnectBootstraps attaches the tail server to a
// store that ALREADY has state (a restarted durable leader): its rings
// are empty and its lsns start at 0, so a fresh follower's after=0 can
// not be served by streaming — the leader must answer it with a
// snapshot bootstrap, not an empty caught-up stream.
func TestPrimedLeaderFirstConnectBootstraps(t *testing.T) {
	st := ifsvr.NewStore(0, nil)
	srv := ifsvr.NewView(st)
	for i := 0; i < 10; i++ {
		st.Publish(fmt.Sprintf("/pre/%d", i%3), "text/plain", fmt.Sprintf("v%d", i))
	}
	// Attach AFTER the state exists — none of it is in the rings.
	ts := repl.Attach(st, srv, repl.TailConfig{})
	base, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("starting leader: %v", err)
	}
	t.Cleanup(func() {
		_ = srv.Close()
		ts.Close()
		st.Close()
	})

	f := openFollower(t, base, ifsvr.StoreConfig{})
	defer f.Close()
	waitConverged(t, st, f.Store())
	rs := f.Store().Stats().Replication
	if rs == nil || rs.Bootstraps == 0 {
		t.Fatalf("pre-attach state must arrive by bootstrap: %+v", rs)
	}
	// And live tailing resumes past the bootstrap.
	st.Publish("/pre/0", "text/plain", "live")
	waitConverged(t, st, f.Store())
}
