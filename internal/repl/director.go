package repl

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// DefaultHealthInterval paces the director's replica health checks.
const DefaultHealthInterval = time.Second

// Replica is one entry of the director's endpoint list.
type Replica struct {
	// URL is the replica's Interface Server base URL.
	URL string `json:"url"`
	// Role is "leader" or "follower" (from the replica's /.stats
	// Replication block; an unreplicated single server reads as
	// "leader").
	Role string `json:"role"`
	// Healthy reports the last health check.
	Healthy bool `json:"healthy"`
}

// ReplicaSet is the ReplicasPath resource body.
type ReplicaSet struct {
	Endpoints []Replica `json:"endpoints"`
}

// DirectorConfig configures NewDirector.
type DirectorConfig struct {
	// Endpoints lists the replicas to front. The first entry is assumed
	// the leader until a health check says otherwise.
	Endpoints []string
	// Interval paces health checks (0 means DefaultHealthInterval).
	Interval time.Duration
	// HTTPClient overrides the health-check client.
	HTTPClient *http.Client
}

// Director is the tiny fronting tier: it health-checks the replicas,
// publishes the endpoint list at ReplicasPath (endpoint-aware clients —
// livedev.WithDirector — fetch it once and fail over client-side), and
// spreads endpoint-oblivious watchers by answering every other GET with
// a 307 redirect to the next healthy replica round-robin (http.Client
// follows a 307 GET transparently, SSE streams included). Non-GET
// requests are misdirected (421) to the leader, like a follower would.
type Director struct {
	endpoints []string
	interval  time.Duration
	hc        *http.Client

	mu      sync.Mutex
	replica []Replica
	next    int

	httpSrv  *http.Server
	listener net.Listener
	baseURL  string
	done     chan struct{}
	cancel   context.CancelFunc
}

// NewDirector builds a director over the given replica endpoints and
// starts its health loop; call Start to serve, Close to stop.
func NewDirector(cfg DirectorConfig) *Director {
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 2 * time.Second}
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = DefaultHealthInterval
	}
	d := &Director{
		endpoints: append([]string(nil), cfg.Endpoints...),
		interval:  interval,
		hc:        hc,
		replica:   make([]Replica, len(cfg.Endpoints)),
	}
	for i, ep := range d.endpoints {
		role := "follower"
		if i == 0 {
			role = "leader"
		}
		// Optimistically healthy until the first check: a client arriving
		// before the loop's first pass should be spread, not bounced.
		d.replica[i] = Replica{URL: ep, Role: role, Healthy: true}
	}
	ctx, cancel := context.WithCancel(context.Background())
	d.cancel = cancel
	go d.healthLoop(ctx)
	return d
}

// healthLoop polls every replica's /.stats on the configured cadence.
func (d *Director) healthLoop(ctx context.Context) {
	t := time.NewTicker(d.interval)
	defer t.Stop()
	for {
		d.checkAll(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

func (d *Director) checkAll(ctx context.Context) {
	for i, ep := range d.endpoints {
		healthy, role := d.checkOne(ctx, ep)
		d.mu.Lock()
		d.replica[i].Healthy = healthy
		if role != "" {
			d.replica[i].Role = role
		}
		d.mu.Unlock()
	}
}

// checkOne probes one replica's stats endpoint; a 200 is healthy, and
// the Replication block (when present) names the replica's role.
func (d *Director) checkOne(ctx context.Context, ep string) (healthy bool, role string) {
	cctx, cancel := context.WithTimeout(ctx, d.interval)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, ep+"/.stats", nil)
	if err != nil {
		return false, ""
	}
	resp, err := d.hc.Do(req)
	if err != nil {
		return false, ""
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return false, ""
	}
	var stats struct {
		Replication *struct {
			Role string
		}
	}
	if json.NewDecoder(resp.Body).Decode(&stats) == nil && stats.Replication != nil {
		role = stats.Replication.Role
	}
	return true, role
}

// Replicas snapshots the endpoint list.
func (d *Director) Replicas() ReplicaSet {
	d.mu.Lock()
	defer d.mu.Unlock()
	return ReplicaSet{Endpoints: append([]Replica(nil), d.replica...)}
}

// leaderURL is the current leader's endpoint (falling back to the first
// endpoint when no replica reports the role).
func (d *Director) leaderURL() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range d.replica {
		if r.Role == "leader" {
			return r.URL
		}
	}
	if len(d.replica) > 0 {
		return d.replica[0].URL
	}
	return ""
}

// pick returns the next healthy replica round-robin ("" when none is).
func (d *Director) pick() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := 0; i < len(d.replica); i++ {
		r := d.replica[d.next%len(d.replica)]
		d.next++
		if r.Healthy {
			return r.URL
		}
	}
	return ""
}

// ServeHTTP implements the director's three behaviors: the endpoint
// list, the leader misdirect for writes, and the round-robin redirect
// for everything else.
func (d *Director) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		leader := d.leaderURL()
		if leader == "" {
			http.Error(w, "no replicas configured", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Location", leader+r.URL.RequestURI())
		http.Error(w, "director is read-routing only; publish to the leader at "+leader,
			http.StatusMisdirectedRequest)
		return
	}
	if r.URL.Path == ReplicasPath {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		_ = json.NewEncoder(w).Encode(d.Replicas())
		return
	}
	target := d.pick()
	if target == "" {
		http.Error(w, "no healthy replica", http.StatusServiceUnavailable)
		return
	}
	http.Redirect(w, r, target+r.URL.RequestURI(), http.StatusTemporaryRedirect)
}

// Start begins serving on addr and returns the base URL.
func (d *Director) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("repl: director listen %s: %w", addr, err)
	}
	d.listener = ln
	d.baseURL = "http://" + ln.Addr().String()
	d.httpSrv = &http.Server{Handler: d, ReadHeaderTimeout: 10 * time.Second}
	d.done = make(chan struct{})
	go func() {
		defer close(d.done)
		_ = d.httpSrv.Serve(ln)
	}()
	return d.baseURL, nil
}

// BaseURL returns the director's base URL ("" before Start).
func (d *Director) BaseURL() string { return d.baseURL }

// Close stops the health loop and the HTTP server.
func (d *Director) Close() error {
	d.cancel()
	if d.httpSrv == nil {
		return nil
	}
	err := d.httpSrv.Close()
	<-d.done
	return err
}
