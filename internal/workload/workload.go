// Package workload provides deterministic workload generation and
// measurement for the experiments: a developer editing model (bursts of
// interface edits separated by think time, driving the Section 5.6
// publication-strategy study), and round-trip-time statistics for the
// Table 1 reproduction.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"livedev/internal/dyn"
)

// EditKind classifies one edit in a developer trace.
type EditKind int

// The edit kinds the generator produces. Interface edits arm the SDE
// publication timer; body edits do not.
const (
	EditRename EditKind = iota + 1
	EditSetParams
	EditSetResult
	EditToggleDistributed
	EditBody
)

// String names the edit kind.
func (k EditKind) String() string {
	switch k {
	case EditRename:
		return "rename"
	case EditSetParams:
		return "set-params"
	case EditSetResult:
		return "set-result"
	case EditToggleDistributed:
		return "toggle-distributed"
	case EditBody:
		return "edit-body"
	default:
		return "unknown"
	}
}

// Edit is one step of a developer trace: wait Delay, then perform Kind.
type Edit struct {
	Delay time.Duration
	Kind  EditKind
}

// TraceConfig parameterizes the editing model: a developer edits in bursts
// (rapid consecutive edits while restructuring a signature), separated by
// think time (reading, testing, writing bodies).
type TraceConfig struct {
	// Seed makes the trace reproducible.
	Seed int64
	// Bursts is the number of edit bursts.
	Bursts int
	// BurstLen is the mean number of edits per burst.
	BurstLen int
	// IntraBurst is the mean delay between edits inside a burst.
	IntraBurst time.Duration
	// ThinkTime is the mean delay between bursts.
	ThinkTime time.Duration
	// BodyEditFraction is the probability an edit is implementation-only.
	BodyEditFraction float64
}

// DefaultTrace is a plausible editing session: 20 bursts of ~5 edits,
// 150 ms between keystroke-level edits, 3 s of think time between bursts.
func DefaultTrace(seed int64) TraceConfig {
	return TraceConfig{
		Seed:             seed,
		Bursts:           20,
		BurstLen:         5,
		IntraBurst:       150 * time.Millisecond,
		ThinkTime:        3 * time.Second,
		BodyEditFraction: 0.3,
	}
}

// Generate produces the deterministic edit trace for the configuration.
func Generate(cfg TraceConfig) []Edit {
	r := rand.New(rand.NewSource(cfg.Seed))
	var trace []Edit
	kinds := []EditKind{EditRename, EditSetParams, EditSetResult, EditToggleDistributed}
	jitter := func(mean time.Duration) time.Duration {
		if mean <= 0 {
			return 0
		}
		// 50%..150% of the mean, uniformly.
		f := 0.5 + r.Float64()
		return time.Duration(float64(mean) * f)
	}
	for b := 0; b < cfg.Bursts; b++ {
		n := cfg.BurstLen
		if n <= 0 {
			n = 1
		}
		// Burst length varies ±50%.
		n = 1 + r.Intn(2*n)
		for i := 0; i < n; i++ {
			delay := jitter(cfg.IntraBurst)
			if i == 0 {
				delay = jitter(cfg.ThinkTime)
			}
			kind := kinds[r.Intn(len(kinds))]
			if r.Float64() < cfg.BodyEditFraction {
				kind = EditBody
			}
			trace = append(trace, Edit{Delay: delay, Kind: kind})
		}
	}
	return trace
}

// Apply performs one edit on the class's method id, deterministically
// derived from step so traces replay identically. It reports whether the
// edit was interface-affecting by construction.
func Apply(class *dyn.Class, id dyn.MemberID, e Edit, step int) (bool, error) {
	switch e.Kind {
	case EditRename:
		return true, class.RenameMethod(id, fmt.Sprintf("op_%d", step))
	case EditSetParams:
		params := make([]dyn.Param, 1+step%3)
		for i := range params {
			params[i] = dyn.Param{Name: fmt.Sprintf("p%d", i), Type: dyn.Int32T}
		}
		return true, class.SetParams(id, params)
	case EditSetResult:
		results := []*dyn.Type{dyn.Int32T, dyn.Int64T, dyn.StringT, dyn.Float64T}
		return true, class.SetResult(id, results[step%len(results)])
	case EditToggleDistributed:
		// Toggle twice is a no-op; alternate to keep it affecting.
		return true, class.SetDistributed(id, step%2 == 0)
	case EditBody:
		return false, class.SetBody(id, func(*dyn.Instance, []dyn.Value) (dyn.Value, error) {
			return dyn.Zero(dyn.Int32T), nil
		})
	default:
		return false, fmt.Errorf("workload: unknown edit kind %d", e.Kind)
	}
}

// RTTStats summarizes a set of round-trip samples.
type RTTStats struct {
	N              int
	Mean, Min, Max time.Duration
	P50, P90, P99  time.Duration
	P999           time.Duration
	Total          time.Duration
}

// Summarize computes statistics over samples (which it sorts in place).
func Summarize(samples []time.Duration) RTTStats {
	if len(samples) == 0 {
		return RTTStats{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var total time.Duration
	for _, s := range samples {
		total += s
	}
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(samples)-1))
		return samples[idx]
	}
	return RTTStats{
		N:     len(samples),
		Mean:  total / time.Duration(len(samples)),
		Min:   samples[0],
		Max:   samples[len(samples)-1],
		P50:   pct(0.50),
		P90:   pct(0.90),
		P99:   pct(0.99),
		P999:  pct(0.999),
		Total: total,
	}
}

// MeasureRTT invokes call n times, recording each round trip. The paper
// averaged over one hundred calls (Section 7).
func MeasureRTT(n int, call func() error) ([]time.Duration, error) {
	samples := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := call(); err != nil {
			return samples, fmt.Errorf("workload: call %d failed: %w", i, err)
		}
		samples = append(samples, time.Since(start))
	}
	return samples, nil
}
