package workload

import (
	"testing"
	"testing/quick"
	"time"

	"livedev/internal/dyn"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultTrace(42)
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed gives a different trace.
	c := Generate(DefaultTrace(43))
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds should give different traces")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := TraceConfig{
		Seed:       7,
		Bursts:     10,
		BurstLen:   4,
		IntraBurst: 100 * time.Millisecond,
		ThinkTime:  2 * time.Second,
	}
	trace := Generate(cfg)
	if len(trace) < cfg.Bursts {
		t.Fatalf("trace too short: %d", len(trace))
	}
	// Delays stay within 50%-150% of their configured means.
	longBreaks := 0
	for _, e := range trace {
		if e.Delay >= time.Second {
			longBreaks++
		}
		if e.Delay > 3*time.Second {
			t.Errorf("delay %v exceeds 150%% of think time", e.Delay)
		}
	}
	if longBreaks != cfg.Bursts {
		t.Errorf("expected %d burst-leading think times, got %d", cfg.Bursts, longBreaks)
	}
	// Zero burst length still produces at least one edit per burst.
	tiny := Generate(TraceConfig{Seed: 1, Bursts: 2})
	if len(tiny) < 2 {
		t.Errorf("tiny trace = %d edits", len(tiny))
	}
}

func TestEditKindString(t *testing.T) {
	kinds := []EditKind{EditRename, EditSetParams, EditSetResult, EditToggleDistributed, EditBody, EditKind(0)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
}

func TestApplyEditsDriveInterfaceVersion(t *testing.T) {
	c := dyn.NewClass("W")
	id, err := c.AddMethod(dyn.MethodSpec{Name: "op", Result: dyn.Int32T, Distributed: true})
	if err != nil {
		t.Fatal(err)
	}
	trace := Generate(DefaultTrace(11))
	interfaceEdits := 0
	for i, e := range trace {
		affecting, err := Apply(c, id, e, i)
		if err != nil {
			t.Fatalf("apply step %d (%v): %v", i, e.Kind, err)
		}
		if affecting {
			interfaceEdits++
		}
	}
	if interfaceEdits == 0 {
		t.Fatal("trace contained no interface edits")
	}
	if c.InterfaceVersion() == 0 {
		t.Error("interface version should have advanced")
	}
	if _, err := Apply(c, id, Edit{Kind: EditKind(99)}, 0); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty summarize")
	}
	samples := []time.Duration{
		5 * time.Millisecond, 1 * time.Millisecond, 3 * time.Millisecond,
		2 * time.Millisecond, 4 * time.Millisecond,
	}
	s := Summarize(samples)
	if s.N != 5 || s.Min != time.Millisecond || s.Max != 5*time.Millisecond {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 3*time.Millisecond {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.P50 != 3*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.Total != 15*time.Millisecond {
		t.Errorf("total = %v", s.Total)
	}
}

// Property: percentiles are ordered and bounded by min/max.
func TestSummarizeOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v) * time.Microsecond
		}
		s := Summarize(samples)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeasureRTT(t *testing.T) {
	calls := 0
	samples, err := MeasureRTT(10, func() error {
		calls++
		return nil
	})
	if err != nil || len(samples) != 10 || calls != 10 {
		t.Errorf("MeasureRTT: %d samples, %d calls, %v", len(samples), calls, err)
	}
	// A failing call aborts with partial samples.
	samples, err = MeasureRTT(10, func() error {
		if calls > 12 {
			return errTest
		}
		calls++
		return nil
	})
	if err == nil {
		t.Error("failure should propagate")
	}
	if len(samples) > 10 {
		t.Error("too many samples after failure")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }
