// Package jsonb is a third RMI-technology binding for the SDE/CDE: dynamic
// classes served over JSON-POST HTTP, described by a machine-readable JSON
// interface document. It exists to prove the binding seam the paper's
// architecture implies — "an RMI technology with a describable interface"
// — is real: the whole technology plugs in through livedev.RegisterBinding
// (core.Binding + cde.Connector) with no edits to core dispatch, exactly
// the way a third-party technology would.
//
// Wire protocol: POST {"method": "add", "args": [...]} to the endpoint;
// the reply is {"result": ...} or {"error": {"code": ..., "message": ...}}.
// The error code "non-existent-method" is the binding's form of the
// paper's "Non Existent Method" exception and carries the same Section 5.7
// guarantee: by the time the client sees it, the published interface
// document is current.
package jsonb

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"

	"livedev/internal/dyn"
)

// DocFormat identifies the interface-document format (and its version).
const DocFormat = "livedev-json-binding/v1"

// ContentType is the MIME type interface documents and calls use.
const ContentType = "application/json"

// Doc is the machine-readable interface description the binding publishes —
// the JSON analogue of a WSDL or CORBA-IDL document.
type Doc struct {
	Format   string      `json:"format"`
	Class    string      `json:"class"`
	Endpoint string      `json:"endpoint"`
	Methods  []MethodDoc `json:"methods"`
	Structs  []StructDoc `json:"structs,omitempty"`
}

// MethodDoc describes one distributed method.
type MethodDoc struct {
	Name   string     `json:"name"`
	Params []ParamDoc `json:"params"`
	Result TypeDoc    `json:"result"`
}

// ParamDoc describes one formal parameter.
type ParamDoc struct {
	Name string  `json:"name"`
	Type TypeDoc `json:"type"`
}

// StructDoc defines a named struct type referenced from signatures.
type StructDoc struct {
	Name   string     `json:"name"`
	Fields []ParamDoc `json:"fields"`
}

// TypeDoc is the JSON rendering of a dyn.Type: primitives carry only the
// kind; sequences nest their element; structs are referenced by name and
// defined once in Doc.Structs.
type TypeDoc struct {
	Kind string   `json:"kind"`
	Elem *TypeDoc `json:"elem,omitempty"`
	Name string   `json:"name,omitempty"`
}

func typeDoc(t *dyn.Type) TypeDoc {
	switch t.Kind() {
	case dyn.KindSequence:
		e := typeDoc(t.Elem())
		return TypeDoc{Kind: "sequence", Elem: &e}
	case dyn.KindStruct:
		return TypeDoc{Kind: "struct", Name: t.Name()}
	default:
		return TypeDoc{Kind: t.Kind().String()}
	}
}

// errUndefinedStruct marks a struct reference that is not resolvable yet —
// ParseDoc's fixed-point pass retries those until the table is complete.
var errUndefinedStruct = errors.New("jsonb: undefined struct type")

var primitiveKinds = map[string]*dyn.Type{
	"void":    dyn.Void,
	"boolean": dyn.Boolean,
	"char":    dyn.Char,
	"int32":   dyn.Int32T,
	"int64":   dyn.Int64T,
	"float32": dyn.Float32T,
	"float64": dyn.Float64T,
	"string":  dyn.StringT,
}

// resolve turns a TypeDoc back into a dyn.Type against the document's
// struct table.
func (td TypeDoc) resolve(structs map[string]*dyn.Type) (*dyn.Type, error) {
	switch td.Kind {
	case "sequence":
		if td.Elem == nil {
			return nil, fmt.Errorf("jsonb: sequence type without element")
		}
		elem, err := td.Elem.resolve(structs)
		if err != nil {
			return nil, err
		}
		return dyn.SequenceOf(elem), nil
	case "struct":
		t, ok := structs[td.Name]
		if !ok {
			return nil, fmt.Errorf("%w %q", errUndefinedStruct, td.Name)
		}
		return t, nil
	default:
		t, ok := primitiveKinds[td.Kind]
		if !ok {
			return nil, fmt.Errorf("jsonb: unknown type kind %q", td.Kind)
		}
		return t, nil
	}
}

// GenerateDoc renders the interface document for desc served at endpoint.
func GenerateDoc(desc dyn.InterfaceDescriptor, endpoint string) (string, error) {
	d := Doc{Format: DocFormat, Class: desc.ClassName, Endpoint: endpoint}
	for _, s := range desc.Structs {
		sd := StructDoc{Name: s.Name()}
		for _, f := range s.Fields() {
			sd.Fields = append(sd.Fields, ParamDoc{Name: f.Name, Type: typeDoc(f.Type)})
		}
		d.Structs = append(d.Structs, sd)
	}
	for _, m := range desc.Methods {
		md := MethodDoc{Name: m.Name, Result: typeDoc(m.Result), Params: []ParamDoc{}}
		for _, p := range m.Params {
			md.Params = append(md.Params, ParamDoc{Name: p.Name, Type: typeDoc(p.Type)})
		}
		d.Methods = append(d.Methods, md)
	}
	out, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", fmt.Errorf("jsonb: encoding interface document: %w", err)
	}
	return string(out), nil
}

// ParseDoc compiles an interface document into a descriptor and the
// advertised endpoint — the binding's stub compiler.
func ParseDoc(text string) (dyn.InterfaceDescriptor, string, error) {
	var d Doc
	if err := json.Unmarshal([]byte(text), &d); err != nil {
		return dyn.InterfaceDescriptor{}, "", fmt.Errorf("jsonb: parsing interface document: %w", err)
	}
	if d.Format != DocFormat {
		return dyn.InterfaceDescriptor{}, "", fmt.Errorf("jsonb: unsupported document format %q", d.Format)
	}
	// The descriptor's struct list is sorted alphabetically, not in
	// dependency order, so a struct may reference one defined later in the
	// document. Resolve to a fixed point: each round builds every struct
	// whose field types are all resolvable, deferring the rest; no
	// progress in a round means a genuinely missing (or cyclic) type.
	structs := make(map[string]*dyn.Type, len(d.Structs))
	pending := d.Structs
	for len(pending) > 0 {
		var deferred []StructDoc
		for _, sd := range pending {
			fields := make([]dyn.StructField, 0, len(sd.Fields))
			var undefined bool
			for _, f := range sd.Fields {
				ft, err := f.Type.resolve(structs)
				if errors.Is(err, errUndefinedStruct) {
					undefined = true
					break
				}
				if err != nil {
					return dyn.InterfaceDescriptor{}, "", fmt.Errorf("jsonb: struct %s field %s: %w", sd.Name, f.Name, err)
				}
				fields = append(fields, dyn.StructField{Name: f.Name, Type: ft})
			}
			if undefined {
				deferred = append(deferred, sd)
				continue
			}
			st, err := dyn.StructOf(sd.Name, fields...)
			if err != nil {
				return dyn.InterfaceDescriptor{}, "", fmt.Errorf("jsonb: struct %s: %w", sd.Name, err)
			}
			structs[sd.Name] = st
		}
		if len(deferred) == len(pending) {
			sd := deferred[0]
			return dyn.InterfaceDescriptor{}, "", fmt.Errorf("jsonb: struct %s references undefined or cyclic struct types", sd.Name)
		}
		pending = deferred
	}
	desc := dyn.InterfaceDescriptor{ClassName: d.Class}
	for _, sd := range d.Structs {
		desc.Structs = append(desc.Structs, structs[sd.Name])
	}
	for _, md := range d.Methods {
		sig := dyn.MethodSig{Name: md.Name}
		var err error
		if sig.Result, err = md.Result.resolve(structs); err != nil {
			return dyn.InterfaceDescriptor{}, "", fmt.Errorf("jsonb: method %s result: %w", md.Name, err)
		}
		for _, p := range md.Params {
			pt, perr := p.Type.resolve(structs)
			if perr != nil {
				return dyn.InterfaceDescriptor{}, "", fmt.Errorf("jsonb: method %s param %s: %w", md.Name, p.Name, perr)
			}
			sig.Params = append(sig.Params, dyn.Param{Name: p.Name, Type: pt})
		}
		desc.Methods = append(desc.Methods, sig)
	}
	return desc, d.Endpoint, nil
}

// EncodeValue renders v as a JSON value: primitives map naturally (chars as
// one-rune strings, int64 as a decimal string to dodge float64 precision),
// structs as objects, sequences as arrays, void as null.
func EncodeValue(v dyn.Value) (json.RawMessage, error) {
	switch v.Type().Kind() {
	case dyn.KindVoid:
		return json.RawMessage("null"), nil
	case dyn.KindBoolean:
		return json.Marshal(v.Bool())
	case dyn.KindChar:
		return json.Marshal(string(v.Char()))
	case dyn.KindInt32:
		return json.Marshal(v.Int32())
	case dyn.KindInt64:
		return json.Marshal(strconv.FormatInt(v.Int64(), 10))
	case dyn.KindFloat32:
		return json.Marshal(v.Float32())
	case dyn.KindFloat64:
		return json.Marshal(v.Float64())
	case dyn.KindString:
		return json.Marshal(v.Str())
	case dyn.KindSequence:
		elems := make([]json.RawMessage, 0, v.Len())
		for i := 0; i < v.Len(); i++ {
			e, err := EncodeValue(v.Index(i))
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		}
		return json.Marshal(elems)
	case dyn.KindStruct:
		obj := make(map[string]json.RawMessage, v.Type().NumFields())
		for _, f := range v.Type().Fields() {
			fv, _ := v.Field(f.Name)
			e, err := EncodeValue(fv)
			if err != nil {
				return nil, err
			}
			obj[f.Name] = e
		}
		return json.Marshal(obj)
	default:
		return nil, fmt.Errorf("jsonb: cannot encode %s values", v.Type())
	}
}

// DecodeValue parses a JSON value against the expected dyn type.
func DecodeValue(raw json.RawMessage, t *dyn.Type) (dyn.Value, error) {
	switch t.Kind() {
	case dyn.KindVoid:
		return dyn.VoidValue(), nil
	case dyn.KindBoolean:
		var b bool
		if err := json.Unmarshal(raw, &b); err != nil {
			return dyn.Value{}, fmt.Errorf("jsonb: decoding boolean: %w", err)
		}
		return dyn.BoolValue(b), nil
	case dyn.KindChar:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return dyn.Value{}, fmt.Errorf("jsonb: decoding char: %w", err)
		}
		r := []rune(s)
		if len(r) != 1 {
			return dyn.Value{}, fmt.Errorf("jsonb: char value must be one rune, got %q", s)
		}
		return dyn.CharValue(r[0]), nil
	case dyn.KindInt32:
		var i int32
		if err := json.Unmarshal(raw, &i); err != nil {
			return dyn.Value{}, fmt.Errorf("jsonb: decoding int32: %w", err)
		}
		return dyn.Int32Value(i), nil
	case dyn.KindInt64:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return dyn.Value{}, fmt.Errorf("jsonb: decoding int64: %w", err)
		}
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return dyn.Value{}, fmt.Errorf("jsonb: decoding int64: %w", err)
		}
		return dyn.Int64Value(i), nil
	case dyn.KindFloat32:
		var f float32
		if err := json.Unmarshal(raw, &f); err != nil {
			return dyn.Value{}, fmt.Errorf("jsonb: decoding float32: %w", err)
		}
		return dyn.Float32Value(f), nil
	case dyn.KindFloat64:
		var f float64
		if err := json.Unmarshal(raw, &f); err != nil {
			return dyn.Value{}, fmt.Errorf("jsonb: decoding float64: %w", err)
		}
		return dyn.Float64Value(f), nil
	case dyn.KindString:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return dyn.Value{}, fmt.Errorf("jsonb: decoding string: %w", err)
		}
		return dyn.StringValue(s), nil
	case dyn.KindSequence:
		var elems []json.RawMessage
		if err := json.Unmarshal(raw, &elems); err != nil {
			return dyn.Value{}, fmt.Errorf("jsonb: decoding sequence: %w", err)
		}
		vals := make([]dyn.Value, 0, len(elems))
		for _, e := range elems {
			v, err := DecodeValue(e, t.Elem())
			if err != nil {
				return dyn.Value{}, err
			}
			vals = append(vals, v)
		}
		return dyn.SequenceValue(t.Elem(), vals...)
	case dyn.KindStruct:
		var obj map[string]json.RawMessage
		if err := json.Unmarshal(raw, &obj); err != nil {
			return dyn.Value{}, fmt.Errorf("jsonb: decoding struct %s: %w", t.Name(), err)
		}
		fields := make([]dyn.Value, 0, t.NumFields())
		for _, f := range t.Fields() {
			fraw, ok := obj[f.Name]
			if !ok {
				return dyn.Value{}, fmt.Errorf("jsonb: struct %s missing field %s", t.Name(), f.Name)
			}
			fv, err := DecodeValue(fraw, f.Type)
			if err != nil {
				return dyn.Value{}, err
			}
			fields = append(fields, fv)
		}
		return dyn.StructValue(t, fields...)
	default:
		return dyn.Value{}, fmt.Errorf("jsonb: cannot decode %s values", t)
	}
}
