package jsonb

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"livedev/internal/cde"
	"livedev/internal/core"
	"livedev/internal/dyn"
	"livedev/internal/ifsvr"
)

// ErrNonExistentMethod is the client-visible form of the binding's
// "non-existent method" error code. Receiving it guarantees the published
// interface document is already current (Section 5.7), so the CDE reacts
// by re-fetching it.
var ErrNonExistentMethod = errors.New("jsonb: non-existent method")

// AppError is a server-side application error delivered to the client.
type AppError struct {
	Message string
}

// Error implements error.
func (e *AppError) Error() string { return "server application error: " + e.Message }

var defaultHTTPClient = &http.Client{Timeout: 30 * time.Second}

// Caller posts calls to one endpoint URL — the transport half of a JSON
// client stub (the analogue of soap.Client).
type Caller struct {
	// Endpoint is the JSON-POST endpoint URL.
	Endpoint string
	// HTTPClient is used for transport; a default client is used when nil.
	HTTPClient *http.Client
}

func (c *Caller) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

// Call performs one RPC against sig. Cancelling ctx aborts the in-flight
// HTTP round-trip and returns an error wrapping ctx.Err().
func (c *Caller) Call(ctx context.Context, sig dyn.MethodSig, args []dyn.Value) (dyn.Value, error) {
	if len(args) != len(sig.Params) {
		return dyn.Value{}, fmt.Errorf("jsonb: %s takes %d arguments, got %d", sig.Name, len(sig.Params), len(args))
	}
	wire := callRequest{Method: sig.Name, Args: make([]json.RawMessage, len(args))}
	for i, a := range args {
		if !a.Type().Equal(sig.Params[i].Type) {
			return dyn.Value{}, fmt.Errorf("jsonb: %s parameter %s wants %s, got %s",
				sig.Name, sig.Params[i].Name, sig.Params[i].Type, a.Type())
		}
		raw, err := EncodeValue(a)
		if err != nil {
			return dyn.Value{}, err
		}
		wire.Args[i] = raw
	}
	payload, err := json.Marshal(wire)
	if err != nil {
		return dyn.Value{}, fmt.Errorf("jsonb: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Endpoint, bytes.NewReader(payload))
	if err != nil {
		return dyn.Value{}, fmt.Errorf("jsonb: building HTTP request: %w", err)
	}
	req.Header.Set("Content-Type", ContentType)

	resp, err := c.httpClient().Do(req)
	if err != nil {
		return dyn.Value{}, fmt.Errorf("jsonb: posting to %s: %w", c.Endpoint, err)
	}
	defer func() { _ = resp.Body.Close() }()
	var parsed callResponse
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		return dyn.Value{}, fmt.Errorf("jsonb: reading response (HTTP %d): %w", resp.StatusCode, err)
	}
	if parsed.Error != nil {
		switch parsed.Error.Code {
		case CodeNonExistentMethod:
			return dyn.Value{}, fmt.Errorf("%w: %s", ErrNonExistentMethod, parsed.Error.Message)
		case CodeApplication:
			return dyn.Value{}, &AppError{Message: parsed.Error.Message}
		default:
			return dyn.Value{}, fmt.Errorf("jsonb: server error %s: %s", parsed.Error.Code, parsed.Error.Message)
		}
	}
	if sig.Result == nil || sig.Result.Kind() == dyn.KindVoid {
		return dyn.VoidValue(), nil
	}
	if parsed.Result == nil {
		return dyn.Value{}, fmt.Errorf("jsonb: response for %s carries no result", sig.Name)
	}
	return DecodeValue(parsed.Result, sig.Result)
}

// backend implements cde.Backend over the JSON wire protocol.
type backend struct {
	docs       *cde.DocSource
	httpClient *http.Client

	mu     sync.RWMutex
	caller *Caller
}

var _ cde.Backend = (*backend)(nil)

// NewBackend returns a cde.Backend reading the interface document at
// docURL. httpClient may be nil.
func NewBackend(docURL string, httpClient *http.Client) cde.Backend {
	return &backend{docs: cde.NewDocSource(docURL, httpClient, nil), httpClient: httpClient}
}

// Technology implements cde.Backend.
func (b *backend) Technology() string { return Name }

// compile turns a fetched (or pushed) interface document into the
// descriptor and (re)targets the caller at the advertised endpoint.
func (b *backend) compile(doc ifsvr.Document) (dyn.InterfaceDescriptor, cde.DocVersions, error) {
	desc, endpoint, err := ParseDoc(doc.Content)
	if err != nil {
		return dyn.InterfaceDescriptor{}, cde.DocVersions{}, err
	}
	desc.Version = doc.DescriptorVersion
	b.mu.Lock()
	b.caller = &Caller{Endpoint: endpoint, HTTPClient: b.httpClient}
	b.mu.Unlock()
	return desc, cde.DocVersions{Doc: doc.Version, Descriptor: doc.DescriptorVersion, Epoch: doc.Epoch, Generation: doc.Generation}, nil
}

// FetchInterface implements cde.Backend: fetch the JSON interface document
// and compile it.
func (b *backend) FetchInterface(ctx context.Context) (dyn.InterfaceDescriptor, cde.DocVersions, error) {
	doc, err := b.docs.Fetch(ctx)
	if err != nil {
		return dyn.InterfaceDescriptor{}, cde.DocVersions{}, err
	}
	return b.compile(doc)
}

// WatchInterface implements cde.WatchableBackend over the Interface
// Server's long-poll watch protocol, making the binding watch-capable with
// no extra server-side code.
func (b *backend) WatchInterface(ctx context.Context, after uint64) (dyn.InterfaceDescriptor, cde.DocVersions, error) {
	doc, err := b.docs.Watch(ctx, after)
	if err != nil {
		return dyn.InterfaceDescriptor{}, cde.DocVersions{}, err
	}
	return b.compile(doc)
}

// StreamInterface implements cde.StreamingBackend over the Interface
// Server's SSE watch transport, again with no extra server-side code.
func (b *backend) StreamInterface(ctx context.Context, afterEpoch uint64, deliver func(cde.InterfaceEvent)) error {
	return b.docs.Stream(ctx, afterEpoch, func(ev ifsvr.StreamEvent) {
		desc, vers, err := b.compile(ev.Doc)
		if err != nil {
			return // a malformed intermediate version; the next event supersedes it
		}
		deliver(cde.InterfaceEvent{Desc: desc, Versions: vers, Replayed: ev.Replayed, Snapshot: ev.Snapshot})
	})
}

// Invoke implements cde.Backend.
func (b *backend) Invoke(ctx context.Context, sig dyn.MethodSig, args []dyn.Value) (dyn.Value, error) {
	b.mu.RLock()
	caller := b.caller
	b.mu.RUnlock()
	if caller == nil {
		return dyn.Value{}, errors.New("jsonb: backend not initialized")
	}
	return caller.Call(ctx, sig, args)
}

// IsStale implements cde.Backend.
func (b *backend) IsStale(err error) bool { return errors.Is(err, ErrNonExistentMethod) }

// Close implements cde.Backend.
func (b *backend) Close() error { return nil }

// Binding is the complete JSON/HTTP RMI technology: the server half
// (core.Binding: Name + Serve) and the client half (Describe + Connect,
// the cde.Connector shape). livedev.RegisterBinding accepts it directly.
type Binding struct{}

// New returns the binding.
func New() Binding { return Binding{} }

// Name implements core.Binding.
func (Binding) Name() string { return Name }

// Serve implements core.Binding.
func (Binding) Serve(m *core.Manager, class *dyn.Class) (core.Server, error) {
	return newServer(m, class)
}

// Describe reports how the binding's interface documents are recognized.
func (Binding) Describe() cde.DocMatch {
	return cde.DocMatch{
		ContentTypes: []string{ContentType},
		PathSuffixes: []string{".json"},
		Content:      func(doc string) bool { return strings.Contains(doc, DocFormat) },
	}
}

// Connect builds a live CDE client from the interface-document URL.
func (Binding) Connect(ctx context.Context, url string, opts *cde.DialOptions) (*cde.Client, error) {
	var hc *http.Client
	var seed *ifsvr.Document
	if opts != nil {
		hc = opts.HTTPClient
		seed = opts.Prefetched
	}
	docs := cde.NewDocSource(url, hc, seed)
	if opts != nil {
		docs.SetEndpoints(opts.Endpoints)
	}
	b := &backend{docs: docs, httpClient: hc}
	return cde.NewClientContext(ctx, b, opts)
}

// Connector returns the client half as a cde.Connector, for callers wiring
// the registries directly rather than through livedev.RegisterBinding.
func Connector() cde.Connector {
	b := Binding{}
	return cde.Connector{Name: Name, Match: b.Describe(), Connect: b.Connect}
}
