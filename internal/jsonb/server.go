package jsonb

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"livedev/internal/core"
	"livedev/internal/dyn"
)

// Name is the binding's registered technology name.
const Name = "JSON"

// Wire-protocol error codes.
const (
	// CodeNonExistentMethod is the binding's "Non Existent Method": the
	// Section 5.7 protocol guarantees the published interface document is
	// current by the time a client reads it.
	CodeNonExistentMethod = "non-existent-method"
	// CodeNotInitialized reports a call before the instance exists.
	CodeNotInitialized = "not-initialized"
	// CodeMalformed reports an unparseable request.
	CodeMalformed = "malformed-request"
	// CodeApplication wraps an error returned by the method body.
	CodeApplication = "application-error"
)

// callRequest is one wire call.
type callRequest struct {
	Method string            `json:"method"`
	Args   []json.RawMessage `json:"args"`
}

// callResponse is one wire reply.
type callResponse struct {
	Result json.RawMessage `json:"result,omitempty"`
	Error  *wireError      `json:"error,omitempty"`
}

type wireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Server is the JSON subsystem bundle for one managed class — the same
// Figure 4/5 shape as the SOAP and CORBA bundles: a document generator
// feeding the shared Interface Server via a DL Publisher, and a call
// handler mounted on the manager's shared HTTP endpoint server. It is built
// entirely from the Manager's public binding surface.
type Server struct {
	mgr      *core.Manager
	class    *dyn.Class
	pub      *core.DLPublisher
	handler  *callHandler
	endpoint string
	path     string
	docPath  string

	mu       sync.Mutex
	instance *dyn.Instance
	closed   bool
}

var _ core.Server = (*Server)(nil)

func newServer(m *core.Manager, class *dyn.Class) (*Server, error) {
	s := &Server{
		mgr:     m,
		class:   class,
		path:    "/json/" + class.Name(),
		docPath: "/jsonif/" + class.Name() + ".json",
	}
	s.endpoint = m.HTTPBaseURL() + s.path
	s.handler = &callHandler{class: class}

	// Publish the basic interface document immediately, like the built-in
	// bindings (Section 4): PublishInterface bundles doc caching, the
	// coalescing store, and the forced-publication flush.
	s.pub = m.PublishInterface(class, s.docPath, ContentType,
		func(desc dyn.InterfaceDescriptor) (string, error) {
			return GenerateDoc(desc, s.endpoint)
		})
	s.handler.pub = s.pub
	s.handler.reactive = m.ReactivePublication()

	m.MountHTTP(s.path, s.handler)
	return s, nil
}

// Class implements core.Server.
func (s *Server) Class() *dyn.Class { return s.class }

// Technology implements core.Server.
func (s *Server) Technology() core.Technology { return core.Technology(Name) }

// Publisher implements core.Server.
func (s *Server) Publisher() *core.DLPublisher { return s.pub }

// Endpoint returns the JSON-POST endpoint URL.
func (s *Server) Endpoint() string { return s.endpoint }

// InterfaceURL implements core.Server: the JSON interface document URL.
func (s *Server) InterfaceURL() string {
	return s.mgr.InterfaceBaseURL() + s.docPath
}

// CreateInstance implements core.Server.
func (s *Server) CreateInstance() (*dyn.Instance, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("jsonb: server closed")
	}
	if s.instance != nil {
		return nil, fmt.Errorf("jsonb: class %s already has its instance (single-instance rule, Section 5.4)", s.class.Name())
	}
	in := s.class.NewInstance()
	s.instance = in
	s.handler.Activate(in)
	return in, nil
}

// Instance implements core.Server.
func (s *Server) Instance() *dyn.Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.instance
}

// Close implements core.Server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.mgr.UnmountHTTP(s.path)
	s.pub.Close()
	s.mgr.Store().Remove(s.docPath)
	s.mgr.Unregister(s.class.Name())
	return nil
}

// callHandler is the binding's Call Handler, with the same concurrency
// design as the built-in pair: concurrent requests under a read gate, the
// stale path under the write gate with forced publication (Section 5.7).
type callHandler struct {
	class    *dyn.Class
	pub      *core.DLPublisher
	reactive bool

	gate     sync.RWMutex
	instance *dyn.Instance
}

var _ core.CallHandler = (*callHandler)(nil)
var _ http.Handler = (*callHandler)(nil)

// Activate implements core.CallHandler.
func (h *callHandler) Activate(in *dyn.Instance) {
	h.gate.Lock()
	h.instance = in
	h.gate.Unlock()
}

// Active implements core.CallHandler.
func (h *callHandler) Active() bool {
	h.gate.RLock()
	defer h.gate.RUnlock()
	return h.instance != nil
}

func writeJSON(w http.ResponseWriter, status int, resp callResponse) {
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, callResponse{Error: &wireError{Code: code, Message: msg}})
}

// ServeHTTP handles one call. The request context (cancelled when the
// client goes away) gates dispatch.
func (h *callHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "JSON endpoint: POST only", http.StatusMethodNotAllowed)
		return
	}
	var req callRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeMalformed, err.Error())
		return
	}

	h.gate.RLock()
	in := h.instance
	if in == nil {
		h.gate.RUnlock()
		writeError(w, http.StatusServiceUnavailable, CodeNotInitialized, "server not initialized")
		return
	}

	// Resolve against the live interface, not any cached view.
	sig, ok := h.class.Interface().Lookup(req.Method)
	if !ok || len(req.Args) != len(sig.Params) {
		h.gate.RUnlock()
		h.staleCall(w, req.Method)
		return
	}
	args := make([]dyn.Value, len(sig.Params))
	for i, p := range sig.Params {
		v, err := DecodeValue(req.Args[i], p.Type)
		if err != nil {
			// Encoded against a stale signature: same protocol as a
			// missing method (Section 5.6).
			h.gate.RUnlock()
			h.staleCall(w, req.Method)
			return
		}
		args[i] = v
	}

	if err := r.Context().Err(); err != nil {
		// The caller is gone; skip work nobody will observe.
		h.gate.RUnlock()
		return
	}
	result, err := in.InvokeDistributed(req.Method, args...)
	h.gate.RUnlock()

	switch {
	case err == nil:
		raw, encErr := EncodeValue(result)
		if encErr != nil {
			writeError(w, http.StatusInternalServerError, CodeApplication, encErr.Error())
			return
		}
		writeJSON(w, http.StatusOK, callResponse{Result: raw})
	case errors.Is(err, dyn.ErrNoSuchMethod), errors.Is(err, dyn.ErrSignatureMismatch):
		// Interface changed between lookup and dispatch.
		h.staleCall(w, req.Method)
	default:
		writeError(w, http.StatusInternalServerError, CodeApplication, err.Error())
	}
}

// staleCall implements the Section 5.7 server algorithm: stall incoming
// processing (write gate), force the published interface document current,
// then report "non-existent method" and resume.
func (h *callHandler) staleCall(w http.ResponseWriter, method string) {
	h.gate.Lock()
	if h.pub != nil && h.reactive {
		h.pub.EnsureCurrent()
	}
	h.gate.Unlock()
	writeError(w, http.StatusNotFound, CodeNonExistentMethod,
		"method "+method+" is not part of the current server interface")
}
