package jsonb

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"livedev/internal/cde"
	"livedev/internal/core"
	"livedev/internal/dyn"
)

func init() {
	// Wire the binding exactly the way livedev.RegisterBinding does —
	// through the public registries, no core edits.
	core.RegisterBinding(New())
	cde.RegisterConnector(Connector())
}

func calcClass(t *testing.T) *dyn.Class {
	t.Helper()
	c := dyn.NewClass("JCalc")
	_, err := c.AddMethod(dyn.MethodSpec{
		Name:        "add",
		Params:      []dyn.Param{{Name: "a", Type: dyn.Int32T}, {Name: "b", Type: dyn.Int32T}},
		Result:      dyn.Int32T,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return dyn.Int32Value(args[0].Int32() + args[1].Int32()), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDocRoundTrip(t *testing.T) {
	point := dyn.MustStructOf("Point",
		dyn.StructField{Name: "x", Type: dyn.Float64T},
		dyn.StructField{Name: "y", Type: dyn.Float64T})
	// "Box" sorts before "Point" in the descriptor's alphabetical struct
	// list but references it — the document's struct resolution must not
	// depend on definition order.
	box := dyn.MustStructOf("Box",
		dyn.StructField{Name: "p", Type: point},
		dyn.StructField{Name: "label", Type: dyn.StringT})
	c := dyn.NewClass("Geo")
	_, _ = c.AddMethod(dyn.MethodSpec{
		Name:        "mid",
		Params:      []dyn.Param{{Name: "a", Type: point}, {Name: "b", Type: point}},
		Result:      dyn.SequenceOf(point),
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return dyn.SequenceValue(point, args[0], args[1])
		},
	})
	_, _ = c.AddMethod(dyn.MethodSpec{
		Name:        "wrap",
		Params:      []dyn.Param{{Name: "p", Type: point}},
		Result:      box,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return dyn.StructValue(box, args[0], dyn.StringValue("b"))
		},
	})
	desc := c.Interface()
	text, err := GenerateDoc(desc, "http://example/json/Geo")
	if err != nil {
		t.Fatal(err)
	}
	got, endpoint, err := ParseDoc(text)
	if err != nil {
		t.Fatal(err)
	}
	if endpoint != "http://example/json/Geo" {
		t.Errorf("endpoint = %q", endpoint)
	}
	if !got.Equal(desc) {
		t.Errorf("descriptor round trip mismatch:\n got %v\nwant %v", got.Methods, desc.Methods)
	}
}

func TestValueCodecRoundTrip(t *testing.T) {
	point := dyn.MustStructOf("P",
		dyn.StructField{Name: "x", Type: dyn.Float64T},
		dyn.StructField{Name: "n", Type: dyn.Int64T})
	vals := []dyn.Value{
		dyn.BoolValue(true),
		dyn.CharValue('λ'),
		dyn.Int32Value(-7),
		dyn.Int64Value(1 << 60), // beyond float64 integer precision
		dyn.Float32Value(1.5),
		dyn.Float64Value(-2.25),
		dyn.StringValue("héllo \"json\""),
		dyn.MustStructValue(point, dyn.Float64Value(3.5), dyn.Int64Value(9)),
		dyn.MustSequenceValue(dyn.Int32T, dyn.Int32Value(1), dyn.Int32Value(2)),
		dyn.VoidValue(),
	}
	for _, v := range vals {
		raw, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("encode %s: %v", v.Type(), err)
		}
		got, err := DecodeValue(raw, v.Type())
		if err != nil {
			t.Fatalf("decode %s (%s): %v", v.Type(), raw, err)
		}
		if !got.Equal(v) {
			t.Errorf("%s: round trip %v -> %s -> %v", v.Type(), v, raw, got)
		}
	}
}

func TestServeRegisterAndCall(t *testing.T) {
	mgr, err := core.NewManager(core.Config{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	srv, err := mgr.Register(calcClass(t), core.Technology(Name))
	if err != nil {
		t.Fatal(err)
	}
	if srv.Technology() != core.Technology("JSON") {
		t.Errorf("technology = %s", srv.Technology())
	}

	// Calls before CreateInstance must be refused.
	ctx := context.Background()
	client, err := cde.Dial(ctx, srv.InterfaceURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.CallContext(ctx, "add", dyn.Int32Value(1), dyn.Int32Value(2)); err == nil {
		t.Fatal("call before CreateInstance should fail")
	}

	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	got, err := client.CallContext(ctx, "add", dyn.Int32Value(20), dyn.Int32Value(22))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int32() != 42 {
		t.Errorf("add = %d", got.Int32())
	}
	if client.Technology() != "JSON" {
		t.Errorf("client technology = %s", client.Technology())
	}
}

func TestStaleCallRunsReactiveProtocol(t *testing.T) {
	mgr, err := core.NewManager(core.Config{Timeout: 30 * time.Minute}) // timer effectively never fires
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	class := calcClass(t)
	srv, err := mgr.Register(class, core.Technology(Name))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	client, err := cde.Dial(ctx, srv.InterfaceURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Rename the method; with a huge stability timeout the document stays
	// stale until a client call forces it current (Section 5.7).
	id, ok := class.MethodIDByName("add")
	if !ok {
		t.Fatal("no method id for add")
	}
	if err := class.RenameMethod(id, "plus"); err != nil {
		t.Fatal(err)
	}

	_, err = client.CallContext(ctx, "add", dyn.Int32Value(1), dyn.Int32Value(2))
	var stale *cde.StaleMethodError
	if !errors.As(err, &stale) {
		t.Fatalf("want StaleMethodError, got %v", err)
	}
	// The client's view must already contain the rename.
	if _, ok := client.Interface().Lookup("plus"); !ok {
		t.Error("client view should have been reactively refreshed to contain plus")
	}
	got, err := client.CallContext(ctx, "plus", dyn.Int32Value(40), dyn.Int32Value(2))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int32() != 42 {
		t.Errorf("plus = %d", got.Int32())
	}
}

// TestDialFetchesDocumentOnce pins the connection-establishment fetch
// count: the document Dial retrieves for binding sniffing seeds the
// backend's initial interface compilation, so one GET suffices.
func TestDialFetchesDocumentOnce(t *testing.T) {
	mgr, err := core.NewManager(core.Config{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv, err := mgr.Register(calcClass(t), core.Technology(Name))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}

	// A counting proxy in front of the interface document URL; calls go
	// straight to the endpoint the document advertises, so only document
	// fetches pass through here.
	var fetches atomic.Int32
	target := srv.InterfaceURL()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fetches.Add(1)
		resp, err := http.Get(target)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	defer proxy.Close()

	client, err := cde.Dial(context.Background(), proxy.URL+"/doc.json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if got := fetches.Load(); got != 1 {
		t.Errorf("Dial fetched the interface document %d times, want 1", got)
	}
	if _, err := client.CallContext(context.Background(), "add", dyn.Int32Value(1), dyn.Int32Value(2)); err != nil {
		t.Fatal(err)
	}
}

func TestCancellationAbortsInFlightCall(t *testing.T) {
	mgr, err := core.NewManager(core.Config{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	block := make(chan struct{})
	defer close(block)
	c := dyn.NewClass("JSlow")
	_, _ = c.AddMethod(dyn.MethodSpec{
		Name: "hang", Result: dyn.StringT, Distributed: true,
		Body: func(_ *dyn.Instance, _ []dyn.Value) (dyn.Value, error) {
			<-block
			return dyn.StringValue("late"), nil
		},
	})
	srv, err := mgr.Register(c, core.Technology(Name))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	client, err := cde.Dial(context.Background(), srv.InterfaceURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = client.CallContext(ctx, "hang")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, should be prompt", elapsed)
	}
}
