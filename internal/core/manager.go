package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"livedev/internal/clock"
	"livedev/internal/dyn"
	"livedev/internal/ifsvr"
	"livedev/internal/repl"
)

// Technology names an RMI technology integrated into the SDE. Since the
// binding registry replaced the hardcoded enum it is simply the registered
// binding's name; any string for which a Binding has been registered is
// valid.
type Technology string

// Names of the two technologies the initial SDE implementation ships
// (Section 2). Registered in binding.go through the same seam third-party
// bindings use.
const (
	TechSOAP  Technology = "SOAP"
	TechCORBA Technology = "CORBA"
)

// Server is the technology-independent view of one managed server class —
// the SDEServer position in the Figure 6 hierarchy. SOAPServer,
// CORBAServer, and every registered binding's server implement it.
type Server interface {
	// Class returns the managed dynamic class.
	Class() *dyn.Class
	// Technology reports which RMI technology serves the class.
	Technology() Technology
	// Publisher returns the server's DL Publisher.
	Publisher() *DLPublisher
	// CreateInstance creates the single live instance and activates the
	// call handler. It fails if an instance already exists (Section 5.4:
	// "only a single instance of each dynamic class ... can be in
	// existence at any given time").
	CreateInstance() (*dyn.Instance, error)
	// Instance returns the live instance (nil before CreateInstance).
	Instance() *dyn.Instance
	// InterfaceURL returns the HTTP URL of the published interface
	// description (WSDL, CORBA-IDL, or the binding's own format).
	InterfaceURL() string
	// Close deactivates the server and releases its resources.
	Close() error
}

// CallHandler is the communication backend of one technology (Figure 6):
// it receives remote calls, translates them, and dispatches to the live
// instance. It remains inactive — refusing calls — until the instance
// exists (Section 5.1.3).
type CallHandler interface {
	// Activate binds the handler to the live instance.
	Activate(in *dyn.Instance)
	// Active reports whether an instance is bound.
	Active() bool
}

// Config configures a Manager. The zero value listens on ephemeral
// loopback ports with the default publication timeout and the real clock.
type Config struct {
	// InterfaceAddr is the Interface Server listen address.
	InterfaceAddr string
	// HTTPAddr is the listen address of the shared HTTP endpoint server
	// that HTTP-based bindings (SOAP, JSON) mount call handlers on.
	HTTPAddr string
	// SOAPAddr is the former name of HTTPAddr, honored when HTTPAddr is
	// empty.
	//
	// Deprecated: set HTTPAddr.
	SOAPAddr string
	// CORBAAddr is the listen address used for each CORBA server ORB.
	CORBAAddr string
	// Timeout is the publication stability timeout (Section 5.6).
	Timeout time.Duration
	// FlushWindow is the publication store's edit-storm coalescing window:
	// rapid publications of an already-published document are batched and
	// committed once per window. Zero (the default) commits every
	// publication immediately. Forced publication (Section 5.7) always
	// commits synchronously regardless of the window, so the recency
	// guarantee is unaffected. Individual documents can override the window
	// via PublishInterface's WithPathFlushWindow option.
	FlushWindow time.Duration
	// HistoryLen bounds the publication store's replay journal: how many
	// committed versions (across all paths) are retained for streaming-
	// watch catch-up (Replay). Zero means ifsvr.DefaultHistoryLen; negative
	// disables the journal, so every stream (re)connect falls back to a
	// full snapshot event.
	HistoryLen int
	// DataDir makes the publication store durable: every commit batch is
	// appended to a write-ahead log under this directory and the full
	// state (documents, epoch counter, replay journal, restart
	// generation) is compacted into periodic snapshots. A manager
	// restarted over the same directory resumes at an epoch past its
	// pre-restart epoch, so reconnecting watchers ride journal replay
	// instead of stampeding the snapshot path. Empty (the default) keeps
	// the store in-memory.
	DataDir string
	// Sync selects when the durable store fsyncs its WAL (ignored without
	// DataDir). The zero value SyncNone keeps today's buffered writes;
	// SyncGroupCommit batches concurrent commits into shared fsyncs and
	// blocks each publication until its record is durable; SyncAlways
	// fsyncs every commit individually.
	Sync SyncPolicy
	// GroupCommitWindow bounds how long a lone commit may wait for
	// company under SyncGroupCommit before its fsync is issued anyway.
	// Zero means the ifsvr default.
	GroupCommitWindow time.Duration
	// WALShards is the number of hash-partitioned WAL/snapshot shard
	// pairs the durable store spreads paths over (ignored without
	// DataDir). Zero means the ifsvr default; an existing data directory
	// written with a different count is resharded on open.
	WALShards int
	// FollowURL turns the manager into a read-only replica: instead of
	// hosting live server classes it tails the write-ahead log of the
	// leader Interface Server at this base URL (all shards concurrently)
	// and applies every committed publication into its own store, which
	// the local Interface Server serves under the leader's restart
	// generation. Register fails in this mode, and publications arriving
	// over HTTP are answered with 421 Misdirected Request naming the
	// leader. DataDir still applies: a durable follower resumes tailing
	// from its persisted position after a restart.
	FollowURL string
	// ReadyLagBound is the replication lag (in unapplied WAL records,
	// summed over shards) above which a follower-mode manager reports not
	// ready from Probe. Zero means DefaultReadyLagBound. Ignored on a
	// leader.
	ReadyLagBound uint64
	// MaxWatcherLag bounds how many committed-but-undelivered events a
	// streaming watcher of the Interface Server may have pending before
	// its stream is evicted with a terminal event (the client reconnects
	// through ordinary replay). Zero disables the budget: a laggard is
	// then bounded only by the journal capacity (snapshot reset) and the
	// write deadline.
	MaxWatcherLag int
	// WatchWriteTimeout bounds each write on a held watch stream (events,
	// heartbeats): a peer that cannot absorb a write within it is evicted.
	// Zero means the ifsvr default; negative disables the deadline.
	WatchWriteTimeout time.Duration
	// Clock drives publication timers; nil means the real clock.
	Clock clock.Clock
	// ActivePublishingOnly disables the Section 5.7 reactive publication
	// on stale calls, leaving only the timer-driven path — the Figure 7
	// baseline the paper argues against. It exists for the E2/E3 ablation
	// experiments; production use should leave it false.
	ActivePublishingOnly bool
}

func (c Config) withDefaults() Config {
	if c.InterfaceAddr == "" {
		c.InterfaceAddr = "127.0.0.1:0"
	}
	if c.HTTPAddr == "" {
		c.HTTPAddr = c.SOAPAddr
	}
	if c.HTTPAddr == "" {
		c.HTTPAddr = "127.0.0.1:0"
	}
	if c.CORBAAddr == "" {
		c.CORBAAddr = "127.0.0.1:0"
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	return c
}

// Manager is the SDE Manager: it "oversees the subsystem initialization and
// acts as the central point of communication between the other components"
// (Section 5.1). One Manager owns the shared Interface Server, the HTTP
// server hosting HTTP-based call handlers, and the set of managed server
// classes.
type Manager struct {
	cfg Config

	store    *Store
	iface    *ifsvr.Server
	tail     *repl.TailServer // leader mode: WAL-tail endpoint on the iface
	follower *repl.Follower   // follower mode (Config.FollowURL)

	httpMux  *dynamicMux
	httpSrv  *http.Server
	httpLn   net.Listener
	httpBase string
	httpDone chan struct{}

	mu       sync.Mutex
	servers  map[string]Server
	draining bool
	closed   bool
}

// NewManager creates and starts a manager: the Interface Server and the
// HTTP endpoint server begin listening immediately.
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	storeCfg := ifsvr.StoreConfig{
		Window:      cfg.FlushWindow,
		Clock:       cfg.Clock,
		HistoryLen:  cfg.HistoryLen,
		Dir:         cfg.DataDir,
		Sync:        cfg.Sync,
		GroupWindow: cfg.GroupCommitWindow,
		Shards:      cfg.WALShards,
	}
	m := &Manager{
		cfg:     cfg,
		httpMux: newDynamicMux(),
		servers: make(map[string]Server),
	}
	if cfg.FollowURL != "" {
		// Follower mode: the store is fed by tailing the leader's WAL,
		// not by local publishers, and the Interface Server serves it
		// read-only under the leader's generation.
		f, err := repl.OpenFollower(repl.FollowerConfig{Leader: cfg.FollowURL, Store: storeCfg})
		if err != nil {
			return nil, fmt.Errorf("core: opening follower of %s: %w", cfg.FollowURL, err)
		}
		f.Iface().MaxWatcherLag = cfg.MaxWatcherLag
		f.Iface().StreamWriteTimeout = cfg.WatchWriteTimeout
		if _, err := f.Serve(cfg.InterfaceAddr); err != nil {
			f.Close()
			return nil, fmt.Errorf("core: starting interface server: %w", err)
		}
		m.follower = f
		m.store = f.Store()
		m.iface = f.Iface()
	} else {
		store, err := ifsvr.OpenStore(storeCfg)
		if err != nil {
			return nil, fmt.Errorf("core: opening publication store: %w", err)
		}
		m.store = store
		// The Interface Server is a read view over the publication store:
		// every binding publishes through the store, the HTTP view serves
		// and watches it (Section 5.1 plus the watch protocol).
		m.iface = ifsvr.NewView(m.store)
		m.iface.MaxWatcherLag = cfg.MaxWatcherLag
		m.iface.StreamWriteTimeout = cfg.WatchWriteTimeout
		if _, err := m.iface.Start(cfg.InterfaceAddr); err != nil {
			m.store.Close()
			return nil, fmt.Errorf("core: starting interface server: %w", err)
		}
		// Every leader-mode manager exposes the replication tail, so any
		// other manager (or sde-server -follow) can replicate from it.
		m.tail = repl.Attach(m.store, m.iface, repl.TailConfig{})
	}
	ln, err := net.Listen("tcp", cfg.HTTPAddr)
	if err != nil {
		_ = m.iface.Close()
		m.store.Close()
		return nil, fmt.Errorf("core: starting HTTP endpoint server: %w", err)
	}
	m.httpLn = ln
	m.httpBase = "http://" + ln.Addr().String()
	// The ops plane rides the shared endpoint mux: scrapers hit the same
	// listener the bindings serve on, so one address covers both.
	m.httpMux.handle("/metrics", http.HandlerFunc(m.serveMetrics))
	m.httpSrv = &http.Server{Handler: m.httpMux, ReadHeaderTimeout: 10 * time.Second}
	// Cleartext HTTP/2 alongside HTTP/1.1 on the shared endpoint listener:
	// existing SOAP/JSON traffic is untouched (preface-sniffed), and the
	// h2b binding's multiplexed CDR calls ride h2 streams on one conn.
	ifsvr.EnableH2C(m.httpSrv)
	m.httpDone = make(chan struct{})
	go func() {
		defer close(m.httpDone)
		_ = m.httpSrv.Serve(ln)
	}()
	return m, nil
}

// InterfaceServer returns the shared Interface Server (the HTTP read view
// over the publication store).
func (m *Manager) InterfaceServer() *ifsvr.Server { return m.iface }

// Follower returns the replication follower when the manager runs in
// follower mode (Config.FollowURL), nil on a leader.
func (m *Manager) Follower() *repl.Follower { return m.follower }

// TailServer returns the leader's replication WAL-tail endpoint, nil in
// follower mode.
func (m *Manager) TailServer() *repl.TailServer { return m.tail }

// Store returns the manager's publication store — the versioned document
// store with subscriber fan-out and edit-storm coalescing that every
// binding publishes through.
func (m *Manager) Store() *Store { return m.store }

// InterfaceBaseURL returns the Interface Server base URL.
func (m *Manager) InterfaceBaseURL() string { return m.iface.BaseURL() }

// HTTPBaseURL returns the base URL that handlers mounted with MountHTTP are
// served under.
func (m *Manager) HTTPBaseURL() string { return m.httpBase }

// SOAPBaseURL is the former name of HTTPBaseURL.
//
// Deprecated: use HTTPBaseURL.
func (m *Manager) SOAPBaseURL() string { return m.httpBase }

// MountHTTP mounts a call handler on the shared HTTP endpoint server at
// path. HTTP-based bindings use it so one listener serves every HTTP
// technology.
func (m *Manager) MountHTTP(path string, h http.Handler) { m.httpMux.handle(path, h) }

// UnmountHTTP removes a handler mounted with MountHTTP.
func (m *Manager) UnmountHTTP(path string) { m.httpMux.removeHandler(path) }

// NewPublisher builds a DL Publisher for class wired to the manager's
// configured stability timeout and clock, delivering documents via publish.
// Bindings use it so every technology shares the Section 5.6 publication
// behaviour (and its test clock) without reaching into the config. The
// publisher's forced-publication path flushes the manager's publication
// store, preserving the Section 5.7 guarantee under coalescing. Most
// bindings want the higher-level PublishInterface instead.
func (m *Manager) NewPublisher(class *dyn.Class, publish PublishFunc) *DLPublisher {
	p := NewDLPublisher(class, m.cfg.Timeout, m.cfg.Clock, publish)
	p.SetFlush(m.store.Flush)
	return p
}

// GenerateFunc renders an interface descriptor into one binding's document
// text (WSDL, CORBA-IDL, JSON, ...).
type GenerateFunc func(desc dyn.InterfaceDescriptor) (string, error)

// publishConfig is the resolved form of PublishInterface's options.
type publishConfig struct {
	window    time.Duration
	hasWindow bool
}

// PublishOption configures one PublishInterface/StartPublication call.
type PublishOption func(*publishConfig)

// WithPathFlushWindow overrides the store-wide coalescing window for this
// document path: a hot class can coalesce harder (longer window) than the
// manager's FlushWindow, a latency-sensitive one softer (shorter, or 0 to
// commit every publication immediately). First publications and forced
// publications commit synchronously regardless, exactly as with the
// store-wide window.
func WithPathFlushWindow(d time.Duration) PublishOption {
	return func(c *publishConfig) { c.window, c.hasWindow = d, true }
}

// PublishInterface is the publication seam bindings build on: it wires
// class's interface-document publication through the manager's store and
// returns the running DL Publisher. It bundles everything the SOAP, CORBA,
// and JSON bindings used to duplicate:
//
//   - generated text is cached by interface hash, so republication of a
//     previously seen interface (undo/redo, A→B→A edit cycles) skips the
//     generator;
//   - documents are committed through the coalescing store under path with
//     the given content type, carrying the descriptor version;
//   - the publisher's forced-publication path flushes the store;
//   - the initial (basic) description is published synchronously before
//     PublishInterface returns (Section 4), bypassing the flush window
//     because a first publication always commits immediately.
//
// The caller owns the returned publisher and must Close it when the
// binding's server closes.
func (m *Manager) PublishInterface(class *dyn.Class, path, contentType string, gen GenerateFunc, opts ...PublishOption) *DLPublisher {
	p := m.StartPublication(class, path, contentType, gen, opts...)
	p.PublishNow()
	p.WaitIdle()
	return p
}

// StartPublication is PublishInterface without the initial synchronous
// publication: the publisher is fully wired (doc cache, store, flush) but
// nothing has been published yet. Bindings whose call endpoint must be
// wired to the publisher *before* it goes live — the CORBA binding's ORB
// starts listening before the basic IDL is generated — use it and trigger
// PublishNow/WaitIdle themselves once the endpoint order is right.
func (m *Manager) StartPublication(class *dyn.Class, path, contentType string, gen GenerateFunc, opts ...PublishOption) *DLPublisher {
	var pc publishConfig
	for _, opt := range opts {
		opt(&pc)
	}
	if pc.hasWindow {
		m.store.SetPathWindow(path, pc.window)
	}
	docs := newDocCache()
	publish := func(desc dyn.InterfaceDescriptor) error {
		text, ok := docs.get(desc.Hash())
		if !ok {
			var err error
			if text, err = gen(desc); err != nil {
				return err
			}
			docs.put(desc.Hash(), text)
		}
		m.store.PublishVersioned(path, contentType, text, desc.Version)
		return nil
	}
	return m.NewPublisher(class, publish)
}

// ReactivePublication reports whether stale calls must force the published
// interface current before the "non-existent method" reply (true normally;
// false under the ActivePublishingOnly ablation).
func (m *Manager) ReactivePublication() bool { return !m.cfg.ActivePublishingOnly }

// CORBAAddr returns the configured listen address for CORBA server ORBs.
func (m *Manager) CORBAAddr() string { return m.cfg.CORBAAddr }

// Register deploys class as a live server of the named technology — what
// happens when a JPie user extends SOAPServer or CORBAServer (Section 4):
// the binding's backend components are created and a basic interface
// description is published immediately. The technology is resolved against
// the process-wide binding registry, so technologies added with
// RegisterBinding deploy exactly like the built-in pair.
func (m *Manager) Register(class *dyn.Class, tech Technology) (Server, error) {
	if m.follower != nil {
		return nil, fmt.Errorf("core: manager is a read-only replica of %s; deploy classes on the leader", m.cfg.FollowURL)
	}
	b, ok := LookupBinding(string(tech))
	if !ok {
		return nil, fmt.Errorf("core: no binding registered for technology %q (registered: %v)", tech, BindingNames())
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, errors.New("core: manager closed")
	}
	if m.draining {
		m.mu.Unlock()
		return nil, errors.New("core: manager is draining; no new registrations")
	}
	if _, dup := m.servers[class.Name()]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("core: class %s is already managed", class.Name())
	}
	// Reserve the slot to serialize concurrent Register calls.
	m.servers[class.Name()] = nil
	m.mu.Unlock()

	srv, err := b.Serve(m, class)

	m.mu.Lock()
	if err != nil {
		delete(m.servers, class.Name())
	} else {
		m.servers[class.Name()] = srv
	}
	m.mu.Unlock()
	return srv, err
}

// Server returns the managed server for a class name.
func (m *Manager) Server(className string) (Server, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.servers[className]
	return s, ok && s != nil
}

// Servers returns all managed servers.
func (m *Manager) Servers() []Server {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Server, 0, len(m.servers))
	for _, s := range m.servers {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Unregister drops a server from the registry. Binding Server
// implementations call it from Close.
func (m *Manager) Unregister(className string) {
	m.mu.Lock()
	delete(m.servers, className)
	m.mu.Unlock()
}

// The staged lifecycle. NewManager is the Start stage (both listeners are
// live when it returns); Probe answers readiness; Drain stops taking new
// work while letting in-flight work finish; Stop tears down. Close is
// kept as Drain-then-Stop under a short default deadline.

// DefaultDrainTimeout bounds the implicit drain inside Close (and the
// sde-server signal path when no explicit deadline is configured): long
// enough for in-flight calls to finish, short enough that an operator's
// ^C never feels stuck.
const DefaultDrainTimeout = 2 * time.Second

// DefaultReadyLagBound is the Probe readiness bound on a follower's
// replication lag when Config.ReadyLagBound is zero. It matches the tail
// plane's default ring history: a follower further behind than the ring
// would have to bootstrap anyway, so it has no business taking traffic.
const DefaultReadyLagBound = uint64(repl.DefaultTailHistory)

// ErrDraining reports an operation refused because the manager is
// draining.
var ErrDraining = errors.New("core: manager draining")

// Probe answers the readiness question: the listeners are up, the store
// recovered its state, and (in follower mode) replication is caught up
// within Config.ReadyLagBound. A nil return means the manager can take
// traffic; the error otherwise says what is not ready — the load
// balancer's health-check contract, also served over HTTP as
// /metrics' lifecycle gauge.
func (m *Manager) Probe() error {
	m.mu.Lock()
	closed, draining := m.closed, m.draining
	m.mu.Unlock()
	if closed {
		return errors.New("core: manager closed")
	}
	if draining {
		return ErrDraining
	}
	if m.iface.BaseURL() == "" {
		return errors.New("core: interface server not listening")
	}
	if m.httpBase == "" {
		return errors.New("core: HTTP endpoint server not listening")
	}
	if m.store.Generation() == 0 {
		return errors.New("core: publication store not recovered")
	}
	if m.follower != nil {
		bound := m.cfg.ReadyLagBound
		if bound == 0 {
			bound = DefaultReadyLagBound
		}
		if lag := m.follower.Lag(); lag > bound {
			return fmt.Errorf("core: follower lags the leader by %d records (readiness bound %d)", lag, bound)
		}
	}
	return nil
}

// Draining reports whether Drain has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain takes the manager out of service without dropping work:
//
//  1. new registrations are refused (Register returns an error) and
//     Probe reports not-ready, so orchestrators stop routing here;
//  2. the HTTP endpoint server stops accepting connections and waits —
//     bounded by ctx — for in-flight calls to complete
//     (http.Server.Shutdown, not Close: nothing in flight is dropped);
//  3. held replication tails are ended so followers reconnect elsewhere;
//  4. the Interface Server drains: parked long-polls answer immediately
//     and held watch streams end with a terminal "draining" frame, so
//     watchers reconnect to another replica instead of timing out;
//  5. staged publications are flushed through the WAL.
//
// Drain is idempotent, reversible only by Stop (there is no undrain), and
// leaves every serving structure intact — a drained manager still answers
// requests that were in flight when it began. Errors from the stages are
// joined, not discarded.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil // nothing left to drain
	}
	m.draining = true
	m.mu.Unlock()

	var errs []error
	// In-flight calls finish; new conns are refused from here on.
	if err := m.httpSrv.Shutdown(ctx); err != nil {
		errs = append(errs, fmt.Errorf("core: draining HTTP endpoint server: %w", err))
	}
	// End held WAL tails first: a parked follower would otherwise stall
	// the Interface Server's shutdown until the deadline.
	if m.tail != nil {
		m.tail.Drain()
	}
	if err := m.iface.Shutdown(ctx); err != nil {
		errs = append(errs, fmt.Errorf("core: draining interface server: %w", err))
	}
	if m.follower == nil {
		// Commit anything staged in a coalescing window through the WAL
		// (and, under a sync policy, through its fsync) before Stop can
		// close the store.
		m.store.Flush()
	}
	return errors.Join(errs...)
}

// Stop tears the manager down: every managed server, the HTTP endpoint
// server, the Interface Server, and the store (or the replication
// follower, which owns both in that mode). Unlike the pre-lifecycle
// Close it joins per-server Close errors instead of discarding them.
// Idempotent. Callers wanting a graceful exit call Drain first (or just
// Close, which does both).
func (m *Manager) Stop() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	servers := make([]Server, 0, len(m.servers))
	for _, s := range m.servers {
		if s != nil {
			servers = append(servers, s)
		}
	}
	m.mu.Unlock()

	var errs []error
	for _, s := range servers {
		if err := s.Close(); err != nil {
			errs = append(errs, fmt.Errorf("core: closing %s server %q: %w", s.Technology(), s.Class().Name(), err))
		}
	}
	if err := m.httpSrv.Close(); err != nil {
		errs = append(errs, fmt.Errorf("core: closing HTTP endpoint server: %w", err))
	}
	<-m.httpDone
	if m.follower != nil {
		// The follower owns the iface and store: stop tailing, persist
		// the replication cursor, then close both.
		m.follower.Close()
		return errors.Join(errs...)
	}
	if m.tail != nil {
		m.tail.Close()
	}
	if err := m.iface.Close(); err != nil {
		errs = append(errs, fmt.Errorf("core: closing interface server: %w", err))
	}
	// Closing the store wakes parked watch polls so they drain promptly.
	m.store.Close()
	return errors.Join(errs...)
}

// Close shuts the manager down gracefully: Drain under
// DefaultDrainTimeout, then Stop. In-flight calls get the drain window to
// complete; whatever outlasts it is cut off by Stop. Errors from both
// stages are joined.
func (m *Manager) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), DefaultDrainTimeout)
	defer cancel()
	derr := m.Drain(ctx)
	return errors.Join(derr, m.Stop())
}

// dynamicMux routes endpoint paths to handlers and supports removal
// (http.ServeMux cannot unregister, and SDE servers come and go live).
// Each mount carries request/error counters — the per-binding call
// counts the /metrics endpoint exposes.
type dynamicMux struct {
	mu       sync.RWMutex
	handlers map[string]*muxEntry
}

// muxEntry is one mounted handler plus its counters. Counters survive as
// long as the mount; remounting a path (a class re-registered) starts
// fresh.
type muxEntry struct {
	h        http.Handler
	requests atomic.Uint64
	errors   atomic.Uint64
}

// muxStat is one mount's counter snapshot.
type muxStat struct {
	path              string
	requests, errors_ uint64
}

func newDynamicMux() *dynamicMux {
	return &dynamicMux{handlers: make(map[string]*muxEntry)}
}

func (d *dynamicMux) handle(path string, h http.Handler) {
	d.mu.Lock()
	d.handlers[path] = &muxEntry{h: h}
	d.mu.Unlock()
}

func (d *dynamicMux) removeHandler(path string) {
	d.mu.Lock()
	delete(d.handlers, path)
	d.mu.Unlock()
}

// stats snapshots every mount's counters (unordered).
func (d *dynamicMux) stats() []muxStat {
	d.mu.RLock()
	out := make([]muxStat, 0, len(d.handlers))
	for p, e := range d.handlers {
		out = append(out, muxStat{path: p, requests: e.requests.Load(), errors_: e.errors.Load()})
	}
	d.mu.RUnlock()
	return out
}

// ServeHTTP implements http.Handler.
func (d *dynamicMux) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d.mu.RLock()
	e, ok := d.handlers[r.URL.Path]
	d.mu.RUnlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	e.requests.Add(1)
	sw := &statusWriter{ResponseWriter: w}
	e.h.ServeHTTP(sw, r)
	if sw.status >= http.StatusInternalServerError {
		e.errors.Add(1)
	}
}

// statusWriter records the response status for the mux's error counter.
// Unwrap keeps http.ResponseController (and so write deadlines) working
// through the wrapper; the explicit Flush passthrough keeps handlers that
// type-assert http.Flusher directly (streaming responses) working too.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }
