package core

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"livedev/internal/clock"
	"livedev/internal/dyn"
	"livedev/internal/ifsvr"
)

// Technology identifies an RMI technology integrated into the SDE.
type Technology string

// The technologies the initial SDE implementation supports (Section 2).
const (
	TechSOAP  Technology = "SOAP"
	TechCORBA Technology = "CORBA"
)

// Server is the technology-independent view of one managed server class —
// the SDEServer position in the Figure 6 hierarchy. SOAPServer and
// CORBAServer implement it.
type Server interface {
	// Class returns the managed dynamic class.
	Class() *dyn.Class
	// Technology reports which RMI technology serves the class.
	Technology() Technology
	// Publisher returns the server's DL Publisher.
	Publisher() *DLPublisher
	// CreateInstance creates the single live instance and activates the
	// call handler. It fails if an instance already exists (Section 5.4:
	// "only a single instance of each dynamic class ... can be in
	// existence at any given time").
	CreateInstance() (*dyn.Instance, error)
	// Instance returns the live instance (nil before CreateInstance).
	Instance() *dyn.Instance
	// InterfaceURL returns the HTTP URL of the published interface
	// description (WSDL or CORBA-IDL).
	InterfaceURL() string
	// Close deactivates the server and releases its resources.
	Close() error
}

// CallHandler is the communication backend of one technology (Figure 6):
// it receives remote calls, translates them, and dispatches to the live
// instance. It remains inactive — refusing calls — until the instance
// exists (Section 5.1.3).
type CallHandler interface {
	// Activate binds the handler to the live instance.
	Activate(in *dyn.Instance)
	// Active reports whether an instance is bound.
	Active() bool
}

// Config configures a Manager. The zero value listens on ephemeral
// loopback ports with the default publication timeout and the real clock.
type Config struct {
	// InterfaceAddr is the Interface Server listen address.
	InterfaceAddr string
	// SOAPAddr is the SOAP endpoint HTTP listen address.
	SOAPAddr string
	// CORBAAddr is the listen address used for each CORBA server ORB.
	CORBAAddr string
	// Timeout is the publication stability timeout (Section 5.6).
	Timeout time.Duration
	// Clock drives publication timers; nil means the real clock.
	Clock clock.Clock
	// ActivePublishingOnly disables the Section 5.7 reactive publication
	// on stale calls, leaving only the timer-driven path — the Figure 7
	// baseline the paper argues against. It exists for the E2/E3 ablation
	// experiments; production use should leave it false.
	ActivePublishingOnly bool
}

func (c Config) withDefaults() Config {
	if c.InterfaceAddr == "" {
		c.InterfaceAddr = "127.0.0.1:0"
	}
	if c.SOAPAddr == "" {
		c.SOAPAddr = "127.0.0.1:0"
	}
	if c.CORBAAddr == "" {
		c.CORBAAddr = "127.0.0.1:0"
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	return c
}

// Manager is the SDE Manager: it "oversees the subsystem initialization and
// acts as the central point of communication between the other components"
// (Section 5.1). One Manager owns the shared Interface Server, the HTTP
// server hosting SOAP endpoints, and the set of managed server classes.
type Manager struct {
	cfg Config

	iface *ifsvr.Server

	soapMux  *dynamicMux
	soapSrv  *http.Server
	soapLn   net.Listener
	soapBase string
	soapDone chan struct{}

	mu      sync.Mutex
	servers map[string]Server
	closed  bool
}

// NewManager creates and starts a manager: the Interface Server and the
// SOAP endpoint server begin listening immediately.
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:     cfg,
		iface:   ifsvr.New(),
		soapMux: newDynamicMux(),
		servers: make(map[string]Server),
	}
	if _, err := m.iface.Start(cfg.InterfaceAddr); err != nil {
		return nil, fmt.Errorf("core: starting interface server: %w", err)
	}
	ln, err := net.Listen("tcp", cfg.SOAPAddr)
	if err != nil {
		_ = m.iface.Close()
		return nil, fmt.Errorf("core: starting SOAP endpoint server: %w", err)
	}
	m.soapLn = ln
	m.soapBase = "http://" + ln.Addr().String()
	m.soapSrv = &http.Server{Handler: m.soapMux, ReadHeaderTimeout: 10 * time.Second}
	m.soapDone = make(chan struct{})
	go func() {
		defer close(m.soapDone)
		_ = m.soapSrv.Serve(ln)
	}()
	return m, nil
}

// InterfaceServer returns the shared Interface Server.
func (m *Manager) InterfaceServer() *ifsvr.Server { return m.iface }

// InterfaceBaseURL returns the Interface Server base URL.
func (m *Manager) InterfaceBaseURL() string { return m.iface.BaseURL() }

// SOAPBaseURL returns the base URL SOAP endpoints are mounted under.
func (m *Manager) SOAPBaseURL() string { return m.soapBase }

// Register creates a managed server of the given technology for class —
// what happens when a JPie user extends SOAPServer or CORBAServer
// (Section 4): the backend components are created and a basic interface
// description is published immediately.
func (m *Manager) Register(class *dyn.Class, tech Technology) (Server, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, errors.New("core: manager closed")
	}
	if _, dup := m.servers[class.Name()]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("core: class %s is already managed", class.Name())
	}
	// Reserve the slot to serialize concurrent Register calls.
	m.servers[class.Name()] = nil
	m.mu.Unlock()

	var srv Server
	var err error
	switch tech {
	case TechSOAP:
		srv, err = newSOAPServer(m, class)
	case TechCORBA:
		srv, err = newCORBAServer(m, class)
	default:
		err = fmt.Errorf("core: unsupported technology %q", tech)
	}

	m.mu.Lock()
	if err != nil {
		delete(m.servers, class.Name())
	} else {
		m.servers[class.Name()] = srv
	}
	m.mu.Unlock()
	return srv, err
}

// Server returns the managed server for a class name.
func (m *Manager) Server(className string) (Server, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.servers[className]
	return s, ok && s != nil
}

// Servers returns all managed servers.
func (m *Manager) Servers() []Server {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Server, 0, len(m.servers))
	for _, s := range m.servers {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

// remove drops a server from the registry (called by Server.Close).
func (m *Manager) remove(className string) {
	m.mu.Lock()
	delete(m.servers, className)
	m.mu.Unlock()
}

// Close shuts down every managed server, the SOAP endpoint server, and the
// Interface Server.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	servers := make([]Server, 0, len(m.servers))
	for _, s := range m.servers {
		if s != nil {
			servers = append(servers, s)
		}
	}
	m.mu.Unlock()

	for _, s := range servers {
		_ = s.Close()
	}
	err := m.soapSrv.Close()
	<-m.soapDone
	if e := m.iface.Close(); err == nil {
		err = e
	}
	return err
}

// dynamicMux routes SOAP endpoint paths to handlers and supports removal
// (http.ServeMux cannot unregister, and SDE servers come and go live).
type dynamicMux struct {
	mu       sync.RWMutex
	handlers map[string]http.Handler
}

func newDynamicMux() *dynamicMux {
	return &dynamicMux{handlers: make(map[string]http.Handler)}
}

func (d *dynamicMux) handle(path string, h http.Handler) {
	d.mu.Lock()
	d.handlers[path] = h
	d.mu.Unlock()
}

func (d *dynamicMux) removeHandler(path string) {
	d.mu.Lock()
	delete(d.handlers, path)
	d.mu.Unlock()
}

// ServeHTTP implements http.Handler.
func (d *dynamicMux) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d.mu.RLock()
	h, ok := d.handlers[r.URL.Path]
	d.mu.RUnlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	h.ServeHTTP(w, r)
}
