package core_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"livedev/internal/cde"
	"livedev/internal/dyn"
)

// TestCORBAHandlerStats mirrors the SOAP handler counter checks on the
// CORBA call handler.
func TestCORBAHandlerStats(t *testing.T) {
	m := newManager(t)
	cs, client, class, _ := startCORBA(t, m, "CStats")

	if _, err := client.Call("add", dyn.Int32Value(1), dyn.Int32Value(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := class.AddMethod(dyn.MethodSpec{
		Name:        "bad",
		Distributed: true,
		Body: func(*dyn.Instance, []dyn.Value) (dyn.Value, error) {
			return dyn.Value{}, errors.New("app error")
		},
	}); err != nil {
		t.Fatal(err)
	}
	srv, _ := m.Server("CStats")
	srv.Publisher().PublishNow()
	srv.Publisher().WaitIdle()
	if _, err := client.Call("bad"); err == nil {
		t.Fatal("bad should fail")
	}
	if _, err := client.Call("ghost"); !errors.Is(err, cde.ErrNoSuchStub) {
		t.Fatalf("ghost: %v", err)
	}
	// Force a genuine remote stale call: lie to the backend via a stale
	// local view by renaming without publishing.
	id, _ := class.MethodIDByName("add")
	if err := class.RenameMethod(id, "plus"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Call("add", dyn.Int32Value(1), dyn.Int32Value(2)); !errors.Is(err, cde.ErrStaleMethod) {
		t.Fatalf("stale: %v", err)
	}

	st := cs.HandlerStats()
	if st.Calls < 1 || st.AppFaults != 1 || st.StaleCalls != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestConcurrentCORBACallsDuringLiveEdits is the CORBA analogue of the
// SOAP storm test: concurrent IIOP calls race live renames; every reply is
// either correct or a clean stale error.
func TestConcurrentCORBACallsDuringLiveEdits(t *testing.T) {
	m := newManager(t)
	_, client, class, addID := startCORBA(t, m, "CStorm")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 64)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := client.Call("add", dyn.Int32Value(3), dyn.Int32Value(4))
				switch {
				case err == nil:
					if got.Int32() != 7 {
						errCh <- errors.New("wrong result " + got.String())
						return
					}
				case errors.Is(err, cde.ErrStaleMethod), errors.Is(err, cde.ErrNoSuchStub):
					// fine during renames
				default:
					errCh <- err
					return
				}
			}
		}()
	}
	for i := 0; i < 15; i++ {
		if err := class.RenameMethod(addID, "plus"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
		if err := class.RenameMethod(addID, "add"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestAutoRefreshRegularUpdatePath exercises Figure 8's "regular update"
// edge: with AutoRefresh running, a server-side change reaches the client
// without any stale call at all.
func TestAutoRefreshRegularUpdatePath(t *testing.T) {
	m := newManager(t)
	_, client, class, _ := startSOAP(t, m, "AutoR")

	stopRefresh := client.AutoRefresh(5 * time.Millisecond)
	defer stopRefresh()

	if _, err := class.AddMethod(dyn.MethodSpec{
		Name:        "fresh",
		Result:      dyn.StringT,
		Distributed: true,
		Body: func(*dyn.Instance, []dyn.Value) (dyn.Value, error) {
			return dyn.StringValue("f"), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	srv, _ := m.Server("AutoR")
	srv.Publisher().PublishNow()
	srv.Publisher().WaitIdle()

	deadline := time.After(5 * time.Second)
	for {
		if _, ok := client.Interface().Lookup("fresh"); ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("regular update never delivered the new method")
		case <-time.After(2 * time.Millisecond):
		}
	}
	// No stale faults were involved.
	if client.Stats().StaleFaults != 0 {
		t.Errorf("stats = %+v", client.Stats())
	}
	if v, err := client.Call("fresh"); err != nil || v.Str() != "f" {
		t.Errorf("fresh = %v, %v", v, err)
	}
}

// TestInterfaceServerServesBothSubsystems pins the Section 5.2 note that
// "the same Interface Server is used by both subsystems for simplicity":
// one manager's interface server hosts WSDL, IDL and IOR documents.
func TestInterfaceServerServesBothSubsystems(t *testing.T) {
	m := newManager(t)
	startSOAP(t, m, "ShareS")
	startCORBA(t, m, "ShareC")

	paths := m.InterfaceServer().Paths()
	var hasWSDL, hasIDL, hasIOR bool
	for _, p := range paths {
		switch {
		case p == "/wsdl/ShareS.wsdl":
			hasWSDL = true
		case p == "/idl/ShareC.idl":
			hasIDL = true
		case p == "/ior/ShareC.ior":
			hasIOR = true
		}
	}
	if !hasWSDL || !hasIDL || !hasIOR {
		t.Errorf("shared interface server paths = %v", paths)
	}
}
