package core

import (
	"sync"
	"testing"
	"time"

	"livedev/internal/clock"
	"livedev/internal/dyn"
)

// recordingPub is a PublishFunc that records descriptors and can block to
// simulate the paper's "relatively expensive" generation operation.
type recordingPub struct {
	mu        sync.Mutex
	published []dyn.InterfaceDescriptor

	// When blocking, each publish call sends on started and then waits on
	// release before returning.
	blocking bool
	started  chan struct{}
	release  chan struct{}
}

func newRecordingPub(blocking bool) *recordingPub {
	return &recordingPub{
		blocking: blocking,
		started:  make(chan struct{}, 16),
		release:  make(chan struct{}),
	}
}

func (r *recordingPub) fn(desc dyn.InterfaceDescriptor) error {
	if r.blocking {
		r.started <- struct{}{}
		<-r.release
	}
	r.mu.Lock()
	r.published = append(r.published, desc)
	r.mu.Unlock()
	return nil
}

func (r *recordingPub) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.published)
}

func (r *recordingPub) last() dyn.InterfaceDescriptor {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.published[len(r.published)-1]
}

func newTestClass(t *testing.T) (*dyn.Class, dyn.MemberID) {
	t.Helper()
	c := dyn.NewClass("Svc")
	id, err := c.AddMethod(dyn.MethodSpec{
		Name:        "ping",
		Result:      dyn.StringT,
		Distributed: true,
		Body:        func(*dyn.Instance, []dyn.Value) (dyn.Value, error) { return dyn.StringValue("pong"), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, id
}

const testTimeout = 100 * time.Millisecond

func TestStableTimeoutPublishesAfterQuietPeriod(t *testing.T) {
	c, _ := newTestClass(t)
	clk := clock.NewFake()
	rec := newRecordingPub(false)
	p := NewDLPublisher(c, testTimeout, clk, rec.fn)
	defer p.Close()

	if _, err := c.AddMethod(dyn.MethodSpec{Name: "extra", Distributed: true}); err != nil {
		t.Fatal(err)
	}
	if rec.count() != 0 {
		t.Fatal("must not publish before the stability timeout")
	}
	clk.Advance(testTimeout)
	p.WaitIdle()
	if rec.count() != 1 {
		t.Fatalf("published %d times, want 1", rec.count())
	}
	if _, ok := rec.last().Lookup("extra"); !ok {
		t.Error("published descriptor should include the new method")
	}
	if got := p.Stats(); got.Published != 1 || got.TimerArms != 1 {
		t.Errorf("stats = %+v", got)
	}
}

func TestEditBurstPublishesOnce(t *testing.T) {
	// Section 5.6: transient interfaces (mid-edit) must not be published;
	// each change resets the timer.
	c, id := newTestClass(t)
	clk := clock.NewFake()
	rec := newRecordingPub(false)
	p := NewDLPublisher(c, testTimeout, clk, rec.fn)
	defer p.Close()

	names := []string{"a", "b", "c", "d", "final"}
	for _, n := range names {
		if err := c.RenameMethod(id, n); err != nil {
			t.Fatal(err)
		}
		clk.Advance(testTimeout / 2) // keep editing inside the window
	}
	if rec.count() != 0 {
		t.Fatalf("published %d transient interfaces", rec.count())
	}
	clk.Advance(testTimeout)
	p.WaitIdle()
	if rec.count() != 1 {
		t.Fatalf("published %d times, want 1", rec.count())
	}
	if _, ok := rec.last().Lookup("final"); !ok {
		t.Error("only the settled interface should be published")
	}
	if got := p.Stats(); got.TimerArms != uint64(len(names)) {
		t.Errorf("TimerArms = %d, want %d", got.TimerArms, len(names))
	}
}

func TestBodyEditsDoNotArmTimer(t *testing.T) {
	c, id := newTestClass(t)
	clk := clock.NewFake()
	rec := newRecordingPub(false)
	p := NewDLPublisher(c, testTimeout, clk, rec.fn)
	defer p.Close()

	if err := c.SetBody(id, func(*dyn.Instance, []dyn.Value) (dyn.Value, error) {
		return dyn.StringValue("pong2"), nil
	}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * testTimeout)
	p.WaitIdle()
	if rec.count() != 0 {
		t.Error("implementation-only edits must not publish")
	}
	if p.Stats().TimerArms != 0 {
		t.Error("implementation-only edits must not arm the timer")
	}
}

func TestTimerExpiryDuringGenerationQueuesOneMore(t *testing.T) {
	// Section 5.6: "if the timer expires before the completion of the IDL
	// generation operation, then another IDL generation operation will
	// take place as soon as the current operation finishes."
	c, id := newTestClass(t)
	clk := clock.NewFake()
	rec := newRecordingPub(true)
	p := NewDLPublisher(c, testTimeout, clk, rec.fn)
	defer p.Close()

	if err := c.RenameMethod(id, "v1"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(testTimeout) // generation 1 starts and blocks
	<-rec.started

	// Edit while generating; its timer expires during the generation.
	if err := c.RenameMethod(id, "v2"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(testTimeout)

	rec.release <- struct{}{} // finish generation 1 (publishes v1)
	<-rec.started             // queued generation 2 starts immediately
	rec.release <- struct{}{} // finish generation 2 (publishes v2)
	p.WaitIdle()

	if rec.count() != 2 {
		t.Fatalf("published %d times, want 2", rec.count())
	}
	if _, ok := rec.last().Lookup("v2"); !ok {
		t.Error("second generation must capture the newest interface")
	}
}

func TestEnsureCurrentIdleAndCurrentIsNoop(t *testing.T) {
	c, _ := newTestClass(t)
	clk := clock.NewFake()
	rec := newRecordingPub(false)
	p := NewDLPublisher(c, testTimeout, clk, rec.fn)
	defer p.Close()

	p.PublishNow()
	p.WaitIdle()
	n := rec.count()

	p.EnsureCurrent() // idle + current: must not generate
	if rec.count() != n {
		t.Error("EnsureCurrent on a current publisher must not publish")
	}
	if got := p.Stats(); got.ForcedNoop != 1 || got.Forced != 0 {
		t.Errorf("stats = %+v", got)
	}
}

func TestEnsureCurrentWithTimerArmedForcesExpiry(t *testing.T) {
	c, id := newTestClass(t)
	clk := clock.NewFake()
	rec := newRecordingPub(false)
	p := NewDLPublisher(c, testTimeout, clk, rec.fn)
	defer p.Close()

	if err := c.RenameMethod(id, "renamed"); err != nil {
		t.Fatal(err)
	}
	// Timer armed, no generation. EnsureCurrent must not wait out the
	// timeout — it forces expiry (note: we never advance the fake clock).
	p.EnsureCurrent()
	if rec.count() != 1 {
		t.Fatalf("published %d times, want 1", rec.count())
	}
	if _, ok := rec.last().Lookup("renamed"); !ok {
		t.Error("forced publication must carry the latest interface")
	}
	if p.Stats().Forced != 1 {
		t.Errorf("stats = %+v", p.Stats())
	}
}

func TestEnsureCurrentDuringGenerationWaits(t *testing.T) {
	c, id := newTestClass(t)
	clk := clock.NewFake()
	rec := newRecordingPub(true)
	p := NewDLPublisher(c, testTimeout, clk, rec.fn)
	defer p.Close()

	if err := c.RenameMethod(id, "v1"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(testTimeout)
	<-rec.started // generation in progress, timer idle

	done := make(chan struct{})
	go func() {
		p.EnsureCurrent()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("EnsureCurrent returned while generation was still running")
	case <-time.After(20 * time.Millisecond):
	}
	rec.release <- struct{}{}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("EnsureCurrent did not return after generation completed")
	}
	if rec.count() != 1 {
		t.Errorf("published %d times", rec.count())
	}
}

func TestEnsureCurrentGenerationPlusTimerWaitsForTwo(t *testing.T) {
	// The fourth Section 5.7 case: a generation is running AND the timer
	// is armed (an edit arrived mid-generation). EnsureCurrent must wait
	// for the running generation and one more.
	c, id := newTestClass(t)
	clk := clock.NewFake()
	rec := newRecordingPub(true)
	p := NewDLPublisher(c, testTimeout, clk, rec.fn)
	defer p.Close()

	if err := c.RenameMethod(id, "v1"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(testTimeout)
	<-rec.started // generation 1 running
	if err := c.RenameMethod(id, "v2"); err != nil {
		t.Fatal(err) // timer armed again
	}

	done := make(chan struct{})
	go func() {
		p.EnsureCurrent()
		close(done)
	}()

	rec.release <- struct{}{} // generation 1 completes (v1)
	select {
	case <-done:
		t.Fatal("EnsureCurrent returned after only the stale generation")
	case <-time.After(20 * time.Millisecond):
	}
	<-rec.started             // queued generation 2 starts
	rec.release <- struct{}{} // generation 2 completes (v2)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("EnsureCurrent did not return after the second generation")
	}
	if rec.count() != 2 {
		t.Fatalf("published %d times, want 2", rec.count())
	}
	if _, ok := rec.last().Lookup("v2"); !ok {
		t.Error("EnsureCurrent must leave the newest interface published")
	}
}

func TestEnsureCurrentRepairsIdleStale(t *testing.T) {
	// Defensive case: publisher idle but never published (fresh publisher,
	// non-empty class). EnsureCurrent must repair.
	c, _ := newTestClass(t)
	clk := clock.NewFake()
	rec := newRecordingPub(false)
	p := NewDLPublisher(c, testTimeout, clk, rec.fn)
	defer p.Close()

	p.EnsureCurrent()
	if rec.count() != 1 {
		t.Fatalf("published %d times, want 1", rec.count())
	}
}

func TestGenerationSkipsWhenInterfaceUnchanged(t *testing.T) {
	c, id := newTestClass(t)
	clk := clock.NewFake()
	rec := newRecordingPub(false)
	p := NewDLPublisher(c, testTimeout, clk, rec.fn)
	defer p.Close()

	p.PublishNow()
	p.WaitIdle()
	if rec.count() != 1 {
		t.Fatal("initial publish")
	}

	// Rename away and back within one stability window: the settled
	// interface equals the published one, so generation happens but the
	// document is not republished.
	if err := c.RenameMethod(id, "temp"); err != nil {
		t.Fatal(err)
	}
	if err := c.RenameMethod(id, "ping"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(testTimeout)
	p.WaitIdle()
	if rec.count() != 1 {
		t.Errorf("republished an unchanged interface (%d publishes)", rec.count())
	}
	if got := p.Stats(); got.SkippedCurrent != 1 {
		t.Errorf("stats = %+v", got)
	}
}

func TestPublishNowWhileGeneratingQueues(t *testing.T) {
	c, id := newTestClass(t)
	clk := clock.NewFake()
	rec := newRecordingPub(true)
	p := NewDLPublisher(c, testTimeout, clk, rec.fn)
	defer p.Close()

	if err := c.RenameMethod(id, "v1"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(testTimeout)
	<-rec.started
	if err := c.RenameMethod(id, "v2"); err != nil {
		t.Fatal(err)
	}
	p.PublishNow()            // queues a follow-up
	rec.release <- struct{}{} // finish gen 1
	<-rec.started             // queued gen starts
	rec.release <- struct{}{} // finish gen 2
	p.WaitIdle()
	if rec.count() != 2 {
		t.Errorf("published %d times, want 2", rec.count())
	}
}

func TestSetTimeout(t *testing.T) {
	c, id := newTestClass(t)
	clk := clock.NewFake()
	rec := newRecordingPub(false)
	p := NewDLPublisher(c, testTimeout, clk, rec.fn)
	defer p.Close()

	p.SetTimeout(10 * testTimeout)
	if p.Timeout() != 10*testTimeout {
		t.Error("Timeout() after SetTimeout")
	}
	if err := c.RenameMethod(id, "slow"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * testTimeout)
	// The timer has not fired, so no generation can have started; do not
	// WaitIdle here (with a fake clock an armed timer never self-fires).
	if rec.count() != 0 {
		t.Error("published before the longer timeout elapsed")
	}
	clk.Advance(5 * testTimeout)
	p.WaitIdle()
	if rec.count() != 1 {
		t.Error("did not publish after the longer timeout")
	}
	// Defaulting behaviour.
	p.SetTimeout(0)
	if p.Timeout() != DefaultTimeout {
		t.Error("SetTimeout(0) should restore the default")
	}
}

func TestCloseDetachesFromClass(t *testing.T) {
	c, id := newTestClass(t)
	clk := clock.NewFake()
	rec := newRecordingPub(false)
	p := NewDLPublisher(c, testTimeout, clk, rec.fn)

	p.Close()
	p.Close() // idempotent
	if err := c.RenameMethod(id, "afterclose"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * testTimeout)
	if rec.count() != 0 {
		t.Error("closed publisher must not publish")
	}
	// EnsureCurrent and PublishNow are no-ops after close.
	p.EnsureCurrent()
	p.PublishNow()
	if rec.count() != 0 {
		t.Error("closed publisher acted on EnsureCurrent/PublishNow")
	}
}

func TestRogueClientNoAmplification(t *testing.T) {
	// Section 5.7: "this algorithm prevents a rogue client from
	// overwhelming the server by sending multiple calls to non-existent
	// methods that trigger IDL generation needlessly." After the first
	// forced publication, repeated EnsureCurrent calls are no-ops.
	c, _ := newTestClass(t)
	clk := clock.NewFake()
	rec := newRecordingPub(false)
	p := NewDLPublisher(c, testTimeout, clk, rec.fn)
	defer p.Close()
	p.PublishNow()
	p.WaitIdle()
	base := rec.count()

	for i := 0; i < 1000; i++ {
		p.EnsureCurrent()
	}
	if rec.count() != base {
		t.Errorf("rogue EnsureCurrent storm caused %d extra publications", rec.count()-base)
	}
	st := p.Stats()
	if st.ForcedNoop != 1000 {
		t.Errorf("ForcedNoop = %d", st.ForcedNoop)
	}
	if st.Generations != uint64(base) {
		t.Errorf("Generations = %d, want %d", st.Generations, base)
	}
}

func TestConcurrentEnsureCurrentUnderEdits(t *testing.T) {
	// Stress: editors and forced publications race; afterwards the
	// published interface must be current.
	c, id := newTestClass(t)
	rec := newRecordingPub(false)
	// Real clock with a tiny timeout so expiry happens organically.
	p := NewDLPublisher(c, time.Millisecond, clock.Real{}, rec.fn)
	defer p.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.EnsureCurrent()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		name := "m" + string(rune('a'+i%26))
		_ = c.RenameMethod(id, name)
	}
	wg.Wait()
	p.EnsureCurrent()
	if rec.count() == 0 {
		t.Fatal("nothing published")
	}
	if rec.last().Hash() != c.Interface().Hash() {
		t.Error("published interface is stale after EnsureCurrent")
	}
}
