package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"livedev/internal/dyn"
	"livedev/internal/idl"
	"livedev/internal/ior"
	"livedev/internal/orb"
)

// CORBAServer is the CORBA subsystem bundle for one managed class
// (Figure 5): an IDL Generator feeding the shared Interface Server via a DL
// Publisher, a Server ORB (with DSI, so interface changes never require ORB
// reinitialization — Section 5.2.2), and the published IOR.
type CORBAServer struct {
	mgr     *Manager
	class   *dyn.Class
	pub     *DLPublisher
	target  *corbaTarget
	orbSrv  *orb.ServerORB
	ref     ior.IOR
	idlPath string
	iorPath string

	mu       sync.Mutex
	instance *dyn.Instance
	closed   bool
}

var _ Server = (*CORBAServer)(nil)

func newCORBAServer(m *Manager, class *dyn.Class) (*CORBAServer, error) {
	s := &CORBAServer{
		mgr:     m,
		class:   class,
		idlPath: "/idl/" + class.Name() + ".idl",
		iorPath: "/ior/" + class.Name() + ".ior",
	}
	s.target = &corbaTarget{class: class}

	// Wire the publisher into the call target *before* the ORB starts
	// listening: a stale call arriving the instant the endpoint is live
	// must already run the Section 5.7 forced-publication protocol.
	s.pub = m.StartPublication(class, s.idlPath, "text/plain",
		func(desc dyn.InterfaceDescriptor) (string, error) {
			doc, err := idl.Generate(desc)
			if err != nil {
				return "", err
			}
			return idl.Print(doc), nil
		})
	s.target.pub = s.pub
	s.target.activeOnly = !m.ReactivePublication()

	// The Server ORB is initialized by the CORBA End Point and the IOR is
	// published via the publication store (Section 5.2.1).
	typeID := fmt.Sprintf("IDL:%sModule/%s:1.0", class.Name(), class.Name())
	s.orbSrv = orb.NewServerORB(typeID, []byte(class.Name()), s.target)
	ref, err := s.orbSrv.Listen(m.CORBAAddr())
	if err != nil {
		s.pub.Close()
		return nil, fmt.Errorf("core: starting server ORB: %w", err)
	}
	s.ref = ref
	m.iface.Publish(s.iorPath, "text/plain", ref.String())

	// "As soon as the class is created, a basic CORBA-IDL document is
	// published" (Section 4) — after the IOR, so anyone who can see the
	// IDL can already bootstrap the connection.
	s.pub.PublishNow()
	s.pub.WaitIdle()
	return s, nil
}

// Class implements Server.
func (s *CORBAServer) Class() *dyn.Class { return s.class }

// Technology implements Server.
func (s *CORBAServer) Technology() Technology { return TechCORBA }

// Publisher implements Server.
func (s *CORBAServer) Publisher() *DLPublisher { return s.pub }

// IOR returns the server object's interoperable object reference.
func (s *CORBAServer) IOR() ior.IOR { return s.ref }

// InterfaceURL implements Server: the CORBA-IDL document URL.
func (s *CORBAServer) InterfaceURL() string {
	return s.mgr.InterfaceBaseURL() + s.idlPath
}

// IORURL returns the URL the stringified IOR is published at.
func (s *CORBAServer) IORURL() string {
	return s.mgr.InterfaceBaseURL() + s.iorPath
}

// CallHandler returns the server's call handler.
func (s *CORBAServer) CallHandler() CallHandler { return s.target }

// HandlerStats returns the CORBA call handler's counters.
func (s *CORBAServer) HandlerStats() CallStats { return s.target.Stats() }

// CreateInstance implements Server.
func (s *CORBAServer) CreateInstance() (*dyn.Instance, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("core: server closed")
	}
	if s.instance != nil {
		return nil, fmt.Errorf("core: class %s already has its instance (single-instance rule, Section 5.4)", s.class.Name())
	}
	in := s.class.NewInstance()
	s.instance = in
	s.target.Activate(in)
	return in, nil
}

// Instance implements Server.
func (s *CORBAServer) Instance() *dyn.Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.instance
}

// Close implements Server.
func (s *CORBAServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.orbSrv.Close()
	s.pub.Close()
	s.mgr.Store().Remove(s.idlPath)
	s.mgr.Store().Remove(s.iorPath)
	s.mgr.Unregister(s.class.Name())
	return err
}

// errServerNotInitialized is returned (as a generic application exception)
// for calls arriving before the instance exists — the CORBA analogue of the
// SOAP subsystem's "Server not initialized" fault.
var errServerNotInitialized = errors.New(FaultTextServerNotInitialized)

// FaultTextServerNotInitialized is the message CORBA clients receive for
// calls to a not-yet-initialized server.
const FaultTextServerNotInitialized = "Server not initialized"

// corbaTarget is the CORBA Call Handler: "a simple wrapper around the
// Server ORB" (Section 5.2) implementing orb.DSITarget. It shares the
// concurrency design of the SOAP handler: concurrent calls under the
// read gate, stale-method handling under the write gate with forced
// publication.
type corbaTarget struct {
	class      *dyn.Class
	pub        *DLPublisher
	activeOnly bool

	gate     sync.RWMutex
	instance *dyn.Instance

	statsMu sync.Mutex
	stats   CallStats
}

var _ orb.DSITarget = (*corbaTarget)(nil)
var _ CallHandler = (*corbaTarget)(nil)

// Activate implements CallHandler.
func (t *corbaTarget) Activate(in *dyn.Instance) {
	t.gate.Lock()
	t.instance = in
	t.gate.Unlock()
}

// Active implements CallHandler.
func (t *corbaTarget) Active() bool {
	t.gate.RLock()
	defer t.gate.RUnlock()
	return t.instance != nil
}

// Stats returns a snapshot of the handler counters.
func (t *corbaTarget) Stats() CallStats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.stats
}

func (t *corbaTarget) count(f func(*CallStats)) {
	t.statsMu.Lock()
	f(&t.stats)
	t.statsMu.Unlock()
}

// LookupOperation implements orb.DSITarget against the live interface.
func (t *corbaTarget) LookupOperation(op string) (dyn.MethodSig, bool) {
	return t.class.Interface().Lookup(op)
}

// InvokeOperation implements orb.DSITarget. ctx is the request context
// threaded up from the IIOP transport: a client whose invoking context was
// cancelled (GIOP CancelRequest), a dropped connection, or ORB shutdown
// cancels it, and the dispatch is skipped — the method body itself cannot
// observe ctx (the dyn Body ABI is context-free by design; bodies are
// developer-edited application code).
func (t *corbaTarget) InvokeOperation(ctx context.Context, op string, args []dyn.Value) (dyn.Value, error) {
	t.gate.RLock()
	in := t.instance
	t.gate.RUnlock()
	if in == nil {
		t.count(func(s *CallStats) { s.Inactive++ })
		return dyn.Value{}, errServerNotInitialized
	}
	if err := ctx.Err(); err != nil {
		// The caller is gone; don't run a method nobody will observe.
		return dyn.Value{}, fmt.Errorf("core: call abandoned before dispatch: %w", err)
	}
	v, err := in.InvokeDistributed(op, args...)
	switch {
	case err == nil:
		t.count(func(s *CallStats) { s.Calls++ })
	case errors.Is(err, dyn.ErrNoSuchMethod), errors.Is(err, dyn.ErrSignatureMismatch):
		// counted in OperationMissing, which the ORB calls next
	default:
		t.count(func(s *CallStats) { s.AppFaults++ })
	}
	return v, err
}

// OperationMissing implements orb.DSITarget: the Section 5.7 protocol.
// Incoming processing stalls on the write gate while the publisher is
// forced current; only then does the ORB send the BAD_OPERATION ("Non
// Existent Method") exception.
func (t *corbaTarget) OperationMissing(string) {
	t.count(func(s *CallStats) { s.StaleCalls++ })
	t.gate.Lock()
	if t.pub != nil && !t.activeOnly {
		t.pub.EnsureCurrent()
	}
	t.gate.Unlock()
}
