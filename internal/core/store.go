package core

import (
	"time"

	"livedev/internal/clock"
	"livedev/internal/ifsvr"
)

// The publication store was re-homed into internal/ifsvr so the Interface
// Server's standalone mode could share it (one implementation of the
// watch-liveness rules instead of the old window=0 duplicate, ifsvr's
// memStore). The core package keeps its historical names as aliases: the
// store is still the event-driven publication core every binding publishes
// through, and Manager wires it exactly as before.

// ErrStoreClosed reports an operation on a closed publication store.
var ErrStoreClosed = ifsvr.ErrStoreClosed

type (
	// Store is the versioned interface-document store with epoch-numbered
	// snapshots, subscriber fan-out, edit-storm coalescing, and the
	// epoch-indexed replay journal. See ifsvr.Store.
	Store = ifsvr.Store
	// StoreEvent is one committed publication fanned out to subscribers.
	StoreEvent = ifsvr.StoreEvent
	// StoreStats counts store activity.
	StoreStats = ifsvr.StoreStats
)

// NewStore returns an in-memory store with the given flush window (0
// disables coalescing: every publish commits immediately). clk drives the
// flush timer; nil means the real clock.
func NewStore(window time.Duration, clk clock.Clock) *Store {
	return ifsvr.NewStore(window, clk)
}

type (
	// StoreConfig configures OpenStore; its Dir field (Config.DataDir on a
	// Manager) enables the file persistence backend.
	StoreConfig = ifsvr.StoreConfig
	// Persistence is the pluggable durability backend of a Store.
	Persistence = ifsvr.Persistence
	// PersistentState is the recovered state a Persistence backend loads.
	PersistentState = ifsvr.PersistentState
	// SyncPolicy selects when a durable store fsyncs its write-ahead log.
	SyncPolicy = ifsvr.SyncPolicy
	// PersistStats counts durability-backend activity (per-shard log
	// positions, fsyncs, group-commit batching, sync waits).
	PersistStats = ifsvr.PersistStats
)

// The three WAL sync policies; see ifsvr.SyncPolicy.
const (
	SyncNone        = ifsvr.SyncNone
	SyncGroupCommit = ifsvr.SyncGroupCommit
	SyncAlways      = ifsvr.SyncAlways
)

// ParseSyncPolicy parses a -sync flag value ("none", "group", "always").
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	return ifsvr.ParseSyncPolicy(s)
}

// OpenStore opens a store, recovering state from the configured
// persistence backend (if any). See ifsvr.OpenStore.
func OpenStore(cfg StoreConfig) (*Store, error) {
	return ifsvr.OpenStore(cfg)
}
