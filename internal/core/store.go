package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"livedev/internal/clock"
	"livedev/internal/ifsvr"
)

// ErrStoreClosed reports an operation on a closed publication store.
var ErrStoreClosed = errors.New("core: publication store closed")

// StoreEvent is one committed publication fanned out to subscribers.
type StoreEvent struct {
	// Path is the document path that committed.
	Path string
	// Doc is the committed document (its Version and Epoch are final).
	Doc ifsvr.Document
}

// StoreStats counts store activity; all fields are cumulative.
type StoreStats struct {
	// Publishes counts PublishVersioned calls.
	Publishes uint64
	// Commits counts committed document versions (one per fan-out event).
	Commits uint64
	// Coalesced counts publishes absorbed into an already-pending slot —
	// edit-storm publications that never became a distinct version.
	Coalesced uint64
	// Batches counts flush batches that committed at least one document.
	Batches uint64
	// Flushes counts explicit Flush calls (the forced-publication path).
	Flushes uint64
}

// Store is the event-driven publication core: a versioned interface-document
// store with epoch-numbered snapshots, subscriber fan-out, and edit-storm
// coalescing. It is the single seam every binding publishes through (via
// Manager.PublishInterface) and the Interface Server reads from
// (ifsvr.NewView); it implements ifsvr.Backing.
//
// Coalescing: with a non-zero flush window, rapid PublishVersioned calls to
// an already-published path are staged, and the window's flush commits each
// path once with the last-written content — a storm of N publications
// becomes one committed version per window. The first publication of a path
// always commits immediately (the paper's "immediately publishes a basic
// definition", Section 4), and Flush commits the staged set synchronously,
// which is how the forced-publication protocol (Section 5.7) keeps its
// recency guarantee: DLPublisher.EnsureCurrent flushes before the "Non
// Existent Method" reply goes out.
//
// Epochs: every commit batch advances the store epoch; each committed
// document records the epoch it was committed under, giving observers a
// store-wide happened-before order across paths.
type Store struct {
	window time.Duration
	clk    clock.Clock

	mu           sync.Mutex
	docs         map[string]ifsvr.Document
	retired      map[string]uint64         // removed paths → last committed version
	pending      map[string]ifsvr.Document // staged content awaiting a flush
	pendingOrder []string
	timer        clock.Timer
	timerOn      bool
	epoch        uint64
	stats        StoreStats
	changed      chan struct{} // closed and replaced on every commit batch
	subs         map[uint64]func(StoreEvent)
	nextSub      uint64
	closed       bool

	// deliverMu serializes commit+fan-out so events arrive in commit order
	// even when a timer flush races an explicit Flush or an immediate
	// publish. It is always acquired before mu.
	deliverMu sync.Mutex
}

var _ ifsvr.Backing = (*Store)(nil)

// NewStore returns a store with the given flush window (0 disables
// coalescing: every publish commits immediately). clk drives the flush
// timer; nil means the real clock.
func NewStore(window time.Duration, clk clock.Clock) *Store {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Store{
		window:  window,
		clk:     clk,
		docs:    make(map[string]ifsvr.Document),
		retired: make(map[string]uint64),
		pending: make(map[string]ifsvr.Document),
		changed: make(chan struct{}),
		subs:    make(map[uint64]func(StoreEvent)),
	}
}

// FlushWindow returns the configured coalescing window.
func (s *Store) FlushWindow() time.Duration { return s.window }

// Epoch returns the current commit epoch.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Publish is PublishVersioned without a descriptor version.
func (s *Store) Publish(path, contentType, content string) uint64 {
	return s.PublishVersioned(path, contentType, content, 0)
}

// PublishVersioned implements ifsvr.Backing: store content under path. With
// coalescing enabled and the path already published, the write is staged
// until the flush window elapses (or Flush runs), and the returned version
// is the version the path will carry after that flush. Staged writes to
// the same path coalesce — only the last content commits — so an earlier
// caller in the same window receives the version its superseded content
// never actually had; treat the return as "the path's next committed
// version", not a receipt for this exact content.
func (s *Store) PublishVersioned(path, contentType, content string, descriptorVersion uint64) uint64 {
	staged := ifsvr.Document{
		Content:           content,
		ContentType:       contentType,
		DescriptorVersion: descriptorVersion,
	}
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	s.stats.Publishes++
	if s.closed {
		s.mu.Unlock()
		return 0
	}
	_, published := s.docs[path]
	if s.window <= 0 || !published {
		evs := s.commitLocked([]string{path}, map[string]ifsvr.Document{path: staged})
		ver := s.docs[path].Version
		fns := s.subscribersLocked()
		s.mu.Unlock()
		fanOut(evs, fns)
		return ver
	}
	if _, dup := s.pending[path]; dup {
		s.stats.Coalesced++
	} else {
		s.pendingOrder = append(s.pendingOrder, path)
	}
	s.pending[path] = staged
	if !s.timerOn {
		s.timerOn = true
		s.timer = s.clk.AfterFunc(s.window, s.onFlushTimer)
	}
	ver := s.docs[path].Version + 1
	s.mu.Unlock()
	return ver
}

// commitLocked commits the given paths (drawing content from contents),
// bumping the epoch once for the batch. Caller holds s.mu and must call
// deliver with the returned events after unlocking.
func (s *Store) commitLocked(order []string, contents map[string]ifsvr.Document) []StoreEvent {
	if len(order) == 0 {
		return nil
	}
	s.epoch++
	s.stats.Batches++
	evs := make([]StoreEvent, 0, len(order))
	for _, path := range order {
		staged := contents[path]
		d := s.docs[path]
		if d.Version == 0 {
			// A republication of a retired path resumes its version
			// sequence so parked watchers still wake on it.
			d.Version = s.retired[path]
			delete(s.retired, path)
		}
		d.Content = staged.Content
		d.ContentType = staged.ContentType
		d.DescriptorVersion = staged.DescriptorVersion
		d.Epoch = s.epoch
		d.Version++
		s.docs[path] = d
		s.stats.Commits++
		evs = append(evs, StoreEvent{Path: path, Doc: d})
	}
	close(s.changed)
	s.changed = make(chan struct{})
	return evs
}

// flushLocked stages-out and commits everything pending. Caller holds s.mu.
func (s *Store) flushLocked() []StoreEvent {
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	s.timerOn = false
	if len(s.pendingOrder) == 0 {
		return nil
	}
	order, contents := s.pendingOrder, s.pending
	s.pendingOrder = nil
	s.pending = make(map[string]ifsvr.Document)
	return s.commitLocked(order, contents)
}

func (s *Store) onFlushTimer() {
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	s.timerOn = false
	s.timer = nil
	var evs []StoreEvent
	if !s.closed {
		evs = s.flushLocked()
	}
	fns := s.subscribersLocked()
	s.mu.Unlock()
	fanOut(evs, fns)
}

// Flush synchronously commits every staged publication — the forced-
// publication path: after Flush returns, Get observes everything published
// before the call.
func (s *Store) Flush() {
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	s.stats.Flushes++
	var evs []StoreEvent
	if !s.closed {
		evs = s.flushLocked()
	}
	fns := s.subscribersLocked()
	s.mu.Unlock()
	fanOut(evs, fns)
}

// subscribersLocked snapshots the subscriber list. Caller holds s.mu.
func (s *Store) subscribersLocked() []func(StoreEvent) {
	if len(s.subs) == 0 {
		return nil
	}
	fns := make([]func(StoreEvent), 0, len(s.subs))
	for _, fn := range s.subs {
		fns = append(fns, fn)
	}
	return fns
}

// fanOut delivers committed events to the snapshotted subscribers. Callers
// hold deliverMu (acquired before the commit), which is what keeps
// delivery in commit order across concurrent committers. Callbacks run on
// the committing goroutine and must not call back into the store's
// publish/flush paths.
func fanOut(evs []StoreEvent, fns []func(StoreEvent)) {
	for _, ev := range evs {
		for _, fn := range fns {
			fn(ev)
		}
	}
}

// Subscribe registers fn for every committed publication and returns a
// cancel function. An event already being delivered when cancel returns may
// still invoke fn once.
func (s *Store) Subscribe(fn func(StoreEvent)) (cancel func()) {
	s.mu.Lock()
	id := s.nextSub
	s.nextSub++
	s.subs[id] = fn
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.subs, id)
		s.mu.Unlock()
	}
}

// Remove implements ifsvr.Backing: retire a path when its server closes.
// The committed document disappears (Get reports it unpublished), staged
// writes for it are dropped, and — because the "first publication commits
// immediately" rule keys on committed presence — a re-registered server's
// fresh documents commit synchronously instead of sitting out a flush
// window behind the dead server's entries. The retired version floor is
// kept so republication continues the sequence.
func (s *Store) Remove(path string) {
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.docs[path]; ok {
		s.retired[path] = d.Version
		delete(s.docs, path)
	}
	if _, staged := s.pending[path]; staged {
		delete(s.pending, path)
		order := s.pendingOrder[:0]
		for _, p := range s.pendingOrder {
			if p != path {
				order = append(order, p)
			}
		}
		s.pendingOrder = order
	}
}

// Get implements ifsvr.Backing: the committed document at path. Staged
// (not yet flushed) content is not visible.
func (s *Store) Get(path string) (ifsvr.Document, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.docs[path]
	if !ok {
		return ifsvr.Document{}, ifsvr.ErrNotFound
	}
	return d, nil
}

// Version implements ifsvr.Backing.
func (s *Store) Version(path string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.docs[path].Version
}

// Paths implements ifsvr.Backing.
func (s *Store) Paths() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := make([]string, 0, len(s.docs))
	for p := range s.docs {
		ps = append(ps, p)
	}
	return ps
}

// Wait implements ifsvr.Backing: block until a version newer than after is
// committed at path, ctx ends, or the store closes.
func (s *Store) Wait(ctx context.Context, path string, after uint64) (ifsvr.Document, error) {
	for {
		s.mu.Lock()
		d, ok := s.docs[path]
		ch := s.changed
		closed := s.closed
		s.mu.Unlock()
		if ok && d.Version > after {
			return d, nil
		}
		if closed {
			return ifsvr.Document{}, ErrStoreClosed
		}
		select {
		case <-ctx.Done():
			return ifsvr.Document{}, ctx.Err()
		case <-ch:
		}
	}
}

// Close flushes staged publications, wakes waiters, and stops the flush
// timer. Subsequent publishes are dropped.
func (s *Store) Close() {
	s.deliverMu.Lock()
	defer s.deliverMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	evs := s.flushLocked()
	s.closed = true
	close(s.changed)
	s.changed = make(chan struct{})
	fns := s.subscribersLocked()
	s.mu.Unlock()
	fanOut(evs, fns)
}
