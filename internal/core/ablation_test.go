package core_test

import (
	"errors"
	"testing"
	"time"

	"livedev/internal/cde"
	"livedev/internal/core"
	"livedev/internal/dyn"
)

// TestActivePublishingViolatesRecency is the live counterpart of Figure 7:
// with the Section 5.7 reactive publication disabled (active publishing
// only), a stale call can return while the published interface still shows
// the OLD signature — the client refreshes and sees no change, which is
// exactly the inconsistent developer experience the paper's protocol
// eliminates. The same scenario with the protocol enabled (the default) is
// TestRecencyGuarantee in integration_test.go.
func TestActivePublishingViolatesRecency(t *testing.T) {
	for _, tech := range []core.Technology{core.TechSOAP, core.TechCORBA} {
		t.Run(string(tech), func(t *testing.T) {
			// A very long stability timeout: the regular publication path
			// will not fire during the test, isolating the reactive path.
			mgr, err := core.NewManager(core.Config{
				Timeout:              time.Hour,
				ActivePublishingOnly: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer mgr.Close()

			class := dyn.NewClass("Abl" + string(tech))
			id, err := class.AddMethod(dyn.MethodSpec{
				Name:        "op",
				Result:      dyn.Int32T,
				Distributed: true,
				Body: func(*dyn.Instance, []dyn.Value) (dyn.Value, error) {
					return dyn.Int32Value(1), nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			srv, err := mgr.Register(class, tech)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := srv.CreateInstance(); err != nil {
				t.Fatal(err)
			}

			var client *cde.Client
			if tech == core.TechSOAP {
				client, err = cde.NewSOAPClient(srv.InterfaceURL(), nil)
			} else {
				cs := srv.(*core.CORBAServer)
				client, err = cde.NewCORBAClient(cs.InterfaceURL(), cs.IORURL(), nil)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()

			// The rename happens; the timer is armed but will not fire for
			// an hour, and reactive publication is disabled.
			if err := class.RenameMethod(id, "op2"); err != nil {
				t.Fatal(err)
			}

			_, err = client.Call("op")
			if !errors.Is(err, cde.ErrStaleMethod) {
				t.Fatalf("stale call: %v", err)
			}
			// The violation: the client refreshed, but the published
			// document still describes the OLD interface, so the change is
			// invisible — the Figure 7 pathology, live.
			view := client.Interface()
			if _, ok := view.Lookup("op2"); ok {
				t.Fatal("ablation failed: the rename is visible, but reactive publication was disabled")
			}
			if _, ok := view.Lookup("op"); !ok {
				t.Fatal("client view should still show the stale method under active publishing")
			}

			// Sanity: zero forced publications happened.
			if f := srv.Publisher().Stats().Forced; f != 0 {
				t.Errorf("forced publications = %d under active publishing", f)
			}
		})
	}
}
