// Package core implements the paper's contribution: the Server Development
// Environment middleware. It contains the SDE Manager (Section 5), the DL
// Publisher implementing the stable-timeout publication algorithm
// (Section 5.6) and the forced-publication state machine for stale client
// calls (Section 5.7), the SOAP and CORBA call handlers arranged in the
// technology-independent class hierarchy of Figure 6, and — since the
// event-driven publication refactor — the publication Store: the versioned
// interface-document store with epoch-numbered snapshots, subscriber
// fan-out, and edit-storm coalescing that every binding publishes through
// (Manager.PublishInterface) and the Interface Server reads from. The
// publication pipeline is therefore: class edit → DL Publisher
// (stable-timeout, Section 5.6) → Store (flush-window coalescing, epochs,
// fan-out) → Interface Server read view (HTTP + long-poll watch) → client
// caches (push-invalidated via the watch protocol).
package core

import (
	"sync"
	"time"

	"livedev/internal/clock"
	"livedev/internal/dyn"
)

// PublishFunc generates and publishes one interface description snapshot
// (WSDL or CORBA-IDL) to the Interface Server. It is the expensive
// operation the stable-timeout algorithm exists to ration.
type PublishFunc func(desc dyn.InterfaceDescriptor) error

// PublisherStats counts publisher activity; all fields are cumulative.
// Retrieved via DLPublisher.Stats for the Section 5.6 experiments.
type PublisherStats struct {
	// TimerArms counts timer (re)arms caused by interface-affecting edits.
	TimerArms uint64
	// Generations counts generation runs (snapshot + possible publish).
	Generations uint64
	// Published counts generations that actually published a document
	// (the interface hash differed from the published one).
	Published uint64
	// SkippedCurrent counts generations skipped because the published
	// interface was already current.
	SkippedCurrent uint64
	// Forced counts EnsureCurrent calls that had to wait for at least one
	// generation.
	Forced uint64
	// ForcedNoop counts EnsureCurrent calls satisfied immediately
	// (publisher idle and current) — the rogue-client fast path.
	ForcedNoop uint64
}

// DLPublisher is the paper's DL Publisher (Figure 6): one per managed
// server class. It listens to the class's change events, arms a timer with
// the user-configurable timeout on every interface-affecting edit, and runs
// a generation when the timer expires without further edits. Timer control
// and generation are independent: a timer expiring during a generation
// queues exactly one follow-up generation. EnsureCurrent implements the
// Section 5.7 guarantee used by the call handlers before they report "Non
// Existent Method".
type DLPublisher struct {
	class   *dyn.Class
	publish PublishFunc
	clk     clock.Clock

	// flush, when non-nil, commits the downstream publication store's
	// staged documents. EnsureCurrent calls it after its generations
	// complete so the forced-publication guarantee (Section 5.7) holds
	// even when the store coalesces publications under a flush window.
	flush func()

	mu            sync.Mutex
	cond          *sync.Cond
	timeout       time.Duration
	timer         clock.Timer
	timerRunning  bool
	generating    bool
	pendingAgain  bool
	completedGens uint64
	publishedHash string
	publishedVer  uint64 // interface version of the published descriptor
	stats         PublisherStats
	closed        bool
	unsubscribe   func()
	genDone       sync.WaitGroup
}

// DefaultTimeout is the publication stability timeout used when the user
// has not configured one through the SDE Manager Interface.
const DefaultTimeout = 500 * time.Millisecond

// NewDLPublisher creates a publisher for class, delivering documents via
// publish. It subscribes to the class's change events immediately. The
// caller should invoke PublishNow once to put out the initial (minimal)
// interface description, mirroring SDE's behaviour at class load time.
func NewDLPublisher(class *dyn.Class, timeout time.Duration, clk clock.Clock, publish PublishFunc) *DLPublisher {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	if clk == nil {
		clk = clock.Real{}
	}
	p := &DLPublisher{
		class:   class,
		publish: publish,
		clk:     clk,
		timeout: timeout,
	}
	p.cond = sync.NewCond(&p.mu)
	p.unsubscribe = class.Subscribe(p.onChange)
	return p
}

// SetFlush installs the downstream store-commit hook run at the end of
// every EnsureCurrent. Manager.NewPublisher and Manager.PublishInterface
// wire it to the publication store's Flush.
func (p *DLPublisher) SetFlush(flush func()) {
	p.mu.Lock()
	p.flush = flush
	p.mu.Unlock()
}

// SetTimeout changes the stability timeout for subsequently armed timers
// (the SDE Manager Interface lets the user tune it, Section 4).
func (p *DLPublisher) SetTimeout(d time.Duration) {
	if d <= 0 {
		d = DefaultTimeout
	}
	p.mu.Lock()
	p.timeout = d
	p.mu.Unlock()
}

// Timeout returns the current stability timeout.
func (p *DLPublisher) Timeout() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.timeout
}

// Stats returns a snapshot of the publisher counters.
func (p *DLPublisher) Stats() PublisherStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// PublishedVersion returns the interface version of the most recently
// published descriptor.
func (p *DLPublisher) PublishedVersion() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.publishedVer
}

// onChange is the class listener: every interface-affecting edit (re)arms
// the stability timer (Section 5.6: "When a change to the relevant server
// class is detected, the DL Publisher sets a timer to the timeout value...
// If changes are made before the timer expires, the timer is reset").
func (p *DLPublisher) onChange(ev dyn.ChangeEvent) {
	if !ev.InterfaceAffecting {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.armTimerLocked()
	p.stats.TimerArms++
}

func (p *DLPublisher) armTimerLocked() {
	if p.timer != nil {
		p.timer.Stop()
	}
	p.timerRunning = true
	p.timer = p.clk.AfterFunc(p.timeout, p.onTimerExpired)
}

func (p *DLPublisher) stopTimerLocked() {
	if p.timer != nil {
		p.timer.Stop()
		p.timer = nil
	}
	p.timerRunning = false
}

// onTimerExpired runs when the stability interval elapses with no further
// edits: start a generation, or queue one if a generation is in progress
// ("if the timer expires before the completion of the IDL generation
// operation, then another IDL generation operation will take place as soon
// as the current operation finishes", Section 5.6).
func (p *DLPublisher) onTimerExpired() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.timerRunning = false
	p.timer = nil
	p.cond.Broadcast()
	if p.closed {
		return
	}
	if p.generating {
		p.pendingAgain = true
		return
	}
	p.startGenerationLocked()
}

// startGenerationLocked launches the generation goroutine. Caller holds
// p.mu; generating must be false.
func (p *DLPublisher) startGenerationLocked() {
	p.generating = true
	p.genDone.Add(1)
	go p.runGenerations()
}

// runGenerations performs one generation, plus any follow-up queued while
// it ran, then clears the generating flag.
func (p *DLPublisher) runGenerations() {
	defer p.genDone.Done()
	for {
		desc := p.class.Interface()

		p.mu.Lock()
		current := desc.Hash() == p.publishedHash
		p.mu.Unlock()

		var publishErr error
		if !current && p.publish != nil {
			publishErr = p.publish(desc)
		}

		p.mu.Lock()
		p.stats.Generations++
		if current {
			p.stats.SkippedCurrent++
		} else if publishErr == nil {
			p.stats.Published++
			p.publishedHash = desc.Hash()
			p.publishedVer = desc.Version
		}
		p.completedGens++
		p.cond.Broadcast()
		if p.pendingAgain && !p.closed {
			p.pendingAgain = false
			p.mu.Unlock()
			continue
		}
		p.generating = false
		p.cond.Broadcast()
		p.mu.Unlock()
		return
	}
}

// PublishNow forces timer expiration (the SDE Manager Interface's manual
// trigger): any armed timer is cancelled and a generation starts (or is
// queued) immediately. It does not wait for completion.
func (p *DLPublisher) PublishNow() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.stopTimerLocked()
	if p.generating {
		p.pendingAgain = true
		return
	}
	p.startGenerationLocked()
}

// EnsureCurrent blocks until the published interface description is
// guaranteed current — the server half of the reactive-publication protocol
// run before replying "Non Existent Method" (Section 5.7). The case split
// follows the paper exactly:
//
//   - timer idle, no generation: the published description is already
//     current (every change arms the timer; the timer only clears into a
//     generation) — return immediately.
//   - timer idle, generation running: that generation's snapshot is current
//     (no edits since it started, or the timer would be armed) — wait for it.
//   - timer armed, no generation: force expiry; wait for the generation.
//   - timer armed, generation running: the running generation may predate
//     the latest edit — queue a follow-up and wait for both.
func (p *DLPublisher) EnsureCurrent() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	var target uint64
	switch {
	case p.timerRunning && p.generating:
		p.stopTimerLocked()
		p.pendingAgain = true
		target = p.completedGens + 2
		p.stats.Forced++
	case p.generating:
		target = p.completedGens + 1
		p.stats.Forced++
	case p.timerRunning:
		p.stopTimerLocked()
		p.startGenerationLocked()
		target = p.completedGens + 1
		p.stats.Forced++
	default:
		// Idle: the invariant says we are current. Double-check cheaply
		// and repair if an edit raced us (belt and braces; counted as a
		// no-op either way because publication was not needed per protocol).
		if p.publishedHash == p.class.Interface().Hash() {
			p.stats.ForcedNoop++
			flush := p.flush
			p.mu.Unlock()
			// Even a no-op generation must commit anything the store still
			// holds staged, or the "published" description a client fetches
			// next could predate what this publisher already sent.
			if flush != nil {
				flush()
			}
			return
		}
		p.startGenerationLocked()
		target = p.completedGens + 1
		p.stats.Forced++
	}
	for p.completedGens < target && !p.closed {
		p.cond.Wait()
	}
	flush := p.flush
	p.mu.Unlock()
	if flush != nil {
		flush()
	}
}

// Busy reports whether a generation is currently running.
func (p *DLPublisher) Busy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.generating
}

// TimerArmed reports whether the stability timer is currently armed.
func (p *DLPublisher) TimerArmed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.timerRunning
}

// WaitIdle blocks until no generation is running and no timer is armed —
// a quiescence helper for tests and experiments. With a fake clock the
// caller must advance virtual time from another goroutine or beforehand,
// or the armed timer never expires and WaitIdle never returns.
func (p *DLPublisher) WaitIdle() {
	p.mu.Lock()
	for (p.generating || p.timerRunning) && !p.closed {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Close detaches the publisher from the class, cancels any armed timer, and
// joins the generation goroutine. It does not publish.
func (p *DLPublisher) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.stopTimerLocked()
	p.cond.Broadcast()
	p.mu.Unlock()
	p.unsubscribe()
	p.genDone.Wait()
}
