package core

import (
	"sort"
	"sync"

	"livedev/internal/dyn"
)

// Binding is the server half of one RMI technology integrated into the SDE
// — the seam that makes a new technology a registry entry instead of a
// cross-cutting edit. Serve builds the technology's subsystem bundle
// (interface generator + DL Publisher + call handler, the Figure 4/5 shape)
// for one managed class, using the Manager's shared services: the Interface
// Server for publication (Manager.InterfaceServer, Manager.NewPublisher),
// the shared HTTP endpoint host for HTTP transports (Manager.MountHTTP), or
// its own listener for custom transports (the CORBA binding does this).
//
// Implementations must:
//   - publish an initial interface description before Serve returns
//     (Section 4: registration "immediately publishes a basic definition");
//   - refuse calls until Server.CreateInstance provides the live instance;
//   - run the Section 5.7 forced-publication protocol before replying
//     "non-existent method" to a stale call, unless the manager's
//     ActivePublishingOnly ablation is set (Manager.ReactivePublication);
//   - call Manager.Unregister(class name) from Server.Close.
type Binding interface {
	// Name is the technology name servers and clients resolve ("SOAP",
	// "CORBA", "JSON", ...). Names are case-sensitive and process-wide.
	Name() string
	// Serve deploys class as a live server of this technology under m.
	Serve(m *Manager, class *dyn.Class) (Server, error)
}

var (
	bindingMu sync.RWMutex
	bindings  = make(map[string]Binding)
)

// RegisterBinding adds (or replaces) a server binding in the process-wide
// registry. Manager.Register resolves technologies against it.
func RegisterBinding(b Binding) {
	if b == nil || b.Name() == "" {
		panic("core: binding needs a name")
	}
	bindingMu.Lock()
	bindings[b.Name()] = b
	bindingMu.Unlock()
}

// LookupBinding returns the named server binding.
func LookupBinding(name string) (Binding, bool) {
	bindingMu.RLock()
	defer bindingMu.RUnlock()
	b, ok := bindings[name]
	return b, ok
}

// BindingNames returns the registered technology names, sorted.
func BindingNames() []string {
	bindingMu.RLock()
	names := make([]string, 0, len(bindings))
	for n := range bindings {
		names = append(names, n)
	}
	bindingMu.RUnlock()
	sort.Strings(names)
	return names
}

// The built-in SOAP and CORBA bindings register themselves through the same
// seam third-party technologies use; nothing in the dispatch path knows
// them specially.
func init() {
	RegisterBinding(soapBinding{})
	RegisterBinding(corbaBinding{})
}

type soapBinding struct{}

func (soapBinding) Name() string { return string(TechSOAP) }
func (soapBinding) Serve(m *Manager, class *dyn.Class) (Server, error) {
	return newSOAPServer(m, class)
}

type corbaBinding struct{}

func (corbaBinding) Name() string { return string(TechCORBA) }
func (corbaBinding) Serve(m *Manager, class *dyn.Class) (Server, error) {
	return newCORBAServer(m, class)
}
