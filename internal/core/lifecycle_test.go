package core_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"livedev/internal/cde"
	"livedev/internal/core"
	"livedev/internal/dyn"
	"livedev/internal/soap"
)

// slowEchoClass serves one echo method that blocks for d before replying —
// the probe for "in-flight calls survive the drain".
func slowEchoClass(t *testing.T, name string, d time.Duration) *dyn.Class {
	t.Helper()
	c := dyn.NewClass(name)
	if _, err := c.AddMethod(dyn.MethodSpec{
		Name:        "echo",
		Params:      []dyn.Param{{Name: "s", Type: dyn.StringT}},
		Result:      dyn.StringT,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			time.Sleep(d)
			return args[0], nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDrainCompletesInFlightCall is the heart of the lifecycle contract: a
// call accepted before Drain runs to completion while the drain is in
// progress, and a connection arriving after the drain began is refused.
func TestDrainCompletesInFlightCall(t *testing.T) {
	m := newManager(t)
	srv, err := m.Register(slowEchoClass(t, "SlowDrain", 300*time.Millisecond), core.TechSOAP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	ep := srv.(*core.SOAPServer).Endpoint()

	client := &soap.Client{Endpoint: ep, ServiceNS: "urn:SlowDrain", HTTPClient: &http.Client{}}
	args := []soap.NamedValue{{Name: "s", Value: dyn.StringValue("survives")}}

	type result struct {
		val dyn.Value
		err error
	}
	inflight := make(chan result, 1)
	go func() {
		v, err := client.CallContext(context.Background(), "echo", args, dyn.StringT)
		inflight <- result{v, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the call reach the (sleeping) handler

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- m.Drain(ctx) }()

	// While the drain is waiting on the slow call, new work is refused:
	// registrations immediately, new HTTP dials once the listener closes.
	time.Sleep(50 * time.Millisecond)
	if !m.Draining() {
		t.Fatal("Draining() = false during Drain")
	}
	if _, err := m.Register(slowEchoClass(t, "LateClass", 0), core.TechSOAP); err == nil {
		t.Fatal("Register succeeded on a draining manager")
	}
	if err := m.Probe(); !errors.Is(err, core.ErrDraining) {
		t.Fatalf("Probe during drain = %v, want ErrDraining", err)
	}

	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight call dropped by drain: %v", r.err)
	}
	if r.val.Str() != "survives" {
		t.Fatalf("in-flight call corrupted: %q", r.val.Str())
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// The listener is closed now: a fresh dial must fail.
	if _, err := http.Get(m.HTTPBaseURL() + "/metrics"); err == nil {
		t.Fatal("new HTTP connection accepted after drain")
	}
	if err := m.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

func TestProbeLifecycle(t *testing.T) {
	m := newManager(t)
	if err := m.Probe(); err != nil {
		t.Fatalf("Probe on a healthy manager: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := m.Probe(); !errors.Is(err, core.ErrDraining) {
		t.Fatalf("Probe after Drain = %v, want ErrDraining", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close after Drain: %v", err)
	}
	if err := m.Probe(); err == nil {
		t.Fatal("Probe succeeded on a closed manager")
	}
	// Idempotent teardown: Drain and Close on a closed manager are no-ops.
	if err := m.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after Close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestMetricsEndpoint asserts the ops-plane gauges docs/ops.md advertises
// are present on the shared endpoint mux.
func TestMetricsEndpoint(t *testing.T) {
	m := newManager(t)
	srv, err := m.Register(slowEchoClass(t, "Metered", 0), core.TechSOAP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	client := &soap.Client{Endpoint: srv.(*core.SOAPServer).Endpoint(), ServiceNS: "urn:Metered", HTTPClient: &http.Client{}}
	if _, err := client.CallContext(context.Background(), "echo",
		[]soap.NamedValue{{Name: "s", Value: dyn.StringValue("hi")}}, dyn.StringT); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(m.HTTPBaseURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"livedev_up 1",
		"livedev_draining 0",
		"livedev_endpoint_requests_total",
		"livedev_store_commits_total",
		"livedev_store_journal_depth",
		"livedev_watchers",
		"livedev_repl_lag",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The echo call above must show up on its endpoint's request counter.
	if !strings.Contains(string(body), `livedev_endpoint_requests_total{path="/soap/Metered"} 1`) {
		t.Errorf("endpoint counter did not record the call:\n%s", body)
	}
}

// TestLifecycleGoroutineChurn registers and unregisters classes, churns
// watch clients, and asserts the goroutine count settles back near the
// baseline — the leak test for every lifecycle path this PR touches.
func TestLifecycleGoroutineChurn(t *testing.T) {
	m := newManager(t)
	baseline := runtime.NumGoroutine()

	// A dedicated transport for the churned clients: the process-wide
	// shared pools (sharedDocClient, the soap/jsonb call transports) hold
	// keep-alive connections by design, which would read as leaks here.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	hc := &http.Client{Transport: tr}

	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("Churn%d", i)
		srv, err := m.Register(slowEchoClass(t, name, 0), core.TechSOAP)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.CreateInstance(); err != nil {
			t.Fatal(err)
		}
		c, err := cde.Dial(context.Background(), srv.InterfaceURL(), &cde.DialOptions{Watch: true, HTTPClient: hc})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Call("echo", dyn.StringValue("x")); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		m.Unregister(name)
	}

	// Goroutines wind down asynchronously (stream teardown, publisher
	// stop); poll instead of sleeping a fixed eternity.
	deadline := time.Now().Add(5 * time.Second)
	for {
		// Pooled keep-alive connections (this test's transport and their
		// server-side peers) park goroutines that are reclaimed, not
		// leaked: drop them before counting.
		tr.CloseIdleConnections()
		http.DefaultTransport.(*http.Transport).CloseIdleConnections()
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDrainEndsHeldStreams: a streaming watch client connected through the
// Interface Server observes the terminal draining frame (counted in its
// ClientStats) instead of waiting out a timeout, and keeps its view.
func TestDrainEndsHeldStreams(t *testing.T) {
	m := newManager(t)
	class := slowEchoClass(t, "DrainWatch", 0)
	renameID, err := class.AddMethod(dyn.MethodSpec{Name: "v0", Result: dyn.Int32T, Distributed: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := m.Register(class, core.TechSOAP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	c, err := cde.Dial(context.Background(), srv.InterfaceURL(), &cde.DialOptions{Watch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Watching() only means the watch loop started; prove the SSE stream is
	// actually established by pushing an edit through it and waiting for
	// the client to observe it.
	if err := class.RenameMethod(renameID, "v1"); err != nil {
		t.Fatal(err)
	}
	srv.Publisher().PublishNow()
	deadline := time.Now().Add(3 * time.Second)
	for c.Stats().StreamEvents == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stream never delivered the warm-up edit: stats %+v", c.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Drain blocked %v on a held stream — the terminal frame did not end it", elapsed)
	}
	// The client turned the terminal frame into a drain-count and a
	// reconnect attempt (which will back off against the closed listener).
	deadline = time.Now().Add(3 * time.Second)
	for c.Stats().Drains == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("client never observed the draining frame: stats %+v", c.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
