package core

import "sync"

// docCache memoizes generated interface documents (WSDL or CORBA-IDL text)
// keyed by the interface descriptor hash that produced them. The DL
// Publisher regenerates a document every time it publishes; when the
// developer's edits oscillate (rename A→B→A, undo/redo) or a forced
// publication races a timer publication, the same interface is generated
// repeatedly. Caching by hash makes republication of a previously seen
// interface a map lookup instead of a full generator + serializer run.
//
// The cache is bounded: a small FIFO window of recent interfaces is all the
// oscillation patterns need, and it keeps an edit-heavy session from
// accumulating every interface it ever had.
type docCache struct {
	mu      sync.Mutex
	entries map[string]string
	order   []string // insertion order, for FIFO eviction
	limit   int
}

// docCacheLimit is the number of distinct interface versions remembered per
// managed server class.
const docCacheLimit = 16

func newDocCache() *docCache {
	return &docCache{entries: make(map[string]string), limit: docCacheLimit}
}

func (c *docCache) get(hash string) (string, bool) {
	c.mu.Lock()
	doc, ok := c.entries[hash]
	c.mu.Unlock()
	return doc, ok
}

func (c *docCache) put(hash, doc string) {
	c.mu.Lock()
	if _, dup := c.entries[hash]; !dup {
		if len(c.order) >= c.limit {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, oldest)
		}
		c.entries[hash] = doc
		c.order = append(c.order, hash)
	}
	c.mu.Unlock()
}
