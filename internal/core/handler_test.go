package core

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"livedev/internal/clock"
	"livedev/internal/dyn"
	"livedev/internal/soap"
)

// newHandlerUnderTest wires a SOAP call handler to a class and publisher
// directly, without a manager, for white-box tests.
func newHandlerUnderTest(t *testing.T) (*SOAPCallHandler, *dyn.Class, dyn.MemberID, *DLPublisher) {
	t.Helper()
	c := dyn.NewClass("H")
	id, err := c.AddMethod(dyn.MethodSpec{
		Name:        "double",
		Params:      []dyn.Param{{Name: "n", Type: dyn.Int32T}},
		Result:      dyn.Int32T,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return dyn.Int32Value(2 * args[0].Int32()), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pub := NewDLPublisher(c, time.Hour, clock.Real{}, func(dyn.InterfaceDescriptor) error { return nil })
	t.Cleanup(pub.Close)
	pub.PublishNow()
	pub.WaitIdle()
	h := newSOAPCallHandler(c, "urn:H", pub)
	return h, c, id, pub
}

// post sends a SOAP request through the handler and parses the response.
func post(t *testing.T, h *SOAPCallHandler, body string) soap.Response {
	t.Helper()
	req := httptest.NewRequest("POST", "/soap/H", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	resp, err := soap.ParseResponse(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("unparseable handler response: %v\n%s", err, rec.Body.String())
	}
	return resp
}

func requestXML(t *testing.T, method string, params ...soap.NamedValue) string {
	t.Helper()
	env, err := soap.BuildRequest("urn:H", method, params)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestHandlerStatsCounters(t *testing.T) {
	h, _, _, _ := newHandlerUnderTest(t)

	// Inactive call.
	resp := post(t, h, requestXML(t, "double", soap.NamedValue{Name: "n", Value: dyn.Int32Value(2)}))
	if resp.Fault == nil || resp.Fault.String != soap.FaultServerNotInitialized {
		t.Fatalf("inactive fault = %+v", resp.Fault)
	}

	h.Activate(h.class.NewInstance())
	if !h.Active() {
		t.Fatal("handler should be active")
	}

	// Successful call.
	resp = post(t, h, requestXML(t, "double", soap.NamedValue{Name: "n", Value: dyn.Int32Value(21)}))
	if resp.Fault != nil {
		t.Fatalf("fault = %+v", resp.Fault)
	}
	v, err := soap.DecodeValue(resp.Return, dyn.Int32T)
	if err != nil || v.Int32() != 42 {
		t.Errorf("double = %v, %v", v, err)
	}

	// Malformed request.
	resp = post(t, h, "<<<<")
	if resp.Fault == nil || resp.Fault.String != soap.FaultMalformedRequest {
		t.Errorf("malformed fault = %+v", resp.Fault)
	}

	// Stale call.
	resp = post(t, h, requestXML(t, "ghost"))
	if resp.Fault == nil || resp.Fault.String != soap.FaultNonExistentMethod {
		t.Errorf("stale fault = %+v", resp.Fault)
	}

	st := h.Stats()
	if st.Inactive != 1 || st.Calls != 1 || st.Malformed != 1 || st.StaleCalls != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHandlerAppFaultCounted(t *testing.T) {
	h, c, _, _ := newHandlerUnderTest(t)
	if _, err := c.AddMethod(dyn.MethodSpec{
		Name:        "bad",
		Distributed: true,
		Body: func(*dyn.Instance, []dyn.Value) (dyn.Value, error) {
			return dyn.Value{}, strings.NewReader("").UnreadRune() // arbitrary error
		},
	}); err != nil {
		t.Fatal(err)
	}
	h.Activate(h.class.NewInstance())
	resp := post(t, h, requestXML(t, "bad"))
	if resp.Fault == nil {
		t.Fatal("expected application fault")
	}
	if h.Stats().AppFaults != 1 {
		t.Errorf("stats = %+v", h.Stats())
	}
}

func TestHandlerArityMismatchIsStale(t *testing.T) {
	h, _, _, _ := newHandlerUnderTest(t)
	h.Activate(h.class.NewInstance())
	// Two params where the live signature has one.
	resp := post(t, h, requestXML(t, "double",
		soap.NamedValue{Name: "a", Value: dyn.Int32Value(1)},
		soap.NamedValue{Name: "b", Value: dyn.Int32Value(2)}))
	if resp.Fault == nil || resp.Fault.String != soap.FaultNonExistentMethod {
		t.Errorf("arity mismatch fault = %+v", resp.Fault)
	}
	// A param that does not decode under the live type.
	resp = post(t, h, requestXML(t, "double",
		soap.NamedValue{Name: "n", Value: dyn.StringValue("not-an-int")}))
	if resp.Fault == nil || resp.Fault.String != soap.FaultNonExistentMethod {
		t.Errorf("type mismatch fault = %+v", resp.Fault)
	}
	if h.Stats().StaleCalls != 2 {
		t.Errorf("stats = %+v", h.Stats())
	}
}

// TestStaleCallStallsIncoming verifies the Section 5.7 "stalls the
// processing of incoming messages" behaviour: while a stale call is inside
// forced publication, new calls block on the gate until it completes.
func TestStaleCallStallsIncoming(t *testing.T) {
	c := dyn.NewClass("Stall")
	if _, err := c.AddMethod(dyn.MethodSpec{
		Name:        "op",
		Result:      dyn.Int32T,
		Distributed: true,
		Body: func(*dyn.Instance, []dyn.Value) (dyn.Value, error) {
			return dyn.Int32Value(7), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	genRelease := make(chan struct{})
	genStarted := make(chan struct{}, 4)
	pub := NewDLPublisher(c, time.Hour, clock.Real{}, func(dyn.InterfaceDescriptor) error {
		genStarted <- struct{}{}
		<-genRelease
		return nil
	})
	defer pub.Close()
	h := newSOAPCallHandler(c, "urn:Stall", pub)
	h.Activate(c.NewInstance())

	// Arm the timer (an unpublished edit) so the stale call must force a
	// generation, which we hold open.
	id, _ := c.MethodIDByName("op")
	if err := c.RenameMethod(id, "op2"); err != nil {
		t.Fatal(err)
	}

	staleDone := make(chan struct{})
	go func() {
		defer close(staleDone)
		env, _ := soap.BuildRequest("urn:Stall", "op", nil) // stale name
		req := httptest.NewRequest("POST", "/", strings.NewReader(env))
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	<-genStarted // the stale call is now inside EnsureCurrent

	// A healthy call must stall behind the gate.
	var mu sync.Mutex
	healthyFinished := false
	healthyDone := make(chan struct{})
	go func() {
		defer close(healthyDone)
		env, _ := soap.BuildRequest("urn:Stall", "op2", nil)
		req := httptest.NewRequest("POST", "/", strings.NewReader(env))
		h.ServeHTTP(httptest.NewRecorder(), req)
		mu.Lock()
		healthyFinished = true
		mu.Unlock()
	}()

	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	finished := healthyFinished
	mu.Unlock()
	if finished {
		t.Error("incoming call was not stalled during forced publication")
	}

	close(genRelease)
	select {
	case <-staleDone:
	case <-time.After(5 * time.Second):
		t.Fatal("stale call hung")
	}
	select {
	case <-healthyDone:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled call never resumed")
	}
}

func TestManagerListenFailure(t *testing.T) {
	// Occupy a port, then ask the manager to bind it.
	m1, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	busy := m1.SOAPBaseURL()[len("http://"):]
	if _, err := NewManager(Config{SOAPAddr: busy}); err == nil {
		t.Error("manager on a busy SOAP port should fail")
	}
	if _, err := NewManager(Config{InterfaceAddr: m1.InterfaceBaseURL()[len("http://"):]}); err == nil {
		t.Error("manager on a busy interface port should fail")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.InterfaceAddr == "" || cfg.HTTPAddr == "" || cfg.CORBAAddr == "" {
		t.Error("addresses should default")
	}
	// The deprecated SOAPAddr is honored when HTTPAddr is unset.
	if got := (Config{SOAPAddr: "127.0.0.1:9999"}).withDefaults().HTTPAddr; got != "127.0.0.1:9999" {
		t.Errorf("SOAPAddr should flow into HTTPAddr, got %q", got)
	}
	if cfg.Timeout != DefaultTimeout {
		t.Error("timeout should default")
	}
	if cfg.Clock == nil {
		t.Error("clock should default")
	}
}
