package core

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"livedev/internal/dyn"
	"livedev/internal/soap"
	"livedev/internal/wsdl"
)

// SOAPServer is the SOAP subsystem bundle for one managed class
// (Figure 4): the WSDL generator feeding the shared Interface Server via a
// DL Publisher, and the SOAP Call Handler mounted on the manager's HTTP
// endpoint server.
type SOAPServer struct {
	mgr      *Manager
	class    *dyn.Class
	pub      *DLPublisher
	handler  *SOAPCallHandler
	endpoint string // full endpoint URL
	path     string // endpoint path on the manager's SOAP server
	wsdlPath string // interface-server path of the WSDL document

	mu       sync.Mutex
	instance *dyn.Instance
	closed   bool
}

var _ Server = (*SOAPServer)(nil)

func newSOAPServer(m *Manager, class *dyn.Class) (*SOAPServer, error) {
	s := &SOAPServer{
		mgr:      m,
		class:    class,
		path:     "/soap/" + class.Name(),
		wsdlPath: "/wsdl/" + class.Name() + ".wsdl",
	}
	s.endpoint = m.HTTPBaseURL() + s.path
	s.handler = newSOAPCallHandler(class, "urn:"+class.Name(), nil)

	// "...creates the required backend components for deployment and
	// immediately publishes a basic WSDL definition" (Section 4). All the
	// publication plumbing — doc caching, the coalescing store, the forced-
	// publication flush — lives behind the manager's publication seam.
	s.pub = m.PublishInterface(class, s.wsdlPath, "text/xml",
		func(desc dyn.InterfaceDescriptor) (string, error) {
			return wsdl.Generate(desc, s.endpoint).XML()
		})
	s.handler.pub = s.pub
	s.handler.activeOnly = !m.ReactivePublication()

	m.MountHTTP(s.path, s.handler)
	return s, nil
}

// Class implements Server.
func (s *SOAPServer) Class() *dyn.Class { return s.class }

// Technology implements Server.
func (s *SOAPServer) Technology() Technology { return TechSOAP }

// Publisher implements Server.
func (s *SOAPServer) Publisher() *DLPublisher { return s.pub }

// Endpoint returns the SOAP endpoint URL.
func (s *SOAPServer) Endpoint() string { return s.endpoint }

// InterfaceURL implements Server: the WSDL document URL.
func (s *SOAPServer) InterfaceURL() string {
	return s.mgr.InterfaceBaseURL() + s.wsdlPath
}

// CallHandler returns the server's call handler.
func (s *SOAPServer) CallHandler() CallHandler { return s.handler }

// Handler returns the concrete SOAP call handler (for stats access).
func (s *SOAPServer) Handler() *SOAPCallHandler { return s.handler }

// CreateInstance implements Server.
func (s *SOAPServer) CreateInstance() (*dyn.Instance, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("core: server closed")
	}
	if s.instance != nil {
		return nil, fmt.Errorf("core: class %s already has its instance (single-instance rule, Section 5.4)", s.class.Name())
	}
	in := s.class.NewInstance()
	s.instance = in
	s.handler.Activate(in)
	return in, nil
}

// Instance implements Server.
func (s *SOAPServer) Instance() *dyn.Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.instance
}

// Close implements Server.
func (s *SOAPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.mgr.UnmountHTTP(s.path)
	s.pub.Close()
	s.mgr.Store().Remove(s.wsdlPath)
	s.mgr.Unregister(s.class.Name())
	return nil
}

// CallStats counts call-handler activity.
type CallStats struct {
	// Calls counts successfully dispatched method calls.
	Calls uint64
	// AppFaults counts calls whose method body returned an error.
	AppFaults uint64
	// StaleCalls counts calls to methods missing from the live interface
	// (each one runs the Section 5.7 forced-publication protocol).
	StaleCalls uint64
	// Malformed counts unparseable requests.
	Malformed uint64
	// Inactive counts calls received before the instance existed.
	Inactive uint64
}

// SOAPCallHandler is the paper's SOAP Call Handler: "the communication end
// point that performs the SOAP to Java and Java to SOAP translation for
// remote method invocations" (Section 5.1) — here SOAP to dyn values and
// back. It is completely multithreaded (Section 5.4): requests run
// concurrently under a read-lock "gate"; the stale-method path takes the
// write lock, stalling incoming processing while publication is forced
// (Section 5.7).
type SOAPCallHandler struct {
	class      *dyn.Class
	serviceNS  string
	pub        *DLPublisher
	activeOnly bool

	gate     sync.RWMutex
	instance *dyn.Instance

	statsMu sync.Mutex
	stats   CallStats
}

var _ CallHandler = (*SOAPCallHandler)(nil)
var _ http.Handler = (*SOAPCallHandler)(nil)

func newSOAPCallHandler(class *dyn.Class, serviceNS string, pub *DLPublisher) *SOAPCallHandler {
	return &SOAPCallHandler{class: class, serviceNS: serviceNS, pub: pub}
}

// Activate implements CallHandler.
func (h *SOAPCallHandler) Activate(in *dyn.Instance) {
	h.gate.Lock()
	h.instance = in
	h.gate.Unlock()
}

// Active implements CallHandler.
func (h *SOAPCallHandler) Active() bool {
	h.gate.RLock()
	defer h.gate.RUnlock()
	return h.instance != nil
}

// Stats returns a snapshot of the handler counters.
func (h *SOAPCallHandler) Stats() CallStats {
	h.statsMu.Lock()
	defer h.statsMu.Unlock()
	return h.stats
}

func (h *SOAPCallHandler) count(f func(*CallStats)) {
	h.statsMu.Lock()
	f(&h.stats)
	h.statsMu.Unlock()
}

// writeFault sends a SOAP fault with HTTP 500, per SOAP 1.1 over HTTP.
func writeFault(w http.ResponseWriter, f *soap.Fault) {
	w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = io.WriteString(w, soap.BuildFault(f))
}

func writeOK(w http.ResponseWriter, envelope string) {
	w.Header().Set("Content-Type", `text/xml; charset="utf-8"`)
	_, _ = io.WriteString(w, envelope)
}

// ServeHTTP implements the request/response handling of Section 5.1.3.
// The request body is read into a pooled buffer (the per-request io.ReadAll
// was the largest remaining per-call allocation after PR 1): everything
// decoded from it below — dyn values, method names — is copied by the soap
// parser, so the buffer recycles as soon as the request is handled.
func (h *SOAPCallHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "SOAP endpoint: POST only", http.StatusMethodNotAllowed)
		return
	}
	buf := soap.GetBodyBuffer()
	defer soap.PutBodyBuffer(buf)
	_, err := buf.ReadFrom(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		h.count(func(s *CallStats) { s.Malformed++ })
		writeFault(w, &soap.Fault{Code: "soap:Client", String: soap.FaultMalformedRequest})
		return
	}
	body := buf.Bytes()

	h.gate.RLock()
	in := h.instance
	if in == nil {
		h.gate.RUnlock()
		h.count(func(s *CallStats) { s.Inactive++ })
		writeFault(w, &soap.Fault{Code: "soap:Server", String: soap.FaultServerNotInitialized})
		return
	}

	req, err := soap.ParseRequest(body)
	if err != nil {
		h.gate.RUnlock()
		h.count(func(s *CallStats) { s.Malformed++ })
		writeFault(w, &soap.Fault{Code: "soap:Client", String: soap.FaultMalformedRequest})
		return
	}

	// "the SOAP Call Handler searches for a matching method in the current
	// server interface" — the live descriptor, not any cached one.
	iface := h.class.Interface()
	sig, ok := iface.Lookup(req.Method)
	if !ok || len(req.Params) != len(sig.Params) {
		h.gate.RUnlock()
		h.staleCall(w, req.Method)
		return
	}
	args := make([]dyn.Value, len(sig.Params))
	for i, p := range sig.Params {
		v, decErr := soap.DecodeValue(req.Params[i], p.Type)
		if decErr != nil {
			// The client encoded against a stale signature: same protocol
			// as a missing method (Section 5.6: "Client calls for stale
			// method signatures may also trigger updates").
			h.gate.RUnlock()
			h.staleCall(w, req.Method)
			return
		}
		args[i] = v
	}

	result, err := in.InvokeDistributed(req.Method, args...)
	h.gate.RUnlock()

	switch {
	case err == nil:
		env, encErr := soap.BuildResponse(h.serviceNS, req.Method, result)
		if encErr != nil {
			writeFault(w, &soap.Fault{Code: "soap:Server", String: "encoding error", Detail: encErr.Error()})
			return
		}
		h.count(func(s *CallStats) { s.Calls++ })
		writeOK(w, env)
	case errors.Is(err, dyn.ErrNoSuchMethod), errors.Is(err, dyn.ErrSignatureMismatch):
		// Interface changed between lookup and dispatch.
		h.staleCall(w, req.Method)
	default:
		// "a SOAP Response containing a SOAP Fault that encapsulates the
		// exception is sent to the client."
		h.count(func(s *CallStats) { s.AppFaults++ })
		writeFault(w, &soap.Fault{Code: "soap:Server", String: err.Error()})
	}
}

// staleCall implements the Section 5.7 server algorithm: stall incoming
// processing (write lock), force the published interface current, then send
// the "Non existent Method" fault and resume. Under the ActivePublishingOnly
// ablation the forced publication is skipped (Figure 7 behaviour).
func (h *SOAPCallHandler) staleCall(w http.ResponseWriter, method string) {
	h.count(func(s *CallStats) { s.StaleCalls++ })
	h.gate.Lock()
	if h.pub != nil && !h.activeOnly {
		h.pub.EnsureCurrent()
	}
	h.gate.Unlock()
	writeFault(w, &soap.Fault{
		Code:   "soap:Server",
		String: soap.FaultNonExistentMethod,
		Detail: "method " + method + " is not part of the current server interface",
	})
}
