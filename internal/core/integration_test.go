package core_test

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"livedev/internal/cde"
	"livedev/internal/core"
	"livedev/internal/dyn"
	"livedev/internal/soap"
)

// newManager starts a manager with a short real-clock publication timeout.
func newManager(t *testing.T) *core.Manager {
	t.Helper()
	m, err := core.NewManager(core.Config{Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	return m
}

// newCalcClass builds the running example: a Calc service with add and
// greet, plus a Message struct method for composite-type coverage.
func newCalcClass(t *testing.T, name string) (*dyn.Class, dyn.MemberID) {
	t.Helper()
	c := dyn.NewClass(name)
	addID, err := c.AddMethod(dyn.MethodSpec{
		Name:        "add",
		Params:      []dyn.Param{{Name: "a", Type: dyn.Int32T}, {Name: "b", Type: dyn.Int32T}},
		Result:      dyn.Int32T,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return dyn.Int32Value(args[0].Int32() + args[1].Int32()), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	msg := dyn.MustStructOf("Note",
		dyn.StructField{Name: "text", Type: dyn.StringT},
		dyn.StructField{Name: "id", Type: dyn.Int64T})
	if _, err := c.AddMethod(dyn.MethodSpec{
		Name:        "wrap",
		Params:      []dyn.Param{{Name: "text", Type: dyn.StringT}},
		Result:      dyn.SequenceOf(msg),
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			n := dyn.MustStructValue(msg, args[0], dyn.Int64Value(1))
			return dyn.SequenceValue(msg, n)
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddMethod(dyn.MethodSpec{
		Name:   "internal",
		Result: dyn.Int32T,
		Body: func(_ *dyn.Instance, _ []dyn.Value) (dyn.Value, error) {
			return dyn.Int32Value(99), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	return c, addID
}

func startSOAP(t *testing.T, m *core.Manager, name string) (*core.SOAPServer, *cde.Client, *dyn.Class, dyn.MemberID) {
	t.Helper()
	class, addID := newCalcClass(t, name)
	srv, err := m.Register(class, core.TechSOAP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	srv.Publisher().PublishNow()
	srv.Publisher().WaitIdle()
	client, err := cde.NewSOAPClient(srv.InterfaceURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return srv.(*core.SOAPServer), client, class, addID
}

func startCORBA(t *testing.T, m *core.Manager, name string) (*core.CORBAServer, *cde.Client, *dyn.Class, dyn.MemberID) {
	t.Helper()
	class, addID := newCalcClass(t, name)
	srv, err := m.Register(class, core.TechCORBA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	srv.Publisher().PublishNow()
	srv.Publisher().WaitIdle()
	cs := srv.(*core.CORBAServer)
	client, err := cde.NewCORBAClient(cs.InterfaceURL(), cs.IORURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return cs, client, class, addID
}

// TestFigure1SOAPFlow walks every arrow of the paper's Figure 1: WSDL
// publication, client-side WSDL compilation, SOAP request, SOAP response.
func TestFigure1SOAPFlow(t *testing.T) {
	m := newManager(t)
	_, client, _, _ := startSOAP(t, m, "CalcS")

	if client.Technology() != "SOAP" {
		t.Errorf("technology = %s", client.Technology())
	}
	got, err := client.Call("add", dyn.Int32Value(20), dyn.Int32Value(22))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int32() != 42 {
		t.Errorf("add = %v", got)
	}
	// Composite types over the wire.
	seq, err := client.Call("wrap", dyn.StringValue("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != 1 {
		t.Fatalf("wrap returned %d notes", seq.Len())
	}
	if text, _ := seq.Index(0).Field("text"); text.Str() != "hello" {
		t.Errorf("note text = %v", text)
	}
}

// TestFigure2CORBAFlow walks every arrow of Figure 2: IOR + IDL fetch,
// client ORB initialization, IIOP request/response.
func TestFigure2CORBAFlow(t *testing.T) {
	m := newManager(t)
	_, client, _, _ := startCORBA(t, m, "CalcC")

	if client.Technology() != "CORBA" {
		t.Errorf("technology = %s", client.Technology())
	}
	got, err := client.Call("add", dyn.Int32Value(20), dyn.Int32Value(22))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int32() != 42 {
		t.Errorf("add = %v", got)
	}
	seq, err := client.Call("wrap", dyn.StringValue("bonjour"))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != 1 {
		t.Fatalf("wrap returned %d notes", seq.Len())
	}
	if text, _ := seq.Index(0).Field("text"); text.Str() != "bonjour" {
		t.Errorf("note text = %v", text)
	}
}

// TestNonDistributedInvisible: methods without the 'distributed' modifier
// are absent from published interfaces and unreachable remotely.
func TestNonDistributedInvisible(t *testing.T) {
	m := newManager(t)
	_, client, _, _ := startSOAP(t, m, "CalcND")
	if _, err := client.Call("internal"); !errors.Is(err, cde.ErrNoSuchStub) {
		t.Errorf("internal should be invisible: %v", err)
	}
}

// TestSOAPServerNotInitialized reproduces Section 5.1.3: before the class
// instance exists, the handler replies with the 'Server not initialized'
// fault.
func TestSOAPServerNotInitialized(t *testing.T) {
	m := newManager(t)
	class, _ := newCalcClass(t, "ColdS")
	srv, err := m.Register(class, core.TechSOAP)
	if err != nil {
		t.Fatal(err)
	}
	ss := srv.(*core.SOAPServer)
	if ss.CallHandler().Active() {
		t.Error("handler should be inactive before CreateInstance")
	}

	env, err := soap.BuildRequest("urn:ColdS", "add", []soap.NamedValue{
		{Name: "a", Value: dyn.Int32Value(1)}, {Name: "b", Value: dyn.Int32Value(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ss.Endpoint(), "text/xml", strings.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	parsed, err := soap.ParseResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Fault == nil || parsed.Fault.String != soap.FaultServerNotInitialized {
		t.Errorf("fault = %+v", parsed.Fault)
	}
	if ss.Handler().Stats().Inactive != 1 {
		t.Errorf("stats = %+v", ss.Handler().Stats())
	}
}

// TestCORBAServerNotInitialized: the CORBA path's analogue delivers the
// message as a generic application exception.
func TestCORBAServerNotInitialized(t *testing.T) {
	m := newManager(t)
	class, _ := newCalcClass(t, "ColdC")
	srv, err := m.Register(class, core.TechCORBA)
	if err != nil {
		t.Fatal(err)
	}
	cs := srv.(*core.CORBAServer)
	client, err := cde.NewCORBAClient(cs.InterfaceURL(), cs.IORURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, err = client.Call("add", dyn.Int32Value(1), dyn.Int32Value(2))
	if err == nil || !strings.Contains(err.Error(), core.FaultTextServerNotInitialized) {
		t.Errorf("cold CORBA call: %v", err)
	}
}

// TestMalformedSOAPRequest: Section 5.1.3's 'Malformed SOAP Request' fault.
func TestMalformedSOAPRequest(t *testing.T) {
	m := newManager(t)
	ss, _, _, _ := startSOAP(t, m, "CalcMF")
	resp, err := http.Post(ss.Endpoint(), "text/xml", strings.NewReader("this is not SOAP"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	parsed, err := soap.ParseResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Fault == nil || parsed.Fault.String != soap.FaultMalformedRequest {
		t.Errorf("fault = %+v", parsed.Fault)
	}
	// GET is rejected outright.
	getResp, err := http.Get(ss.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	_ = getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", getResp.StatusCode)
	}
}

// TestLiveMethodAddition: the server developer adds a distributed method
// while client and server run; the client picks it up without restarting.
func TestLiveMethodAddition(t *testing.T) {
	for _, tech := range []core.Technology{core.TechSOAP, core.TechCORBA} {
		t.Run(string(tech), func(t *testing.T) {
			m := newManager(t)
			var client *cde.Client
			var class *dyn.Class
			var srv core.Server
			if tech == core.TechSOAP {
				srv_, c, cl, _ := startSOAP(t, m, "LiveAdd"+string(tech))
				srv, client, class = srv_, c, cl
			} else {
				srv_, c, cl, _ := startCORBA(t, m, "LiveAdd"+string(tech))
				srv, client, class = srv_, c, cl
			}

			if _, err := client.Call("shout", dyn.StringValue("x")); !errors.Is(err, cde.ErrNoSuchStub) {
				t.Fatalf("pre-addition call: %v", err)
			}

			if _, err := class.AddMethod(dyn.MethodSpec{
				Name:        "shout",
				Params:      []dyn.Param{{Name: "s", Type: dyn.StringT}},
				Result:      dyn.StringT,
				Distributed: true,
				Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
					return dyn.StringValue(strings.ToUpper(args[0].Str())), nil
				},
			}); err != nil {
				t.Fatal(err)
			}
			srv.Publisher().PublishNow()
			srv.Publisher().WaitIdle()

			got, err := client.Call("shout", dyn.StringValue("live"))
			if err != nil {
				t.Fatal(err)
			}
			if got.Str() != "LIVE" {
				t.Errorf("shout = %v", got)
			}
		})
	}
}

// TestRecencyGuarantee is the paper's central correctness property
// (Section 6): after a call fails with "Non Existent Method", the client's
// refreshed interface view is at least as recent as the interface the
// server used to process the call — the signature change is visible.
func TestRecencyGuarantee(t *testing.T) {
	for _, tech := range []core.Technology{core.TechSOAP, core.TechCORBA} {
		t.Run(string(tech), func(t *testing.T) {
			m := newManager(t)
			var client *cde.Client
			var class *dyn.Class
			var addID dyn.MemberID
			if tech == core.TechSOAP {
				_, c, cl, id := startSOAP(t, m, "Rec"+string(tech))
				client, class, addID = c, cl, id
			} else {
				_, c, cl, id := startCORBA(t, m, "Rec"+string(tech))
				client, class, addID = c, cl, id
			}

			// The server developer renames add → plus. The stability timer
			// is armed but we do NOT wait for it: the published document is
			// stale when the client calls.
			if err := class.RenameMethod(addID, "plus"); err != nil {
				t.Fatal(err)
			}
			verAfterRename := class.InterfaceVersion()

			_, err := client.Call("add", dyn.Int32Value(1), dyn.Int32Value(2))
			var stale *cde.StaleMethodError
			if !errors.As(err, &stale) {
				t.Fatalf("stale call: %v", err)
			}
			// The guarantee: by the time the exception reaches the caller,
			// the client's view reflects an interface at least as recent as
			// the one that processed the call.
			if stale.RefreshedDescriptorVersion < verAfterRename {
				t.Errorf("client refreshed to version %d < server version %d",
					stale.RefreshedDescriptorVersion, verAfterRename)
			}
			view := client.Interface()
			if _, ok := view.Lookup("plus"); !ok {
				t.Error("rename must be visible in the client's refreshed view")
			}
			if _, ok := view.Lookup("add"); ok {
				t.Error("stale name must be gone from the refreshed view")
			}
			// The debugger recorded the failure with the new signature
			// absent for the old name.
			ex, ok := client.Debugger().Last()
			if !ok || ex.Method != "add" {
				t.Errorf("debugger = %+v, %v", ex, ok)
			}

			// And the call now works under its new name.
			got, err := client.Call("plus", dyn.Int32Value(1), dyn.Int32Value(2))
			if err != nil || got.Int32() != 3 {
				t.Errorf("plus = %v, %v", got, err)
			}
		})
	}
}

// TestTryAgainFlow reproduces the Section 6 edge case: the server developer
// restores the original signature during/after the forced publication; the
// client's 'try again' re-executes and normal execution resumes.
func TestTryAgainFlow(t *testing.T) {
	m := newManager(t)
	_, client, class, addID := startSOAP(t, m, "TryAgain")

	if err := class.RenameMethod(addID, "plus"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Call("add", dyn.Int32Value(2), dyn.Int32Value(3)); !errors.Is(err, cde.ErrStaleMethod) {
		t.Fatalf("expected stale error, got %v", err)
	}
	// Server developer puts the signature back.
	if err := class.RenameMethod(addID, "add"); err != nil {
		t.Fatal(err)
	}
	srv, _ := m.Server("TryAgain")
	srv.Publisher().PublishNow()
	srv.Publisher().WaitIdle()

	got, err := client.Debugger().TryAgain()
	if err != nil {
		t.Fatalf("TryAgain: %v", err)
	}
	if got.Int32() != 5 {
		t.Errorf("TryAgain result = %v", got)
	}
}

// TestApplicationErrorsPropagate: a method body error reaches the client as
// a fault/exception without disturbing the live-update machinery.
func TestApplicationErrorsPropagate(t *testing.T) {
	for _, tech := range []core.Technology{core.TechSOAP, core.TechCORBA} {
		t.Run(string(tech), func(t *testing.T) {
			m := newManager(t)
			var client *cde.Client
			var class *dyn.Class
			if tech == core.TechSOAP {
				_, c, cl, _ := startSOAP(t, m, "App"+string(tech))
				client, class = c, cl
			} else {
				_, c, cl, _ := startCORBA(t, m, "App"+string(tech))
				client, class = c, cl
			}
			if _, err := class.AddMethod(dyn.MethodSpec{
				Name:        "boom",
				Distributed: true,
				Body: func(*dyn.Instance, []dyn.Value) (dyn.Value, error) {
					return dyn.Value{}, errors.New("kaboom")
				},
			}); err != nil {
				t.Fatal(err)
			}
			srv, _ := m.Server("App" + string(tech))
			srv.Publisher().PublishNow()
			srv.Publisher().WaitIdle()

			_, err := client.Call("boom")
			if err == nil || !strings.Contains(err.Error(), "kaboom") {
				t.Errorf("boom = %v", err)
			}
			if errors.Is(err, cde.ErrStaleMethod) {
				t.Error("app error must not be treated as stale")
			}
		})
	}
}

// TestSingleInstanceRule: Section 5.4's single-instance constraint.
func TestSingleInstanceRule(t *testing.T) {
	m := newManager(t)
	srv, _, _, _ := startSOAP(t, m, "Single")
	if _, err := srv.CreateInstance(); err == nil {
		t.Error("second CreateInstance must fail")
	}
	if srv.Instance() == nil {
		t.Error("Instance() should return the live instance")
	}
}

// TestDuplicateRegistrationRejected: one manager, one server per class.
func TestDuplicateRegistrationRejected(t *testing.T) {
	m := newManager(t)
	class, _ := newCalcClass(t, "Dup")
	if _, err := m.Register(class, core.TechSOAP); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(class, core.TechCORBA); err == nil {
		t.Error("duplicate registration must fail")
	}
	if _, err := m.Register(dyn.NewClass("Other"), core.Technology("RMI-NG")); err == nil {
		t.Error("unknown technology must fail")
	}
	if _, ok := m.Server("Dup"); !ok {
		t.Error("Server lookup failed")
	}
	if len(m.Servers()) != 1 {
		t.Errorf("Servers() = %d", len(m.Servers()))
	}
}

// TestServerCloseUnpublishes: closing a server frees its endpoint path and
// class slot so it can be re-registered (live development tears things
// down and rebuilds them).
func TestServerCloseAllowsReRegistration(t *testing.T) {
	m := newManager(t)
	ss, _, class, _ := startSOAP(t, m, "Recycle")
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ss.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if _, err := ss.CreateInstance(); err == nil {
		t.Error("CreateInstance after close must fail")
	}
	if _, err := m.Register(class, core.TechCORBA); err != nil {
		t.Errorf("re-registration after close: %v", err)
	}
}

// TestConcurrentCallsDuringLiveEdits hammers a SOAP server with concurrent
// calls while the interface is being edited; every reply must be either a
// correct result or a clean stale-method error (never a hang or garbage).
func TestConcurrentCallsDuringLiveEdits(t *testing.T) {
	m := newManager(t)
	_, client, class, addID := startSOAP(t, m, "Storm")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := client.Call("add", dyn.Int32Value(2), dyn.Int32Value(2))
				switch {
				case err == nil:
					if got.Int32() != 4 {
						errCh <- errors.New("wrong result " + got.String())
						return
					}
				case errors.Is(err, cde.ErrStaleMethod), errors.Is(err, cde.ErrNoSuchStub):
					// acceptable during renames
				default:
					errCh <- err
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if err := class.RenameMethod(addID, "plus"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
		if err := class.RenameMethod(addID, "add"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestFigure6Hierarchy pins the class hierarchy: both technologies expose
// the same technology-independent surfaces.
func TestFigure6Hierarchy(t *testing.T) {
	m := newManager(t)
	ss, _, _, _ := startSOAP(t, m, "HierS")
	cs, _, _, _ := startCORBA(t, m, "HierC")

	servers := []core.Server{ss, cs}
	for _, s := range servers {
		if s.Publisher() == nil {
			t.Errorf("%s: no publisher", s.Technology())
		}
		if s.Class() == nil {
			t.Errorf("%s: no class", s.Technology())
		}
		if s.InterfaceURL() == "" {
			t.Errorf("%s: no interface URL", s.Technology())
		}
	}
	var handlers []core.CallHandler = []core.CallHandler{ss.CallHandler(), cs.CallHandler()}
	for i, h := range handlers {
		if !h.Active() {
			t.Errorf("handler %d should be active", i)
		}
	}
	if ss.Technology() != core.TechSOAP || cs.Technology() != core.TechCORBA {
		t.Error("technology tags")
	}
}

// TestManagerCloseShutsEverything: Close is idempotent and terminal.
func TestManagerCloseShutsEverything(t *testing.T) {
	m, err := core.NewManager(core.Config{Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ssrv, _, _, _ := startSOAP(t, m, "Bye")
	_ = ssrv
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if _, err := m.Register(dyn.NewClass("Late"), core.TechSOAP); err == nil {
		t.Error("register after close must fail")
	}
}
