package core

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// serveMetrics renders the manager's operational counters in the plain
// text exposition format (one `name{labels} value` line per sample) so any
// scraper — or a human with curl — can watch the ops plane described in
// docs/ops.md. Everything here is a snapshot of counters the subsystems
// already keep: Store.Stats for the publication core, WAL and replication
// blocks, the fan-out plane, plus the endpoint mux's per-path counters.
func (m *Manager) serveMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder

	// Lifecycle: up is 1 once Probe passes, 0 otherwise; draining flips
	// to 1 for the drain window so scrapers see the handoff coming.
	up := 0
	if m.Probe() == nil {
		up = 1
	}
	draining := 0
	if m.Draining() {
		draining = 1
	}
	fmt.Fprintf(&b, "livedev_up %d\n", up)
	fmt.Fprintf(&b, "livedev_draining %d\n", draining)

	// Per-binding endpoint traffic. Sorted for stable scrape output.
	ms := m.httpMux.stats()
	sort.Slice(ms, func(i, j int) bool { return ms[i].path < ms[j].path })
	for _, s := range ms {
		fmt.Fprintf(&b, "livedev_endpoint_requests_total{path=%q} %d\n", s.path, s.requests)
		fmt.Fprintf(&b, "livedev_endpoint_errors_total{path=%q} %d\n", s.path, s.errors_)
	}

	st := m.store.Stats()

	// Publication core.
	fmt.Fprintf(&b, "livedev_store_publishes_total %d\n", st.Publishes)
	fmt.Fprintf(&b, "livedev_store_commits_total %d\n", st.Commits)
	fmt.Fprintf(&b, "livedev_store_coalesced_total %d\n", st.Coalesced)
	fmt.Fprintf(&b, "livedev_store_epoch %d\n", st.Epoch)
	fmt.Fprintf(&b, "livedev_store_generation %d\n", st.Generation)
	fmt.Fprintf(&b, "livedev_store_journal_depth %d\n", st.JournalDepth)
	fmt.Fprintf(&b, "livedev_store_persist_errors_total %d\n", st.PersistErrors)

	// Fan-out plane: watcher population (total and per shard) plus the
	// backpressure valves.
	fmt.Fprintf(&b, "livedev_watchers %d\n", st.Fanout.Watchers)
	for shard, n := range st.Fanout.ShardWatchers {
		fmt.Fprintf(&b, "livedev_shard_watchers{shard=\"%d\"} %d\n", shard, n)
	}
	fmt.Fprintf(&b, "livedev_fanout_streams_total %d\n", st.Fanout.Streams)
	fmt.Fprintf(&b, "livedev_fanout_events_total %d\n", st.Fanout.Events)
	fmt.Fprintf(&b, "livedev_fanout_evictions_total %d\n", st.Fanout.Evictions)
	fmt.Fprintf(&b, "livedev_fanout_resets_total %d\n", st.Fanout.Resets)

	// WAL durability: per-shard append/durable watermarks (their gap is
	// the fsync lag in records), fsync counters, and the mean time an
	// acked commit waited on fsync.
	if d := st.Durability; d != nil {
		for shard, lsn := range d.LastLSN {
			fmt.Fprintf(&b, "livedev_wal_last_lsn{shard=\"%d\"} %d\n", shard, lsn)
		}
		for shard, lsn := range d.DurableLSN {
			fmt.Fprintf(&b, "livedev_wal_durable_lsn{shard=\"%d\"} %d\n", shard, lsn)
			if shard < len(d.LastLSN) {
				fmt.Fprintf(&b, "livedev_wal_fsync_lag{shard=\"%d\"} %d\n", shard, d.LastLSN[shard]-lsn)
			}
		}
		fmt.Fprintf(&b, "livedev_wal_fsyncs_total %d\n", d.Fsyncs)
		fmt.Fprintf(&b, "livedev_wal_sync_waits_total %d\n", d.SyncWaits)
		fmt.Fprintf(&b, "livedev_wal_sync_wait_mean_seconds %g\n", d.SyncWaitMean().Seconds())
		fmt.Fprintf(&b, "livedev_wal_compactions_total %d\n", d.Compactions)
	}

	// Replication: role-labelled lag and per-shard positions. On a
	// leader, Tails is the connected follower count; on a follower, Lag
	// is how far behind the leader's shipped frontier it is.
	if rp := st.Replication; rp != nil {
		fmt.Fprintf(&b, "livedev_repl_lag{role=%q} %d\n", rp.Role, rp.Lag)
		fmt.Fprintf(&b, "livedev_repl_tails{role=%q} %d\n", rp.Role, rp.Tails)
		for shard, lsn := range rp.LSN {
			fmt.Fprintf(&b, "livedev_repl_lsn{shard=\"%d\"} %d\n", shard, lsn)
		}
		fmt.Fprintf(&b, "livedev_repl_records_total %d\n", rp.Records)
		fmt.Fprintf(&b, "livedev_repl_reconnects_total %d\n", rp.Reconnects)
		fmt.Fprintf(&b, "livedev_repl_evictions_total %d\n", rp.Evictions)
		fmt.Fprintf(&b, "livedev_repl_resets_total %d\n", rp.Resets)
		fmt.Fprintf(&b, "livedev_repl_frame_errors_total %d\n", rp.FrameErrors)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
