package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"livedev/internal/clock"
	"livedev/internal/dyn"
	"livedev/internal/ifsvr"
)

// TestStoreImmediateWithoutWindow: with no flush window every publish
// commits immediately and fans out, preserving the pre-store behaviour.
func TestStoreImmediateWithoutWindow(t *testing.T) {
	s := NewStore(0, nil)
	var events []StoreEvent
	cancel := s.Subscribe(func(ev StoreEvent) { events = append(events, ev) })
	defer cancel()

	if v := s.Publish("/p", "text/plain", "a"); v != 1 {
		t.Fatalf("first publish version = %d", v)
	}
	if v := s.PublishVersioned("/p", "text/plain", "b", 7); v != 2 {
		t.Fatalf("second publish version = %d", v)
	}
	d, err := s.Get("/p")
	if err != nil || d.Content != "b" || d.Version != 2 || d.DescriptorVersion != 7 {
		t.Fatalf("doc = %+v, %v", d, err)
	}
	if len(events) != 2 || events[0].Doc.Version != 1 || events[1].Doc.Version != 2 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Doc.Epoch >= events[1].Doc.Epoch {
		t.Error("epochs must advance per commit batch")
	}
	st := s.Stats()
	if st.Publishes != 2 || st.Commits != 2 || st.Coalesced != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestStoreFirstPublicationCommitsImmediately: even under a flush window,
// a never-published path commits synchronously (Section 4's immediate
// basic definition).
func TestStoreFirstPublicationCommitsImmediately(t *testing.T) {
	clk := clock.NewFake()
	s := NewStore(time.Hour, clk)
	s.Publish("/p", "text/plain", "basic")
	if d, err := s.Get("/p"); err != nil || d.Content != "basic" {
		t.Fatalf("initial doc = %+v, %v", d, err)
	}
}

// TestStoreFlushCommitsSynchronously: Flush is the forced-publication
// path — staged content becomes visible without any timer involvement, and
// the later timer expiry has nothing left to commit.
func TestStoreFlushCommitsSynchronously(t *testing.T) {
	clk := clock.NewFake()
	s := NewStore(time.Minute, clk)
	s.Publish("/p", "text/plain", "v1")
	s.PublishVersioned("/p", "text/plain", "v2", 2)
	if d, _ := s.Get("/p"); d.Content != "v1" {
		t.Fatalf("staged write must not be visible, got %q", d.Content)
	}
	s.Flush()
	d, _ := s.Get("/p")
	if d.Content != "v2" || d.Version != 2 || d.DescriptorVersion != 2 {
		t.Fatalf("after flush: %+v", d)
	}
	clk.Advance(2 * time.Minute)
	if got := s.Stats().Commits; got != 2 {
		t.Errorf("timer after flush must not double-commit: commits = %d", got)
	}
}

// TestStoreCoalescesEditStorm is the acceptance scenario at store level: a
// storm of 100 rapid publications collapses into a bounded number of
// committed versions while a concurrent client converges on the final
// content.
func TestStoreCoalescesEditStorm(t *testing.T) {
	const (
		window  = 100 * time.Millisecond
		spacing = 5 * time.Millisecond
		storm   = 100
	)
	clk := clock.NewFake()
	s := NewStore(window, clk)
	s.Publish("/p", "text/plain", "v0") // initial publication, commits

	var commits atomic.Int64
	cancel := s.Subscribe(func(ev StoreEvent) {
		if ev.Path == "/p" {
			commits.Add(1)
		}
	})
	defer cancel()
	base := commits.Load() // storm counting starts after the initial doc

	final := fmt.Sprintf("v%d", storm)
	done := make(chan ifsvr.Document, 1)
	go func() {
		// The concurrent client: follow the document through Wait until it
		// converges on the storm's final content.
		var after uint64
		for {
			d, err := s.Wait(context.Background(), "/p", after)
			if err != nil {
				return
			}
			after = d.Version
			if d.Content == final {
				done <- d
				return
			}
		}
	}()

	for i := 1; i <= storm; i++ {
		s.PublishVersioned("/p", "text/plain", fmt.Sprintf("v%d", i), uint64(i))
		clk.Advance(spacing)
	}
	clk.Advance(2 * window) // trailing flush

	select {
	case d := <-done:
		if d.DescriptorVersion != storm {
			t.Errorf("converged on descriptor version %d", d.DescriptorVersion)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent client did not converge on the final version")
	}
	got := commits.Load() - base
	if got < 1 || got > 5 {
		t.Errorf("storm of %d publications committed %d times, want 1..5", storm, got)
	}
	st := s.Stats()
	if st.Coalesced == 0 {
		t.Error("storm should have coalesced publications")
	}
	if d, _ := s.Get("/p"); d.Content != final {
		t.Errorf("final content = %q", d.Content)
	}
}

// TestStoreEpochsSharedPerBatch: documents committed in one flush batch
// carry the same epoch; separate batches advance it.
func TestStoreEpochsSharedPerBatch(t *testing.T) {
	clk := clock.NewFake()
	s := NewStore(50*time.Millisecond, clk)
	s.Publish("/a", "text/plain", "a0")
	s.Publish("/b", "text/plain", "b0")
	epochAfterInit := s.Epoch()

	s.Publish("/a", "text/plain", "a1")
	s.Publish("/b", "text/plain", "b1")
	s.Flush()
	da, _ := s.Get("/a")
	db, _ := s.Get("/b")
	if da.Epoch != db.Epoch {
		t.Errorf("one batch, two epochs: %d vs %d", da.Epoch, db.Epoch)
	}
	if da.Epoch != epochAfterInit+1 {
		t.Errorf("epoch = %d, want %d", da.Epoch, epochAfterInit+1)
	}
}

// TestStoreWaitUnblocksOnClose: parked waiters drain when the store closes.
func TestStoreWaitUnblocksOnClose(t *testing.T) {
	s := NewStore(0, nil)
	s.Publish("/p", "text/plain", "x")
	errc := make(chan error, 1)
	go func() {
		_, err := s.Wait(context.Background(), "/p", 99)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrStoreClosed) {
			t.Errorf("wait after close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter did not unblock on close")
	}
}

// TestStoreSubscribeUnsubscribeRace hammers publish, flush, subscribe,
// unsubscribe, and wait concurrently — run under -race. Each subscriber
// checks that the versions it sees per path are strictly increasing
// (delivery preserves commit order).
func TestStoreSubscribeUnsubscribeRace(t *testing.T) {
	s := NewStore(time.Millisecond, clock.Real{})
	paths := []string{"/a", "/b", "/c"}
	for _, p := range paths {
		s.Publish(p, "text/plain", "init")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Publishers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.PublishVersioned(paths[i%len(paths)], "text/plain", fmt.Sprintf("w%d-%d", w, i), uint64(i))
				if i%17 == 0 {
					s.Flush()
				}
			}
		}(w)
	}

	// Churning subscribers asserting per-path version monotonicity.
	var monotonic atomic.Bool
	monotonic.Store(true)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				last := make(map[string]uint64)
				var mu sync.Mutex
				cancel := s.Subscribe(func(ev StoreEvent) {
					mu.Lock()
					if ev.Doc.Version <= last[ev.Path] {
						monotonic.Store(false)
					}
					last[ev.Path] = ev.Doc.Version
					mu.Unlock()
				})
				time.Sleep(time.Millisecond)
				cancel()
			}
		}()
	}

	// Waiters.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var after uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
				d, err := s.Wait(ctx, paths[w], after)
				cancel()
				if err == nil {
					after = d.Version
				}
			}
		}(w)
	}

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	s.Close()
	if !monotonic.Load() {
		t.Error("a subscriber observed non-monotone versions for a path")
	}
}

// drainStorePublisher advances virtual time step by step, letting each
// timer expiry's asynchronous generation finish before time moves on (the
// publisher's stability timer may stay armed, so WaitIdle would block).
func drainStorePublisher(clk *clock.Fake, pub *DLPublisher, d time.Duration) {
	step := time.Millisecond
	for d > 0 {
		clk.Advance(step)
		for pub.Busy() {
			runtime.Gosched()
		}
		d -= step
	}
}

// TestManagerEditStormCoalesces is the acceptance scenario end to end: 100
// committed edits against a managed server, each one stable long enough to
// run a full publication, produce at most 5 committed document versions
// through the manager's coalescing store — and a forced publication still
// commits synchronously with the final interface.
func TestManagerEditStormCoalesces(t *testing.T) {
	clk := clock.NewFake()
	mgr, err := NewManager(Config{
		Timeout:     10 * time.Millisecond,
		FlushWindow: 300 * time.Millisecond,
		Clock:       clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mgr.Close() }()

	class := dyn.NewClass("Storm")
	id, err := class.AddMethod(dyn.MethodSpec{Name: "op000", Result: dyn.Int32T, Distributed: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := mgr.Register(class, TechSOAP)
	if err != nil {
		t.Fatal(err)
	}
	pub := srv.Publisher()
	wsdlPath := "/wsdl/Storm.wsdl"

	var commits atomic.Int64
	cancel := mgr.Store().Subscribe(func(ev StoreEvent) {
		if ev.Path == wsdlPath {
			commits.Add(1)
		}
	})
	defer cancel()

	// A concurrent client following the document through the store.
	converged := make(chan uint64, 1)
	watchCtx, watchCancel := context.WithCancel(context.Background())
	defer watchCancel()
	go func() {
		var after uint64
		var lastDesc uint64
		for {
			d, err := mgr.Store().Wait(watchCtx, wsdlPath, after)
			if err != nil {
				converged <- lastDesc
				return
			}
			after = d.Version
			lastDesc = d.DescriptorVersion
		}
	}()

	// The storm: every edit is followed by a full stability timeout, so
	// the DL Publisher publishes each one — the store is what coalesces.
	const storm = 100
	for i := 1; i <= storm; i++ {
		if err := class.RenameMethod(id, fmt.Sprintf("op%03d", i)); err != nil {
			t.Fatal(err)
		}
		drainStorePublisher(clk, pub, 15*time.Millisecond)
	}
	drainStorePublisher(clk, pub, 600*time.Millisecond) // trailing flush

	if got := commits.Load(); got < 1 || got > 5 {
		t.Errorf("storm of %d stable edits committed %d document versions, want 1..5", storm, got)
	}
	if d, _ := mgr.Store().Get(wsdlPath); d.DescriptorVersion != class.InterfaceVersion() {
		t.Errorf("final committed descriptor version %d, class at %d", d.DescriptorVersion, class.InterfaceVersion())
	}

	// Forced publication (the Section 5.7 path) commits synchronously even
	// mid-window: edit, then EnsureCurrent with no virtual-time advance.
	if err := class.RenameMethod(id, "opFinal"); err != nil {
		t.Fatal(err)
	}
	pub.EnsureCurrent()
	d, err := mgr.Store().Get(wsdlPath)
	if err != nil {
		t.Fatal(err)
	}
	if d.DescriptorVersion != class.InterfaceVersion() {
		t.Errorf("forced publication left descriptor version %d, class at %d", d.DescriptorVersion, class.InterfaceVersion())
	}

	// The concurrent client converged on the final version.
	watchCancel()
	select {
	case last := <-converged:
		if last != class.InterfaceVersion() {
			t.Errorf("concurrent client converged on descriptor version %d, want %d", last, class.InterfaceVersion())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent client did not exit")
	}
}

// TestPublisherStableTimeoutSemanticsWithWindow pins that the flush window
// does not change the paper's stable-timeout behaviour: edits within the
// stability interval still produce a single generation, and the timer only
// publishes once the interface is stable.
func TestPublisherStableTimeoutSemanticsWithWindow(t *testing.T) {
	clk := clock.NewFake()
	mgr, err := NewManager(Config{
		Timeout:     100 * time.Millisecond,
		FlushWindow: 50 * time.Millisecond,
		Clock:       clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mgr.Close() }()

	class := dyn.NewClass("Stable")
	id, err := class.AddMethod(dyn.MethodSpec{Name: "a", Result: dyn.Int32T, Distributed: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := mgr.Register(class, TechSOAP)
	if err != nil {
		t.Fatal(err)
	}
	pub := srv.Publisher()
	gen0 := pub.Stats().Generations

	// Three rapid edits inside one stability interval: timer keeps
	// resetting, nothing publishes.
	for _, name := range []string{"b", "c", "d"} {
		if err := class.RenameMethod(id, name); err != nil {
			t.Fatal(err)
		}
		clk.Advance(40 * time.Millisecond)
	}
	if got := pub.Stats().Generations; got != gen0 {
		t.Fatalf("mid-burst generations = %d, want %d", got, gen0)
	}

	// Stability: one generation, and after the flush window one commit.
	drainStorePublisher(clk, pub, 200*time.Millisecond)
	if got := pub.Stats().Generations; got != gen0+1 {
		t.Errorf("post-stability generations = %d, want %d", got, gen0+1)
	}
	if d, _ := mgr.Store().Get("/wsdl/Stable.wsdl"); d.DescriptorVersion != class.InterfaceVersion() {
		t.Errorf("committed descriptor version %d, class at %d", d.DescriptorVersion, class.InterfaceVersion())
	}
}

// TestReRegisterAfterCloseUnderFlushWindow pins the retire-on-close
// behaviour: with a coalescing window configured, closing a server and
// re-registering its class must not leave the dead server's documents
// (notably the CORBA IOR) being served, and the fresh server's basic
// documents must commit immediately, resuming the version sequence so
// parked watchers wake.
func TestReRegisterAfterCloseUnderFlushWindow(t *testing.T) {
	mgr, err := NewManager(Config{Timeout: 20 * time.Millisecond, FlushWindow: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mgr.Close() }()

	newClass := func() *dyn.Class {
		c := dyn.NewClass("Calc")
		if _, err := c.AddMethod(dyn.MethodSpec{Name: "op", Result: dyn.Int32T, Distributed: true}); err != nil {
			t.Fatal(err)
		}
		return c
	}
	srv1, err := mgr.Register(newClass(), TechCORBA)
	if err != nil {
		t.Fatal(err)
	}
	oldIOR, err := mgr.Store().Get("/ior/Calc.ior")
	if err != nil {
		t.Fatal(err)
	}
	oldIDLVer := mgr.Store().Version("/idl/Calc.idl")

	// A watcher parked past the first server's last version must see the
	// re-registered server's publication.
	woken := make(chan ifsvr.Document, 1)
	go func() {
		d, err := mgr.Store().Wait(context.Background(), "/ior/Calc.ior", oldIOR.Version)
		if err == nil {
			woken <- d
		}
	}()

	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Store().Get("/ior/Calc.ior"); err == nil {
		t.Fatal("closed server's IOR must not be served")
	}

	if _, err := mgr.Register(newClass(), TechCORBA); err != nil {
		t.Fatal(err)
	}
	newIOR, err := mgr.Store().Get("/ior/Calc.ior")
	if err != nil {
		t.Fatal("re-registered server's IOR must commit immediately:", err)
	}
	if newIOR.Content == oldIOR.Content {
		t.Error("re-registered server served the dead server's IOR")
	}
	if newIOR.Version <= oldIOR.Version {
		t.Errorf("IOR version went backwards: %d after %d", newIOR.Version, oldIOR.Version)
	}
	if v := mgr.Store().Version("/idl/Calc.idl"); v <= oldIDLVer {
		t.Errorf("IDL version went backwards: %d after %d", v, oldIDLVer)
	}
	select {
	case d := <-woken:
		if d.Content != newIOR.Content {
			t.Error("watcher woke on something other than the new IOR")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked watcher did not wake on the re-registered server's IOR")
	}
}
