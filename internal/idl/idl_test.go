package idl

import (
	"strings"
	"testing"

	"livedev/internal/dyn"
)

const sampleIDL = `
// A mail service, in the paper's IDL subset.
module MailModule {
  struct Message {
    string from;
    string body;
    long long id;
  };
  typedef sequence<Message> MessageSeq;
  interface Mail {
    void send(in Message m);
    MessageSeq fetch(in string user, in long max);
    long long count();
    boolean flag(in char tag, in double weight, in float bias);
    sequence<long> ids(in MessageSeq batch);
  };
};
`

func TestParseSample(t *testing.T) {
	doc, err := Parse(sampleIDL)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Module != "MailModule" {
		t.Errorf("module = %q", doc.Module)
	}
	if len(doc.Structs) != 1 || doc.Structs[0].Name != "Message" || len(doc.Structs[0].Members) != 3 {
		t.Errorf("structs = %+v", doc.Structs)
	}
	if len(doc.Typedefs) != 1 || doc.Typedefs[0].Name != "MessageSeq" {
		t.Errorf("typedefs = %+v", doc.Typedefs)
	}
	iface, ok := doc.Interface("Mail")
	if !ok || len(iface.Ops) != 5 {
		t.Fatalf("interface = %+v, %v", iface, ok)
	}
	send := iface.Ops[0]
	if send.Name != "send" || send.Result.Kind != TypeVoid || len(send.Params) != 1 ||
		send.Params[0].Dir != DirIn || send.Params[0].Type.Name != "Message" {
		t.Errorf("send = %+v", send)
	}
	fetch := iface.Ops[1]
	if fetch.Result.Name != "MessageSeq" || len(fetch.Params) != 2 || fetch.Params[1].Type.Kind != TypeLong {
		t.Errorf("fetch = %+v", fetch)
	}
	if iface.Ops[2].Result.Kind != TypeLongLong {
		t.Errorf("count result = %+v", iface.Ops[2].Result)
	}
	ids := iface.Ops[4]
	if ids.Result.Kind != TypeSequence || ids.Result.Elem.Kind != TypeLong {
		t.Errorf("ids result = %+v", ids.Result)
	}
	if doc.RepositoryID("Mail") != "IDL:MailModule/Mail:1.0" {
		t.Errorf("RepositoryID = %q", doc.RepositoryID("Mail"))
	}
}

func TestParseComments(t *testing.T) {
	src := `
// line comment
module M { /* block
   spanning lines */ interface I { void f(); }; };
# pragma-ish line skipped
`
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := doc.Interface("I"); !ok {
		t.Error("interface I missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                                      // empty
		`interface I {};`,                       // no module
		`module M { interface I { void f(); };`, // missing closing brace
		`module M { interface I { void f(); }; }`,                     // missing final semi
		`module M { bogus B {}; };`,                                   // unknown declaration
		`module M { struct S { void v; }; };`,                         // void member
		`module M { typedef void V; };`,                               // void typedef
		`module M { interface I { void f(in void v); }; };`,           // void param
		`module M { interface I { void f(badword long x); }; };`,      // bad direction
		`module M { interface I { void f(in sequence<void> v); }; };`, // seq of void
		`module M { interface I { void f(in long module); }; };`,      // reserved name
		`module M { interface I { void f(in unsigned long x); }; };`,  // unsupported kw
		`module M { struct S { long a } };`,                           // missing member semi
		`module M; `,                                                  // missing body
		`module M { interface I { void f(in long a,); }; };`,          // trailing comma
		`module M { /* unterminated`,                                  // bad comment
		`module M { interface I { void f(); }; }; extra`,              // trailing junk
		`module M { interface I { void @(); }; };`,                    // bad char
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	doc, err := Parse(sampleIDL)
	if err != nil {
		t.Fatal(err)
	}
	text := Print(doc)
	doc2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparsing printed IDL: %v\n%s", err, text)
	}
	if Print(doc2) != text {
		t.Errorf("print/parse not idempotent:\n%s\nvs\n%s", text, Print(doc2))
	}
}

func newMailDescriptor(t *testing.T) dyn.InterfaceDescriptor {
	t.Helper()
	msg := dyn.MustStructOf("Message",
		dyn.StructField{Name: "from", Type: dyn.StringT},
		dyn.StructField{Name: "body", Type: dyn.StringT},
		dyn.StructField{Name: "id", Type: dyn.Int64T},
	)
	c := dyn.NewClass("Mail")
	mustAdd := func(spec dyn.MethodSpec) {
		t.Helper()
		if _, err := c.AddMethod(spec); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(dyn.MethodSpec{Name: "send", Params: []dyn.Param{{Name: "m", Type: msg}}, Distributed: true})
	mustAdd(dyn.MethodSpec{
		Name:        "fetch",
		Params:      []dyn.Param{{Name: "user", Type: dyn.StringT}, {Name: "max", Type: dyn.Int32T}},
		Result:      dyn.SequenceOf(msg),
		Distributed: true,
	})
	mustAdd(dyn.MethodSpec{Name: "count", Result: dyn.Int64T, Distributed: true})
	mustAdd(dyn.MethodSpec{
		Name:        "matrix",
		Result:      dyn.SequenceOf(dyn.SequenceOf(dyn.Int32T)),
		Distributed: true,
	})
	return c.Interface()
}

func TestGenerate(t *testing.T) {
	desc := newMailDescriptor(t)
	doc, err := Generate(desc)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Module != "MailModule" {
		t.Errorf("module = %q", doc.Module)
	}
	if _, ok := doc.Struct("Message"); !ok {
		t.Error("Message struct missing")
	}
	// Sequence typedefs: MessageSeq, LongSeq, LongSeqSeq.
	for _, want := range []string{"MessageSeq", "LongSeq", "LongSeqSeq"} {
		if _, ok := doc.TypedefByName(want); !ok {
			t.Errorf("typedef %s missing; have %+v", want, doc.Typedefs)
		}
	}
	iface, ok := doc.Interface("Mail")
	if !ok {
		t.Fatal("interface Mail missing")
	}
	if len(iface.Ops) != 4 {
		t.Fatalf("ops = %+v", iface.Ops)
	}
	// Methods arrive name-sorted from the descriptor.
	if iface.Ops[0].Name != "count" || iface.Ops[3].Name != "send" {
		t.Errorf("op order: %v", []string{iface.Ops[0].Name, iface.Ops[1].Name, iface.Ops[2].Name, iface.Ops[3].Name})
	}
	text := Print(doc)
	if !strings.Contains(text, "typedef sequence<Message> MessageSeq;") {
		t.Errorf("printed IDL missing typedef:\n%s", text)
	}
	if !strings.Contains(text, "MessageSeq fetch(in string user, in long max);") {
		t.Errorf("printed IDL missing fetch:\n%s", text)
	}
}

// The core fidelity property: generate IDL from a class, parse it back,
// resolve it, and the interface descriptor hash matches the original.
// This is what keeps SDE (server) and CDE (client) views consistent.
func TestGenerateParseResolveRoundTrip(t *testing.T) {
	desc := newMailDescriptor(t)
	doc, err := Generate(desc)
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := Parse(Print(doc))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Resolve(reparsed, "Mail")
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != desc.Hash() {
		t.Errorf("descriptor hash changed across generate/parse/resolve:\n got %v\nwant %v",
			got.Methods, desc.Methods)
	}
}

func TestResolveErrors(t *testing.T) {
	doc, err := Parse(sampleIDL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(doc, "Nope"); err == nil {
		t.Error("unknown interface should fail")
	}

	undeclared := `module M { interface I { void f(in Ghost g); }; };`
	doc2, err := Parse(undeclared)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(doc2, "I"); err == nil {
		t.Error("undeclared type should fail")
	}

	recursive := `module M { struct S { S next; }; interface I { void f(in S s); }; };`
	doc3, err := Parse(recursive)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(doc3, "I"); err == nil {
		t.Error("recursive struct should fail")
	}

	outParam := `module M { interface I { void f(out long x); }; };`
	doc4, err := Parse(outParam)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(doc4, "I"); err == nil {
		t.Error("out parameter should fail")
	}

	recursiveTypedef := `module M { typedef sequence<T> T; interface I { void f(in T t); }; };`
	doc5, err := Parse(recursiveTypedef)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(doc5, "I"); err == nil {
		t.Error("recursive typedef should fail")
	}
}

func TestResolveTypedefChain(t *testing.T) {
	src := `module M {
	  typedef sequence<long> Longs;
	  typedef Longs Numbers;
	  interface I { Numbers get(); };
	};`
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := Resolve(doc, "I")
	if err != nil {
		t.Fatal(err)
	}
	want := dyn.SequenceOf(dyn.Int32T)
	if !desc.Methods[0].Result.Equal(want) {
		t.Errorf("resolved result = %v, want %v", desc.Methods[0].Result, want)
	}
}

func TestTypeRefStringAndEqual(t *testing.T) {
	if LongLongRef.String() != "long long" {
		t.Error("long long rendering")
	}
	seq := SequenceRef(SequenceRef(LongRef))
	if seq.String() != "sequence<sequence<long>>" {
		t.Errorf("nested sequence rendering = %q", seq.String())
	}
	if !seq.Equal(SequenceRef(SequenceRef(LongRef))) {
		t.Error("nested sequence equality")
	}
	if seq.Equal(SequenceRef(LongRef)) {
		t.Error("different nesting should differ")
	}
	if NamedRef("A").Equal(NamedRef("B")) {
		t.Error("different names should differ")
	}
	if (TypeRef{}).String() != "<invalid>" {
		t.Error("invalid rendering")
	}
	if DirIn.String() != "in" || DirOut.String() != "out" || DirInOut.String() != "inout" {
		t.Error("direction rendering")
	}
	if Direction(0).String() != "<dir?>" {
		t.Error("invalid direction rendering")
	}
}

func TestVoidOnlyAsResult(t *testing.T) {
	// Void result parses fine and resolves to dyn.Void.
	src := `module M { interface I { void f(); }; };`
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := Resolve(doc, "I")
	if err != nil {
		t.Fatal(err)
	}
	if desc.Methods[0].Result.Kind() != dyn.KindVoid {
		t.Error("void result should resolve to dyn.Void")
	}
}
