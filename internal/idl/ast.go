// Package idl implements the subset of the OMG CORBA Interface Definition
// Language the paper's IDL-to-Java mapping permits: modules containing
// struct definitions, sequence typedefs, and interfaces whose operations use
// String, primitive types, and module-declared composite types. It provides
// an AST, a lexer and recursive-descent parser, a canonical pretty-printer,
// a generator producing IDL from a dyn.InterfaceDescriptor (the SDE's IDL
// Generator component), and a resolver mapping parsed IDL back to dyn types
// (the client-side "IDL compiler" of Figure 2).
package idl

import "fmt"

// TypeKind classifies a TypeRef.
type TypeKind int

// Type reference kinds.
const (
	TypeInvalid TypeKind = iota
	TypeVoid
	TypeBoolean
	TypeChar
	TypeLong     // 32-bit signed
	TypeLongLong // 64-bit signed
	TypeFloat
	TypeDouble
	TypeString
	TypeSequence // anonymous sequence<Elem>
	TypeNamed    // reference to a struct or typedef by name
)

// TypeRef is a (possibly nested) type reference as written in IDL source.
type TypeRef struct {
	Kind TypeKind
	Name string   // for TypeNamed
	Elem *TypeRef // for TypeSequence
}

// Basic type reference singletons.
var (
	VoidRef     = TypeRef{Kind: TypeVoid}
	BooleanRef  = TypeRef{Kind: TypeBoolean}
	CharRef     = TypeRef{Kind: TypeChar}
	LongRef     = TypeRef{Kind: TypeLong}
	LongLongRef = TypeRef{Kind: TypeLongLong}
	FloatRef    = TypeRef{Kind: TypeFloat}
	DoubleRef   = TypeRef{Kind: TypeDouble}
	StringRef   = TypeRef{Kind: TypeString}
)

// NamedRef returns a reference to a declared type.
func NamedRef(name string) TypeRef { return TypeRef{Kind: TypeNamed, Name: name} }

// SequenceRef returns an anonymous sequence type reference.
func SequenceRef(elem TypeRef) TypeRef {
	e := elem
	return TypeRef{Kind: TypeSequence, Elem: &e}
}

// Equal reports structural equality of type references.
func (t TypeRef) Equal(o TypeRef) bool {
	if t.Kind != o.Kind || t.Name != o.Name {
		return false
	}
	if t.Kind == TypeSequence {
		return t.Elem.Equal(*o.Elem)
	}
	return true
}

// String renders the reference in IDL syntax.
func (t TypeRef) String() string {
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeBoolean:
		return "boolean"
	case TypeChar:
		return "char"
	case TypeLong:
		return "long"
	case TypeLongLong:
		return "long long"
	case TypeFloat:
		return "float"
	case TypeDouble:
		return "double"
	case TypeString:
		return "string"
	case TypeSequence:
		return "sequence<" + t.Elem.String() + ">"
	case TypeNamed:
		return t.Name
	default:
		return "<invalid>"
	}
}

// Direction is a parameter passing mode. The SDE's RMI model uses only `in`
// parameters, but the parser accepts all three.
type Direction int

// Parameter directions.
const (
	DirIn Direction = iota + 1
	DirOut
	DirInOut
)

// String renders the direction keyword.
func (d Direction) String() string {
	switch d {
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	case DirInOut:
		return "inout"
	default:
		return "<dir?>"
	}
}

// Member is one struct member declaration.
type Member struct {
	Type TypeRef
	Name string
}

// StructDef is a struct declaration inside the module.
type StructDef struct {
	Name    string
	Members []Member
}

// Typedef aliases a (sequence) type under a new name.
type Typedef struct {
	Name string
	Type TypeRef
}

// ParamDecl is one formal operation parameter.
type ParamDecl struct {
	Dir  Direction
	Type TypeRef
	Name string
}

// Operation is one interface operation.
type Operation struct {
	Name   string
	Result TypeRef
	Params []ParamDecl
}

// InterfaceDef is an interface declaration inside the module.
type InterfaceDef struct {
	Name string
	Ops  []Operation
}

// Document is a parsed or generated CORBA-IDL document: one module
// containing typedefs, structs and interfaces, in declaration order.
type Document struct {
	Module     string
	Typedefs   []Typedef
	Structs    []StructDef
	Interfaces []InterfaceDef
}

// Interface returns the named interface declaration.
func (d *Document) Interface(name string) (InterfaceDef, bool) {
	for _, i := range d.Interfaces {
		if i.Name == name {
			return i, true
		}
	}
	return InterfaceDef{}, false
}

// Struct returns the named struct declaration.
func (d *Document) Struct(name string) (StructDef, bool) {
	for _, s := range d.Structs {
		if s.Name == name {
			return s, true
		}
	}
	return StructDef{}, false
}

// TypedefByName returns the named typedef.
func (d *Document) TypedefByName(name string) (Typedef, bool) {
	for _, td := range d.Typedefs {
		if td.Name == name {
			return td, true
		}
	}
	return Typedef{}, false
}

// RepositoryID returns the CORBA repository id for an interface in this
// module, e.g. "IDL:CalcModule/Calc:1.0".
func (d *Document) RepositoryID(iface string) string {
	return fmt.Sprintf("IDL:%s/%s:1.0", d.Module, iface)
}
