package idl

import (
	"fmt"

	"livedev/internal/dyn"
)

// Generate builds the CORBA-IDL document for a class's distributed
// interface — the job of the paper's IDL Generator component. The module is
// named <ClassName>Module, the interface after the class. Struct types
// referenced by signatures become struct declarations; sequence types used
// in signatures become typedefs (classic IDL does not allow anonymous
// sequences in operation signatures), named after their element type:
// sequence<long> → LongSeq, sequence<Message> → MessageSeq, nested
// sequences append further "Seq" suffixes.
func Generate(desc dyn.InterfaceDescriptor) (*Document, error) {
	doc := &Document{Module: desc.ClassName + "Module"}
	seqNames := make(map[string]bool)

	// Struct declarations first (members may themselves use sequences —
	// anonymous sequences are permitted in struct members by our parser,
	// but we typedef them too for fidelity).
	for _, st := range desc.Structs {
		var sd StructDef
		sd.Name = st.Name()
		for _, f := range st.Fields() {
			ref, err := typeRefFor(doc, seqNames, f.Type)
			if err != nil {
				return nil, fmt.Errorf("idl: struct %s member %s: %w", st.Name(), f.Name, err)
			}
			sd.Members = append(sd.Members, Member{Type: ref, Name: f.Name})
		}
		doc.Structs = append(doc.Structs, sd)
	}

	iface := InterfaceDef{Name: desc.ClassName}
	for _, m := range desc.Methods {
		op := Operation{Name: m.Name}
		res, err := typeRefFor(doc, seqNames, m.Result)
		if err != nil {
			return nil, fmt.Errorf("idl: operation %s result: %w", m.Name, err)
		}
		op.Result = res
		for _, p := range m.Params {
			ref, err := typeRefFor(doc, seqNames, p.Type)
			if err != nil {
				return nil, fmt.Errorf("idl: operation %s parameter %s: %w", m.Name, p.Name, err)
			}
			op.Params = append(op.Params, ParamDecl{Dir: DirIn, Type: ref, Name: p.Name})
		}
		iface.Ops = append(iface.Ops, op)
	}
	doc.Interfaces = append(doc.Interfaces, iface)
	return doc, nil
}

// typeRefFor maps a dyn type to an IDL type reference, adding sequence
// typedefs to doc as needed.
func typeRefFor(doc *Document, seqNames map[string]bool, t *dyn.Type) (TypeRef, error) {
	switch t.Kind() {
	case dyn.KindVoid:
		return VoidRef, nil
	case dyn.KindBoolean:
		return BooleanRef, nil
	case dyn.KindChar:
		return CharRef, nil
	case dyn.KindInt32:
		return LongRef, nil
	case dyn.KindInt64:
		return LongLongRef, nil
	case dyn.KindFloat32:
		return FloatRef, nil
	case dyn.KindFloat64:
		return DoubleRef, nil
	case dyn.KindString:
		return StringRef, nil
	case dyn.KindStruct:
		return NamedRef(t.Name()), nil
	case dyn.KindSequence:
		elemRef, err := typeRefFor(doc, seqNames, t.Elem())
		if err != nil {
			return TypeRef{}, err
		}
		name := seqTypedefName(t)
		if !seqNames[name] {
			seqNames[name] = true
			doc.Typedefs = append(doc.Typedefs, Typedef{Name: name, Type: SequenceRef(elemRef)})
		}
		return NamedRef(name), nil
	default:
		return TypeRef{}, fmt.Errorf("no IDL mapping for kind %s", t.Kind())
	}
}

// seqTypedefName produces LongSeq, MessageSeq, LongSeqSeq, ...
func seqTypedefName(t *dyn.Type) string {
	switch t.Kind() {
	case dyn.KindBoolean:
		return "Boolean"
	case dyn.KindChar:
		return "Char"
	case dyn.KindInt32:
		return "Long"
	case dyn.KindInt64:
		return "LongLong"
	case dyn.KindFloat32:
		return "Float"
	case dyn.KindFloat64:
		return "Double"
	case dyn.KindString:
		return "String"
	case dyn.KindStruct:
		return t.Name()
	case dyn.KindSequence:
		return seqTypedefName(t.Elem()) + "Seq"
	default:
		return "Unknown"
	}
}
