package idl

import (
	"livedev/internal/dyn"

	"testing"
)

func TestLexerTokens(t *testing.T) {
	lx := newLexer("module M { < > ( ) ; , }")
	wantKinds := []tokenKind{
		tokIdent, tokIdent, tokLBrace, tokLAngle, tokRAngle,
		tokLParen, tokRParen, tokSemi, tokComma, tokRBrace, tokEOF,
	}
	for i, want := range wantKinds {
		tok, err := lx.next()
		if err != nil {
			t.Fatalf("token %d: %v", i, err)
		}
		if tok.kind != want {
			t.Fatalf("token %d: got %v, want %v", i, tok.kind, want)
		}
	}
}

func TestLexerUnicodeIdentifiers(t *testing.T) {
	// IDL identifiers are ASCII in the spec, but the lexer is permissive
	// about letters; underscores are standard.
	lx := newLexer("_under_score αβγ")
	tok, err := lx.next()
	if err != nil || tok.text != "_under_score" {
		t.Fatalf("underscore ident: %q, %v", tok.text, err)
	}
	tok, err = lx.next()
	if err != nil || tok.text != "αβγ" {
		t.Fatalf("unicode ident: %q, %v", tok.text, err)
	}
}

func TestLexerLineTracking(t *testing.T) {
	lx := newLexer("a\nb\n\nc")
	for _, want := range []int{1, 2, 4} {
		tok, err := lx.next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.line != want {
			t.Errorf("token %q on line %d, want %d", tok.text, tok.line, want)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"@", "/", "/* never closed"} {
		lx := newLexer(src)
		if _, err := lx.next(); err == nil {
			t.Errorf("lexing %q should fail", src)
		}
	}
}

func TestTokenKindStrings(t *testing.T) {
	kinds := []tokenKind{tokEOF, tokIdent, tokLBrace, tokRBrace, tokLParen,
		tokRParen, tokLAngle, tokRAngle, tokSemi, tokComma, tokenKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
}

func TestPrintEmptyModule(t *testing.T) {
	doc := &Document{Module: "Empty"}
	text := Print(doc)
	parsed, err := Parse(text)
	if err != nil {
		t.Fatalf("empty module round trip: %v\n%s", err, text)
	}
	if parsed.Module != "Empty" || len(parsed.Interfaces) != 0 {
		t.Errorf("parsed = %+v", parsed)
	}
}

func TestGenerateEmptyDescriptorIsMinimalDocument(t *testing.T) {
	// The minimal CORBA-IDL document published at class-load time
	// (Section 4): a module with an empty interface.
	doc, err := Generate(newEmptyDescriptor())
	if err != nil {
		t.Fatal(err)
	}
	text := Print(doc)
	parsed, err := Parse(text)
	if err != nil {
		t.Fatalf("minimal document: %v\n%s", err, text)
	}
	iface, ok := parsed.Interface("Fresh")
	if !ok || len(iface.Ops) != 0 {
		t.Errorf("minimal interface = %+v, %v", iface, ok)
	}
}

func newEmptyDescriptor() (d dyn.InterfaceDescriptor) {
	d.ClassName = "Fresh"
	return d
}
