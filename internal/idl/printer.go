package idl

import (
	"fmt"
	"strings"
)

// Print renders the document as canonical CORBA-IDL text. Print and Parse
// are inverse up to formatting: Parse(Print(d)) reproduces d.
func Print(d *Document) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s {\n", d.Module)
	for _, s := range d.Structs {
		fmt.Fprintf(&b, "  struct %s {\n", s.Name)
		for _, m := range s.Members {
			fmt.Fprintf(&b, "    %s %s;\n", m.Type, m.Name)
		}
		b.WriteString("  };\n")
	}
	for _, td := range d.Typedefs {
		fmt.Fprintf(&b, "  typedef %s %s;\n", td.Type, td.Name)
	}
	for _, i := range d.Interfaces {
		fmt.Fprintf(&b, "  interface %s {\n", i.Name)
		for _, op := range i.Ops {
			b.WriteString("    ")
			b.WriteString(op.Result.String())
			b.WriteByte(' ')
			b.WriteString(op.Name)
			b.WriteByte('(')
			for j, p := range op.Params {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s %s %s", p.Dir, p.Type, p.Name)
			}
			b.WriteString(");\n")
		}
		b.WriteString("  };\n")
	}
	b.WriteString("};\n")
	return b.String()
}
