package idl

import (
	"fmt"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	lx  *lexer
	tok token // current token
}

// Parse parses one CORBA-IDL document (a single module).
func Parse(src string) (*Document, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	doc, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %s after module", p.tok.kind)
	}
	return doc, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("idl: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errf("expected %s, found %s %q", kind, p.tok.kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// expectKeyword consumes the identifier kw or fails.
func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokIdent || p.tok.text != kw {
		return p.errf("expected %q, found %q", kw, p.tok.text)
	}
	return p.advance()
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok.kind == tokIdent && p.tok.text == kw
}

// reserved words that cannot be used as declaration names.
var reserved = map[string]bool{
	"module": true, "interface": true, "struct": true, "typedef": true,
	"sequence": true, "void": true, "boolean": true, "char": true,
	"long": true, "float": true, "double": true, "string": true,
	"in": true, "out": true, "inout": true, "unsigned": true, "short": true,
}

func (p *parser) parseName(what string) (string, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	if reserved[t.text] {
		return "", fmt.Errorf("idl: line %d: %q is a reserved word, cannot name a %s", t.line, t.text, what)
	}
	return t.text, nil
}

func (p *parser) parseModule() (*Document, error) {
	if err := p.expectKeyword("module"); err != nil {
		return nil, err
	}
	name, err := p.parseName("module")
	if err != nil {
		return nil, err
	}
	doc := &Document{Module: name}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for p.tok.kind != tokRBrace {
		switch {
		case p.atKeyword("struct"):
			s, err := p.parseStruct()
			if err != nil {
				return nil, err
			}
			doc.Structs = append(doc.Structs, s)
		case p.atKeyword("typedef"):
			td, err := p.parseTypedef()
			if err != nil {
				return nil, err
			}
			doc.Typedefs = append(doc.Typedefs, td)
		case p.atKeyword("interface"):
			i, err := p.parseInterface()
			if err != nil {
				return nil, err
			}
			doc.Interfaces = append(doc.Interfaces, i)
		default:
			return nil, p.errf("expected struct, typedef or interface, found %q", p.tok.text)
		}
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return doc, nil
}

func (p *parser) parseStruct() (StructDef, error) {
	if err := p.expectKeyword("struct"); err != nil {
		return StructDef{}, err
	}
	name, err := p.parseName("struct")
	if err != nil {
		return StructDef{}, err
	}
	s := StructDef{Name: name}
	if _, err := p.expect(tokLBrace); err != nil {
		return StructDef{}, err
	}
	for p.tok.kind != tokRBrace {
		t, err := p.parseTypeRef()
		if err != nil {
			return StructDef{}, err
		}
		if t.Kind == TypeVoid {
			return StructDef{}, p.errf("struct member cannot be void")
		}
		mname, err := p.parseName("struct member")
		if err != nil {
			return StructDef{}, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return StructDef{}, err
		}
		s.Members = append(s.Members, Member{Type: t, Name: mname})
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return StructDef{}, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return StructDef{}, err
	}
	return s, nil
}

func (p *parser) parseTypedef() (Typedef, error) {
	if err := p.expectKeyword("typedef"); err != nil {
		return Typedef{}, err
	}
	t, err := p.parseTypeRef()
	if err != nil {
		return Typedef{}, err
	}
	if t.Kind == TypeVoid {
		return Typedef{}, p.errf("cannot typedef void")
	}
	name, err := p.parseName("typedef")
	if err != nil {
		return Typedef{}, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return Typedef{}, err
	}
	return Typedef{Name: name, Type: t}, nil
}

func (p *parser) parseInterface() (InterfaceDef, error) {
	if err := p.expectKeyword("interface"); err != nil {
		return InterfaceDef{}, err
	}
	name, err := p.parseName("interface")
	if err != nil {
		return InterfaceDef{}, err
	}
	i := InterfaceDef{Name: name}
	if _, err := p.expect(tokLBrace); err != nil {
		return InterfaceDef{}, err
	}
	for p.tok.kind != tokRBrace {
		op, err := p.parseOperation()
		if err != nil {
			return InterfaceDef{}, err
		}
		i.Ops = append(i.Ops, op)
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return InterfaceDef{}, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return InterfaceDef{}, err
	}
	return i, nil
}

func (p *parser) parseOperation() (Operation, error) {
	result, err := p.parseTypeRef()
	if err != nil {
		return Operation{}, err
	}
	name, err := p.parseName("operation")
	if err != nil {
		return Operation{}, err
	}
	op := Operation{Name: name, Result: result}
	if _, err := p.expect(tokLParen); err != nil {
		return Operation{}, err
	}
	for p.tok.kind != tokRParen {
		if len(op.Params) > 0 {
			if _, err := p.expect(tokComma); err != nil {
				return Operation{}, err
			}
		}
		var dir Direction
		switch {
		case p.atKeyword("in"):
			dir = DirIn
		case p.atKeyword("out"):
			dir = DirOut
		case p.atKeyword("inout"):
			dir = DirInOut
		default:
			return Operation{}, p.errf("expected parameter direction (in/out/inout), found %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return Operation{}, err
		}
		t, err := p.parseTypeRef()
		if err != nil {
			return Operation{}, err
		}
		if t.Kind == TypeVoid {
			return Operation{}, p.errf("parameter cannot be void")
		}
		pname, err := p.parseName("parameter")
		if err != nil {
			return Operation{}, err
		}
		op.Params = append(op.Params, ParamDecl{Dir: dir, Type: t, Name: pname})
	}
	if _, err := p.expect(tokRParen); err != nil {
		return Operation{}, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return Operation{}, err
	}
	return op, nil
}

// parseTypeRef parses a type reference: a basic type keyword, "long long",
// "sequence<T>", or a declared name.
func (p *parser) parseTypeRef() (TypeRef, error) {
	if p.tok.kind != tokIdent {
		return TypeRef{}, p.errf("expected a type, found %s", p.tok.kind)
	}
	switch p.tok.text {
	case "void":
		if err := p.advance(); err != nil {
			return TypeRef{}, err
		}
		return VoidRef, nil
	case "boolean":
		if err := p.advance(); err != nil {
			return TypeRef{}, err
		}
		return BooleanRef, nil
	case "char":
		if err := p.advance(); err != nil {
			return TypeRef{}, err
		}
		return CharRef, nil
	case "float":
		if err := p.advance(); err != nil {
			return TypeRef{}, err
		}
		return FloatRef, nil
	case "double":
		if err := p.advance(); err != nil {
			return TypeRef{}, err
		}
		return DoubleRef, nil
	case "string":
		if err := p.advance(); err != nil {
			return TypeRef{}, err
		}
		return StringRef, nil
	case "long":
		if err := p.advance(); err != nil {
			return TypeRef{}, err
		}
		if p.atKeyword("long") {
			if err := p.advance(); err != nil {
				return TypeRef{}, err
			}
			return LongLongRef, nil
		}
		return LongRef, nil
	case "sequence":
		if err := p.advance(); err != nil {
			return TypeRef{}, err
		}
		if _, err := p.expect(tokLAngle); err != nil {
			return TypeRef{}, err
		}
		elem, err := p.parseTypeRef()
		if err != nil {
			return TypeRef{}, err
		}
		if elem.Kind == TypeVoid {
			return TypeRef{}, p.errf("sequence element cannot be void")
		}
		if _, err := p.expect(tokRAngle); err != nil {
			return TypeRef{}, err
		}
		return SequenceRef(elem), nil
	default:
		if reserved[p.tok.text] {
			return TypeRef{}, p.errf("unsupported type keyword %q", p.tok.text)
		}
		name := p.tok.text
		if err := p.advance(); err != nil {
			return TypeRef{}, err
		}
		return NamedRef(name), nil
	}
}
