package idl

import (
	"fmt"
	"unicode"
	"unicode/utf8"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokLBrace // {
	tokRBrace // }
	tokLParen // (
	tokRParen // )
	tokLAngle // <
	tokRAngle // >
	tokSemi   // ;
	tokComma  // ,
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLAngle:
		return "'<'"
	case tokRAngle:
		return "'>'"
	case tokSemi:
		return "';'"
	case tokComma:
		return "','"
	default:
		return "<token?>"
	}
}

// token is one lexical token with its source line for error reporting.
type token struct {
	kind tokenKind
	text string
	line int
}

// lexer tokenizes IDL source. It handles //-comments, /* */ comments, and
// the #pragma lines some IDL compilers emit (skipped to end of line).
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("idl: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for {
		c, ok := l.peekByte()
		if !ok {
			return token{kind: tokEOF, line: l.line}, nil
		}
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#': // preprocessor-style line; skip it
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
				for l.pos < len(l.src) && l.src[l.pos] != '\n' {
					l.pos++
				}
				continue
			}
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '*' {
				end := l.pos + 2
				for {
					if end+1 >= len(l.src) {
						return token{}, l.errf("unterminated block comment")
					}
					if l.src[end] == '\n' {
						l.line++
					}
					if l.src[end] == '*' && l.src[end+1] == '/' {
						break
					}
					end++
				}
				l.pos = end + 2
				continue
			}
			return token{}, l.errf("unexpected '/'")
		default:
			return l.scanToken()
		}
	}
}

func (l *lexer) scanToken() (token, error) {
	c := l.src[l.pos]
	line := l.line
	switch c {
	case '{':
		l.pos++
		return token{kind: tokLBrace, text: "{", line: line}, nil
	case '}':
		l.pos++
		return token{kind: tokRBrace, text: "}", line: line}, nil
	case '(':
		l.pos++
		return token{kind: tokLParen, text: "(", line: line}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, text: ")", line: line}, nil
	case '<':
		l.pos++
		return token{kind: tokLAngle, text: "<", line: line}, nil
	case '>':
		l.pos++
		return token{kind: tokRAngle, text: ">", line: line}, nil
	case ';':
		l.pos++
		return token{kind: tokSemi, text: ";", line: line}, nil
	case ',':
		l.pos++
		return token{kind: tokComma, text: ",", line: line}, nil
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	if !isIdentStart(r) {
		return token{}, l.errf("unexpected character %q", r)
	}
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.pos += size
	}
	return token{kind: tokIdent, text: l.src[start:l.pos], line: line}, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
