package idl

import (
	"fmt"

	"livedev/internal/dyn"
)

// Resolve maps the named interface of a parsed document back into dyn
// method signatures — the client-side IDL compiler of Figure 2. It resolves
// struct declarations and typedefs transitively, rejecting unknown names,
// recursive struct definitions (unrepresentable in CDR without indirection),
// and out/inout parameters (the SDE RMI model passes parameters by value).
func Resolve(doc *Document, ifaceName string) (dyn.InterfaceDescriptor, error) {
	iface, ok := doc.Interface(ifaceName)
	if !ok {
		return dyn.InterfaceDescriptor{}, fmt.Errorf("idl: interface %s not declared in module %s", ifaceName, doc.Module)
	}
	r := &resolver{doc: doc, structs: make(map[string]*dyn.Type), inProgress: make(map[string]bool)}

	desc := dyn.InterfaceDescriptor{ClassName: ifaceName}
	structSet := make(map[string]*dyn.Type)
	for _, op := range iface.Ops {
		sig := dyn.MethodSig{Name: op.Name}
		res, err := r.resolveType(op.Result)
		if err != nil {
			return dyn.InterfaceDescriptor{}, fmt.Errorf("idl: operation %s result: %w", op.Name, err)
		}
		sig.Result = res
		for _, p := range op.Params {
			if p.Dir != DirIn {
				return dyn.InterfaceDescriptor{}, fmt.Errorf("idl: operation %s parameter %s: only 'in' parameters are supported, got %s", op.Name, p.Name, p.Dir)
			}
			pt, err := r.resolveType(p.Type)
			if err != nil {
				return dyn.InterfaceDescriptor{}, fmt.Errorf("idl: operation %s parameter %s: %w", op.Name, p.Name, err)
			}
			sig.Params = append(sig.Params, dyn.Param{Name: p.Name, Type: pt})
		}
		desc.Methods = append(desc.Methods, sig)
		dyn.CollectStructs(sig.Result, structSet)
		for _, p := range sig.Params {
			dyn.CollectStructs(p.Type, structSet)
		}
	}
	// Keep methods name-sorted like dyn.Class.Interface does, so hashes of
	// a generated-then-parsed interface match the original.
	sortSigs(desc.Methods)
	for _, n := range dyn.SortedStructNames(structSet) {
		desc.Structs = append(desc.Structs, structSet[n])
	}
	return desc, nil
}

func sortSigs(sigs []dyn.MethodSig) {
	for i := 1; i < len(sigs); i++ {
		for j := i; j > 0 && sigs[j].Name < sigs[j-1].Name; j-- {
			sigs[j], sigs[j-1] = sigs[j-1], sigs[j]
		}
	}
}

type resolver struct {
	doc        *Document
	structs    map[string]*dyn.Type // resolved cache
	inProgress map[string]bool      // cycle detection
}

func (r *resolver) resolveType(t TypeRef) (*dyn.Type, error) {
	switch t.Kind {
	case TypeVoid:
		return dyn.Void, nil
	case TypeBoolean:
		return dyn.Boolean, nil
	case TypeChar:
		return dyn.Char, nil
	case TypeLong:
		return dyn.Int32T, nil
	case TypeLongLong:
		return dyn.Int64T, nil
	case TypeFloat:
		return dyn.Float32T, nil
	case TypeDouble:
		return dyn.Float64T, nil
	case TypeString:
		return dyn.StringT, nil
	case TypeSequence:
		elem, err := r.resolveType(*t.Elem)
		if err != nil {
			return nil, err
		}
		if elem.Kind() == dyn.KindVoid {
			return nil, fmt.Errorf("sequence of void")
		}
		return dyn.SequenceOf(elem), nil
	case TypeNamed:
		return r.resolveNamed(t.Name)
	default:
		return nil, fmt.Errorf("invalid type reference")
	}
}

func (r *resolver) resolveNamed(name string) (*dyn.Type, error) {
	if st, ok := r.structs[name]; ok {
		return st, nil
	}
	if r.inProgress[name] {
		return nil, fmt.Errorf("recursive type %s", name)
	}
	if sd, ok := r.doc.Struct(name); ok {
		r.inProgress[name] = true
		defer delete(r.inProgress, name)
		fields := make([]dyn.StructField, 0, len(sd.Members))
		for _, m := range sd.Members {
			ft, err := r.resolveType(m.Type)
			if err != nil {
				return nil, fmt.Errorf("struct %s member %s: %w", name, m.Name, err)
			}
			if ft.Kind() == dyn.KindVoid {
				return nil, fmt.Errorf("struct %s member %s: void member", name, m.Name)
			}
			fields = append(fields, dyn.StructField{Name: m.Name, Type: ft})
		}
		st, err := dyn.StructOf(name, fields...)
		if err != nil {
			return nil, err
		}
		r.structs[name] = st
		return st, nil
	}
	if td, ok := r.doc.TypedefByName(name); ok {
		r.inProgress[name] = true
		defer delete(r.inProgress, name)
		return r.resolveType(td.Type)
	}
	return nil, fmt.Errorf("undeclared type %s", name)
}
