package dyn

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !BoolValue(true).Bool() {
		t.Error("BoolValue(true).Bool() = false")
	}
	if CharValue('λ').Char() != 'λ' {
		t.Error("CharValue round trip failed")
	}
	if Int32Value(-7).Int32() != -7 {
		t.Error("Int32Value round trip failed")
	}
	if Int64Value(1<<40).Int64() != 1<<40 {
		t.Error("Int64Value round trip failed")
	}
	if Float32Value(1.5).Float32() != 1.5 {
		t.Error("Float32Value round trip failed")
	}
	if Float64Value(2.25).Float64() != 2.25 {
		t.Error("Float64Value round trip failed")
	}
	if StringValue("hi").Str() != "hi" {
		t.Error("StringValue round trip failed")
	}
	if !VoidValue().IsVoid() {
		t.Error("VoidValue().IsVoid() = false")
	}
	var zero Value
	if !zero.IsVoid() || zero.Type().Kind() != KindVoid {
		t.Error("zero Value should be void")
	}
}

func TestSequenceValueTypeChecking(t *testing.T) {
	if _, err := SequenceValue(nil); err == nil {
		t.Error("nil element type should fail")
	}
	if _, err := SequenceValue(Int32T, StringValue("x")); err == nil {
		t.Error("mismatched element should fail")
	}
	v, err := SequenceValue(Int32T, Int32Value(1), Int32Value(2))
	if err != nil {
		t.Fatalf("SequenceValue: %v", err)
	}
	if v.Len() != 2 || v.Index(1).Int32() != 2 {
		t.Errorf("sequence contents wrong: %v", v)
	}
	if v.Type().Kind() != KindSequence || !v.Type().Elem().Equal(Int32T) {
		t.Errorf("sequence type wrong: %v", v.Type())
	}
}

func TestStructValueTypeChecking(t *testing.T) {
	pt := MustStructOf("Point", StructField{Name: "x", Type: Float64T}, StructField{Name: "y", Type: Float64T})
	if _, err := StructValue(Int32T); err == nil {
		t.Error("non-struct type should fail")
	}
	if _, err := StructValue(pt, Float64Value(1)); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := StructValue(pt, Float64Value(1), Int32Value(2)); err == nil {
		t.Error("wrong field type should fail")
	}
	v, err := StructValue(pt, Float64Value(3), Float64Value(4))
	if err != nil {
		t.Fatalf("StructValue: %v", err)
	}
	y, ok := v.Field("y")
	if !ok || y.Float64() != 4 {
		t.Errorf("Field(y) = %v, %v", y, ok)
	}
	if _, ok := v.Field("z"); ok {
		t.Error("Field(z) should be absent")
	}
	if _, ok := Int32Value(1).Field("x"); ok {
		t.Error("Field on non-struct should be absent")
	}
}

func TestValueEqual(t *testing.T) {
	pt := MustStructOf("Point", StructField{Name: "x", Type: Float64T})
	cases := []struct {
		a, b Value
		want bool
	}{
		{BoolValue(true), BoolValue(true), true},
		{BoolValue(true), BoolValue(false), false},
		{Int32Value(1), Int64Value(1), false}, // different types
		{Int64Value(5), Int64Value(5), true},
		{StringValue("a"), StringValue("a"), true},
		{StringValue("a"), StringValue("b"), false},
		{CharValue('a'), CharValue('a'), true},
		{Float64Value(1), Float64Value(2), false},
		{VoidValue(), VoidValue(), true},
		{MustSequenceValue(Int32T, Int32Value(1)), MustSequenceValue(Int32T, Int32Value(1)), true},
		{MustSequenceValue(Int32T, Int32Value(1)), MustSequenceValue(Int32T), false},
		{MustStructValue(pt, Float64Value(1)), MustStructValue(pt, Float64Value(1)), true},
		{MustStructValue(pt, Float64Value(1)), MustStructValue(pt, Float64Value(2)), false},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: %v.Equal(%v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestZero(t *testing.T) {
	pt := MustStructOf("Point", StructField{Name: "x", Type: Float64T}, StructField{Name: "tag", Type: StringT})
	z := Zero(pt)
	if x, _ := z.Field("x"); x.Float64() != 0 {
		t.Error("zero struct field x should be 0")
	}
	if s, _ := z.Field("tag"); s.Str() != "" {
		t.Error("zero struct field tag should be empty")
	}
	if Zero(SequenceOf(Int32T)).Len() != 0 {
		t.Error("zero sequence should be empty")
	}
	if !Zero(nil).IsVoid() || !Zero(Void).IsVoid() {
		t.Error("Zero(nil)/Zero(Void) should be void")
	}
	for _, k := range []Kind{KindBoolean, KindChar, KindInt32, KindInt64, KindFloat32, KindFloat64, KindString} {
		z := Zero(Primitive(k))
		if !z.Equal(Zero(Primitive(k))) {
			t.Errorf("Zero(%v) not self-equal", k)
		}
	}
}

func TestValueString(t *testing.T) {
	pt := MustStructOf("Point", StructField{Name: "x", Type: Float64T})
	cases := map[string]Value{
		"void":         VoidValue(),
		"true":         BoolValue(true),
		"42":           Int32Value(42),
		`"hi"`:         StringValue("hi"),
		"'x'":          CharValue('x'),
		"[1,2]":        MustSequenceValue(Int32T, Int32Value(1), Int32Value(2)),
		"Point{x:1.5}": MustStructValue(pt, Float64Value(1.5)),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

// randomValue builds a random value of a random type, for property tests.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(9)
	if depth <= 0 && k >= 7 {
		k = r.Intn(7)
	}
	switch k {
	case 0:
		return BoolValue(r.Intn(2) == 0)
	case 1:
		return CharValue(rune('a' + r.Intn(26)))
	case 2:
		return Int32Value(int32(r.Uint32()))
	case 3:
		return Int64Value(int64(r.Uint64()))
	case 4:
		return Float32Value(float32(r.NormFloat64()))
	case 5:
		return Float64Value(r.NormFloat64())
	case 6:
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return StringValue(string(b))
	case 7:
		elem := randomValue(r, 0) // primitive element
		vals := make([]Value, r.Intn(4))
		for i := range vals {
			vals[i] = randomPrimitiveOfType(r, elem.Type())
		}
		return MustSequenceValue(elem.Type(), vals...)
	default:
		nf := 1 + r.Intn(3)
		fields := make([]StructField, nf)
		vals := make([]Value, nf)
		for i := 0; i < nf; i++ {
			fv := randomValue(r, depth-1)
			fields[i] = StructField{Name: string(rune('a' + i)), Type: fv.Type()}
			vals[i] = fv
		}
		st := MustStructOf("R", fields...)
		return MustStructValue(st, vals...)
	}
}

func randomPrimitiveOfType(r *rand.Rand, t *Type) Value {
	switch t.Kind() {
	case KindBoolean:
		return BoolValue(r.Intn(2) == 0)
	case KindChar:
		return CharValue(rune('a' + r.Intn(26)))
	case KindInt32:
		return Int32Value(int32(r.Uint32()))
	case KindInt64:
		return Int64Value(int64(r.Uint64()))
	case KindFloat32:
		return Float32Value(float32(r.NormFloat64()))
	case KindFloat64:
		return Float64Value(r.NormFloat64())
	case KindString:
		return StringValue("s")
	default:
		return VoidValue()
	}
}

// Property: every random value equals itself, and Zero of its type is valid
// and equals Zero of the same type computed independently.
func TestValueSelfEqualProperty(t *testing.T) {
	cfg := &quick.Config{
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(randomValue(r, 2))
		},
	}
	f := func(v Value) bool {
		return v.Equal(v) && Zero(v.Type()).Equal(Zero(v.Type()))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestElemsReturnsCopy(t *testing.T) {
	v := MustSequenceValue(Int32T, Int32Value(1), Int32Value(2))
	es := v.Elems()
	es[0] = Int32Value(99)
	if v.Index(0).Int32() != 1 {
		t.Error("Elems() must return a defensive copy")
	}
}
