package dyn

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"
)

// MethodSig is the externally visible signature of one distributed method.
type MethodSig struct {
	Name   string
	Params []Param
	Result *Type
}

// Equal reports whether two signatures are identical.
func (s MethodSig) Equal(o MethodSig) bool {
	if s.Name != o.Name || len(s.Params) != len(o.Params) || !s.Result.Equal(o.Result) {
		return false
	}
	for i := range s.Params {
		// Parameter names are part of the published interface: WSDL
		// message parts and IDL formal parameters both carry them.
		if s.Params[i].Name != o.Params[i].Name || !s.Params[i].Type.Equal(o.Params[i].Type) {
			return false
		}
	}
	return true
}

// String renders the signature, e.g. "add(a:int32,b:int32):int32".
func (s MethodSig) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, p := range s.Params {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.Name)
		b.WriteByte(':')
		b.WriteString(p.Type.String())
	}
	b.WriteString("):")
	b.WriteString(s.Result.String())
	return b.String()
}

// InterfaceDescriptor is an immutable snapshot of a class's distributed
// interface: the inputs to the WSDL and IDL generators. Methods are sorted
// by name; Structs holds every user-defined struct type reachable from any
// signature, sorted by name.
type InterfaceDescriptor struct {
	ClassName string
	Version   uint64 // class interface version at snapshot time
	Methods   []MethodSig
	Structs   []*Type
	hash      string
	// byName indexes Methods for O(1) Lookup; nil on hand-built
	// descriptors (Lookup then falls back to the linear scan).
	byName map[string]int
}

// Interface snapshots the class's current distributed interface. The
// descriptor is rebuilt once per committed edit and cached, so this is a
// single atomic load on the call path — handlers can consult the live
// interface per request without paying for descriptor construction.
func (c *Class) Interface() InterfaceDescriptor {
	if d := c.ifaceCache.Load(); d != nil {
		return *d
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.interfaceLocked()
}

func (c *Class) interfaceLocked() InterfaceDescriptor {
	d := InterfaceDescriptor{ClassName: c.name, Version: c.ifaceVer}
	for _, m := range c.methods {
		if !m.distributed {
			continue
		}
		d.Methods = append(d.Methods, MethodSig{
			Name:   m.name,
			Params: append([]Param(nil), m.params...),
			Result: m.result,
		})
	}
	sort.Slice(d.Methods, func(i, j int) bool { return d.Methods[i].Name < d.Methods[j].Name })
	structs := make(map[string]*Type)
	for _, m := range d.Methods {
		CollectStructs(m.Result, structs)
		for _, p := range m.Params {
			CollectStructs(p.Type, structs)
		}
	}
	for _, n := range SortedStructNames(structs) {
		d.Structs = append(d.Structs, structs[n])
	}
	if len(d.Methods) > 0 {
		d.byName = make(map[string]int, len(d.Methods))
		for i, m := range d.Methods {
			d.byName[m.Name] = i
		}
	}
	d.hash = d.computeHash()
	return d
}

// Hash returns a deterministic digest of the descriptor. Two descriptors
// with equal hashes describe the same published interface; the DL Publisher
// compares hashes to decide whether the published document is stale.
func (d InterfaceDescriptor) Hash() string {
	if d.hash == "" {
		return d.computeHash()
	}
	return d.hash
}

func (d InterfaceDescriptor) computeHash() string {
	var b strings.Builder
	b.WriteString(d.ClassName)
	b.WriteByte('\n')
	for _, m := range d.Methods {
		b.WriteString(m.String())
		b.WriteByte('\n')
	}
	for _, s := range d.Structs {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Lookup returns the signature of the named method, if present.
func (d InterfaceDescriptor) Lookup(name string) (MethodSig, bool) {
	if d.byName != nil {
		i, ok := d.byName[name]
		if !ok {
			return MethodSig{}, false
		}
		return d.Methods[i], true
	}
	for _, m := range d.Methods {
		if m.Name == name {
			return m, true
		}
	}
	return MethodSig{}, false
}

// StructByName returns the named struct type from the descriptor.
func (d InterfaceDescriptor) StructByName(name string) (*Type, bool) {
	for _, s := range d.Structs {
		if s.Name() == name {
			return s, true
		}
	}
	return nil, false
}

// Equal reports whether two descriptors describe the same interface
// (ignoring Version, which is bookkeeping, not interface content).
func (d InterfaceDescriptor) Equal(o InterfaceDescriptor) bool {
	return d.Hash() == o.Hash()
}
