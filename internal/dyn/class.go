package dyn

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// MemberID identifies a method or field across renames and signature edits,
// the way JPie keeps declaration and use consistent when a member is
// renamed: callers hold the ID, not the name.
type MemberID uint64

// Param is a formal method parameter.
type Param struct {
	Name string
	Type *Type
}

// Body is a method implementation. It receives the instance the method was
// invoked on and the argument values (already checked against the current
// parameter types) and returns the result value, which must match the
// method's current result type.
type Body func(self *Instance, args []Value) (Value, error)

// MethodSpec describes a method to add to a class.
type MethodSpec struct {
	Name        string
	Params      []Param
	Result      *Type // nil means void
	Distributed bool  // include in the published server interface
	Body        Body  // may be nil until the developer writes it
}

// method is the internal mutable method record.
type method struct {
	id          MemberID
	name        string
	params      []Param
	result      *Type
	distributed bool
	body        Body
}

// fieldDef is the internal mutable field record.
type fieldDef struct {
	id   MemberID
	name string
	typ  *Type
}

// ChangeEvent is delivered to listeners after every committed edit (and
// after every undo/redo step). InterfaceAffecting is true when the edit
// changed the class's distributed interface descriptor — the signal the
// SDE's DL Publishers key their stable-timeout algorithm on.
type ChangeEvent struct {
	Class *Class
	// Seq is the class edit sequence number after the change.
	Seq uint64
	// InterfaceVersion is the distributed-interface version after the
	// change; it increments only when the interface descriptor changed.
	InterfaceVersion uint64
	// InterfaceAffecting reports whether this edit changed the
	// distributed interface descriptor.
	InterfaceAffecting bool
	// Op is a human-readable description of the edit ("add method foo").
	Op string
}

// Listener observes class changes. Listeners are invoked synchronously,
// outside the class lock, in registration order.
type Listener func(ChangeEvent)

// Class is a dynamic class: a named, mutable collection of methods and
// fields. All operations are safe for concurrent use. The zero value is not
// usable; construct with NewClass.
//
// Dispatch concurrency model: edits serialize on c.mu, but the call path is
// lock-free. Every committed edit rebuilds an immutable dispatch table
// (name → method snapshot) and swaps it in atomically before the editing
// call returns, so a call that starts after an edit returns is guaranteed
// to see the edit — the paper's "edits take effect immediately" semantics —
// while calls themselves take no mutex and do no linear scan.
type Class struct {
	name string

	// dispatch is the copy-on-write method table read by Instance.Invoke.
	dispatch atomic.Pointer[dispatchTable]
	// ifaceCache is the current distributed-interface descriptor, rebuilt
	// on every committed edit so per-call interface lookups are free.
	ifaceCache atomic.Pointer[InterfaceDescriptor]

	mu        sync.RWMutex
	methods   []*method
	fields    []*fieldDef
	nextID    MemberID
	seq       uint64 // total committed edits (incl. undo/redo)
	ifaceVer  uint64 // distributed interface version
	ifaceHash string // hash of the current interface descriptor
	history   *History

	lmu       sync.Mutex
	listeners map[int]Listener
	nextLis   int
}

// methodView is an immutable snapshot of one method, published in the
// dispatch table. The params slice is never mutated after publication
// (edits replace the whole record), so readers may alias it freely.
type methodView struct {
	id          MemberID
	name        string
	params      []Param
	result      *Type
	body        Body
	distributed bool
}

// dispatchTable is the immutable name → method index swapped in whole on
// every committed edit.
type dispatchTable struct {
	byName map[string]*methodView
}

var emptyDispatch = &dispatchTable{byName: map[string]*methodView{}}

// rebuildDispatchLocked publishes a fresh dispatch table reflecting the
// current method set. Caller holds c.mu.
func (c *Class) rebuildDispatchLocked() {
	if len(c.methods) == 0 {
		c.dispatch.Store(emptyDispatch)
		return
	}
	t := &dispatchTable{byName: make(map[string]*methodView, len(c.methods))}
	for _, m := range c.methods {
		// m.params is replaced wholesale by edits, never mutated in
		// place, so the view can alias it.
		t.byName[m.name] = &methodView{
			id:          m.id,
			name:        m.name,
			params:      m.params,
			result:      m.result,
			body:        m.body,
			distributed: m.distributed,
		}
	}
	c.dispatch.Store(t)
}

// NewClass creates an empty dynamic class with the given name.
func NewClass(name string) *Class {
	c := &Class{
		name:      name,
		nextID:    1,
		listeners: make(map[int]Listener),
	}
	c.history = newHistory(c)
	c.dispatch.Store(emptyDispatch)
	desc := c.interfaceLocked()
	c.ifaceHash = desc.hash
	c.ifaceCache.Store(&desc)
	return c
}

// Name returns the class name.
func (c *Class) Name() string { return c.name }

// History returns the class's undo/redo history stack.
func (c *Class) History() *History { return c.history }

// Seq returns the total number of committed edits.
func (c *Class) Seq() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.seq
}

// InterfaceVersion returns the current distributed-interface version. It
// starts at 0 for an empty interface and increments each time an edit
// changes the interface descriptor.
func (c *Class) InterfaceVersion() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ifaceVer
}

// Subscribe registers a change listener and returns a function that removes
// it. The listener is called synchronously after each committed edit.
func (c *Class) Subscribe(l Listener) (cancel func()) {
	c.lmu.Lock()
	id := c.nextLis
	c.nextLis++
	c.listeners[id] = l
	c.lmu.Unlock()
	return func() {
		c.lmu.Lock()
		delete(c.listeners, id)
		c.lmu.Unlock()
	}
}

// notify delivers a change event to all listeners. Must be called without
// c.mu held.
func (c *Class) notify(ev ChangeEvent) {
	c.lmu.Lock()
	ls := make([]Listener, 0, len(c.listeners))
	ids := make([]int, 0, len(c.listeners))
	for id := range c.listeners {
		ids = append(ids, id)
	}
	// Deterministic order: ascending registration ID.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		ls = append(ls, c.listeners[id])
	}
	c.lmu.Unlock()
	for _, l := range ls {
		l(ev)
	}
}

// commit finalizes an edit made while holding c.mu: bumps counters,
// recomputes the interface descriptor, swaps in the new dispatch table and
// descriptor cache, releases the lock, records the step on the history
// stack (unless replaying), and notifies listeners.
//
// The mutex must be held on entry; commit releases it. The dispatch table
// and descriptor are published before the lock is released, so the edit is
// visible to the lock-free call path before the editing call returns.
func (c *Class) commit(op string, step *step, recording bool) ChangeEvent {
	c.seq++
	desc := c.interfaceLocked()
	affecting := desc.hash != c.ifaceHash
	if affecting {
		c.ifaceHash = desc.hash
		c.ifaceVer++
	}
	desc.Version = c.ifaceVer
	c.ifaceCache.Store(&desc)
	c.rebuildDispatchLocked()
	ev := ChangeEvent{
		Class:              c,
		Seq:                c.seq,
		InterfaceVersion:   c.ifaceVer,
		InterfaceAffecting: affecting,
		Op:                 op,
	}
	c.mu.Unlock()
	if recording && step != nil {
		step.op = op
		c.history.push(step)
	}
	c.notify(ev)
	return ev
}

func (c *Class) findMethodLocked(id MemberID) (int, *method) {
	for i, m := range c.methods {
		if m.id == id {
			return i, m
		}
	}
	return -1, nil
}

func (c *Class) methodByNameLocked(name string) *method {
	for _, m := range c.methods {
		if m.name == name {
			return m
		}
	}
	return nil
}

func (c *Class) findFieldLocked(id MemberID) (int, *fieldDef) {
	for i, f := range c.fields {
		if f.id == id {
			return i, f
		}
	}
	return -1, nil
}

func (c *Class) memberNameInUseLocked(name string) bool {
	for _, m := range c.methods {
		if m.name == name {
			return true
		}
	}
	for _, f := range c.fields {
		if f.name == name {
			return true
		}
	}
	return false
}

// AddMethod adds a method and returns its stable member ID.
func (c *Class) AddMethod(spec MethodSpec) (MemberID, error) {
	return c.addMethod(spec, true)
}

func (c *Class) addMethod(spec MethodSpec, recording bool) (MemberID, error) {
	if spec.Name == "" {
		return 0, fmt.Errorf("dyn: method needs a name")
	}
	if spec.Result == nil {
		spec.Result = Void
	}
	for _, p := range spec.Params {
		if p.Type == nil {
			return 0, fmt.Errorf("dyn: method %s parameter %q has no type", spec.Name, p.Name)
		}
	}
	c.mu.Lock()
	if c.memberNameInUseLocked(spec.Name) {
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrDuplicateName, spec.Name)
	}
	id := c.nextID
	c.nextID++
	m := &method{
		id:          id,
		name:        spec.Name,
		params:      append([]Param(nil), spec.Params...),
		result:      spec.Result,
		distributed: spec.Distributed,
		body:        spec.Body,
	}
	c.methods = append(c.methods, m)
	var st *step
	if recording {
		spec := spec
		st = &step{
			revert: func() { _ = c.removeMethod(id, false) },
			apply: func() {
				_, _ = c.addMethodWithID(spec, id)
			},
		}
	}
	c.commit("add method "+spec.Name, st, recording)
	return id, nil
}

// addMethodWithID re-adds a method under a specific ID (redo path).
func (c *Class) addMethodWithID(spec MethodSpec, id MemberID) (MemberID, error) {
	c.mu.Lock()
	if c.memberNameInUseLocked(spec.Name) {
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrDuplicateName, spec.Name)
	}
	m := &method{
		id:          id,
		name:        spec.Name,
		params:      append([]Param(nil), spec.Params...),
		result:      spec.Result,
		distributed: spec.Distributed,
		body:        spec.Body,
	}
	if spec.Result == nil {
		m.result = Void
	}
	c.methods = append(c.methods, m)
	if id >= c.nextID {
		c.nextID = id + 1
	}
	c.commit("add method "+spec.Name, nil, false)
	return id, nil
}

// RemoveMethod deletes a method from the class.
func (c *Class) RemoveMethod(id MemberID) error {
	return c.removeMethod(id, true)
}

func (c *Class) removeMethod(id MemberID, recording bool) error {
	c.mu.Lock()
	i, m := c.findMethodLocked(id)
	if m == nil {
		c.mu.Unlock()
		return fmt.Errorf("%w: method %d", ErrNoSuchMember, id)
	}
	c.methods = append(c.methods[:i], c.methods[i+1:]...)
	var st *step
	if recording {
		saved := *m
		savedParams := append([]Param(nil), m.params...)
		st = &step{
			revert: func() {
				sp := MethodSpec{Name: saved.name, Params: savedParams, Result: saved.result, Distributed: saved.distributed, Body: saved.body}
				_, _ = c.addMethodWithID(sp, saved.id)
			},
			apply: func() { _ = c.removeMethod(id, false) },
		}
	}
	c.commit("remove method "+m.name, st, recording)
	return nil
}

// RenameMethod changes a method's name. Calls made through the member ID
// keep working, mirroring JPie's consistency of declaration and use.
func (c *Class) RenameMethod(id MemberID, newName string) error {
	return c.renameMethod(id, newName, true)
}

func (c *Class) renameMethod(id MemberID, newName string, recording bool) error {
	if newName == "" {
		return fmt.Errorf("dyn: method needs a name")
	}
	c.mu.Lock()
	_, m := c.findMethodLocked(id)
	if m == nil {
		c.mu.Unlock()
		return fmt.Errorf("%w: method %d", ErrNoSuchMember, id)
	}
	if m.name != newName && c.memberNameInUseLocked(newName) {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDuplicateName, newName)
	}
	old := m.name
	m.name = newName
	var st *step
	if recording {
		st = &step{
			revert: func() { _ = c.renameMethod(id, old, false) },
			apply:  func() { _ = c.renameMethod(id, newName, false) },
		}
	}
	c.commit(fmt.Sprintf("rename method %s to %s", old, newName), st, recording)
	return nil
}

// SetParams replaces a method's formal parameter list.
func (c *Class) SetParams(id MemberID, params []Param) error {
	return c.setParams(id, params, true)
}

func (c *Class) setParams(id MemberID, params []Param, recording bool) error {
	for _, p := range params {
		if p.Type == nil {
			return fmt.Errorf("dyn: parameter %q has no type", p.Name)
		}
	}
	c.mu.Lock()
	_, m := c.findMethodLocked(id)
	if m == nil {
		c.mu.Unlock()
		return fmt.Errorf("%w: method %d", ErrNoSuchMember, id)
	}
	old := m.params
	m.params = append([]Param(nil), params...)
	var st *step
	if recording {
		newCopy := append([]Param(nil), params...)
		st = &step{
			revert: func() { _ = c.setParams(id, old, false) },
			apply:  func() { _ = c.setParams(id, newCopy, false) },
		}
	}
	c.commit("set parameters of "+m.name, st, recording)
	return nil
}

// SetResult replaces a method's result type (nil means void).
func (c *Class) SetResult(id MemberID, result *Type) error {
	return c.setResult(id, result, true)
}

func (c *Class) setResult(id MemberID, result *Type, recording bool) error {
	if result == nil {
		result = Void
	}
	c.mu.Lock()
	_, m := c.findMethodLocked(id)
	if m == nil {
		c.mu.Unlock()
		return fmt.Errorf("%w: method %d", ErrNoSuchMember, id)
	}
	old := m.result
	m.result = result
	var st *step
	if recording {
		st = &step{
			revert: func() { _ = c.setResult(id, old, false) },
			apply:  func() { _ = c.setResult(id, result, false) },
		}
	}
	c.commit("set result of "+m.name, st, recording)
	return nil
}

// SetDistributed toggles the 'distributed' modifier: whether the method is
// part of the published server interface (Figure 3 of the paper).
func (c *Class) SetDistributed(id MemberID, distributed bool) error {
	return c.setDistributed(id, distributed, true)
}

func (c *Class) setDistributed(id MemberID, distributed bool, recording bool) error {
	c.mu.Lock()
	_, m := c.findMethodLocked(id)
	if m == nil {
		c.mu.Unlock()
		return fmt.Errorf("%w: method %d", ErrNoSuchMember, id)
	}
	old := m.distributed
	m.distributed = distributed
	var st *step
	if recording {
		st = &step{
			revert: func() { _ = c.setDistributed(id, old, false) },
			apply:  func() { _ = c.setDistributed(id, distributed, false) },
		}
	}
	op := "clear distributed on "
	if distributed {
		op = "set distributed on "
	}
	c.commit(op+m.name, st, recording)
	return nil
}

// SetBody replaces a method's implementation. The change takes effect
// immediately for all existing instances (calls in flight finish with the
// body they started with).
func (c *Class) SetBody(id MemberID, body Body) error {
	return c.setBody(id, body, true)
}

func (c *Class) setBody(id MemberID, body Body, recording bool) error {
	c.mu.Lock()
	_, m := c.findMethodLocked(id)
	if m == nil {
		c.mu.Unlock()
		return fmt.Errorf("%w: method %d", ErrNoSuchMember, id)
	}
	old := m.body
	m.body = body
	var st *step
	if recording {
		st = &step{
			revert: func() { _ = c.setBody(id, old, false) },
			apply:  func() { _ = c.setBody(id, body, false) },
		}
	}
	c.commit("set body of "+m.name, st, recording)
	return nil
}

// AddField adds an instance field. Existing instances observe the new field
// with its zero value immediately.
func (c *Class) AddField(name string, t *Type) (MemberID, error) {
	return c.addField(name, t, true)
}

func (c *Class) addField(name string, t *Type, recording bool) (MemberID, error) {
	if name == "" {
		return 0, fmt.Errorf("dyn: field needs a name")
	}
	if t == nil {
		return 0, fmt.Errorf("dyn: field %s has no type", name)
	}
	c.mu.Lock()
	if c.memberNameInUseLocked(name) {
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrDuplicateName, name)
	}
	id := c.nextID
	c.nextID++
	c.fields = append(c.fields, &fieldDef{id: id, name: name, typ: t})
	var st *step
	if recording {
		st = &step{
			revert: func() { _ = c.removeField(id, false) },
			apply:  func() { _, _ = c.addFieldWithID(name, t, id) },
		}
	}
	c.commit("add field "+name, st, recording)
	return id, nil
}

func (c *Class) addFieldWithID(name string, t *Type, id MemberID) (MemberID, error) {
	c.mu.Lock()
	if c.memberNameInUseLocked(name) {
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrDuplicateName, name)
	}
	c.fields = append(c.fields, &fieldDef{id: id, name: name, typ: t})
	if id >= c.nextID {
		c.nextID = id + 1
	}
	c.commit("add field "+name, nil, false)
	return id, nil
}

// RemoveField deletes an instance field.
func (c *Class) RemoveField(id MemberID) error {
	return c.removeField(id, true)
}

func (c *Class) removeField(id MemberID, recording bool) error {
	c.mu.Lock()
	i, f := c.findFieldLocked(id)
	if f == nil {
		c.mu.Unlock()
		return fmt.Errorf("%w: field %d", ErrNoSuchMember, id)
	}
	c.fields = append(c.fields[:i], c.fields[i+1:]...)
	var st *step
	if recording {
		saved := *f
		st = &step{
			revert: func() { _, _ = c.addFieldWithID(saved.name, saved.typ, saved.id) },
			apply:  func() { _ = c.removeField(id, false) },
		}
	}
	c.commit("remove field "+f.name, st, recording)
	return nil
}

// MethodIDByName returns the member ID of the named method. It reads the
// lock-free dispatch table, so it is safe on the call path.
func (c *Class) MethodIDByName(name string) (MemberID, bool) {
	m, ok := c.dispatch.Load().byName[name]
	if !ok {
		return 0, false
	}
	return m.id, true
}

// FieldIDByName returns the member ID of the named field.
func (c *Class) FieldIDByName(name string) (MemberID, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, f := range c.fields {
		if f.name == name {
			return f.id, true
		}
	}
	return 0, false
}

// FieldType returns the declared type of a field.
func (c *Class) FieldType(id MemberID) (*Type, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, f := c.findFieldLocked(id)
	if f == nil {
		return nil, false
	}
	return f.typ, true
}

// NewInstance creates a live instance of the class. Per the paper
// (Section 5.4) the SDE keeps a single instance per server class; the
// runtime itself does not enforce that, the SDE manager does.
func (c *Class) NewInstance() *Instance {
	return &Instance{class: c, fields: make(map[MemberID]Value)}
}
