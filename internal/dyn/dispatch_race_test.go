package dyn

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentEditsRaceLiveCalls drives the lock-free dispatch table the
// way the SDE does in production: call handlers invoking continuously while
// the developer edits the class. Run under -race (CI does) it proves the
// mutex-free call path is data-race free; the generation check proves the
// paper's immediate-effect semantics survived the lock removal — a call
// started after an edit returns must observe that edit.
func TestConcurrentEditsRaceLiveCalls(t *testing.T) {
	c := NewClass("Raced")
	// published is the body generation the editor has committed; bodies
	// return their own generation, so callers can check they never observe
	// a body older than one committed before their call began.
	var published atomic.Int64
	makeBody := func(gen int64) Body {
		return func(_ *Instance, _ []Value) (Value, error) {
			return Int64Value(gen), nil
		}
	}
	id, err := c.AddMethod(MethodSpec{
		Name:        "gen",
		Result:      Int64T,
		Distributed: true,
		Body:        makeBody(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInstance()

	const (
		callers           = 4
		editRoundsPerKind = 200
	)
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Callers: invoke continuously, checking the immediate-effect bound.
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				floor := published.Load()
				v, err := in.InvokeDistributed("gen", nil...)
				if err != nil {
					// The editor also toggles the distributed flag and
					// renames; those windows legitimately yield
					// ErrNoSuchMethod. Anything else is a real failure.
					if !errors.Is(err, ErrNoSuchMethod) {
						t.Errorf("Invoke: %v", err)
						return
					}
					continue
				}
				if got := v.Int64(); got < floor {
					t.Errorf("call observed body generation %d, but generation %d was committed before the call began", got, floor)
					return
				}
			}
		}()
	}

	// Editor: body swaps (the immediate-effect edit), signature edits,
	// renames, and distributed-flag flips, all racing the callers.
	var gen int64
	for r := 0; r < editRoundsPerKind; r++ {
		gen++
		if err := c.SetBody(id, makeBody(gen)); err != nil {
			t.Fatal(err)
		}
		published.Store(gen)

		if err := c.SetDistributed(id, false); err != nil {
			t.Fatal(err)
		}
		if err := c.SetDistributed(id, true); err != nil {
			t.Fatal(err)
		}
		if err := c.RenameMethod(id, "genX"); err != nil {
			t.Fatal(err)
		}
		if err := c.RenameMethod(id, "gen"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.AddField("f", Int32T); err == nil {
			fid, _ := c.FieldIDByName("f")
			if err := c.RemoveField(fid); err != nil {
				t.Fatal(err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	// After the storm, dispatch must reflect the final state exactly.
	v, err := in.InvokeDistributed("gen")
	if err != nil {
		t.Fatalf("final invoke: %v", err)
	}
	if v.Int64() != gen {
		t.Errorf("final body generation = %d, want %d", v.Int64(), gen)
	}
}

// TestDispatchSeesEditImmediately pins the sequential guarantee the COW
// swap provides: an edit call that has returned is visible to the very
// next invocation, with no grace period.
func TestDispatchSeesEditImmediately(t *testing.T) {
	c := NewClass("Immediate")
	id, err := c.AddMethod(MethodSpec{
		Name:        "m",
		Result:      Int32T,
		Distributed: true,
		Body: func(_ *Instance, _ []Value) (Value, error) {
			return Int32Value(1), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInstance()
	for i := int32(2); i < 100; i++ {
		v := i
		if err := c.SetBody(id, func(_ *Instance, _ []Value) (Value, error) {
			return Int32Value(v), nil
		}); err != nil {
			t.Fatal(err)
		}
		got, err := in.Invoke("m")
		if err != nil {
			t.Fatal(err)
		}
		if got.Int32() != v {
			t.Fatalf("after SetBody(%d) returned, Invoke saw %d", v, got.Int32())
		}
	}
}
