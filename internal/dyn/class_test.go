package dyn

import (
	"errors"
	"sync"
	"testing"
)

func addBody(self *Instance, args []Value) (Value, error) {
	return Int32Value(args[0].Int32() + args[1].Int32()), nil
}

func newCalcClass(t *testing.T) (*Class, MemberID) {
	t.Helper()
	c := NewClass("Calc")
	id, err := c.AddMethod(MethodSpec{
		Name:        "add",
		Params:      []Param{{Name: "a", Type: Int32T}, {Name: "b", Type: Int32T}},
		Result:      Int32T,
		Distributed: true,
		Body:        addBody,
	})
	if err != nil {
		t.Fatalf("AddMethod: %v", err)
	}
	return c, id
}

func TestAddAndInvoke(t *testing.T) {
	c, _ := newCalcClass(t)
	in := c.NewInstance()
	got, err := in.Invoke("add", Int32Value(2), Int32Value(3))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if got.Int32() != 5 {
		t.Errorf("add(2,3) = %v", got)
	}
}

func TestInvokeErrors(t *testing.T) {
	c, id := newCalcClass(t)
	in := c.NewInstance()

	if _, err := in.Invoke("missing"); !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("missing method: got %v", err)
	}
	if _, err := in.Invoke("add", Int32Value(1)); !errors.Is(err, ErrSignatureMismatch) {
		t.Errorf("wrong arity: got %v", err)
	}
	if _, err := in.Invoke("add", Int32Value(1), StringValue("x")); !errors.Is(err, ErrSignatureMismatch) {
		t.Errorf("wrong type: got %v", err)
	}
	if err := c.SetBody(id, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Invoke("add", Int32Value(1), Int32Value(2)); !errors.Is(err, ErrNoBody) {
		t.Errorf("nil body: got %v", err)
	}
	// Body returning wrong type is an error.
	if err := c.SetBody(id, func(_ *Instance, _ []Value) (Value, error) {
		return StringValue("oops"), nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Invoke("add", Int32Value(1), Int32Value(2)); err == nil {
		t.Error("wrong result type should error")
	}
}

func TestInvokeDistributedOnly(t *testing.T) {
	c, id := newCalcClass(t)
	in := c.NewInstance()
	if _, err := in.InvokeDistributed("add", Int32Value(1), Int32Value(2)); err != nil {
		t.Fatalf("distributed invoke: %v", err)
	}
	if err := c.SetDistributed(id, false); err != nil {
		t.Fatal(err)
	}
	if _, err := in.InvokeDistributed("add", Int32Value(1), Int32Value(2)); !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("non-distributed method should be invisible remotely: %v", err)
	}
	// Local invocation still works.
	if _, err := in.Invoke("add", Int32Value(1), Int32Value(2)); err != nil {
		t.Errorf("local invoke should still work: %v", err)
	}
}

func TestLiveSignatureChangeAffectsExistingInstance(t *testing.T) {
	c, id := newCalcClass(t)
	in := c.NewInstance() // created BEFORE the edits below

	// Change add(a,b int32) -> add(a,b,c int32) live.
	if err := c.SetParams(id, []Param{
		{Name: "a", Type: Int32T}, {Name: "b", Type: Int32T}, {Name: "c", Type: Int32T},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetBody(id, func(_ *Instance, args []Value) (Value, error) {
		return Int32Value(args[0].Int32() + args[1].Int32() + args[2].Int32()), nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Invoke("add", Int32Value(1), Int32Value(2)); !errors.Is(err, ErrSignatureMismatch) {
		t.Errorf("old arity should now mismatch: %v", err)
	}
	got, err := in.Invoke("add", Int32Value(1), Int32Value(2), Int32Value(3))
	if err != nil {
		t.Fatalf("new arity: %v", err)
	}
	if got.Int32() != 6 {
		t.Errorf("add(1,2,3) = %v", got)
	}
}

func TestRenamePreservesIdentity(t *testing.T) {
	c, id := newCalcClass(t)
	in := c.NewInstance()
	if err := c.RenameMethod(id, "sum"); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Invoke("add", Int32Value(1), Int32Value(2)); !errors.Is(err, ErrNoSuchMethod) {
		t.Error("old name should be gone")
	}
	if v, err := in.Invoke("sum", Int32Value(1), Int32Value(2)); err != nil || v.Int32() != 3 {
		t.Errorf("sum(1,2) = %v, %v", v, err)
	}
	if got, ok := c.MethodIDByName("sum"); !ok || got != id {
		t.Error("member ID should be stable across rename")
	}
}

func TestDuplicateNamesRejected(t *testing.T) {
	c, id := newCalcClass(t)
	if _, err := c.AddMethod(MethodSpec{Name: "add"}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate method: %v", err)
	}
	if _, err := c.AddField("add", Int32T); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("field clashing with method: %v", err)
	}
	id2, err := c.AddMethod(MethodSpec{Name: "other"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RenameMethod(id2, "add"); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("rename onto existing: %v", err)
	}
	// Renaming to own name is fine.
	if err := c.RenameMethod(id, "add"); err != nil {
		t.Errorf("self-rename: %v", err)
	}
}

func TestEditValidation(t *testing.T) {
	c := NewClass("C")
	if _, err := c.AddMethod(MethodSpec{Name: ""}); err == nil {
		t.Error("empty method name should fail")
	}
	if _, err := c.AddMethod(MethodSpec{Name: "m", Params: []Param{{Name: "p"}}}); err == nil {
		t.Error("nil param type should fail")
	}
	if _, err := c.AddField("", Int32T); err == nil {
		t.Error("empty field name should fail")
	}
	if _, err := c.AddField("f", nil); err == nil {
		t.Error("nil field type should fail")
	}
	bogus := MemberID(999)
	if err := c.RemoveMethod(bogus); !errors.Is(err, ErrNoSuchMember) {
		t.Error("remove bogus method")
	}
	if err := c.RenameMethod(bogus, "x"); !errors.Is(err, ErrNoSuchMember) {
		t.Error("rename bogus method")
	}
	if err := c.SetParams(bogus, nil); !errors.Is(err, ErrNoSuchMember) {
		t.Error("setparams bogus method")
	}
	if err := c.SetResult(bogus, Int32T); !errors.Is(err, ErrNoSuchMember) {
		t.Error("setresult bogus method")
	}
	if err := c.SetDistributed(bogus, true); !errors.Is(err, ErrNoSuchMember) {
		t.Error("setdistributed bogus method")
	}
	if err := c.SetBody(bogus, nil); !errors.Is(err, ErrNoSuchMember) {
		t.Error("setbody bogus method")
	}
	if err := c.RemoveField(bogus); !errors.Is(err, ErrNoSuchMember) {
		t.Error("remove bogus field")
	}
	if err := c.SetParams(MemberID(1), []Param{{Name: "p", Type: nil}}); err == nil {
		t.Error("setparams with nil type should fail")
	}
	if err := c.RenameMethod(MemberID(1), ""); err == nil {
		t.Error("rename to empty should fail")
	}
}

func TestFields(t *testing.T) {
	c := NewClass("Counter")
	fid, err := c.AddField("count", Int32T)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInstance()
	v, err := in.GetField(fid)
	if err != nil || v.Int32() != 0 {
		t.Fatalf("fresh field should read zero: %v, %v", v, err)
	}
	if err := in.SetField(fid, Int32Value(41)); err != nil {
		t.Fatal(err)
	}
	if err := in.SetField(fid, StringValue("no")); !errors.Is(err, ErrSignatureMismatch) {
		t.Errorf("type-mismatched write: %v", err)
	}
	if v, _ := in.GetField(fid); v.Int32() != 41 {
		t.Errorf("field = %v", v)
	}
	if v, err := in.GetFieldByName("count"); err != nil || v.Int32() != 41 {
		t.Errorf("GetFieldByName = %v, %v", v, err)
	}
	if err := in.SetFieldByName("count", Int32Value(42)); err != nil {
		t.Fatal(err)
	}
	if _, err := in.GetFieldByName("nope"); !errors.Is(err, ErrNoSuchMember) {
		t.Error("missing field by name")
	}
	if err := in.SetFieldByName("nope", Int32Value(0)); !errors.Is(err, ErrNoSuchMember) {
		t.Error("missing field by name on set")
	}

	// A field added after instance creation is visible with zero value.
	fid2, err := c.AddField("label", StringT)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := in.GetField(fid2); err != nil || v.Str() != "" {
		t.Errorf("late field = %v, %v", v, err)
	}
	// Removing the field makes reads fail.
	if err := c.RemoveField(fid2); err != nil {
		t.Fatal(err)
	}
	if _, err := in.GetField(fid2); !errors.Is(err, ErrNoSuchMember) {
		t.Error("removed field should be gone")
	}
}

func TestInterfaceVersionTracksOnlyInterfaceChanges(t *testing.T) {
	c, id := newCalcClass(t)
	v0 := c.InterfaceVersion()

	// Body edits do not change the published interface.
	if err := c.SetBody(id, addBody); err != nil {
		t.Fatal(err)
	}
	if c.InterfaceVersion() != v0 {
		t.Error("body edit must not bump interface version")
	}
	// Non-distributed method additions do not change it either.
	hid, err := c.AddMethod(MethodSpec{Name: "helper", Result: Int32T})
	if err != nil {
		t.Fatal(err)
	}
	if c.InterfaceVersion() != v0 {
		t.Error("non-distributed method must not bump interface version")
	}
	// Making it distributed does.
	if err := c.SetDistributed(hid, true); err != nil {
		t.Fatal(err)
	}
	if c.InterfaceVersion() != v0+1 {
		t.Errorf("distributed toggle should bump version: %d -> %d", v0, c.InterfaceVersion())
	}
	// Renaming a distributed method does.
	if err := c.RenameMethod(id, "plus"); err != nil {
		t.Fatal(err)
	}
	if c.InterfaceVersion() != v0+2 {
		t.Error("rename of distributed method should bump version")
	}
	// Parameter name changes are interface-affecting (they appear in
	// WSDL/IDL documents).
	if err := c.SetParams(id, []Param{{Name: "x", Type: Int32T}, {Name: "y", Type: Int32T}}); err != nil {
		t.Fatal(err)
	}
	if c.InterfaceVersion() != v0+3 {
		t.Error("param rename of distributed method should bump version")
	}
}

func TestChangeEvents(t *testing.T) {
	c, _ := newCalcClass(t)
	var mu sync.Mutex
	var events []ChangeEvent
	cancel := c.Subscribe(func(ev ChangeEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})

	id, err := c.AddMethod(MethodSpec{Name: "ping", Result: StringT, Distributed: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetBody(id, func(*Instance, []Value) (Value, error) { return StringValue("pong"), nil }); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	n := len(events)
	mu.Unlock()
	if n != 2 {
		t.Fatalf("want 2 events, got %d", n)
	}
	if !events[0].InterfaceAffecting {
		t.Error("adding a distributed method should be interface-affecting")
	}
	if events[1].InterfaceAffecting {
		t.Error("body edit should not be interface-affecting")
	}
	if events[0].Seq >= events[1].Seq {
		t.Error("event sequence numbers should increase")
	}

	cancel()
	if _, err := c.AddMethod(MethodSpec{Name: "quiet"}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Error("cancelled listener should not receive events")
	}
}

func TestInterfaceDescriptor(t *testing.T) {
	c, _ := newCalcClass(t)
	msg := MustStructOf("Message", StructField{Name: "body", Type: StringT})
	_, err := c.AddMethod(MethodSpec{
		Name:        "send",
		Params:      []Param{{Name: "m", Type: msg}},
		Result:      SequenceOf(msg),
		Distributed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.AddMethod(MethodSpec{Name: "internal", Result: Int32T}) // not distributed
	if err != nil {
		t.Fatal(err)
	}

	d := c.Interface()
	if d.ClassName != "Calc" {
		t.Errorf("ClassName = %q", d.ClassName)
	}
	if len(d.Methods) != 2 {
		t.Fatalf("want 2 distributed methods, got %d", len(d.Methods))
	}
	if d.Methods[0].Name != "add" || d.Methods[1].Name != "send" {
		t.Errorf("methods should be name-sorted: %v, %v", d.Methods[0].Name, d.Methods[1].Name)
	}
	if len(d.Structs) != 1 || d.Structs[0].Name() != "Message" {
		t.Errorf("want Message struct collected, got %v", d.Structs)
	}
	if _, ok := d.Lookup("send"); !ok {
		t.Error("Lookup(send) failed")
	}
	if _, ok := d.Lookup("internal"); ok {
		t.Error("internal must not be in the descriptor")
	}
	if s, ok := d.StructByName("Message"); !ok || !s.Equal(msg) {
		t.Error("StructByName(Message) failed")
	}
	if _, ok := d.StructByName("Nope"); ok {
		t.Error("StructByName(Nope) should fail")
	}
}

func TestDescriptorHashStability(t *testing.T) {
	build := func() InterfaceDescriptor {
		c := NewClass("Svc")
		_, _ = c.AddMethod(MethodSpec{Name: "b", Result: Int32T, Distributed: true})
		_, _ = c.AddMethod(MethodSpec{Name: "a", Params: []Param{{Name: "s", Type: StringT}}, Distributed: true})
		return c.Interface()
	}
	d1, d2 := build(), build()
	if d1.Hash() != d2.Hash() {
		t.Error("identical interfaces must hash identically")
	}
	if !d1.Equal(d2) {
		t.Error("identical interfaces must be Equal")
	}

	// Insertion order must not matter.
	c := NewClass("Svc")
	_, _ = c.AddMethod(MethodSpec{Name: "a", Params: []Param{{Name: "s", Type: StringT}}, Distributed: true})
	_, _ = c.AddMethod(MethodSpec{Name: "b", Result: Int32T, Distributed: true})
	if c.Interface().Hash() != d1.Hash() {
		t.Error("method insertion order must not affect the hash")
	}

	// A signature tweak must change the hash.
	c2 := NewClass("Svc")
	_, _ = c2.AddMethod(MethodSpec{Name: "b", Result: Int64T, Distributed: true})
	_, _ = c2.AddMethod(MethodSpec{Name: "a", Params: []Param{{Name: "s", Type: StringT}}, Distributed: true})
	if c2.Interface().Hash() == d1.Hash() {
		t.Error("result type change must change the hash")
	}
}

func TestMethodSigEqualAndString(t *testing.T) {
	s1 := MethodSig{Name: "f", Params: []Param{{Name: "a", Type: Int32T}}, Result: StringT}
	s2 := MethodSig{Name: "f", Params: []Param{{Name: "a", Type: Int32T}}, Result: StringT}
	if !s1.Equal(s2) {
		t.Error("identical sigs should be equal")
	}
	if s1.Equal(MethodSig{Name: "g", Params: s1.Params, Result: StringT}) {
		t.Error("name difference")
	}
	if s1.Equal(MethodSig{Name: "f", Params: []Param{{Name: "b", Type: Int32T}}, Result: StringT}) {
		t.Error("param name difference")
	}
	if s1.Equal(MethodSig{Name: "f", Params: []Param{{Name: "a", Type: Int64T}}, Result: StringT}) {
		t.Error("param type difference")
	}
	if s1.Equal(MethodSig{Name: "f", Params: s1.Params, Result: Int32T}) {
		t.Error("result difference")
	}
	if got, want := s1.String(), "f(a:int32):string"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestConcurrentInvokeAndEdit(t *testing.T) {
	c, id := newCalcClass(t)
	in := c.NewInstance()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Callers hammer the method while an editor mutates the body.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := in.Invoke("add", Int32Value(20), Int32Value(22))
				if err != nil {
					continue // transient signature mismatch is fine
				}
				if got := v.Int32(); got != 42 && got != 84 {
					t.Errorf("unexpected result %d", got)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		double := func(_ *Instance, args []Value) (Value, error) {
			return Int32Value(2 * (args[0].Int32() + args[1].Int32())), nil
		}
		if err := c.SetBody(id, double); err != nil {
			t.Fatal(err)
		}
		if err := c.SetBody(id, addBody); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
