package dyn

import (
	"fmt"
	"sync"
)

// Instance is a live object of a dynamic class. Method dispatch resolves
// against the class's *current* method table on every call, so signature and
// implementation edits take effect immediately on existing instances — the
// JPie property the paper's live-development model depends on.
type Instance struct {
	class *Class

	mu     sync.RWMutex
	fields map[MemberID]Value
}

// Class returns the instance's dynamic class.
func (in *Instance) Class() *Class { return in.class }

// Invoke calls the named method with the given arguments. Argument types are
// checked against the method's current parameter list; the result is checked
// against the current result type. The body runs outside any class lock, so
// long-running methods do not block concurrent edits or other calls.
//
// Dispatch is lock-free: the method is resolved against the class's current
// copy-on-write dispatch table (one atomic load, one map lookup — no mutex,
// no linear scan). An edit committed before Invoke starts is always
// observed; a call in flight finishes with the snapshot it started with.
func (in *Instance) Invoke(name string, args ...Value) (Value, error) {
	return in.invoke(name, args, false)
}

// InvokeDistributed behaves like Invoke but only resolves methods carrying
// the 'distributed' modifier — the dispatch rule the SDE call handlers use,
// so that a method removed from the published interface is indistinguishable
// from a deleted method to remote clients.
func (in *Instance) InvokeDistributed(name string, args ...Value) (Value, error) {
	return in.invoke(name, args, true)
}

func (in *Instance) invoke(name string, args []Value, distributedOnly bool) (Value, error) {
	m, ok := in.class.dispatch.Load().byName[name]
	if !ok || (distributedOnly && !m.distributed) {
		return Value{}, fmt.Errorf("%w: %s.%s", ErrNoSuchMethod, in.class.Name(), name)
	}
	if len(args) != len(m.params) {
		return Value{}, fmt.Errorf("%w: %s.%s takes %d arguments, got %d",
			ErrSignatureMismatch, in.class.Name(), name, len(m.params), len(args))
	}
	for i, p := range m.params {
		if !args[i].Type().Equal(p.Type) {
			return Value{}, fmt.Errorf("%w: %s.%s parameter %s wants %s, got %s",
				ErrSignatureMismatch, in.class.Name(), name, p.Name, p.Type, args[i].Type())
		}
	}
	if m.body == nil {
		return Value{}, fmt.Errorf("%w: %s.%s", ErrNoBody, in.class.Name(), name)
	}
	out, err := m.body(in, args)
	if err != nil {
		return Value{}, err
	}
	if !out.Type().Equal(m.result) {
		return Value{}, fmt.Errorf("dyn: %s.%s returned %s, declared result is %s",
			in.class.Name(), name, out.Type(), m.result)
	}
	return out, nil
}

// GetField reads an instance field by member ID. Fields never written read
// as the zero value of their declared type — including fields added to the
// class after the instance was created.
func (in *Instance) GetField(id MemberID) (Value, error) {
	t, ok := in.class.FieldType(id)
	if !ok {
		return Value{}, fmt.Errorf("%w: field %d", ErrNoSuchMember, id)
	}
	in.mu.RLock()
	v, ok := in.fields[id]
	in.mu.RUnlock()
	if !ok {
		return Zero(t), nil
	}
	return v, nil
}

// SetField writes an instance field; the value must match the field's
// declared type.
func (in *Instance) SetField(id MemberID, v Value) error {
	t, ok := in.class.FieldType(id)
	if !ok {
		return fmt.Errorf("%w: field %d", ErrNoSuchMember, id)
	}
	if !v.Type().Equal(t) {
		return fmt.Errorf("%w: field %d wants %s, got %s", ErrSignatureMismatch, id, t, v.Type())
	}
	in.mu.Lock()
	in.fields[id] = v
	in.mu.Unlock()
	return nil
}

// GetFieldByName is a convenience wrapper resolving the field name first.
func (in *Instance) GetFieldByName(name string) (Value, error) {
	id, ok := in.class.FieldIDByName(name)
	if !ok {
		return Value{}, fmt.Errorf("%w: field %s", ErrNoSuchMember, name)
	}
	return in.GetField(id)
}

// SetFieldByName is a convenience wrapper resolving the field name first.
func (in *Instance) SetFieldByName(name string, v Value) error {
	id, ok := in.class.FieldIDByName(name)
	if !ok {
		return fmt.Errorf("%w: field %s", ErrNoSuchMember, name)
	}
	return in.SetField(id, v)
}
