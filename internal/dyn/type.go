// Package dyn implements a dynamic-class runtime modeled on JPie's dynamic
// classes (Goldman 2004), the substrate the paper's Server Development
// Environment is built on. A Class owns a mutable set of methods and fields
// whose signatures and implementations can change at run time; changes take
// effect immediately on existing instances, are recorded on an undo/redo
// history stack, and are announced to registered listeners. The type system
// mirrors the subset the paper's CORBA-IDL/WSDL mappings support: Java
// String, int, double, float, char, boolean, plus user-defined structured
// types and sequences.
package dyn

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies the category of a Type.
type Kind int

// The supported type kinds. The paper's IDL-to-Java mapping permits String,
// int, double, float, char and boolean, plus interface-declared composite
// types; we model composites as named structs and homogeneous sequences.
const (
	KindInvalid Kind = iota
	KindVoid
	KindBoolean
	KindChar
	KindInt32
	KindInt64
	KindFloat32
	KindFloat64
	KindString
	KindStruct
	KindSequence
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindVoid:
		return "void"
	case KindBoolean:
		return "boolean"
	case KindChar:
		return "char"
	case KindInt32:
		return "int32"
	case KindInt64:
		return "int64"
	case KindFloat32:
		return "float32"
	case KindFloat64:
		return "float64"
	case KindString:
		return "string"
	case KindStruct:
		return "struct"
	case KindSequence:
		return "sequence"
	default:
		return "invalid"
	}
}

// Type describes a value type. Types are immutable once constructed; struct
// types are identified by name and carry their field layout.
type Type struct {
	kind   Kind
	name   string // struct name; empty otherwise
	elem   *Type  // sequence element type
	fields []StructField
}

// StructField is a single named field of a struct type.
type StructField struct {
	Name string
	Type *Type
}

// Predeclared primitive types. They are singletons: the package always hands
// out these pointers for primitive kinds, so pointer comparison works for
// primitives (structural equality is still available via Equal).
var (
	Void     = &Type{kind: KindVoid}
	Boolean  = &Type{kind: KindBoolean}
	Char     = &Type{kind: KindChar}
	Int32T   = &Type{kind: KindInt32}
	Int64T   = &Type{kind: KindInt64}
	Float32T = &Type{kind: KindFloat32}
	Float64T = &Type{kind: KindFloat64}
	StringT  = &Type{kind: KindString}
)

// Primitive returns the singleton type for a primitive kind, or nil if the
// kind is not primitive.
func Primitive(k Kind) *Type {
	switch k {
	case KindVoid:
		return Void
	case KindBoolean:
		return Boolean
	case KindChar:
		return Char
	case KindInt32:
		return Int32T
	case KindInt64:
		return Int64T
	case KindFloat32:
		return Float32T
	case KindFloat64:
		return Float64T
	case KindString:
		return StringT
	default:
		return nil
	}
}

// SequenceOf returns the sequence type with the given element type.
func SequenceOf(elem *Type) *Type {
	if elem == nil {
		panic("dyn: SequenceOf(nil)")
	}
	return &Type{kind: KindSequence, elem: elem}
}

// StructOf returns a named struct type with the given fields. Field names
// must be unique and non-empty.
func StructOf(name string, fields ...StructField) (*Type, error) {
	if name == "" {
		return nil, fmt.Errorf("dyn: struct type needs a name")
	}
	seen := make(map[string]bool, len(fields))
	for _, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("dyn: struct %s has an unnamed field", name)
		}
		if f.Type == nil {
			return nil, fmt.Errorf("dyn: struct %s field %s has no type", name, f.Name)
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("dyn: struct %s has duplicate field %s", name, f.Name)
		}
		seen[f.Name] = true
	}
	fs := make([]StructField, len(fields))
	copy(fs, fields)
	return &Type{kind: KindStruct, name: name, fields: fs}, nil
}

// MustStructOf is StructOf but panics on error; intended for tests and
// static type tables.
func MustStructOf(name string, fields ...StructField) *Type {
	t, err := StructOf(name, fields...)
	if err != nil {
		panic(err)
	}
	return t
}

// Kind reports the type's kind.
func (t *Type) Kind() Kind { return t.kind }

// Name returns the struct name, or "" for non-struct types.
func (t *Type) Name() string { return t.name }

// Elem returns a sequence's element type, or nil.
func (t *Type) Elem() *Type { return t.elem }

// Fields returns a copy of a struct's field list (nil for non-structs).
func (t *Type) Fields() []StructField {
	if t.kind != KindStruct {
		return nil
	}
	fs := make([]StructField, len(t.fields))
	copy(fs, t.fields)
	return fs
}

// NumFields returns the number of struct fields (0 for non-structs).
func (t *Type) NumFields() int { return len(t.fields) }

// Field returns the i'th struct field.
func (t *Type) Field(i int) StructField { return t.fields[i] }

// FieldByName returns the field with the given name.
func (t *Type) FieldByName(name string) (StructField, bool) {
	for _, f := range t.fields {
		if f.Name == name {
			return f, true
		}
	}
	return StructField{}, false
}

// IsPrimitive reports whether the type is one of the primitive singletons.
func (t *Type) IsPrimitive() bool {
	switch t.kind {
	case KindStruct, KindSequence, KindInvalid:
		return false
	default:
		return true
	}
}

// Equal reports structural equality. Struct types compare by name and field
// layout; sequences by element type.
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.kind != o.kind {
		return false
	}
	switch t.kind {
	case KindSequence:
		return t.elem.Equal(o.elem)
	case KindStruct:
		if t.name != o.name || len(t.fields) != len(o.fields) {
			return false
		}
		for i := range t.fields {
			if t.fields[i].Name != o.fields[i].Name || !t.fields[i].Type.Equal(o.fields[i].Type) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// String renders the type in an IDL-flavoured notation, e.g.
// "sequence<Message>" or "struct Message{from:string,body:string}".
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.kind {
	case KindSequence:
		return "sequence<" + t.elem.String() + ">"
	case KindStruct:
		var b strings.Builder
		b.WriteString("struct ")
		b.WriteString(t.name)
		b.WriteByte('{')
		for i, f := range t.fields {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(f.Name)
			b.WriteByte(':')
			b.WriteString(f.Type.String())
		}
		b.WriteByte('}')
		return b.String()
	default:
		return t.kind.String()
	}
}

// CollectStructs appends, to dst, every struct type reachable from t
// (including t itself), keyed by name, depth-first. It is used by the WSDL
// and IDL generators to emit complex-type definitions exactly once.
func CollectStructs(t *Type, dst map[string]*Type) {
	if t == nil {
		return
	}
	switch t.kind {
	case KindSequence:
		CollectStructs(t.elem, dst)
	case KindStruct:
		if _, ok := dst[t.name]; ok {
			return
		}
		dst[t.name] = t
		for _, f := range t.fields {
			CollectStructs(f.Type, dst)
		}
	}
}

// SortedStructNames returns the keys of a struct map in lexical order, for
// deterministic document generation.
func SortedStructNames(m map[string]*Type) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
