package dyn

import (
	"testing"
	"testing/quick"
)

func TestPrimitiveSingletons(t *testing.T) {
	kinds := []Kind{KindVoid, KindBoolean, KindChar, KindInt32, KindInt64, KindFloat32, KindFloat64, KindString}
	for _, k := range kinds {
		p := Primitive(k)
		if p == nil {
			t.Fatalf("Primitive(%v) = nil", k)
		}
		if p.Kind() != k {
			t.Errorf("Primitive(%v).Kind() = %v", k, p.Kind())
		}
		if p != Primitive(k) {
			t.Errorf("Primitive(%v) is not a singleton", k)
		}
		if !p.IsPrimitive() {
			t.Errorf("%v.IsPrimitive() = false", k)
		}
	}
	if Primitive(KindStruct) != nil || Primitive(KindSequence) != nil || Primitive(KindInvalid) != nil {
		t.Error("Primitive should return nil for non-primitive kinds")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindVoid: "void", KindBoolean: "boolean", KindChar: "char",
		KindInt32: "int32", KindInt64: "int64", KindFloat32: "float32",
		KindFloat64: "float64", KindString: "string", KindStruct: "struct",
		KindSequence: "sequence", KindInvalid: "invalid", Kind(99): "invalid",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestStructOfValidation(t *testing.T) {
	if _, err := StructOf(""); err == nil {
		t.Error("unnamed struct should fail")
	}
	if _, err := StructOf("S", StructField{Name: "", Type: Int32T}); err == nil {
		t.Error("unnamed field should fail")
	}
	if _, err := StructOf("S", StructField{Name: "a", Type: nil}); err == nil {
		t.Error("untyped field should fail")
	}
	if _, err := StructOf("S", StructField{Name: "a", Type: Int32T}, StructField{Name: "a", Type: Int32T}); err == nil {
		t.Error("duplicate field should fail")
	}
	s, err := StructOf("Point", StructField{Name: "x", Type: Float64T}, StructField{Name: "y", Type: Float64T})
	if err != nil {
		t.Fatalf("StructOf: %v", err)
	}
	if s.Kind() != KindStruct || s.Name() != "Point" || s.NumFields() != 2 {
		t.Errorf("unexpected struct shape: %v", s)
	}
	f, ok := s.FieldByName("y")
	if !ok || !f.Type.Equal(Float64T) {
		t.Errorf("FieldByName(y) = %v, %v", f, ok)
	}
	if _, ok := s.FieldByName("z"); ok {
		t.Error("FieldByName(z) should be absent")
	}
}

func TestTypeEqual(t *testing.T) {
	p1 := MustStructOf("Point", StructField{Name: "x", Type: Float64T})
	p2 := MustStructOf("Point", StructField{Name: "x", Type: Float64T})
	p3 := MustStructOf("Point", StructField{Name: "x", Type: Float32T})
	p4 := MustStructOf("Pt", StructField{Name: "x", Type: Float64T})
	if !p1.Equal(p2) {
		t.Error("structurally identical structs should be equal")
	}
	if p1.Equal(p3) {
		t.Error("field type difference should break equality")
	}
	if p1.Equal(p4) {
		t.Error("name difference should break equality")
	}
	if !SequenceOf(Int32T).Equal(SequenceOf(Int32T)) {
		t.Error("same-element sequences should be equal")
	}
	if SequenceOf(Int32T).Equal(SequenceOf(Int64T)) {
		t.Error("different-element sequences should differ")
	}
	if Int32T.Equal(nil) {
		t.Error("non-nil type should not equal nil")
	}
	var nilT *Type
	if nilT.Equal(Int32T) {
		t.Error("nil type should not equal non-nil")
	}
	if !nilT.Equal(nil) {
		t.Error("nil == nil pointer fast path")
	}
}

func TestTypeString(t *testing.T) {
	msg := MustStructOf("Message",
		StructField{Name: "from", Type: StringT},
		StructField{Name: "body", Type: StringT})
	got := SequenceOf(msg).String()
	want := "sequence<struct Message{from:string,body:string}>"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	var nilT *Type
	if nilT.String() != "<nil>" {
		t.Errorf("nil type String() = %q", nilT.String())
	}
}

func TestCollectStructs(t *testing.T) {
	inner := MustStructOf("Inner", StructField{Name: "v", Type: Int32T})
	outer := MustStructOf("Outer",
		StructField{Name: "in", Type: inner},
		StructField{Name: "items", Type: SequenceOf(inner)})
	m := make(map[string]*Type)
	CollectStructs(SequenceOf(outer), m)
	if len(m) != 2 {
		t.Fatalf("collected %d structs, want 2: %v", len(m), m)
	}
	if m["Inner"] != inner || m["Outer"] != outer {
		t.Error("collected wrong struct types")
	}
	names := SortedStructNames(m)
	if len(names) != 2 || names[0] != "Inner" || names[1] != "Outer" {
		t.Errorf("SortedStructNames = %v", names)
	}
	// nil and primitive roots are no-ops.
	CollectStructs(nil, m)
	CollectStructs(Int32T, m)
	if len(m) != 2 {
		t.Error("nil/primitive roots should not add structs")
	}
}

func TestFieldsReturnsCopy(t *testing.T) {
	s := MustStructOf("S", StructField{Name: "a", Type: Int32T})
	fs := s.Fields()
	fs[0].Name = "mutated"
	if s.Field(0).Name != "a" {
		t.Error("Fields() must return a defensive copy")
	}
	if Int32T.Fields() != nil {
		t.Error("Fields() on non-struct should be nil")
	}
}

// TestSequenceOfEqualProperty: for random nesting depth, a sequence type
// equals an independently constructed sequence type of the same shape.
func TestSequenceOfEqualProperty(t *testing.T) {
	f := func(depth uint8) bool {
		d := int(depth % 6)
		build := func() *Type {
			t := Int64T
			for i := 0; i < d; i++ {
				t = SequenceOf(t)
			}
			return t
		}
		return build().Equal(build())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
