package dyn

import "sync"

// step is one undoable edit on the history stack. apply re-performs the
// edit (redo); revert undoes it. Both run without recording, so replaying
// history does not grow it.
type step struct {
	op     string
	apply  func()
	revert func()
}

// History is the class's undo/redo stack. The paper's DL Publishers detect
// changes "by monitoring the JPie undo/redo stack"; in this runtime every
// committed edit lands here and also produces a ChangeEvent, and undo/redo
// themselves commit (and announce) the inverse edits.
type History struct {
	class *Class

	mu     sync.Mutex
	stack  []*step
	cursor int // number of applied steps; stack[cursor:] are redoable
}

func newHistory(c *Class) *History {
	return &History{class: c}
}

// push records a freshly applied edit, truncating any redo tail.
func (h *History) push(s *step) {
	h.mu.Lock()
	h.stack = h.stack[:h.cursor]
	h.stack = append(h.stack, s)
	h.cursor = len(h.stack)
	h.mu.Unlock()
}

// Len returns the number of edits currently on the stack (applied + redoable).
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.stack)
}

// UndoDepth returns how many edits can be undone.
func (h *History) UndoDepth() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cursor
}

// RedoDepth returns how many edits can be redone.
func (h *History) RedoDepth() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.stack) - h.cursor
}

// Undo reverts the most recent applied edit. The reversal is itself
// committed to the class (bumping versions and notifying listeners) but is
// not re-recorded; instead the cursor moves back so the edit can be redone.
func (h *History) Undo() error {
	h.mu.Lock()
	if h.cursor == 0 {
		h.mu.Unlock()
		return ErrNothingToUndo
	}
	h.cursor--
	s := h.stack[h.cursor]
	h.mu.Unlock()
	s.revert()
	return nil
}

// Redo re-applies the most recently undone edit.
func (h *History) Redo() error {
	h.mu.Lock()
	if h.cursor >= len(h.stack) {
		h.mu.Unlock()
		return ErrNothingToRedo
	}
	s := h.stack[h.cursor]
	h.cursor++
	h.mu.Unlock()
	s.apply()
	return nil
}

// Ops returns the descriptions of all recorded edits, oldest first.
func (h *History) Ops() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	ops := make([]string, len(h.stack))
	for i, s := range h.stack {
		ops[i] = s.op
	}
	return ops
}
