package dyn

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// editScript is a reproducible random edit sequence for property tests.
type editScript struct {
	seed  int64
	steps int
}

// applyRandomEdit performs one random edit on the class, tolerating
// expected failures (duplicate names, missing members).
func applyRandomEdit(r *rand.Rand, c *Class, step int) {
	// Collect current member IDs.
	var methodIDs []MemberID
	for _, name := range methodNames(c) {
		if id, ok := c.MethodIDByName(name); ok {
			methodIDs = append(methodIDs, id)
		}
	}
	pick := func() (MemberID, bool) {
		if len(methodIDs) == 0 {
			return 0, false
		}
		return methodIDs[r.Intn(len(methodIDs))], true
	}
	types := []*Type{Int32T, Int64T, StringT, Float64T, Boolean, SequenceOf(Int32T)}
	switch r.Intn(7) {
	case 0:
		_, _ = c.AddMethod(MethodSpec{
			Name:        fmt.Sprintf("m%d_%d", step, r.Intn(10)),
			Params:      []Param{{Name: "p", Type: types[r.Intn(len(types))]}},
			Result:      types[r.Intn(len(types))],
			Distributed: r.Intn(2) == 0,
		})
	case 1:
		if id, ok := pick(); ok {
			_ = c.RemoveMethod(id)
		}
	case 2:
		if id, ok := pick(); ok {
			_ = c.RenameMethod(id, fmt.Sprintf("r%d_%d", step, r.Intn(10)))
		}
	case 3:
		if id, ok := pick(); ok {
			n := r.Intn(3)
			params := make([]Param, n)
			for i := range params {
				params[i] = Param{Name: fmt.Sprintf("p%d", i), Type: types[r.Intn(len(types))]}
			}
			_ = c.SetParams(id, params)
		}
	case 4:
		if id, ok := pick(); ok {
			_ = c.SetResult(id, types[r.Intn(len(types))])
		}
	case 5:
		if id, ok := pick(); ok {
			_ = c.SetDistributed(id, r.Intn(2) == 0)
		}
	case 6:
		if r.Intn(2) == 0 {
			_, _ = c.AddField(fmt.Sprintf("f%d_%d", step, r.Intn(10)), types[r.Intn(len(types))])
		} else if id, ok := pick(); ok {
			_ = c.SetBody(id, func(*Instance, []Value) (Value, error) { return VoidValue(), nil })
		}
	}
}

func methodNames(c *Class) []string {
	// The descriptor only lists distributed methods; probe via interface
	// plus known naming patterns is fragile, so track via reflection on
	// the class: use the descriptor for distributed ones and additionally
	// try recent names. Simplest robust approach: iterate the class's
	// internal table through exported behaviour — the interface descriptor
	// covers distributed methods; for the rest, the test only needs *some*
	// member IDs, so distributed coverage is enough plus we keep IDs from
	// successful adds implicitly by name probing.
	var names []string
	for _, m := range c.Interface().Methods {
		names = append(names, m.Name)
	}
	return names
}

// TestUndoAllRestoresInitialInterface: apply a random edit script, then
// undo everything — the distributed interface descriptor must equal the
// initial one; redo everything — it must equal the final one. This is the
// JPie property that makes history monitoring a sound basis for the
// publisher.
func TestUndoAllRestoresInitialInterface(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(editScript{seed: r.Int63(), steps: 5 + r.Intn(40)})
		},
	}
	f := func(s editScript) bool {
		c := NewClass("P")
		// A seed method so edits have something to chew on.
		if _, err := c.AddMethod(MethodSpec{Name: "seed", Result: Int32T, Distributed: true}); err != nil {
			return false
		}
		initial := c.Interface().Hash()
		initialDepth := c.History().UndoDepth()

		r := rand.New(rand.NewSource(s.seed))
		for i := 0; i < s.steps; i++ {
			applyRandomEdit(r, c, i)
		}
		final := c.Interface().Hash()

		// Undo back to the initial state.
		for c.History().UndoDepth() > initialDepth {
			if err := c.History().Undo(); err != nil {
				return false
			}
		}
		if c.Interface().Hash() != initial {
			return false
		}
		// Redo forward to the final state.
		for c.History().RedoDepth() > 0 {
			if err := c.History().Redo(); err != nil {
				return false
			}
		}
		return c.Interface().Hash() == final
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestInterfaceVersionMonotoneUnderRandomEdits: interface versions never
// decrease, even across undo (undo is itself a new change).
func TestInterfaceVersionMonotoneUnderRandomEdits(t *testing.T) {
	c := NewClass("Mono")
	if _, err := c.AddMethod(MethodSpec{Name: "seed", Result: Int32T, Distributed: true}); err != nil {
		t.Fatal(err)
	}
	var last uint64
	c.Subscribe(func(ev ChangeEvent) {
		if ev.InterfaceVersion < last {
			t.Errorf("interface version went backwards: %d -> %d", last, ev.InterfaceVersion)
		}
		last = ev.InterfaceVersion
	})
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		applyRandomEdit(r, c, i)
		if i%7 == 0 {
			_ = c.History().Undo()
		}
		if i%11 == 0 {
			_ = c.History().Redo()
		}
	}
}

// TestDescriptorHashMatchesEquality: two descriptors are Equal iff their
// hashes match, across random classes.
func TestDescriptorHashMatchesEquality(t *testing.T) {
	build := func(seed int64, steps int) InterfaceDescriptor {
		c := NewClass("H")
		if _, err := c.AddMethod(MethodSpec{Name: "seed", Result: Int32T, Distributed: true}); err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < steps; i++ {
			applyRandomEdit(r, c, i)
		}
		return c.Interface()
	}
	f := func(seed int64, stepsRaw uint8) bool {
		steps := int(stepsRaw % 30)
		d1 := build(seed, steps)
		d2 := build(seed, steps) // same script → same interface
		if !d1.Equal(d2) || d1.Hash() != d2.Hash() {
			return false
		}
		d3 := build(seed+1, steps+1)
		// Different scripts usually differ; when they do, hashes differ.
		if d1.Equal(d3) != (d1.Hash() == d3.Hash()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
