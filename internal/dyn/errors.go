package dyn

import "errors"

// Sentinel errors reported by the dynamic-class runtime. Call handlers in
// the SDE map ErrNoSuchMethod onto the wire-level "Non Existent Method"
// fault/exception the paper's protocol is built around.
var (
	// ErrNoSuchMethod reports an invocation of a method that does not
	// exist (or is not distributed) on the class's current interface.
	ErrNoSuchMethod = errors.New("dyn: no such method")

	// ErrSignatureMismatch reports an invocation whose argument list does
	// not match the method's current parameter types.
	ErrSignatureMismatch = errors.New("dyn: argument list does not match method signature")

	// ErrDuplicateName reports an attempt to create a method or field with
	// a name already in use on the class.
	ErrDuplicateName = errors.New("dyn: duplicate member name")

	// ErrNoSuchMember reports an edit addressed to a method or field ID
	// that is not (any longer) part of the class.
	ErrNoSuchMember = errors.New("dyn: no such member")

	// ErrNoBody reports an invocation of a method whose implementation has
	// not been supplied yet (the developer created the signature but has
	// not written the body).
	ErrNoBody = errors.New("dyn: method has no implementation")

	// ErrNothingToUndo and ErrNothingToRedo report empty history traversal.
	ErrNothingToUndo = errors.New("dyn: nothing to undo")
	ErrNothingToRedo = errors.New("dyn: nothing to redo")
)
