package dyn

import (
	"errors"
	"testing"
)

func TestUndoRedoAddMethod(t *testing.T) {
	c, _ := newCalcClass(t)
	h := c.History()
	if h.UndoDepth() != 1 {
		t.Fatalf("UndoDepth = %d, want 1", h.UndoDepth())
	}
	in := c.NewInstance()

	if err := h.Undo(); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Invoke("add", Int32Value(1), Int32Value(2)); !errors.Is(err, ErrNoSuchMethod) {
		t.Error("undone method should be gone")
	}
	if h.UndoDepth() != 0 || h.RedoDepth() != 1 {
		t.Errorf("depths after undo: %d/%d", h.UndoDepth(), h.RedoDepth())
	}

	if err := h.Redo(); err != nil {
		t.Fatal(err)
	}
	if v, err := in.Invoke("add", Int32Value(1), Int32Value(2)); err != nil || v.Int32() != 3 {
		t.Errorf("redone method should work: %v, %v", v, err)
	}
}

func TestUndoRedoRemoveMethodRestoresEverything(t *testing.T) {
	c, id := newCalcClass(t)
	in := c.NewInstance()
	if err := c.RemoveMethod(id); err != nil {
		t.Fatal(err)
	}
	if err := c.History().Undo(); err != nil {
		t.Fatal(err)
	}
	// Signature, distributed flag, and body all come back.
	v, err := in.InvokeDistributed("add", Int32Value(2), Int32Value(2))
	if err != nil || v.Int32() != 4 {
		t.Fatalf("restored method: %v, %v", v, err)
	}
	if got, ok := c.MethodIDByName("add"); !ok || got != id {
		t.Error("restored method should keep its member ID")
	}
}

func TestUndoRedoSignatureEdits(t *testing.T) {
	c, id := newCalcClass(t)
	h := c.History()

	if err := c.RenameMethod(id, "sum"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetResult(id, Int64T); err != nil {
		t.Fatal(err)
	}
	if err := c.SetParams(id, []Param{{Name: "only", Type: Int64T}}); err != nil {
		t.Fatal(err)
	}
	sigAfter := c.Interface().Methods[0]

	// Unwind all three edits.
	for i := 0; i < 3; i++ {
		if err := h.Undo(); err != nil {
			t.Fatal(err)
		}
	}
	d := c.Interface()
	if d.Methods[0].String() != "add(a:int32,b:int32):int32" {
		t.Errorf("after undo: %s", d.Methods[0])
	}
	// Replay them.
	for i := 0; i < 3; i++ {
		if err := h.Redo(); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Interface().Methods[0]; !got.Equal(sigAfter) {
		t.Errorf("after redo: %s, want %s", got, sigAfter)
	}
}

func TestUndoRedoFieldEdits(t *testing.T) {
	c := NewClass("C")
	fid, err := c.AddField("f", StringT)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveField(fid); err != nil {
		t.Fatal(err)
	}
	h := c.History()
	if err := h.Undo(); err != nil { // un-remove
		t.Fatal(err)
	}
	if _, ok := c.FieldIDByName("f"); !ok {
		t.Error("field should be restored")
	}
	if err := h.Undo(); err != nil { // un-add
		t.Fatal(err)
	}
	if _, ok := c.FieldIDByName("f"); ok {
		t.Error("field should be gone")
	}
	if err := h.Redo(); err != nil { // re-add
		t.Fatal(err)
	}
	if ft, ok := c.FieldType(fid); !ok || !ft.Equal(StringT) {
		t.Error("field should be back with its type and ID")
	}
}

func TestRedoTailTruncatedByNewEdit(t *testing.T) {
	c, id := newCalcClass(t)
	h := c.History()
	if err := c.RenameMethod(id, "sum"); err != nil {
		t.Fatal(err)
	}
	if err := h.Undo(); err != nil {
		t.Fatal(err)
	}
	if h.RedoDepth() != 1 {
		t.Fatalf("RedoDepth = %d", h.RedoDepth())
	}
	// A fresh edit kills the redo tail.
	if err := c.SetResult(id, Int64T); err != nil {
		t.Fatal(err)
	}
	if h.RedoDepth() != 0 {
		t.Error("new edit must truncate redo tail")
	}
	if err := h.Redo(); !errors.Is(err, ErrNothingToRedo) {
		t.Errorf("Redo on empty tail: %v", err)
	}
}

func TestUndoEmpty(t *testing.T) {
	c := NewClass("C")
	if err := c.History().Undo(); !errors.Is(err, ErrNothingToUndo) {
		t.Errorf("Undo on empty history: %v", err)
	}
	if err := c.History().Redo(); !errors.Is(err, ErrNothingToRedo) {
		t.Errorf("Redo on empty history: %v", err)
	}
}

func TestUndoRedoEmitChangeEvents(t *testing.T) {
	c, id := newCalcClass(t)
	var events []ChangeEvent
	c.Subscribe(func(ev ChangeEvent) { events = append(events, ev) })

	if err := c.RenameMethod(id, "sum"); err != nil {
		t.Fatal(err)
	}
	if err := c.History().Undo(); err != nil {
		t.Fatal(err)
	}
	if err := c.History().Redo(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("want 3 events (edit, undo, redo), got %d", len(events))
	}
	for i, ev := range events {
		if !ev.InterfaceAffecting {
			t.Errorf("event %d: rename of distributed method is interface-affecting", i)
		}
	}
	// Interface version strictly increases even when content reverts: the
	// publisher needs monotone versions.
	if !(events[0].InterfaceVersion < events[1].InterfaceVersion &&
		events[1].InterfaceVersion < events[2].InterfaceVersion) {
		t.Errorf("interface versions must be monotone: %d, %d, %d",
			events[0].InterfaceVersion, events[1].InterfaceVersion, events[2].InterfaceVersion)
	}
}

func TestHistoryOps(t *testing.T) {
	c, id := newCalcClass(t)
	if err := c.RenameMethod(id, "sum"); err != nil {
		t.Fatal(err)
	}
	ops := c.History().Ops()
	if len(ops) != 2 {
		t.Fatalf("Ops() = %v", ops)
	}
	if ops[0] != "add method add" || ops[1] != "rename method add to sum" {
		t.Errorf("Ops() = %v", ops)
	}
	if c.History().Len() != 2 {
		t.Errorf("Len() = %d", c.History().Len())
	}
}
