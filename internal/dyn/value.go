package dyn

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a dynamically typed value of the dyn type system. The zero Value
// is the void value. Values are immutable from the caller's perspective:
// constructors copy composite contents in, accessors copy out.
type Value struct {
	t *Type
	// Storage; which field is live depends on t.Kind().
	b     bool
	i     int64
	f     float64
	s     string
	r     rune
	elems []Value // sequence elements or struct field values, in order
}

// VoidValue is the value of type void.
func VoidValue() Value { return Value{t: Void} }

// BoolValue returns a boolean value.
func BoolValue(v bool) Value { return Value{t: Boolean, b: v} }

// CharValue returns a char value.
func CharValue(v rune) Value { return Value{t: Char, r: v} }

// Int32Value returns an int32 value.
func Int32Value(v int32) Value { return Value{t: Int32T, i: int64(v)} }

// Int64Value returns an int64 value.
func Int64Value(v int64) Value { return Value{t: Int64T, i: v} }

// Float32Value returns a float32 value.
func Float32Value(v float32) Value { return Value{t: Float32T, f: float64(v)} }

// Float64Value returns a float64 value.
func Float64Value(v float64) Value { return Value{t: Float64T, f: v} }

// StringValue returns a string value.
func StringValue(v string) Value { return Value{t: StringT, s: v} }

// SequenceValue returns a sequence value of the given element type. Every
// element must have exactly that type.
func SequenceValue(elem *Type, elems ...Value) (Value, error) {
	if elem == nil {
		return Value{}, fmt.Errorf("dyn: sequence needs an element type")
	}
	for i, e := range elems {
		if !e.Type().Equal(elem) {
			return Value{}, fmt.Errorf("dyn: sequence element %d has type %s, want %s", i, e.Type(), elem)
		}
	}
	cp := make([]Value, len(elems))
	copy(cp, elems)
	return Value{t: SequenceOf(elem), elems: cp}, nil
}

// MustSequenceValue is SequenceValue but panics on error.
func MustSequenceValue(elem *Type, elems ...Value) Value {
	v, err := SequenceValue(elem, elems...)
	if err != nil {
		panic(err)
	}
	return v
}

// StructValue returns a value of the given struct type with field values
// given in declaration order.
func StructValue(t *Type, fieldVals ...Value) (Value, error) {
	if t == nil || t.Kind() != KindStruct {
		return Value{}, fmt.Errorf("dyn: StructValue needs a struct type, got %s", t)
	}
	if len(fieldVals) != len(t.fields) {
		return Value{}, fmt.Errorf("dyn: struct %s has %d fields, got %d values", t.name, len(t.fields), len(fieldVals))
	}
	for i, fv := range fieldVals {
		if !fv.Type().Equal(t.fields[i].Type) {
			return Value{}, fmt.Errorf("dyn: struct %s field %s has type %s, want %s",
				t.name, t.fields[i].Name, fv.Type(), t.fields[i].Type)
		}
	}
	cp := make([]Value, len(fieldVals))
	copy(cp, fieldVals)
	return Value{t: t, elems: cp}, nil
}

// MustStructValue is StructValue but panics on error.
func MustStructValue(t *Type, fieldVals ...Value) Value {
	v, err := StructValue(t, fieldVals...)
	if err != nil {
		panic(err)
	}
	return v
}

// Type returns the value's type; the zero Value reports Void.
func (v Value) Type() *Type {
	if v.t == nil {
		return Void
	}
	return v.t
}

// IsVoid reports whether the value is the void value.
func (v Value) IsVoid() bool { return v.Type().Kind() == KindVoid }

// Bool returns the boolean payload (false if not a boolean).
func (v Value) Bool() bool { return v.b }

// Char returns the char payload.
func (v Value) Char() rune { return v.r }

// Int32 returns the int32 payload.
func (v Value) Int32() int32 { return int32(v.i) }

// Int64 returns the int64 payload.
func (v Value) Int64() int64 { return v.i }

// Float32 returns the float32 payload.
func (v Value) Float32() float32 { return float32(v.f) }

// Float64 returns the float64 payload.
func (v Value) Float64() float64 { return v.f }

// Str returns the string payload.
func (v Value) Str() string { return v.s }

// Len returns the number of sequence elements or struct fields.
func (v Value) Len() int { return len(v.elems) }

// Index returns the i'th sequence element or struct field value.
func (v Value) Index(i int) Value { return v.elems[i] }

// Elems returns a copy of the sequence elements (or struct field values).
func (v Value) Elems() []Value {
	cp := make([]Value, len(v.elems))
	copy(cp, v.elems)
	return cp
}

// Field returns the value of the named struct field.
func (v Value) Field(name string) (Value, bool) {
	t := v.Type()
	if t.Kind() != KindStruct {
		return Value{}, false
	}
	for i, f := range t.fields {
		if f.Name == name {
			return v.elems[i], true
		}
	}
	return Value{}, false
}

// Equal reports deep equality of type and payload.
func (v Value) Equal(o Value) bool {
	if !v.Type().Equal(o.Type()) {
		return false
	}
	switch v.Type().Kind() {
	case KindVoid:
		return true
	case KindBoolean:
		return v.b == o.b
	case KindChar:
		return v.r == o.r
	case KindInt32, KindInt64:
		return v.i == o.i
	case KindFloat32, KindFloat64:
		return v.f == o.f
	case KindString:
		return v.s == o.s
	case KindSequence, KindStruct:
		if len(v.elems) != len(o.elems) {
			return false
		}
		for i := range v.elems {
			if !v.elems[i].Equal(o.elems[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Type().Kind() {
	case KindVoid:
		return "void"
	case KindBoolean:
		return strconv.FormatBool(v.b)
	case KindChar:
		return strconv.QuoteRune(v.r)
	case KindInt32, KindInt64:
		return strconv.FormatInt(v.i, 10)
	case KindFloat32:
		return strconv.FormatFloat(v.f, 'g', -1, 32)
	case KindFloat64:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindSequence:
		var b strings.Builder
		b.WriteByte('[')
		for i, e := range v.elems {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(e.String())
		}
		b.WriteByte(']')
		return b.String()
	case KindStruct:
		var b strings.Builder
		b.WriteString(v.t.name)
		b.WriteByte('{')
		for i, e := range v.elems {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(v.t.fields[i].Name)
			b.WriteByte(':')
			b.WriteString(e.String())
		}
		b.WriteByte('}')
		return b.String()
	default:
		return "<invalid>"
	}
}

// Zero returns the zero value of a type: false, 0, "", the empty sequence,
// or a struct with zero-valued fields.
func Zero(t *Type) Value {
	if t == nil {
		return VoidValue()
	}
	switch t.Kind() {
	case KindVoid:
		return VoidValue()
	case KindBoolean:
		return BoolValue(false)
	case KindChar:
		return CharValue(0)
	case KindInt32:
		return Int32Value(0)
	case KindInt64:
		return Int64Value(0)
	case KindFloat32:
		return Float32Value(0)
	case KindFloat64:
		return Float64Value(0)
	case KindString:
		return StringValue("")
	case KindSequence:
		return Value{t: t}
	case KindStruct:
		fv := make([]Value, len(t.fields))
		for i, f := range t.fields {
			fv[i] = Zero(f.Type)
		}
		return Value{t: t, elems: fv}
	default:
		return Value{}
	}
}
