package giop

import (
	"errors"
	"fmt"

	"livedev/internal/cdr"
)

// SystemException is a CORBA system exception as carried in a
// SYSTEM_EXCEPTION reply body: repository id, minor code, completion
// status. The SDE maps a call to a method missing from the live interface
// onto BAD_OPERATION — CORBA's "Non Existent Method" — after forcing the
// published IDL current (paper Section 5.7).
type SystemException struct {
	RepoID    string
	Minor     uint32
	Completed CompletionStatus
}

// CompletionStatus says how far the operation got before the exception.
type CompletionStatus uint32

// CORBA completion status values.
const (
	CompletedYes   CompletionStatus = 0
	CompletedNo    CompletionStatus = 1
	CompletedMaybe CompletionStatus = 2
)

// Standard repository IDs for the exceptions the SDE raises.
const (
	RepoBadOperation   = "IDL:omg.org/CORBA/BAD_OPERATION:1.0"
	RepoMarshal        = "IDL:omg.org/CORBA/MARSHAL:1.0"
	RepoNoImplement    = "IDL:omg.org/CORBA/NO_IMPLEMENT:1.0"
	RepoObjectNotExist = "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0"
	RepoUnknown        = "IDL:omg.org/CORBA/UNKNOWN:1.0"
	RepoInitialize     = "IDL:omg.org/CORBA/INITIALIZE:1.0"
)

// Error implements error.
func (se *SystemException) Error() string {
	return fmt.Sprintf("CORBA system exception %s (minor=%d, completed=%d)", se.RepoID, se.Minor, se.Completed)
}

// Encode writes the exception body (repo id, minor, completion status).
func (se *SystemException) Encode(e *cdr.Encoder) error {
	e.WriteString(se.RepoID)
	e.WriteULong(se.Minor)
	e.WriteULong(uint32(se.Completed))
	return nil
}

// DecodeSystemException reads a system-exception reply body.
func DecodeSystemException(d *cdr.Decoder) (*SystemException, error) {
	id, err := d.ReadString()
	if err != nil {
		return nil, fmt.Errorf("giop: system exception id: %w", err)
	}
	minor, err := d.ReadULong()
	if err != nil {
		return nil, fmt.Errorf("giop: system exception minor: %w", err)
	}
	completed, err := d.ReadULong()
	if err != nil {
		return nil, fmt.Errorf("giop: system exception completion: %w", err)
	}
	return &SystemException{RepoID: id, Minor: minor, Completed: CompletionStatus(completed)}, nil
}

// AsSystemException unwraps err to a *SystemException if there is one.
func AsSystemException(err error) (*SystemException, bool) {
	var se *SystemException
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}

// IsBadOperation reports whether err is a BAD_OPERATION system exception —
// the CORBA-side signal of the paper's "Non Existent Method" condition.
func IsBadOperation(err error) bool {
	se, ok := AsSystemException(err)
	return ok && se.RepoID == RepoBadOperation
}
