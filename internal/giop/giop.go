// Package giop implements the General Inter-ORB Protocol message layer
// (GIOP 1.0): the framing CORBA requests and replies travel in over IIOP.
// A message is a 12-octet header (magic "GIOP", version, byte-order flag,
// message type, body size) followed by a CDR body. This package marshals
// and unmarshals the header, the Request and Reply message headers, and
// system-exception reply bodies; argument and result values are encoded by
// the caller with package cdr against the interface's signatures.
//
// # Pooling and buffer-ownership invariants
//
// The hot path avoids per-message allocations in three places:
//
//   - WriteMessage assembles header + body in one pooled frame buffer and
//     issues a single Write; the frame returns to the pool before
//     WriteMessage returns, so callers never see it.
//   - ReadMessagePooled reads the body into a pooled buffer. The returned
//     Message owns that buffer until Recycle is called; after Recycle, the
//     Body slice — and anything aliasing it, such as decoder sub-slice
//     reads or the RequestHeader produced by DecodeRequest — is invalid.
//   - EncodeRequest/EncodeReply encode into a pooled cdr.Encoder whose
//     buffer the returned Message aliases; Recycle hands the encoder back.
//
// Recycle is optional (an unrecycled message is simply garbage-collected)
// and must be called at most once, only after every alias of Body is dead.
package giop

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"livedev/internal/cdr"
)

// MsgType identifies a GIOP message.
type MsgType byte

// GIOP 1.0 message types (we use Request, Reply and CloseConnection).
const (
	MsgRequest         MsgType = 0
	MsgReply           MsgType = 1
	MsgCancelRequest   MsgType = 2
	MsgLocateRequest   MsgType = 3
	MsgLocateReply     MsgType = 4
	MsgCloseConnection MsgType = 5
	MsgMessageError    MsgType = 6
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgRequest:
		return "Request"
	case MsgReply:
		return "Reply"
	case MsgCancelRequest:
		return "CancelRequest"
	case MsgLocateRequest:
		return "LocateRequest"
	case MsgLocateReply:
		return "LocateReply"
	case MsgCloseConnection:
		return "CloseConnection"
	case MsgMessageError:
		return "MessageError"
	default:
		return fmt.Sprintf("MsgType(%d)", byte(t))
	}
}

// ReplyStatus is the GIOP reply status.
type ReplyStatus uint32

// GIOP 1.0 reply status values.
const (
	ReplyNoException     ReplyStatus = 0
	ReplyUserException   ReplyStatus = 1
	ReplySystemException ReplyStatus = 2
	ReplyLocationForward ReplyStatus = 3
)

// String names the reply status.
func (s ReplyStatus) String() string {
	switch s {
	case ReplyNoException:
		return "NO_EXCEPTION"
	case ReplyUserException:
		return "USER_EXCEPTION"
	case ReplySystemException:
		return "SYSTEM_EXCEPTION"
	case ReplyLocationForward:
		return "LOCATION_FORWARD"
	default:
		return fmt.Sprintf("ReplyStatus(%d)", uint32(s))
	}
}

// Protocol errors.
var (
	ErrBadMagic   = errors.New("giop: bad magic (not a GIOP message)")
	ErrBadVersion = errors.New("giop: unsupported GIOP version")
	ErrTooLarge   = errors.New("giop: message exceeds size limit")
)

// MaxMessageSize bounds accepted message bodies; a defence against
// malformed or hostile size fields.
const MaxMessageSize = 16 << 20

var magic = [4]byte{'G', 'I', 'O', 'P'}

// headerLen is the fixed GIOP message header length.
const headerLen = 12

// Message is one framed GIOP message: its type, the byte order its body is
// encoded in, and the raw body octets (alignment relative to body start).
//
// Note on alignment: GIOP 1.0 computes CDR alignment from the start of the
// 12-octet message header, and 12 ≡ 0 (mod 4) with only 8-octet alignment
// differing. Like several production ORBs we re-base alignment at the body
// start and make the first body field a ulong (request id), so the two
// conventions agree for every field our headers emit.
type Message struct {
	Type  MsgType
	Order cdr.ByteOrder
	Body  []byte

	// Provenance of Body, for Recycle. Zero means Body is caller-owned
	// (or nil) and Recycle is a no-op.
	src messageSource
	enc *cdr.Encoder // set when src == srcEncoder
}

type messageSource uint8

const (
	srcCallerOwned messageSource = iota
	srcBodyPool                  // Body came from the internal body pool
	srcEncoder                   // Body aliases enc's buffer
)

// Recycle returns the message's body storage to its pool. It must be called
// at most once, and only once nothing aliases Body anymore (decoders,
// sub-slice reads, decoded headers). Calling it on a caller-owned message
// is a no-op, so generic cleanup paths can call it unconditionally.
func (m *Message) Recycle() {
	switch m.src {
	case srcBodyPool:
		putBody(m.Body)
	case srcEncoder:
		cdr.PutEncoder(m.enc)
	}
	m.src = srcCallerOwned
	m.enc = nil
	m.Body = nil
}

// Disown detaches the message's body from its pool: Recycle becomes a
// no-op and the Body slice is safe to retain indefinitely (it will simply
// be garbage-collected). Used when a pooled message escapes to a caller
// whose lifetime the transport cannot see.
func (m *Message) Disown() {
	m.src = srcCallerOwned
	m.enc = nil
}

// framePool recycles the combined header+body write buffers.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// bodyPool recycles message-body buffers filled by ReadMessagePooled.
var bodyPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// maxPooledBuf bounds buffer capacity retained by the pools.
const maxPooledBuf = 1 << 20

func putBody(b []byte) {
	if b == nil || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bodyPool.Put(&b)
}

// giopPrefix is the constant first six octets of every GIOP 1.0 header.
var giopPrefix = [6]byte{'G', 'I', 'O', 'P', 1, 0}

// WriteMessage frames and writes a GIOP message: header and body leave in a
// single Write call (one syscall on a net.Conn), assembled in a pooled
// frame buffer that never escapes.
func WriteMessage(w io.Writer, m Message) error {
	if len(m.Body) > MaxMessageSize {
		return fmt.Errorf("%w: %d octets", ErrTooLarge, len(m.Body))
	}
	fp := framePool.Get().(*[]byte)
	frame := (*fp)[:0]
	frame = append(frame, giopPrefix[:]...)
	frame = append(frame, byte(m.Order), byte(m.Type))
	frame = append(frame, 0, 0, 0, 0)
	m.Order.Binary().PutUint32(frame[len(frame)-4:], uint32(len(m.Body)))
	frame = append(frame, m.Body...)
	_, err := w.Write(frame)
	if cap(frame) <= maxPooledBuf {
		*fp = frame
		framePool.Put(fp)
	}
	if err != nil {
		return fmt.Errorf("giop: writing message: %w", err)
	}
	return nil
}

// ReadMessage reads one framed GIOP message into a freshly allocated body
// the caller owns outright.
func ReadMessage(r io.Reader) (Message, error) {
	return readMessage(r, false)
}

// ReadMessagePooled reads one framed GIOP message into a pooled body
// buffer. The caller must call Recycle on the returned message once nothing
// references its Body (see the package comment).
func ReadMessagePooled(r io.Reader) (Message, error) {
	return readMessage(r, true)
}

func readMessage(r io.Reader, pooled bool) (Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("giop: reading header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return Message{}, ErrBadMagic
	}
	if hdr[4] != 1 || hdr[5] != 0 {
		return Message{}, fmt.Errorf("%w: %d.%d", ErrBadVersion, hdr[4], hdr[5])
	}
	var order cdr.ByteOrder
	switch hdr[6] {
	case 0:
		order = cdr.BigEndian
	case 1:
		order = cdr.LittleEndian
	default:
		return Message{}, fmt.Errorf("giop: invalid byte-order flag %d", hdr[6])
	}
	msgType := MsgType(hdr[7])
	size := order.Binary().Uint32(hdr[8:12])
	if size > MaxMessageSize {
		return Message{}, fmt.Errorf("%w: %d octets", ErrTooLarge, size)
	}
	var body []byte
	src := srcCallerOwned
	if pooled {
		bp := bodyPool.Get().(*[]byte)
		if cap(*bp) >= int(size) {
			body = (*bp)[:size]
		} else {
			bodyPool.Put(bp)
			body = make([]byte, size)
		}
		src = srcBodyPool
	} else {
		body = make([]byte, size)
	}
	if _, err := io.ReadFull(r, body); err != nil {
		if src == srcBodyPool {
			putBody(body)
		}
		return Message{}, fmt.Errorf("giop: reading body: %w", err)
	}
	return Message{Type: msgType, Order: order, Body: body, src: src}, nil
}

// RequestHeader is the GIOP 1.0 request header. ServiceContext is omitted
// from the struct (we always emit an empty sequence) because the SDE/CDE
// protocol carries its metadata in reply bodies instead.
//
// When produced by DecodeRequest, ObjectKey and Principal are sub-slices of
// the message body: they are valid only until the message is recycled and
// must not be retained or mutated by handlers.
type RequestHeader struct {
	RequestID        uint32
	ResponseExpected bool
	ObjectKey        []byte
	Operation        string
	Principal        []byte
}

// EncodeRequest builds a Request message: header followed by the
// already-encoded argument body produced by enc (may be nil for no args).
// The returned message's body lives in a pooled encoder; call Recycle once
// it has been written (see the package comment).
func EncodeRequest(order cdr.ByteOrder, h RequestHeader, args func(*cdr.Encoder) error) (Message, error) {
	e := cdr.GetEncoder(order)
	e.WriteULong(0) // empty service context list
	e.WriteULong(h.RequestID)
	e.WriteBool(h.ResponseExpected)
	e.WriteOctetSeq(h.ObjectKey)
	e.WriteString(h.Operation)
	e.WriteOctetSeq(h.Principal)
	if args != nil {
		if err := args(e); err != nil {
			cdr.PutEncoder(e)
			return Message{}, fmt.Errorf("giop: encoding request args: %w", err)
		}
	}
	return Message{Type: MsgRequest, Order: order, Body: e.Bytes(), src: srcEncoder, enc: e}, nil
}

// DecodeRequest parses a Request body, returning the header and a decoder
// positioned at the first argument.
func DecodeRequest(m Message) (RequestHeader, *cdr.Decoder, error) {
	if m.Type != MsgRequest {
		return RequestHeader{}, nil, fmt.Errorf("giop: expected Request, got %s", m.Type)
	}
	d := cdr.NewDecoder(m.Body, m.Order)
	nctx, err := d.ReadULong()
	if err != nil {
		return RequestHeader{}, nil, fmt.Errorf("giop: request service context: %w", err)
	}
	for i := uint32(0); i < nctx; i++ {
		if _, err := d.ReadULong(); err != nil { // context id
			return RequestHeader{}, nil, fmt.Errorf("giop: service context %d: %w", i, err)
		}
		if _, err := d.ReadOctetSeq(); err != nil { // context data
			return RequestHeader{}, nil, fmt.Errorf("giop: service context %d: %w", i, err)
		}
	}
	var h RequestHeader
	if h.RequestID, err = d.ReadULong(); err != nil {
		return RequestHeader{}, nil, fmt.Errorf("giop: request id: %w", err)
	}
	if h.ResponseExpected, err = d.ReadBool(); err != nil {
		return RequestHeader{}, nil, fmt.Errorf("giop: response_expected: %w", err)
	}
	// ObjectKey and Principal are transient routing metadata: sub-slice
	// reads avoid two copies per request (see RequestHeader's doc comment).
	if h.ObjectKey, err = d.ReadOctetSeqRef(); err != nil {
		return RequestHeader{}, nil, fmt.Errorf("giop: object key: %w", err)
	}
	if h.Operation, err = d.ReadString(); err != nil {
		return RequestHeader{}, nil, fmt.Errorf("giop: operation: %w", err)
	}
	if h.Principal, err = d.ReadOctetSeqRef(); err != nil {
		return RequestHeader{}, nil, fmt.Errorf("giop: principal: %w", err)
	}
	return h, d, nil
}

// EncodeCancelRequest builds a CancelRequest message for requestID — the
// GIOP notification a client sends when it is no longer interested in the
// reply (here: the invoking context was cancelled). The returned message's
// body lives in a pooled encoder; call Recycle once it has been written.
func EncodeCancelRequest(order cdr.ByteOrder, requestID uint32) Message {
	e := cdr.GetEncoder(order)
	e.WriteULong(requestID)
	return Message{Type: MsgCancelRequest, Order: order, Body: e.Bytes(), src: srcEncoder, enc: e}
}

// DecodeCancelRequest parses a CancelRequest body, returning the request ID
// the peer abandoned.
func DecodeCancelRequest(m Message) (uint32, error) {
	if m.Type != MsgCancelRequest {
		return 0, fmt.Errorf("giop: expected CancelRequest, got %s", m.Type)
	}
	d := cdr.NewDecoder(m.Body, m.Order)
	id, err := d.ReadULong()
	if err != nil {
		return 0, fmt.Errorf("giop: cancel request id: %w", err)
	}
	return id, nil
}

// ReplyHeader is the GIOP 1.0 reply header.
type ReplyHeader struct {
	RequestID uint32
	Status    ReplyStatus
}

// EncodeReply builds a Reply message with a body produced by result (may be
// nil for void results or when the status carries no body). The returned
// message's body lives in a pooled encoder; call Recycle once it has been
// written (see the package comment).
func EncodeReply(order cdr.ByteOrder, h ReplyHeader, result func(*cdr.Encoder) error) (Message, error) {
	e := cdr.GetEncoder(order)
	e.WriteULong(0) // empty service context list
	e.WriteULong(h.RequestID)
	e.WriteULong(uint32(h.Status))
	if result != nil {
		if err := result(e); err != nil {
			cdr.PutEncoder(e)
			return Message{}, fmt.Errorf("giop: encoding reply body: %w", err)
		}
	}
	return Message{Type: MsgReply, Order: order, Body: e.Bytes(), src: srcEncoder, enc: e}, nil
}

// DecodeReply parses a Reply body, returning the header and a decoder
// positioned at the result (or exception) body.
func DecodeReply(m Message) (ReplyHeader, *cdr.Decoder, error) {
	if m.Type != MsgReply {
		return ReplyHeader{}, nil, fmt.Errorf("giop: expected Reply, got %s", m.Type)
	}
	d := cdr.NewDecoder(m.Body, m.Order)
	nctx, err := d.ReadULong()
	if err != nil {
		return ReplyHeader{}, nil, fmt.Errorf("giop: reply service context: %w", err)
	}
	for i := uint32(0); i < nctx; i++ {
		if _, err := d.ReadULong(); err != nil {
			return ReplyHeader{}, nil, fmt.Errorf("giop: service context %d: %w", i, err)
		}
		if _, err := d.ReadOctetSeq(); err != nil {
			return ReplyHeader{}, nil, fmt.Errorf("giop: service context %d: %w", i, err)
		}
	}
	var h ReplyHeader
	if h.RequestID, err = d.ReadULong(); err != nil {
		return ReplyHeader{}, nil, fmt.Errorf("giop: reply request id: %w", err)
	}
	st, err := d.ReadULong()
	if err != nil {
		return ReplyHeader{}, nil, fmt.Errorf("giop: reply status: %w", err)
	}
	h.Status = ReplyStatus(st)
	return h, d, nil
}
