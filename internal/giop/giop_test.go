package giop

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"livedev/internal/cdr"
)

func TestMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	msg := Message{Type: MsgRequest, Order: cdr.BigEndian, Body: []byte{1, 2, 3, 4, 5}}
	if err := WriteMessage(&buf, msg); err != nil {
		t.Fatal(err)
	}
	// Header: GIOP 1.0, flags, type, size.
	raw := buf.Bytes()
	if string(raw[:4]) != "GIOP" {
		t.Errorf("magic = %q", raw[:4])
	}
	if raw[4] != 1 || raw[5] != 0 {
		t.Errorf("version = %d.%d", raw[4], raw[5])
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgRequest || got.Order != cdr.BigEndian || !bytes.Equal(got.Body, msg.Body) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestMessageFramingLittleEndian(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, Message{Type: MsgReply, Order: cdr.LittleEndian, Body: make([]byte, 300)}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Order != cdr.LittleEndian || len(got.Body) != 300 {
		t.Errorf("LE round trip: order=%v len=%d", got.Order, len(got.Body))
	}
}

func TestReadMessageErrors(t *testing.T) {
	if _, err := ReadMessage(strings.NewReader("")); !errors.Is(err, io.EOF) {
		t.Errorf("empty: %v", err)
	}
	if _, err := ReadMessage(strings.NewReader("NOPE")); err == nil || errors.Is(err, ErrBadMagic) {
		// 4 bytes is a short header; must be a read error, not bad magic yet.
		t.Errorf("short: %v", err)
	}
	bad := append([]byte("JUNK"), make([]byte, 8)...)
	if _, err := ReadMessage(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	v2 := []byte{'G', 'I', 'O', 'P', 2, 0, 0, 0, 0, 0, 0, 0}
	if _, err := ReadMessage(bytes.NewReader(v2)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	badFlag := []byte{'G', 'I', 'O', 'P', 1, 0, 9, 0, 0, 0, 0, 0}
	if _, err := ReadMessage(bytes.NewReader(badFlag)); err == nil {
		t.Error("bad byte-order flag should fail")
	}
	// Hostile size field.
	huge := []byte{'G', 'I', 'O', 'P', 1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadMessage(bytes.NewReader(huge)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("huge size: %v", err)
	}
	// Truncated body.
	short := []byte{'G', 'I', 'O', 'P', 1, 0, 0, 0, 0, 0, 0, 10, 1, 2}
	if _, err := ReadMessage(bytes.NewReader(short)); err == nil {
		t.Error("truncated body should fail")
	}
}

func TestWriteMessageTooLarge(t *testing.T) {
	err := WriteMessage(io.Discard, Message{Body: make([]byte, MaxMessageSize+1)})
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize write: %v", err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		h := RequestHeader{
			RequestID:        42,
			ResponseExpected: true,
			ObjectKey:        []byte("calc-service"),
			Operation:        "add",
			Principal:        []byte("dev"),
		}
		msg, err := EncodeRequest(order, h, func(e *cdr.Encoder) error {
			e.WriteLong(7)
			e.WriteLong(35)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		gh, args, err := DecodeRequest(msg)
		if err != nil {
			t.Fatal(err)
		}
		if gh.RequestID != 42 || !gh.ResponseExpected || string(gh.ObjectKey) != "calc-service" ||
			gh.Operation != "add" || string(gh.Principal) != "dev" {
			t.Errorf("header mismatch (%v): %+v", order, gh)
		}
		a, _ := args.ReadLong()
		b, _ := args.ReadLong()
		if a != 7 || b != 35 {
			t.Errorf("args = %d, %d", a, b)
		}
	}
}

func TestRequestEncoderErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	_, err := EncodeRequest(cdr.BigEndian, RequestHeader{}, func(*cdr.Encoder) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("EncodeRequest: %v", err)
	}
	_, err = EncodeReply(cdr.BigEndian, ReplyHeader{}, func(*cdr.Encoder) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("EncodeReply: %v", err)
	}
}

func TestDecodeRequestWrongType(t *testing.T) {
	if _, _, err := DecodeRequest(Message{Type: MsgReply}); err == nil {
		t.Error("DecodeRequest on Reply should fail")
	}
	if _, _, err := DecodeReply(Message{Type: MsgRequest}); err == nil {
		t.Error("DecodeReply on Request should fail")
	}
}

func TestDecodeRequestSkipsServiceContexts(t *testing.T) {
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteULong(2) // two service contexts
	e.WriteULong(0xBEEF)
	e.WriteOctetSeq([]byte{1, 2, 3})
	e.WriteULong(0xCAFE)
	e.WriteOctetSeq(nil)
	e.WriteULong(7)            // request id
	e.WriteBool(false)         // response expected
	e.WriteOctetSeq([]byte{9}) // object key
	e.WriteString("op")
	e.WriteOctetSeq(nil) // principal
	h, _, err := DecodeRequest(Message{Type: MsgRequest, Order: cdr.BigEndian, Body: e.Bytes()})
	if err != nil {
		t.Fatal(err)
	}
	if h.RequestID != 7 || h.ResponseExpected || h.Operation != "op" {
		t.Errorf("header = %+v", h)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	msg, err := EncodeReply(cdr.LittleEndian, ReplyHeader{RequestID: 9, Status: ReplyNoException},
		func(e *cdr.Encoder) error {
			e.WriteString("result")
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	h, body, err := DecodeReply(msg)
	if err != nil {
		t.Fatal(err)
	}
	if h.RequestID != 9 || h.Status != ReplyNoException {
		t.Errorf("reply header = %+v", h)
	}
	if s, _ := body.ReadString(); s != "result" {
		t.Errorf("reply body = %q", s)
	}
}

func TestSystemExceptionRoundTrip(t *testing.T) {
	se := &SystemException{RepoID: RepoBadOperation, Minor: 2, Completed: CompletedNo}
	msg, err := EncodeReply(cdr.BigEndian, ReplyHeader{RequestID: 1, Status: ReplySystemException}, se.Encode)
	if err != nil {
		t.Fatal(err)
	}
	h, body, err := DecodeReply(msg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != ReplySystemException {
		t.Fatalf("status = %v", h.Status)
	}
	got, err := DecodeSystemException(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.RepoID != se.RepoID || got.Minor != se.Minor || got.Completed != se.Completed {
		t.Errorf("exception = %+v", got)
	}
	if !IsBadOperation(got) {
		t.Error("IsBadOperation should be true")
	}
	if IsBadOperation(errors.New("other")) {
		t.Error("IsBadOperation on unrelated error")
	}
	if got.Error() == "" {
		t.Error("Error() should be non-empty")
	}
	if se2, ok := AsSystemException(got); !ok || se2 != got {
		t.Error("AsSystemException")
	}
}

func TestStringers(t *testing.T) {
	if MsgRequest.String() != "Request" || MsgReply.String() != "Reply" ||
		MsgCancelRequest.String() != "CancelRequest" || MsgLocateRequest.String() != "LocateRequest" ||
		MsgLocateReply.String() != "LocateReply" || MsgCloseConnection.String() != "CloseConnection" ||
		MsgMessageError.String() != "MessageError" {
		t.Error("MsgType.String")
	}
	if MsgType(200).String() == "" {
		t.Error("unknown MsgType.String")
	}
	if ReplyNoException.String() != "NO_EXCEPTION" || ReplyUserException.String() != "USER_EXCEPTION" ||
		ReplySystemException.String() != "SYSTEM_EXCEPTION" || ReplyLocationForward.String() != "LOCATION_FORWARD" {
		t.Error("ReplyStatus.String")
	}
	if ReplyStatus(77).String() == "" {
		t.Error("unknown ReplyStatus.String")
	}
}

// Property: request headers round-trip for arbitrary field contents.
func TestRequestHeaderRoundTripProperty(t *testing.T) {
	f := func(id uint32, resp bool, key []byte, op string, le bool) bool {
		if strings.ContainsRune(op, 0) {
			op = strings.ReplaceAll(op, "\x00", "_")
		}
		order := cdr.BigEndian
		if le {
			order = cdr.LittleEndian
		}
		msg, err := EncodeRequest(order, RequestHeader{
			RequestID: id, ResponseExpected: resp, ObjectKey: key, Operation: op,
		}, nil)
		if err != nil {
			return false
		}
		h, _, err := DecodeRequest(msg)
		if err != nil {
			return false
		}
		return h.RequestID == id && h.ResponseExpected == resp &&
			bytes.Equal(h.ObjectKey, key) && h.Operation == op
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
