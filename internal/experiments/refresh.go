package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"livedev/internal/cde"
	"livedev/internal/core"
	"livedev/internal/dyn"
)

// RefreshRow summarizes one client-refresh strategy in the
// refresh-after-edit latency experiment: how long after a committed
// publication a connected client's interface view reflects it.
type RefreshRow struct {
	// Mode names the strategy ("poll-50ms", "watch-push").
	Mode string
	// Rounds is the number of edit→publish→converge rounds measured.
	Rounds int
	// Mean and P50 summarize the publication→view-refresh latency.
	Mean, P50 time.Duration
}

// RefreshConfig parameterizes the refresh-latency experiment.
type RefreshConfig struct {
	// Rounds is the number of edits measured per client (default 12).
	Rounds int
	// PollInterval is the polling client's AutoRefresh interval
	// (default 50ms).
	PollInterval time.Duration
}

// RunRefreshLatency measures the refresh-after-edit latency of the two
// client update strategies side by side: a polling client (AutoRefresh at
// a fixed interval — the pre-watch CDE) against a watch-subscribed client
// (push-invalidated cache). Both clients are connected to the same live
// SOAP server; each round renames the served method, forces a publication,
// and times how long each client takes to converge on the new descriptor
// version.
func RunRefreshLatency(cfg RefreshConfig) ([]RefreshRow, error) {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 12
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 50 * time.Millisecond
	}
	mgr, err := core.NewManager(core.Config{Timeout: 5 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	defer func() { _ = mgr.Close() }()

	class := dyn.NewClass("Refresh")
	id, err := class.AddMethod(dyn.MethodSpec{Name: "op0", Result: dyn.Int32T, Distributed: true})
	if err != nil {
		return nil, err
	}
	srv, err := mgr.Register(class, core.TechSOAP)
	if err != nil {
		return nil, err
	}
	if _, err := srv.CreateInstance(); err != nil {
		return nil, err
	}

	ctx := context.Background()
	pollClient, err := cde.Dial(ctx, srv.InterfaceURL(), nil)
	if err != nil {
		return nil, err
	}
	defer func() { _ = pollClient.Close() }()
	stopPoll := pollClient.AutoRefresh(cfg.PollInterval)
	defer stopPoll()

	watchClient, err := cde.Dial(ctx, srv.InterfaceURL(), &cde.DialOptions{Watch: true})
	if err != nil {
		return nil, err
	}
	defer func() { _ = watchClient.Close() }()

	// convergeDeadline bounds each round so a wedged client fails the run
	// with a diagnostic instead of hanging the bench (CI runs this).
	const convergeDeadline = 15 * time.Second
	converge := func(c *cde.Client, target uint64, start time.Time) (time.Duration, error) {
		for c.Versions().Descriptor < target {
			if time.Since(start) > convergeDeadline {
				return 0, fmt.Errorf("experiments: client stuck at descriptor version %d (target %d) after %s",
					c.Versions().Descriptor, target, convergeDeadline)
			}
			time.Sleep(200 * time.Microsecond)
		}
		return time.Since(start), nil
	}

	type convergeResult struct {
		lat time.Duration
		err error
	}
	var pollLat, watchLat []time.Duration
	for i := 1; i <= cfg.Rounds; i++ {
		if err := class.RenameMethod(id, fmt.Sprintf("op%d", i)); err != nil {
			return nil, err
		}
		srv.Publisher().PublishNow()
		srv.Publisher().WaitIdle()
		target := class.InterfaceVersion()
		start := time.Now()

		done := make(chan convergeResult, 1)
		go func() {
			lat, err := converge(pollClient, target, start)
			done <- convergeResult{lat, err}
		}()
		wl, err := converge(watchClient, target, start)
		if err != nil {
			<-done
			return nil, err
		}
		pr := <-done
		if pr.err != nil {
			return nil, pr.err
		}
		watchLat = append(watchLat, wl)
		pollLat = append(pollLat, pr.lat)
	}

	return []RefreshRow{
		summarizeRefresh(fmt.Sprintf("poll-%s", cfg.PollInterval), pollLat),
		summarizeRefresh("watch-push", watchLat),
	}, nil
}

func summarizeRefresh(mode string, lat []time.Duration) RefreshRow {
	row := RefreshRow{Mode: mode, Rounds: len(lat)}
	if len(lat) == 0 {
		return row
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, l := range sorted {
		total += l
	}
	row.Mean = total / time.Duration(len(sorted))
	row.P50 = sorted[len(sorted)/2]
	return row
}

// FormatRefresh renders the refresh-latency rows as an aligned table.
func FormatRefresh(rows []RefreshRow) string {
	var b strings.Builder
	b.WriteString("Refresh-after-edit latency: client view convergence after a committed publication\n")
	fmt.Fprintf(&b, "%-16s %8s %12s %12s\n", "mode", "rounds", "mean", "p50")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %8d %12s %12s\n",
			r.Mode, r.Rounds, r.Mean.Round(10*time.Microsecond), r.P50.Round(10*time.Microsecond))
	}
	return b.String()
}
