//go:build linux

package experiments

import (
	"os"
	"syscall"
)

// drainWriteback flushes all dirty pages to disk (sync(2)) so one
// measurement's buffered writes cannot tax the next one's fsyncs with
// background writeback.
func drainWriteback() { syscall.Sync() }

// posixFadvDontneed is POSIX_FADV_DONTNEED from <fcntl.h>.
const posixFadvDontneed = 4

// dropFileCache asks the kernel to evict path's pages from the page cache
// so the next read is a real disk read. Dirty pages would survive the
// advice, so the file is fsynced first; the eviction itself is advisory
// (best effort) but measurably effective once the pages are clean.
func dropFileCache(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	if err := f.Sync(); err != nil {
		return err
	}
	// Length 0 means "to the end of the file".
	if _, _, errno := syscall.Syscall6(syscall.SYS_FADVISE64, f.Fd(), 0, 0, posixFadvDontneed, 0, 0); errno != 0 {
		return errno
	}
	return nil
}
