//go:build unix

package experiments

import "syscall"

// raiseFDLimit lifts the process's soft file-descriptor limit toward want,
// best-effort: a 10k-watcher replication run holds both ends of several
// sockets per watcher in one process, far past the usual defaults. A
// privileged process (CAP_SYS_RESOURCE) may raise the hard limit too, so
// try that first and fall back to the hard-limit cap.
func raiseFDLimit(want uint64) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return
	}
	if lim.Cur >= want {
		return
	}
	if lim.Max < want {
		raised := lim
		raised.Cur, raised.Max = want, want
		if syscall.Setrlimit(syscall.RLIMIT_NOFILE, &raised) == nil {
			return
		}
	}
	lim.Cur = want
	if lim.Cur > lim.Max {
		lim.Cur = lim.Max
	}
	_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
}
