//go:build !unix

package experiments

// raiseFDLimit is a no-op off unix.
func raiseFDLimit(uint64) {}
