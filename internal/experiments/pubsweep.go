package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"livedev/internal/clock"
	"livedev/internal/core"
	"livedev/internal/dyn"
	"livedev/internal/workload"
)

// Strategy is a publication policy from the Section 5.6 design space.
type Strategy int

// The three policies the paper discusses.
const (
	// StrategyChangeDriven publishes on every interface-affecting change
	// ("this approach would often lead to publishing transient server
	// interface descriptions").
	StrategyChangeDriven Strategy = iota + 1
	// StrategyPoll checks the interface at fixed intervals and publishes
	// if it changed ("the periodic approach could still publish a
	// transient interface ... that could persist at the client side until
	// the next polling interval").
	StrategyPoll
	// StrategyStableTimeout is the paper's mechanism: change-driven, but
	// waits for a stable interval (implemented by core.DLPublisher).
	StrategyStableTimeout
	// StrategyCoalescedStore is the publication core's extension of the
	// paper's mechanism: stable-timeout publication routed through the
	// coalescing store, whose flush window batches rapid publications into
	// one committed version (Param is the flush window; the stability
	// timeout is fixed at coalescedStableTimeout).
	StrategyCoalescedStore
)

// coalescedStableTimeout is the stability timeout used under
// StrategyCoalescedStore, chosen from the middle of the stable-timeout
// sweep so the store's flush window is the variable under study.
const coalescedStableTimeout = 200 * time.Millisecond

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyChangeDriven:
		return "change-driven"
	case StrategyPoll:
		return "poll"
	case StrategyStableTimeout:
		return "stable-timeout"
	case StrategyCoalescedStore:
		return "stable+store"
	default:
		return "unknown"
	}
}

// SweepResult summarizes one (strategy, parameter) run over an edit trace.
type SweepResult struct {
	Strategy Strategy
	// Param is the poll interval or stability timeout (0 for
	// change-driven).
	Param time.Duration
	// InterfaceEdits is the number of interface-affecting edits applied.
	InterfaceEdits int
	// Publications is the number of interface descriptions published.
	Publications int
	// TransientPublications counts publications that captured a mid-burst
	// interface: another interface edit arrived within the settle window
	// after the publication.
	TransientPublications int
	// MeanLag and MaxLag measure, over settled edits (edits not followed
	// by another edit within the settle window), the virtual time from the
	// edit until the published interface matched it. An edit whose
	// interface was already published (e.g. an edit reverting to the
	// published state) has lag zero.
	MeanLag, MaxLag time.Duration
	// MissedEdits counts settled edits whose interface was never published
	// before the interface moved on — clients could never have seen them.
	MissedEdits int
	// FinalCurrent reports whether the last published interface equals the
	// class's final interface.
	FinalCurrent bool
}

// SweepConfig parameterizes the publication-strategy experiment.
type SweepConfig struct {
	// Trace is the developer editing model.
	Trace workload.TraceConfig
	// SettleWindow defines when an edit counts as settled and when a
	// publication counts as transient.
	SettleWindow time.Duration
	// Timeouts are the stable-timeout values to sweep.
	Timeouts []time.Duration
	// PollIntervals are the polling intervals to sweep.
	PollIntervals []time.Duration
	// FlushWindows are the coalescing-store flush windows to sweep (the
	// stable timeout is fixed at coalescedStableTimeout for these runs).
	FlushWindows []time.Duration
}

// DefaultSweep covers the paper's qualitative comparison with a parameter
// sweep around the editing model's time constants.
func DefaultSweep(seed int64) SweepConfig {
	return SweepConfig{
		Trace:        workload.DefaultTrace(seed),
		SettleWindow: time.Second,
		Timeouts: []time.Duration{
			50 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
			1 * time.Second, 2 * time.Second,
		},
		PollIntervals: []time.Duration{
			200 * time.Millisecond, 1 * time.Second, 5 * time.Second,
		},
		FlushWindows: []time.Duration{
			500 * time.Millisecond, 2 * time.Second, 5 * time.Second,
		},
	}
}

// event is a timestamped occurrence in virtual time.
type event struct {
	t    time.Time
	hash string
}

// RunSweep replays the edit trace in virtual time under every strategy
// configuration and reports the resulting publication behaviour.
func RunSweep(cfg SweepConfig) ([]SweepResult, error) {
	if cfg.SettleWindow <= 0 {
		cfg.SettleWindow = time.Second
	}
	var results []SweepResult

	run := func(s Strategy, param time.Duration) error {
		r, err := runOne(cfg, s, param)
		if err != nil {
			return err
		}
		results = append(results, r)
		return nil
	}

	if err := run(StrategyChangeDriven, 0); err != nil {
		return nil, err
	}
	for _, p := range cfg.PollIntervals {
		if err := run(StrategyPoll, p); err != nil {
			return nil, err
		}
	}
	for _, to := range cfg.Timeouts {
		if err := run(StrategyStableTimeout, to); err != nil {
			return nil, err
		}
	}
	for _, w := range cfg.FlushWindows {
		if err := run(StrategyCoalescedStore, w); err != nil {
			return nil, err
		}
	}
	return results, nil
}

func runOne(cfg SweepConfig, s Strategy, param time.Duration) (SweepResult, error) {
	clk := clock.NewFake()
	class := dyn.NewClass("Sweep")
	id, err := class.AddMethod(dyn.MethodSpec{Name: "op", Result: dyn.Int32T, Distributed: true})
	if err != nil {
		return SweepResult{}, err
	}

	var pubs []event
	var changes []event
	recordPub := func(hash string) {
		pubs = append(pubs, event{t: clk.Now(), hash: hash})
	}

	// Track interface changes in virtual time.
	unsub := class.Subscribe(func(ev dyn.ChangeEvent) {
		if ev.InterfaceAffecting {
			changes = append(changes, event{t: clk.Now(), hash: class.Interface().Hash()})
		}
	})
	defer unsub()

	var pub *core.DLPublisher
	var cancelStrategy func()
	switch s {
	case StrategyChangeDriven:
		lastPublished := class.Interface().Hash()
		cancelStrategy = class.Subscribe(func(ev dyn.ChangeEvent) {
			if !ev.InterfaceAffecting {
				return
			}
			h := class.Interface().Hash()
			if h != lastPublished {
				lastPublished = h
				recordPub(h)
			}
		})
	case StrategyPoll:
		lastPublished := class.Interface().Hash()
		stopped := false
		var poll func()
		poll = func() {
			if stopped {
				return
			}
			if h := class.Interface().Hash(); h != lastPublished {
				lastPublished = h
				recordPub(h)
			}
			clk.AfterFunc(param, poll)
		}
		clk.AfterFunc(param, poll)
		cancelStrategy = func() { stopped = true }
	case StrategyStableTimeout:
		pub = core.NewDLPublisher(class, param, clk, func(desc dyn.InterfaceDescriptor) error {
			recordPub(desc.Hash())
			return nil
		})
		cancelStrategy = pub.Close
	case StrategyCoalescedStore:
		// The new publication seam: the DL Publisher publishes into the
		// coalescing store; only committed store versions count as
		// publications (that is what clients and watchers can observe).
		store := core.NewStore(param, clk)
		unsubStore := store.Subscribe(func(ev core.StoreEvent) {
			recordPub(ev.Doc.Content)
		})
		pub = core.NewDLPublisher(class, coalescedStableTimeout, clk, func(desc dyn.InterfaceDescriptor) error {
			store.PublishVersioned("/doc", "text/plain", desc.Hash(), desc.Version)
			return nil
		})
		pub.SetFlush(store.Flush)
		cancelStrategy = func() {
			pub.Close()
			store.Flush()
			unsubStore()
			store.Close()
		}
	default:
		return SweepResult{}, fmt.Errorf("experiments: unknown strategy %d", s)
	}

	// Replay the trace in virtual time. Timers that fall inside a delay
	// are advanced-to exactly, and any resulting asynchronous generation
	// is drained before time moves on, so publication timestamps are
	// exact in virtual time.
	trace := workload.Generate(cfg.Trace)
	for i, e := range trace {
		advanceDraining(clk, pub, e.Delay)
		if _, err := workload.Apply(class, id, e, i); err != nil {
			cancelStrategy()
			return SweepResult{}, err
		}
	}
	// Flush: let any pending timer/poll fire.
	flush := cfg.SettleWindow
	if param > flush {
		flush = param
	}
	advanceDraining(clk, pub, 2*flush)
	cancelStrategy()

	// Interface edits = actual interface-affecting change events. An edit
	// that leaves the interface descriptor unchanged (e.g. toggling a flag
	// to its current state) does not count, matching how the SDE's change
	// detection sees the world.
	return summarizeSweep(s, param, len(changes), changes, pubs, cfg.SettleWindow, class.Interface().Hash()), nil
}

// waitPublisher lets an in-flight DLPublisher generation finish so virtual
// timestamps stay deterministic.
func waitPublisher(p *core.DLPublisher) {
	if p == nil {
		return
	}
	for p.Busy() {
		runtime.Gosched()
	}
}

// advanceDraining advances virtual time by d, stopping at each pending
// timer deadline to drain any generation the expiry started, so events are
// recorded at the virtual instant they logically occur.
func advanceDraining(clk *clock.Fake, pub *core.DLPublisher, d time.Duration) {
	for d > 0 {
		step := d
		if ds := clk.Deadlines(); len(ds) > 0 {
			if until := ds[0].Sub(clk.Now()); until >= 0 && until < step {
				step = until
			}
		}
		if step <= 0 {
			step = time.Nanosecond
		}
		clk.Advance(step)
		waitPublisher(pub)
		d -= step
	}
	waitPublisher(pub)
}

func summarizeSweep(s Strategy, param time.Duration, edits int, changes, pubs []event, settle time.Duration, finalHash string) SweepResult {
	r := SweepResult{
		Strategy:       s,
		Param:          param,
		InterfaceEdits: edits,
		Publications:   len(pubs),
	}
	// Transient publications: an interface change lands within the settle
	// window after the publication (the published description was a
	// mid-burst snapshot).
	for _, p := range pubs {
		for _, c := range changes {
			if c.t.After(p.t) && c.t.Sub(p.t) < settle {
				r.TransientPublications++
				break
			}
		}
	}
	// Publication lag over settled edits: time until the published
	// interface matched the edit's interface.
	publishedHashAt := func(t time.Time) string {
		h := ""
		for _, p := range pubs {
			if !p.t.After(t) {
				h = p.hash
			}
		}
		return h
	}
	var lags []time.Duration
	for i, c := range changes {
		settled := true
		for _, c2 := range changes[i+1:] {
			if c2.t.Sub(c.t) < settle {
				settled = false
				break
			}
		}
		if !settled {
			continue
		}
		if publishedHashAt(c.t) == c.hash {
			lags = append(lags, 0)
			continue
		}
		published := false
		for _, p := range pubs {
			if !p.t.Before(c.t) && p.hash == c.hash {
				lags = append(lags, p.t.Sub(c.t))
				published = true
				break
			}
		}
		if !published {
			r.MissedEdits++
		}
	}
	if len(lags) > 0 {
		var total time.Duration
		for _, l := range lags {
			total += l
			if l > r.MaxLag {
				r.MaxLag = l
			}
		}
		r.MeanLag = total / time.Duration(len(lags))
	}
	if len(pubs) > 0 {
		r.FinalCurrent = pubs[len(pubs)-1].hash == finalHash
	}
	return r
}

// FormatSweep renders sweep results as an aligned table.
func FormatSweep(results []SweepResult) string {
	var b strings.Builder
	b.WriteString("Publication-strategy design space (Section 5.6)\n")
	fmt.Fprintf(&b, "%-16s %10s %8s %8s %10s %10s %10s %8s %8s\n",
		"strategy", "param", "edits", "pubs", "transient", "mean lag", "max lag", "missed", "current")
	for _, r := range results {
		fmt.Fprintf(&b, "%-16s %10s %8d %8d %10d %10s %10s %8d %8v\n",
			r.Strategy, r.Param, r.InterfaceEdits, r.Publications,
			r.TransientPublications,
			r.MeanLag.Round(time.Millisecond), r.MaxLag.Round(time.Millisecond),
			r.MissedEdits, r.FinalCurrent)
	}
	return b.String()
}
