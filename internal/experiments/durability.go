package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"livedev/internal/ifsvr"
)

// The durability experiments quantify the two claims of the sharded
// group-commit WAL:
//
//  1. Throughput: a publication acked under SyncGroupCommit is on disk,
//     yet a closed-loop publisher storm keeps a large fraction of the
//     SyncNone (buffered, ack-before-durable) commit rate, because
//     concurrent commits share fsyncs instead of queuing behind them.
//     SyncAlways is the honest lower bound: one fsync per commit.
//
//  2. Recovery: replaying K shard WALs concurrently beats one big log,
//     because each shard goroutine's cold file reads overlap the JSON
//     decode of the others. The trial evicts the page cache first
//     (dropFileCache) so the reads are real; without eviction the
//     experiment would measure memcpy, not recovery.
//
// Durable stores live under os.TempDir; each run cleans up after itself.

// DurabilityConfig parameterizes RunDurabilitySweep.
type DurabilityConfig struct {
	// Publishers is the concurrent publisher count of the throughput
	// storm (default 1024); each publisher owns one path.
	Publishers int
	// Commits is the closed-loop commit count per publisher (default 50).
	Commits int
	// DocBytes is the throughput storm's document size (default 64; see
	// withDefaults for why the storm deliberately commits small documents).
	DocBytes int
	// Shards is the throughput store's WAL shard count (default 2; see
	// withDefaults for why it is deliberately far below Publishers).
	Shards int

	// RecoveryDocs and RecoveryBytes shape the recovery dataset: docs of
	// that content size, all resident in the WAL (snapshot cadence pushed
	// out). Defaults 96 docs x 96 KiB — big enough that reading the log
	// back is real I/O next to decoding it.
	RecoveryDocs  int
	RecoveryBytes int
	// RecoveryShards are the shard counts to time recovery under
	// (default {1, ifsvr.DefaultShards}).
	RecoveryShards []int
	// Trials is how many times each configuration is run; the best trial
	// is reported (max throughput, min recovery time), the usual guard
	// against scheduler and disk noise (default 3).
	Trials int
}

func (c DurabilityConfig) withDefaults() DurabilityConfig {
	if c.Publishers <= 0 {
		c.Publishers = 1024
	}
	if c.Commits <= 0 {
		c.Commits = 50
	}
	if c.DocBytes <= 0 {
		// Edit-sized commits, not whole-interface uploads: the storm
		// isolates per-commit durability overhead (fsync sharing, wakeups),
		// and on a one-CPU host the kernel burns CPU roughly per dirty
		// byte inside each fsync, so large documents would measure disk
		// bandwidth instead. The recovery rows cover the large-document
		// regime.
		c.DocBytes = 64
	}
	if c.Shards <= 0 {
		// One shard, so every concurrent commit shares the same fsync:
		// group commit coalesces per shard, and a one-publisher-per-shard
		// storm would degenerate to SyncAlways. The storm is deliberately
		// wide with small documents — the regime group commit exists for,
		// where the commit CPU of a large group amortizes the fixed fsync
		// cost instead of every commit queuing behind it. Sharding's own
		// payoff (parallel recovery) is measured by the recovery rows.
		c.Shards = 1
	}
	if c.RecoveryDocs <= 0 {
		c.RecoveryDocs = 96
	}
	if c.RecoveryBytes <= 0 {
		c.RecoveryBytes = 96 << 10
	}
	if len(c.RecoveryShards) == 0 {
		c.RecoveryShards = []int{1, ifsvr.DefaultShards}
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	return c
}

// DurabilityResult is one measured configuration: a throughput row
// (OpsPerSec under a sync policy) or a recovery row (Recovery for a shard
// count).
type DurabilityResult struct {
	// Kind is "throughput" or "recovery".
	Kind string
	// Policy is the sync policy of a throughput row ("" on recovery rows).
	Policy ifsvr.SyncPolicy
	// Shards is the WAL shard count.
	Shards int
	// Publishers and Paths describe the throughput storm (0 on recovery
	// rows).
	Publishers int
	Paths      int
	// Commits is the total committed publications (throughput) or the
	// replayed record count (recovery).
	Commits int
	// OpsPerSec is the closed-loop commit rate of a throughput row.
	OpsPerSec float64
	// Recovery is the best-of-Trials cold-cache OpenStore time of a
	// recovery row.
	Recovery time.Duration
	// Fsyncs and BatchMean report the durability backend's fsync count
	// and group-commit batch size over a throughput run.
	Fsyncs    uint64
	BatchMean float64
}

// RunDurabilitySweep measures commit throughput under each sync policy and
// cold-cache recovery time for each configured shard count.
func RunDurabilitySweep(cfg DurabilityConfig) ([]DurabilityResult, error) {
	cfg = cfg.withDefaults()
	var out []DurabilityResult
	for _, policy := range []ifsvr.SyncPolicy{ifsvr.SyncNone, ifsvr.SyncGroupCommit, ifsvr.SyncAlways} {
		var best DurabilityResult
		for trial := 0; trial < cfg.Trials; trial++ {
			r, err := runThroughput(cfg, policy)
			if err != nil {
				return nil, err
			}
			if r.OpsPerSec > best.OpsPerSec {
				best = r
			}
		}
		out = append(out, best)
	}
	for _, k := range cfg.RecoveryShards {
		r, err := runRecovery(cfg, k)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// runThroughput runs the closed-loop publisher storm under one policy.
func runThroughput(cfg DurabilityConfig, policy ifsvr.SyncPolicy) (DurabilityResult, error) {
	dir, err := os.MkdirTemp("", "livedev-durability-*")
	if err != nil {
		return DurabilityResult{}, fmt.Errorf("experiments: durability temp dir: %w", err)
	}
	defer func() { _ = os.RemoveAll(dir) }()
	st, err := ifsvr.OpenStore(ifsvr.StoreConfig{
		Dir:           dir,
		Shards:        cfg.Shards,
		Sync:          policy,
		SnapshotEvery: cfg.Publishers * cfg.Commits * 2, // keep compaction out of the timed window
	})
	if err != nil {
		return DurabilityResult{}, fmt.Errorf("experiments: opening %v store: %w", policy, err)
	}
	content := strings.Repeat("x", cfg.DocBytes)
	drainWriteback() // a prior run's dirty pages must not tax this run's fsyncs
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Publishers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			path := fmt.Sprintf("/wsdl/storm-%02d.wsdl", w)
			for i := 1; i <= cfg.Commits; i++ {
				st.PublishVersioned(path, "text/xml", content, uint64(i))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	res := DurabilityResult{
		Kind:       "throughput",
		Policy:     policy,
		Shards:     cfg.Shards,
		Publishers: cfg.Publishers,
		Paths:      cfg.Publishers,
		Commits:    cfg.Publishers * cfg.Commits,
	}
	res.OpsPerSec = float64(res.Commits) / elapsed.Seconds()
	if d := st.Stats().Durability; d != nil {
		res.Fsyncs = d.Fsyncs
		res.BatchMean = d.GroupCommitMean()
	}
	if err := st.Crash(); err != nil {
		return DurabilityResult{}, fmt.Errorf("experiments: closing %v store: %w", policy, err)
	}
	return res, nil
}

// runRecovery builds one WAL-resident dataset under k shards, then times
// cold-cache OpenStore, best of cfg.Trials.
func runRecovery(cfg DurabilityConfig, k int) (DurabilityResult, error) {
	dir, err := os.MkdirTemp("", "livedev-durability-*")
	if err != nil {
		return DurabilityResult{}, fmt.Errorf("experiments: durability temp dir: %w", err)
	}
	defer func() { _ = os.RemoveAll(dir) }()
	st, err := ifsvr.OpenStore(ifsvr.StoreConfig{
		Dir:           dir,
		Shards:        k,
		SnapshotEvery: cfg.RecoveryDocs * 2, // everything stays in the WAL
	})
	if err != nil {
		return DurabilityResult{}, fmt.Errorf("experiments: opening %d-shard store: %w", k, err)
	}
	content := strings.Repeat("y", cfg.RecoveryBytes)
	for i := 0; i < cfg.RecoveryDocs; i++ {
		st.Publish(fmt.Sprintf("/wsdl/recovery-%04d.wsdl", i), "text/xml", content)
	}
	// Crash, not Close: a close would compact the WAL into snapshots and
	// there would be nothing left to replay.
	if err := st.Crash(); err != nil {
		return DurabilityResult{}, fmt.Errorf("experiments: crashing %d-shard store: %w", k, err)
	}

	best := time.Duration(0)
	for trial := 0; trial < cfg.Trials; trial++ {
		drainWriteback()
		if err := evictDir(dir); err != nil {
			return DurabilityResult{}, err
		}
		start := time.Now()
		st, err := ifsvr.OpenStore(ifsvr.StoreConfig{Dir: dir, Shards: k, SnapshotEvery: cfg.RecoveryDocs * 2})
		if err != nil {
			return DurabilityResult{}, fmt.Errorf("experiments: recovering %d-shard store: %w", k, err)
		}
		elapsed := time.Since(start)
		if n := len(st.Paths()); n != cfg.RecoveryDocs {
			_ = st.Crash()
			return DurabilityResult{}, fmt.Errorf("experiments: %d-shard recovery yielded %d docs, want %d", k, n, cfg.RecoveryDocs)
		}
		if err := st.Crash(); err != nil {
			return DurabilityResult{}, fmt.Errorf("experiments: closing recovered store: %w", err)
		}
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return DurabilityResult{
		Kind:     "recovery",
		Shards:   k,
		Commits:  cfg.RecoveryDocs,
		Recovery: best,
	}, nil
}

// evictDir flushes and drops every data-dir file from the page cache so the
// next recovery reads from disk.
func evictDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("experiments: listing %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if err := dropFileCache(filepath.Join(dir, e.Name())); err != nil {
			return fmt.Errorf("experiments: evicting %s: %w", e.Name(), err)
		}
	}
	return nil
}

// FormatDurability renders the sweep results as two human-readable tables.
func FormatDurability(rows []DurabilityResult) string {
	var b strings.Builder
	b.WriteString("Durable commit throughput (closed-loop publisher storm)\n")
	fmt.Fprintf(&b, "%-8s %7s %11s %8s %8s %10s\n", "sync", "shards", "publishers", "commits", "fsyncs", "ops/sec")
	for _, r := range rows {
		if r.Kind != "throughput" {
			continue
		}
		fmt.Fprintf(&b, "%-8s %7d %11d %8d %8d %10.0f", r.Policy, r.Shards, r.Publishers, r.Commits, r.Fsyncs, r.OpsPerSec)
		if r.BatchMean > 0 {
			fmt.Fprintf(&b, "  (%.1f commits/fsync)", r.BatchMean)
		}
		b.WriteByte('\n')
	}
	b.WriteString("\nCold-cache recovery (WAL-resident dataset, best of trials)\n")
	fmt.Fprintf(&b, "%7s %8s %12s\n", "shards", "docs", "recovery")
	for _, r := range rows {
		if r.Kind != "recovery" {
			continue
		}
		fmt.Fprintf(&b, "%7d %8d %12s\n", r.Shards, r.Commits, r.Recovery.Round(100*time.Microsecond))
	}
	return b.String()
}
