package experiments

import (
	"os"
	"testing"
)

// TestMain lets the replication fan-out experiment re-exec this test
// binary as its leader/follower child processes: ReplicationChild runs
// the child role and exits when the re-exec env var is set, and is a
// no-op for an ordinary test run.
func TestMain(m *testing.M) {
	ReplicationChild()
	os.Exit(m.Run())
}
