package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"livedev/internal/ifsvr"
)

// The watcher fan-out experiment: how long after a committed edit have ALL
// of N concurrent watchers observed it, per transport?
//
//   - "poll-<D>": each watcher GETs the document every D — the pre-watch
//     CDE. Latency floors at ~D/2 and the server eats N/D requests per
//     second even when nothing changes.
//   - "long-poll": each watcher parks one request per commit (the PR 3
//     protocol). Latency is a round-trip, but every commit costs N
//     re-requests.
//   - "stream": each watcher holds one SSE connection (this PR). A commit
//     is N event writes on already-open sockets.
//
// Past fanoutChildWatchers the stream server runs as a separate PROCESS
// (re-exec, the same leader child the replication experiment uses): both
// ends of every SSE socket in one fd table blows the descriptor limit,
// and an in-process server would share the Go scheduler with N client
// goroutines, measuring contention instead of fan-out. The
// request-per-round transports are skipped at those sizes — they would
// measure a connect storm, not a transport.

// fanoutChildWatchers is the fan-out size past which the serving store
// moves to a child process and the non-stream transports are skipped.
const fanoutChildWatchers = 2000

// FanoutRow summarizes one (transport, watcher-count) configuration.
type FanoutRow struct {
	// Transport names the watch transport measured.
	Transport string
	// Watchers is the number of concurrent watchers.
	Watchers int
	// Edits is the number of measured edit rounds.
	Edits int
	// Mean, P50, P99, and Max summarize the edit→all-notified latency: the
	// time from the commit until the LAST watcher has observed the new
	// version.
	Mean, P50, P99, Max time.Duration
}

// FanoutConfig parameterizes the fan-out experiment.
type FanoutConfig struct {
	// Watchers lists the fan-out sizes to measure (default 1, 100, 1000).
	Watchers []int
	// Edits is the number of edit rounds per configuration (default 5).
	Edits int
	// PollInterval is the polling transport's fetch interval (default
	// 25ms).
	PollInterval time.Duration
	// Transports restricts the run ("poll", "long-poll", "stream"); empty
	// means all three.
	Transports []string
	// Payload pads each published document to roughly this many bytes
	// (default 0: the tiny "<vN/>" form, so the numbers measure the
	// transport, not the payload).
	Payload int
}

func (c FanoutConfig) withDefaults() FanoutConfig {
	if len(c.Watchers) == 0 {
		c.Watchers = []int{1, 100, 1000}
	}
	if c.Edits <= 0 {
		c.Edits = 5
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 25 * time.Millisecond
	}
	if len(c.Transports) == 0 {
		c.Transports = []string{"poll", "long-poll", "stream"}
	}
	return c
}

// FanoutStallConfig parameterizes the stalled-watcher torture run.
type FanoutStallConfig struct {
	// Watchers is the healthy stream-watcher population (default 10000).
	Watchers int
	// Edits is the number of measured edit rounds (default 8).
	Edits int
	// Payload pads each published document to roughly this many bytes
	// (default 16384) so the stalled connection's socket buffers actually
	// fill.
	Payload int
}

func (c FanoutStallConfig) withDefaults() FanoutStallConfig {
	if c.Watchers <= 0 {
		c.Watchers = 10000
	}
	if c.Edits <= 0 {
		c.Edits = 8
	}
	if c.Payload <= 0 {
		c.Payload = 16384
	}
	return c
}

// RunWatchFanout measures the edit→all-notified latency of each transport
// at each fan-out size. Every configuration gets a fresh store and HTTP
// view.
func RunWatchFanout(cfg FanoutConfig) ([]FanoutRow, error) {
	cfg = cfg.withDefaults()
	var rows []FanoutRow
	for _, transport := range cfg.Transports {
		for _, n := range cfg.Watchers {
			if transport != "stream" && n >= fanoutChildWatchers {
				continue
			}
			row, err := runFanoutOne(transport, n, cfg, false, "")
			if err != nil {
				return nil, fmt.Errorf("experiments: fan-out %s/%d: %w", transport, n, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RunFanoutStall measures backpressure isolation: the edit→all-notified
// latency of N healthy stream watchers, once on its own ("stream-base")
// and once with a stalled client — a connection that completes the SSE
// request and then never reads — sharing the server ("stream-stall"). If
// the delivery pumps isolate the stall, the two rows match; under the old
// push-per-commit fan-out the stalled socket would have dragged every
// healthy watcher down with it.
func RunFanoutStall(cfg FanoutStallConfig) ([]FanoutRow, error) {
	cfg = cfg.withDefaults()
	fc := FanoutConfig{Edits: cfg.Edits, Payload: cfg.Payload}
	var rows []FanoutRow
	for _, run := range []struct {
		label string
		stall bool
	}{{"stream-base", false}, {"stream-stall", true}} {
		row, err := runFanoutOne("stream", cfg.Watchers, fc, run.stall, run.label)
		if err != nil {
			return nil, fmt.Errorf("experiments: fan-out %s/%d: %w", run.label, cfg.Watchers, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// fanoutDoc renders the published document body for one version. A zero
// payload keeps the tiny "<vN/>" form; a positive payload pads the body
// to roughly that many bytes so the socket writes carry real weight.
func fanoutDoc(version uint64, payload int) string {
	head := fmt.Sprintf("<v%d>", version)
	tail := fmt.Sprintf("</v%d>", version)
	if payload <= len(head)+len(tail) {
		return fmt.Sprintf("<v%d/>", version)
	}
	return head + strings.Repeat("x", payload-len(head)-len(tail)) + tail
}

// openStalledStream opens a raw SSE request against the server and never
// reads the response — a frozen client. The shrunken receive buffer makes
// the kernel's flow control bite after a few events instead of a few
// hundred, so the server's write deadline (its backpressure valve) is
// actually exercised.
func openStalledStream(base, path string) (net.Conn, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, err
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4096)
	}
	req := fmt.Sprintf("GET %s?watch=stream&after=0 HTTP/1.1\r\nHost: %s\r\nAccept: text/event-stream\r\n\r\n", path, u.Host)
	if _, err := conn.Write([]byte(req)); err != nil {
		_ = conn.Close()
		return nil, err
	}
	return conn, nil
}

func runFanoutOne(transport string, watchers int, cfg FanoutConfig, stall bool, label string) (FanoutRow, error) {
	raiseFDLimit(uint64(watchers) + 1024)

	// The serving side: in-process for small populations, a re-exec'd
	// child process (the replication experiment's leader role) past
	// fanoutChildWatchers.
	var (
		path    string
		base    string
		publish func(v uint64) error
		cleanup func()
	)
	if transport == "stream" && watchers >= fanoutChildWatchers {
		child, err := spawnReplChild("leader", "")
		if err != nil {
			return FanoutRow{}, err
		}
		path = replPath
		base = child.base
		publish = func(v uint64) error {
			_, err := fmt.Fprintf(child.stdin, "%d %d\n", v, cfg.Payload)
			return err
		}
		cleanup = child.stop
	} else {
		st := ifsvr.NewStore(0, nil)
		srv := ifsvr.NewView(st)
		b, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return FanoutRow{}, err
		}
		path = "/wsdl/Fanout.wsdl"
		base = b
		st.PublishVersioned(path, "text/xml", fanoutDoc(1, cfg.Payload), 1)
		publish = func(v uint64) error {
			st.PublishVersioned(path, "text/xml", fanoutDoc(v, cfg.Payload), v)
			return nil
		}
		cleanup = func() {
			st.Close()
			_ = srv.Close()
		}
	}
	defer cleanup()
	docURL := base + path

	// One shared client with enough connection capacity for N concurrent
	// watchers; no client-level timeout (streams and long-polls are long by
	// design).
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = watchers + 4
	hc := &http.Client{Transport: tr}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() {
		cancel()
		wg.Wait()
	}()

	// Each watcher exposes the newest version it has observed; the
	// publisher side spins on these to time "all notified".
	seen := make([]atomic.Uint64, watchers)
	ready := make(chan struct{}, watchers)
	for w := 0; w < watchers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cur := seen[w].Load()
			first := true
			markReady := func() {
				if first {
					ready <- struct{}{}
					first = false
				}
			}
			switch transport {
			case "stream":
				for ctx.Err() == nil {
					markReady()
					_ = ifsvr.WatchStream(ctx, hc, docURL, 0, func(ev ifsvr.StreamEvent) {
						if ev.Doc.Version > seen[w].Load() {
							seen[w].Store(ev.Doc.Version)
						}
					})
				}
			case "long-poll":
				for ctx.Err() == nil {
					markReady()
					d, err := ifsvr.WatchNewer(ctx, hc, docURL, cur)
					if err != nil {
						continue
					}
					cur = d.Version
					seen[w].Store(cur)
				}
			case "poll":
				t := time.NewTicker(cfg.PollInterval)
				defer t.Stop()
				for {
					markReady()
					select {
					case <-ctx.Done():
						return
					case <-t.C:
					}
					d, err := ifsvr.FetchContext(ctx, hc, docURL)
					if err == nil && d.Version > seen[w].Load() {
						seen[w].Store(d.Version)
					}
				}
			}
		}(w)
	}
	for w := 0; w < watchers; w++ {
		select {
		case <-ready:
		case <-time.After(30 * time.Second):
			return FanoutRow{}, fmt.Errorf("watchers did not start")
		}
	}
	// Wait for every watcher to have actually connected and observed the
	// seed version, so edit 1 times the fan-out and not the connect ramp
	// (at 10k watchers the ramp dwarfs any single edit).
	seedDeadline := time.Now().Add(120 * time.Second)
	for {
		all := true
		for w := range seen {
			if seen[w].Load() < 1 {
				all = false
				break
			}
		}
		if all {
			break
		}
		if time.Now().After(seedDeadline) {
			return FanoutRow{}, fmt.Errorf("watchers never observed the seed version")
		}
		time.Sleep(time.Millisecond)
	}

	if stall {
		stalled, err := openStalledStream(base, path)
		if err != nil {
			return FanoutRow{}, err
		}
		defer func() { _ = stalled.Close() }()
		// Let the server accept the stalled stream before the edit storm.
		time.Sleep(100 * time.Millisecond)
	}

	var latencies []time.Duration
	version := uint64(1)
	for e := 0; e < cfg.Edits; e++ {
		version++
		start := time.Now()
		if err := publish(version); err != nil {
			return FanoutRow{}, fmt.Errorf("publishing version %d: %w", version, err)
		}
		deadline := start.Add(60 * time.Second)
		for {
			all := true
			for w := range seen {
				if seen[w].Load() < version {
					all = false
					break
				}
			}
			if all {
				break
			}
			if time.Now().After(deadline) {
				return FanoutRow{}, fmt.Errorf("edit %d: not all watchers converged on version %d", e+1, version)
			}
			time.Sleep(100 * time.Microsecond)
		}
		latencies = append(latencies, time.Since(start))
	}

	name := label
	if name == "" {
		name = transport
		if transport == "poll" {
			name = fmt.Sprintf("poll-%s", cfg.PollInterval)
		}
	}
	row := FanoutRow{Transport: name, Watchers: watchers, Edits: len(latencies)}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, l := range sorted {
		total += l
	}
	row.Mean = total / time.Duration(len(sorted))
	row.P50 = sorted[len(sorted)/2]
	row.P99 = sorted[len(sorted)*99/100]
	row.Max = sorted[len(sorted)-1]
	return row, nil
}

// FormatFanout renders the fan-out rows as an aligned table.
func FormatFanout(rows []FanoutRow) string {
	var b strings.Builder
	b.WriteString("Watcher fan-out: edit→all-notified latency per transport\n")
	fmt.Fprintf(&b, "%-14s %9s %6s %12s %12s %12s %12s\n", "transport", "watchers", "edits", "mean", "p50", "p99", "max")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9d %6d %12s %12s %12s %12s\n",
			r.Transport, r.Watchers, r.Edits,
			r.Mean.Round(10*time.Microsecond), r.P50.Round(10*time.Microsecond),
			r.P99.Round(10*time.Microsecond), r.Max.Round(10*time.Microsecond))
	}
	return b.String()
}
