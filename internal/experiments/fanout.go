package experiments

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"livedev/internal/ifsvr"
)

// The watcher fan-out experiment: how long after a committed edit have ALL
// of N concurrent watchers observed it, per transport?
//
//   - "poll-<D>": each watcher GETs the document every D — the pre-watch
//     CDE. Latency floors at ~D/2 and the server eats N/D requests per
//     second even when nothing changes.
//   - "long-poll": each watcher parks one request per commit (the PR 3
//     protocol). Latency is a round-trip, but every commit costs N
//     re-requests.
//   - "stream": each watcher holds one SSE connection (this PR). A commit
//     is N event writes on already-open sockets.

// FanoutRow summarizes one (transport, watcher-count) configuration.
type FanoutRow struct {
	// Transport names the watch transport measured.
	Transport string
	// Watchers is the number of concurrent watchers.
	Watchers int
	// Edits is the number of measured edit rounds.
	Edits int
	// Mean, P50, and Max summarize the edit→all-notified latency: the time
	// from the commit until the LAST watcher has observed the new version.
	Mean, P50, Max time.Duration
}

// FanoutConfig parameterizes the fan-out experiment.
type FanoutConfig struct {
	// Watchers lists the fan-out sizes to measure (default 1, 100, 1000).
	Watchers []int
	// Edits is the number of edit rounds per configuration (default 5).
	Edits int
	// PollInterval is the polling transport's fetch interval (default
	// 25ms).
	PollInterval time.Duration
	// Transports restricts the run ("poll", "long-poll", "stream"); empty
	// means all three.
	Transports []string
}

func (c FanoutConfig) withDefaults() FanoutConfig {
	if len(c.Watchers) == 0 {
		c.Watchers = []int{1, 100, 1000}
	}
	if c.Edits <= 0 {
		c.Edits = 5
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 25 * time.Millisecond
	}
	if len(c.Transports) == 0 {
		c.Transports = []string{"poll", "long-poll", "stream"}
	}
	return c
}

// RunWatchFanout measures the edit→all-notified latency of each transport
// at each fan-out size. Every configuration gets a fresh store and HTTP
// view; the document is tiny so the numbers measure the transport, not the
// payload.
func RunWatchFanout(cfg FanoutConfig) ([]FanoutRow, error) {
	cfg = cfg.withDefaults()
	var rows []FanoutRow
	for _, transport := range cfg.Transports {
		for _, n := range cfg.Watchers {
			row, err := runFanoutOne(transport, n, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: fan-out %s/%d: %w", transport, n, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runFanoutOne(transport string, watchers int, cfg FanoutConfig) (FanoutRow, error) {
	st := ifsvr.NewStore(0, nil)
	srv := ifsvr.NewView(st)
	base, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return FanoutRow{}, err
	}
	defer func() {
		st.Close()
		_ = srv.Close()
	}()
	const path = "/wsdl/Fanout.wsdl"
	url := base + path
	st.PublishVersioned(path, "text/xml", "<v1/>", 1)

	// One shared client with enough connection capacity for N concurrent
	// watchers; no client-level timeout (streams and long-polls are long by
	// design).
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = watchers + 4
	hc := &http.Client{Transport: tr}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() {
		cancel()
		wg.Wait()
	}()

	// Each watcher exposes the newest version it has observed; the
	// publisher side spins on these to time "all notified".
	seen := make([]atomic.Uint64, watchers)
	ready := make(chan struct{}, watchers)
	for w := 0; w < watchers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cur := seen[w].Load()
			first := true
			markReady := func() {
				if first {
					ready <- struct{}{}
					first = false
				}
			}
			switch transport {
			case "stream":
				for ctx.Err() == nil {
					markReady()
					_ = ifsvr.WatchStream(ctx, hc, url, 0, func(ev ifsvr.StreamEvent) {
						if ev.Doc.Version > seen[w].Load() {
							seen[w].Store(ev.Doc.Version)
						}
					})
				}
			case "long-poll":
				for ctx.Err() == nil {
					markReady()
					d, err := ifsvr.WatchNewer(ctx, hc, url, cur)
					if err != nil {
						continue
					}
					cur = d.Version
					seen[w].Store(cur)
				}
			case "poll":
				t := time.NewTicker(cfg.PollInterval)
				defer t.Stop()
				for {
					markReady()
					select {
					case <-ctx.Done():
						return
					case <-t.C:
					}
					d, err := ifsvr.FetchContext(ctx, hc, url)
					if err == nil && d.Version > seen[w].Load() {
						seen[w].Store(d.Version)
					}
				}
			}
		}(w)
	}
	for w := 0; w < watchers; w++ {
		select {
		case <-ready:
		case <-time.After(30 * time.Second):
			return FanoutRow{}, fmt.Errorf("watchers did not start")
		}
	}
	// Give parked transports a moment to actually connect before edit 1.
	time.Sleep(50 * time.Millisecond)

	var latencies []time.Duration
	version := uint64(1)
	for e := 0; e < cfg.Edits; e++ {
		version++
		start := time.Now()
		st.PublishVersioned(path, "text/xml", fmt.Sprintf("<v%d/>", version), version)
		deadline := start.Add(60 * time.Second)
		for {
			all := true
			for w := range seen {
				if seen[w].Load() < version {
					all = false
					break
				}
			}
			if all {
				break
			}
			if time.Now().After(deadline) {
				return FanoutRow{}, fmt.Errorf("edit %d: not all watchers converged on version %d", e+1, version)
			}
			time.Sleep(100 * time.Microsecond)
		}
		latencies = append(latencies, time.Since(start))
	}

	name := transport
	if transport == "poll" {
		name = fmt.Sprintf("poll-%s", cfg.PollInterval)
	}
	row := FanoutRow{Transport: name, Watchers: watchers, Edits: len(latencies)}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, l := range sorted {
		total += l
	}
	row.Mean = total / time.Duration(len(sorted))
	row.P50 = sorted[len(sorted)/2]
	row.Max = sorted[len(sorted)-1]
	return row, nil
}

// FormatFanout renders the fan-out rows as an aligned table.
func FormatFanout(rows []FanoutRow) string {
	var b strings.Builder
	b.WriteString("Watcher fan-out: edit→all-notified latency per transport\n")
	fmt.Fprintf(&b, "%-12s %9s %6s %12s %12s %12s\n", "transport", "watchers", "edits", "mean", "p50", "max")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9d %6d %12s %12s %12s\n",
			r.Transport, r.Watchers, r.Edits,
			r.Mean.Round(10*time.Microsecond), r.P50.Round(10*time.Microsecond), r.Max.Round(10*time.Microsecond))
	}
	return b.String()
}
