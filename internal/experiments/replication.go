package experiments

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"livedev/internal/ifsvr"
	"livedev/internal/repl"
)

// The replication fan-out experiment: does adding read-only replicas keep
// the edit→all-notified latency flat as the watcher population grows past
// what one server comfortably holds? N SSE watchers are spread
// round-robin across a leader and R-1 followers; each edit is timed until
// the LAST watcher (on any replica) has observed it, and separately until
// each follower's store serves it (the WAL-shipping lag).
//
// The leader and every follower run as separate PROCESSES (the
// experiment binary re-execs itself, see ReplicationChild): that is both
// the honest deployment shape — replicas exist to put another machine's
// kernel behind the watchers — and a practical necessity, since a
// 10k-watcher population holds both socket ends of every SSE stream,
// which no single process fits under a typical file-descriptor limit.
// The parent process holds only the client ends.

// replChildEnv selects the child role when the experiment binary
// re-execs itself; replLeaderEnv hands a follower child its leader URL.
const (
	replChildEnv  = "LIVEDEV_REPL_CHILD"
	replLeaderEnv = "LIVEDEV_REPL_LEADER"
	replPath      = "/wsdl/Repl.wsdl"
)

// ReplicationRow summarizes one replica-count configuration.
type ReplicationRow struct {
	// Replicas is the number of serving replicas (leader included).
	Replicas int
	// Watchers is the total SSE watcher population, spread round-robin.
	Watchers int
	// Edits is the number of measured edit rounds.
	Edits int
	// Mean, P50, and Max summarize the edit→all-notified latency across
	// the whole plane.
	Mean, P50, Max time.Duration
	// LagP50 and LagP99 summarize the per-follower replication lag: the
	// time from the leader commit until a follower's store serves the new
	// version (zero with no followers).
	LagP50, LagP99 time.Duration
}

// ReplicationConfig parameterizes the replication fan-out experiment.
type ReplicationConfig struct {
	// Replicas lists the replica counts to measure (default 1, 2, 4).
	Replicas []int
	// Watchers is the total watcher population (default 1000).
	Watchers int
	// Edits is the number of edit rounds per configuration (default 5).
	Edits int
}

func (c ReplicationConfig) withDefaults() ReplicationConfig {
	if len(c.Replicas) == 0 {
		c.Replicas = []int{1, 2, 4}
	}
	if c.Watchers <= 0 {
		c.Watchers = 1000
	}
	if c.Edits <= 0 {
		c.Edits = 5
	}
	return c
}

// ReplicationChild runs the leader/follower child role and exits when
// the re-exec environment variable is set; it returns immediately
// otherwise. Binaries that call RunReplicationFanout must call this
// first thing in main (the experiments test binary does it in TestMain).
func ReplicationChild() {
	switch os.Getenv(replChildEnv) {
	case "":
		return
	case "leader":
		runReplicationLeaderChild()
	case "follower":
		runReplicationFollowerChild(os.Getenv(replLeaderEnv))
	}
	os.Exit(0)
}

// runReplicationLeaderChild serves a fresh store (WAL-tail endpoint
// attached), prints its base URL, then publishes one version per line
// read from stdin until EOF. A line is "V" or "V SIZE": the version to
// publish, optionally padded to roughly SIZE bytes (the fan-out stall
// experiment publishes fat documents through the same child).
func runReplicationLeaderChild() {
	st := ifsvr.NewStore(0, nil)
	srv := ifsvr.NewView(st)
	base, err := srv.Start("127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "repl leader child:", err)
		os.Exit(1)
	}
	tail := repl.Attach(st, srv, repl.TailConfig{})
	defer tail.Close()
	st.PublishVersioned(replPath, "text/xml", "<v1/>", 1)
	fmt.Println(base)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		v, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil || v == 0 {
			continue
		}
		payload := 0
		if len(fields) > 1 {
			if p, perr := strconv.Atoi(fields[1]); perr == nil && p > 0 {
				payload = p
			}
		}
		st.PublishVersioned(replPath, "text/xml", fanoutDoc(v, payload), v)
	}
	st.Close()
	_ = srv.Close()
}

// runReplicationFollowerChild follows the given leader, prints its base
// URL, and serves until stdin closes (the parent going away).
func runReplicationFollowerChild(leader string) {
	f, err := repl.OpenFollower(repl.FollowerConfig{Leader: leader})
	if err != nil {
		fmt.Fprintln(os.Stderr, "repl follower child:", err)
		os.Exit(1)
	}
	base, err := f.Serve("127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "repl follower child:", err)
		os.Exit(1)
	}
	fmt.Println(base)
	_, _ = io.Copy(io.Discard, os.Stdin)
	f.Close()
}

// replChild is one spawned replica process.
type replChild struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	base  string
}

// spawnReplChild re-execs the current binary as a replica child and
// reads the base URL it announces.
func spawnReplChild(role, leader string) (*replChild, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), replChildEnv+"="+role, replLeaderEnv+"="+leader)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	lines := make(chan string, 1)
	go func() {
		line, err := bufio.NewReader(stdout).ReadString('\n')
		if err == nil {
			lines <- strings.TrimSpace(line)
		}
		close(lines)
	}()
	select {
	case base, ok := <-lines:
		if !ok || base == "" {
			_ = cmd.Process.Kill()
			return nil, fmt.Errorf("%s child announced no base URL", role)
		}
		return &replChild{cmd: cmd, stdin: stdin, base: base}, nil
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("%s child did not start", role)
	}
}

// stop closes the child's stdin (its exit signal) and reaps it.
func (c *replChild) stop() {
	_ = c.stdin.Close()
	done := make(chan struct{})
	go func() { _ = c.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		_ = c.cmd.Process.Kill()
		<-done
	}
}

// RunReplicationFanout measures the watch plane at each replica count.
// Every configuration gets a fresh leader process and R-1 fresh follower
// processes. The parent still holds one client socket per watcher, so
// the soft file-descriptor limit is raised best-effort first.
func RunReplicationFanout(cfg ReplicationConfig) ([]ReplicationRow, error) {
	cfg = cfg.withDefaults()
	raiseFDLimit(uint64(2*cfg.Watchers + 256))
	var rows []ReplicationRow
	for _, r := range cfg.Replicas {
		row, err := runReplicationOne(r, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: replication %d replicas: %w", r, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runReplicationOne(replicas int, cfg ReplicationConfig) (ReplicationRow, error) {
	leader, err := spawnReplChild("leader", "")
	if err != nil {
		return ReplicationRow{}, err
	}
	children := []*replChild{leader}
	defer func() {
		for _, c := range children {
			c.stop()
		}
	}()
	endpoints := []string{leader.base}
	for i := 1; i < replicas; i++ {
		f, err := spawnReplChild("follower", leader.base)
		if err != nil {
			return ReplicationRow{}, err
		}
		children = append(children, f)
		endpoints = append(endpoints, f.base)
	}
	followers := endpoints[1:]

	// A small client for store-convergence polling, and a big one with
	// connection capacity for the whole watcher population (no client
	// timeout: SSE streams are long by design).
	lagHC := &http.Client{Timeout: 5 * time.Second}
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = cfg.Watchers + 4
	hc := &http.Client{Transport: tr}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() {
		cancel()
		wg.Wait()
	}()

	// Wait for every follower to have bootstrapped the seed document
	// before aiming watchers at it.
	for _, f := range followers {
		if err := awaitVersion(ctx, lagHC, f+replPath, 1, 30*time.Second); err != nil {
			return ReplicationRow{}, err
		}
	}

	seen := make([]atomic.Uint64, cfg.Watchers)
	ready := make(chan struct{}, cfg.Watchers)
	for w := 0; w < cfg.Watchers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			url := endpoints[w%len(endpoints)] + replPath
			first := true
			for ctx.Err() == nil {
				if first {
					ready <- struct{}{}
					first = false
				}
				_ = ifsvr.WatchStream(ctx, hc, url, 0, func(ev ifsvr.StreamEvent) {
					if ev.Doc.Version > seen[w].Load() {
						seen[w].Store(ev.Doc.Version)
					}
				})
			}
		}(w)
	}
	for w := 0; w < cfg.Watchers; w++ {
		select {
		case <-ready:
		case <-time.After(60 * time.Second):
			return ReplicationRow{}, fmt.Errorf("watchers did not start")
		}
	}
	time.Sleep(100 * time.Millisecond)

	var latencies, lags []time.Duration
	version := uint64(1)
	for e := 0; e < cfg.Edits; e++ {
		version++
		start := time.Now()
		if _, err := fmt.Fprintf(leader.stdin, "%d\n", version); err != nil {
			return ReplicationRow{}, fmt.Errorf("leader child went away: %w", err)
		}

		// Per-follower store-convergence lag, polled concurrently with
		// the watcher spin below.
		lagCh := make(chan time.Duration, len(followers))
		for _, f := range followers {
			go func(url string) {
				if err := awaitVersion(ctx, lagHC, url, version, 120*time.Second); err != nil {
					lagCh <- -1
					return
				}
				lagCh <- time.Since(start)
			}(f + replPath)
		}

		deadline := start.Add(120 * time.Second)
		for {
			all := true
			for w := range seen {
				if seen[w].Load() < version {
					all = false
					break
				}
			}
			if all {
				break
			}
			if time.Now().After(deadline) {
				return ReplicationRow{}, fmt.Errorf("edit %d: not all watchers converged on version %d", e+1, version)
			}
			time.Sleep(100 * time.Microsecond)
		}
		latencies = append(latencies, time.Since(start))
		for range followers {
			lag := <-lagCh
			if lag < 0 {
				return ReplicationRow{}, fmt.Errorf("edit %d: a follower store never converged on version %d", e+1, version)
			}
			lags = append(lags, lag)
		}
	}

	row := ReplicationRow{Replicas: replicas, Watchers: cfg.Watchers, Edits: len(latencies)}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, l := range sorted {
		total += l
	}
	row.Mean = total / time.Duration(len(sorted))
	row.P50 = sorted[len(sorted)/2]
	row.Max = sorted[len(sorted)-1]
	if len(lags) > 0 {
		sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
		row.LagP50 = lags[len(lags)/2]
		row.LagP99 = lags[len(lags)*99/100]
	}
	return row, nil
}

// awaitVersion polls url until the served document reaches version v.
func awaitVersion(ctx context.Context, hc *http.Client, url string, v uint64, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		doc, err := ifsvr.FetchContext(ctx, hc, url)
		if err == nil && doc.Version >= v {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s never reached version %d (last err: %v)", url, v, err)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// FormatReplication renders the replication rows as an aligned table.
func FormatReplication(rows []ReplicationRow) string {
	var b strings.Builder
	b.WriteString("Replication fan-out: edit→all-notified latency across the replica plane\n")
	fmt.Fprintf(&b, "%9s %9s %6s %12s %12s %12s %12s %12s\n",
		"replicas", "watchers", "edits", "mean", "p50", "max", "lag p50", "lag p99")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9d %9d %6d %12s %12s %12s %12s %12s\n",
			r.Replicas, r.Watchers, r.Edits,
			r.Mean.Round(10*time.Microsecond), r.P50.Round(10*time.Microsecond), r.Max.Round(10*time.Microsecond),
			r.LagP50.Round(10*time.Microsecond), r.LagP99.Round(10*time.Microsecond))
	}
	return b.String()
}
