//go:build !linux

package experiments

// dropFileCache is a no-op where page-cache eviction is unsupported: the
// recovery trials then measure warm-cache replay, which still orders the
// shard counts but compresses the gap between them.
func dropFileCache(string) error { return nil }

// drainWriteback is a no-op without sync(2).
func drainWriteback() {}
