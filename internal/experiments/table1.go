// Package experiments contains the harnesses that regenerate the paper's
// quantitative artifacts: Table 1 (RTT comparison of SDE vs. static
// servers over SOAP and CORBA), the Figure 7/8 consistency matrices, the
// Section 5.6 publication-strategy design-space sweep, and the
// Section 5.7 forced-publication latency study. The cmd/ binaries and the
// root bench_test.go are thin wrappers over this package.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"net/http"

	"livedev/internal/core"
	"livedev/internal/dyn"
	"livedev/internal/jsonb"
	"livedev/internal/orb"
	"livedev/internal/soap"
	"livedev/internal/static"
	"livedev/internal/workload"
)

// The JSON binding is wired through the public registry — the Table 1
// harness deploys it exactly like the built-in technologies.
func init() {
	core.RegisterBinding(jsonb.New())
}

// Table1Row is one row of the Table 1 reproduction.
type Table1Row struct {
	// Config matches the paper's "Server/Client" column.
	Config string
	// PaperRTT is the RTT the paper reports for the analogous stack.
	PaperRTT time.Duration
	// Measured summarizes our measured round trips.
	Measured workload.RTTStats
	// AllocsPerOp is the mean number of heap allocations per call,
	// measured process-wide across the measurement rounds — client and
	// in-process server side together, the full invocation pipeline.
	AllocsPerOp float64
	// BytesPerOp is the mean number of heap bytes allocated per call,
	// measured the same way.
	BytesPerOp float64
}

// Table1Config parameterizes the RTT experiment.
type Table1Config struct {
	// Calls is the number of RMI calls per configuration; the paper
	// averaged over one hundred calls.
	Calls int
	// PayloadBytes sizes the echoed string argument.
	PayloadBytes int
}

// DefaultTable1 mirrors the paper: 100 calls, small payload.
func DefaultTable1() Table1Config {
	return Table1Config{Calls: 100, PayloadBytes: 64}
}

// echoOpName is the operation used in the RTT measurement.
const echoOpName = "echo"

func echoClass(name string) *dyn.Class {
	c := dyn.NewClass(name)
	_, _ = c.AddMethod(dyn.MethodSpec{
		Name:        echoOpName,
		Params:      []dyn.Param{{Name: "s", Type: dyn.StringT}},
		Result:      dyn.StringT,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return args[0], nil
		},
	})
	return c
}

func echoOps() []static.Op {
	return []static.Op{{
		Name:   echoOpName,
		Params: []dyn.Param{{Name: "s", Type: dyn.StringT}},
		Result: dyn.StringT,
		Fn: func(args []dyn.Value) (dyn.Value, error) {
			return args[0], nil
		},
	}}
}

func echoSig() dyn.MethodSig {
	return dyn.MethodSig{
		Name:   echoOpName,
		Params: []dyn.Param{{Name: "s", Type: dyn.StringT}},
		Result: dyn.StringT,
	}
}

// RunTable1 measures the four configurations of the paper's Table 1:
//
//	SDE SOAP    / static SOAP client   (paper: SDE SOAP/Axis, 0.58 s)
//	static SOAP / static SOAP client   (paper: Axis-Tomcat/Axis, 0.53 s)
//	SDE CORBA   / static CORBA client  (paper: SDE CORBA/OpenORB, 0.51 s)
//	static CORBA/ static CORBA client  (paper: OpenORB/OpenORB, 0.42 s)
//
// Absolute values are not comparable (the paper measured two 2004-era
// machines over a T1 LAN; we measure loopback TCP), but the shape is:
// CORBA beats SOAP, and each SDE server pays a development-time overhead
// over its static counterpart.
// All four configurations are set up first and then measured in
// interleaved rounds, so slow environmental drift (CPU contention, GC,
// frequency scaling) affects every configuration equally instead of
// biasing whichever happened to run last.
func RunTable1(cfg Table1Config) ([]Table1Row, error) {
	if cfg.Calls <= 0 {
		cfg.Calls = 100
	}
	if cfg.PayloadBytes <= 0 {
		cfg.PayloadBytes = 64
	}
	payload := strings.Repeat("x", cfg.PayloadBytes)

	type setup struct {
		name     string
		paperRTT time.Duration
		call     func() error
		teardown func()
	}
	var setups []setup
	defer func() {
		for _, s := range setups {
			s.teardown()
		}
	}()

	callCtx := context.Background()
	soapCall := func(client *soap.Client) func() error {
		args := []soap.NamedValue{{Name: "s", Value: dyn.StringValue(payload)}}
		return func() error {
			got, err := client.CallContext(callCtx, echoOpName, args, dyn.StringT)
			if err != nil {
				return err
			}
			if got.Str() != payload {
				return fmt.Errorf("echo corrupted the payload")
			}
			return nil
		}
	}
	corbaCall := func(conn *orb.ClientORB) func() error {
		sig := echoSig()
		args := []dyn.Value{dyn.StringValue(payload)}
		return func() error {
			got, err := conn.InvokeContext(callCtx, sig, args)
			if err != nil {
				return err
			}
			if got.Str() != payload {
				return fmt.Errorf("echo corrupted the payload")
			}
			return nil
		}
	}

	// --- SDE SOAP / static client ---
	{
		mgr, err := core.NewManager(core.Config{})
		if err != nil {
			return nil, err
		}
		srv, err := mgr.Register(echoClass("EchoSDE"), core.TechSOAP)
		if err != nil {
			_ = mgr.Close()
			return nil, err
		}
		if _, err := srv.CreateInstance(); err != nil {
			_ = mgr.Close()
			return nil, err
		}
		ss := srv.(*core.SOAPServer)
		client := &soap.Client{Endpoint: ss.Endpoint(), ServiceNS: "urn:EchoSDE", HTTPClient: &http.Client{}}
		setups = append(setups, setup{
			name: "SDE SOAP/Axis", paperRTT: 580 * time.Millisecond,
			call: soapCall(client), teardown: func() { _ = mgr.Close() },
		})
	}

	// --- static SOAP (Axis-Tomcat) / static client ---
	{
		srv, err := static.NewSOAPServer("urn:EchoStatic", echoOps())
		if err != nil {
			return nil, err
		}
		endpoint, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		client := &soap.Client{Endpoint: endpoint, ServiceNS: "urn:EchoStatic", HTTPClient: &http.Client{}}
		setups = append(setups, setup{
			name: "Axis-Tomcat/Axis", paperRTT: 530 * time.Millisecond,
			call: soapCall(client), teardown: func() { _ = srv.Close() },
		})
	}

	// --- SDE CORBA / static client ---
	{
		mgr, err := core.NewManager(core.Config{})
		if err != nil {
			return nil, err
		}
		srv, err := mgr.Register(echoClass("EchoSDEC"), core.TechCORBA)
		if err != nil {
			_ = mgr.Close()
			return nil, err
		}
		if _, err := srv.CreateInstance(); err != nil {
			_ = mgr.Close()
			return nil, err
		}
		cs := srv.(*core.CORBAServer)
		conn, err := orb.DialIOR(cs.IOR())
		if err != nil {
			_ = mgr.Close()
			return nil, err
		}
		setups = append(setups, setup{
			name: "SDE CORBA/OpenORB", paperRTT: 510 * time.Millisecond,
			call: corbaCall(conn), teardown: func() { _ = conn.Close(); _ = mgr.Close() },
		})
	}

	// --- static CORBA (OpenORB) / static client ---
	{
		srv, err := static.NewCORBAServer("IDL:EchoModule/Echo:1.0", []byte("echo"), echoOps())
		if err != nil {
			return nil, err
		}
		ref, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		conn, err := orb.DialIOR(ref)
		if err != nil {
			_ = srv.Close()
			return nil, err
		}
		setups = append(setups, setup{
			name: "OpenORB/OpenORB", paperRTT: 420 * time.Millisecond,
			call: corbaCall(conn), teardown: func() { _ = conn.Close(); _ = srv.Close() },
		})
	}

	// --- SDE JSON / static client (no paper analogue; the binding-seam
	// row added with the v2 API) ---
	{
		mgr, err := core.NewManager(core.Config{})
		if err != nil {
			return nil, err
		}
		srv, err := mgr.Register(echoClass("EchoSDEJ"), core.Technology(jsonb.Name))
		if err != nil {
			_ = mgr.Close()
			return nil, err
		}
		if _, err := srv.CreateInstance(); err != nil {
			_ = mgr.Close()
			return nil, err
		}
		js := srv.(*jsonb.Server)
		caller := &jsonb.Caller{Endpoint: js.Endpoint(), HTTPClient: &http.Client{}}
		sig := echoSig()
		args := []dyn.Value{dyn.StringValue(payload)}
		ctx := context.Background()
		setups = append(setups, setup{
			name: "SDE JSON/http", paperRTT: 0,
			call: func() error {
				got, err := caller.Call(ctx, sig, args)
				if err != nil {
					return err
				}
				if got.Str() != payload {
					return fmt.Errorf("echo corrupted the payload")
				}
				return nil
			},
			teardown: func() { _ = mgr.Close() },
		})
	}

	// Warm up every configuration.
	for _, s := range setups {
		for i := 0; i < warmupCalls; i++ {
			if err := s.call(); err != nil {
				return nil, fmt.Errorf("%s warmup: %w", s.name, err)
			}
		}
	}

	// Interleaved measurement rounds. Heap-allocation deltas are sampled
	// around each round: all four stacks run in this process, but only the
	// configuration under measurement is exercising its client and server,
	// so the process-wide delta attributes to it (modulo background noise,
	// amortized by the interleaving).
	const rounds = 10
	perRound := cfg.Calls / rounds
	if perRound == 0 {
		perRound = 1
	}
	samples := make([][]time.Duration, len(setups))
	mallocs := make([]uint64, len(setups))
	allocBytes := make([]uint64, len(setups))
	var ms runtime.MemStats
	for r := 0; r < rounds; r++ {
		for i, s := range setups {
			runtime.ReadMemStats(&ms)
			m0, b0 := ms.Mallocs, ms.TotalAlloc
			part, err := workload.MeasureRTT(perRound, s.call)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", s.name, err)
			}
			runtime.ReadMemStats(&ms)
			mallocs[i] += ms.Mallocs - m0
			allocBytes[i] += ms.TotalAlloc - b0
			samples[i] = append(samples[i], part...)
		}
	}

	rows := make([]Table1Row, len(setups))
	for i, s := range setups {
		n := float64(len(samples[i]))
		rows[i] = Table1Row{
			Config:      s.name,
			PaperRTT:    s.paperRTT,
			Measured:    workload.Summarize(samples[i]),
			AllocsPerOp: float64(mallocs[i]) / n,
			BytesPerOp:  float64(allocBytes[i]) / n,
		}
	}
	return rows, nil
}

// warmupCalls stabilizes connection pools, scheduler and allocator state
// before measurement begins.
const warmupCalls = 20

// FormatTable1 renders rows the way the paper prints Table 1, plus the
// measured numbers, allocation profile, and overhead ratios.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: RTT times for client-server communication\n")
	fmt.Fprintf(&b, "%-22s %12s %14s %14s %10s %12s %10s\n",
		"Server/Client", "paper RTT", "measured mean", "measured p50", "n", "allocs/op", "B/op")
	for _, r := range rows {
		paper := "—"
		if r.PaperRTT > 0 {
			paper = r.PaperRTT.String()
		}
		fmt.Fprintf(&b, "%-22s %12s %14s %14s %10d %12.1f %10.0f\n",
			r.Config, paper, r.Measured.Mean.Round(time.Microsecond),
			r.Measured.P50.Round(time.Microsecond), r.Measured.N,
			r.AllocsPerOp, r.BytesPerOp)
	}
	if len(rows) >= 4 {
		soapOverhead := float64(rows[0].Measured.Mean) / float64(rows[1].Measured.Mean)
		corbaOverhead := float64(rows[2].Measured.Mean) / float64(rows[3].Measured.Mean)
		paperSOAP := 0.58 / 0.53
		paperCORBA := 0.51 / 0.42
		fmt.Fprintf(&b, "\nSDE overhead, SOAP path:  measured %.2fx (paper %.2fx)\n", soapOverhead, paperSOAP)
		fmt.Fprintf(&b, "SDE overhead, CORBA path: measured %.2fx (paper %.2fx)\n", corbaOverhead, paperCORBA)
		fmt.Fprintf(&b, "CORBA vs SOAP (static):   measured %.2fx (paper %.2fx)\n",
			float64(rows[1].Measured.Mean)/float64(rows[3].Measured.Mean), 0.53/0.42)
	}
	return b.String()
}
