// Package experiments contains the harnesses that regenerate the paper's
// quantitative artifacts: Table 1 (RTT comparison of SDE vs. static
// servers over SOAP and CORBA), the Figure 7/8 consistency matrices, the
// Section 5.6 publication-strategy design-space sweep, and the
// Section 5.7 forced-publication latency study. The cmd/ binaries and the
// root bench_test.go are thin wrappers over this package.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"net/http"

	"livedev/internal/core"
	"livedev/internal/dyn"
	"livedev/internal/h2b"
	"livedev/internal/jsonb"
	"livedev/internal/orb"
	"livedev/internal/soap"
	"livedev/internal/static"
	"livedev/internal/workload"
)

// The JSON and H2B bindings are wired through the public registry — the
// Table 1 harness deploys them exactly like the built-in technologies.
func init() {
	core.RegisterBinding(jsonb.New())
	core.RegisterBinding(h2b.New())
}

// Table1Row is one row of the Table 1 reproduction.
type Table1Row struct {
	// Config matches the paper's "Server/Client" column.
	Config string
	// PaperRTT is the RTT the paper reports for the analogous stack.
	PaperRTT time.Duration
	// Measured summarizes our measured round trips.
	Measured workload.RTTStats
	// AllocsPerOp is the mean number of heap allocations per call,
	// measured process-wide across the measurement rounds — client and
	// in-process server side together, the full invocation pipeline.
	AllocsPerOp float64
	// BytesPerOp is the mean number of heap bytes allocated per call,
	// measured the same way.
	BytesPerOp float64
}

// Table1Config parameterizes the RTT experiment.
type Table1Config struct {
	// Calls is the number of RMI calls per configuration; the paper
	// averaged over one hundred calls.
	Calls int
	// PayloadBytes sizes the echoed string argument.
	PayloadBytes int
}

// DefaultTable1 mirrors the paper: 100 calls, small payload.
func DefaultTable1() Table1Config {
	return Table1Config{Calls: 100, PayloadBytes: 64}
}

// echoOpName is the operation used in the RTT measurement.
const echoOpName = "echo"

func echoClass(name string) *dyn.Class {
	c := dyn.NewClass(name)
	_, _ = c.AddMethod(dyn.MethodSpec{
		Name:        echoOpName,
		Params:      []dyn.Param{{Name: "s", Type: dyn.StringT}},
		Result:      dyn.StringT,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return args[0], nil
		},
	})
	return c
}

func echoOps() []static.Op {
	return []static.Op{{
		Name:   echoOpName,
		Params: []dyn.Param{{Name: "s", Type: dyn.StringT}},
		Result: dyn.StringT,
		Fn: func(args []dyn.Value) (dyn.Value, error) {
			return args[0], nil
		},
	}}
}

func echoSig() dyn.MethodSig {
	return dyn.MethodSig{
		Name:   echoOpName,
		Params: []dyn.Param{{Name: "s", Type: dyn.StringT}},
		Result: dyn.StringT,
	}
}

// rttSetup is one deployed stack: its Table 1 row name, the paper's RTT
// for the analogous configuration (zero when the paper has none), a
// goroutine-safe call closure, and the teardown. The builders below each
// deploy one stack; RunTable1 and RunTable1Parallel compose them.
type rttSetup struct {
	name     string
	paperRTT time.Duration
	call     func() error
	teardown func()
}

func soapEchoCall(client *soap.Client, payload string) func() error {
	args := []soap.NamedValue{{Name: "s", Value: dyn.StringValue(payload)}}
	ctx := context.Background()
	return func() error {
		got, err := client.CallContext(ctx, echoOpName, args, dyn.StringT)
		if err != nil {
			return err
		}
		if got.Str() != payload {
			return fmt.Errorf("echo corrupted the payload")
		}
		return nil
	}
}

func corbaEchoCall(conn *orb.ClientORB, payload string) func() error {
	sig := echoSig()
	args := []dyn.Value{dyn.StringValue(payload)}
	ctx := context.Background()
	return func() error {
		got, err := conn.InvokeContext(ctx, sig, args)
		if err != nil {
			return err
		}
		if got.Str() != payload {
			return fmt.Errorf("echo corrupted the payload")
		}
		return nil
	}
}

func setupSDESOAP(payload string) (rttSetup, error) {
	mgr, err := core.NewManager(core.Config{})
	if err != nil {
		return rttSetup{}, err
	}
	srv, err := mgr.Register(echoClass("EchoSDE"), core.TechSOAP)
	if err != nil {
		_ = mgr.Close()
		return rttSetup{}, err
	}
	if _, err := srv.CreateInstance(); err != nil {
		_ = mgr.Close()
		return rttSetup{}, err
	}
	ss := srv.(*core.SOAPServer)
	client := &soap.Client{Endpoint: ss.Endpoint(), ServiceNS: "urn:EchoSDE", HTTPClient: &http.Client{}}
	return rttSetup{
		name: "SDE SOAP/Axis", paperRTT: 580 * time.Millisecond,
		call: soapEchoCall(client, payload), teardown: func() { _ = mgr.Close() },
	}, nil
}

func setupStaticSOAP(payload string) (rttSetup, error) {
	srv, err := static.NewSOAPServer("urn:EchoStatic", echoOps())
	if err != nil {
		return rttSetup{}, err
	}
	endpoint, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return rttSetup{}, err
	}
	client := &soap.Client{Endpoint: endpoint, ServiceNS: "urn:EchoStatic", HTTPClient: &http.Client{}}
	return rttSetup{
		name: "Axis-Tomcat/Axis", paperRTT: 530 * time.Millisecond,
		call: soapEchoCall(client, payload), teardown: func() { _ = srv.Close() },
	}, nil
}

func setupSDECORBA(payload string) (rttSetup, error) {
	mgr, err := core.NewManager(core.Config{})
	if err != nil {
		return rttSetup{}, err
	}
	srv, err := mgr.Register(echoClass("EchoSDEC"), core.TechCORBA)
	if err != nil {
		_ = mgr.Close()
		return rttSetup{}, err
	}
	if _, err := srv.CreateInstance(); err != nil {
		_ = mgr.Close()
		return rttSetup{}, err
	}
	cs := srv.(*core.CORBAServer)
	conn, err := orb.DialIOR(cs.IOR())
	if err != nil {
		_ = mgr.Close()
		return rttSetup{}, err
	}
	return rttSetup{
		name: "SDE CORBA/OpenORB", paperRTT: 510 * time.Millisecond,
		call: corbaEchoCall(conn, payload), teardown: func() { _ = conn.Close(); _ = mgr.Close() },
	}, nil
}

func setupStaticCORBA(payload string) (rttSetup, error) {
	srv, err := static.NewCORBAServer("IDL:EchoModule/Echo:1.0", []byte("echo"), echoOps())
	if err != nil {
		return rttSetup{}, err
	}
	ref, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return rttSetup{}, err
	}
	conn, err := orb.DialIOR(ref)
	if err != nil {
		_ = srv.Close()
		return rttSetup{}, err
	}
	return rttSetup{
		name: "OpenORB/OpenORB", paperRTT: 420 * time.Millisecond,
		call: corbaEchoCall(conn, payload), teardown: func() { _ = conn.Close(); _ = srv.Close() },
	}, nil
}

// setupSDEJSON deploys the binding-seam row added with the v2 API (no
// paper analogue).
func setupSDEJSON(payload string) (rttSetup, error) {
	mgr, err := core.NewManager(core.Config{})
	if err != nil {
		return rttSetup{}, err
	}
	srv, err := mgr.Register(echoClass("EchoSDEJ"), core.Technology(jsonb.Name))
	if err != nil {
		_ = mgr.Close()
		return rttSetup{}, err
	}
	if _, err := srv.CreateInstance(); err != nil {
		_ = mgr.Close()
		return rttSetup{}, err
	}
	js := srv.(*jsonb.Server)
	caller := &jsonb.Caller{Endpoint: js.Endpoint(), HTTPClient: &http.Client{}}
	sig := echoSig()
	args := []dyn.Value{dyn.StringValue(payload)}
	ctx := context.Background()
	return rttSetup{
		name: "SDE JSON/http", paperRTT: 0,
		call: func() error {
			got, err := caller.Call(ctx, sig, args)
			if err != nil {
				return err
			}
			if got.Str() != payload {
				return fmt.Errorf("echo corrupted the payload")
			}
			return nil
		},
		teardown: func() { _ = mgr.Close() },
	}, nil
}

// setupSDEH2B deploys the multiplexed binary binding (no paper analogue):
// CDR bodies over one cleartext-HTTP/2 connection, concurrent calls as
// concurrent streams.
func setupSDEH2B(payload string) (rttSetup, error) {
	mgr, err := core.NewManager(core.Config{})
	if err != nil {
		return rttSetup{}, err
	}
	srv, err := mgr.Register(echoClass("EchoSDEH"), core.Technology(h2b.Name))
	if err != nil {
		_ = mgr.Close()
		return rttSetup{}, err
	}
	if _, err := srv.CreateInstance(); err != nil {
		_ = mgr.Close()
		return rttSetup{}, err
	}
	hs := srv.(*h2b.Server)
	caller := &h2b.Caller{Endpoint: hs.Endpoint(), Mux: hs.MuxAddr()}
	sig := echoSig()
	args := []dyn.Value{dyn.StringValue(payload)}
	ctx := context.Background()
	return rttSetup{
		name: "SDE H2B/h2c", paperRTT: 0,
		call: func() error {
			got, err := caller.Call(ctx, sig, args)
			if err != nil {
				return err
			}
			if got.Str() != payload {
				return fmt.Errorf("echo corrupted the payload")
			}
			return nil
		},
		teardown: func() { _ = mgr.Close() },
	}, nil
}

// buildSetups runs the builders, tearing down everything already deployed
// if one fails.
func buildSetups(payload string, builders []func(string) (rttSetup, error)) ([]rttSetup, error) {
	var setups []rttSetup
	for _, build := range builders {
		s, err := build(payload)
		if err != nil {
			for _, t := range setups {
				t.teardown()
			}
			return nil, err
		}
		setups = append(setups, s)
	}
	return setups, nil
}

// RunTable1 measures the four configurations of the paper's Table 1:
//
//	SDE SOAP    / static SOAP client   (paper: SDE SOAP/Axis, 0.58 s)
//	static SOAP / static SOAP client   (paper: Axis-Tomcat/Axis, 0.53 s)
//	SDE CORBA   / static CORBA client  (paper: SDE CORBA/OpenORB, 0.51 s)
//	static CORBA/ static CORBA client  (paper: OpenORB/OpenORB, 0.42 s)
//
// plus the two bindings without a paper analogue, JSON/http and H2B/h2c.
//
// Absolute values are not comparable (the paper measured two 2004-era
// machines over a T1 LAN; we measure loopback TCP), but the shape is:
// CORBA beats SOAP, and each SDE server pays a development-time overhead
// over its static counterpart.
// All configurations are set up first and then measured in interleaved
// rounds, so slow environmental drift (CPU contention, GC, frequency
// scaling) affects every configuration equally instead of biasing
// whichever happened to run last.
func RunTable1(cfg Table1Config) ([]Table1Row, error) {
	if cfg.Calls <= 0 {
		cfg.Calls = 100
	}
	if cfg.PayloadBytes <= 0 {
		cfg.PayloadBytes = 64
	}
	payload := strings.Repeat("x", cfg.PayloadBytes)

	setups, err := buildSetups(payload, []func(string) (rttSetup, error){
		setupSDESOAP, setupStaticSOAP, setupSDECORBA, setupStaticCORBA, setupSDEJSON, setupSDEH2B,
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, s := range setups {
			s.teardown()
		}
	}()

	// Warm up every configuration.
	for _, s := range setups {
		for i := 0; i < warmupCalls; i++ {
			if err := s.call(); err != nil {
				return nil, fmt.Errorf("%s warmup: %w", s.name, err)
			}
		}
	}

	// Interleaved measurement rounds. Heap-allocation deltas are sampled
	// around each round: all stacks run in this process, but only the
	// configuration under measurement is exercising its client and server,
	// so the process-wide delta attributes to it (modulo background noise,
	// amortized by the interleaving).
	const rounds = 10
	perRound := cfg.Calls / rounds
	if perRound == 0 {
		perRound = 1
	}
	samples := make([][]time.Duration, len(setups))
	mallocs := make([]uint64, len(setups))
	allocBytes := make([]uint64, len(setups))
	var ms runtime.MemStats
	for r := 0; r < rounds; r++ {
		for i, s := range setups {
			runtime.ReadMemStats(&ms)
			m0, b0 := ms.Mallocs, ms.TotalAlloc
			part, err := workload.MeasureRTT(perRound, s.call)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", s.name, err)
			}
			runtime.ReadMemStats(&ms)
			mallocs[i] += ms.Mallocs - m0
			allocBytes[i] += ms.TotalAlloc - b0
			samples[i] = append(samples[i], part...)
		}
	}

	rows := make([]Table1Row, len(setups))
	for i, s := range setups {
		n := float64(len(samples[i]))
		rows[i] = Table1Row{
			Config:      s.name,
			PaperRTT:    s.paperRTT,
			Measured:    workload.Summarize(samples[i]),
			AllocsPerOp: float64(mallocs[i]) / n,
			BytesPerOp:  float64(allocBytes[i]) / n,
		}
	}
	return rows, nil
}

// warmupCalls stabilizes connection pools, scheduler and allocator state
// before measurement begins.
const warmupCalls = 20

// FormatTable1 renders rows the way the paper prints Table 1, plus the
// measured numbers, allocation profile, and overhead ratios.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: RTT times for client-server communication\n")
	fmt.Fprintf(&b, "%-22s %12s %14s %14s %10s %12s %10s\n",
		"Server/Client", "paper RTT", "measured mean", "measured p50", "n", "allocs/op", "B/op")
	for _, r := range rows {
		paper := "—"
		if r.PaperRTT > 0 {
			paper = r.PaperRTT.String()
		}
		fmt.Fprintf(&b, "%-22s %12s %14s %14s %10d %12.1f %10.0f\n",
			r.Config, paper, r.Measured.Mean.Round(time.Microsecond),
			r.Measured.P50.Round(time.Microsecond), r.Measured.N,
			r.AllocsPerOp, r.BytesPerOp)
	}
	if len(rows) >= 4 {
		soapOverhead := float64(rows[0].Measured.Mean) / float64(rows[1].Measured.Mean)
		corbaOverhead := float64(rows[2].Measured.Mean) / float64(rows[3].Measured.Mean)
		paperSOAP := 0.58 / 0.53
		paperCORBA := 0.51 / 0.42
		fmt.Fprintf(&b, "\nSDE overhead, SOAP path:  measured %.2fx (paper %.2fx)\n", soapOverhead, paperSOAP)
		fmt.Fprintf(&b, "SDE overhead, CORBA path: measured %.2fx (paper %.2fx)\n", corbaOverhead, paperCORBA)
		fmt.Fprintf(&b, "CORBA vs SOAP (static):   measured %.2fx (paper %.2fx)\n",
			float64(rows[1].Measured.Mean)/float64(rows[3].Measured.Mean), 0.53/0.42)
	}
	return b.String()
}

// ParallelRTTRow is one row of the parallel-call throughput measurement:
// the same echo workload as Table 1, but driven by `Workers` concurrent
// callers against one endpoint. NsPerOp is wall-clock over total calls —
// a throughput number, not a latency one, so it rewards transports that
// overlap calls (HTTP/2 stream multiplexing, IIOP request pipelining) and
// punishes those that serialize or open connections per concurrent call.
type ParallelRTTRow struct {
	// Config matches the Table 1 "Server/Client" column.
	Config string
	// Workers is the number of concurrent callers.
	Workers int
	// Calls is the total number of calls measured across all workers.
	Calls int
	// Wall is the total wall-clock time for all measurement rounds.
	Wall time.Duration
	// NsPerOp is Wall divided by Calls.
	NsPerOp float64
}

// RunTable1Parallel measures the four SDE bindings — SOAP, CORBA, JSON,
// and H2B — under workers concurrent callers each. The static stacks are
// omitted: the comparison of interest is between the SDE's bindings, the
// multiplexed binary binding against the boxed ones. Configurations are
// measured in interleaved rounds like RunTable1.
func RunTable1Parallel(cfg Table1Config, workers int) ([]ParallelRTTRow, error) {
	if cfg.Calls <= 0 {
		cfg.Calls = 100
	}
	if cfg.PayloadBytes <= 0 {
		cfg.PayloadBytes = 64
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	payload := strings.Repeat("x", cfg.PayloadBytes)

	setups, err := buildSetups(payload, []func(string) (rttSetup, error){
		setupSDESOAP, setupSDECORBA, setupSDEJSON, setupSDEH2B,
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, s := range setups {
			s.teardown()
		}
	}()

	// Warm up with the measurement's own concurrency, so connection pools
	// reach their steady-state shape before timing starts.
	for _, s := range setups {
		if _, err := runParallel(s.call, workers, workers); err != nil {
			return nil, fmt.Errorf("%s warmup: %w", s.name, err)
		}
	}

	const rounds = 5
	perRound := cfg.Calls / rounds
	if perRound < workers {
		perRound = workers
	}
	walls := make([]time.Duration, len(setups))
	calls := make([]int, len(setups))
	for r := 0; r < rounds; r++ {
		for i, s := range setups {
			wall, err := runParallel(s.call, workers, perRound)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", s.name, err)
			}
			walls[i] += wall
			calls[i] += perRound
		}
	}

	rows := make([]ParallelRTTRow, len(setups))
	for i, s := range setups {
		rows[i] = ParallelRTTRow{
			Config:  s.name,
			Workers: workers,
			Calls:   calls[i],
			Wall:    walls[i],
			NsPerOp: float64(walls[i].Nanoseconds()) / float64(calls[i]),
		}
	}
	return rows, nil
}

// runParallel spreads calls across workers goroutines and returns the
// wall-clock time for all of them to finish.
func runParallel(call func() error, workers, calls int) (time.Duration, error) {
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	per := calls / workers
	extra := calls % workers
	start := time.Now()
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := call(); err != nil {
					errCh <- err
					return
				}
			}
		}(n)
	}
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return wall, nil
}

// FormatParallel renders the parallel-call rows.
func FormatParallel(rows []ParallelRTTRow) string {
	var b strings.Builder
	if len(rows) == 0 {
		return ""
	}
	fmt.Fprintf(&b, "Parallel calls: %d concurrent callers per configuration\n", rows[0].Workers)
	fmt.Fprintf(&b, "%-22s %10s %12s %14s\n", "Server/Client", "calls", "wall", "ns/op")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %10d %12s %14.0f\n",
			r.Config, r.Calls, r.Wall.Round(time.Microsecond), r.NsPerOp)
	}
	return b.String()
}
