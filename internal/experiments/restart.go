package experiments

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"livedev/internal/ifsvr"
)

// The restart-reconnect experiment: an Interface Server with N held
// streaming watchers restarts. How long until every watcher is caught up
// again — and what does the answer cost?
//
//   - "restart-replay": the store reopens from its data dir (snapshot +
//     WAL), so epochs continue and each reconnect is served a journal
//     delta (event: replay) of exactly the versions committed while the
//     server was down.
//   - "restart-snapshot": the reopened journal no longer covers the
//     watchers' epochs (shrunk on reopen), so every reconnect degrades to
//     a full snapshot fetch — the N-fetch stampede persistence exists to
//     avoid.

// RestartConfig parameterizes the restart-reconnect experiment.
type RestartConfig struct {
	// Watchers is the number of concurrent streaming watchers (default
	// 1000).
	Watchers int
	// Rounds is the number of measured restarts per mode (default 3).
	Rounds int
	// DownCommits is how many versions commit while the watchers are
	// disconnected (default 5).
	DownCommits int
}

func (c RestartConfig) withDefaults() RestartConfig {
	if c.Watchers <= 0 {
		c.Watchers = 1000
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	if c.DownCommits <= 0 {
		c.DownCommits = 5
	}
	return c
}

// RunRestartReconnect measures the restart→all-watchers-caught-up latency
// for the replay and snapshot recovery paths. The rows reuse the fan-out
// row shape (transport, watchers, mean/p50/max) so they land next to the
// steady-state fan-out numbers in BENCH_rtt.json.
func RunRestartReconnect(cfg RestartConfig) ([]FanoutRow, error) {
	cfg = cfg.withDefaults()
	var rows []FanoutRow
	for _, mode := range []string{"restart-replay", "restart-snapshot"} {
		row, err := runRestartOne(mode, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", mode, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runRestartOne(mode string, cfg RestartConfig) (FanoutRow, error) {
	dir, err := os.MkdirTemp("", "livedev-restart-*")
	if err != nil {
		return FanoutRow{}, err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	open := func(historyLen int) (*ifsvr.Store, error) {
		return ifsvr.OpenStore(ifsvr.StoreConfig{Dir: dir, HistoryLen: historyLen})
	}
	st, err := open(0)
	if err != nil {
		return FanoutRow{}, err
	}
	srv := ifsvr.NewView(st)
	base, err := srv.Start("127.0.0.1:0")
	if err != nil {
		st.Close()
		return FanoutRow{}, err
	}
	addr := base[len("http://"):]
	const path = "/wsdl/Restart.wsdl"
	url := base + path
	version := uint64(1)
	st.PublishVersioned(path, "text/xml", "<v1/>", version)

	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = cfg.Watchers + 4
	hc := &http.Client{Transport: tr}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() {
		cancel()
		wg.Wait()
		st.Close()
		_ = srv.Close()
	}()

	// Each watcher holds one stream, reconnecting with its last seen epoch
	// after a break — the WithWatch client's loop, minus the compile step.
	seen := make([]atomic.Uint64, cfg.Watchers)
	for w := 0; w < cfg.Watchers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var lastEpoch uint64
			for ctx.Err() == nil {
				_ = ifsvr.WatchStream(ctx, hc, url, lastEpoch, func(ev ifsvr.StreamEvent) {
					lastEpoch = ev.Doc.Epoch
					if ev.Doc.Version > seen[w].Load() {
						seen[w].Store(ev.Doc.Version)
					}
				})
				if ctx.Err() == nil {
					time.Sleep(10 * time.Millisecond)
				}
			}
		}(w)
	}
	waitAll := func(v uint64) error {
		deadline := time.Now().Add(120 * time.Second)
		for {
			all := true
			for w := range seen {
				if seen[w].Load() < v {
					all = false
					break
				}
			}
			if all {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("watchers did not converge on version %d", v)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	if err := waitAll(version); err != nil {
		return FanoutRow{}, err
	}

	var latencies []time.Duration
	for r := 0; r < cfg.Rounds; r++ {
		// Down: the server and store go away; watchers spin on reconnects.
		if err := srv.Close(); err != nil {
			return FanoutRow{}, err
		}
		st.Close()

		// Reopen from the data dir. The replay mode keeps the journal big
		// enough to cover the downtime commits; the snapshot mode reopens
		// with a journal too small to hold them, forcing the stampede.
		histLen := 0
		if mode == "restart-snapshot" {
			histLen = -1
		}
		if st, err = open(histLen); err != nil {
			return FanoutRow{}, err
		}
		for i := 0; i < cfg.DownCommits; i++ {
			version++
			st.PublishVersioned(path, "text/xml", fmt.Sprintf("<v%d/>", version), version)
		}
		srv = ifsvr.NewView(st)
		start := time.Now()
		if _, err = srv.Start(addr); err != nil {
			return FanoutRow{}, fmt.Errorf("rebinding %s: %w", addr, err)
		}
		if err := waitAll(version); err != nil {
			return FanoutRow{}, err
		}
		latencies = append(latencies, time.Since(start))
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var total time.Duration
	for _, l := range latencies {
		total += l
	}
	return FanoutRow{
		Transport: mode,
		Watchers:  cfg.Watchers,
		Edits:     len(latencies),
		Mean:      total / time.Duration(len(latencies)),
		P50:       latencies[len(latencies)/2],
		P99:       latencies[len(latencies)*99/100],
		Max:       latencies[len(latencies)-1],
	}, nil
}
