package experiments

import (
	"fmt"
	"strings"
	"time"

	"livedev/internal/clock"
	"livedev/internal/core"
	"livedev/internal/dyn"
	"livedev/internal/workload"
)

// StaleState names one of the four publisher states of the Section 5.7
// forced-publication case analysis.
type StaleState int

// The four states a stale call can find the publisher in.
const (
	StateIdleCurrent StaleState = iota + 1
	StateGenerating
	StateTimerArmed
	StateGeneratingAndTimer
)

// String names the state the way Section 5.7 describes it.
func (s StaleState) String() string {
	switch s {
	case StateIdleCurrent:
		return "idle+current"
	case StateGenerating:
		return "generating"
	case StateTimerArmed:
		return "timer-armed"
	case StateGeneratingAndTimer:
		return "generating+timer"
	default:
		return "unknown"
	}
}

// StaleResult reports the forced-publication latency for one state.
type StaleResult struct {
	State StaleState
	// GenCost is the injected cost of one generation.
	GenCost time.Duration
	// Latency summarizes EnsureCurrent round trips.
	Latency workload.RTTStats
	// ExpectedGenerations is the number of generations the Section 5.7
	// protocol must wait for in this state (0, 1, 1, 2).
	ExpectedGenerations int
}

// RunStaleLatency measures EnsureCurrent latency with the publisher driven
// into each of the four Section 5.7 states, with a synthetic generation
// cost (the paper calls generation "a relatively expensive operation").
func RunStaleLatency(genCost time.Duration, samples int) ([]StaleResult, error) {
	if samples <= 0 {
		samples = 10
	}
	states := []struct {
		state StaleState
		gens  int
	}{
		{StateIdleCurrent, 0},
		{StateGenerating, 1},
		{StateTimerArmed, 1},
		{StateGeneratingAndTimer, 2},
	}
	var out []StaleResult
	for _, st := range states {
		durations := make([]time.Duration, 0, samples)
		for i := 0; i < samples; i++ {
			d, err := measureStaleOnce(st.state, genCost)
			if err != nil {
				return nil, fmt.Errorf("state %s: %w", st.state, err)
			}
			durations = append(durations, d)
		}
		out = append(out, StaleResult{
			State:               st.state,
			GenCost:             genCost,
			Latency:             workload.Summarize(durations),
			ExpectedGenerations: st.gens,
		})
	}
	return out, nil
}

func measureStaleOnce(state StaleState, genCost time.Duration) (time.Duration, error) {
	class := dyn.NewClass("Stale")
	id, err := class.AddMethod(dyn.MethodSpec{Name: "op", Result: dyn.Int32T, Distributed: true})
	if err != nil {
		return 0, err
	}
	genStarted := make(chan struct{}, 4)
	publish := func(dyn.InterfaceDescriptor) error {
		select {
		case genStarted <- struct{}{}:
		default:
		}
		time.Sleep(genCost)
		return nil
	}
	// An hour-long timeout: the timer never fires on its own during the
	// measurement, so the state we set up is the state EnsureCurrent sees.
	p := core.NewDLPublisher(class, time.Hour, clock.Real{}, publish)
	defer p.Close()

	// Baseline publish so the idle state is also current.
	p.PublishNow()
	p.WaitIdle()
	// Drain the baseline generation's start token so the signals below
	// really correspond to the generation we set up.
	for {
		select {
		case <-genStarted:
			continue
		default:
		}
		break
	}

	switch state {
	case StateIdleCurrent:
		// Nothing to do.
	case StateGenerating:
		if err := class.RenameMethod(id, "op2"); err != nil {
			return 0, err
		}
		p.PublishNow() // cancels the timer, starts a generation
		<-genStarted
	case StateTimerArmed:
		if err := class.RenameMethod(id, "op2"); err != nil {
			return 0, err
		}
	case StateGeneratingAndTimer:
		if err := class.RenameMethod(id, "op2"); err != nil {
			return 0, err
		}
		p.PublishNow()
		<-genStarted
		if err := class.RenameMethod(id, "op3"); err != nil {
			return 0, err // arms the timer during the generation
		}
	}

	start := time.Now()
	p.EnsureCurrent()
	return time.Since(start), nil
}

// FormatStale renders the forced-publication latency table.
func FormatStale(results []StaleResult) string {
	var b strings.Builder
	b.WriteString("Forced publication latency by publisher state (Section 5.7)\n")
	fmt.Fprintf(&b, "%-18s %12s %12s %12s %6s\n", "state", "gen cost", "mean wait", "max wait", "gens")
	for _, r := range results {
		fmt.Fprintf(&b, "%-18s %12s %12s %12s %6d\n",
			r.State, r.GenCost,
			r.Latency.Mean.Round(time.Millisecond),
			r.Latency.Max.Round(time.Millisecond),
			r.ExpectedGenerations)
	}
	return b.String()
}
