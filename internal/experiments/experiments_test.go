package experiments

import (
	"strings"
	"testing"
	"time"

	"livedev/internal/workload"
)

// TestTable1Shape runs the Table 1 experiment (with a reduced call count)
// and asserts the paper's qualitative claims:
//   - SDE SOAP is slower than static SOAP;
//   - SDE CORBA is slower than static CORBA;
//   - static CORBA is the fastest configuration;
//   - CORBA beats SOAP on the same server kind.
func TestTable1Shape(t *testing.T) {
	rows, err := RunTable1(Table1Config{Calls: 60, PayloadBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Four paper configurations plus the JSON binding-seam row and the
	// h2b multiplexed-binary row.
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]workload.RTTStats{}
	for _, r := range rows {
		byName[r.Config] = r.Measured
		if r.Measured.N != 60 {
			t.Errorf("%s: %d samples", r.Config, r.Measured.N)
		}
		if r.Measured.Mean <= 0 {
			t.Errorf("%s: non-positive mean", r.Config)
		}
	}
	sdeSOAP := byName["SDE SOAP/Axis"].P50
	staticSOAP := byName["Axis-Tomcat/Axis"].P50
	sdeCORBA := byName["SDE CORBA/OpenORB"].P50
	staticCORBA := byName["OpenORB/OpenORB"].P50

	// The strong, stable shape claim: binary CORBA beats XML SOAP for the
	// same server kind (the paper's 0.42 s vs 0.53 s and 0.51 s vs 0.58 s).
	if staticCORBA >= staticSOAP {
		t.Errorf("static CORBA (%v) should beat static SOAP (%v)", staticCORBA, staticSOAP)
	}
	if sdeCORBA >= sdeSOAP {
		t.Errorf("SDE CORBA (%v) should beat SDE SOAP (%v)", sdeCORBA, sdeSOAP)
	}
	// The SDE-vs-static overhead on this stack is small (the paper's bound
	// is 25% on a Java reflection stack); on a shared CI machine it can be
	// inside scheduler noise, so assert only that SDE is not *wildly* off
	// its static counterpart in either direction. The precise per-stage
	// overhead is measured network-free by BenchmarkCallPath_*.
	within := func(a, b time.Duration, factor float64) bool {
		fa, fb := float64(a), float64(b)
		return fa <= fb*factor && fb <= fa*factor
	}
	if !within(sdeSOAP, staticSOAP, 2.0) {
		t.Errorf("SDE SOAP (%v) and static SOAP (%v) should be within 2x", sdeSOAP, staticSOAP)
	}
	if !within(sdeCORBA, staticCORBA, 2.0) {
		t.Errorf("SDE CORBA (%v) and static CORBA (%v) should be within 2x", sdeCORBA, staticCORBA)
	}

	out := FormatTable1(rows)
	for _, want := range []string{"Table 1", "SDE SOAP/Axis", "OpenORB/OpenORB", "SDE overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable1 missing %q:\n%s", want, out)
		}
	}
}

// TestSweepQualitativeClaims checks Section 5.6's argument quantitatively:
//   - change-driven publishes far more often (every settled edit) and
//     publishes transient interfaces;
//   - the stable-timeout strategy publishes much less while keeping the
//     final interface current;
//   - poll can leave larger publication lag than its interval suggests and
//     also publishes transients.
func TestSweepQualitativeClaims(t *testing.T) {
	cfg := DefaultSweep(7)
	results, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var changeDriven *SweepResult
	var bestStable *SweepResult
	for i := range results {
		r := &results[i]
		if !r.FinalCurrent {
			t.Errorf("%s/%v: final interface not published", r.Strategy, r.Param)
		}
		switch r.Strategy {
		case StrategyChangeDriven:
			changeDriven = r
		case StrategyStableTimeout:
			if r.Param == 500*time.Millisecond {
				bestStable = r
			}
		}
	}
	if changeDriven == nil || bestStable == nil {
		t.Fatal("missing strategies in sweep results")
	}
	if changeDriven.Publications != changeDriven.InterfaceEdits {
		t.Errorf("change-driven should publish per edit: %d pubs, %d edits",
			changeDriven.Publications, changeDriven.InterfaceEdits)
	}
	if changeDriven.TransientPublications == 0 {
		t.Error("change-driven should publish transient interfaces on bursty traces")
	}
	if bestStable.Publications >= changeDriven.Publications {
		t.Errorf("stable-timeout (%d pubs) should publish less than change-driven (%d)",
			bestStable.Publications, changeDriven.Publications)
	}
	if bestStable.TransientPublications > changeDriven.TransientPublications {
		t.Error("stable-timeout should not publish more transients than change-driven")
	}

	out := FormatSweep(results)
	if !strings.Contains(out, "stable-timeout") || !strings.Contains(out, "change-driven") {
		t.Errorf("FormatSweep output:\n%s", out)
	}
}

// TestSweepDeterminism: the same seed reproduces identical sweep numbers.
func TestSweepDeterminism(t *testing.T) {
	cfg := DefaultSweep(3)
	cfg.Timeouts = []time.Duration{200 * time.Millisecond}
	cfg.PollIntervals = nil
	a, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("run %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestStaleLatencyOrdering: the Section 5.7 case analysis predicts the
// wait is ~0, ~1, ~1 and ~2 generations for the four states.
func TestStaleLatencyOrdering(t *testing.T) {
	const genCost = 30 * time.Millisecond
	results, err := RunStaleLatency(genCost, 3)
	if err != nil {
		t.Fatal(err)
	}
	byState := map[StaleState]StaleResult{}
	for _, r := range results {
		byState[r.State] = r
	}
	idle := byState[StateIdleCurrent].Latency.Mean
	gen := byState[StateGenerating].Latency.Mean
	timer := byState[StateTimerArmed].Latency.Mean
	both := byState[StateGeneratingAndTimer].Latency.Mean

	if idle > genCost/2 {
		t.Errorf("idle-current wait %v should be near zero", idle)
	}
	if gen > 2*genCost || gen < genCost/10 {
		t.Errorf("generating wait %v should be around one generation (%v)", gen, genCost)
	}
	if timer < genCost/2 || timer > 2*genCost {
		t.Errorf("timer-armed wait %v should be around one generation (%v)", timer, genCost)
	}
	if both < 3*genCost/2 {
		t.Errorf("generating+timer wait %v should approach two generations (%v)", both, 2*genCost)
	}
	out := FormatStale(results)
	if !strings.Contains(out, "generating+timer") {
		t.Errorf("FormatStale output:\n%s", out)
	}
}

func TestStrategyAndStateStrings(t *testing.T) {
	for _, s := range []Strategy{StrategyChangeDriven, StrategyPoll, StrategyStableTimeout, Strategy(0)} {
		if s.String() == "" {
			t.Error("empty strategy string")
		}
	}
	for _, s := range []StaleState{StateIdleCurrent, StateGenerating, StateTimerArmed, StateGeneratingAndTimer, StaleState(0)} {
		if s.String() == "" {
			t.Error("empty state string")
		}
	}
}

// TestRestartReconnectSmoke runs the restart-reconnect experiment at a
// small scale: both recovery paths must produce a row, the replay path
// must come from a store that resumed its epoch sequence (the experiment
// itself fails if watchers never converge), and the latencies are sane.
func TestRestartReconnectSmoke(t *testing.T) {
	rows, err := RunRestartReconnect(RestartConfig{Watchers: 8, Rounds: 1, DownCommits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (replay + snapshot)", len(rows))
	}
	for _, r := range rows {
		if r.Transport != "restart-replay" && r.Transport != "restart-snapshot" {
			t.Errorf("unexpected transport %q", r.Transport)
		}
		if r.Watchers != 8 || r.Edits != 1 {
			t.Errorf("row %+v: want 8 watchers, 1 round", r)
		}
		if r.Mean <= 0 || r.Mean > r.Max || r.P50 > r.Max {
			t.Errorf("row %+v: implausible latencies", r)
		}
	}
}

func TestReplicationFanoutSmoke(t *testing.T) {
	rows, err := RunReplicationFanout(ReplicationConfig{Replicas: []int{1, 2}, Watchers: 20, Edits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Watchers != 20 || r.Edits != 2 || r.Mean <= 0 {
			t.Errorf("malformed row %+v", r)
		}
	}
	if rows[0].Replicas != 1 || rows[0].LagP99 != 0 {
		t.Errorf("leader-only row must carry zero lag: %+v", rows[0])
	}
	if rows[1].Replicas != 2 || rows[1].LagP99 == 0 {
		t.Errorf("2-replica row must carry a follower lag: %+v", rows[1])
	}
	if FormatReplication(rows) == "" {
		t.Error("empty table")
	}
}
