package h2b

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"

	"livedev/internal/cdr"
	"livedev/internal/core"
	"livedev/internal/dyn"
	"livedev/internal/h2x"
)

// maxBodyBytes bounds one call's argument (or reply) stream.
const maxBodyBytes = 16 << 20

// Server is the h2b subsystem bundle for one managed class — the same
// Figure 4/5 shape as the other bindings: a document generator feeding
// the shared Interface Server via a DL Publisher, and a call handler
// mounted on the manager's shared HTTP endpoint server. The manager's
// listener speaks cleartext HTTP/2 (ifsvr.EnableH2C), which is what lets
// the client half promise prior-knowledge h2c on the advertised endpoint.
// It is built entirely from the Manager's public binding surface.
type Server struct {
	mgr      *core.Manager
	class    *dyn.Class
	pub      *core.DLPublisher
	handler  *callHandler
	endpoint string
	path     string
	docPath  string
	mux      *h2x.Server
	muxAddr  string

	mu       sync.Mutex
	instance *dyn.Instance
	closed   bool
}

var _ core.Server = (*Server)(nil)

func newServer(m *core.Manager, class *dyn.Class) (*Server, error) {
	s := &Server{
		mgr:     m,
		class:   class,
		path:    "/h2b/" + class.Name(),
		docPath: "/h2bif/" + class.Name() + ".h2b",
	}
	s.endpoint = m.HTTPBaseURL() + s.path
	s.handler = &callHandler{class: class}

	// The fast-path listener: the same calls, carried by the purpose-built
	// h2x engine instead of the general HTTP stack, on a dedicated port
	// next to the manager's listener (the CORBA binding's IIOP port is the
	// precedent). The document advertises it as mux_endpoint.
	s.mux = h2x.NewServer(s.handler)
	muxAddr, err := s.mux.Listen(net.JoinHostPort(httpHost(m.HTTPBaseURL()), "0"))
	if err != nil {
		return nil, fmt.Errorf("h2b: starting mux listener: %w", err)
	}
	s.muxAddr = muxAddr

	s.pub = m.PublishInterface(class, s.docPath, DocContentType,
		func(desc dyn.InterfaceDescriptor) (string, error) {
			return GenerateDoc(desc, s.endpoint, s.muxAddr)
		})
	s.handler.pub = s.pub
	s.handler.reactive = m.ReactivePublication()

	m.MountHTTP(s.path, s.handler)
	return s, nil
}

// httpHost extracts the host from the manager's base URL, defaulting to
// loopback so the mux listener binds the same interface as the HTTP one.
func httpHost(baseURL string) string {
	if u, err := url.Parse(baseURL); err == nil && u.Hostname() != "" {
		return u.Hostname()
	}
	return "127.0.0.1"
}

// Class implements core.Server.
func (s *Server) Class() *dyn.Class { return s.class }

// Technology implements core.Server.
func (s *Server) Technology() core.Technology { return core.Technology(Name) }

// Publisher implements core.Server.
func (s *Server) Publisher() *core.DLPublisher { return s.pub }

// Endpoint returns the CDR-POST endpoint URL.
func (s *Server) Endpoint() string { return s.endpoint }

// MuxAddr returns the fast-path listener's "host:port" — the address the
// interface document advertises as mux_endpoint.
func (s *Server) MuxAddr() string { return s.muxAddr }

// InterfaceURL implements core.Server: the h2b interface document URL.
func (s *Server) InterfaceURL() string {
	return s.mgr.InterfaceBaseURL() + s.docPath
}

// CreateInstance implements core.Server.
func (s *Server) CreateInstance() (*dyn.Instance, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("h2b: server closed")
	}
	if s.instance != nil {
		return nil, fmt.Errorf("h2b: class %s already has its instance (single-instance rule, Section 5.4)", s.class.Name())
	}
	in := s.class.NewInstance()
	s.instance = in
	s.handler.Activate(in)
	return in, nil
}

// Instance implements core.Server.
func (s *Server) Instance() *dyn.Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.instance
}

// Close implements core.Server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	_ = s.mux.Close()
	s.mgr.UnmountHTTP(s.path)
	s.pub.Close()
	s.mgr.Store().Remove(s.docPath)
	s.mgr.Unregister(s.class.Name())
	return nil
}

// callHandler is the binding's Call Handler, with the same concurrency
// design as the built-in bindings: concurrent requests under a read gate,
// the stale path under the write gate with forced publication (Section
// 5.7). Under HTTP/2 the concurrent requests are streams of one
// connection, so the read gate is what lets them actually dispatch in
// parallel.
type callHandler struct {
	class    *dyn.Class
	pub      *core.DLPublisher
	reactive bool

	gate     sync.RWMutex
	instance *dyn.Instance
}

var _ core.CallHandler = (*callHandler)(nil)
var _ http.Handler = (*callHandler)(nil)
var _ h2x.Handler = (*callHandler)(nil)

// Activate implements core.CallHandler.
func (h *callHandler) Activate(in *dyn.Instance) {
	h.gate.Lock()
	h.instance = in
	h.gate.Unlock()
}

// Active implements core.CallHandler.
func (h *callHandler) Active() bool {
	h.gate.RLock()
	defer h.gate.RUnlock()
	return h.instance != nil
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set(ErrorHeader, code)
	w.WriteHeader(status)
	_, _ = io.WriteString(w, msg)
}

// reply is one call's transport-neutral outcome. A zero status means the
// caller went away (the stream was reset) and no reply should be sent.
// On success (status 200), body is the CDR-encoded result in order, and
// release — if set — recycles the pooled encoder backing body; the
// transport must invoke it after the body octets are copied out.
type reply struct {
	status  int
	errCode string
	msg     string
	order   cdr.ByteOrder
	body    []byte
	release func()
}

// errReply builds an error outcome.
func errReply(status int, code, msg string) reply {
	return reply{status: status, errCode: code, msg: msg}
}

// call runs one decoded-transport call: CDR argument decode under the
// read gate, dispatch, CDR result encode. It is the shared core of both
// transports — the HTTP handler on the manager's listener and the h2x
// fast path — so the stale-call protocol and encoder pooling behave
// identically on either. body is the caller's own buffer: the zero-copy
// decode may alias it, argument values keep it alive.
func (h *callHandler) call(ctx context.Context, method, orderHdr string, body []byte) reply {
	if method == "" {
		return errReply(http.StatusBadRequest, CodeMalformed, "missing "+MethodHeader+" header")
	}
	order, err := parseOrder(orderHdr)
	if err != nil {
		return errReply(http.StatusBadRequest, CodeMalformed, err.Error())
	}

	h.gate.RLock()
	in := h.instance
	if in == nil {
		h.gate.RUnlock()
		return errReply(http.StatusServiceUnavailable, CodeNotInitialized, "server not initialized")
	}

	// Resolve against the live interface, not any cached view.
	sig, ok := h.class.Interface().Lookup(method)
	if !ok {
		h.gate.RUnlock()
		return h.staleCall(method)
	}
	d := cdr.NewDecoder(body, order)
	d.SetZeroCopy(true)
	args := make([]dyn.Value, len(sig.Params))
	for i, p := range sig.Params {
		v, derr := cdr.DecodeValue(d, p.Type)
		if derr != nil {
			// Encoded against a stale signature: same protocol as a
			// missing method (Section 5.6).
			h.gate.RUnlock()
			return h.staleCall(method)
		}
		args[i] = v
	}
	if d.Remaining() != 0 {
		// Trailing octets mean the client encoded more arguments than the
		// current signature takes — a stale stub, not a framing error.
		h.gate.RUnlock()
		return h.staleCall(method)
	}

	if ctx.Err() != nil {
		// The stream was reset; skip work nobody will observe.
		h.gate.RUnlock()
		return reply{}
	}
	result, err := in.InvokeDistributed(method, args...)
	h.gate.RUnlock()

	switch {
	case err == nil:
		e := cdr.GetEncoder(cdr.BigEndian)
		if encErr := cdr.EncodeValue(e, result); encErr != nil {
			cdr.PutEncoder(e)
			return errReply(http.StatusInternalServerError, CodeApplication, encErr.Error())
		}
		return reply{
			status:  http.StatusOK,
			order:   cdr.BigEndian,
			body:    e.Bytes(),
			release: func() { cdr.PutEncoder(e) },
		}
	case errors.Is(err, dyn.ErrNoSuchMethod), errors.Is(err, dyn.ErrSignatureMismatch):
		// Interface changed between lookup and dispatch.
		return h.staleCall(method)
	default:
		return errReply(http.StatusInternalServerError, CodeApplication, err.Error())
	}
}

// ServeHTTP handles one call (one HTTP/2 stream) on the manager's
// listener. The request context — cancelled when the client resets the
// stream — gates dispatch.
func (h *callHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "h2b endpoint: POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeMalformed, err.Error())
		return
	}
	rep := h.call(r.Context(), r.Header.Get(MethodHeader), r.Header.Get(OrderHeader), body)
	switch {
	case rep.status == 0:
		// Caller gone; the reset stream carries no reply.
	case rep.errCode != "":
		writeError(w, rep.status, rep.errCode, rep.msg)
	default:
		w.Header().Set("Content-Type", CallContentType)
		w.Header().Set(OrderHeader, orderValue(rep.order))
		_, _ = w.Write(rep.body)
		// Write copies into the response stream's buffer, so the pooled
		// encoder can be recycled immediately.
		if rep.release != nil {
			rep.release()
		}
	}
}

// ServeH2 handles one call on the fast-path listener — the same core as
// ServeHTTP, minus the general HTTP stack. The engine invokes Done after
// the response octets leave, which is when the pooled encoder backing
// the body goes back to its pool.
func (h *callHandler) ServeH2(ctx context.Context, r *h2x.Request) *h2x.Response {
	if r.Method != "POST" {
		return &h2x.Response{
			Status: http.StatusMethodNotAllowed,
			Header: [][2]string{{"content-type", "text/plain; charset=utf-8"}},
			Body:   []byte("h2b endpoint: POST only"),
		}
	}
	if len(r.Body) > maxBodyBytes {
		return h2xError(http.StatusBadRequest, CodeMalformed, "request body exceeds the call size limit")
	}
	rep := h.call(ctx, r.HeaderValue(muxMethodHeader), r.HeaderValue(muxOrderHeader), r.Body)
	switch {
	case rep.status == 0:
		return nil // caller gone; a nil response just drops the stream
	case rep.errCode != "":
		return h2xError(rep.status, rep.errCode, rep.msg)
	default:
		return &h2x.Response{
			Status: rep.status,
			Header: [][2]string{
				{"content-type", CallContentType},
				{muxOrderHeader, orderValue(rep.order)},
			},
			Body: rep.body,
			Done: rep.release,
		}
	}
}

// h2xError renders an error outcome as a fast-path response.
func h2xError(status int, code, msg string) *h2x.Response {
	return &h2x.Response{
		Status: status,
		Header: [][2]string{
			{"content-type", "text/plain; charset=utf-8"},
			{muxErrorHeader, code},
		},
		Body: []byte(msg),
	}
}

// staleCall implements the Section 5.7 server algorithm: stall incoming
// processing (write gate), force the published interface document current,
// then report "non-existent method" and resume.
func (h *callHandler) staleCall(method string) reply {
	h.gate.Lock()
	if h.pub != nil && h.reactive {
		h.pub.EnsureCurrent()
	}
	h.gate.Unlock()
	return errReply(http.StatusNotFound, CodeNonExistentMethod,
		"method "+method+" is not part of the current server interface")
}
