package h2b

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"livedev/internal/cde"
	"livedev/internal/cdr"
	"livedev/internal/core"
	"livedev/internal/dyn"
	"livedev/internal/h2x"
	"livedev/internal/ifsvr"
)

// ErrNonExistentMethod is the client-visible form of the binding's
// "non-existent method" error code. Receiving it guarantees the published
// interface document is already current (Section 5.7), so the CDE reacts
// by re-fetching it.
var ErrNonExistentMethod = errors.New("h2b: non-existent method")

// AppError is a server-side application error delivered to the client.
type AppError struct {
	Message string
}

// Error implements error.
func (e *AppError) Error() string { return "server application error: " + e.Message }

// The binding's shared call transport. An h2b interface document promises
// its endpoint speaks cleartext HTTP/2 — the server half mounts on the
// manager's h2c-enabled listener — so the client sends prior-knowledge h2
// with no probe and no HTTP/1.1 fallback for http:// endpoints (https
// endpoints negotiate h2 via ALPN). MaxConnsPerHost pins the design
// point: one long-lived TCP connection per endpoint, with concurrent
// calls multiplexed as concurrent streams rather than racing dials the
// way HTTP/1.1 keep-alive (or an unlimited pool) would under parallel
// load. Every dial is counted per endpoint so "N parallel callers share
// one connection" is test-assertable (Dials/TransportStats).
var sharedCallClient = &http.Client{Transport: newCallTransport()}

func newCallTransport() *http.Transport {
	var p http.Protocols
	p.SetHTTP2(true)
	p.SetUnencryptedHTTP2(true)
	dial := (&net.Dialer{Timeout: 30 * time.Second, KeepAlive: 30 * time.Second}).DialContext
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			c, err := dial(ctx, network, addr)
			if err == nil {
				countCallDial(addr)
			}
			return c, err
		},
		Protocols:       &p,
		MaxConnsPerHost: 1,
		ReadBufferSize:  1 << 16,
		WriteBufferSize: 1 << 16,
		HTTP2: &http.HTTP2Config{
			MaxConcurrentStreams:          512,
			MaxReceiveBufferPerConnection: 1 << 20,
			MaxReceiveBufferPerStream:     1 << 18,
		},
	}
}

// Per-endpoint TCP dial counters for the shared call transport.
var (
	callDialMu    sync.Mutex
	callDialCount = make(map[string]int)
)

func countCallDial(addr string) {
	callDialMu.Lock()
	callDialCount[addr]++
	callDialMu.Unlock()
}

// Dials reports how many TCP connections the shared call transport has
// dialed to addr (a "host:port") over the process lifetime. With HTTP/2
// multiplexing, N parallel callers against one endpoint should move this
// by one, not by N.
func Dials(addr string) int {
	callDialMu.Lock()
	defer callDialMu.Unlock()
	return callDialCount[addr]
}

// TransportStats reports the shared call transport's total dialed
// connections and the number of distinct endpoints dialed — the binding's
// sibling of cde.IIOPPoolStats.
func TransportStats() (dials, endpoints int) {
	callDialMu.Lock()
	defer callDialMu.Unlock()
	for _, n := range callDialCount {
		dials += n
	}
	return dials, len(callDialCount)
}

// DialedEndpoints returns the dialed endpoints, sorted — a debugging aid
// for connection-count assertions.
func DialedEndpoints() []string {
	callDialMu.Lock()
	defer callDialMu.Unlock()
	eps := make([]string, 0, len(callDialCount))
	for e := range callDialCount {
		eps = append(eps, e)
	}
	sort.Strings(eps)
	return eps
}

// The fast-path connection pool: one long-lived h2x connection per mux
// endpoint, shared by every caller in the process (the stdlib transport's
// MaxConnsPerHost=1 design point, kept by hand). Dials are
// single-flighted — under a parallel burst the first caller dials while
// the rest wait on ready — and counted in the same per-endpoint counters
// as the stdlib transport, so Dials() assertions cover both paths.
var (
	muxMu    sync.Mutex
	muxConns = make(map[string]*muxEntry)
)

type muxEntry struct {
	ready chan struct{} // closed once conn/err are set
	conn  *h2x.ClientConn
	err   error
}

func muxConn(addr string) (*h2x.ClientConn, error) {
	for {
		muxMu.Lock()
		e := muxConns[addr]
		stale := false
		if e != nil {
			select {
			case <-e.ready:
				if e.err == nil && e.conn.Alive() {
					muxMu.Unlock()
					return e.conn, nil
				}
				stale = true // dead conn (or failed dial left behind); replace
			default:
				// A dial is in flight; wait for it outside the lock.
			}
		}
		if e == nil || stale {
			ne := &muxEntry{ready: make(chan struct{})}
			muxConns[addr] = ne
			muxMu.Unlock()
			ne.conn, ne.err = h2x.Dial(addr)
			if ne.err == nil {
				countCallDial(addr)
			} else {
				muxMu.Lock()
				if muxConns[addr] == ne {
					delete(muxConns, addr)
				}
				muxMu.Unlock()
			}
			close(ne.ready)
			return ne.conn, ne.err
		}
		muxMu.Unlock()
		<-e.ready
		if e.err == nil && e.conn.Alive() {
			return e.conn, nil
		}
		if e.err != nil {
			return nil, e.err
		}
		// The awaited conn died immediately; loop and redial.
	}
}

// Caller posts CDR calls to one endpoint URL — the transport half of an
// h2b client stub (the analogue of jsonb.Caller). Calls always ride the
// binding's shared prior-knowledge h2c transport: the interface document
// advertising the endpoint promises HTTP/2, and a caller-supplied HTTP
// client (whose transport would speak HTTP/1.1) applies to document
// traffic only.
type Caller struct {
	// Endpoint is the CDR-POST endpoint URL.
	Endpoint string
	// Mux, when non-empty, is the "host:port" of the server's dedicated
	// fast-path listener (the document's mux_endpoint); calls then ride a
	// pooled h2x connection instead of the stdlib HTTP stack. The wire
	// contract — headers, bodies, error codes — is identical on both.
	Mux string
}

// Call performs one RPC against sig. Cancelling ctx resets the in-flight
// HTTP/2 stream and returns an error wrapping ctx.Err().
func (c *Caller) Call(ctx context.Context, sig dyn.MethodSig, args []dyn.Value) (dyn.Value, error) {
	if len(args) != len(sig.Params) {
		return dyn.Value{}, fmt.Errorf("h2b: %s takes %d arguments, got %d", sig.Name, len(sig.Params), len(args))
	}
	e := cdr.GetEncoder(cdr.BigEndian)
	for i, a := range args {
		if !a.Type().Equal(sig.Params[i].Type) {
			cdr.PutEncoder(e)
			return dyn.Value{}, fmt.Errorf("h2b: %s parameter %s wants %s, got %s",
				sig.Name, sig.Params[i].Name, sig.Params[i].Type, a.Type())
		}
		if err := cdr.EncodeValue(e, a); err != nil {
			cdr.PutEncoder(e)
			return dyn.Value{}, err
		}
	}
	if c.Mux != "" {
		v, err := c.callMux(ctx, sig, e.Bytes())
		// The engine copies the body into the connection's write buffer
		// before Do returns — on success and on every error path — so the
		// pooled encoder is always safe to recycle here.
		cdr.PutEncoder(e)
		return v, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Endpoint, bytes.NewReader(e.Bytes()))
	if err != nil {
		cdr.PutEncoder(e)
		return dyn.Value{}, fmt.Errorf("h2b: building HTTP request: %w", err)
	}
	req.Header.Set("Content-Type", CallContentType)
	req.Header.Set(MethodHeader, sig.Name)
	req.Header.Set(OrderHeader, orderValue(cdr.BigEndian))

	resp, err := sharedCallClient.Do(req)
	if err != nil {
		// An aborted round trip (stream reset on cancellation) may leave
		// the transport's write path still aliasing the encoder buffer:
		// abandon the encoder to the GC instead of recycling it.
		return dyn.Value{}, fmt.Errorf("h2b: posting to %s: %w", c.Endpoint, err)
	}
	// The server reads the whole argument stream before replying, so a
	// response means the request body is fully consumed and the pooled
	// encoder is safe to recycle.
	cdr.PutEncoder(e)
	defer func() { _ = resp.Body.Close() }()

	if code := resp.Header.Get(ErrorHeader); code != "" || resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		switch code {
		case CodeNonExistentMethod:
			return dyn.Value{}, fmt.Errorf("%w: %s", ErrNonExistentMethod, msg)
		case CodeApplication:
			return dyn.Value{}, &AppError{Message: string(msg)}
		default:
			return dyn.Value{}, fmt.Errorf("h2b: server error %s (HTTP %d): %s", code, resp.StatusCode, msg)
		}
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return dyn.Value{}, fmt.Errorf("h2b: reading reply for %s: %w", sig.Name, err)
	}
	if sig.Result == nil || sig.Result.Kind() == dyn.KindVoid {
		return dyn.VoidValue(), nil
	}
	order, err := parseOrder(resp.Header.Get(OrderHeader))
	if err != nil {
		return dyn.Value{}, err
	}
	// The reply body is this call's own heap buffer: the zero-copy decode
	// may alias it, the result value keeps it alive.
	d := cdr.NewDecoder(body, order)
	d.SetZeroCopy(true)
	v, err := cdr.DecodeValue(d, sig.Result)
	if err != nil {
		return dyn.Value{}, fmt.Errorf("h2b: decoding %s result: %w", sig.Name, err)
	}
	return v, nil
}

// callMux performs one RPC over the pooled fast-path connection. It is
// the same wire exchange as the stdlib path — POST, the X-H2B-* headers,
// a CDR body each way — framed by the h2x engine.
func (c *Caller) callMux(ctx context.Context, sig dyn.MethodSig, body []byte) (dyn.Value, error) {
	req := &h2x.Request{
		Method:    "POST",
		Authority: c.Mux,
		Path:      muxCallPath,
		Header: [][2]string{
			{"content-type", CallContentType},
			{muxMethodHeader, sig.Name},
			{muxOrderHeader, orderValue(cdr.BigEndian)},
		},
		Body: body,
	}
	var resp *h2x.Response
	for attempt := 0; ; attempt++ {
		conn, err := muxConn(c.Mux)
		if err != nil {
			return dyn.Value{}, fmt.Errorf("h2b: dialing mux endpoint %s: %w", c.Mux, err)
		}
		resp, err = conn.Do(ctx, req)
		if err == nil {
			break
		}
		// A pooled connection can die between calls (server restart); one
		// redial covers that without masking a live failure.
		if errors.Is(err, h2x.ErrConnClosed) && attempt == 0 && ctx.Err() == nil {
			continue
		}
		return dyn.Value{}, fmt.Errorf("h2b: calling mux endpoint %s: %w", c.Mux, err)
	}

	if code := resp.HeaderValue(muxErrorHeader); code != "" || resp.Status != http.StatusOK {
		msg := resp.Body
		if len(msg) > 1<<16 {
			msg = msg[:1<<16]
		}
		switch code {
		case CodeNonExistentMethod:
			return dyn.Value{}, fmt.Errorf("%w: %s", ErrNonExistentMethod, msg)
		case CodeApplication:
			return dyn.Value{}, &AppError{Message: string(msg)}
		default:
			return dyn.Value{}, fmt.Errorf("h2b: server error %s (HTTP %d): %s", code, resp.Status, msg)
		}
	}
	if sig.Result == nil || sig.Result.Kind() == dyn.KindVoid {
		return dyn.VoidValue(), nil
	}
	order, err := parseOrder(resp.HeaderValue(muxOrderHeader))
	if err != nil {
		return dyn.Value{}, err
	}
	// The reply body is this call's own buffer (the engine never recycles
	// received frames into other streams), so the zero-copy decode may
	// alias it; the result value keeps it alive.
	d := cdr.NewDecoder(resp.Body, order)
	d.SetZeroCopy(true)
	v, err := cdr.DecodeValue(d, sig.Result)
	if err != nil {
		return dyn.Value{}, fmt.Errorf("h2b: decoding %s result: %w", sig.Name, err)
	}
	return v, nil
}

// backend implements cde.Backend over the h2b wire protocol.
type backend struct {
	docs *cde.DocSource

	mu     sync.RWMutex
	caller *Caller
}

var _ cde.Backend = (*backend)(nil)
var _ cde.WatchableBackend = (*backend)(nil)
var _ cde.StreamingBackend = (*backend)(nil)

// NewBackend returns a cde.Backend reading the interface document at
// docURL. httpClient may be nil; it applies to document traffic only.
func NewBackend(docURL string, httpClient *http.Client) cde.Backend {
	return &backend{docs: cde.NewDocSource(docURL, httpClient, nil)}
}

// Technology implements cde.Backend.
func (b *backend) Technology() string { return Name }

// compile turns a fetched (or pushed) interface document into the
// descriptor and (re)targets the caller at the advertised endpoint.
func (b *backend) compile(doc ifsvr.Document) (dyn.InterfaceDescriptor, cde.DocVersions, error) {
	desc, endpoint, mux, err := ParseDoc(doc.Content)
	if err != nil {
		return dyn.InterfaceDescriptor{}, cde.DocVersions{}, err
	}
	desc.Version = doc.DescriptorVersion
	b.mu.Lock()
	b.caller = &Caller{Endpoint: endpoint, Mux: mux}
	b.mu.Unlock()
	return desc, cde.DocVersions{Doc: doc.Version, Descriptor: doc.DescriptorVersion, Epoch: doc.Epoch, Generation: doc.Generation}, nil
}

// FetchInterface implements cde.Backend: fetch the h2b interface document
// and compile it.
func (b *backend) FetchInterface(ctx context.Context) (dyn.InterfaceDescriptor, cde.DocVersions, error) {
	doc, err := b.docs.Fetch(ctx)
	if err != nil {
		return dyn.InterfaceDescriptor{}, cde.DocVersions{}, err
	}
	return b.compile(doc)
}

// WatchInterface implements cde.WatchableBackend over the Interface
// Server's long-poll watch protocol.
func (b *backend) WatchInterface(ctx context.Context, after uint64) (dyn.InterfaceDescriptor, cde.DocVersions, error) {
	doc, err := b.docs.Watch(ctx, after)
	if err != nil {
		return dyn.InterfaceDescriptor{}, cde.DocVersions{}, err
	}
	return b.compile(doc)
}

// StreamInterface implements cde.StreamingBackend over the Interface
// Server's SSE watch transport.
func (b *backend) StreamInterface(ctx context.Context, afterEpoch uint64, deliver func(cde.InterfaceEvent)) error {
	return b.docs.Stream(ctx, afterEpoch, func(ev ifsvr.StreamEvent) {
		desc, vers, err := b.compile(ev.Doc)
		if err != nil {
			return // a malformed intermediate version; the next event supersedes it
		}
		deliver(cde.InterfaceEvent{Desc: desc, Versions: vers, Replayed: ev.Replayed, Snapshot: ev.Snapshot})
	})
}

// Invoke implements cde.Backend.
func (b *backend) Invoke(ctx context.Context, sig dyn.MethodSig, args []dyn.Value) (dyn.Value, error) {
	b.mu.RLock()
	caller := b.caller
	b.mu.RUnlock()
	if caller == nil {
		return dyn.Value{}, errors.New("h2b: backend not initialized")
	}
	return caller.Call(ctx, sig, args)
}

// IsStale implements cde.Backend.
func (b *backend) IsStale(err error) bool { return errors.Is(err, ErrNonExistentMethod) }

// Close implements cde.Backend.
func (b *backend) Close() error { return nil }

// Binding is the complete CDR-over-HTTP/2 RMI technology: the server half
// (core.Binding: Name + Serve) and the client half (Describe + Connect,
// the cde.Connector shape). livedev.RegisterBinding accepts it directly.
type Binding struct{}

// New returns the binding.
func New() Binding { return Binding{} }

// Name implements core.Binding.
func (Binding) Name() string { return Name }

// Serve implements core.Binding.
func (Binding) Serve(m *core.Manager, class *dyn.Class) (core.Server, error) {
	return newServer(m, class)
}

// Describe reports how the binding's interface documents are recognized.
func (Binding) Describe() cde.DocMatch {
	return cde.DocMatch{
		ContentTypes: []string{DocContentType},
		PathSuffixes: []string{".h2b"},
		Content:      func(doc string) bool { return strings.Contains(doc, DocFormat) },
	}
}

// Connect builds a live CDE client from the interface-document URL.
func (Binding) Connect(ctx context.Context, url string, opts *cde.DialOptions) (*cde.Client, error) {
	var hc *http.Client
	var seed *ifsvr.Document
	if opts != nil {
		hc = opts.HTTPClient
		seed = opts.Prefetched
	}
	docs := cde.NewDocSource(url, hc, seed)
	if opts != nil {
		docs.SetEndpoints(opts.Endpoints)
	}
	b := &backend{docs: docs}
	return cde.NewClientContext(ctx, b, opts)
}

// Connector returns the client half as a cde.Connector, for callers wiring
// the registries directly rather than through livedev.RegisterBinding.
func Connector() cde.Connector {
	b := Binding{}
	return cde.Connector{Name: Name, Match: b.Describe(), Connect: b.Connect}
}
