// Package h2b is the multiplexed binary binding for the SDE/CDE: dynamic
// classes called with CDR-encoded bodies over cleartext HTTP/2. It is the
// performance-motivated fourth binding — where jsonb proves the binding
// seam is real, h2b proves it is fast: calls reuse the CORBA binding's
// pooled CDR encoders and zero-copy decoder reads (no per-call JSON/XML
// boxing), and the transport is one long-lived TCP connection per
// endpoint with concurrent calls riding concurrent HTTP/2 streams, so a
// parallel caller never queues behind a connection the way HTTP/1.1
// keep-alive forces.
//
// Wire protocol: POST the CDR-encoded arguments (in signature order,
// jointly forming one CDR stream) to the endpoint with Content-Type
// "application/x-livedev-cdr", the method name in X-H2B-Method, and the
// byte order in X-H2B-Order ("big" or "little"). A 200 reply carries the
// CDR-encoded result with its own X-H2B-Order; an error reply carries the
// code in X-H2B-Error and a plain-text message, using the same codes and
// statuses as the JSON binding. There is no binding-level framing beyond
// this: HTTP/2's own stream framing delimits calls, flow-controls bodies,
// and maps cancellation onto RST_STREAM (the server observes it as the
// request context ending).
//
// The error code "non-existent-method" carries the Section 5.7 guarantee:
// by the time the client sees it, the published interface document is
// current.
//
// The interface document is the JSON binding's machine-readable document
// grammar with this binding's format tag, so `cde.Dial` sniffing
// distinguishes the two by content type, path suffix, and format string
// without either binding scoring on the other's documents.
package h2b

import (
	"encoding/json"
	"fmt"

	"livedev/internal/cdr"
	"livedev/internal/dyn"
	"livedev/internal/jsonb"
)

// Name is the binding's registered technology name.
const Name = "H2B"

// DocFormat identifies the interface-document format (and its version).
const DocFormat = "livedev-h2b-binding/v1"

// DocContentType is the MIME type interface documents are served with.
// The +json suffix keeps them readable by generic tooling while the
// vendor tree keeps Dial sniffing unambiguous against the JSON binding.
const DocContentType = "application/vnd.livedev.h2b+json"

// CallContentType is the MIME type of request and reply bodies.
const CallContentType = "application/x-livedev-cdr"

// Wire headers.
const (
	// MethodHeader names the invoked method on a call request.
	MethodHeader = "X-H2B-Method"
	// OrderHeader declares the CDR byte order of the attached body.
	OrderHeader = "X-H2B-Order"
	// ErrorHeader carries the error code on a failed call's reply.
	ErrorHeader = "X-H2B-Error"
)

// The same wire headers in the lowercase form HTTP/2 field names take on
// the fast-path (h2x) transport.
const (
	muxMethodHeader = "x-h2b-method"
	muxOrderHeader  = "x-h2b-order"
	muxErrorHeader  = "x-h2b-error"
)

// muxCallPath is the :path fast-path calls are sent with. The dedicated
// listener serves exactly one class, so routing is by connection, not
// path; the constant keeps the wire form stable for protocol tooling.
const muxCallPath = "/h2b"

// OrderHeader values.
const (
	OrderBig    = "big"
	OrderLittle = "little"
)

// Wire-protocol error codes — the same vocabulary as the JSON binding.
const (
	// CodeNonExistentMethod is the binding's "Non Existent Method": the
	// Section 5.7 protocol guarantees the published interface document is
	// current by the time a client reads it.
	CodeNonExistentMethod = "non-existent-method"
	// CodeNotInitialized reports a call before the instance exists.
	CodeNotInitialized = "not-initialized"
	// CodeMalformed reports an unparseable request.
	CodeMalformed = "malformed-request"
	// CodeApplication wraps an error returned by the method body.
	CodeApplication = "application-error"
)

// orderValue renders a CDR byte order as its wire-header value.
func orderValue(o cdr.ByteOrder) string {
	if o == cdr.LittleEndian {
		return OrderLittle
	}
	return OrderBig
}

// parseOrder reads an OrderHeader value; the empty string means big-endian
// (CDR's flag-octet default).
func parseOrder(v string) (cdr.ByteOrder, error) {
	switch v {
	case OrderBig, "":
		return cdr.BigEndian, nil
	case OrderLittle:
		return cdr.LittleEndian, nil
	default:
		return cdr.BigEndian, fmt.Errorf("h2b: unknown byte order %q", v)
	}
}

// GenerateDoc renders the interface document for desc served at endpoint.
// The document is the JSON binding's grammar under this binding's format
// tag — the struct table, method list, and endpoint field are identical,
// so the two bindings share one stub compiler. mux, when non-empty, is
// the "host:port" of the dedicated multiplexed fast-path listener and is
// published as the document's "mux_endpoint" field; clients without
// fast-path support ignore the extra key, and documents without it fall
// back to the HTTP endpoint.
func GenerateDoc(desc dyn.InterfaceDescriptor, endpoint, mux string) (string, error) {
	text, err := jsonb.GenerateDoc(desc, endpoint)
	if err != nil {
		return "", err
	}
	text, err = retag(text, jsonb.DocFormat, DocFormat)
	if err != nil || mux == "" {
		return text, err
	}
	return injectMux(text, mux)
}

// ParseDoc compiles an interface document into a descriptor, the
// advertised HTTP call endpoint, and the fast-path mux endpoint (empty
// when the document does not advertise one) — the binding's stub
// compiler.
func ParseDoc(text string) (dyn.InterfaceDescriptor, string, string, error) {
	var probe struct {
		Format string `json:"format"`
		Mux    string `json:"mux_endpoint"`
	}
	if err := json.Unmarshal([]byte(text), &probe); err != nil {
		return dyn.InterfaceDescriptor{}, "", "", fmt.Errorf("h2b: parsing interface document: %w", err)
	}
	if probe.Format != DocFormat {
		return dyn.InterfaceDescriptor{}, "", "", fmt.Errorf("h2b: unsupported document format %q", probe.Format)
	}
	retagged, err := retag(text, DocFormat, jsonb.DocFormat)
	if err != nil {
		return dyn.InterfaceDescriptor{}, "", "", err
	}
	desc, endpoint, err := jsonb.ParseDoc(retagged)
	return desc, endpoint, probe.Mux, err
}

// injectMux adds the "mux_endpoint" field to a rendered document. It
// round-trips through a raw-message map (not jsonb.Doc, which would drop
// the key it is adding).
func injectMux(text, mux string) (string, error) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(text), &m); err != nil {
		return "", fmt.Errorf("h2b: re-parsing interface document: %w", err)
	}
	raw, err := json.Marshal(mux)
	if err != nil {
		return "", err
	}
	m["mux_endpoint"] = raw
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", fmt.Errorf("h2b: encoding interface document: %w", err)
	}
	return string(out), nil
}

// retag swaps the document's format tag, preserving everything else.
func retag(text, from, to string) (string, error) {
	var d jsonb.Doc
	if err := json.Unmarshal([]byte(text), &d); err != nil {
		return "", fmt.Errorf("h2b: parsing interface document: %w", err)
	}
	if d.Format != from {
		return "", fmt.Errorf("h2b: unexpected document format %q", d.Format)
	}
	d.Format = to
	out, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", fmt.Errorf("h2b: encoding interface document: %w", err)
	}
	return string(out), nil
}
