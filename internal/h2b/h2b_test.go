package h2b

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"livedev/internal/cde"
	"livedev/internal/core"
	"livedev/internal/dyn"
	"livedev/internal/jsonb"
)

func init() {
	// Wire the binding exactly the way livedev.RegisterBinding does —
	// through the public registries, no core edits.
	core.RegisterBinding(New())
	cde.RegisterConnector(Connector())
}

func calcClass(t *testing.T) *dyn.Class {
	t.Helper()
	c := dyn.NewClass("HCalc")
	_, err := c.AddMethod(dyn.MethodSpec{
		Name:        "add",
		Params:      []dyn.Param{{Name: "a", Type: dyn.Int32T}, {Name: "b", Type: dyn.Int32T}},
		Result:      dyn.Int32T,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return dyn.Int32Value(args[0].Int32() + args[1].Int32()), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDocRoundTrip(t *testing.T) {
	point := dyn.MustStructOf("Point",
		dyn.StructField{Name: "x", Type: dyn.Float64T},
		dyn.StructField{Name: "y", Type: dyn.Float64T})
	c := dyn.NewClass("HGeo")
	_, _ = c.AddMethod(dyn.MethodSpec{
		Name:        "mid",
		Params:      []dyn.Param{{Name: "a", Type: point}, {Name: "b", Type: point}},
		Result:      dyn.SequenceOf(point),
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			return dyn.SequenceValue(point, args[0], args[1])
		},
	})
	desc := c.Interface()
	text, err := GenerateDoc(desc, "http://example/h2b/HGeo", "example:7412")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, DocFormat) {
		t.Errorf("document does not carry its format tag:\n%s", text)
	}
	got, endpoint, mux, err := ParseDoc(text)
	if err != nil {
		t.Fatal(err)
	}
	if endpoint != "http://example/h2b/HGeo" {
		t.Errorf("endpoint = %q", endpoint)
	}
	if mux != "example:7412" {
		t.Errorf("mux endpoint = %q", mux)
	}
	if !got.Equal(desc) {
		t.Errorf("descriptor round trip mismatch:\n got %v\nwant %v", got.Methods, desc.Methods)
	}

	// A document without the fast-path key still compiles (mux empty).
	plain, err := GenerateDoc(desc, "http://example/h2b/HGeo", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, mux, err := ParseDoc(plain); err != nil || mux != "" {
		t.Errorf("mux-less document: mux=%q err=%v", mux, err)
	}

	// The two bindings share a document grammar but not a format tag: each
	// parser must reject the other's documents, or Dial sniffing would be
	// ambiguous.
	jsonText, err := jsonb.GenerateDoc(desc, "http://example/json/HGeo")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ParseDoc(jsonText); err == nil {
		t.Error("h2b.ParseDoc accepted a JSON-binding document")
	}
	if _, _, err := jsonb.ParseDoc(text); err == nil {
		t.Error("jsonb.ParseDoc accepted an h2b document")
	}
}

func TestServeRegisterAndCall(t *testing.T) {
	mgr, err := core.NewManager(core.Config{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	srv, err := mgr.Register(calcClass(t), core.Technology(Name))
	if err != nil {
		t.Fatal(err)
	}
	if srv.Technology() != core.Technology("H2B") {
		t.Errorf("technology = %s", srv.Technology())
	}

	// Calls before CreateInstance must be refused.
	ctx := context.Background()
	client, err := cde.Dial(ctx, srv.InterfaceURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.CallContext(ctx, "add", dyn.Int32Value(1), dyn.Int32Value(2)); err == nil {
		t.Fatal("call before CreateInstance should fail")
	}

	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	got, err := client.CallContext(ctx, "add", dyn.Int32Value(20), dyn.Int32Value(22))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int32() != 42 {
		t.Errorf("add = %d", got.Int32())
	}
	if client.Technology() != "H2B" {
		t.Errorf("client technology = %s", client.Technology())
	}
}

// TestCallsRideHTTP2 pins the transport claim the interface document
// makes: the advertised endpoint answers prior-knowledge cleartext
// HTTP/2, and calls through the shared call client are h2 streams.
func TestCallsRideHTTP2(t *testing.T) {
	mgr, err := core.NewManager(core.Config{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	h2bSrv, err := mgr.Register(calcClass(t), core.Technology(Name))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2bSrv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	srv := h2bSrv.(*Server)

	req, err := http.NewRequest(http.MethodPost, srv.Endpoint(), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", CallContentType)
	req.Header.Set(MethodHeader, "add")
	resp, err := sharedCallClient.Do(req)
	if err != nil {
		t.Fatalf("POST to the h2b endpoint: %v", err)
	}
	defer resp.Body.Close()
	if resp.Proto != "HTTP/2.0" {
		t.Errorf("call answered over %s, the h2b endpoint must speak HTTP/2", resp.Proto)
	}
	// An empty body for a two-argument method is a stale-encoded call.
	if code := resp.Header.Get(ErrorHeader); code != CodeNonExistentMethod {
		t.Errorf("error code = %q, want %q", code, CodeNonExistentMethod)
	}
}

// TestParallelCallsShareOneConn pins the binding's fast-path design: many
// concurrent calls against one endpoint multiplex as HTTP/2 streams of
// one TCP connection instead of opening one connection each.
func TestParallelCallsShareOneConn(t *testing.T) {
	mgr, err := core.NewManager(core.Config{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv, err := mgr.Register(calcClass(t), core.Technology(Name))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}

	u, err := url.Parse(srv.(*Server).Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	before := Dials(u.Host)

	sig, ok := srv.Class().Interface().Lookup("add")
	if !ok {
		t.Fatal("no signature for add")
	}
	caller := &Caller{Endpoint: srv.(*Server).Endpoint()}
	const callers = 32
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int32) {
			defer wg.Done()
			got, err := caller.Call(context.Background(), sig, []dyn.Value{dyn.Int32Value(i), dyn.Int32Value(1)})
			if err == nil && got.Int32() != i+1 {
				err = fmt.Errorf("add(%d, 1) = %d", i, got.Int32())
			}
			errs <- err
		}(int32(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if dials := Dials(u.Host) - before; dials > 1 {
		t.Errorf("%d parallel calls dialed %d TCP connections; HTTP/2 multiplexing should need 1", callers, dials)
	}
}

// TestMuxParallelCallsShareOneConn is the fast path's version of the
// conn-sharing pin: parallel calls through the mux endpoint ride streams
// of one pooled h2x connection, single-flight dialed.
func TestMuxParallelCallsShareOneConn(t *testing.T) {
	mgr, err := core.NewManager(core.Config{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv, err := mgr.Register(calcClass(t), core.Technology(Name))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}

	muxAddr := srv.(*Server).MuxAddr()
	if muxAddr == "" {
		t.Fatal("server advertises no mux endpoint")
	}
	before := Dials(muxAddr)

	sig, ok := srv.Class().Interface().Lookup("add")
	if !ok {
		t.Fatal("no signature for add")
	}
	caller := &Caller{Endpoint: srv.(*Server).Endpoint(), Mux: muxAddr}
	const callers = 32
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int32) {
			defer wg.Done()
			got, err := caller.Call(context.Background(), sig, []dyn.Value{dyn.Int32Value(i), dyn.Int32Value(1)})
			if err == nil && got.Int32() != i+1 {
				err = fmt.Errorf("add(%d, 1) = %d", i, got.Int32())
			}
			errs <- err
		}(int32(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if dials := Dials(muxAddr) - before; dials > 1 {
		t.Errorf("%d parallel fast-path calls dialed %d TCP connections; the pool should need 1", callers, dials)
	}
}

// TestMuxStaleCallMatchesHTTPPath pins wire-contract parity: the fast
// path reports stale calls with the same error the HTTP path does, so
// the CDE's Section 5.7 reaction works identically on either transport.
func TestMuxStaleCallMatchesHTTPPath(t *testing.T) {
	mgr, err := core.NewManager(core.Config{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv, err := mgr.Register(calcClass(t), core.Technology(Name))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	caller := &Caller{Endpoint: srv.(*Server).Endpoint(), Mux: srv.(*Server).MuxAddr()}
	sig := dyn.MethodSig{Name: "vanished", Result: dyn.Int32T}
	_, err = caller.Call(context.Background(), sig, nil)
	if !errors.Is(err, ErrNonExistentMethod) {
		t.Fatalf("want ErrNonExistentMethod over the fast path, got %v", err)
	}
}

// TestDeadlineExceededUnderConcurrentStreams is the h2b face of the IIOP
// deadline-storm test: many concurrent streams on one connection, half
// with deadlines shorter than the server's work. Expired calls must
// surface context.DeadlineExceeded; their stream resets must not disturb
// the replies of the surviving streams.
func TestDeadlineExceededUnderConcurrentStreams(t *testing.T) {
	mgr, err := core.NewManager(core.Config{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	c := dyn.NewClass("HWork")
	_, _ = c.AddMethod(dyn.MethodSpec{
		Name:        "work",
		Params:      []dyn.Param{{Name: "n", Type: dyn.Int32T}},
		Result:      dyn.Int32T,
		Distributed: true,
		Body: func(_ *dyn.Instance, args []dyn.Value) (dyn.Value, error) {
			time.Sleep(30 * time.Millisecond)
			return dyn.Int32Value(args[0].Int32() * 2), nil
		},
	})
	srv, err := mgr.Register(c, core.Technology(Name))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	sig, ok := c.Interface().Lookup("work")
	if !ok {
		t.Fatal("no signature for work")
	}

	// The same storm over both transports: deadline semantics are part of
	// the wire contract, not a property of one stack.
	for _, tc := range []struct {
		name   string
		caller *Caller
	}{
		{"http", &Caller{Endpoint: srv.(*Server).Endpoint()}},
		{"mux", &Caller{Endpoint: srv.(*Server).Endpoint(), Mux: srv.(*Server).MuxAddr()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const calls = 64
			var wg sync.WaitGroup
			errs := make(chan error, calls)
			for i := 0; i < calls; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					ctx := context.Background()
					if i%2 == 0 {
						var cancel context.CancelFunc
						ctx, cancel = context.WithTimeout(ctx, 5*time.Millisecond)
						defer cancel()
					}
					got, err := tc.caller.Call(ctx, sig, []dyn.Value{dyn.Int32Value(int32(i))})
					switch {
					case i%2 == 0:
						if !errors.Is(err, context.DeadlineExceeded) {
							errs <- fmt.Errorf("call %d: want DeadlineExceeded, got %v", i, err)
							return
						}
					case err != nil:
						errs <- fmt.Errorf("call %d: %v", i, err)
						return
					case got.Int32() != int32(i)*2:
						errs <- fmt.Errorf("call %d: work = %d, want %d", i, got.Int32(), i*2)
						return
					}
					errs <- nil
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Error(err)
				}
			}
		})
	}
}

func TestStaleCallRunsReactiveProtocol(t *testing.T) {
	mgr, err := core.NewManager(core.Config{Timeout: 30 * time.Minute}) // timer effectively never fires
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	class := calcClass(t)
	srv, err := mgr.Register(class, core.Technology(Name))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	client, err := cde.Dial(ctx, srv.InterfaceURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Rename the method; with a huge stability timeout the document stays
	// stale until a client call forces it current (Section 5.7).
	id, ok := class.MethodIDByName("add")
	if !ok {
		t.Fatal("no method id for add")
	}
	if err := class.RenameMethod(id, "plus"); err != nil {
		t.Fatal(err)
	}

	_, err = client.CallContext(ctx, "add", dyn.Int32Value(1), dyn.Int32Value(2))
	var stale *cde.StaleMethodError
	if !errors.As(err, &stale) {
		t.Fatalf("want StaleMethodError, got %v", err)
	}
	// The client's view must already contain the rename.
	if _, ok := client.Interface().Lookup("plus"); !ok {
		t.Error("client view should have been reactively refreshed to contain plus")
	}
	got, err := client.CallContext(ctx, "plus", dyn.Int32Value(40), dyn.Int32Value(2))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int32() != 42 {
		t.Errorf("plus = %d", got.Int32())
	}
}

func TestCancellationAbortsInFlightCall(t *testing.T) {
	mgr, err := core.NewManager(core.Config{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	block := make(chan struct{})
	defer close(block)
	c := dyn.NewClass("HSlow")
	_, _ = c.AddMethod(dyn.MethodSpec{
		Name: "hang", Result: dyn.StringT, Distributed: true,
		Body: func(_ *dyn.Instance, _ []dyn.Value) (dyn.Value, error) {
			<-block
			return dyn.StringValue("late"), nil
		},
	})
	srv, err := mgr.Register(c, core.Technology(Name))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateInstance(); err != nil {
		t.Fatal(err)
	}
	client, err := cde.Dial(context.Background(), srv.InterfaceURL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = client.CallContext(ctx, "hang")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, should be prompt", elapsed)
	}
}
