package h2x

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// startStdlibH2C starts a net/http server speaking prior-knowledge
// cleartext HTTP/2 (the same stack the manager's listener runs).
func startStdlibH2C(t *testing.T, h http.Handler) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var protocols http.Protocols
	protocols.SetHTTP1(true)
	protocols.SetUnencryptedHTTP2(true)
	srv := &http.Server{Handler: h, Protocols: &protocols}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return l.Addr().String()
}

// stdlibH2Client returns an http.Client speaking prior-knowledge h2c.
func stdlibH2Client() *http.Client {
	var protocols http.Protocols
	protocols.SetUnencryptedHTTP2(true)
	return &http.Client{Transport: &http.Transport{Protocols: &protocols}}
}

// TestClientAgainstStdlibServer is the client half's conformance test:
// the engine's frames, HPACK, and flow control must interoperate with
// the standard library's HTTP/2 server — including Huffman-coded and
// dynamic-table-free response headers.
func TestClientAgainstStdlibServer(t *testing.T) {
	addr := startStdlibH2C(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Proto != "HTTP/2.0" {
			http.Error(w, "not http/2", http.StatusBadRequest)
			return
		}
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("X-Echo-Method", r.Header.Get("X-Test-Method"))
		w.Header().Set("Content-Type", "application/x-livedev-cdr")
		_, _ = w.Write(bytes.ToUpper(body))
	}))

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Do(context.Background(), &Request{
		Method:    "POST",
		Authority: addr,
		Path:      "/echo",
		Header:    [][2]string{{"x-test-method", "add"}, {"content-type", "application/x-livedev-cdr"}},
		Body:      []byte("hello h2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("status = %d", resp.Status)
	}
	if got := string(resp.Body); got != "HELLO H2" {
		t.Fatalf("body = %q", got)
	}
	if got := resp.HeaderValue("x-echo-method"); got != "add" {
		t.Fatalf("x-echo-method = %q (Huffman-coded header decode)", got)
	}
}

// TestStdlibClientAgainstServer is the server half's conformance test:
// the standard library's HTTP/2 client (the same stack as the shared
// doc transport) calls the engine.
func TestStdlibClientAgainstServer(t *testing.T) {
	srv := NewServer(HandlerFunc(func(_ context.Context, req *Request) *Response {
		return &Response{
			Status: 200,
			Header: [][2]string{{"content-type", "text/plain"}, {"x-path", req.Path}},
			Body:   append([]byte("got: "), req.Body...),
		}
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := stdlibH2Client()
	resp, err := client.Post("http://"+addr+"/call/X", "text/plain", strings.NewReader("payload"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Proto != "HTTP/2.0" {
		t.Fatalf("proto = %s", resp.Proto)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "got: payload" {
		t.Fatalf("body = %q", body)
	}
	if got := resp.Header.Get("X-Path"); got != "/call/X" {
		t.Fatalf("x-path = %q", got)
	}

	// GET (END_STREAM on HEADERS) exercises the no-body dispatch path.
	resp2, err := client.Get("http://" + addr + "/probe")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if string(body2) != "got: " {
		t.Fatalf("GET body = %q", body2)
	}
}

// TestEngineRoundTrip pins the fast path end to end: our client against
// our server, concurrent calls multiplexed on one connection.
func TestEngineRoundTrip(t *testing.T) {
	srv := NewServer(HandlerFunc(func(_ context.Context, req *Request) *Response {
		return &Response{Status: 200, Body: append([]byte("r:"), req.Body...)}
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("call-%d", i))
			resp, err := c.Do(context.Background(), &Request{
				Method: "POST", Authority: addr, Path: "/x", Body: payload,
			})
			if err != nil {
				errs <- err
				return
			}
			if want := "r:" + string(payload); string(resp.Body) != want {
				errs <- fmt.Errorf("call %d: body %q, want %q", i, resp.Body, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestLargeBodiesFlowControlled pushes bodies past the initial stream
// window in both directions, so DATA chunking, WINDOW_UPDATE crediting,
// and send-window blocking all engage.
func TestLargeBodiesFlowControlled(t *testing.T) {
	srv := NewServer(HandlerFunc(func(_ context.Context, req *Request) *Response {
		return &Response{Status: 200, Body: req.Body}
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	big := make([]byte, 4<<20) // 4 MiB > the 1 MiB stream window
	for i := range big {
		big[i] = byte(i * 31)
	}
	resp, err := c.Do(context.Background(), &Request{Method: "POST", Authority: addr, Path: "/big", Body: big})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Body, big) {
		t.Fatalf("4 MiB round trip corrupted: got %d bytes", len(resp.Body))
	}
}

// TestCancellationResetsStream proves a cancelled call returns promptly
// with ctx.Err() and the server observes the reset as a cancelled
// handler context.
func TestCancellationResetsStream(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	serverSawCancel := make(chan struct{}, 1)
	srv := NewServer(HandlerFunc(func(ctx context.Context, req *Request) *Response {
		if req.Path != "/hang" {
			return &Response{Status: 200}
		}
		select {
		case <-ctx.Done():
			serverSawCancel <- struct{}{}
			return nil
		case <-block:
			return &Response{Status: 200}
		}
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.Do(ctx, &Request{Method: "POST", Authority: addr, Path: "/hang", Body: []byte("x")})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	select {
	case <-serverSawCancel:
	case <-time.After(2 * time.Second):
		t.Fatal("server handler never observed the RST_STREAM cancellation")
	}

	// The connection survives the reset: a fresh call still works.
	resp, err := c.Do(context.Background(), &Request{Method: "GET", Authority: addr, Path: "/ok"})
	if err != nil || resp.Status != 200 {
		t.Fatalf("call after cancellation: %v (status %d)", err, resp.Status)
	}
}

// TestConnDeathFailsInFlightCalls kills the server mid-call and checks
// every waiter is released with ErrConnClosed.
func TestConnDeathFailsInFlightCalls(t *testing.T) {
	block := make(chan struct{})
	srv := NewServer(HandlerFunc(func(ctx context.Context, _ *Request) *Response {
		<-ctx.Done()
		return nil
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-block
			_, err := c.Do(context.Background(), &Request{Method: "POST", Authority: addr, Path: "/hang", Body: []byte("x")})
			if !errors.Is(err, ErrConnClosed) {
				t.Errorf("want ErrConnClosed, got %v", err)
			}
		}()
	}
	close(block)
	time.Sleep(50 * time.Millisecond) // let the calls reach the server
	_ = srv.Close()
	wg.Wait()
	if c.Alive() {
		t.Error("conn should be dead after the server closed it")
	}
}

// TestHuffmanDecode pins the decoder against strings encoded with the
// RFC 7541 example codes.
func TestHuffmanDecode(t *testing.T) {
	// RFC 7541 C.4.1: "www.example.com" huffman-encodes to these octets.
	enc := []byte{0xf1, 0xe3, 0xc2, 0xe5, 0xf2, 0x3a, 0x6b, 0xa0, 0xab, 0x90, 0xf4, 0xff}
	got, err := huffmanDecode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "www.example.com" {
		t.Fatalf("decoded %q", got)
	}
	// C.6.1: "302" -> 0x64 0x02
	got, err = huffmanDecode([]byte{0x64, 0x02})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "302" {
		t.Fatalf("decoded %q", got)
	}
	// An EOS-coded string is invalid.
	if _, err := huffmanDecode([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("EOS should be rejected")
	}
}
