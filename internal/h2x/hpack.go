// Package h2x is a purpose-built cleartext HTTP/2 engine for the h2b
// binding's multiplexed call fast path. The standard library's HTTP/2
// stack is a general server: every call crosses a frame-scheduling
// goroutine on the server and a write-coalescing mutex plus read-loop
// handoff on the client, which on the echo workload costs several times
// a GIOP round trip. This engine speaks genuine HTTP/2 on the wire —
// conformance-tested against the net/http h2c stack in both directions —
// but specializes for the call pattern the binding needs: small
// request/reply bodies, headers encoded without a dynamic HPACK table,
// responses written directly from the handler goroutine, and one
// long-lived TCP connection multiplexing concurrent calls as streams.
//
// What is deliberately not implemented: server push (disabled via
// SETTINGS), priorities (frames are ignored, as RFC 9113 deprecates
// them), trailers, and padding emission (received padding is handled).
// HPACK encoding never uses the dynamic table or Huffman coding — both
// are optional for encoders — and both connection halves advertise
// SETTINGS_HEADER_TABLE_SIZE = 0, which forces the peer's encoder into
// the same stateless subset; the decoder still handles Huffman-coded
// strings and table-size updates, which peers may always send.
package h2x

import (
	"errors"
	"fmt"
)

// hpack static table, RFC 7541 Appendix A. Index 0 is unused (HPACK
// indices are 1-based).
var staticTable = [62][2]string{
	{},
	{":authority", ""},
	{":method", "GET"},
	{":method", "POST"},
	{":path", "/"},
	{":path", "/index.html"},
	{":scheme", "http"},
	{":scheme", "https"},
	{":status", "200"},
	{":status", "204"},
	{":status", "206"},
	{":status", "304"},
	{":status", "400"},
	{":status", "404"},
	{":status", "500"},
	{"accept-charset", ""},
	{"accept-encoding", "gzip, deflate"},
	{"accept-language", ""},
	{"accept-ranges", ""},
	{"accept", ""},
	{"access-control-allow-origin", ""},
	{"age", ""},
	{"allow", ""},
	{"authorization", ""},
	{"cache-control", ""},
	{"content-disposition", ""},
	{"content-encoding", ""},
	{"content-language", ""},
	{"content-length", ""},
	{"content-location", ""},
	{"content-range", ""},
	{"content-type", ""},
	{"cookie", ""},
	{"date", ""},
	{"etag", ""},
	{"expect", ""},
	{"expires", ""},
	{"from", ""},
	{"host", ""},
	{"if-match", ""},
	{"if-modified-since", ""},
	{"if-none-match", ""},
	{"if-range", ""},
	{"if-unmodified-since", ""},
	{"last-modified", ""},
	{"link", ""},
	{"location", ""},
	{"max-forwards", ""},
	{"proxy-authenticate", ""},
	{"proxy-authorization", ""},
	{"range", ""},
	{"referer", ""},
	{"refresh", ""},
	{"retry-after", ""},
	{"server", ""},
	{"set-cookie", ""},
	{"strict-transport-security", ""},
	{"transfer-encoding", ""},
	{"user-agent", ""},
	{"vary", ""},
	{"via", ""},
	{"www-authenticate", ""},
}

// appendVarint appends an HPACK integer with the given prefix bits and
// leading flag byte (RFC 7541 §5.1).
func appendVarint(b []byte, flags byte, prefixBits uint8, v uint64) []byte {
	max := uint64(1)<<prefixBits - 1
	if v < max {
		return append(b, flags|byte(v))
	}
	b = append(b, flags|byte(max))
	v -= max
	for v >= 128 {
		b = append(b, byte(v&0x7f)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// appendIndexed appends an indexed header field (static table hit).
func appendIndexed(b []byte, idx uint64) []byte {
	return appendVarint(b, 0x80, 7, idx)
}

// appendLiteral appends a literal header field without indexing, using a
// static-table name index when nameIdx > 0. Strings are written raw —
// Huffman coding is optional for encoders and skipping it keeps the
// encoder allocation-free and the peer's decode cheap.
func appendLiteral(b []byte, nameIdx uint64, name, value string) []byte {
	b = appendVarint(b, 0x00, 4, nameIdx)
	if nameIdx == 0 {
		b = appendVarint(b, 0x00, 7, uint64(len(name)))
		b = append(b, name...)
	}
	b = appendVarint(b, 0x00, 7, uint64(len(value)))
	return append(b, value...)
}

// huffman decoding: a flat binary tree built once from the RFC 7541
// code table. Node i's children are at transitions[i][bit]; leaves carry
// the decoded symbol. 8-bit-at-a-time tables would be faster, but the
// fast path never receives Huffman-coded strings (our own encoders do
// not emit them) — only stdlib peers in the interop paths do.
type huffNode struct {
	children [2]*huffNode
	sym      byte
	leaf     bool
}

var huffRoot = buildHuffTree()

func buildHuffTree() *huffNode {
	root := &huffNode{}
	for sym := 0; sym < 256; sym++ {
		code := huffmanCodes[sym]
		n := root
		for bit := int(huffmanCodeLen[sym]) - 1; bit >= 0; bit-- {
			b := (code >> uint(bit)) & 1
			if n.children[b] == nil {
				n.children[b] = &huffNode{}
			}
			n = n.children[b]
		}
		n.sym = byte(sym)
		n.leaf = true
	}
	return root
}

var errHuffman = errors.New("h2x: invalid huffman-coded string")

// huffmanDecode decodes an HPACK Huffman-coded string.
func huffmanDecode(in []byte) ([]byte, error) {
	out := make([]byte, 0, len(in)*8/5)
	n := huffRoot
	depth := 0      // bits consumed since the last complete symbol
	allOnes := true // whether those bits are all 1 (a valid EOS-prefix pad)
	for _, b := range in {
		for bit := 7; bit >= 0; bit-- {
			v := (b >> uint(bit)) & 1
			n = n.children[v]
			if n == nil {
				return nil, errHuffman
			}
			depth++
			if v == 0 {
				allOnes = false
			}
			if n.leaf {
				out = append(out, n.sym)
				n = huffRoot
				depth = 0
				allOnes = true
			}
		}
	}
	// Trailing bits must be a prefix of the EOS code (all ones), at most
	// 7 bits (RFC 7541 §5.2).
	if depth > 7 || !allOnes {
		return nil, errHuffman
	}
	return out, nil
}

// hpackDecoder decodes one header block. Both halves of this engine
// advertise SETTINGS_HEADER_TABLE_SIZE = 0, so a conforming peer encoder
// cannot reference dynamic entries; incremental-indexing literals are
// still accepted (adding to a zero-size table evicts immediately, which
// is legal), as are table-size updates down to zero.
type hpackDecoder struct {
	buf []byte
}

var errHPACK = errors.New("h2x: malformed header block")

func (d *hpackDecoder) readVarint(prefixBits uint8) (uint64, byte, error) {
	if len(d.buf) == 0 {
		return 0, 0, errHPACK
	}
	first := d.buf[0]
	d.buf = d.buf[1:]
	max := uint64(1)<<prefixBits - 1
	v := uint64(first) & max
	if v < max {
		return v, first, nil
	}
	for shift := uint(0); ; shift += 7 {
		if len(d.buf) == 0 || shift > 56 {
			return 0, 0, errHPACK
		}
		b := d.buf[0]
		d.buf = d.buf[1:]
		v += uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, first, nil
		}
	}
}

func (d *hpackDecoder) readString() (string, error) {
	n, first, err := d.readVarint(7)
	if err != nil {
		return "", err
	}
	if uint64(len(d.buf)) < n {
		return "", errHPACK
	}
	raw := d.buf[:n]
	d.buf = d.buf[n:]
	if first&0x80 != 0 {
		dec, err := huffmanDecode(raw)
		if err != nil {
			return "", err
		}
		return string(dec), nil
	}
	return string(raw), nil
}

// next returns the next decoded field, or done=true at end of block.
func (d *hpackDecoder) next() (name, value string, done bool, err error) {
	if len(d.buf) == 0 {
		return "", "", true, nil
	}
	b := d.buf[0]
	switch {
	case b&0x80 != 0: // indexed field
		idx, _, err := d.readVarint(7)
		if err != nil {
			return "", "", false, err
		}
		if idx == 0 || idx >= uint64(len(staticTable)) {
			return "", "", false, fmt.Errorf("%w: index %d outside the static table", errHPACK, idx)
		}
		e := staticTable[idx]
		return e[0], e[1], false, nil
	case b&0xe0 == 0x20: // dynamic table size update
		size, _, err := d.readVarint(5)
		if err != nil {
			return "", "", false, err
		}
		if size != 0 {
			return "", "", false, fmt.Errorf("%w: table size %d exceeds the advertised 0", errHPACK, size)
		}
		return d.next()
	default: // literal: with incremental indexing (0x40), without (0x00), never-indexed (0x10)
		prefix := uint8(4)
		if b&0x40 != 0 {
			prefix = 6
		}
		nameIdx, _, err := d.readVarint(prefix)
		if err != nil {
			return "", "", false, err
		}
		if nameIdx > 0 {
			if nameIdx >= uint64(len(staticTable)) {
				return "", "", false, fmt.Errorf("%w: name index %d outside the static table", errHPACK, nameIdx)
			}
			name = staticTable[nameIdx][0]
		} else if name, err = d.readString(); err != nil {
			return "", "", false, err
		}
		if value, err = d.readString(); err != nil {
			return "", "", false, err
		}
		return name, value, false, nil
	}
}

// decodeHeaderBlock decodes a complete header block into field pairs.
func decodeHeaderBlock(block []byte) ([][2]string, error) {
	d := hpackDecoder{buf: block}
	var out [][2]string
	for {
		name, value, done, err := d.next()
		if err != nil {
			return nil, err
		}
		if done {
			return out, nil
		}
		out = append(out, [2]string{name, value})
	}
}
