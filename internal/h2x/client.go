package h2x

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
)

// Request is one call as the engine sees it: pseudo-header components
// plus regular header fields (names must be lowercase, per HTTP/2) and
// an optional body.
type Request struct {
	Method    string
	Scheme    string
	Authority string
	Path      string
	Header    [][2]string
	Body      []byte
}

// Response is one reply: the status code, the regular header fields, and
// the complete body. A server handler may set Done; the engine invokes
// it once the response octets have been copied out (or the response is
// dropped), which is what lets handlers hand over pooled buffers as
// Body.
type Response struct {
	Status int
	Header [][2]string
	Body   []byte
	Done   func()
}

// HeaderValue returns the first value of the named (lowercase) field.
func (r *Request) HeaderValue(name string) string {
	for _, f := range r.Header {
		if f[0] == name {
			return f[1]
		}
	}
	return ""
}

// HeaderValue returns the first value of the named (lowercase) field.
func (r *Response) HeaderValue(name string) string {
	for _, f := range r.Header {
		if f[0] == name {
			return f[1]
		}
	}
	return ""
}

// ErrConnClosed reports a call attempted on (or interrupted by) a dead
// connection; callers holding a pooled conn redial on it.
var ErrConnClosed = errors.New("h2x: connection closed")

// ClientConn is one cleartext prior-knowledge HTTP/2 client connection
// multiplexing concurrent calls as streams. A call is one write syscall
// (HEADERS and DATA leave in a single buffer) plus a channel receive;
// the connection's read loop parses reply frames and completes calls.
type ClientConn struct {
	conn net.Conn
	br   *bufio.Reader

	wmu  sync.Mutex // serializes writes; wbuf is its scratch
	wbuf []byte

	mu      sync.Mutex // streams registry + conn liveness
	streams map[uint32]*clientStream
	nextID  uint32
	dead    error

	flow *flowState

	recvMu   sync.Mutex // receive-window credit accounting
	recvDebt uint32
}

// clientStream is one in-flight call.
type clientStream struct {
	id   uint32
	resp Response
	body []byte
	done chan error // buffered; nil error = complete response
}

// flowState tracks send-direction flow control: the connection window
// plus the peer's initial stream window, guarded by one mutex with a
// broadcast when credit arrives.
type flowState struct {
	mu            sync.Mutex
	cond          *sync.Cond
	connWindow    int64
	initialWindow int64            // peer SETTINGS_INITIAL_WINDOW_SIZE
	streamWindow  map[uint32]int64 // per open stream
	maxFrame      uint32           // peer SETTINGS_MAX_FRAME_SIZE
	dead          bool
}

func newFlowState() *flowState {
	f := &flowState{
		connWindow:    initialWindow,
		initialWindow: initialWindow,
		streamWindow:  make(map[uint32]int64),
		maxFrame:      minMaxFrameSize,
	}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Dial opens a prior-knowledge h2c connection to addr and performs the
// client half of the HTTP/2 connection setup.
func Dial(addr string) (*ClientConn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClientConn(nc), nil
}

// NewClientConn runs the HTTP/2 client preface over an established
// connection and returns the multiplexing conn.
func NewClientConn(nc net.Conn) *ClientConn {
	c := &ClientConn{
		conn:    nc,
		br:      bufio.NewReaderSize(nc, 1<<16),
		streams: make(map[uint32]*clientStream),
		nextID:  1,
	}
	c.flow = newFlowState()
	b := append([]byte(nil), clientPreface...)
	b = appendSettings(b,
		[2]uint32{settingHeaderTableSize, 0},
		[2]uint32{settingEnablePush, 0},
		[2]uint32{settingMaxConcurrentStreams, maxConcurrentStream},
		[2]uint32{settingInitialWindowSize, streamWindow},
		[2]uint32{settingMaxFrameSize, maxFrameSize},
	)
	b = appendWindowUpdate(b, 0, connWindow-initialWindow)
	_, _ = nc.Write(b)
	go c.readLoop()
	return c
}

// Close tears the connection down; in-flight calls fail with
// ErrConnClosed.
func (c *ClientConn) Close() error { return c.conn.Close() }

// Alive reports whether the connection can still carry calls.
func (c *ClientConn) Alive() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead == nil
}

// fail marks the connection dead and completes every in-flight call.
func (c *ClientConn) fail(err error) {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = err
	}
	streams := c.streams
	c.streams = make(map[uint32]*clientStream)
	c.mu.Unlock()
	c.flow.mu.Lock()
	c.flow.dead = true
	c.flow.cond.Broadcast()
	c.flow.mu.Unlock()
	_ = c.conn.Close()
	for _, s := range streams {
		s.done <- err
	}
}

// Do performs one call. Cancelling ctx resets the stream (RST_STREAM
// with CANCEL) and returns ctx.Err().
func (c *ClientConn) Do(ctx context.Context, req *Request) (*Response, error) {
	s := &clientStream{done: make(chan error, 1)}
	c.mu.Lock()
	if c.dead != nil {
		err := c.dead
		c.mu.Unlock()
		return nil, err
	}
	s.id = c.nextID
	c.nextID += 2
	c.streams[s.id] = s
	c.mu.Unlock()

	c.flow.mu.Lock()
	c.flow.streamWindow[s.id] = c.flow.initialWindow
	c.flow.mu.Unlock()

	if err := c.writeRequest(ctx, s.id, req); err != nil {
		c.forget(s.id)
		c.flow.forget(s.id)
		return nil, err
	}

	select {
	case err := <-s.done:
		c.flow.forget(s.id)
		if err != nil {
			return nil, err
		}
		s.resp.Body = s.body
		return &s.resp, nil
	case <-ctx.Done():
		if c.forget(s.id) {
			c.wmu.Lock()
			buf := appendRSTStream(c.wbuf[:0], s.id, errCodeCancel)
			_, _ = c.conn.Write(buf)
			c.wbuf = buf
			c.wmu.Unlock()
		}
		c.flow.forget(s.id)
		return nil, ctx.Err()
	}
}

// forget removes the stream from the registry, reporting whether it was
// still registered (false means the read loop already completed it).
func (c *ClientConn) forget(id uint32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.streams[id]; !ok {
		return false
	}
	delete(c.streams, id)
	return true
}

func (f *flowState) forget(id uint32) {
	f.mu.Lock()
	delete(f.streamWindow, id)
	f.mu.Unlock()
}

// take blocks until n octets of both connection and stream send window
// are available, then consumes them. It fails when the conn dies, the
// stream is forgotten (reset), or ctx ends. n must fit the windows'
// maximums; callers chunk by maxFrame first.
func (f *flowState) take(ctx context.Context, id uint32, n int64) error {
	stop := context.AfterFunc(ctx, func() {
		f.mu.Lock()
		f.cond.Broadcast()
		f.mu.Unlock()
	})
	defer stop()
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.dead {
			return ErrConnClosed
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		w, ok := f.streamWindow[id]
		if !ok {
			return ErrConnClosed
		}
		if f.connWindow >= n && w >= n {
			f.connWindow -= n
			f.streamWindow[id] -= n
			return nil
		}
		f.cond.Wait()
	}
}

// writeRequest encodes and sends HEADERS (+DATA) for one call. The
// whole request leaves in one conn.Write when flow control permits,
// which for the binding's small bodies is always.
func (c *ClientConn) writeRequest(ctx context.Context, id uint32, req *Request) error {
	// Header block: pseudo-headers first, stateless HPACK.
	var block []byte
	switch req.Method {
	case "GET":
		block = appendIndexed(block, 2)
	case "POST":
		block = appendIndexed(block, 3)
	default:
		block = appendLiteral(block, 2, "", req.Method)
	}
	if req.Scheme == "" || req.Scheme == "http" {
		block = appendIndexed(block, 6)
	} else {
		block = appendLiteral(block, 6, "", req.Scheme)
	}
	block = appendLiteral(block, 4, "", req.Path)
	block = appendLiteral(block, 1, "", req.Authority)
	for _, f := range req.Header {
		block = appendLiteral(block, 0, f[0], f[1])
	}

	c.flow.mu.Lock()
	maxFrame := int(c.flow.maxFrame)
	c.flow.mu.Unlock()
	if len(block) > maxFrame {
		return fmt.Errorf("h2x: header block of %d octets exceeds the peer's frame limit", len(block))
	}

	endStream := uint8(0)
	if len(req.Body) == 0 {
		endStream = flagEndStream
	}

	// Fast path: body fits one frame and the windows have room.
	if len(req.Body) <= maxFrame {
		if len(req.Body) > 0 {
			if err := c.flow.take(ctx, id, int64(len(req.Body))); err != nil {
				return err
			}
		}
		c.wmu.Lock()
		buf := appendFrameHeader(c.wbuf[:0], len(block), frameHeaders, flagEndHeaders|endStream, id)
		buf = append(buf, block...)
		if len(req.Body) > 0 {
			buf = appendFrameHeader(buf, len(req.Body), frameData, flagEndStream, id)
			buf = append(buf, req.Body...)
		}
		_, err := c.conn.Write(buf)
		c.wbuf = buf
		c.wmu.Unlock()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrConnClosed, err)
		}
		return nil
	}

	// Large body: HEADERS first, then window-gated DATA chunks.
	c.wmu.Lock()
	buf := appendFrameHeader(c.wbuf[:0], len(block), frameHeaders, flagEndHeaders, id)
	buf = append(buf, block...)
	_, err := c.conn.Write(buf)
	c.wbuf = buf
	c.wmu.Unlock()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrConnClosed, err)
	}
	body := req.Body
	for len(body) > 0 {
		c.flow.mu.Lock()
		maxFrame = int(c.flow.maxFrame)
		c.flow.mu.Unlock()
		n := min(len(body), maxFrame)
		if err := c.flow.take(ctx, id, int64(n)); err != nil {
			// HEADERS already left; reset the half-sent stream so the
			// peer can release it.
			if !errors.Is(err, ErrConnClosed) {
				c.wmu.Lock()
				buf := appendRSTStream(c.wbuf[:0], id, errCodeCancel)
				_, _ = c.conn.Write(buf)
				c.wbuf = buf
				c.wmu.Unlock()
			}
			return err
		}
		flags := uint8(0)
		if n == len(body) {
			flags = flagEndStream
		}
		c.wmu.Lock()
		buf = appendFrameHeader(c.wbuf[:0], n, frameData, flags, id)
		buf = append(buf, body[:n]...)
		_, err = c.conn.Write(buf)
		c.wbuf = buf
		c.wmu.Unlock()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrConnClosed, err)
		}
		body = body[n:]
	}
	return nil
}

// creditReceive returns receive-window credit to the peer: the stream's
// immediately (so multi-frame bodies keep flowing), the connection's in
// batches.
func (c *ClientConn) creditReceive(streamID uint32, n uint32, streamOpen bool) {
	if n == 0 {
		return
	}
	c.recvMu.Lock()
	c.recvDebt += n
	connCredit := uint32(0)
	if c.recvDebt >= connWindow/4 {
		connCredit = c.recvDebt
		c.recvDebt = 0
	}
	c.recvMu.Unlock()
	if connCredit == 0 && !streamOpen {
		return
	}
	c.wmu.Lock()
	buf := c.wbuf[:0]
	if streamOpen {
		buf = appendWindowUpdate(buf, streamID, n)
	}
	if connCredit > 0 {
		buf = appendWindowUpdate(buf, 0, connCredit)
	}
	_, _ = c.conn.Write(buf)
	c.wbuf = buf
	c.wmu.Unlock()
}

// lookup finds a registered stream.
func (c *ClientConn) lookup(id uint32) *clientStream {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.streams[id]
}

// complete finishes a stream: removes it and delivers err (nil = done).
func (c *ClientConn) complete(id uint32, err error) {
	c.mu.Lock()
	s := c.streams[id]
	delete(c.streams, id)
	c.mu.Unlock()
	if s != nil {
		s.done <- err
	}
}

// readLoop parses reply frames until the connection dies.
func (c *ClientConn) readLoop() {
	var hbuf [9]byte
	payload := make([]byte, 0, 1<<16)
	for {
		hdr, err := readFrameHeader(c.br, &hbuf)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		if hdr.length > maxFrameSize {
			c.fail(errFrameTooLarge)
			return
		}
		if cap(payload) < int(hdr.length) {
			payload = make([]byte, hdr.length)
		}
		payload = payload[:hdr.length]
		if _, err := readFull(c.br, payload); err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}

		switch hdr.typ {
		case frameHeaders:
			if err := c.handleHeaders(hdr, payload); err != nil {
				c.fail(err)
				return
			}
		case frameData:
			body := payload
			if hdr.flags&flagPadded != 0 {
				b, err := stripPadding(payload)
				if err != nil {
					c.fail(&connError{errCodeProtocol, err.Error()})
					return
				}
				body = b
			}
			s := c.lookup(hdr.streamID)
			if s != nil {
				s.body = append(s.body, body...)
			}
			// Flow control counts the whole payload, padding included.
			c.creditReceive(hdr.streamID, hdr.length, s != nil && hdr.flags&flagEndStream == 0)
			if s != nil && hdr.flags&flagEndStream != 0 {
				c.complete(hdr.streamID, nil)
			}
		case frameRSTStream:
			if len(payload) == 4 {
				code := uint32(payload[0])<<24 | uint32(payload[1])<<16 | uint32(payload[2])<<8 | uint32(payload[3])
				c.complete(hdr.streamID, fmt.Errorf("h2x: stream reset by peer (code %d)", code))
			}
		case frameSettings:
			if hdr.flags&flagAck != 0 {
				continue
			}
			c.applySettings(payload)
			c.wmu.Lock()
			buf := appendSettingsAck(c.wbuf[:0])
			_, _ = c.conn.Write(buf)
			c.wbuf = buf
			c.wmu.Unlock()
		case framePing:
			if hdr.flags&flagAck == 0 && len(payload) == 8 {
				c.wmu.Lock()
				buf := appendPingAck(c.wbuf[:0], payload)
				_, _ = c.conn.Write(buf)
				c.wbuf = buf
				c.wmu.Unlock()
			}
		case frameWindowUpdate:
			if len(payload) == 4 {
				delta := int64(uint32(payload[0])<<24|uint32(payload[1])<<16|uint32(payload[2])<<8|uint32(payload[3])) & 0x7fffffff
				c.flow.credit(hdr.streamID, delta)
			}
		case frameGoAway:
			c.fail(fmt.Errorf("%w: GOAWAY from peer", ErrConnClosed))
			return
		case framePriority, framePushPromise, frameContinuation:
			// PRIORITY is ignored (RFC 9113 deprecates it); push is
			// disabled via SETTINGS; CONTINUATION outside handleHeaders
			// means an interleaved header block, which is a protocol
			// error.
			if hdr.typ == frameContinuation {
				c.fail(&connError{errCodeProtocol, "unexpected CONTINUATION"})
				return
			}
		}
	}
}

// handleHeaders decodes a HEADERS frame (reading CONTINUATIONs as
// needed) and applies it to the stream.
func (c *ClientConn) handleHeaders(hdr frameHeader, payload []byte) error {
	fragment := payload
	if hdr.flags&flagPadded != 0 {
		b, err := stripPadding(payload)
		if err != nil {
			return &connError{errCodeProtocol, err.Error()}
		}
		fragment = b
	}
	if hdr.flags&flagPriority != 0 {
		if len(fragment) < 5 {
			return &connError{errCodeProtocol, "HEADERS priority block too short"}
		}
		fragment = fragment[5:]
	}
	block := append([]byte(nil), fragment...)
	endHeaders := hdr.flags&flagEndHeaders != 0
	var hbuf [9]byte
	for !endHeaders {
		ch, err := readFrameHeader(c.br, &hbuf)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrConnClosed, err)
		}
		if ch.typ != frameContinuation || ch.streamID != hdr.streamID || ch.length > maxFrameSize {
			return &connError{errCodeProtocol, "bad CONTINUATION"}
		}
		cont := make([]byte, ch.length)
		if _, err := readFull(c.br, cont); err != nil {
			return fmt.Errorf("%w: %v", ErrConnClosed, err)
		}
		block = append(block, cont...)
		endHeaders = ch.flags&flagEndHeaders != 0
	}

	fields, err := decodeHeaderBlock(block)
	if err != nil {
		return &connError{errCodeProtocol, err.Error()}
	}
	s := c.lookup(hdr.streamID)
	if s == nil {
		return nil // cancelled stream; ignore
	}
	for _, f := range fields {
		if f[0] == ":status" {
			s.resp.Status, _ = strconv.Atoi(f[1])
		} else if len(f[0]) > 0 && f[0][0] != ':' {
			s.resp.Header = append(s.resp.Header, f)
		}
	}
	if hdr.flags&flagEndStream != 0 {
		c.complete(hdr.streamID, nil)
	}
	return nil
}

// applySettings applies a peer SETTINGS frame to the send direction.
func (c *ClientConn) applySettings(payload []byte) {
	c.flow.mu.Lock()
	for i := 0; i+6 <= len(payload); i += 6 {
		id := uint16(payload[i])<<8 | uint16(payload[i+1])
		v := uint32(payload[i+2])<<24 | uint32(payload[i+3])<<16 | uint32(payload[i+4])<<8 | uint32(payload[i+5])
		switch id {
		case settingInitialWindowSize:
			delta := int64(v) - c.flow.initialWindow
			c.flow.initialWindow = int64(v)
			for sid := range c.flow.streamWindow {
				c.flow.streamWindow[sid] += delta
			}
		case settingMaxFrameSize:
			if v >= minMaxFrameSize {
				c.flow.maxFrame = v
			}
		}
	}
	c.flow.cond.Broadcast()
	c.flow.mu.Unlock()
}

// credit adds send-window credit (streamID 0 = connection) and wakes
// blocked writers.
func (f *flowState) credit(streamID uint32, delta int64) {
	f.mu.Lock()
	if streamID == 0 {
		f.connWindow += delta
	} else if _, ok := f.streamWindow[streamID]; ok {
		f.streamWindow[streamID] += delta
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// readFull is io.ReadFull without the interface indirection cost on the
// hot loop.
func readFull(br *bufio.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := br.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
