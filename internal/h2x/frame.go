package h2x

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// clientPreface is the HTTP/2 connection preface (RFC 9113 §3.4).
const clientPreface = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"

// Frame types (RFC 9113 §6).
const (
	frameData         = 0x0
	frameHeaders      = 0x1
	framePriority     = 0x2
	frameRSTStream    = 0x3
	frameSettings     = 0x4
	framePushPromise  = 0x5
	framePing         = 0x6
	frameGoAway       = 0x7
	frameWindowUpdate = 0x8
	frameContinuation = 0x9
)

// Frame flags.
const (
	flagEndStream  = 0x1 // DATA, HEADERS
	flagAck        = 0x1 // SETTINGS, PING
	flagEndHeaders = 0x4 // HEADERS, CONTINUATION
	flagPadded     = 0x8 // DATA, HEADERS
	flagPriority   = 0x20
)

// Settings identifiers (RFC 9113 §6.5.2).
const (
	settingHeaderTableSize      = 0x1
	settingEnablePush           = 0x2
	settingMaxConcurrentStreams = 0x3
	settingInitialWindowSize    = 0x4
	settingMaxFrameSize         = 0x5
	settingMaxHeaderListSize    = 0x6
)

// Error codes (RFC 9113 §7).
const (
	errCodeNo              = 0x0
	errCodeProtocol        = 0x1
	errCodeFlowControl     = 0x3
	errCodeCancel          = 0x8
	errCodeEnhanceYourCalm = 0xb
)

// Protocol limits. minMaxFrameSize is the size every peer must accept,
// and the assumed cap for sent frames until the peer's SETTINGS says
// more. maxFrameSize caps what this engine will read.
const (
	minMaxFrameSize     = 1 << 14
	maxFrameSize        = 1 << 18
	initialWindow       = 65535   // RFC-defined starting window
	connWindow          = 1 << 30 // advertised connection receive window
	streamWindow        = 1 << 20 // advertised per-stream receive window
	maxConcurrentStream = 1024
)

// frameHeader is one frame's 9-octet header.
type frameHeader struct {
	length   uint32
	typ      uint8
	flags    uint8
	streamID uint32
}

var errFrameTooLarge = errors.New("h2x: frame exceeds the advertised maximum size")

// readFrameHeader reads one frame header from r into hdr.
func readFrameHeader(r io.Reader, buf *[9]byte) (frameHeader, error) {
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return frameHeader{}, err
	}
	return frameHeader{
		length:   uint32(buf[0])<<16 | uint32(buf[1])<<8 | uint32(buf[2]),
		typ:      buf[3],
		flags:    buf[4],
		streamID: binary.BigEndian.Uint32(buf[5:]) & 0x7fffffff,
	}, nil
}

// appendFrameHeader appends a frame header to b.
func appendFrameHeader(b []byte, length int, typ, flags uint8, streamID uint32) []byte {
	return append(b,
		byte(length>>16), byte(length>>8), byte(length),
		typ, flags,
		byte(streamID>>24), byte(streamID>>16), byte(streamID>>8), byte(streamID))
}

// appendSettings appends a SETTINGS frame with the given id/value pairs.
func appendSettings(b []byte, pairs ...[2]uint32) []byte {
	b = appendFrameHeader(b, len(pairs)*6, frameSettings, 0, 0)
	for _, p := range pairs {
		b = append(b, byte(p[0]>>8), byte(p[0]), byte(p[1]>>24), byte(p[1]>>16), byte(p[1]>>8), byte(p[1]))
	}
	return b
}

// appendSettingsAck appends a SETTINGS acknowledgement.
func appendSettingsAck(b []byte) []byte {
	return appendFrameHeader(b, 0, frameSettings, flagAck, 0)
}

// appendWindowUpdate appends a WINDOW_UPDATE for the stream (0 = conn).
func appendWindowUpdate(b []byte, streamID uint32, delta uint32) []byte {
	b = appendFrameHeader(b, 4, frameWindowUpdate, 0, streamID)
	return append(b, byte(delta>>24), byte(delta>>16), byte(delta>>8), byte(delta))
}

// appendRSTStream appends a RST_STREAM frame.
func appendRSTStream(b []byte, streamID, code uint32) []byte {
	b = appendFrameHeader(b, 4, frameRSTStream, 0, streamID)
	return append(b, byte(code>>24), byte(code>>16), byte(code>>8), byte(code))
}

// appendGoAway appends a GOAWAY frame.
func appendGoAway(b []byte, lastStream, code uint32) []byte {
	b = appendFrameHeader(b, 8, frameGoAway, 0, 0)
	b = append(b, byte(lastStream>>24), byte(lastStream>>16), byte(lastStream>>8), byte(lastStream))
	return append(b, byte(code>>24), byte(code>>16), byte(code>>8), byte(code))
}

// appendPingAck appends a PING acknowledgement echoing payload.
func appendPingAck(b []byte, payload []byte) []byte {
	b = appendFrameHeader(b, 8, framePing, flagAck, 0)
	return append(b, payload...)
}

// stripPadding removes the pad-length prefix and trailing padding from a
// PADDED DATA or HEADERS payload.
func stripPadding(payload []byte) ([]byte, error) {
	if len(payload) < 1 {
		return nil, errors.New("h2x: padded frame too short")
	}
	pad := int(payload[0])
	body := payload[1:]
	if pad > len(body) {
		return nil, errors.New("h2x: padding exceeds frame payload")
	}
	return body[:len(body)-pad], nil
}

// connError is a connection-fatal protocol error.
type connError struct {
	code uint32
	msg  string
}

func (e *connError) Error() string { return fmt.Sprintf("h2x: connection error %d: %s", e.code, e.msg) }
