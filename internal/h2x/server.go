package h2x

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"sync"
)

// Handler serves one complete call. It runs on its own goroutine per
// stream; ctx is cancelled when the client resets the stream or the
// connection dies. The returned response is written directly from that
// goroutine — no frame-scheduler handoff.
type Handler interface {
	ServeH2(ctx context.Context, req *Request) *Response
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ctx context.Context, req *Request) *Response

// ServeH2 implements Handler.
func (f HandlerFunc) ServeH2(ctx context.Context, req *Request) *Response { return f(ctx, req) }

// maxServerBody caps one request body; the binding enforces its own
// (smaller) limit, this one just bounds engine memory.
const maxServerBody = 32 << 20

// Server accepts prior-knowledge cleartext HTTP/2 connections and
// serves calls through a Handler.
type Server struct {
	handler Handler

	mu       sync.Mutex
	listener net.Listener
	conns    map[*serverConn]struct{}
	closed   bool
}

// NewServer returns a server dispatching to h.
func NewServer(h Handler) *Server {
	return &Server{handler: h, conns: make(map[*serverConn]struct{})}
}

// Listen starts serving on addr ("127.0.0.1:0" for an ephemeral port)
// and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = l.Close()
		return "", fmt.Errorf("h2x: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	for {
		nc, err := l.Accept()
		if err != nil {
			return
		}
		c := &serverConn{
			srv:     s,
			conn:    nc,
			br:      bufio.NewReaderSize(nc, 1<<16),
			streams: make(map[uint32]*serverStream),
			flow:    newFlowState(),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = nc.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go c.serve()
	}
}

// Close stops the listener and tears down every connection. Handler
// goroutines are not joined: a handler blocked in application code
// observes its cancelled context, and its response write fails
// harmlessly on the closed connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.conn.Close()
	}
	return nil
}

// serverConn is one accepted connection.
type serverConn struct {
	srv  *Server
	conn net.Conn
	br   *bufio.Reader

	wmu  sync.Mutex
	wbuf []byte

	mu      sync.Mutex
	streams map[uint32]*serverStream

	flow *flowState

	recvMu   sync.Mutex
	recvDebt uint32
}

// serverStream is one request being assembled (or served).
type serverStream struct {
	id     uint32
	req    Request
	cancel context.CancelFunc
}

func (c *serverConn) serve() {
	defer func() {
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
		c.teardown()
	}()

	// Connection preface, then our settings.
	preface := make([]byte, len(clientPreface))
	if _, err := readFull(c.br, preface); err != nil || string(preface) != clientPreface {
		return
	}
	b := appendSettings(nil,
		[2]uint32{settingHeaderTableSize, 0},
		[2]uint32{settingMaxConcurrentStreams, maxConcurrentStream},
		[2]uint32{settingInitialWindowSize, streamWindow},
		[2]uint32{settingMaxFrameSize, maxFrameSize},
	)
	b = appendWindowUpdate(b, 0, connWindow-initialWindow)
	if _, err := c.conn.Write(b); err != nil {
		return
	}

	connCtx, cancelConn := context.WithCancel(context.Background())
	defer cancelConn()

	var hbuf [9]byte
	payload := make([]byte, 0, 1<<16)
	for {
		hdr, err := readFrameHeader(c.br, &hbuf)
		if err != nil {
			return
		}
		if hdr.length > maxFrameSize {
			c.goAway(errCodeProtocol)
			return
		}
		if cap(payload) < int(hdr.length) {
			payload = make([]byte, hdr.length)
		}
		payload = payload[:hdr.length]
		if _, err := readFull(c.br, payload); err != nil {
			return
		}

		switch hdr.typ {
		case frameHeaders:
			if err := c.handleHeaders(connCtx, hdr, payload); err != nil {
				c.goAway(errCodeProtocol)
				return
			}
		case frameData:
			if err := c.handleData(hdr, payload); err != nil {
				c.goAway(errCodeFlowControl)
				return
			}
		case frameRSTStream:
			c.mu.Lock()
			s := c.streams[hdr.streamID]
			delete(c.streams, hdr.streamID)
			c.mu.Unlock()
			if s != nil && s.cancel != nil {
				s.cancel()
			}
			c.flow.forget(hdr.streamID)
		case frameSettings:
			if hdr.flags&flagAck != 0 {
				continue
			}
			c.applySettings(payload)
			c.wmu.Lock()
			buf := appendSettingsAck(c.wbuf[:0])
			_, _ = c.conn.Write(buf)
			c.wbuf = buf
			c.wmu.Unlock()
		case framePing:
			if hdr.flags&flagAck == 0 && len(payload) == 8 {
				c.wmu.Lock()
				buf := appendPingAck(c.wbuf[:0], payload)
				_, _ = c.conn.Write(buf)
				c.wbuf = buf
				c.wmu.Unlock()
			}
		case frameWindowUpdate:
			if len(payload) == 4 {
				delta := int64(uint32(payload[0])<<24|uint32(payload[1])<<16|uint32(payload[2])<<8|uint32(payload[3])) & 0x7fffffff
				c.flow.credit(hdr.streamID, delta)
			}
		case frameGoAway:
			return
		case frameContinuation:
			c.goAway(errCodeProtocol)
			return
		case framePriority:
			// Deprecated; ignored.
		}
	}
}

// teardown cancels every in-flight stream and unblocks writers.
func (c *serverConn) teardown() {
	_ = c.conn.Close()
	c.mu.Lock()
	streams := c.streams
	c.streams = make(map[uint32]*serverStream)
	c.mu.Unlock()
	for _, s := range streams {
		if s.cancel != nil {
			s.cancel()
		}
	}
	c.flow.mu.Lock()
	c.flow.dead = true
	c.flow.cond.Broadcast()
	c.flow.mu.Unlock()
}

func (c *serverConn) goAway(code uint32) {
	c.wmu.Lock()
	buf := appendGoAway(c.wbuf[:0], 0, code)
	_, _ = c.conn.Write(buf)
	c.wbuf = buf
	c.wmu.Unlock()
}

// handleHeaders assembles a request's header block (reading
// CONTINUATIONs inline if the peer splits it) and either dispatches the
// request (END_STREAM set) or parks the stream awaiting DATA.
func (c *serverConn) handleHeaders(connCtx context.Context, hdr frameHeader, payload []byte) error {
	fragment := payload
	if hdr.flags&flagPadded != 0 {
		b, err := stripPadding(payload)
		if err != nil {
			return err
		}
		fragment = b
	}
	if hdr.flags&flagPriority != 0 {
		if len(fragment) < 5 {
			return fmt.Errorf("h2x: HEADERS priority block too short")
		}
		fragment = fragment[5:]
	}
	block := append([]byte(nil), fragment...)
	endHeaders := hdr.flags&flagEndHeaders != 0
	var hbuf [9]byte
	for !endHeaders {
		ch, err := readFrameHeader(c.br, &hbuf)
		if err != nil {
			return err
		}
		if ch.typ != frameContinuation || ch.streamID != hdr.streamID || ch.length > maxFrameSize {
			return fmt.Errorf("h2x: bad CONTINUATION")
		}
		cont := make([]byte, ch.length)
		if _, err := readFull(c.br, cont); err != nil {
			return err
		}
		block = append(block, cont...)
		endHeaders = ch.flags&flagEndHeaders != 0
	}

	fields, err := decodeHeaderBlock(block)
	if err != nil {
		return err
	}
	s := &serverStream{id: hdr.streamID}
	for _, f := range fields {
		switch f[0] {
		case ":method":
			s.req.Method = f[1]
		case ":scheme":
			s.req.Scheme = f[1]
		case ":path":
			s.req.Path = f[1]
		case ":authority":
			s.req.Authority = f[1]
		default:
			if len(f[0]) > 0 && f[0][0] != ':' {
				s.req.Header = append(s.req.Header, f)
			}
		}
	}

	if hdr.flags&flagEndStream != 0 {
		c.dispatch(connCtx, s)
		return nil
	}
	c.mu.Lock()
	c.streams[hdr.streamID] = s
	c.mu.Unlock()
	c.flow.mu.Lock()
	c.flow.streamWindow[hdr.streamID] = c.flow.initialWindow
	c.flow.mu.Unlock()
	return nil
}

// handleData appends a DATA frame to its stream's body, credits receive
// windows, and dispatches on END_STREAM.
func (c *serverConn) handleData(hdr frameHeader, payload []byte) error {
	body := payload
	if hdr.flags&flagPadded != 0 {
		b, err := stripPadding(payload)
		if err != nil {
			return err
		}
		body = b
	}
	c.mu.Lock()
	s := c.streams[hdr.streamID]
	if s != nil {
		s.req.Body = append(s.req.Body, body...)
		if len(s.req.Body) > maxServerBody {
			delete(c.streams, hdr.streamID)
			c.mu.Unlock()
			c.flow.forget(hdr.streamID)
			c.wmu.Lock()
			buf := appendRSTStream(c.wbuf[:0], hdr.streamID, errCodeEnhanceYourCalm)
			_, _ = c.conn.Write(buf)
			c.wbuf = buf
			c.wmu.Unlock()
			return nil
		}
		if hdr.flags&flagEndStream != 0 {
			delete(c.streams, hdr.streamID)
		}
	}
	c.mu.Unlock()
	c.creditReceive(hdr.streamID, hdr.length, s != nil && hdr.flags&flagEndStream == 0)
	if s != nil && hdr.flags&flagEndStream != 0 {
		c.flow.mu.Lock()
		// Keep the stream's send window registered for the response.
		if _, ok := c.flow.streamWindow[hdr.streamID]; !ok {
			c.flow.streamWindow[hdr.streamID] = c.flow.initialWindow
		}
		c.flow.mu.Unlock()
		c.dispatch(context.Background(), s)
	}
	return nil
}

// dispatch runs the handler on its own goroutine and writes the
// response directly from it.
func (c *serverConn) dispatch(connCtx context.Context, s *serverStream) {
	c.flow.mu.Lock()
	if _, ok := c.flow.streamWindow[s.id]; !ok {
		c.flow.streamWindow[s.id] = c.flow.initialWindow
	}
	c.flow.mu.Unlock()
	ctx, cancel := context.WithCancel(connCtx)
	s.cancel = cancel
	c.mu.Lock()
	c.streams[s.id] = s // re-register for RST-driven cancellation
	c.mu.Unlock()
	go func() {
		defer cancel()
		resp := c.srv.handler.ServeH2(ctx, &s.req)
		c.mu.Lock()
		delete(c.streams, s.id)
		c.mu.Unlock()
		if resp != nil && resp.Done != nil {
			// The response octets are copied into the connection's write
			// buffer before writeResponse returns, so the handler's
			// pooled Body buffer is released either way.
			defer resp.Done()
		}
		if resp == nil || ctx.Err() != nil {
			c.flow.forget(s.id)
			return
		}
		c.writeResponse(ctx, s.id, resp)
		c.flow.forget(s.id)
	}()
}

// writeResponse encodes and sends one response; like the client's
// request path, a small response is a single conn.Write.
func (c *serverConn) writeResponse(ctx context.Context, id uint32, resp *Response) {
	var block []byte
	switch resp.Status {
	case 200:
		block = appendIndexed(block, 8)
	case 204:
		block = appendIndexed(block, 9)
	case 304:
		block = appendIndexed(block, 11)
	case 400:
		block = appendIndexed(block, 12)
	case 404:
		block = appendIndexed(block, 13)
	case 500:
		block = appendIndexed(block, 14)
	default:
		block = appendLiteral(block, 8, "", strconv.Itoa(resp.Status))
	}
	for _, f := range resp.Header {
		block = appendLiteral(block, 0, f[0], f[1])
	}

	c.flow.mu.Lock()
	maxFrame := int(c.flow.maxFrame)
	c.flow.mu.Unlock()

	endStream := uint8(0)
	if len(resp.Body) == 0 {
		endStream = flagEndStream
	}
	if len(resp.Body) <= maxFrame {
		if len(resp.Body) > 0 {
			if err := c.flow.take(ctx, id, int64(len(resp.Body))); err != nil {
				return
			}
		}
		c.wmu.Lock()
		buf := appendFrameHeader(c.wbuf[:0], len(block), frameHeaders, flagEndHeaders|endStream, id)
		buf = append(buf, block...)
		if len(resp.Body) > 0 {
			buf = appendFrameHeader(buf, len(resp.Body), frameData, flagEndStream, id)
			buf = append(buf, resp.Body...)
		}
		_, _ = c.conn.Write(buf)
		c.wbuf = buf
		c.wmu.Unlock()
		return
	}

	c.wmu.Lock()
	buf := appendFrameHeader(c.wbuf[:0], len(block), frameHeaders, flagEndHeaders, id)
	buf = append(buf, block...)
	_, err := c.conn.Write(buf)
	c.wbuf = buf
	c.wmu.Unlock()
	if err != nil {
		return
	}
	body := resp.Body
	for len(body) > 0 {
		c.flow.mu.Lock()
		maxFrame = int(c.flow.maxFrame)
		c.flow.mu.Unlock()
		n := min(len(body), maxFrame)
		if err := c.flow.take(ctx, id, int64(n)); err != nil {
			return
		}
		flags := uint8(0)
		if n == len(body) {
			flags = flagEndStream
		}
		c.wmu.Lock()
		buf = appendFrameHeader(c.wbuf[:0], n, frameData, flags, id)
		buf = append(buf, body[:n]...)
		_, err = c.conn.Write(buf)
		c.wbuf = buf
		c.wmu.Unlock()
		if err != nil {
			return
		}
		body = body[n:]
	}
}

// applySettings applies peer SETTINGS to the send direction.
func (c *serverConn) applySettings(payload []byte) {
	c.flow.mu.Lock()
	for i := 0; i+6 <= len(payload); i += 6 {
		id := uint16(payload[i])<<8 | uint16(payload[i+1])
		v := uint32(payload[i+2])<<24 | uint32(payload[i+3])<<16 | uint32(payload[i+4])<<8 | uint32(payload[i+5])
		switch id {
		case settingInitialWindowSize:
			delta := int64(v) - c.flow.initialWindow
			c.flow.initialWindow = int64(v)
			for sid := range c.flow.streamWindow {
				c.flow.streamWindow[sid] += delta
			}
		case settingMaxFrameSize:
			if v >= minMaxFrameSize {
				c.flow.maxFrame = v
			}
		}
	}
	c.flow.cond.Broadcast()
	c.flow.mu.Unlock()
}

// creditReceive mirrors the client's receive-credit policy.
func (c *serverConn) creditReceive(streamID uint32, n uint32, streamOpen bool) {
	if n == 0 {
		return
	}
	c.recvMu.Lock()
	c.recvDebt += n
	connCredit := uint32(0)
	if c.recvDebt >= connWindow/4 {
		connCredit = c.recvDebt
		c.recvDebt = 0
	}
	c.recvMu.Unlock()
	if connCredit == 0 && !streamOpen {
		return
	}
	c.wmu.Lock()
	buf := c.wbuf[:0]
	if streamOpen {
		buf = appendWindowUpdate(buf, streamID, n)
	}
	if connCredit > 0 {
		buf = appendWindowUpdate(buf, 0, connCredit)
	}
	_, _ = c.conn.Write(buf)
	c.wbuf = buf
	c.wmu.Unlock()
}
