package wsdl

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
	"strings"

	"livedev/internal/dyn"
)

// Parse errors.
var (
	ErrNotWSDL = errors.New("wsdl: not a WSDL document")
)

// XML shapes for decoding; local names only, namespaces are conventional.
type xDefinitions struct {
	XMLName   xml.Name    `xml:"definitions"`
	Name      string      `xml:"name,attr"`
	TargetNS  string      `xml:"targetNamespace,attr"`
	Types     xTypes      `xml:"types"`
	Messages  []xMessage  `xml:"message"`
	PortTypes []xPortType `xml:"portType"`
	Services  []xService  `xml:"service"`
}

type xTypes struct {
	Schemas []xSchema `xml:"schema"`
}

type xSchema struct {
	ComplexTypes []xComplexType `xml:"complexType"`
	SimpleTypes  []xSimpleType  `xml:"simpleType"`
}

type xComplexType struct {
	Name     string    `xml:"name,attr"`
	Sequence xSequence `xml:"sequence"`
}

type xSequence struct {
	Elements []xElement `xml:"element"`
}

type xElement struct {
	Name      string `xml:"name,attr"`
	Type      string `xml:"type,attr"`
	MaxOccurs string `xml:"maxOccurs,attr"`
}

type xSimpleType struct {
	Name string `xml:"name,attr"`
}

type xMessage struct {
	Name  string  `xml:"name,attr"`
	Parts []xPart `xml:"part"`
}

type xPart struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"`
}

type xPortType struct {
	Name       string       `xml:"name,attr"`
	Operations []xOperation `xml:"operation"`
}

type xOperation struct {
	Name   string  `xml:"name,attr"`
	Input  xIORef  `xml:"input"`
	Output *xIORef `xml:"output"`
}

type xIORef struct {
	Message string `xml:"message,attr"`
}

type xService struct {
	Name  string  `xml:"name,attr"`
	Ports []xPort `xml:"port"`
}

type xPort struct {
	Name    string   `xml:"name,attr"`
	Address xAddress `xml:"address"`
}

type xAddress struct {
	Location string `xml:"location,attr"`
}

// stripPrefix removes a namespace prefix from a QName reference.
func stripPrefix(ref string) string {
	if i := strings.IndexByte(ref, ':'); i >= 0 {
		return ref[i+1:]
	}
	return ref
}

// Parse reads a WSDL document and resolves every operation's signature to
// dyn types — the client-side WSDL compiler of Figure 1.
func Parse(data []byte) (*Document, error) {
	var defs xDefinitions
	if err := xml.Unmarshal(data, &defs); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotWSDL, err)
	}
	if defs.XMLName.Local != "definitions" {
		return nil, ErrNotWSDL
	}
	doc := &Document{
		ServiceName: defs.Name,
		TargetNS:    defs.TargetNS,
	}
	if doc.ServiceName == "" && len(defs.Services) > 0 {
		doc.ServiceName = defs.Services[0].Name
	}
	for _, svc := range defs.Services {
		for _, p := range svc.Ports {
			if p.Address.Location != "" {
				doc.Endpoint = p.Address.Location
			}
		}
	}

	// Index schema complex types by name.
	complexTypes := make(map[string]xComplexType)
	for _, sch := range defs.Types.Schemas {
		for _, ct := range sch.ComplexTypes {
			complexTypes[ct.Name] = ct
		}
	}
	r := &typeResolver{complex: complexTypes, done: make(map[string]*dyn.Type), busy: make(map[string]bool)}

	// Index messages by name.
	messages := make(map[string]xMessage, len(defs.Messages))
	for _, m := range defs.Messages {
		messages[m.Name] = m
	}

	for _, pt := range defs.PortTypes {
		for _, op := range pt.Operations {
			sig := dyn.MethodSig{Name: op.Name, Result: dyn.Void}
			inMsg, ok := messages[stripPrefix(op.Input.Message)]
			if !ok {
				return nil, fmt.Errorf("wsdl: operation %s references missing message %s", op.Name, op.Input.Message)
			}
			for _, part := range inMsg.Parts {
				t, err := r.resolve(part.Type)
				if err != nil {
					return nil, fmt.Errorf("wsdl: operation %s parameter %s: %w", op.Name, part.Name, err)
				}
				sig.Params = append(sig.Params, dyn.Param{Name: part.Name, Type: t})
			}
			if op.Output != nil && op.Output.Message != "" {
				outMsg, ok := messages[stripPrefix(op.Output.Message)]
				if !ok {
					return nil, fmt.Errorf("wsdl: operation %s references missing message %s", op.Name, op.Output.Message)
				}
				switch len(outMsg.Parts) {
				case 0:
					// void result
				case 1:
					t, err := r.resolve(outMsg.Parts[0].Type)
					if err != nil {
						return nil, fmt.Errorf("wsdl: operation %s result: %w", op.Name, err)
					}
					sig.Result = t
				default:
					return nil, fmt.Errorf("wsdl: operation %s has %d output parts; at most 1 supported", op.Name, len(outMsg.Parts))
				}
			}
			doc.Methods = append(doc.Methods, sig)
		}
	}
	sort.Slice(doc.Methods, func(i, j int) bool { return doc.Methods[i].Name < doc.Methods[j].Name })
	return doc, nil
}

// typeResolver resolves WSDL type references to dyn types.
type typeResolver struct {
	complex map[string]xComplexType
	done    map[string]*dyn.Type
	busy    map[string]bool
}

func (r *typeResolver) resolve(ref string) (*dyn.Type, error) {
	name := stripPrefix(ref)
	switch name {
	case "boolean":
		return dyn.Boolean, nil
	case "char":
		return dyn.Char, nil
	case "int":
		return dyn.Int32T, nil
	case "long":
		return dyn.Int64T, nil
	case "float":
		return dyn.Float32T, nil
	case "double":
		return dyn.Float64T, nil
	case "string":
		return dyn.StringT, nil
	}
	if t, ok := r.done[name]; ok {
		return t, nil
	}
	if r.busy[name] {
		return nil, fmt.Errorf("recursive type %s", name)
	}
	ct, ok := r.complex[name]
	if !ok {
		return nil, fmt.Errorf("undeclared type %s", name)
	}
	r.busy[name] = true
	defer delete(r.busy, name)

	// Array form: single element named item with maxOccurs unbounded.
	els := ct.Sequence.Elements
	if len(els) == 1 && els[0].Name == "item" && els[0].MaxOccurs == "unbounded" {
		elem, err := r.resolve(els[0].Type)
		if err != nil {
			return nil, fmt.Errorf("array %s: %w", name, err)
		}
		t := dyn.SequenceOf(elem)
		r.done[name] = t
		return t, nil
	}
	fields := make([]dyn.StructField, 0, len(els))
	for _, el := range els {
		ft, err := r.resolve(el.Type)
		if err != nil {
			return nil, fmt.Errorf("struct %s field %s: %w", name, el.Name, err)
		}
		fields = append(fields, dyn.StructField{Name: el.Name, Type: ft})
	}
	t, err := dyn.StructOf(name, fields...)
	if err != nil {
		return nil, err
	}
	r.done[name] = t
	return t, nil
}
