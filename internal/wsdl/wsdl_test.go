package wsdl

import (
	"strings"
	"testing"

	"livedev/internal/dyn"
)

func newMailClass(t *testing.T) *dyn.Class {
	t.Helper()
	msg := dyn.MustStructOf("Message",
		dyn.StructField{Name: "from", Type: dyn.StringT},
		dyn.StructField{Name: "body", Type: dyn.StringT},
		dyn.StructField{Name: "id", Type: dyn.Int64T})
	c := dyn.NewClass("Mail")
	mustAdd := func(spec dyn.MethodSpec) {
		t.Helper()
		if _, err := c.AddMethod(spec); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(dyn.MethodSpec{Name: "send", Params: []dyn.Param{{Name: "m", Type: msg}}, Distributed: true})
	mustAdd(dyn.MethodSpec{
		Name:        "fetch",
		Params:      []dyn.Param{{Name: "user", Type: dyn.StringT}, {Name: "max", Type: dyn.Int32T}},
		Result:      dyn.SequenceOf(msg),
		Distributed: true,
	})
	mustAdd(dyn.MethodSpec{Name: "count", Result: dyn.Int64T, Distributed: true})
	mustAdd(dyn.MethodSpec{
		Name:        "tag",
		Params:      []dyn.Param{{Name: "c", Type: dyn.Char}, {Name: "w", Type: dyn.Float64T}, {Name: "b", Type: dyn.Float32T}, {Name: "on", Type: dyn.Boolean}},
		Result:      dyn.Char,
		Distributed: true,
	})
	mustAdd(dyn.MethodSpec{
		Name:        "matrix",
		Result:      dyn.SequenceOf(dyn.SequenceOf(dyn.Int32T)),
		Distributed: true,
	})
	mustAdd(dyn.MethodSpec{Name: "local", Result: dyn.Int32T}) // not distributed
	return c
}

func TestGenerateXMLShape(t *testing.T) {
	c := newMailClass(t)
	doc := Generate(c.Interface(), "http://127.0.0.1:8080/Mail")
	text, err := doc.XML()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`name="Mail"`,
		`targetNamespace="urn:Mail"`,
		`<xsd:complexType name="Message">`,
		`<xsd:complexType name="ArrayOfMessage">`,
		`<xsd:complexType name="ArrayOf_xsd_int">`,
		`<xsd:complexType name="ArrayOfArrayOf_xsd_int">`,
		`<xsd:simpleType name="char">`,
		`<wsdl:message name="fetchRequest">`,
		`<wsdl:part name="user" type="xsd:string"/>`,
		`<wsdl:message name="sendResponse"/>`, // void → no parts
		`<wsdl:portType name="MailPortType">`,
		`soapAction="urn:Mail#fetch"`,
		`<soap:address location="http://127.0.0.1:8080/Mail"/>`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("WSDL missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "local") {
		t.Error("non-distributed method leaked into WSDL")
	}
}

func TestParseResolvesEndpointAndMethods(t *testing.T) {
	c := newMailClass(t)
	doc := Generate(c.Interface(), "http://127.0.0.1:9/Mail")
	text, err := doc.XML()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.ServiceName != "Mail" || parsed.TargetNS != "urn:Mail" {
		t.Errorf("identity = %q %q", parsed.ServiceName, parsed.TargetNS)
	}
	if parsed.Endpoint != "http://127.0.0.1:9/Mail" {
		t.Errorf("endpoint = %q", parsed.Endpoint)
	}
	if len(parsed.Methods) != 5 {
		t.Fatalf("methods = %d", len(parsed.Methods))
	}
	fetch, ok := parsed.Lookup("fetch")
	if !ok {
		t.Fatal("fetch missing")
	}
	if fetch.Result.Kind() != dyn.KindSequence || fetch.Result.Elem().Name() != "Message" {
		t.Errorf("fetch result = %v", fetch.Result)
	}
	if _, ok := parsed.Lookup("nonexistent"); ok {
		t.Error("bogus lookup should fail")
	}
}

// The central fidelity property for the SOAP path: WSDL generate → parse
// reproduces the interface descriptor hash, so the client's view and the
// server's view compare equal.
func TestGenerateParseRoundTripHash(t *testing.T) {
	c := newMailClass(t)
	desc := c.Interface()
	doc := Generate(desc, "http://e/Mail")
	text, err := doc.XML()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := parsed.Descriptor().Hash(); got != desc.Hash() {
		t.Errorf("hash mismatch after round trip:\n got methods %v\nwant methods %v",
			parsed.Methods, desc.Methods)
	}
}

func TestMinimalDocument(t *testing.T) {
	// The minimal WSDL published at initialization: endpoint, no methods
	// (paper Section 5.1.1 footnote).
	c := dyn.NewClass("Fresh")
	doc := Generate(c.Interface(), "http://127.0.0.1:1234/Fresh")
	text, err := doc.XML()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Methods) != 0 {
		t.Errorf("minimal document has %d methods", len(parsed.Methods))
	}
	if parsed.Endpoint != "http://127.0.0.1:1234/Fresh" {
		t.Errorf("endpoint = %q", parsed.Endpoint)
	}
	if parsed.Descriptor().Hash() != c.Interface().Hash() {
		t.Error("empty interface hash should round-trip")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte("not xml at all <")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := Parse([]byte("<other/>")); err == nil {
		t.Error("non-WSDL root should fail")
	}
	// Operation referencing a missing message.
	missing := `<definitions name="S" targetNamespace="urn:S" xmlns="http://schemas.xmlsoap.org/wsdl/">
	  <portType name="P"><operation name="f"><input message="tns:ghost"/></operation></portType>
	</definitions>`
	if _, err := Parse([]byte(missing)); err == nil {
		t.Error("missing message should fail")
	}
	// Part with undeclared complex type.
	undeclared := `<definitions name="S" targetNamespace="urn:S" xmlns="http://schemas.xmlsoap.org/wsdl/">
	  <message name="fRequest"><part name="x" type="tns:Ghost"/></message>
	  <message name="fResponse"/>
	  <portType name="P"><operation name="f"><input message="tns:fRequest"/><output message="tns:fResponse"/></operation></portType>
	</definitions>`
	if _, err := Parse([]byte(undeclared)); err == nil {
		t.Error("undeclared type should fail")
	}
	// Multiple output parts.
	multi := `<definitions name="S" targetNamespace="urn:S" xmlns="http://schemas.xmlsoap.org/wsdl/">
	  <message name="fRequest"/>
	  <message name="fResponse"><part name="a" type="xsd:int"/><part name="b" type="xsd:int"/></message>
	  <portType name="P"><operation name="f"><input message="tns:fRequest"/><output message="tns:fResponse"/></operation></portType>
	</definitions>`
	if _, err := Parse([]byte(multi)); err == nil {
		t.Error("multiple output parts should fail")
	}
	// Recursive complex type.
	recursive := `<definitions name="S" targetNamespace="urn:S" xmlns="http://schemas.xmlsoap.org/wsdl/" xmlns:xsd="http://www.w3.org/2001/XMLSchema">
	  <types><xsd:schema><xsd:complexType name="N"><xsd:sequence><xsd:element name="next" type="tns:N"/></xsd:sequence></xsd:complexType></xsd:schema></types>
	  <message name="fRequest"><part name="x" type="tns:N"/></message>
	  <message name="fResponse"/>
	  <portType name="P"><operation name="f"><input message="tns:fRequest"/><output message="tns:fResponse"/></operation></portType>
	</definitions>`
	if _, err := Parse([]byte(recursive)); err == nil {
		t.Error("recursive type should fail")
	}
}

func TestStructOnlyReferencedInsideSequenceIsDeclared(t *testing.T) {
	inner := dyn.MustStructOf("Inner", dyn.StructField{Name: "v", Type: dyn.Int32T})
	outer := dyn.MustStructOf("Outer", dyn.StructField{Name: "items", Type: dyn.SequenceOf(inner)})
	c := dyn.NewClass("Svc")
	if _, err := c.AddMethod(dyn.MethodSpec{
		Name:        "get",
		Result:      outer,
		Distributed: true,
	}); err != nil {
		t.Fatal(err)
	}
	text, err := Generate(c.Interface(), "http://e/Svc").XML()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`name="Inner"`, `name="Outer"`, `name="ArrayOfInner"`} {
		if !strings.Contains(text, want) {
			t.Errorf("WSDL missing %q", want)
		}
	}
	parsed, err := Parse([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := parsed.Lookup("get")
	if !ok || !got.Result.Equal(outer) {
		t.Errorf("resolved get = %+v", got)
	}
}
